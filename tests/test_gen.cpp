#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/tree.hpp"
#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "gen/trees.hpp"
#include "graph/graph.hpp"

namespace emc::gen {
namespace {

double average_depth(const core::ParentTree& tree) {
  const auto depth = core::depths_reference(tree);
  return std::accumulate(depth.begin(), depth.end(), 0.0) /
         static_cast<double>(depth.size());
}

// ---------------------------------------------------------------- trees

TEST(RandomTree, IsValidTree) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto tree = random_tree(1000, kInfiniteGrasp, seed);
    EXPECT_TRUE(core::valid_parent_tree(tree));
  }
}

TEST(RandomTree, GraspOneIsPath) {
  const auto tree = random_tree(100, 1, 1);
  for (NodeId v = 1; v < 100; ++v) EXPECT_EQ(tree.parent[v], v - 1);
}

TEST(RandomTree, GraspBoundsParentChoice) {
  for (const NodeId grasp : {NodeId{2}, NodeId{10}, NodeId{100}}) {
    const auto tree = random_tree(2000, grasp, grasp);
    for (NodeId v = 1; v < 2000; ++v) {
      EXPECT_GE(tree.parent[v], std::max(NodeId{0}, v - grasp));
      EXPECT_LT(tree.parent[v], v);
    }
  }
}

TEST(RandomTree, ShallowDepthIsLogarithmic) {
  const auto tree = random_tree(100'000, kInfiniteGrasp, 3);
  const double avg = average_depth(tree);
  // Expected ln(100000) ~ 11.5; allow generous slack.
  EXPECT_GT(avg, 6.0);
  EXPECT_LT(avg, 20.0);
}

TEST(RandomTree, GraspDepthMatchesFormula) {
  const NodeId n = 50'000;
  const NodeId grasp = 100;
  const auto tree = random_tree(n, grasp, 4);
  const double avg = average_depth(tree);
  const double expected = expected_average_depth(n, grasp);  // n/(grasp+1)
  EXPECT_GT(avg, 0.5 * expected);
  EXPECT_LT(avg, 2.0 * expected);
}

TEST(RandomTree, SingleNode) {
  const auto tree = random_tree(1, kInfiniteGrasp, 1);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_TRUE(core::valid_parent_tree(tree));
}

TEST(RandomTree, DeterministicPerSeed) {
  const auto a = random_tree(1000, 50, 42);
  const auto b = random_tree(1000, 50, 42);
  const auto c = random_tree(1000, 50, 43);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_NE(a.parent, c.parent);
}

TEST(BarabasiAlbert, IsValidTree) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto tree = barabasi_albert_tree(2000, seed);
    EXPECT_TRUE(core::valid_parent_tree(tree));
  }
}

TEST(BarabasiAlbert, IsShallow) {
  const auto tree = barabasi_albert_tree(100'000, 5);
  EXPECT_LT(average_depth(tree), 15.0);
}

TEST(BarabasiAlbert, HasHighDegreeHub) {
  const auto tree = barabasi_albert_tree(50'000, 6);
  std::vector<int> degree(50'000, 0);
  for (NodeId v = 0; v < 50'000; ++v) {
    if (tree.parent[v] != kNoNode) {
      ++degree[v];
      ++degree[tree.parent[v]];
    }
  }
  const int max_degree = *std::max_element(degree.begin(), degree.end());
  // Preferential attachment yields hubs of degree ~sqrt(n); uniform
  // attachment would cap out around log n.
  EXPECT_GT(max_degree, 50);
}

TEST(ScrambleIds, PreservesTreeStructure) {
  auto tree = random_tree(5000, NodeId{20}, 7);
  const double depth_before = average_depth(tree);
  scramble_ids(tree, 8);
  EXPECT_TRUE(core::valid_parent_tree(tree));
  EXPECT_DOUBLE_EQ(average_depth(tree), depth_before);
}

TEST(ScrambleIds, ActuallyPermutes) {
  auto tree = random_tree(1000, kInfiniteGrasp, 9);
  const auto before = tree.parent;
  scramble_ids(tree, 10);
  EXPECT_NE(tree.parent, before);
  EXPECT_NE(tree.root, 0);  // root was 0; overwhelmingly likely to move
}

TEST(RandomQueries, InRangeAndDeterministic) {
  const auto a = random_queries(100, 1000, 11);
  const auto b = random_queries(100, 1000, 11);
  EXPECT_EQ(a, b);
  for (const auto& [x, y] : a) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 100);
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 100);
  }
}

TEST(ExpectedAverageDepth, MatchesPaperFormula) {
  EXPECT_NEAR(expected_average_depth(1 << 20, kInfiniteGrasp), 13.86, 0.01);
  EXPECT_NEAR(expected_average_depth(8'000'000, 999), 8000.0, 10.0);
  EXPECT_NEAR(expected_average_depth(100, 1), 50.0, 0.1);
}

// ---------------------------------------------------------------- graphs

TEST(Rmat, RespectsTargetSize) {
  const auto g = rmat_graph(10, 8, 0.57, 0.19, 0.19, 1);
  EXPECT_EQ(g.num_nodes, 1024);
  EXPECT_EQ(g.edges.size(), static_cast<std::size_t>(8 * 1024));
  EXPECT_TRUE(g.valid());
}

TEST(Rmat, SkewedDegreesVsUniform) {
  const device::Context ctx(1);
  const auto kron = graph::simplified(kron_graph(12, 8, 2));
  const auto er = graph::simplified(
      er_graph(1 << 12, kron.edges.size(), 2));
  auto max_degree = [&](const graph::EdgeList& g) {
    const auto csr = graph::build_csr(ctx, g);
    EdgeId best = 0;
    for (NodeId v = 0; v < g.num_nodes; ++v) best = std::max(best, csr.degree(v));
    return best;
  };
  EXPECT_GT(max_degree(kron), 2 * max_degree(er));
}

TEST(Rmat, KroneckerHasSmallDiameter) {
  const device::Context ctx(1);
  const auto g = graph::largest_component(
      graph::simplified(kron_graph(12, 16, 3)));
  const auto csr = graph::build_csr(ctx, g);
  EXPECT_LE(graph::estimate_diameter(csr), 10);
}

TEST(RoadGraph, SparseWithLargeDiameterAndManyBridges) {
  const device::Context ctx(1);
  const auto g = graph::largest_component(
      graph::simplified(road_graph(60, 60, 0.7, 0.05, 4)));
  const auto csr = graph::build_csr(ctx, g);
  // m/n close to 1 (extremely sparse), like road networks.
  const double density =
      static_cast<double>(g.edges.size()) / static_cast<double>(g.num_nodes);
  EXPECT_LT(density, 2.0);
  // Diameter scales with grid side.
  EXPECT_GT(graph::estimate_diameter(csr), 30);
}

TEST(RoadGraph, FullGridIsConnected) {
  const auto g = road_graph(20, 20, 1.0, 0.0, 5);
  EXPECT_EQ(graph::count_components(graph::connected_component_labels(g)), 1u);
  EXPECT_EQ(g.edges.size(), static_cast<std::size_t>(2 * 20 * 19));
}

TEST(ErGraph, SizeAndValidity) {
  const auto g = er_graph(100, 500, 6);
  EXPECT_EQ(g.edges.size(), 500u);
  EXPECT_TRUE(g.valid());
}

TEST(CycleAndPath, Shapes) {
  const auto c = cycle_graph(10);
  EXPECT_EQ(c.edges.size(), 10u);
  const auto p = path_graph(10);
  EXPECT_EQ(p.edges.size(), 9u);
  EXPECT_TRUE(c.valid());
  EXPECT_TRUE(p.valid());
}

TEST(Generators, DeterministicPerSeed) {
  EXPECT_EQ(kron_graph(8, 4, 7).edges, kron_graph(8, 4, 7).edges);
  EXPECT_EQ(road_graph(10, 10, 0.5, 0.1, 7).edges,
            road_graph(10, 10, 0.5, 0.1, 7).edges);
  EXPECT_NE(kron_graph(8, 4, 7).edges, kron_graph(8, 4, 8).edges);
}

}  // namespace
}  // namespace emc::gen
