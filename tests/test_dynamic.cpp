#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <set>
#include <utility>
#include <vector>

#include "bridges/biconnectivity.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/two_ecc.hpp"
#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/oracle.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/rng.hpp"

namespace emc::dynamic {
namespace {

using graph::Edge;
using graph::EdgeList;

std::set<std::pair<NodeId, NodeId>> edge_set(const EdgeList& g) {
  std::set<std::pair<NodeId, NodeId>> s;
  for (const Edge& e : g.edges) {
    s.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  return s;
}

void expect_oracle_matches_reference(const device::Context& ctx,
                                     const DynamicGraph& dg,
                                     const ConnectivityOracle& oracle,
                                     util::Rng& rng, int num_queries,
                                     const char* label) {
  const EdgeList& snap = dg.snapshot(ctx);
  const test_support::ReferenceOracle ref(ctx, snap);
  ASSERT_EQ(oracle.num_bridges(), ref.num_bridges) << label;
  std::vector<std::pair<NodeId, NodeId>> queries(num_queries);
  for (auto& [u, v] : queries) {
    u = static_cast<NodeId>(rng.below(dg.num_nodes()));
    v = static_cast<NodeId>(rng.below(dg.num_nodes()));
  }
  std::vector<std::uint8_t> same;
  std::vector<NodeId> dist;
  oracle.same_2ecc_batch(ctx, queries, same);
  oracle.bridges_on_path_batch(ctx, queries, dist);
  for (int q = 0; q < num_queries; ++q) {
    const auto [u, v] = queries[q];
    ASSERT_EQ(same[q] != 0, ref.comp[u] == ref.comp[v])
        << label << ": same_2ecc(" << u << ", " << v << ")";
    ASSERT_EQ(dist[q], ref.bridges_on_path(u, v))
        << label << ": bridges_on_path(" << u << ", " << v << ")";
    ASSERT_EQ(oracle.component_size(u), ref.comp_size[u])
        << label << ": component_size(" << u << ")";
  }
}

class DynamicParam : public ::testing::TestWithParam<unsigned> {
 protected:
  device::Context ctx_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Workers, DynamicParam, ::testing::Values(1u, 4u));

// ----------------------------------------------------------- DCSR storage

TEST_P(DynamicParam, InsertEraseBasics) {
  DynamicGraph dg(5);
  EXPECT_EQ(dg.num_edges(), 0u);
  EXPECT_EQ(dg.insert_edges(ctx_, {{0, 1}, {1, 2}, {2, 3}}), 3u);
  EXPECT_EQ(dg.epoch(), 1u);
  EXPECT_TRUE(dg.has_edge(0, 1));
  EXPECT_TRUE(dg.has_edge(2, 1));  // undirected
  EXPECT_FALSE(dg.has_edge(0, 3));
  EXPECT_EQ(dg.degree(1), 2);
  EXPECT_EQ(dg.erase_edges(ctx_, {{1, 2}}), 1u);
  EXPECT_FALSE(dg.has_edge(1, 2));
  EXPECT_EQ(dg.num_edges(), 2u);
  EXPECT_EQ(dg.epoch(), 2u);
}

TEST_P(DynamicParam, NoOpBatchesDoNotAdvanceEpoch) {
  DynamicGraph dg(4);
  dg.insert_edges(ctx_, {{0, 1}, {1, 2}});
  const std::uint64_t epoch = dg.epoch();
  // Empty batch.
  EXPECT_EQ(dg.insert_edges(ctx_, {}), 0u);
  // All duplicates (including reversed orientation and in-batch repeats).
  EXPECT_EQ(dg.insert_edges(ctx_, {{0, 1}, {1, 0}, {2, 1}, {0, 1}}), 0u);
  // Self-loops and out-of-range endpoints are dropped.
  EXPECT_EQ(dg.insert_edges(ctx_, {{2, 2}, {-1, 0}, {0, 9}}), 0u);
  // Erasing absent edges.
  EXPECT_EQ(dg.erase_edges(ctx_, {{0, 2}, {3, 1}}), 0u);
  EXPECT_EQ(dg.epoch(), epoch);
  EXPECT_EQ(dg.num_edges(), 2u);
}

TEST_P(DynamicParam, BatchDuplicatesCountOnce) {
  DynamicGraph dg(4);
  EXPECT_EQ(dg.insert_edges(ctx_, {{0, 1}, {1, 0}, {0, 1}, {2, 3}}), 2u);
  EXPECT_EQ(dg.num_edges(), 2u);
  EXPECT_EQ(dg.degree(0), 1);
}

TEST_P(DynamicParam, ConstructorCanonicalizesInitialEdges) {
  EdgeList raw;
  raw.num_nodes = 4;
  raw.edges = {{0, 1}, {1, 0}, {0, 0}, {1, 2}, {1, 2}, {2, 3}};
  const DynamicGraph dg(ctx_, raw);
  EXPECT_EQ(dg.num_edges(), 3u);
  EXPECT_TRUE(dg.has_edge(0, 1));
  EXPECT_FALSE(dg.has_edge(0, 0));
  const EdgeList& snap = dg.snapshot(ctx_);
  EXPECT_TRUE(snap.valid());
  EXPECT_EQ(edge_set(snap),
            (std::set<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}, {2, 3}}));
}

TEST_P(DynamicParam, SnapshotIsCachedPerEpoch) {
  DynamicGraph dg(6);
  dg.insert_edges(ctx_, {{0, 1}, {1, 2}});
  const EdgeList* first = &dg.snapshot(ctx_);
  EXPECT_EQ(first, &dg.snapshot(ctx_));  // zero-copy within an epoch
  dg.insert_edges(ctx_, {{0, 1}});       // no-op: cache stays warm
  EXPECT_EQ(first, &dg.snapshot(ctx_));
  dg.insert_edges(ctx_, {{2, 3}});
  EXPECT_EQ(dg.snapshot(ctx_).edges.size(), 3u);
}

TEST_P(DynamicParam, SnapshotCsrAlignsWithSnapshotEdgeOrder) {
  DynamicGraph dg(5);
  dg.insert_edges(ctx_, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}});
  const EdgeList& snap = dg.snapshot(ctx_);
  const graph::Csr& csr = dg.snapshot_csr(ctx_);
  ASSERT_EQ(csr.num_edges(), snap.edges.size());
  for (NodeId v = 0; v < dg.num_nodes(); ++v) {
    for (EdgeId i = csr.row_offsets[v]; i < csr.row_offsets[v + 1]; ++i) {
      const Edge e = snap.edges[csr.edge_ids[i]];
      EXPECT_TRUE((e.u == v && e.v == csr.neighbors[i]) ||
                  (e.v == v && e.u == csr.neighbors[i]));
    }
  }
}

TEST_P(DynamicParam, CsrAppendServesInsertOnlyEpochsAndStaysExact) {
  DynamicGraph dg(ctx_, gen::cycle_graph(32));
  (void)dg.snapshot_csr(ctx_);  // epoch-0 CSR: full sort-based build
  ASSERT_EQ(dg.num_csr_appends(), 0u);

  // Back-to-back insert-only epochs splice the delta into the cached CSR.
  dg.insert_edges(ctx_, {{0, 5}, {1, 9}});
  (void)dg.snapshot_csr(ctx_);
  EXPECT_EQ(dg.num_csr_appends(), 1u);
  dg.insert_edges(ctx_, {{2, 11}});
  const graph::Csr& csr = dg.snapshot_csr(ctx_);
  EXPECT_EQ(dg.num_csr_appends(), 2u);
  // The appended CSR is a valid adjacency of the appended snapshot, with
  // edge ids aligned to snapshot order (positions [0, old_m) carry over).
  const EdgeList& snap = dg.snapshot(ctx_);
  EXPECT_TRUE(graph::csr_matches(snap, csr));
  for (NodeId v = 0; v < dg.num_nodes(); ++v) {
    for (EdgeId i = csr.row_offsets[v]; i < csr.row_offsets[v + 1]; ++i) {
      const Edge e = snap.edges[csr.edge_ids[i]];
      EXPECT_TRUE((e.u == v && e.v == csr.neighbors[i]) ||
                  (e.v == v && e.u == csr.neighbors[i]));
    }
  }

  // An erase invalidates position stability: the CSR rebuilds (the append
  // counter stays flat)...
  dg.erase_edges(ctx_, {{0, 1}});
  EXPECT_TRUE(graph::csr_matches(dg.snapshot(ctx_), dg.snapshot_csr(ctx_)));
  EXPECT_EQ(dg.num_csr_appends(), 2u);
  // ...and the next insert-only epoch appends again on the fresh base.
  dg.insert_edges(ctx_, {{3, 13}});
  EXPECT_TRUE(graph::csr_matches(dg.snapshot(ctx_), dg.snapshot_csr(ctx_)));
  EXPECT_EQ(dg.num_csr_appends(), 3u);
}

TEST_P(DynamicParam, CompactionPreservesEdgesAndAmortizes) {
  DynamicGraph dg(50);
  std::set<std::pair<NodeId, NodeId>> ref;
  util::Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    std::vector<Edge> batch;
    for (int i = 0; i < 40; ++i) {
      const auto u = static_cast<NodeId>(rng.below(50));
      const auto v = static_cast<NodeId>(rng.below(50));
      batch.push_back({u, v});
      if (u != v) ref.insert({std::min(u, v), std::max(u, v)});
    }
    dg.insert_edges(ctx_, batch);
  }
  EXPECT_GT(dg.num_compactions(), 0u);  // slack was exhausted along the way
  EXPECT_EQ(edge_set(dg.snapshot(ctx_)), ref);
  EXPECT_EQ(dg.num_edges(), ref.size());
  // Capacity tracks occupancy (slack is a constant factor, not unbounded).
  EXPECT_LE(dg.slot_capacity(), 2 * 2 * ref.size() + 4 * 50);
}

TEST_P(DynamicParam, LastDeltaTracksAppliedBatches) {
  DynamicGraph dg(6);
  EXPECT_EQ(dg.last_delta().from_epoch, UpdateDelta::kNoDelta);

  dg.insert_edges(ctx_, {{1, 0}, {1, 2}, {0, 1}, {2, 2}});
  const UpdateDelta& delta = dg.last_delta();
  EXPECT_EQ(delta.from_epoch, 0u);
  EXPECT_TRUE(delta.insert_only());
  // Canonical (u < v), deduplicated, invalid entries dropped.
  EXPECT_EQ(delta.inserted,
            (std::vector<Edge>{{0, 1}, {1, 2}}));

  // No-op batches leave the delta untouched.
  dg.insert_edges(ctx_, {{0, 1}});
  dg.erase_edges(ctx_, {{3, 4}});
  EXPECT_EQ(dg.last_delta().from_epoch, 0u);
  EXPECT_EQ(dg.last_delta().inserted.size(), 2u);

  // An effective erase replaces it and flips the side.
  dg.erase_edges(ctx_, {{2, 1}, {4, 5}});
  EXPECT_EQ(dg.last_delta().from_epoch, 1u);
  EXPECT_FALSE(dg.last_delta().insert_only());
  EXPECT_EQ(dg.last_delta().erased, (std::vector<Edge>{{1, 2}}));
  EXPECT_TRUE(dg.last_delta().inserted.empty());
}

TEST_P(DynamicParam, SeededConstructorHasNoDelta) {
  const DynamicGraph dg(ctx_, gen::cycle_graph(5));
  // The initial edges are epoch 0 itself, not a delta on top of it.
  EXPECT_EQ(dg.last_delta().from_epoch, UpdateDelta::kNoDelta);
  EXPECT_EQ(dg.epoch(), 0u);
}

// ------------------------------------------------------------- the oracle

TEST_P(DynamicParam, OracleTracksBridgeAcrossUpdates) {
  // Two triangles joined by a bridge.
  DynamicGraph dg(6);
  dg.insert_edges(ctx_,
                  {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  ConnectivityOracle oracle;
  EXPECT_TRUE(oracle.refresh(ctx_, dg));
  EXPECT_EQ(oracle.num_bridges(), 1u);
  EXPECT_TRUE(oracle.same_2ecc(0, 2));
  EXPECT_FALSE(oracle.same_2ecc(0, 3));
  EXPECT_EQ(oracle.bridges_on_path(0, 5), 1);
  EXPECT_EQ(oracle.bridges_on_path(0, 1), 0);
  EXPECT_EQ(oracle.component_size(0), 3);

  // The graph loses all bridges after an insert closing a second path.
  dg.insert_edges(ctx_, {{1, 4}});
  EXPECT_TRUE(oracle.refresh(ctx_, dg));
  EXPECT_EQ(oracle.num_bridges(), 0u);
  EXPECT_TRUE(oracle.same_2ecc(0, 5));
  EXPECT_EQ(oracle.bridges_on_path(0, 5), 0);
  EXPECT_EQ(oracle.component_size(0), 6);
  EXPECT_EQ(oracle.num_blocks(), 1u);
}

TEST_P(DynamicParam, OracleOnDisconnectedGraphGainingConnectingEdge) {
  DynamicGraph dg(7);
  dg.insert_edges(ctx_, {{0, 1}, {1, 2}, {2, 0},    // triangle
                         {3, 4}, {4, 5}, {5, 3}});  // triangle, node 6 alone
  ConnectivityOracle oracle;
  oracle.refresh(ctx_, dg);
  EXPECT_EQ(oracle.num_bridges(), 0u);
  EXPECT_EQ(oracle.bridges_on_path(0, 3), kNoNode);  // different components
  EXPECT_EQ(oracle.bridges_on_path(0, 6), kNoNode);
  EXPECT_EQ(oracle.component_size(6), 1);

  dg.insert_edges(ctx_, {{2, 3}});  // the connecting edge
  oracle.refresh(ctx_, dg);
  EXPECT_EQ(oracle.num_bridges(), 1u);
  EXPECT_EQ(oracle.bridges_on_path(0, 3), 1);
  EXPECT_EQ(oracle.bridges_on_path(0, 6), kNoNode);  // 6 is still isolated
}

TEST_P(DynamicParam, RefreshDistinguishesGraphInstances) {
  // Two fresh graphs share epoch numbers; the oracle must key its cache on
  // the graph's identity too, not the epoch alone.
  DynamicGraph a(ctx_, gen::cycle_graph(8));
  DynamicGraph b(ctx_, gen::path_graph(8));
  EXPECT_NE(a.uid(), b.uid());
  EXPECT_EQ(a.epoch(), b.epoch());
  ConnectivityOracle oracle;
  oracle.refresh(ctx_, a);
  EXPECT_EQ(oracle.num_bridges(), 0u);
  EXPECT_TRUE(oracle.refresh(ctx_, b));  // same epoch, different graph
  EXPECT_EQ(oracle.num_bridges(), 7u);
  EXPECT_FALSE(oracle.refresh(ctx_, b));
  EXPECT_TRUE(oracle.refresh(ctx_, a));
}

TEST_P(DynamicParam, ConstructorIgnoresOutOfRangeEndpoints) {
  graph::EdgeList raw;
  raw.num_nodes = 3;
  raw.edges = {{0, 1}, {0, 7}, {-2, 1}, {1, 2}};
  const DynamicGraph dg(ctx_, raw);
  EXPECT_EQ(dg.num_edges(), 2u);
  EXPECT_TRUE(dg.has_edge(0, 1));
  EXPECT_TRUE(dg.has_edge(1, 2));
}

TEST_P(DynamicParam, RefreshSkipsWhenEpochUnchanged) {
  DynamicGraph dg(4);
  dg.insert_edges(ctx_, {{0, 1}, {1, 2}});
  ConnectivityOracle oracle;
  EXPECT_TRUE(oracle.refresh(ctx_, dg));
  EXPECT_FALSE(oracle.refresh(ctx_, dg));  // nothing changed
  dg.insert_edges(ctx_, {{1, 0}});         // no-op update batch
  dg.erase_edges(ctx_, {{0, 2}});          // absent: another no-op
  EXPECT_FALSE(oracle.refresh(ctx_, dg));
  EXPECT_EQ(oracle.rebuilds(), 1u);
  EXPECT_EQ(oracle.refreshes_skipped(), 2u);
  dg.insert_edges(ctx_, {{2, 3}});  // effective (cross-component: tree-link)
  EXPECT_TRUE(oracle.refresh(ctx_, dg));
  EXPECT_EQ(oracle.rebuilds(), 1u);
  EXPECT_EQ(oracle.incremental_refreshes(), 1u);
  EXPECT_EQ(oracle.tree_links(), 1u);
}

// Adversarial inputs the dynamic path produces, cross-checked against the
// standalone two_edge_components / biconnectivity entry points.
TEST_P(DynamicParam, TwoEccOnDynamicSnapshots) {
  DynamicGraph dg(6);
  ConnectivityOracle oracle;

  // Disconnected snapshot (two paths): every node is its own 2ecc.
  dg.insert_edges(ctx_, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  oracle.refresh(ctx_, dg);
  const EdgeList& snap = dg.snapshot(ctx_);
  const auto mask = bridges::find_bridges_dfs(dg.snapshot_csr(ctx_));
  const auto labels = bridges::two_edge_components(ctx_, snap, mask);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      EXPECT_EQ(labels[u] == labels[v], oracle.same_2ecc(u, v));
    }
  }
  EXPECT_EQ(oracle.num_blocks(), 6u);

  // Cycle-closing inserts kill every bridge; the snapshot (now connected)
  // also satisfies the biconnectivity entry point's precondition.
  dg.insert_edges(ctx_, {{2, 3}, {5, 0}});
  oracle.refresh(ctx_, dg);
  EXPECT_EQ(oracle.num_bridges(), 0u);
  EXPECT_EQ(oracle.num_blocks(), 1u);
  const auto bcc = bridges::biconnectivity_tv(ctx_, dg.snapshot(ctx_));
  EXPECT_EQ(bcc.num_blocks, 1u);  // a cycle is one block
  for (const auto a : bcc.is_articulation) EXPECT_EQ(a, 0);
}

// ------------------------------------------------ launch-count guarantees

TEST(DynamicLaunches, QueryBatchesAreSingleKernels) {
  const device::Context ctx = device::Context::device();
  DynamicGraph dg(ctx, gen::road_graph(20, 20, 0.7, 0.05, 3));
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  util::Rng rng(11);
  std::vector<std::pair<NodeId, NodeId>> queries(4096);
  for (auto& [u, v] : queries) {
    u = static_cast<NodeId>(rng.below(dg.num_nodes()));
    v = static_cast<NodeId>(rng.below(dg.num_nodes()));
  }
  std::vector<NodeId> singles(4096);
  for (auto& v : singles) v = static_cast<NodeId>(rng.below(dg.num_nodes()));

  std::vector<std::uint8_t> same;
  std::uint64_t before = ctx.launch_count();
  oracle.same_2ecc_batch(ctx, queries, same);
  EXPECT_EQ(ctx.launch_count() - before, 1u);  // no per-query launches

  std::vector<NodeId> dist;
  before = ctx.launch_count();
  oracle.bridges_on_path_batch(ctx, queries, dist);
  EXPECT_EQ(ctx.launch_count() - before, 1u);

  std::vector<NodeId> sizes;
  before = ctx.launch_count();
  oracle.component_size_batch(ctx, singles, sizes);
  EXPECT_EQ(ctx.launch_count() - before, 1u);
}

TEST(DynamicLaunches, UpdateBatchLaunchesIndependentOfBatchSize) {
  const device::Context ctx = device::Context::device();
  auto launches_for = [&](std::size_t batch_size) {
    DynamicGraph dg(2000);
    util::Rng rng(batch_size);
    std::vector<Edge> batch(batch_size);
    for (auto& e : batch) {
      e.u = static_cast<NodeId>(rng.below(2000));
      e.v = static_cast<NodeId>(rng.below(2000));
    }
    const std::uint64_t before = ctx.launch_count();
    dg.insert_edges(ctx, batch);
    return ctx.launch_count() - before;
  };
  // Sort pass counts adapt to key bits, not batch size; everything else is
  // a fixed kernel sequence. A 64x larger batch must not launch more.
  EXPECT_LE(launches_for(1 << 16), launches_for(1 << 10) + 2);
}

// ------------------------------------------------------------------- fuzz

TEST(DynamicFuzz, OracleMatchesFromScratchRecompute) {
  const device::Context ctx(2);
  constexpr NodeId kNodes = 48;
  const std::uint64_t seed = test_support::fuzz_seed(2026);
  const int rounds = test_support::fuzz_rounds(120);
  util::Rng rng(seed);
  test_support::BatchScript script;

  DynamicGraph dg(kNodes);
  ConnectivityOracle oracle;
  std::set<std::pair<NodeId, NodeId>> ref_edges;

  for (int round = 0; round < rounds; ++round) {
    std::vector<Edge> batch;
    const std::size_t size = 1 + rng.below(24);
    const bool erase = round % 3 == 2 && !ref_edges.empty();
    if (erase) {
      // Mix of existing edges and absent ones (which must be ignored).
      std::vector<std::pair<NodeId, NodeId>> pool(ref_edges.begin(),
                                                  ref_edges.end());
      for (std::size_t i = 0; i < size; ++i) {
        if (rng.below(2) == 0) {
          const auto& [u, v] = pool[rng.below(pool.size())];
          batch.push_back({u, v});
        } else {
          batch.push_back({static_cast<NodeId>(rng.below(kNodes)),
                           static_cast<NodeId>(rng.below(kNodes))});
        }
      }
      for (const Edge& e : batch) {
        ref_edges.erase({std::min(e.u, e.v), std::max(e.u, e.v)});
      }
      script.add(round, "erase", batch);
      dg.erase_edges(ctx, batch);
    } else {
      for (std::size_t i = 0; i < size; ++i) {
        const auto u = static_cast<NodeId>(rng.below(kNodes));
        const auto v = static_cast<NodeId>(rng.below(kNodes));
        batch.push_back({u, v});
        if (u != v) ref_edges.insert({std::min(u, v), std::max(u, v)});
      }
      script.add(round, "insert", batch);
      dg.insert_edges(ctx, batch);
    }
    // The round's asserts live in an immediately-invoked lambda so a fatal
    // failure returns HERE (not out of the test), letting the replay print
    // below fire for every mismatch.
    [&] {
      ASSERT_EQ(dg.num_edges(), ref_edges.size()) << "round " << round;
      ASSERT_EQ(edge_set(dg.snapshot(ctx)), ref_edges) << "round " << round;
      oracle.refresh(ctx, dg);
      ASSERT_EQ(oracle.built_epoch(), dg.epoch());
      expect_oracle_matches_reference(
          ctx, dg, oracle, rng, 24, ("round " + std::to_string(round)).c_str());
    }();
    if (::testing::Test::HasFailure()) {
      std::cerr << script.replay(seed, rounds);
      return;
    }
  }
}

}  // namespace
}  // namespace emc::dynamic
