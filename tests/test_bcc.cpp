// Vertex biconnectivity: the BccIndex artifact and the four request
// families built on it (Articulations, SameBcc, BfsLevels, CcMembership).
//
// Four pillars:
//   deterministic shapes — paths, cycles, bowties, multigraphs,
//     self-loops, disconnected and edgeless graphs pin the exact
//     block/articulation structure the bulk Tarjan-Vishkin pipeline must
//     produce, checked against the sequential Hopcroft-Tarjan reference;
//   differential fuzz — seed-replayable rounds across the whole gen suite
//     (with injected parallel edges and self-loops) diff every family on
//     the Session/View path AND the K-sharded gadget-skeleton stitch
//     against the reference. Replay with EMC_FUZZ_SEED/EMC_FUZZ_ROUNDS;
//   launch pins — bulk batches cost exactly ONE answer kernel on the
//     device route, zero on the host route, and BfsLevels pairs sharing a
//     source share one traversal;
//   failpoints — engine.snapshot/engine.publish faults during (eager) BCC
//     artifact builds leave the session resumable at the old epoch.
#include "bcc/bcc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <memory>
#include <utility>
#include <vector>

#include "bridges/stitch.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "serve/serve.hpp"
#include "shard/shard.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace emc::bcc {
namespace {

using engine::Engine;
using engine::Policy;
using engine::Session;
using engine::View;
using graph::Edge;
using graph::EdgeList;
using test_support::ReferenceBcc;

namespace failpoint = util::failpoint;

/// Label arrays that must induce the same partition without agreeing on
/// representatives (block ids, component labels). kNoNode must map to
/// kNoNode exactly.
void expect_same_partition(const std::vector<NodeId>& got,
                           const std::vector<NodeId>& want,
                           const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  std::map<NodeId, NodeId> fwd, rev;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] == kNoNode || want[i] == kNoNode) {
      EXPECT_EQ(got[i], want[i]) << what << " sentinel mismatch at " << i;
      continue;
    }
    const auto [f, fnew] = fwd.insert({got[i], want[i]});
    EXPECT_EQ(f->second, want[i]) << what << " split at " << i;
    const auto [r, rnew] = rev.insert({want[i], got[i]});
    EXPECT_EQ(r->second, got[i]) << what << " merge at " << i;
  }
}

/// Direct artifact build (no engine): the unit-shape harness.
BccIndex build_index(const device::Context& ctx, const EdgeList& g) {
  const bridges::SpanningForest forest = bridges::cc_spanning_forest(ctx, g);
  return BccIndex::build(ctx, g, forest);
}

void expect_matches_reference(const BccIndex& index, const EdgeList& g,
                              const char* what) {
  const ReferenceBcc ref(g);
  expect_same_partition(index.edge_block, ref.edge_block, what);
  ASSERT_EQ(index.num_blocks, ref.num_blocks) << what;
  std::size_t want_arts = 0;
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    EXPECT_EQ(index.is_articulation[v] != 0, ref.is_articulation[v] != 0)
        << what << " articulation(" << v << ")";
    want_arts += ref.is_articulation[v];
  }
  EXPECT_EQ(index.num_articulations, want_arts) << what;
  for (NodeId u = 0; u < g.num_nodes; ++u) {
    for (NodeId v = 0; v < g.num_nodes; ++v) {
      EXPECT_EQ(index.same_bcc(u, v), ref.same_bcc(u, v))
          << what << " same_bcc(" << u << ", " << v << ")";
    }
  }
}

// ------------------------------------------------------- deterministic

TEST(BccIndex, PathEveryInternalVertexCuts) {
  const device::Context ctx = device::Context::sequential();
  const EdgeList g = gen::path_graph(5);
  const BccIndex index = build_index(ctx, g);
  EXPECT_EQ(index.num_blocks, 4u);  // every edge its own block
  EXPECT_EQ(index.num_articulations, 3u);
  EXPECT_FALSE(index.is_articulation[0]);
  EXPECT_TRUE(index.is_articulation[2]);
  EXPECT_TRUE(index.same_bcc(1, 2));
  EXPECT_FALSE(index.same_bcc(0, 2));
  expect_matches_reference(index, g, "path5");
}

TEST(BccIndex, CycleIsOneBlockWithNoCuts) {
  const device::Context ctx = device::Context::sequential();
  const EdgeList g = gen::cycle_graph(7);
  const BccIndex index = build_index(ctx, g);
  EXPECT_EQ(index.num_blocks, 1u);
  EXPECT_EQ(index.num_articulations, 0u);
  EXPECT_TRUE(index.same_bcc(0, 4));
  expect_matches_reference(index, g, "cycle7");
}

TEST(BccIndex, BowtiePinsTheSharedCutVertex) {
  const device::Context ctx = device::Context::sequential();
  EdgeList g;
  g.num_nodes = 5;  // triangles {0,1,2} and {2,3,4} sharing vertex 2
  g.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}};
  const BccIndex index = build_index(ctx, g);
  EXPECT_EQ(index.num_blocks, 2u);
  EXPECT_EQ(index.num_articulations, 1u);
  EXPECT_TRUE(index.is_articulation[2]);
  EXPECT_TRUE(index.same_bcc(0, 2));
  EXPECT_TRUE(index.same_bcc(2, 4));
  EXPECT_FALSE(index.same_bcc(1, 3));
  expect_matches_reference(index, g, "bowtie");
}

TEST(BccIndex, DisconnectedComponentsAndIsolatedNodes) {
  const device::Context ctx = device::Context::sequential();
  EdgeList g;
  g.num_nodes = 7;  // triangle {0,1,2}, lone edge {4,5}, isolated 3 and 6
  g.edges = {{0, 1}, {1, 2}, {0, 2}, {4, 5}};
  const BccIndex index = build_index(ctx, g);
  EXPECT_EQ(index.num_blocks, 2u);
  EXPECT_EQ(index.num_articulations, 0u);
  EXPECT_TRUE(index.same_bcc(4, 5));
  EXPECT_FALSE(index.same_bcc(0, 4));
  EXPECT_FALSE(index.same_bcc(3, 6));  // isolated nodes share no block
  EXPECT_TRUE(index.same_bcc(3, 3));   // but trivially with themselves
  expect_matches_reference(index, g, "disconnected");
}

TEST(BccIndex, MultigraphParallelEdgesGlueOneBlockAndSelfLoopsAreNoBlock) {
  const device::Context ctx = device::Context::sequential();
  EdgeList g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {0, 1}, {1, 2}, {1, 1}};
  const BccIndex index = build_index(ctx, g);
  EXPECT_EQ(index.num_blocks, 2u);  // {e0,e1} and {e2}; the loop in neither
  EXPECT_EQ(index.edge_block[0], index.edge_block[1]);
  EXPECT_NE(index.edge_block[0], index.edge_block[2]);
  EXPECT_EQ(index.edge_block[3], kNoNode);
  EXPECT_EQ(index.num_articulations, 1u);
  EXPECT_TRUE(index.is_articulation[1]);
  expect_matches_reference(index, g, "multigraph");
}

TEST(BccIndex, EdgelessGraphHasNoBlocks) {
  const device::Context ctx = device::Context::sequential();
  EdgeList g;
  g.num_nodes = 4;
  const BccIndex index = build_index(ctx, g);
  EXPECT_EQ(index.num_blocks, 0u);
  EXPECT_EQ(index.num_articulations, 0u);
  EXPECT_FALSE(index.same_bcc(0, 3));
  expect_matches_reference(index, g, "edgeless");
}

// ------------------------------------------------------------------ fuzz

/// One graph from the gen suite, plus injected multigraph noise: parallel
/// copies of existing edges and self-loops, the corner inputs the issue
/// calls out. Round-robins every generator family.
EdgeList fuzz_graph(util::Rng& rng, int round, std::uint64_t seed) {
  EdgeList g;
  switch (round % 7) {
    case 0:
      g = gen::er_graph(static_cast<NodeId>(2 + rng.below(120)),
                        rng.below(300), seed + round);
      break;
    case 1:
      g = gen::road_graph(static_cast<NodeId>(2 + rng.below(10)),
                          static_cast<NodeId>(2 + rng.below(10)), 0.7, 0.05,
                          seed + round);
      break;
    case 2:
      g = gen::rmat_graph(3 + static_cast<int>(rng.below(4)), 2.0, 0.45, 0.2,
                          0.2, seed + round);
      break;
    case 3:
      g = gen::kron_graph(3 + static_cast<int>(rng.below(4)), 2.5,
                          seed + round);
      break;
    case 4:
      g = gen::social_graph(3 + static_cast<int>(rng.below(4)), 2.0,
                            seed + round);
      break;
    case 5:
      g = gen::cycle_graph(static_cast<NodeId>(3 + rng.below(60)));
      break;
    default:
      g = gen::path_graph(static_cast<NodeId>(2 + rng.below(60)));
      break;
  }
  if (rng.below(4) == 0 && !g.edges.empty()) {  // parallel copies
    for (std::size_t i = rng.below(4); i-- > 0;) {
      g.edges.push_back(g.edges[rng.below(g.edges.size())]);
    }
  }
  if (rng.below(4) == 0) {  // self-loops
    const auto v = static_cast<NodeId>(rng.below(g.num_nodes));
    g.edges.push_back({v, v});
  }
  if (rng.below(8) == 0) g.edges.clear();  // edgeless corner
  return g;
}

std::vector<std::pair<NodeId, NodeId>> fuzz_pairs(util::Rng& rng,
                                                  const EdgeList& g,
                                                  std::size_t count) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t i = 0; i < count; ++i) {
    if (!g.edges.empty() && rng.below(3) == 0) {
      // Adjacent pairs: the same_bcc == true cases random pairs rarely hit.
      const Edge& e = g.edges[rng.below(g.edges.size())];
      pairs.push_back({e.u, e.v});
    } else {
      pairs.push_back({static_cast<NodeId>(rng.below(g.num_nodes)),
                       static_cast<NodeId>(rng.below(g.num_nodes))});
    }
  }
  if (count != 0) pairs.push_back({pairs[0].first, pairs[0].first});
  return pairs;
}

TEST(BccFuzz, DifferentialVsHopcroftTarjanAcrossGenSuite) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/7741, /*rounds=*/120);
  SCOPED_TRACE(fuzz.trace);
  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  Policy device_route;
  device_route.min_device_batch = 1;

  util::Rng rng(fuzz.seed);
  for (int round = 0; round < fuzz.rounds; ++round) {
    const EdgeList g = fuzz_graph(rng, round, fuzz.seed);
    SCOPED_TRACE("round " + std::to_string(round) + " n=" +
                 std::to_string(g.num_nodes) + " m=" +
                 std::to_string(g.edges.size()));
    Session session = engine.session(g);
    const ReferenceBcc ref(g);

    // Articulations: the whole-graph mask, exact.
    const std::vector<std::uint8_t> arts = session.run(engine::Articulations{});
    ASSERT_EQ(arts.size(), static_cast<std::size_t>(g.num_nodes));
    for (NodeId v = 0; v < g.num_nodes; ++v) {
      ASSERT_EQ(arts[v] != 0, ref.is_articulation[v] != 0)
          << "articulation(" << v << ")";
    }

    // SameBcc: host and device routes, both against the reference.
    const auto pairs = fuzz_pairs(rng, g, 60);
    const auto same_host = session.run(engine::SameBcc{pairs});
    const auto same_dev = session.run(engine::SameBcc{pairs}, device_route);
    for (std::size_t q = 0; q < pairs.size(); ++q) {
      const auto [u, v] = pairs[q];
      ASSERT_EQ(same_host[q] != 0, ref.same_bcc(u, v))
          << "same_bcc(" << u << ", " << v << ") host";
      ASSERT_EQ(same_dev[q], same_host[q])
          << "same_bcc(" << u << ", " << v << ") device vs host";
    }

    // BfsLevels: grouped-by-source levels against the sequential BFS.
    const graph::Csr csr = graph::build_csr(ref_ctx, g);
    std::vector<std::pair<NodeId, NodeId>> bfs_pairs;
    std::array<NodeId, 3> sources;
    for (auto& s : sources) s = static_cast<NodeId>(rng.below(g.num_nodes));
    for (int q = 0; q < 24; ++q) {
      bfs_pairs.push_back({sources[rng.below(sources.size())],
                           static_cast<NodeId>(rng.below(g.num_nodes))});
    }
    const auto levels_host = session.run(engine::BfsLevels{bfs_pairs});
    const auto levels_dev =
        session.run(engine::BfsLevels{bfs_pairs}, device_route);
    std::map<NodeId, std::vector<NodeId>> dist;
    for (const NodeId s : sources) {
      if (!dist.count(s)) dist[s] = test_support::bfs_levels(csr, s);
    }
    for (std::size_t q = 0; q < bfs_pairs.size(); ++q) {
      const auto [s, t] = bfs_pairs[q];
      ASSERT_EQ(levels_host[q], dist[s][t])
          << "bfs_level(" << s << " -> " << t << ")";
      ASSERT_EQ(levels_dev[q], levels_host[q])
          << "bfs_level(" << s << " -> " << t << ") device vs host";
    }

    // CcMembership: representative labels — compare the partition.
    std::vector<NodeId> nodes(static_cast<std::size_t>(g.num_nodes));
    for (NodeId v = 0; v < g.num_nodes; ++v) nodes[v] = v;
    const auto cc_got = session.run(engine::CcMembership{nodes});
    const auto cc_dev =
        session.run(engine::CcMembership{nodes}, device_route);
    expect_same_partition(cc_got, test_support::cc_labels(g), "cc_membership");
    ASSERT_EQ(cc_dev, cc_got);
  }
}

// ------------------------------------------------------------ launch pins

TEST(BccPins, ArtifactIsBuiltOncePerEpochAndRerunsAreFree) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::road_graph(20, 20, 0.72, 0.04, 11);
  Session session = engine.session(g);

  const auto first = session.run(engine::Articulations{});
  ASSERT_GT(engine.stats().artifact_builds, 0u);

  // Same epoch: the mask re-serves from the cached index, the host-route
  // batch walks it — zero further kernel launches.
  const std::uint64_t before = engine.device_launches();
  const auto second = session.run(engine::Articulations{});
  const auto same = session.run(engine::SameBcc{{{0, 1}, {3, 7}}});
  EXPECT_EQ(engine.device_launches(), before);
  EXPECT_EQ(second, first);
  EXPECT_EQ(same.size(), 2u);
}

TEST(BccPins, ForcedDeviceBatchesCostExactlyOneKernel) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::road_graph(20, 20, 0.72, 0.04, 12);
  Session session = engine.session(g);
  session.run(engine::Articulations{});  // artifacts in place

  Policy device_route;
  device_route.min_device_batch = 1;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<NodeId> nodes;
  util::Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    pairs.push_back({static_cast<NodeId>(rng.below(g.num_nodes)),
                     static_cast<NodeId>(rng.below(g.num_nodes))});
    nodes.push_back(static_cast<NodeId>(rng.below(g.num_nodes)));
  }
  const std::uint64_t before = engine.device_launches();
  session.run(engine::SameBcc{pairs}, device_route);
  EXPECT_EQ(engine.device_launches(), before + 1);
  session.run(engine::CcMembership{nodes}, device_route);
  EXPECT_EQ(engine.device_launches(), before + 2);
}

TEST(BccPins, BfsLevelsPairsSharingASourceShareOneTraversal) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::road_graph(20, 20, 0.72, 0.04, 13);
  Session session = engine.session(g);
  session.run(engine::Articulations{});

  Policy device_route;
  device_route.min_device_batch = 1;
  const NodeId s = 7;
  session.run(engine::BfsLevels{{{s, 0}}}, device_route);  // warm the CSR
  const std::uint64_t before_one = engine.device_launches();
  session.run(engine::BfsLevels{{{s, 12}}}, device_route);
  const std::uint64_t one = engine.device_launches() - before_one;
  ASSERT_GT(one, 0u);

  std::vector<std::pair<NodeId, NodeId>> batch;
  for (NodeId t = 0; t < 16; ++t) batch.push_back({s, t});
  const std::uint64_t before_many = engine.device_launches();
  session.run(engine::BfsLevels{batch}, device_route);
  // The pin: 16 same-source pairs, exactly the one traversal's launches.
  EXPECT_EQ(engine.device_launches() - before_many, one);
}

TEST(BccPins, EnvFloorForcesTheDeviceRoute) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::road_graph(16, 16, 0.72, 0.04, 14);
  Session session = engine.session(g);
  session.run(engine::Articulations{});

  ASSERT_EQ(setenv("EMC_BCC_MIN_DEVICE_BATCH", "1", 1), 0);
  const std::uint64_t before = engine.device_launches();
  // Default policy would host-route a 2-pair batch; the env floor wins.
  session.run(engine::SameBcc{{{0, 1}, {2, 3}}});
  EXPECT_EQ(engine.device_launches(), before + 1);
  unsetenv("EMC_BCC_MIN_DEVICE_BATCH");

  const std::uint64_t after = engine.device_launches();
  session.run(engine::SameBcc{{{0, 1}, {2, 3}}});
  EXPECT_EQ(engine.device_launches(), after);  // host route again
}

TEST(BccPins, EagerEnvBuildsTheIndexAtPublish) {
  ASSERT_EQ(setenv("EMC_BCC_EAGER", "1", 1), 0);
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(48));
  Session session = engine.session(dg);
  View view = session.view();  // publish ran the eager build
  const std::uint64_t before = engine.device_launches();
  const auto arts = view.run(engine::Articulations{});
  EXPECT_EQ(engine.device_launches(), before);  // already built
  EXPECT_EQ(arts.size(), 48u);
  unsetenv("EMC_BCC_EAGER");
}

// ------------------------------------------------------------- dispatcher

TEST(BccServe, AllFourFamiliesEndToEndThroughTheDispatcher) {
  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::road_graph(16, 16, 0.75, 0.05, 21)));
  Session session = engine.session(g);
  const ReferenceBcc ref(g);
  const graph::Csr csr = graph::build_csr(ref_ctx, g);

  serve::DispatcherOptions options;
  options.workers = 2;
  serve::Dispatcher dispatcher(session.view(), options);

  auto arts = dispatcher.submit(engine::Articulations{});
  auto same = dispatcher.submit(engine::SameBcc{{{0, 1}, {0, 5}, {3, 3}}});
  auto levels = dispatcher.submit(engine::BfsLevels{{{0, 1}, {0, 9}}});
  auto cc = dispatcher.submit(engine::CcMembership{{0, 1, 2, 3}});

  const auto arts_reply = arts.get();
  ASSERT_EQ(arts_reply.status, serve::Status::kOk);
  ASSERT_EQ(arts_reply.value.size(), static_cast<std::size_t>(g.num_nodes));
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    EXPECT_EQ(arts_reply.value[v] != 0, ref.is_articulation[v] != 0);
  }
  const auto same_reply = same.get();
  ASSERT_TRUE(same_reply.ok());
  EXPECT_EQ(same_reply.value[0] != 0, ref.same_bcc(0, 1));
  EXPECT_EQ(same_reply.value[1] != 0, ref.same_bcc(0, 5));
  EXPECT_NE(same_reply.value[2], 0u);
  const auto levels_reply = levels.get();
  ASSERT_TRUE(levels_reply.ok());
  const std::vector<NodeId> dist = test_support::bfs_levels(csr, 0);
  EXPECT_EQ(levels_reply.value[0], dist[1]);
  EXPECT_EQ(levels_reply.value[1], dist[9]);
  const auto cc_reply = cc.get();
  ASSERT_TRUE(cc_reply.ok());
  ASSERT_EQ(cc_reply.value.size(), 4u);  // one component: labels all equal
  EXPECT_EQ(cc_reply.value[0], cc_reply.value[3]);

  dispatcher.stop();
  const serve::DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.answered, 4u);
  EXPECT_EQ(stats.unsupported, 0u);
  EXPECT_EQ(stats.submitted,
            stats.answered + stats.shed + stats.rejected + stats.expired +
                stats.cancelled + stats.faulted + stats.unsupported);
}

TEST(BccServe, CoalescerDedupCachePinsRepeatedPairsInOneRound) {
  Engine engine({.device_workers = 2});
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::road_graph(16, 16, 0.75, 0.05, 22)));
  Session session = engine.session(g);
  const ReferenceBcc ref(g);

  Policy device_route;
  device_route.min_device_batch = 1;
  serve::DispatcherOptions options;
  options.workers = 1;  // deterministic: one drainer, one round
  options.start_paused = true;
  serve::Dispatcher dispatcher(session.view(device_route), options);
  session.run(engine::Articulations{});  // artifact up front, off the pin

  // A Zipf-shaped round: 12x the hot pair, 4x a second pair, 1x the hot
  // pair reversed (order-sensitive: {b,a} is NOT a duplicate of {a,b}).
  const std::pair<NodeId, NodeId> hot{0, 1}, warm{2, 5};
  std::vector<std::pair<NodeId, NodeId>> submitted;
  std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>> futures;
  for (int i = 0; i < 12; ++i) submitted.push_back(hot);
  for (int i = 0; i < 4; ++i) submitted.push_back(warm);
  submitted.push_back({hot.second, hot.first});
  for (const auto& pair : submitted) {
    futures.push_back(dispatcher.submit(engine::SameBcc{{pair}}));
  }

  const std::uint64_t before = engine.device_launches();
  dispatcher.resume();
  for (std::size_t i = 0; i < submitted.size(); ++i) {
    const auto reply = futures[i].get();
    ASSERT_EQ(reply.status, serve::Status::kOk);
    ASSERT_EQ(reply.value.size(), 1u);
    const auto [u, v] = submitted[i];
    EXPECT_EQ(reply.value[0] != 0, ref.same_bcc(u, v)) << u << "," << v;
  }
  // The pins: 17 payload pairs, 3 distinct -> 14 cache hits, and still
  // exactly ONE bulk kernel for the whole round.
  EXPECT_EQ(engine.device_launches(), before + 1);
  dispatcher.stop();
  const serve::DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.coalesced_requests, submitted.size());
  EXPECT_EQ(stats.coalesce_cache_hits, 14u);
  EXPECT_EQ(stats.answered, submitted.size());
}

// ---------------------------------------------------------------- sharded

/// Random simple graph (sharded stores have set semantics: duplicates and
/// self-loops are dropped at the façade, so the canonical edge set is the
/// deduped one — multigraph coverage lives in the unsharded fuzz above).
EdgeList random_simple(util::Rng& rng, NodeId n, std::size_t tries) {
  std::map<std::uint64_t, Edge> keyed;
  for (std::size_t i = 0; i < tries; ++i) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) continue;
    const auto lo = std::min(u, v), hi = std::max(u, v);
    keyed.insert({(static_cast<std::uint64_t>(lo) << 32) | hi, Edge{u, v}});
  }
  EdgeList g;
  g.num_nodes = n;
  for (const auto& [key, e] : keyed) g.edges.push_back(e);
  return g;
}

shard::ShardedOptions fast_options(std::size_t shards) {
  shard::ShardedOptions opts;
  opts.shards = shards;
  opts.shard_workers = 1;
  opts.ingest.admission = ingest::Admission::kBlock;
  opts.ingest.max_batch = 8;
  opts.ingest.linger = std::chrono::microseconds(0);
  opts.ingest.publish_every = 1;
  opts.dispatch.workers = 1;
  return opts;
}

void expect_sharded_matches(Engine& engine, const shard::ShardedView& view,
                            const EdgeList& expected) {
  const NodeId n = expected.num_nodes;
  Session session = engine.session(expected);
  const ReferenceBcc ref(expected);

  const auto got_arts = view.run(engine::Articulations{});
  const auto want_arts = session.run(engine::Articulations{});
  ASSERT_EQ(got_arts.size(), static_cast<std::size_t>(n));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u; v < n; ++v) pairs.push_back({u, v});
  }
  const auto got_same = view.run(engine::SameBcc{pairs});
  const auto want_same = session.run(engine::SameBcc{{pairs}});
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(got_arts[v] != 0, ref.is_articulation[v] != 0)
        << "articulation(" << v << ") vs reference";
    ASSERT_EQ(got_arts[v], want_arts[v])
        << "articulation(" << v << ") vs unsharded session";
    ASSERT_EQ(view.is_articulation(v), got_arts[v] != 0);
  }
  for (std::size_t q = 0; q < pairs.size(); ++q) {
    const auto [u, v] = pairs[q];
    ASSERT_EQ(got_same[q] != 0, ref.same_bcc(u, v))
        << "same_bcc(" << u << ", " << v << ") vs reference";
    ASSERT_EQ(got_same[q], want_same[q])
        << "same_bcc(" << u << ", " << v << ") vs unsharded session";
    ASSERT_EQ(view.same_bcc(u, v), got_same[q] != 0);
  }

  std::vector<NodeId> nodes(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) nodes[v] = v;
  const auto got_cc = view.run(engine::CcMembership{nodes});
  expect_same_partition(got_cc, test_support::cc_labels(expected),
                        "sharded cc_membership");
}

TEST(BccShard, CrossShardShapesStitchExactly) {
  Engine engine({.device_workers = 2});

  // Bowtie split across 2 shards (even/odd): cut vertex 2 is a boundary
  // endpoint AND a local articulation.
  {
    EdgeList g;
    g.num_nodes = 6;
    g.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}};
    shard::ShardedGraph sg(6, g, fast_options(2));
    sg.flush();
    expect_sharded_matches(engine, sg.view(), g);
  }
  // Cycle through 3 shards: every edge a boundary edge, one global block,
  // no articulations anywhere.
  {
    const EdgeList g = gen::cycle_graph(6);
    shard::ShardedGraph sg(6, g, fast_options(3));
    sg.flush();
    expect_sharded_matches(engine, sg.view(), g);
  }
  // Path through 2 shards: every internal vertex cuts, every vertex is a
  // boundary endpoint (so every one is preserved in the skeleton).
  {
    const EdgeList g = gen::path_graph(5);
    shard::ShardedGraph sg(5, g, fast_options(2));
    sg.flush();
    expect_sharded_matches(engine, sg.view(), g);
  }
  // The block-star killer: a local triangle {0,2,4} with two ears through
  // the other shard (0-1-3-4). The union is ONE biconnected block; a
  // stitch that contracted the local block to a star would wrongly call
  // its vertices articulations.
  {
    EdgeList g;
    g.num_nodes = 5;
    g.edges = {{0, 2}, {2, 4}, {0, 4}, {0, 1}, {1, 3}, {3, 4}};
    shard::ShardedGraph sg(5, g, fast_options(2));
    sg.flush();
    expect_sharded_matches(engine, sg.view(), g);
  }
  // Shards that own zero vertices (n=2, K=4) still stitch.
  {
    EdgeList g;
    g.num_nodes = 2;
    g.edges = {{0, 1}};
    shard::ShardedGraph sg(2, g, fast_options(4));
    sg.flush();
    expect_sharded_matches(engine, sg.view(), g);
  }
}

TEST(BccShard, DifferentialFuzzVsUnshardedAndReference) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/6163, /*rounds=*/40);
  SCOPED_TRACE(fuzz.trace);
  Engine engine({.device_workers = 2});

  util::Rng rng(fuzz.seed);
  for (int round = 0; round < fuzz.rounds; ++round) {
    const auto n = static_cast<NodeId>(2 + rng.below(22));
    const std::size_t shards = 1 + rng.below(4);
    const EdgeList g = random_simple(rng, n, 2 + rng.below(40));
    SCOPED_TRACE("round " + std::to_string(round) + " n=" +
                 std::to_string(n) + " m=" + std::to_string(g.edges.size()) +
                 " k=" + std::to_string(shards));
    shard::ShardedGraph sg(n, g, fast_options(shards));
    sg.flush();
    expect_sharded_matches(engine, sg.view(), g);
  }
}

TEST(BccShard, DispatcherServesThreeFamiliesAndRefusesBfsHonestly) {
  EdgeList g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}};
  shard::ShardedGraph sg(6, g, fast_options(2));
  sg.flush();
  shard::ShardedDispatcher dispatcher(sg, {.workers = 2});

  auto arts = dispatcher.submit(engine::Articulations{});
  auto same = dispatcher.submit(engine::SameBcc{{{0, 1}, {1, 3}}});
  auto cc = dispatcher.submit(engine::CcMembership{{0, 3, 5}});
  auto bfs = dispatcher.submit(engine::BfsLevels{{{0, 4}}});

  const shard::ShardedView view = sg.view();
  const auto arts_reply = arts.get();
  ASSERT_EQ(arts_reply.status, serve::Status::kOk);
  EXPECT_EQ(arts_reply.value, view.run(engine::Articulations{}));
  const auto same_reply = same.get();
  ASSERT_TRUE(same_reply.ok());
  EXPECT_EQ(same_reply.value, view.run(engine::SameBcc{{{0, 1}, {1, 3}}}));
  const auto cc_reply = cc.get();
  ASSERT_TRUE(cc_reply.ok());
  EXPECT_EQ(cc_reply.value, view.run(engine::CcMembership{{{0, 3, 5}}}));
  // The honest refusal: exact cross-shard BFS is a recorded follow-up, so
  // the façade resolves immediately with kUnsupported — never kOk with a
  // wrong level, never a hang.
  const auto bfs_reply = bfs.get();
  EXPECT_EQ(bfs_reply.status, serve::Status::kUnsupported);
  EXPECT_TRUE(bfs_reply.value.empty());

  dispatcher.stop();
  const shard::ShardedStats stats = dispatcher.stats();
  EXPECT_EQ(stats.dispatch.submitted, 4u);
  EXPECT_EQ(stats.dispatch.answered, 3u);
  EXPECT_EQ(stats.dispatch.unsupported, 1u);
  EXPECT_EQ(stats.dispatch.submitted,
            stats.dispatch.answered + stats.dispatch.shed +
                stats.dispatch.rejected + stats.dispatch.expired +
                stats.dispatch.cancelled + stats.dispatch.faulted +
                stats.dispatch.unsupported);
}

// ------------------------------------------------------------- failpoints

TEST(BccFailpoints, MidBuildFaultLeavesTheSessionResumableAtTheOldEpoch) {
  failpoint::disable_all();
  ASSERT_EQ(setenv("EMC_BCC_EAGER", "1", 1), 0);  // build inside publish
  for (const char* site : {failpoint::kSnapshot, failpoint::kPublish}) {
    SCOPED_TRACE(site);
    Engine engine({.device_workers = 2});
    dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(32));
    Session session = engine.session(dg);
    View v0 = session.view();
    const auto arts0 = v0.run(engine::Articulations{});  // cycle: no cuts

    // Erasing {10,11} opens the cycle into a path: internal cuts appear.
    ASSERT_EQ(dg.erase_edges(engine.device(), {{10, 11}}), 1u);
    ASSERT_TRUE(failpoint::configure(site, "1"));
    EXPECT_THROW(session.refresh(), failpoint::InjectedFault);
    failpoint::disable_all();

    // The old epoch still serves, untouched by the aborted build.
    EXPECT_EQ(v0.run(engine::Articulations{}), arts0);
    EXPECT_EQ(v0.run(engine::SameBcc{{{0, 16}}})[0], 1u);

    // And the session resumes: the retry publishes and the new epoch's
    // answers match the new graph's reference.
    EXPECT_NO_THROW(session.refresh());
    const ReferenceBcc ref(dg.snapshot(engine.device()));
    const auto arts1 = session.run(engine::Articulations{});
    for (NodeId v = 0; v < 32; ++v) {
      ASSERT_EQ(arts1[v] != 0, ref.is_articulation[v] != 0)
          << "articulation(" << v << ") after resume";
    }
  }
  unsetenv("EMC_BCC_EAGER");
}

TEST(BccFailpoints, AnswersStayCorrectUnderRandomizedPublishFaults) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/3307, /*rounds=*/24);
  SCOPED_TRACE(fuzz.trace);
  ASSERT_EQ(setenv("EMC_BCC_EAGER", "1", 1), 0);

  // Re-arm from the environment explicitly (the CI path); otherwise
  // rotate the publish-side sites ourselves.
  const char* env_spec = std::getenv("EMC_FAILPOINT");
  const bool env_armed =
      env_spec != nullptr && failpoint::configure_from_string(env_spec) > 0;

  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::er_graph(96, 180, fuzz.seed));
  Session session = engine.session(dg);
  util::Rng rng(fuzz.seed * 17 + 3);

  for (int round = 0; round < fuzz.rounds; ++round) {
    if (!env_armed) {
      failpoint::disable_all();
      ASSERT_TRUE(failpoint::configure(
          round % 2 == 0 ? failpoint::kSnapshot : failpoint::kPublish, "0.4"));
    }
    {
      // The writer's own mutation must stay fault-free: it is the ground
      // truth, not the system under test.
      failpoint::ScopedSuspend suspend;
      std::vector<Edge> batch;
      for (int i = 0; i < 4; ++i) {
        batch.push_back({static_cast<NodeId>(rng.below(96)),
                         static_cast<NodeId>(rng.below(96))});
      }
      dg.insert_edges(engine.device(), batch);
    }
    try {
      session.refresh();
    } catch (const failpoint::InjectedFault&) {
      continue;  // resumable: the next round's refresh retries
    }
    // A successful publish must serve exactly its own epoch's truth.
    failpoint::ScopedSuspend suspend;
    const ReferenceBcc ref(session.view().edges());
    const auto arts = session.run(engine::Articulations{});
    const auto pair = std::pair<NodeId, NodeId>{
        static_cast<NodeId>(rng.below(96)), static_cast<NodeId>(rng.below(96))};
    const auto same = session.run(engine::SameBcc{{pair}});
    ASSERT_EQ(same[0] != 0, ref.same_bcc(pair.first, pair.second));
    for (NodeId v = 0; v < 96; ++v) {
      ASSERT_EQ(arts[v] != 0, ref.is_articulation[v] != 0);
    }
  }
  failpoint::disable_all();
  unsetenv("EMC_BCC_EAGER");
}

}  // namespace
}  // namespace emc::bcc
