// Randomized small-instance sweeps: hundreds of tiny trees/graphs, checked
// exhaustively against brute force. Small instances hit boundary conditions
// (roots with one child, parallel edges, stars, near-paths) far more densely
// per CPU-second than large ones.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bridges/biconnectivity.hpp"
#include "bridges/chaitanya_kothapalli.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/hybrid.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "bridges/two_ecc.hpp"
#include "core/euler_tour.hpp"
#include "listrank/listrank.hpp"
#include "core/tree.hpp"
#include "device/context.hpp"
#include "gen/trees.hpp"
#include "graph/graph.hpp"
#include "lca/inlabel.hpp"
#include "lca/naive.hpp"
#include "lca/rmq_lca.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/rng.hpp"

namespace emc {
namespace {

/// Random connected multigraph on n nodes with extra random (possibly
/// parallel) edges: a random spanning tree plus `extra` uniform pairs.
graph::EdgeList random_connected_multigraph(NodeId n, std::size_t extra,
                                            util::Rng& rng) {
  graph::EdgeList g;
  g.num_nodes = n;
  for (NodeId v = 1; v < n; ++v) {
    g.edges.push_back({v, static_cast<NodeId>(rng.below(v))});
  }
  while (g.edges.size() < static_cast<std::size_t>(n - 1) + extra) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u != v) g.edges.push_back({u, v});
  }
  return g;
}

TEST(FuzzLca, ExhaustiveOnTinyTrees) {
  const device::Context ctx(2);
  const test_support::FuzzRun run = test_support::fuzz_run(42, 150);
  SCOPED_TRACE(run.trace);
  util::Rng rng(run.seed);
  for (int round = 0; round < run.rounds; ++round) {
    const NodeId n = 1 + static_cast<NodeId>(rng.below(12));
    const NodeId grasp = rng.below(2) == 0
                             ? gen::kInfiniteGrasp
                             : static_cast<NodeId>(1 + rng.below(4));
    core::ParentTree tree = gen::random_tree(n, grasp, rng());
    gen::scramble_ids(tree, rng());
    ASSERT_TRUE(core::valid_parent_tree(tree));

    const auto depth = core::depths_reference(tree);
    const auto inlabel = lca::InlabelLca::build_parallel(ctx, tree);
    const auto inlabel_seq = lca::InlabelLca::build_sequential(tree);
    const auto naive = lca::NaiveLca::build(ctx, tree);
    const auto rmq = lca::RmqLca::build(tree);

    // Exhaustive n^2 queries vs brute force.
    for (NodeId x = 0; x < n; ++x) {
      for (NodeId y = 0; y < n; ++y) {
        NodeId a = x, b = y;
        while (depth[a] > depth[b]) a = tree.parent[a];
        while (depth[b] > depth[a]) b = tree.parent[b];
        while (a != b) {
          a = tree.parent[a];
          b = tree.parent[b];
        }
        ASSERT_EQ(inlabel.query(x, y), a)
            << "round " << round << " n=" << n << " (" << x << "," << y << ")";
        ASSERT_EQ(inlabel_seq.query(x, y), a);
        ASSERT_EQ(naive.query(x, y), a);
        ASSERT_EQ(rmq.query(x, y), a);
      }
    }
  }
}

TEST(FuzzEuler, StatsOnTinyTrees) {
  const device::Context ctx(3);
  const test_support::FuzzRun run = test_support::fuzz_run(43, 200);
  SCOPED_TRACE(run.trace);
  util::Rng rng(run.seed);
  for (int round = 0; round < run.rounds; ++round) {
    const NodeId n = 1 + static_cast<NodeId>(rng.below(10));
    core::ParentTree tree = gen::random_tree(n, gen::kInfiniteGrasp, rng());
    gen::scramble_ids(tree, rng());
    const core::EulerTour tour =
        core::build_euler_tour(ctx, core::tree_edges(tree), tree.root);
    const core::TreeStats stats = core::compute_tree_stats(ctx, tour);
    const auto depth = core::depths_reference(tree);
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(stats.level[v], depth[v]);
      if (v != tree.root) {
        ASSERT_EQ(stats.parent[v], tree.parent[v]);
      }
    }
  }
}

TEST(FuzzBridges, AllAlgorithmsOnTinyMultigraphs) {
  const device::Context ctx(2);
  const test_support::FuzzRun run = test_support::fuzz_run(44, 250);
  SCOPED_TRACE(run.trace);
  util::Rng rng(run.seed);
  for (int round = 0; round < run.rounds; ++round) {
    const NodeId n = 2 + static_cast<NodeId>(rng.below(10));
    const std::size_t extra = rng.below(12);
    const graph::EdgeList g = random_connected_multigraph(n, extra, rng);
    const graph::Csr csr = build_csr(ctx, g);
    const auto dfs = bridges::find_bridges_dfs(csr);
    ASSERT_EQ(bridges::find_bridges_tarjan_vishkin(ctx, g), dfs)
        << "TV, round " << round;
    ASSERT_EQ(bridges::find_bridges_ck(ctx, g, csr), dfs)
        << "CK, round " << round;
    ASSERT_EQ(bridges::find_bridges_hybrid(ctx, g), dfs)
        << "hybrid, round " << round;
  }
}

TEST(FuzzBiconnectivity, BlocksOnTinyMultigraphs) {
  const device::Context ctx(2);
  const test_support::FuzzRun run = test_support::fuzz_run(45, 250);
  SCOPED_TRACE(run.trace);
  util::Rng rng(run.seed);
  for (int round = 0; round < run.rounds; ++round) {
    const NodeId n = 2 + static_cast<NodeId>(rng.below(9));
    const std::size_t extra = rng.below(10);
    const graph::EdgeList g = random_connected_multigraph(n, extra, rng);
    const graph::Csr csr = build_csr(ctx, g);
    const auto tv = bridges::biconnectivity_tv(ctx, g);
    const auto dfs = bridges::biconnectivity_dfs(g, csr);
    ASSERT_TRUE(bridges::same_block_partition(tv.edge_block, dfs.edge_block))
        << "round " << round << " n=" << n << " m=" << g.edges.size();
    ASSERT_EQ(tv.num_blocks, dfs.num_blocks) << "round " << round;
    ASSERT_EQ(tv.is_articulation, dfs.is_articulation) << "round " << round;
  }
}

TEST(FuzzListRank, TinyListsAllAlgorithms) {
  const device::Context ctx(3);
  const test_support::FuzzRun run = test_support::fuzz_run(46, 300);
  SCOPED_TRACE(run.trace);
  util::Rng rng(run.seed);
  for (int round = 0; round < run.rounds; ++round) {
    const std::size_t n = 1 + rng.below(20);
    std::vector<EdgeId> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<EdgeId>(i);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    std::vector<EdgeId> next(n, kNoEdge);
    for (std::size_t i = 0; i + 1 < n; ++i) next[order[i]] = order[i + 1];

    std::vector<EdgeId> expected, wyllie, wei;
    listrank::rank_sequential(next, order[0], expected);
    listrank::rank_wyllie(ctx, next, order[0], wyllie);
    listrank::rank_wei_jaja(ctx, next, order[0], wei, 1 + rng.below(n));
    ASSERT_EQ(wyllie, expected) << "round " << round;
    ASSERT_EQ(wei, expected) << "round " << round;
  }
}

TEST(FuzzTwoEcc, AgreesWithBridgeStructure) {
  const device::Context ctx(2);
  const test_support::FuzzRun run = test_support::fuzz_run(47, 100);
  SCOPED_TRACE(run.trace);
  util::Rng rng(run.seed);
  for (int round = 0; round < run.rounds; ++round) {
    const NodeId n = 2 + static_cast<NodeId>(rng.below(10));
    const graph::EdgeList g = random_connected_multigraph(n, rng.below(8), rng);
    const auto mask = bridges::find_bridges_tarjan_vishkin(ctx, g);
    const auto labels = bridges::two_edge_components(ctx, g, mask);
    // Two endpoints of a non-bridge share a component; endpoints of a
    // bridge do not.
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      const auto [u, v] = g.edges[e];
      if (mask[e]) {
        ASSERT_NE(labels[u], labels[v]) << "round " << round;
      } else {
        ASSERT_EQ(labels[u], labels[v]) << "round " << round;
      }
    }
    // Full partition diff against the shared union-find reference.
    const auto ref = test_support::two_ecc_labels(g, mask);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        ASSERT_EQ(labels[u] == labels[v], ref[u] == ref[v])
            << "round " << round << " (" << u << "," << v << ")";
      }
    }
  }
}

}  // namespace
}  // namespace emc
