#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace emc::graph {
namespace {

TEST(EdgeListValidation, AcceptsValidGraph) {
  EdgeList g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}};
  EXPECT_TRUE(g.valid());
}

TEST(EdgeListValidation, RejectsSelfLoop) {
  EdgeList g;
  g.num_nodes = 2;
  g.edges = {{1, 1}};
  EXPECT_FALSE(g.valid());
}

TEST(EdgeListValidation, RejectsOutOfRange) {
  EdgeList g;
  g.num_nodes = 2;
  g.edges = {{0, 2}};
  EXPECT_FALSE(g.valid());
}

TEST(CsrMatches, AcceptsTheCsrBuiltFromTheList) {
  const device::Context ctx(2);
  const EdgeList g = simplified(gen::er_graph(200, 500, 7));
  EXPECT_TRUE(csr_matches(g, build_csr(ctx, g)));
  // Parallel edges carry distinct edge ids; the contract must hold for them
  // too (raw generated graphs are multigraphs).
  EdgeList multi;
  multi.num_nodes = 3;
  multi.edges = {{0, 1}, {1, 2}, {0, 1}};
  EXPECT_TRUE(csr_matches(multi, build_csr(ctx, multi)));
}

TEST(CsrMatches, RejectsMismatchedPairs) {
  const device::Context ctx(2);
  EdgeList g;
  g.num_nodes = 4;
  g.edges = {{0, 1}, {1, 2}, {2, 3}};
  const Csr csr = build_csr(ctx, g);

  EdgeList other = g;          // same counts, one endpoint differs
  other.edges[1] = {1, 3};
  EXPECT_FALSE(csr_matches(other, csr));

  EdgeList reordered = g;      // same edge set, edge ids shuffled
  std::swap(reordered.edges[0], reordered.edges[2]);
  EXPECT_FALSE(csr_matches(reordered, csr));

  EdgeList shorter = g;        // edge-count mismatch
  shorter.edges.pop_back();
  EXPECT_FALSE(csr_matches(shorter, csr));

  EdgeList renamed = g;        // node-count mismatch
  renamed.num_nodes = 5;
  EXPECT_FALSE(csr_matches(renamed, csr));
}

class CsrParam : public ::testing::TestWithParam<unsigned> {
 protected:
  device::Context ctx_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Workers, CsrParam, ::testing::Values(1u, 4u));

TEST_P(CsrParam, AdjacencyMatchesEdgeList) {
  const EdgeList g = gen::er_graph(200, 1000, 5);
  const Csr csr = build_csr(ctx_, g);
  ASSERT_EQ(csr.num_nodes, g.num_nodes);
  ASSERT_EQ(csr.num_edges(), g.edges.size());

  // Multiset of (node, neighbor, edge id) triples must match exactly.
  std::multiset<std::tuple<NodeId, NodeId, EdgeId>> expected, got;
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    expected.insert({g.edges[e].u, g.edges[e].v, static_cast<EdgeId>(e)});
    expected.insert({g.edges[e].v, g.edges[e].u, static_cast<EdgeId>(e)});
  }
  for (NodeId v = 0; v < csr.num_nodes; ++v) {
    for (EdgeId i = csr.row_offsets[v]; i < csr.row_offsets[v + 1]; ++i) {
      got.insert({v, csr.neighbors[i], csr.edge_ids[i]});
    }
  }
  EXPECT_EQ(got, expected);
}

TEST_P(CsrParam, DegreesSumToTwiceEdges) {
  const EdgeList g = gen::er_graph(500, 3000, 6);
  const Csr csr = build_csr(ctx_, g);
  std::size_t total = 0;
  for (NodeId v = 0; v < csr.num_nodes; ++v) {
    total += static_cast<std::size_t>(csr.degree(v));
  }
  EXPECT_EQ(total, 2 * g.edges.size());
}

TEST_P(CsrParam, IsolatedNodesHaveZeroDegree) {
  EdgeList g;
  g.num_nodes = 10;
  g.edges = {{0, 1}};
  const Csr csr = build_csr(ctx_, g);
  for (NodeId v = 2; v < 10; ++v) EXPECT_EQ(csr.degree(v), 0);
}

TEST(Components, SingleComponentCycle) {
  const EdgeList g = gen::cycle_graph(50);
  const auto labels = connected_component_labels(g);
  EXPECT_EQ(count_components(labels), 1u);
}

TEST(Components, CountsIsolatedNodes) {
  EdgeList g;
  g.num_nodes = 5;
  g.edges = {{0, 1}};
  const auto labels = connected_component_labels(g);
  EXPECT_EQ(count_components(labels), 4u);  // {0,1}, {2}, {3}, {4}
}

TEST(Components, LabelsSeparateComponents) {
  EdgeList g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {3, 4}};
  const auto labels = connected_component_labels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[3]);
}

TEST(LargestComponent, ExtractsAndRenumbers) {
  EdgeList g;
  g.num_nodes = 7;
  // Component A: 0-1-2 (3 nodes); component B: 3-4-5-6 (4 nodes, larger).
  g.edges = {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}, {3, 5}};
  const EdgeList lcc = largest_component(g);
  EXPECT_EQ(lcc.num_nodes, 4);
  EXPECT_EQ(lcc.edges.size(), 4u);
  EXPECT_TRUE(lcc.valid());
  EXPECT_EQ(count_components(connected_component_labels(lcc)), 1u);
}

TEST(LargestComponent, WholeGraphWhenConnected) {
  const EdgeList g = gen::cycle_graph(20);
  const EdgeList lcc = largest_component(g);
  EXPECT_EQ(lcc.num_nodes, 20);
  EXPECT_EQ(lcc.edges.size(), 20u);
}

TEST(Simplified, RemovesDuplicatesAndLoops) {
  EdgeList g;
  g.num_nodes = 4;
  g.edges = {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {2, 3}};
  const EdgeList s = simplified(g);
  EXPECT_EQ(s.edges.size(), 2u);
  EXPECT_TRUE(s.valid());
}

TEST(Simplified, PreservesSimpleGraph) {
  const EdgeList g = gen::cycle_graph(10);
  EXPECT_EQ(simplified(g).edges.size(), 10u);
}

TEST(Canonicalize, DropsLoopsAndDuplicatesInBothOrientations) {
  const device::Context ctx(2);
  EdgeList g;
  g.num_nodes = 5;
  g.edges = {{1, 0}, {0, 1}, {2, 2}, {3, 4}, {4, 3}, {3, 4}, {0, 1}};
  const EdgeList canon = canonicalize(ctx, g);
  EXPECT_TRUE(canon.valid());
  EXPECT_EQ(canon.num_nodes, 5);
  ASSERT_EQ(canon.edges.size(), 2u);
  // Survivors are oriented (min, max) and sorted.
  EXPECT_EQ(canon.edges[0], (Edge{0, 1}));
  EXPECT_EQ(canon.edges[1], (Edge{3, 4}));
}

TEST(Canonicalize, GeneratorRoundTrip) {
  // Raw generator output is a multigraph that fails no invariant check but
  // carries duplicates; its canonical form satisfies valid() and is a fixed
  // point of canonicalize.
  const device::Context ctx(2);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const EdgeList raw = gen::kron_graph(8, 6, seed);
    const EdgeList canon = canonicalize(ctx, raw);
    EXPECT_TRUE(canon.valid());
    EXPECT_LE(canon.edges.size(), raw.edges.size());
    const EdgeList again = canonicalize(ctx, canon);
    EXPECT_EQ(again.edges, canon.edges);
    // Matches the sequential simplification exactly.
    EXPECT_EQ(simplified(raw).edges, canon.edges);
  }
}

TEST(Canonicalize, EmptyAndAllLoops) {
  const device::Context ctx(1);
  EdgeList g;
  g.num_nodes = 3;
  EXPECT_TRUE(canonicalize(ctx, g).edges.empty());
  g.edges = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_TRUE(canonicalize(ctx, g).edges.empty());
}

TEST(Canonicalize, DropsOutOfRangeEndpoints) {
  const device::Context ctx(1);
  EdgeList g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {0, 5}, {-1, 2}, {1, 2}};
  const EdgeList canon = canonicalize(ctx, g);
  EXPECT_TRUE(canon.valid());
  ASSERT_EQ(canon.edges.size(), 2u);
  EXPECT_EQ(canon.edges[0], (Edge{0, 1}));
  EXPECT_EQ(canon.edges[1], (Edge{1, 2}));
}

TEST(Diameter, ExactOnPath) {
  const device::Context ctx(1);
  const EdgeList g = gen::path_graph(100);
  const Csr csr = build_csr(ctx, g);
  EXPECT_EQ(estimate_diameter(csr), 99);
}

TEST(Diameter, CycleIsHalf) {
  const device::Context ctx(1);
  const EdgeList g = gen::cycle_graph(100);
  const Csr csr = build_csr(ctx, g);
  EXPECT_EQ(estimate_diameter(csr), 50);
}

TEST(Diameter, StarIsTwo) {
  const device::Context ctx(1);
  EdgeList g;
  g.num_nodes = 50;
  for (NodeId v = 1; v < 50; ++v) g.edges.push_back({0, v});
  const Csr csr = build_csr(ctx, g);
  EXPECT_EQ(estimate_diameter(csr), 2);
}

}  // namespace
}  // namespace emc::graph
