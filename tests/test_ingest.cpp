// The streaming write path: ring admission, adaptive batching, and the
// writer thread that applies batches and publishes epochs.
//
// Four pillars:
//   admission pins — the ring's ledger (submitted == accepted + rejected +
//     cancelled) holds under every policy, Block applies backpressure and
//     loses nothing, ShedOldest evicts the globally oldest waiter;
//   batcher pins — batches are kind-homogeneous in commit order, cut at
//     max_batch, canonicalized (u < v, sorted, deduplicated), and the
//     linger window adapts to queue depth with the documented clamp;
//   pipeline pins — paced publishing leaves a measurable lag that flush()
//     clears, an attached Dispatcher reflects that lag in staleness, and
//     insert-only stretches reach the oracle's incremental-refresh path
//     (rebuilds stay flat) and the snapshot append path;
//   differential fuzz — N producers race random insert/erase streams while
//     readers query through a Dispatcher; the final edge set and every
//     per-epoch answer must match a from-scratch reference replay of the
//     commit order, and every accepted update is applied exactly once.
//     This is the suite the TSan CI job leans on for the write path.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "ingest/ingest.hpp"
#include "ingest/update_queue.hpp"
#include "serve/serve.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace emc::ingest {
namespace {

using engine::Engine;
using engine::Session;
using graph::Edge;
using graph::EdgeList;
using test_support::ReferenceOracle;

namespace failpoint = util::failpoint;

using CanonicalEdgeSet = std::set<std::pair<NodeId, NodeId>>;

CanonicalEdgeSet edge_set(const EdgeList& g) {
  CanonicalEdgeSet out;
  for (const Edge& e : g.edges) {
    out.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  return out;
}

EdgeList to_edge_list(NodeId num_nodes, const CanonicalEdgeSet& set) {
  EdgeList g;
  g.num_nodes = num_nodes;
  g.edges.reserve(set.size());
  for (const auto& [u, v] : set) g.edges.push_back({u, v});
  return g;
}

/// Applies one canonical batch to a reference edge set with the graph
/// layer's simple-graph semantics (self-loops and absent/present no-ops
/// vanish). This is the independent replay the differential suites diff
/// the DCSR against.
void replay(CanonicalEdgeSet& set, UpdateKind kind,
            const std::vector<Edge>& edges) {
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    const std::pair<NodeId, NodeId> key{std::min(e.u, e.v),
                                        std::max(e.u, e.v)};
    if (kind == UpdateKind::kInsert) {
      set.insert(key);
    } else {
      set.erase(key);
    }
  }
}

Update make_update(NodeId u, NodeId v, UpdateKind kind,
                   std::uint32_t producer = 0) {
  Update up;
  up.edge = {u, v};
  up.kind = kind;
  up.producer = producer;
  return up;
}

// ---------------------------------------------------------------------------
// Admission: the ring's ledger under each policy.
// ---------------------------------------------------------------------------

TEST(IngestQueue, RejectPolicyRefusesOverflowAndKeepsTheLedger) {
  UpdateQueue queue(/*bound=*/4, Admission::kReject);
  std::vector<Update> burst;
  for (NodeId i = 0; i < 6; ++i) {
    burst.push_back(make_update(i, i + 1, UpdateKind::kInsert));
  }
  EXPECT_EQ(queue.push(burst), 4u);

  const UpdateQueue::Stats s = queue.stats();
  EXPECT_EQ(s.submitted, 6u);
  EXPECT_EQ(s.accepted, 4u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.submitted, s.accepted + s.rejected + s.cancelled);
  EXPECT_EQ(queue.depth(), 4u);

  // The survivors are the FIRST four — Reject refuses the overflow, it
  // never displaces admitted work.
  std::vector<UpdateQueue::Queued> got;
  queue.pop_wait(got, 8, UpdateQueue::Clock::now());
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].update.edge.u, static_cast<NodeId>(i));
  }
}

TEST(IngestQueue, ShedOldestEvictsTheGloballyOldestWaiter) {
  UpdateQueue queue(/*bound=*/4, Admission::kShedOldest);
  std::vector<Update> burst;
  for (NodeId i = 0; i < 6; ++i) {
    burst.push_back(make_update(i, i + 1, UpdateKind::kInsert));
  }
  // All six are accepted; admitting the last two sheds the two oldest.
  EXPECT_EQ(queue.push(burst), 6u);

  const UpdateQueue::Stats s = queue.stats();
  EXPECT_EQ(s.submitted, 6u);
  EXPECT_EQ(s.accepted, 6u);
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.rejected, 0u);

  std::vector<UpdateQueue::Queued> got;
  queue.pop_wait(got, 8, UpdateQueue::Clock::now());
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].update.edge.u, static_cast<NodeId>(i + 2))
        << "survivors must be the newest four, in arrival order";
  }
}

TEST(IngestQueue, BlockBackpressuresUntilTheConsumerMakesRoom) {
  UpdateQueue queue(/*bound=*/2, Admission::kBlock);
  constexpr std::size_t kTotal = 24;
  std::thread consumer([&] {
    std::vector<UpdateQueue::Queued> got;
    std::size_t popped = 0;
    while (popped < kTotal) {
      got.clear();
      queue.pop_wait(got, 1,
                     UpdateQueue::Clock::now() + std::chrono::seconds(5));
      popped += got.size();
    }
  });
  for (NodeId i = 0; i < static_cast<NodeId>(kTotal); ++i) {
    const Update up = make_update(i, i + 1, UpdateKind::kInsert);
    EXPECT_EQ(queue.push(&up, 1), 1u);
  }
  consumer.join();

  const UpdateQueue::Stats s = queue.stats();
  EXPECT_EQ(s.accepted, kTotal);
  EXPECT_EQ(s.rejected + s.shed + s.cancelled, 0u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_LE(s.max_depth, 2u);
}

TEST(IngestQueue, ClosedQueueCancelsSubmissionsAndKickWakesTheConsumer) {
  UpdateQueue queue(/*bound=*/8, Admission::kBlock);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    std::vector<UpdateQueue::Queued> got;
    // A kick must wake this long wait well before the deadline.
    queue.pop_wait(got, 8,
                   UpdateQueue::Clock::now() + std::chrono::seconds(30));
    EXPECT_TRUE(got.empty());
    woke = true;
  });
  // A kick fired before the consumer reaches its wait is consumed by that
  // entry's mark — keep kicking until the wake is observed.
  while (!woke) {
    queue.kick();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  consumer.join();

  queue.close();
  EXPECT_TRUE(queue.closed());
  const Update up = make_update(1, 2, UpdateKind::kInsert);
  EXPECT_EQ(queue.push(&up, 1), 0u);
  const UpdateQueue::Stats s = queue.stats();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.submitted, s.accepted + s.rejected + s.cancelled);
}

// ---------------------------------------------------------------------------
// Batcher: cutting rules and canonical form.
// ---------------------------------------------------------------------------

TEST(IngestBatcher, CutsAtMaxBatchAndCanonicalizes) {
  UpdateQueue queue(/*bound=*/64, Admission::kBlock);
  Batcher batcher(queue, {.max_batch = 8, .linger = std::chrono::hours(1),
                          .adaptive_linger = false});

  // Eight raw updates: reversed duplicates and a repeat collapse to five
  // canonical edges; raw_updates still counts all eight.
  const std::array<std::pair<NodeId, NodeId>, 8> raw = {
      {{5, 2}, {1, 3}, {3, 1}, {2, 5}, {4, 0}, {1, 3}, {9, 8}, {6, 7}}};
  std::vector<Update> ups;
  for (const auto& [u, v] : raw) {
    ups.push_back(make_update(u, v, UpdateKind::kInsert));
  }
  ASSERT_EQ(queue.push(ups), 8u);

  Batch batch;
  // max_batch worth of updates is waiting: the cut must not wait for the
  // (huge) linger.
  ASSERT_EQ(batcher.next(batch, UpdateQueue::Clock::now()),
            Batcher::Poll::kBatch);
  EXPECT_EQ(batch.kind, UpdateKind::kInsert);
  EXPECT_EQ(batch.raw_updates, 8u);
  const std::vector<Edge> want = {{0, 4}, {1, 3}, {2, 5}, {6, 7}, {8, 9}};
  ASSERT_EQ(batch.edges.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(batch.edges[i].u, want[i].u) << i;
    EXPECT_EQ(batch.edges[i].v, want[i].v) << i;
  }
}

TEST(IngestBatcher, SegregatesKindsPreservingCommitOrder) {
  UpdateQueue queue(/*bound=*/64, Admission::kBlock);
  Batcher batcher(queue, {.max_batch = 64, .linger = std::chrono::microseconds(0)});

  const std::array<UpdateKind, 6> kinds = {
      UpdateKind::kInsert, UpdateKind::kInsert, UpdateKind::kInsert,
      UpdateKind::kErase,  UpdateKind::kErase,  UpdateKind::kInsert};
  std::vector<Update> ups;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    ups.push_back(make_update(static_cast<NodeId>(i),
                              static_cast<NodeId>(i + 10), kinds[i]));
  }
  ASSERT_EQ(queue.push(ups), ups.size());

  // I I I | E E | I — three kind-homogeneous batches, in stream order.
  const std::array<std::pair<UpdateKind, std::size_t>, 3> want = {
      {{UpdateKind::kInsert, 3}, {UpdateKind::kErase, 2},
       {UpdateKind::kInsert, 1}}};
  for (const auto& [kind, count] : want) {
    Batch batch;
    ASSERT_EQ(batcher.next(batch, UpdateQueue::Clock::now()),
              Batcher::Poll::kBatch);
    EXPECT_EQ(batch.kind, kind);
    EXPECT_EQ(batch.raw_updates, count);
  }
  EXPECT_EQ(batcher.carried(), 0u);
}

TEST(IngestBatcher, ZeroLingerIsOpportunistic) {
  UpdateQueue queue(/*bound=*/64, Admission::kBlock);
  Batcher batcher(queue, {.max_batch = 1024,
                          .linger = std::chrono::microseconds(0)});
  std::vector<Update> ups = {make_update(1, 2, UpdateKind::kInsert),
                             make_update(3, 4, UpdateKind::kInsert)};
  ASSERT_EQ(queue.push(ups), 2u);

  // Far below max_batch, but linger 0 means "cut whatever is waiting".
  Batch batch;
  ASSERT_EQ(batcher.next(batch,
                         UpdateQueue::Clock::now() + std::chrono::seconds(5)),
            Batcher::Poll::kBatch);
  EXPECT_EQ(batch.raw_updates, 2u);
}

TEST(IngestBatcher, AdaptiveLingerFollowsTheDocumentedClamp) {
  UpdateQueue queue(/*bound=*/64, Admission::kBlock);
  const std::chrono::microseconds linger(400);
  Batcher batcher(queue, {.max_batch = 100, .linger = linger});

  // scale = clamp(2 * depth / max_batch, 0.25, 4.0), applied as a divisor:
  // an empty pipeline stretches the window to 4x, a deep backlog shrinks
  // it to a quarter.
  EXPECT_EQ(batcher.effective_linger(0), 4 * linger);
  EXPECT_EQ(batcher.effective_linger(50), linger);
  EXPECT_EQ(batcher.effective_linger(1000), linger / 4);

  Batcher fixed(queue, {.max_batch = 100, .linger = linger,
                        .adaptive_linger = false});
  EXPECT_EQ(fixed.effective_linger(0), linger);
  EXPECT_EQ(fixed.effective_linger(1000), linger);
}

TEST(IngestBatcher, DrainsCarriedUpdatesBeforeReportingClosed) {
  UpdateQueue queue(/*bound=*/64, Admission::kBlock);
  Batcher batcher(queue, {.max_batch = 64, .linger = std::chrono::hours(1),
                          .adaptive_linger = false});
  std::vector<Update> ups = {make_update(1, 2, UpdateKind::kInsert),
                             make_update(2, 3, UpdateKind::kErase)};
  ASSERT_EQ(queue.push(ups), 2u);
  queue.close();

  Batch batch;
  ASSERT_EQ(batcher.next(batch, UpdateQueue::Clock::now()),
            Batcher::Poll::kBatch);
  EXPECT_EQ(batch.kind, UpdateKind::kInsert);
  ASSERT_EQ(batcher.next(batch, UpdateQueue::Clock::now()),
            Batcher::Poll::kBatch);
  EXPECT_EQ(batch.kind, UpdateKind::kErase);
  EXPECT_EQ(batcher.next(batch, UpdateQueue::Clock::now()),
            Batcher::Poll::kClosed);
}

// ---------------------------------------------------------------------------
// Pipeline: apply, pacing, lag, and the incremental fast path.
// ---------------------------------------------------------------------------

TEST(IngestorPipeline, AppliesAndPublishesEveryBatchByDefault) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(32));
  Session session = engine.session(dg);
  session.refresh();

  IngestorOptions opt;
  opt.queue_bound = 64;
  opt.max_batch = 16;
  opt.linger = std::chrono::microseconds(0);
  opt.publish_every = 1;
  Ingestor ingestor(engine, dg, session, opt);

  ASSERT_EQ(ingestor.insert({{0, 2}, {1, 3}, {4, 7}}), 3u);
  ingestor.flush();
  EXPECT_EQ(ingestor.lag(), 0u);

  const IngestorStats s = ingestor.stats();
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.applied, 3u);
  EXPECT_EQ(s.applied_effective, 3u);
  EXPECT_GE(s.publishes, 1u);
  EXPECT_EQ(s.published_epoch, s.graph_epoch);
  ingestor.stop();

  EXPECT_TRUE(dg.has_edge(0, 2));
  EXPECT_TRUE(dg.has_edge(1, 3));
  EXPECT_TRUE(dg.has_edge(4, 7));
}

TEST(IngestorPipeline, PacedPublishingBuildsLagAndFlushClearsIt) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);
  session.refresh();
  const std::uint64_t epoch0 = dg.epoch();

  IngestorOptions opt;
  opt.queue_bound = 256;
  opt.max_batch = 4;
  opt.linger = std::chrono::microseconds(0);
  // Batch count never triggers a publish, and the idle flush is pushed out
  // far beyond the test: lag accumulates until flush() forces it out.
  opt.publish_every = std::numeric_limits<std::size_t>::max();
  opt.idle_publish = std::chrono::hours(1);
  Ingestor ingestor(engine, dg, session, opt);

  std::vector<Edge> chords;
  for (NodeId i = 0; i < 16; ++i) chords.push_back({i, static_cast<NodeId>(i + 2)});
  ASSERT_EQ(ingestor.insert(chords), chords.size());
  ingestor.drain();

  // Everything applied, nothing published: the gap IS the lag.
  IngestorStats s = ingestor.stats();
  EXPECT_EQ(s.applied, chords.size());
  EXPECT_EQ(s.publishes, 0u);
  EXPECT_EQ(s.lag, chords.size());
  EXPECT_GT(s.graph_epoch, epoch0);
  EXPECT_EQ(s.published_epoch, epoch0);

  ingestor.flush();
  s = ingestor.stats();
  EXPECT_EQ(s.lag, 0u);
  EXPECT_EQ(s.publishes, 1u);
  EXPECT_EQ(s.published_epoch, s.graph_epoch);
  ingestor.stop();
}

TEST(IngestorPipeline, InsertOnlyStretchTakesTheIncrementalPath) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);
  session.refresh();  // build the epoch-0 artifacts, oracle included
  const std::size_t rebuilds0 = session.two_ecc_index().rebuilds();
  const std::size_t incremental0 = session.two_ecc_index().incremental_refreshes();
  const std::size_t appends0 = dg.num_snapshot_appends();
  const std::size_t csr_appends0 = dg.num_csr_appends();

  IngestorOptions opt;
  opt.queue_bound = 256;
  opt.max_batch = 8;
  opt.linger = std::chrono::microseconds(0);
  opt.publish_every = 1;
  opt.start_paused = true;
  Ingestor ingestor(engine, dg, session, opt);

  // An insert-only stream of fresh chords: every batch the batcher cuts is
  // insert-only, so every published epoch is an insert-only delta.
  std::vector<Edge> chords;
  for (NodeId i = 0; i < 24; ++i) chords.push_back({i, static_cast<NodeId>(i + 5)});
  ASSERT_EQ(ingestor.insert(chords), chords.size());
  ingestor.resume();
  ingestor.flush();
  ingestor.stop();

  const IngestorStats s = ingestor.stats();
  EXPECT_EQ(s.applied, chords.size());
  EXPECT_EQ(s.erase_batches, 0u);
  EXPECT_GE(s.publishes, 1u);

  // The oracle replayed deltas instead of rebuilding, and back-to-back
  // insert-only epochs served their snapshots (and CSRs) via the append
  // fast paths.
  EXPECT_EQ(session.two_ecc_index().rebuilds(), rebuilds0);
  EXPECT_GT(session.two_ecc_index().incremental_refreshes(), incremental0);
  EXPECT_GT(dg.num_snapshot_appends(), appends0);
  EXPECT_GT(dg.num_csr_appends(), csr_appends0);
  // And the SESSION published those epochs by delta replay, not rebuild —
  // the whole artifact set rode the incremental path, end to end.
  EXPECT_GT(session.publish_replays(), 0u);
  EXPECT_EQ(session.publish_rebuilds(), 1u);  // the epoch-0 build only
}

TEST(IngestorPipeline, FailedPublishRetriesOnTheFloorNotTheIdleFlush) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(32));
  Session session = engine.session(dg);

  IngestorOptions opt;
  opt.queue_bound = 64;
  opt.max_batch = 16;
  opt.linger = std::chrono::microseconds(0);
  opt.publish_every = 1;
  // The regression: with a ZERO pacing interval, a failed publish used to
  // re-arm only the idle flush — parking a publishable backlog for the
  // whole idle_publish window. Post-fix the retry lands on the
  // kPublishRetryFloor (~1ms), so an hour-long idle window is irrelevant.
  opt.publish_min_interval = std::chrono::microseconds(0);
  opt.idle_publish = std::chrono::hours(1);
  opt.start_paused = true;
  Ingestor ingestor(engine, dg, session, opt);

  std::atomic<int> attempts{0};
  ingestor.set_publisher([&](engine::Session& s) {
    if (attempts.fetch_add(1) == 0) return false;  // first attempt fails
    s.refresh();
    return true;
  });

  ASSERT_EQ(ingestor.insert({{0, 5}, {1, 9}}), 2u);
  const auto started = std::chrono::steady_clock::now();
  ingestor.resume();
  while (ingestor.stats().publishes == 0 &&
         std::chrono::steady_clock::now() - started < std::chrono::seconds(10)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  const IngestorStats s = ingestor.stats();
  EXPECT_GE(s.publish_failures, 1u);  // the injected failure really fired
  EXPECT_GE(s.publishes, 1u) << "retry never landed";
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  ingestor.stop();
  EXPECT_EQ(ingestor.published_epoch(), dg.epoch());
}

TEST(IngestorStats, LagGaugeNeverWrapsUnderConcurrentReaders) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);

  // ShedOldest keeps producers unblocked, so the admission ledger and the
  // publish counters move under their different locks as fast as possible
  // while readers poll the gauge.
  IngestorOptions opt;
  opt.queue_bound = 32;
  opt.admission = Admission::kShedOldest;
  opt.max_batch = 8;
  opt.linger = std::chrono::microseconds(0);
  opt.publish_every = 1;
  Ingestor ingestor(engine, dg, session, opt);

  // The regression: lag is accepted - shed - published with the two sides
  // under DIFFERENT locks; a torn read pair used to wrap to ~2^64. The
  // saturating gauge may transiently read 0, never garbage.
  std::atomic<bool> done{false};
  std::atomic<std::size_t> wrapped{0};
  std::thread poller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (ingestor.lag() > (std::size_t{1} << 60)) ++wrapped;
      if (ingestor.stats().lag > (std::size_t{1} << 60)) ++wrapped;
    }
  });
  util::Rng rng(17);
  for (int burst = 0; burst < 200; ++burst) {
    std::vector<Edge> edges;
    for (int i = 0; i < 16; ++i) {
      edges.push_back({static_cast<NodeId>(rng.below(64)),
                       static_cast<NodeId>(rng.below(64))});
    }
    ingestor.insert(edges);
  }
  ingestor.flush();
  done.store(true);
  poller.join();
  ingestor.stop();
  EXPECT_EQ(wrapped.load(), 0u);
  const IngestorStats s = ingestor.stats();
  EXPECT_EQ(s.lag, 0u);  // quiesced: everything accepted was published
  EXPECT_EQ(s.accepted, s.shed + s.applied);
}

TEST(IngestorPipeline, AttachedDispatcherReflectsIngestLagAsStaleness) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);

  IngestorOptions opt;
  opt.queue_bound = 256;
  opt.max_batch = 4;
  opt.linger = std::chrono::microseconds(0);
  opt.publish_every = std::numeric_limits<std::size_t>::max();
  opt.idle_publish = std::chrono::hours(1);
  opt.start_paused = true;
  Ingestor ingestor(engine, dg, session, opt);  // declared before the Dispatcher

  serve::DispatcherOptions dopt;
  dopt.workers = 1;
  serve::Dispatcher dispatcher(session.view(), dopt);
  dispatcher.attach_ingestor(ingestor);
  ingestor.resume();

  std::vector<Edge> chords;
  for (NodeId i = 0; i < 8; ++i) chords.push_back({i, static_cast<NodeId>(i + 2)});
  ASSERT_EQ(ingestor.insert(chords), chords.size());
  ingestor.drain();

  // Applied-but-unpublished epochs are visible: the stats gauge carries the
  // lag and replies stamp the real staleness, not 0.
  serve::DispatcherStats before = dispatcher.stats();
  EXPECT_EQ(before.ingest_lag, chords.size());
  EXPECT_GT(before.staleness, 0u);
  auto reply = dispatcher.submit(engine::Same2Ecc{{{0, 1}}}).get();
  ASSERT_EQ(reply.status, serve::Status::kOk);
  EXPECT_GT(reply.staleness, 0u);

  // flush() routes the publish through the dispatcher: the serving view
  // catches up and both gauges drop to zero.
  ingestor.flush();
  serve::DispatcherStats after = dispatcher.stats();
  EXPECT_EQ(after.ingest_lag, 0u);
  EXPECT_EQ(after.staleness, 0u);
  EXPECT_EQ(dispatcher.current_view().epoch(), dg.epoch());
  auto fresh = dispatcher.submit(engine::Same2Ecc{{{0, 1}}}).get();
  ASSERT_EQ(fresh.status, serve::Status::kOk);
  EXPECT_EQ(fresh.staleness, 0u);

  ingestor.stop();  // before the Dispatcher goes away (it owns the publisher)
  dispatcher.stop();
}

// ---------------------------------------------------------------------------
// Differential fuzz: racing producers, concurrent readers, replayed truth.
// ---------------------------------------------------------------------------

/// One applied batch as the on_apply hook observed it — the commit order
/// ground truth the references replay.
struct Commit {
  UpdateKind kind;
  std::vector<Edge> edges;
  std::size_t raw_updates;
  std::uint64_t epoch_after;
};

TEST(IngestFuzz, MultiProducerStreamMatchesCommitOrderReplay) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/1207, /*rounds=*/24);
  SCOPED_TRACE(fuzz.trace);
  constexpr NodeId kNodes = 128;
  constexpr std::uint32_t kProducers = 3;

  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(engine.device(),
                           gen::er_graph(kNodes, 200, fuzz.seed));
  Session session = engine.session(dg);
  session.refresh();
  const std::uint64_t epoch0 = dg.epoch();
  const CanonicalEdgeSet initial = edge_set(dg.snapshot(engine.device()));

  // The commit log is written by the writer thread only and read after
  // stop() joins it.
  std::vector<Commit> log;
  IngestorOptions opt;
  opt.queue_bound = 512;
  opt.admission = Admission::kBlock;  // exact-once: nothing may be dropped
  opt.max_batch = 32;
  opt.linger = std::chrono::microseconds(100);
  opt.publish_every = 1;
  opt.start_paused = true;
  opt.on_apply = [&log](const Batch& b, std::uint64_t epoch_after,
                        std::size_t /*effective*/) {
    log.push_back({b.kind, b.edges, b.raw_updates, epoch_after});
  };
  Ingestor ingestor(engine, dg, session, opt);

  serve::DispatcherOptions dopt;
  dopt.workers = 2;
  serve::Dispatcher dispatcher(session.view(), dopt);
  dispatcher.attach_ingestor(ingestor);
  ingestor.resume();

  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Rng rng(fuzz.seed * 97 + p);
      for (int round = 0; round < fuzz.rounds; ++round) {
        std::vector<Update> burst;
        for (int i = 0; i < 8; ++i) {
          const auto kind =
              rng.below(4) == 0 ? UpdateKind::kErase : UpdateKind::kInsert;
          burst.push_back(make_update(static_cast<NodeId>(rng.below(kNodes)),
                                      static_cast<NodeId>(rng.below(kNodes)),
                                      kind, p));
        }
        ASSERT_EQ(ingestor.submit(burst), burst.size());
      }
    });
  }

  // Concurrent readers on the main thread: epoch-stamped answers collected
  // while the writers race.
  struct PendingSame {
    engine::Same2Ecc request;
    std::future<serve::Reply<std::vector<std::uint8_t>>> future;
  };
  std::vector<PendingSame> pending;
  util::Rng rng(fuzz.seed * 131 + 5);
  for (int round = 0; round < fuzz.rounds; ++round) {
    engine::Same2Ecc same;
    for (int q = 0; q < 4; ++q) {
      same.pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                            static_cast<NodeId>(rng.below(kNodes))});
    }
    auto future = dispatcher.submit(engine::Same2Ecc{same});
    pending.push_back({std::move(same), std::move(future)});
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  for (std::thread& t : producers) t.join();
  ingestor.flush();
  ingestor.stop();       // before the Dispatcher: it owns the publish hook
  dispatcher.stop();     // drains every pending reader future

  // Exact-once ledger: with Block admission every submitted update was
  // accepted, and every accepted update was applied in exactly one batch.
  const IngestorStats s = ingestor.stats();
  const std::size_t pushed =
      static_cast<std::size_t>(kProducers) * fuzz.rounds * 8;
  EXPECT_EQ(s.submitted, pushed);
  EXPECT_EQ(s.accepted, pushed);
  EXPECT_EQ(s.shed + s.rejected + s.cancelled, 0u);
  EXPECT_EQ(s.applied, pushed);
  EXPECT_EQ(s.lag, 0u);
  std::size_t raw_in_log = 0;
  for (const Commit& c : log) raw_in_log += c.raw_updates;
  EXPECT_EQ(raw_in_log, pushed);

  // The final graph equals the independent replay of the commit order.
  CanonicalEdgeSet ref = initial;
  for (const Commit& c : log) replay(ref, c.kind, c.edges);
  EXPECT_EQ(edge_set(dg.snapshot(engine.device())), ref);

  // Every answer matches the reference of its OWN epoch, rebuilt from the
  // commit-log prefix that produced that epoch.
  std::map<std::uint64_t, CanonicalEdgeSet> at_epoch;
  at_epoch[epoch0] = initial;
  CanonicalEdgeSet running = initial;
  for (const Commit& c : log) {
    replay(running, c.kind, c.edges);
    at_epoch[c.epoch_after] = running;  // later same-epoch entries win
  }
  std::map<std::uint64_t, std::unique_ptr<ReferenceOracle>> refs;
  for (PendingSame& item : pending) {
    ASSERT_EQ(item.future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "a future was abandoned";
    const auto reply = item.future.get();
    ASSERT_EQ(reply.status, serve::Status::kOk);
    ASSERT_TRUE(at_epoch.count(reply.epoch)) << "unknown serving epoch";
    auto& oracle = refs[reply.epoch];
    if (!oracle) {
      oracle = std::make_unique<ReferenceOracle>(
          ref_ctx, to_edge_list(kNodes, at_epoch[reply.epoch]));
    }
    for (std::size_t q = 0; q < item.request.pairs.size(); ++q) {
      const auto [u, v] = item.request.pairs[q];
      ASSERT_EQ(reply.value[q] != 0, oracle->comp[u] == oracle->comp[v])
          << "epoch " << reply.epoch << " " << u << "," << v;
    }
  }
}

TEST(IngestFuzz, ShedOldestLedgerBalancesUnderOverload) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/2203, /*rounds=*/32);
  SCOPED_TRACE(fuzz.trace);
  constexpr NodeId kNodes = 96;

  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(kNodes));
  Session session = engine.session(dg);
  session.refresh();
  const CanonicalEdgeSet initial = edge_set(dg.snapshot(engine.device()));

  std::vector<Commit> log;
  IngestorOptions opt;
  opt.queue_bound = 32;  // tiny ring: overload must shed, not stall
  opt.admission = Admission::kShedOldest;
  opt.max_batch = 32;
  opt.linger = std::chrono::microseconds(0);
  opt.publish_every = std::numeric_limits<std::size_t>::max();
  opt.idle_publish = std::chrono::hours(1);
  opt.on_apply = [&log](const Batch& b, std::uint64_t epoch_after,
                        std::size_t /*effective*/) {
    log.push_back({b.kind, b.edges, b.raw_updates, epoch_after});
    // Throttle the consumer so the ring genuinely overflows.
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  };
  Ingestor ingestor(engine, dg, session, opt);

  util::Rng rng(fuzz.seed * 17 + 3);
  std::size_t pushed = 0;
  for (int round = 0; round < fuzz.rounds; ++round) {
    std::vector<Update> burst;
    for (int i = 0; i < 64; ++i) {
      const auto kind =
          rng.below(3) == 0 ? UpdateKind::kErase : UpdateKind::kInsert;
      burst.push_back(make_update(static_cast<NodeId>(rng.below(kNodes)),
                                  static_cast<NodeId>(rng.below(kNodes)),
                                  kind));
    }
    pushed += ingestor.submit(burst);
  }
  ingestor.flush();
  ingestor.stop();

  // ShedOldest accepts everything and drops only from the admitted pool:
  // the two sides of the ledger must meet exactly.
  const IngestorStats s = ingestor.stats();
  EXPECT_EQ(s.submitted, static_cast<std::size_t>(fuzz.rounds) * 64);
  EXPECT_EQ(s.accepted, pushed);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_GT(s.shed, 0u) << "a 32-slot ring under a throttled consumer must shed";
  EXPECT_EQ(s.accepted, s.applied + s.shed);
  EXPECT_EQ(s.lag, 0u);

  // Shedding drops updates, never corrupts: the survivors' commit order
  // still replays to the final graph.
  CanonicalEdgeSet ref = initial;
  for (const Commit& c : log) replay(ref, c.kind, c.edges);
  EXPECT_EQ(edge_set(dg.snapshot(engine.device())), ref);
}

// ---------------------------------------------------------------------------
// Failpoints: publish faults must cost latency, never updates.
// ---------------------------------------------------------------------------

TEST(IngestFailpoints, EveryUpdateLandsAndEveryFutureResolvesUnderPublishFaults) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/3309, /*rounds=*/24);
  SCOPED_TRACE(fuzz.trace);
  constexpr NodeId kNodes = 128;

  // Re-arm from the environment explicitly (CI pins engine.publish and the
  // engine.snapshot combo); self-arm engine.publish otherwise. Apply-path
  // sites (arena.alloc, device.launch) are deliberately NOT armed here:
  // the ingest writer's graph mutation is the ground truth, not the system
  // under test — a faulted half-applied batch would corrupt the DCSR, the
  // same reason the serve fuzz suspends faults around its writer.
  const char* env_spec = std::getenv("EMC_FAILPOINT");
  const bool env_armed =
      env_spec != nullptr && failpoint::configure_from_string(env_spec) > 0;
  if (!env_armed) {
    failpoint::disable_all();
    ASSERT_TRUE(failpoint::configure(failpoint::kPublish, "0.3"));
  }
  const std::size_t fired_before = failpoint::total_fired();

  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), [&] {
    failpoint::ScopedSuspend suspend;  // fault-free setup
    return gen::er_graph(kNodes, 220, fuzz.seed);
  }());
  Session session = engine.session(dg);
  {
    failpoint::ScopedSuspend suspend;
    session.refresh();
  }
  const CanonicalEdgeSet initial = edge_set([&] {
    failpoint::ScopedSuspend suspend;
    return dg.snapshot(engine.device());
  }());

  std::vector<Commit> log;
  IngestorOptions opt;
  opt.queue_bound = 512;
  opt.admission = Admission::kBlock;
  opt.max_batch = 16;
  opt.linger = std::chrono::microseconds(50);
  opt.publish_every = 1;
  opt.start_paused = true;
  opt.on_apply = [&log](const Batch& b, std::uint64_t epoch_after,
                        std::size_t /*effective*/) {
    log.push_back({b.kind, b.edges, b.raw_updates, epoch_after});
  };
  Ingestor ingestor(engine, dg, session, opt);

  serve::DispatcherOptions dopt;
  dopt.workers = 2;
  dopt.publish_attempts = 2;
  dopt.publish_backoff = std::chrono::microseconds(20);
  engine::View initial_view = [&] {
    failpoint::ScopedSuspend suspend;  // the seed view is setup, not SUT
    return session.view();
  }();
  serve::Dispatcher dispatcher(std::move(initial_view), dopt);
  dispatcher.attach_ingestor(ingestor);
  ingestor.resume();

  std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>> futures;
  util::Rng rng(fuzz.seed * 41 + 9);
  std::size_t pushed = 0;
  for (int round = 0; round < fuzz.rounds; ++round) {
    std::vector<Update> burst;
    for (int i = 0; i < 8; ++i) {
      const auto kind =
          rng.below(4) == 0 ? UpdateKind::kErase : UpdateKind::kInsert;
      burst.push_back(make_update(static_cast<NodeId>(rng.below(kNodes)),
                                  static_cast<NodeId>(rng.below(kNodes)),
                                  kind));
    }
    pushed += ingestor.submit(burst);
    for (int q = 0; q < 4; ++q) {
      futures.push_back(dispatcher.submit(engine::Same2Ecc{
          {{static_cast<NodeId>(rng.below(kNodes)),
            static_cast<NodeId>(rng.below(kNodes))}}}));
    }
  }

  // Quiesce with faults still live (publishes may fail and retry), then
  // disable and flush: the final publish must land.
  ingestor.drain();
  failpoint::disable_all();
  ingestor.flush();
  ingestor.stop();
  dispatcher.stop();

  const IngestorStats s = ingestor.stats();
  EXPECT_EQ(s.accepted, pushed);
  EXPECT_EQ(s.applied, pushed) << "publish faults must never drop updates";
  EXPECT_EQ(s.lag, 0u);
  EXPECT_EQ(s.published_epoch, s.graph_epoch);
  if (!env_armed) {
    EXPECT_GT(failpoint::total_fired(), fired_before)
        << "engine.publish at p=0.3 over the whole run must have fired";
  }

  CanonicalEdgeSet ref = initial;
  for (const Commit& c : log) replay(ref, c.kind, c.edges);
  EXPECT_EQ(edge_set(dg.snapshot(engine.device())), ref);

  std::size_t ok = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "a future was abandoned";
    if (future.get().status == serve::Status::kOk) ++ok;
  }
  EXPECT_GT(ok, 0u) << "the server should keep answering between faults";
}

}  // namespace
}  // namespace emc::ingest
