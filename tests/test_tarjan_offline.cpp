#include <gtest/gtest.h>

#include <vector>

#include "core/tree.hpp"
#include "device/context.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/tarjan_offline.hpp"
#include "util/rng.hpp"

namespace emc::lca {
namespace {

struct OfflineCase {
  NodeId n;
  NodeId grasp;
  std::uint64_t seed;
};

class TarjanOffline : public ::testing::TestWithParam<OfflineCase> {};

INSTANTIATE_TEST_SUITE_P(
    TreeShapes, TarjanOffline,
    ::testing::Values(OfflineCase{1, gen::kInfiniteGrasp, 1},
                      OfflineCase{2, gen::kInfiniteGrasp, 2},
                      OfflineCase{5, 1, 3},
                      OfflineCase{100, gen::kInfiniteGrasp, 4},
                      OfflineCase{100, 2, 5},
                      OfflineCase{2000, gen::kInfiniteGrasp, 6},
                      OfflineCase{2000, 1, 7},
                      OfflineCase{2000, 25, 8},
                      OfflineCase{20000, gen::kInfiniteGrasp, 9},
                      OfflineCase{20000, 100, 10}));

TEST_P(TarjanOffline, MatchesInlabelOnRandomBatch) {
  const auto [n, grasp, seed] = GetParam();
  core::ParentTree tree = gen::random_tree(n, grasp, seed);
  gen::scramble_ids(tree, seed + 11);
  const auto queries =
      gen::random_queries(n, static_cast<std::size_t>(2 * n), seed + 12);
  const auto offline = tarjan_offline_lca(tree, queries);
  ASSERT_EQ(offline.size(), queries.size());

  const InlabelLca inlabel = InlabelLca::build_sequential(tree);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(offline[i], inlabel.query(queries[i].first, queries[i].second))
        << "query " << i << " (" << queries[i].first << ","
        << queries[i].second << ")";
  }
}

TEST(TarjanOfflineEdgeCases, EmptyBatch) {
  core::ParentTree tree = gen::random_tree(10, gen::kInfiniteGrasp, 1);
  EXPECT_TRUE(tarjan_offline_lca(tree, {}).empty());
}

TEST(TarjanOfflineEdgeCases, SelfQueries) {
  core::ParentTree tree = gen::random_tree(50, NodeId{3}, 2);
  gen::scramble_ids(tree, 3);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (NodeId v = 0; v < 50; ++v) queries.emplace_back(v, v);
  const auto answers = tarjan_offline_lca(tree, queries);
  for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(answers[v], v);
}

TEST(TarjanOfflineEdgeCases, RepeatedQueriesGetSameAnswer) {
  core::ParentTree tree = gen::random_tree(500, gen::kInfiniteGrasp, 4);
  gen::scramble_ids(tree, 5);
  std::vector<std::pair<NodeId, NodeId>> queries(100, {7, 13});
  queries.emplace_back(13, 7);  // reversed, too
  const auto answers = tarjan_offline_lca(tree, queries);
  for (std::size_t i = 1; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], answers[0]);
  }
}

TEST(TarjanOfflineEdgeCases, RootQueries) {
  core::ParentTree tree = gen::random_tree(200, NodeId{5}, 6);
  gen::scramble_ids(tree, 7);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (NodeId v = 0; v < 200; v += 13) queries.emplace_back(tree.root, v);
  const auto answers = tarjan_offline_lca(tree, queries);
  for (const NodeId a : answers) EXPECT_EQ(a, tree.root);
}

}  // namespace
}  // namespace emc::lca
