#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::util {
namespace {

// ---------------------------------------------------------------- types

TEST(Types, SaturatingSubClampsAtZeroInsteadOfWrapping) {
  EXPECT_EQ(saturating_sub<std::uint64_t>(5, 3), 2u);
  EXPECT_EQ(saturating_sub<std::uint64_t>(3, 5), 0u);  // would wrap to ~2^64
  EXPECT_EQ(saturating_sub<std::uint64_t>(7, 7), 0u);
  EXPECT_EQ(saturating_sub<std::uint64_t>(0, ~std::uint64_t{0}), 0u);
  EXPECT_EQ(saturating_sub<std::size_t>(~std::size_t{0}, 0), ~std::size_t{0});
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 30}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeSingleton) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- bits

TEST(Bits, MsbIndex32) {
  EXPECT_EQ(msb_index(std::uint32_t{1}), 0);
  EXPECT_EQ(msb_index(std::uint32_t{2}), 1);
  EXPECT_EQ(msb_index(std::uint32_t{3}), 1);
  EXPECT_EQ(msb_index(std::uint32_t{0x80000000u}), 31);
  for (int k = 0; k < 32; ++k) {
    EXPECT_EQ(msb_index(std::uint32_t{1} << k), k);
  }
}

TEST(Bits, MsbIndex64) {
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(msb_index(std::uint64_t{1} << k), k);
  }
}

TEST(Bits, LsbIndex) {
  EXPECT_EQ(lsb_index(std::uint32_t{1}), 0);
  EXPECT_EQ(lsb_index(std::uint32_t{12}), 2);
  for (int k = 0; k < 32; ++k) {
    EXPECT_EQ(lsb_index((std::uint32_t{1} << k) | 0x80000000u), k);
  }
}

TEST(Bits, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1023), 1024u);
  EXPECT_EQ(ceil_pow2(1024), 1024u);
  EXPECT_EQ(ceil_pow2(1025), 2048u);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1'000'000), 19);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
}

class BitsRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitsRoundTrip, MsbLsbConsistent) {
  const std::uint32_t x = GetParam();
  EXPECT_LE(lsb_index(x), msb_index(x));
  EXPECT_GE(x, std::uint32_t{1} << msb_index(x));
  EXPECT_LT(static_cast<std::uint64_t>(x),
            std::uint64_t{1} << (msb_index(x) + 1));
}

INSTANTIATE_TEST_SUITE_P(Values, BitsRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 100u, 4095u,
                                           4096u, 65535u, 1u << 20,
                                           0xdeadbeefu, 0xffffffffu));

// ---------------------------------------------------------------- timer

TEST(Timer, MonotoneNonNegative) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_LE(a, b);
}

TEST(PhaseTimer, AccumulatesByName) {
  PhaseTimer pt;
  pt.add("a", 1.0);
  pt.add("b", 2.0);
  pt.add("a", 0.5);
  ASSERT_EQ(pt.phases().size(), 2u);
  EXPECT_EQ(pt.phases()[0].first, "a");
  EXPECT_DOUBLE_EQ(pt.phases()[0].second, 1.5);
  EXPECT_DOUBLE_EQ(pt.total(), 3.5);
}

TEST(PhaseTimer, ScopedPhaseRecords) {
  PhaseTimer pt;
  { ScopedPhase phase(&pt, "scope"); }
  ASSERT_EQ(pt.phases().size(), 1u);
  EXPECT_GE(pt.phases()[0].second, 0.0);
}

TEST(PhaseTimer, NullSinkIsNoop) {
  ScopedPhase phase(nullptr, "nothing");  // must not crash
}

// ---------------------------------------------------------------- table

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::sci(12345.0), "1.234e+04");
}

TEST(Table, PrintsAlignedRows) {
  Table table({"col", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "2"});
  // Just exercise the path; visual alignment checked by eye in benches.
  table.print(stderr);
}

}  // namespace
}  // namespace emc::util
