// Incremental epoch publish: Session::refresh()/view() must produce a new
// epoch's FULL artifact set (edge snapshot, Csr, spanning forest, bridge
// mask, forest LCA, 2-ecc oracle) by replaying an insert-only delta onto
// the previous epoch's artifacts — indistinguishable from the full rebuild
// pipeline run from scratch at the same epoch.
//
// Four pillars:
//   replay pins — insert-only intra/cross batches take the replay path
//     (publish_replays advances, publish_rebuilds stays flat) and the
//     resulting View agrees artifact-for-artifact with a scratch Session;
//   fallback pins — deletions, oversized batches, multi-batch gaps and
//     cycle-closing cross pairs take the full pipeline, correctly;
//   copy-on-write — a View pinned at the previous epoch is immutable under
//     replay: the mask is patched on a copy, and an intra-only replay
//     SHARES the untouched forest with the published View (pointer pin);
//   differential fuzz — mixed insert/erase rounds publish every epoch and
//     diff against a from-scratch Session and the sequential reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/rng.hpp"

namespace emc::engine {
namespace {

using graph::Edge;
using graph::EdgeList;
using test_support::ReferenceOracle;

using CanonicalEdgeSet = std::set<std::pair<NodeId, NodeId>>;

/// The view's bridges as canonical endpoint pairs. Replayed and rebuilt
/// epochs order their edge lists differently (append vs full export), so
/// masks are only comparable as SETS of edges, never positionally.
CanonicalEdgeSet bridge_set(const View& view) {
  const bridges::BridgeMask& mask = view.run(Bridges{});
  const EdgeList& g = view.edges();
  CanonicalEdgeSet out;
  for (std::size_t e = 0; e < mask.size(); ++e) {
    if (mask[e] != 0) {
      out.insert({std::min(g.edges[e].u, g.edges[e].v),
                  std::max(g.edges[e].u, g.edges[e].v)});
    }
  }
  return out;
}

/// Label vectors describe the same partition iff the label-to-label map is
/// a bijection; the labels themselves may differ between pipelines.
void expect_same_partition(const std::vector<NodeId>& a,
                           const std::vector<NodeId>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  std::map<NodeId, NodeId> fwd, rev;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [fit, fnew] = fwd.try_emplace(a[v], b[v]);
    const auto [rit, rnew] = rev.try_emplace(b[v], a[v]);
    ASSERT_TRUE(fit->second == b[v] && rit->second == a[v])
        << what << " diverges at node " << v;
  }
}

/// Full artifact-level diff of a (possibly replayed) view against a view
/// built by an independent pipeline at the same epoch, plus a query sample.
void expect_views_agree(const View& got, const View& want, util::Rng& rng,
                        int num_queries) {
  ASSERT_EQ(got.epoch(), want.epoch());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  ASSERT_EQ(got.num_components(), want.num_components());
  // The replayed Csr must be a valid adjacency of the replayed snapshot.
  EXPECT_TRUE(graph::csr_matches(got.edges(), got.csr()));
  EXPECT_EQ(bridge_set(got), bridge_set(want));
  const TwoEccView blocks_got = got.run(TwoEcc{});
  const TwoEccView blocks_want = want.run(TwoEcc{});
  ASSERT_EQ(blocks_got.num_blocks, blocks_want.num_blocks);
  ASSERT_EQ(blocks_got.num_bridges, blocks_want.num_bridges);
  expect_same_partition(*blocks_got.labels, *blocks_want.labels, "2ecc");
  ASSERT_EQ(got.forest().num_components, want.forest().num_components);
  expect_same_partition(got.forest().component, want.forest().component,
                        "forest cc");
  std::vector<std::pair<NodeId, NodeId>> pairs;
  ComponentSize sizes;
  for (int q = 0; q < num_queries; ++q) {
    pairs.push_back({static_cast<NodeId>(rng.below(got.num_nodes())),
                     static_cast<NodeId>(rng.below(got.num_nodes()))});
    sizes.nodes.push_back(pairs.back().first);
  }
  EXPECT_EQ(got.run(Same2Ecc{pairs}), want.run(Same2Ecc{pairs}));
  EXPECT_EQ(got.run(BridgesOnPath{pairs}), want.run(BridgesOnPath{pairs}));
  EXPECT_EQ(got.run(sizes), want.run(sizes));
  // The forest LCA is rooting-specific (replay keeps the old rooting, a
  // rebuild re-roots), but reachability is not: a pair meets a real
  // ancestor iff it shares a component — on BOTH views.
  const auto lca_got = got.run(LcaBatch{pairs});
  const auto lca_want = want.run(LcaBatch{pairs});
  for (std::size_t q = 0; q < pairs.size(); ++q) {
    EXPECT_EQ(lca_got[q] == kNoNode, lca_want[q] == kNoNode)
        << "lca split " << pairs[q].first << "," << pairs[q].second;
  }
}

/// A from-scratch Session at the graph's current epoch: its empty cache
/// guarantees the full rebuild pipeline, the independent baseline every
/// replayed publish is diffed against.
View scratch_view(Engine& engine, const dynamic::DynamicGraph& dg) {
  Session scratch = engine.session(dg);
  scratch.refresh();
  return scratch.view();
}

// ------------------------------------------------------------ replay pins

TEST(PublishReplay, IntraChordReplayDemotesTheOldBridge) {
  Engine engine({.device_workers = 2});
  // Two triangles joined by a bridge; closing a second path kills it.
  dynamic::DynamicGraph dg(6);
  dg.insert_edges(engine.device(),
                  {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  Session session = engine.session(dg);
  session.refresh();
  EXPECT_EQ(session.publish_rebuilds(), 1u);
  EXPECT_EQ(session.publish_replays(), 0u);
  ASSERT_EQ(bridge_set(session.view()).size(), 1u);

  dg.insert_edges(engine.device(), {{1, 4}});
  session.refresh();
  EXPECT_EQ(session.publish_rebuilds(), 1u);  // no full pipeline this time
  EXPECT_EQ(session.publish_replays(), 1u);
  const View replayed = session.view();
  EXPECT_EQ(bridge_set(replayed).size(), 0u);  // the old bridge is demoted
  util::Rng rng(3);
  expect_views_agree(replayed, scratch_view(engine, dg), rng, 36);
}

TEST(PublishReplay, CrossComponentInsertPatchesForestAndLca) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(7);
  dg.insert_edges(engine.device(), {{0, 1}, {1, 2}, {2, 0},    // triangle
                                    {3, 4}, {4, 5}, {5, 3}});  // triangle
  Session session = engine.session(dg);
  session.refresh();
  ASSERT_EQ(session.view().num_components(), 3u);  // node 6 isolated

  // {2, 3} joins two components: the replay links the forests, appends the
  // new tree edge, and marks it a bridge — no full pipeline.
  dg.insert_edges(engine.device(), {{2, 3}});
  session.refresh();
  EXPECT_EQ(session.publish_replays(), 1u);
  EXPECT_EQ(session.publish_rebuilds(), 1u);
  View v = session.view();
  EXPECT_EQ(v.num_components(), 2u);
  EXPECT_EQ(bridge_set(v), (CanonicalEdgeSet{{2, 3}}));
  EXPECT_NE(v.run(LcaBatch{{{0, 4}}})[0], kNoNode);  // now connected
  EXPECT_EQ(v.run(LcaBatch{{{0, 6}}})[0], kNoNode);  // 6 still isolated
  util::Rng rng(21);
  expect_views_agree(v, scratch_view(engine, dg), rng, 36);

  // A cross link and an intra chord in ONE batch exercise both patch paths
  // in one replay: {6,0} is the new (only) bridge, {1,4} demotes {2,3}.
  dg.insert_edges(engine.device(), {{6, 0}, {1, 4}});
  session.refresh();
  EXPECT_EQ(session.publish_replays(), 2u);
  EXPECT_EQ(session.publish_rebuilds(), 1u);
  v = session.view();
  EXPECT_EQ(v.num_components(), 1u);
  EXPECT_EQ(bridge_set(v), (CanonicalEdgeSet{{0, 6}}));
  util::Rng rng2(22);
  expect_views_agree(v, scratch_view(engine, dg), rng2, 36);
}

// ---------------------------------------------------------- fallback pins

TEST(PublishReplay, EraseOversizedAndGapBatchesTakeTheFullPipeline) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(16));
  Session session = engine.session(dg);
  session.refresh();
  util::Rng rng(5);

  // Any erase disqualifies the replay.
  dg.erase_edges(engine.device(), {{0, 1}});
  session.refresh();
  EXPECT_EQ(session.publish_rebuilds(), 2u);
  EXPECT_EQ(session.publish_replays(), 0u);
  expect_views_agree(session.view(), scratch_view(engine, dg), rng, 16);

  // Two effective batches with no refresh between: only the second delta
  // survives, so the one-epoch-ahead precondition fails.
  dg.insert_edges(engine.device(), {{0, 2}});
  dg.insert_edges(engine.device(), {{0, 4}});
  session.refresh();
  EXPECT_EQ(session.publish_rebuilds(), 3u);
  EXPECT_EQ(session.publish_replays(), 0u);
  expect_views_agree(session.view(), scratch_view(engine, dg), rng, 16);

  // A delta past the size rule (max(64, m/4) here) falls back.
  std::vector<Edge> big;
  for (NodeId v = 0; v < 65; ++v) {
    big.push_back({v, static_cast<NodeId>(v + 100)});
  }
  dynamic::DynamicGraph wide(engine.device(), gen::path_graph(200));
  Session wide_session = engine.session(wide);
  wide_session.refresh();
  ASSERT_EQ(wide.insert_edges(engine.device(), big), big.size());
  wide_session.refresh();
  EXPECT_EQ(wide_session.publish_rebuilds(), 2u);
  EXPECT_EQ(wide_session.publish_replays(), 0u);
  expect_views_agree(wide_session.view(), scratch_view(engine, wide), rng, 16);
}

TEST(PublishReplay, CycleClosingCrossBatchTakesTheFullPipeline) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(6);
  dg.insert_edges(engine.device(), {{0, 1}, {1, 2}, {2, 0},    // triangle
                                    {3, 4}, {4, 5}, {5, 3}});  // triangle
  Session session = engine.session(dg);
  session.refresh();
  // Two edges between the SAME pair of components in one batch: the second
  // closes a cycle through the first, which no forest patch can express.
  dg.insert_edges(engine.device(), {{0, 3}, {1, 4}});
  session.refresh();
  EXPECT_EQ(session.publish_rebuilds(), 2u);
  EXPECT_EQ(session.publish_replays(), 0u);
  const View v = session.view();
  EXPECT_EQ(v.num_components(), 1u);
  EXPECT_EQ(bridge_set(v).size(), 0u);
  util::Rng rng(23);
  expect_views_agree(v, scratch_view(engine, dg), rng, 24);
}

// ----------------------------------------------------------- copy-on-write

TEST(PublishReplay, HeldViewsStayFrozenAndIntraReplaySharesTheForest) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(6);
  dg.insert_edges(engine.device(),
                  {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  Session session = engine.session(dg);
  session.refresh();
  const View v0 = session.view();
  const std::size_t m0 = v0.num_edges();
  ASSERT_EQ(bridge_set(v0), (CanonicalEdgeSet{{2, 3}}));

  // Intra replay under a pinned view: the mask is patched on a COPY, and
  // the untouched forest is SHARED with the pinned epoch — the same
  // object, not a clone (the structural pin of the copy-on-write design).
  dg.insert_edges(engine.device(), {{1, 4}});
  session.refresh();
  ASSERT_EQ(session.publish_replays(), 1u);
  const View v1 = session.view();
  EXPECT_EQ(v0.num_edges(), m0);
  EXPECT_EQ(bridge_set(v0), (CanonicalEdgeSet{{2, 3}}));  // frozen verdicts
  EXPECT_EQ(bridge_set(v1).size(), 0u);
  EXPECT_EQ(&v0.forest(), &v1.forest());
  util::Rng rng(7);
  expect_views_agree(v1, scratch_view(engine, dg), rng, 24);

  // A cross replay must NOT share: the forest gains a link, so the pinned
  // view keeps its own copy while the new epoch sees the merge.
  dynamic::DynamicGraph two(7);
  two.insert_edges(engine.device(),
                   {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  Session twos = engine.session(two);
  twos.refresh();
  const View w0 = twos.view();
  two.insert_edges(engine.device(), {{2, 3}});
  twos.refresh();
  ASSERT_EQ(twos.publish_replays(), 1u);
  const View w1 = twos.view();
  EXPECT_NE(&w0.forest(), &w1.forest());
  EXPECT_EQ(w0.forest().num_components, 3u);
  EXPECT_EQ(w1.forest().num_components, 2u);
  EXPECT_EQ(w0.run(LcaBatch{{{0, 4}}})[0], kNoNode);
  EXPECT_NE(w1.run(LcaBatch{{{0, 4}}})[0], kNoNode);
}

// ------------------------------------------------ launch-count guarantees

TEST(PublishLaunches, ReplayedPublishIsDeltaSizedNotGraphSized) {
  Engine engine({.device_workers = 2});
  // Road-like base, one giant component (reliability 1 keeps it connected).
  dynamic::DynamicGraph dg(engine.device(),
                           gen::road_graph(40, 40, 1.0, 0.05, 3));
  Session session = engine.session(dg);
  session.refresh();
  const auto cc = test_support::cc_labels(dg.snapshot(engine.device()));

  util::Rng rng(11);
  auto intra_batch = [&](std::size_t size) {
    std::vector<Edge> batch;
    while (batch.size() < size) {
      const auto u = static_cast<NodeId>(rng.below(dg.num_nodes()));
      const auto v = static_cast<NodeId>(rng.below(dg.num_nodes()));
      if (u != v && cc[u] == cc[v] && !dg.has_edge(u, v)) {
        batch.push_back({u, v});
      }
    }
    return batch;
  };
  auto publish_launches = [&](const std::vector<Edge>& batch) {
    EXPECT_GT(dg.insert_edges(engine.device(), batch), 0u);
    const std::uint64_t before = engine.device_launches();
    session.refresh();
    return engine.device_launches() - before;
  };

  // Replayed publishes run a FIXED kernel sequence: the launch count must
  // not scale with the delta (only per-kernel work does)...
  const std::uint64_t small = publish_launches(intra_batch(8));
  const std::uint64_t large = publish_launches(intra_batch(56));
  EXPECT_EQ(session.publish_replays(), 2u);
  EXPECT_EQ(small, large)
      << "replayed publish launch count must not scale with the delta";

  // ...and must undercut the full pipeline at the same epoch.
  Session scratch = engine.session(dg);
  const std::uint64_t before = engine.device_launches();
  scratch.refresh();
  const std::uint64_t full = engine.device_launches() - before;
  EXPECT_LT(large, full);
}

// ------------------------------------------------------------------- fuzz

TEST(PublishFuzz, EveryEpochMatchesAScratchSessionAndTheReference) {
  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  constexpr NodeId kNodes = 60;
  const std::uint64_t seed = test_support::fuzz_seed(90210);
  const int rounds = test_support::fuzz_rounds(120);
  util::Rng rng(seed);
  test_support::BatchScript script;

  // Disconnected base (two cycles + isolated tail nodes): rounds mix
  // intra-component inserts (replay), cross-component links (replay or
  // rebuild, batch-dependent) and erases (always rebuild).
  dynamic::DynamicGraph dg(kNodes);
  std::vector<Edge> base;
  for (NodeId v = 0; v < 24; ++v) {
    base.push_back({v, static_cast<NodeId>((v + 1) % 24)});
  }
  for (NodeId v = 24; v < 48; ++v) {
    base.push_back({v, static_cast<NodeId>(v == 47 ? 24 : v + 1)});
  }
  dg.insert_edges(engine.device(), base);
  Session session = engine.session(dg);
  session.refresh();

  std::vector<Edge> inserted_pool(base);
  for (int round = 0; round < rounds; ++round) {
    std::vector<Edge> batch;
    const std::size_t size = 1 + rng.below(10);
    if (round % 4 == 3) {
      for (std::size_t i = 0; i < size; ++i) {
        batch.push_back(inserted_pool[rng.below(inserted_pool.size())]);
      }
      script.add(round, "erase", batch);
      dg.erase_edges(engine.device(), batch);
    } else {
      for (std::size_t i = 0; i < size; ++i) {
        const Edge e = {static_cast<NodeId>(rng.below(kNodes)),
                        static_cast<NodeId>(rng.below(kNodes))};
        batch.push_back(e);
        if (e.u != e.v) inserted_pool.push_back(e);
      }
      script.add(round, "insert", batch);
      dg.insert_edges(engine.device(), batch);
    }
    // IIFE so a fatal failure lands here and the replay print still fires.
    [&] {
      session.refresh();
      const View got = session.view();
      ASSERT_EQ(got.epoch(), dg.epoch());
      expect_views_agree(got, scratch_view(engine, dg), rng, 12);
      // Ground truth: the sequential reference of the SAME snapshot.
      const ReferenceOracle ref(ref_ctx, dg.snapshot(engine.device()));
      EXPECT_EQ(bridge_set(got).size(), ref.num_bridges);
      std::vector<std::pair<NodeId, NodeId>> pairs;
      for (int q = 0; q < 8; ++q) {
        pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                         static_cast<NodeId>(rng.below(kNodes))});
      }
      const auto same = got.run(Same2Ecc{pairs});
      for (std::size_t q = 0; q < pairs.size(); ++q) {
        const auto [u, v] = pairs[q];
        EXPECT_EQ(same[q] != 0, ref.comp[u] == ref.comp[v])
            << "same2ecc " << u << "," << v;
      }
    }();
    if (::testing::Test::HasFailure()) {
      std::cerr << script.replay(seed, rounds);
      return;
    }
  }
  // Both publish paths must have carried real rounds — a coverage claim
  // that only holds statistically, so skip it under a small replay-session
  // EMC_FUZZ_ROUNDS override.
  if (rounds >= 30) {
    EXPECT_GT(session.publish_replays(), 0u);
    EXPECT_GT(session.publish_rebuilds(), 1u);
  }
}

}  // namespace
}  // namespace emc::engine
