// The serving layer: epoch-pinned Views must give snapshot isolation under
// a concurrent writer, and the Dispatcher must coalesce small request
// batches into single bulk answers.
//
// Four pillars:
//   snapshot isolation — a View acquired at epoch E keeps answering E's
//     truth (differentially checked against the shared reference) while
//     the DynamicGraph advances arbitrarily far past E;
//   concurrency — N reader threads answer on Views (host and device
//     routes) while one writer applies insert/erase batches and publishes
//     fresh Views; every answer must match the reference of the answering
//     View's OWN epoch. This is the suite the TSan CI job leans on;
//   coalescing pins — K small submitted batches drain as ONE answer round
//     costing one bulk kernel launch (and exactly K launches with
//     coalescing disabled — the per-request baseline);
//   lifecycle — drains on stop, shutdown races, copy-on-write of the
//     2-ecc index preserving the incremental-replay stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "serve/serve.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace emc::serve {
namespace {

using engine::Backend;
using engine::Engine;
using engine::Policy;
using engine::Session;
using engine::View;
using graph::Edge;
using graph::EdgeList;
using test_support::ReferenceOracle;

namespace failpoint = util::failpoint;

/// Every submission ends in exactly one outcome bucket; the QoS and
/// failpoint tests pin this ledger after every drain.
std::size_t outcomes(const DispatcherStats& s) {
  return s.answered + s.shed + s.rejected + s.expired + s.cancelled +
         s.faulted;
}

std::vector<Edge> random_batch(util::Rng& rng, NodeId n, std::size_t count) {
  std::vector<Edge> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back({static_cast<NodeId>(rng.below(n)),
                     static_cast<NodeId>(rng.below(n))});
  }
  return batch;
}

/// Checks one view's answers for `pairs` against the reference of the
/// view's own epoch. `tag` carries the replay seed into cross-thread
/// failure messages (SCOPED_TRACE is thread-local).
void expect_view_matches(const View& view, const ReferenceOracle& ref,
                         const std::vector<std::pair<NodeId, NodeId>>& pairs,
                         const std::string& tag) {
  const auto same = view.run(engine::Same2Ecc{pairs});
  const auto paths = view.run(engine::BridgesOnPath{pairs});
  const auto lcas = view.run(engine::LcaBatch{pairs});
  engine::ComponentSize sizes;
  for (const auto& [u, v] : pairs) sizes.nodes.push_back(u);
  const auto size_got = view.run(sizes);
  for (std::size_t q = 0; q < pairs.size(); ++q) {
    const auto [u, v] = pairs[q];
    EXPECT_EQ(same[q] != 0, ref.comp[u] == ref.comp[v])
        << tag << " epoch " << view.epoch() << " same2ecc " << u << "," << v;
    EXPECT_EQ(paths[q], ref.bridges_on_path(u, v))
        << tag << " epoch " << view.epoch() << " paths " << u << "," << v;
    // The forest LCA itself is rooting-specific; the component split is
    // not: pairs meet a real ancestor iff they share a component.
    EXPECT_EQ(lcas[q] == kNoNode, ref.cc[u] != ref.cc[v])
        << tag << " epoch " << view.epoch() << " lca " << u << "," << v;
    EXPECT_EQ(size_got[q], ref.comp_size[u])
        << tag << " epoch " << view.epoch() << " size " << u;
  }
}

TEST(ServeView, EpochPinnedSnapshotIsolation) {
  Engine engine({.device_workers = 2});
  // Sequential context for references: keeps the ground truth off the
  // engine's (locked) contexts entirely.
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(engine.device(),
                           gen::road_graph(24, 24, 0.7, 0.05, 31));
  Session session = engine.session(dg);

  Policy device_route;
  device_route.min_device_batch = 1;
  View v0 = session.view();
  View v0_dev = session.view(device_route);
  const std::size_t m0 = dg.num_edges();
  const auto ref0 =
      std::make_shared<ReferenceOracle>(ref_ctx, dg.snapshot(engine.device()));
  EXPECT_EQ(session.pinned_epochs(), 1u);  // both views pin the same epoch

  // Advance the graph two effective epochs past the views.
  util::Rng rng(91);
  const EdgeList& snap = dg.snapshot(engine.device());
  std::vector<Edge> erase(snap.edges.begin(), snap.edges.begin() + 40);
  ASSERT_GT(dg.erase_edges(engine.device(), erase), 0u);
  ASSERT_GT(dg.insert_edges(engine.device(), random_batch(rng, 576, 30)), 0u);
  session.refresh();
  View v1 = session.view();
  const ReferenceOracle ref1(ref_ctx, dg.snapshot(engine.device()));
  EXPECT_LT(v0.epoch(), v1.epoch());
  EXPECT_EQ(session.pinned_epochs(), 2u);

  // The old views answer at THEIR epoch — host route and device route.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int q = 0; q < 200; ++q) {
    pairs.push_back({static_cast<NodeId>(rng.below(576)),
                     static_cast<NodeId>(rng.below(576))});
  }
  expect_view_matches(v0, *ref0, pairs, "v0");
  expect_view_matches(v0_dev, *ref0, pairs, "v0-dev");
  expect_view_matches(v1, ref1, pairs, "v1");
  EXPECT_EQ(v0.run(engine::Same2Ecc{pairs}), v0_dev.run(engine::Same2Ecc{pairs}));

  // The frozen mask still indexes the OLD snapshot (which the view pins).
  EXPECT_EQ(v0.run(engine::Bridges{}).size(), m0);
  EXPECT_EQ(v0.num_edges(), m0);
  EXPECT_EQ(v0.edges().edges.size(), m0);
  EXPECT_NE(m0, dg.num_edges());

  // Session-side drops do not disturb live views; dropping the last view
  // of an epoch retires it.
  session.drop_artifacts();
  expect_view_matches(v0, *ref0, pairs, "v0-after-drop");
  v0 = View{};
  v0_dev = View{};
  EXPECT_EQ(session.pinned_epochs(), 1u);
  expect_view_matches(v1, ref1, pairs, "v1-after-retire");
}

TEST(ServeView, CopyOnWriteKeepsIncrementalReplayAndStats) {
  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);

  session.run(engine::TwoEcc{});  // build the index (rebuild #1)
  View ring = session.view();
  EXPECT_EQ(session.two_ecc_index().rebuilds(), 1u);

  // An erase splits the cycle into a path of bridges. The session's index
  // must advance (full rebuild on deletion) on a CLONE, the view's frozen
  // copy must keep answering the ring.
  ASSERT_EQ(dg.erase_edges(engine.device(), {{10, 11}}), 1u);
  const auto after = session.run(engine::Same2Ecc{{{0, 32}}});
  EXPECT_EQ(after[0], 0);  // path: no two edge-disjoint routes remain
  const auto ring_answer = ring.run(engine::Same2Ecc{{{0, 32}}});
  EXPECT_EQ(ring_answer[0], 1);  // the pinned epoch still sees the cycle
  // The clone carried the cumulative stats (1 initial + 1 post-erase).
  EXPECT_EQ(session.two_ecc_index().rebuilds(), 2u);

  // Insert-only deltas still take the incremental path on the clone.
  ASSERT_EQ(dg.insert_edges(engine.device(), {{10, 11}}), 1u);
  session.refresh();
  EXPECT_EQ(session.two_ecc_index().incremental_refreshes(), 1u);
  const ReferenceOracle ref(ref_ctx, dg.snapshot(engine.device()));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  util::Rng rng(7);
  for (int q = 0; q < 100; ++q) {
    pairs.push_back({static_cast<NodeId>(rng.below(64)),
                     static_cast<NodeId>(rng.below(64))});
  }
  expect_view_matches(session.view(), ref, pairs, "post-incremental");
}

// The marquee concurrency fuzz: N readers on published Views, one writer
// advancing the graph. Every answer is checked against the reference of
// the answering view's OWN epoch — stale reads are correct reads here;
// wrong ones mean the snapshot leaked. Run under TSan in CI.
TEST(ServeConcurrent, ReadersHoldSnapshotsWhileWriterAdvances) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/2026, /*rounds=*/30);
  SCOPED_TRACE(fuzz.trace);
  const std::string tag = "[" + fuzz.trace + "]";
  constexpr NodeId kSide = 18;
  constexpr NodeId kNodes = kSide * kSide;

  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(
      engine.device(), gen::road_graph(kSide, kSide, 0.65, 0.05, fuzz.seed));
  Session session = engine.session(dg);

  struct Entry {
    View view;
    std::shared_ptr<const ReferenceOracle> ref;
  };
  std::mutex board_mutex;
  Entry board;
  const auto publish = [&](const Policy& policy) {
    Entry entry;
    entry.view = session.view(policy);
    entry.ref = std::make_shared<const ReferenceOracle>(
        ref_ctx, dg.snapshot(engine.device()));
    const std::lock_guard<std::mutex> lock(board_mutex);
    board = std::move(entry);
  };
  publish(Policy{});

  std::atomic<bool> done{false};
  const auto reader = [&](unsigned tid) {
    util::Rng rng(fuzz.seed * 1000003 + tid);
    while (!done.load(std::memory_order_acquire)) {
      Entry entry;
      {
        const std::lock_guard<std::mutex> lock(board_mutex);
        entry = board;
      }
      std::vector<std::pair<NodeId, NodeId>> pairs;
      for (int q = 0; q < 24; ++q) {
        pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                         static_cast<NodeId>(rng.below(kNodes))});
      }
      expect_view_matches(entry.view, *entry.ref, pairs, tag);
    }
  };
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 3; ++t) readers.emplace_back(reader, t);

  // Writer: alternating insert/erase batches; every effective batch is
  // refreshed and published, odd epochs with the forced-device query route
  // so readers exercise the bulk kernels concurrently too.
  util::Rng rng(fuzz.seed ^ 0x9e3779b9);
  test_support::BatchScript script;
  for (int round = 0; round < fuzz.rounds; ++round) {
    const bool do_erase = round % 3 == 2;
    std::vector<Edge> batch;
    if (do_erase) {
      const EdgeList& snap = dg.snapshot(engine.device());
      const std::size_t count = 1 + rng.below(6);
      for (std::size_t i = 0; i < count && !snap.edges.empty(); ++i) {
        batch.push_back(snap.edges[rng.below(snap.edges.size())]);
      }
      script.add(round, "erase", batch);
      dg.erase_edges(engine.device(), batch);
    } else {
      batch = random_batch(rng, kNodes, 1 + rng.below(8));
      script.add(round, "insert", batch);
      dg.insert_edges(engine.device(), batch);
    }
    Policy policy;
    if (round % 2 == 1) policy.min_device_batch = 1;
    publish(policy);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thread : readers) thread.join();
  if (::testing::Test::HasFailure()) {
    ADD_FAILURE() << script.replay(fuzz.seed, fuzz.rounds);
  }
}

TEST(ServeDispatcher, AnswersCarryTheServingEpochAcrossPublishes) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/414, /*rounds=*/12);
  SCOPED_TRACE(fuzz.trace);
  constexpr NodeId kNodes = 400;

  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(engine.device(),
                           gen::er_graph(kNodes, 520, fuzz.seed));
  Session session = engine.session(dg);

  std::map<std::uint64_t, std::shared_ptr<const ReferenceOracle>> refs;
  View first = session.view();
  refs[first.epoch()] = std::make_shared<const ReferenceOracle>(
      ref_ctx, dg.snapshot(engine.device()));
  Dispatcher dispatcher(std::move(first), {.workers = 2});

  util::Rng rng(fuzz.seed + 5);
  struct PendingSame {
    engine::Same2Ecc request;
    std::future<Reply<std::vector<std::uint8_t>>> future;
  };
  struct PendingPath {
    engine::BridgesOnPath request;
    std::future<Reply<std::vector<NodeId>>> future;
  };
  std::vector<PendingSame> sames;
  std::vector<PendingPath> paths;
  for (int round = 0; round < fuzz.rounds; ++round) {
    for (int burst = 0; burst < 20; ++burst) {
      engine::Same2Ecc same;
      engine::BridgesOnPath path;
      for (int q = 0; q < 4; ++q) {
        same.pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                              static_cast<NodeId>(rng.below(kNodes))});
        path.pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                              static_cast<NodeId>(rng.below(kNodes))});
      }
      auto same_future = dispatcher.submit(engine::Same2Ecc{same});
      auto path_future = dispatcher.submit(engine::BridgesOnPath{path});
      sames.push_back({std::move(same), std::move(same_future)});
      paths.push_back({std::move(path), std::move(path_future)});
    }
    // Advance and publish mid-traffic.
    dg.insert_edges(engine.device(), random_batch(rng, kNodes, 4));
    session.refresh();
    View view = session.view();
    if (refs.find(view.epoch()) == refs.end()) {
      refs[view.epoch()] = std::make_shared<const ReferenceOracle>(
          ref_ctx, dg.snapshot(engine.device()));
    }
    dispatcher.publish(std::move(view));
  }
  dispatcher.stop();

  for (PendingSame& pending : sames) {
    const auto reply = pending.future.get();
    ASSERT_TRUE(refs.count(reply.epoch)) << "unknown serving epoch";
    const ReferenceOracle& ref = *refs[reply.epoch];
    for (std::size_t q = 0; q < pending.request.pairs.size(); ++q) {
      const auto [u, v] = pending.request.pairs[q];
      ASSERT_EQ(reply.value[q] != 0, ref.comp[u] == ref.comp[v])
          << "epoch " << reply.epoch << " " << u << "," << v;
    }
  }
  for (PendingPath& pending : paths) {
    const auto reply = pending.future.get();
    ASSERT_TRUE(refs.count(reply.epoch)) << "unknown serving epoch";
    const ReferenceOracle& ref = *refs[reply.epoch];
    for (std::size_t q = 0; q < pending.request.pairs.size(); ++q) {
      const auto [u, v] = pending.request.pairs[q];
      ASSERT_EQ(reply.value[q], ref.bridges_on_path(u, v))
          << "epoch " << reply.epoch << " " << u << "," << v;
    }
  }
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.submitted, stats.answered);
  EXPECT_GT(stats.views_published, 0u);
}

TEST(ServeDispatcher, CoalescesKSmallBatchesIntoOneBulkLaunch) {
  constexpr std::size_t kRequests = 48;
  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::road_graph(30, 30, 0.72, 0.04, 3)));
  Session session = engine.session(g);
  const ReferenceOracle ref(ref_ctx, g);

  Policy device_route;
  device_route.min_device_batch = 1;  // every round is a bulk kernel
  DispatcherOptions options;
  options.workers = 1;  // deterministic: one drainer, one round
  options.start_paused = true;
  Dispatcher dispatcher(session.view(device_route), options);

  util::Rng rng(17);
  std::vector<std::pair<NodeId, NodeId>> queries;
  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto u = static_cast<NodeId>(rng.below(g.num_nodes));
    const auto v = static_cast<NodeId>(rng.below(g.num_nodes));
    queries.push_back({u, v});
    futures.push_back(dispatcher.submit(engine::Same2Ecc{{{u, v}}}));
  }

  const std::uint64_t before = engine.device_launches();
  dispatcher.resume();
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto reply = futures[i].get();
    ASSERT_EQ(reply.value.size(), 1u);
    const auto [u, v] = queries[i];
    EXPECT_EQ(reply.value[0] != 0, ref.comp[u] == ref.comp[v]) << u << "," << v;
  }
  // The pin: K single-pair requests, ONE bulk answer kernel.
  EXPECT_EQ(engine.device_launches(), before + 1);
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.coalesced_requests, kRequests);
  EXPECT_EQ(stats.max_round, kRequests);
  EXPECT_EQ(stats.answered, kRequests);
}

TEST(ServeDispatcher, DisablingCoalescingPaysALaunchPerRequest) {
  constexpr std::size_t kRequests = 16;
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(128);
  Session session = engine.session(g);

  Policy device_route;
  device_route.min_device_batch = 1;
  DispatcherOptions options;
  options.workers = 1;
  options.start_paused = true;
  options.max_coalesce = 1;  // the per-request baseline
  Dispatcher dispatcher(session.view(device_route), options);

  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(dispatcher.submit(
        engine::Same2Ecc{{{static_cast<NodeId>(i), static_cast<NodeId>(i + 1)}}}));
  }
  const std::uint64_t before = engine.device_launches();
  dispatcher.resume();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().value[0], 1);  // a cycle is one 2ecc block
  }
  EXPECT_EQ(engine.device_launches(), before + kRequests);
  EXPECT_EQ(dispatcher.stats().rounds, kRequests);
  EXPECT_EQ(dispatcher.stats().coalesced_requests, 0u);
}

TEST(ServeDispatcher, BroadcastLanesAnswerOncePerRound) {
  Engine engine({.device_workers = 2});
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::er_graph(300, 500, 23)));
  Session session = engine.session(g);
  const bridges::BridgeMask expected = session.run(engine::Bridges{});
  const engine::TwoEccView expected_blocks = session.run(engine::TwoEcc{});

  DispatcherOptions options;
  options.workers = 1;
  options.start_paused = true;
  Dispatcher dispatcher(session.view(), options);
  std::vector<std::future<Reply<bridges::BridgeMask>>> masks;
  std::vector<std::future<Reply<TwoEccSummary>>> blocks;
  for (int i = 0; i < 5; ++i) {
    masks.push_back(dispatcher.submit(engine::Bridges{}));
    blocks.push_back(dispatcher.submit(engine::TwoEcc{}));
  }
  const std::uint64_t before = engine.device_launches();
  dispatcher.resume();
  for (auto& future : masks) EXPECT_EQ(future.get().value, expected);
  for (auto& future : blocks) {
    const auto reply = future.get();
    EXPECT_EQ(reply.value.num_blocks, expected_blocks.num_blocks);
    EXPECT_EQ(reply.value.num_bridges, expected_blocks.num_bridges);
  }
  // Everything was prebuilt into the view: broadcasting launches nothing.
  EXPECT_EQ(engine.device_launches(), before);
  EXPECT_EQ(dispatcher.stats().rounds, 2u);  // one per lane
}

TEST(ServeDispatcher, StopDrainsEverythingAndLateSubmitsAreCancelled) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(64);
  Session session = engine.session(g);
  DispatcherOptions options;
  options.workers = 2;
  options.start_paused = true;  // nothing drains until stop()
  Dispatcher dispatcher(session.view(), options);

  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(dispatcher.submit(engine::Same2Ecc{{{0, 32}}}));
  }
  dispatcher.stop();  // must answer the paused backlog, not abandon it
  for (auto& future : futures) {
    const auto reply = future.get();
    EXPECT_EQ(reply.status, Status::kOk);
    EXPECT_EQ(reply.value[0], 1);
  }

  // The shutdown race: a submit() after stop() began must NOT be silently
  // worked on the caller thread — it resolves immediately as cancelled.
  auto late = dispatcher.submit(engine::Same2Ecc{{{1, 2}}});
  const auto reply = late.get();
  EXPECT_EQ(reply.status, Status::kCancelled);
  EXPECT_TRUE(reply.value.empty());
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.submitted, stats.answered + stats.cancelled);
}

// ---------------------------------------------------------------------------
// QoS: deadlines, bounded lanes with the three admission policies, fairness,
// and the 4x-oversubscribed flash crowd (ISSUE 6 acceptance scenario).

TEST(ServeQoS, ExpiredDeadlinesResolveTimeoutNotAnswers) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(64);
  Session session = engine.session(g);

  DispatcherOptions options;
  options.workers = 1;
  options.start_paused = true;  // let the deadline pass while queued
  Dispatcher dispatcher(session.view(), options);

  Ticket doomed;
  doomed.ttl = std::chrono::microseconds(1);
  auto expired = dispatcher.submit(engine::Same2Ecc{{{0, 32}}}, doomed);
  auto fine = dispatcher.submit(engine::Same2Ecc{{{0, 32}}});  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dispatcher.resume();

  const auto timed_out = expired.get();
  EXPECT_EQ(timed_out.status, Status::kTimeout);
  EXPECT_TRUE(timed_out.value.empty());
  const auto answered = fine.get();
  EXPECT_EQ(answered.status, Status::kOk);
  EXPECT_EQ(answered.value[0], 1);  // a cycle is one 2ecc block

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.answered, 1u);
  EXPECT_EQ(stats.submitted, outcomes(stats));
}

TEST(ServeQoS, FullLaneRejectsImmediatelyUnderRejectPolicy) {
  constexpr std::size_t kBound = 8;
  constexpr std::size_t kSubmitted = 20;
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(64);
  Session session = engine.session(g);

  DispatcherOptions options;
  options.workers = 1;
  options.start_paused = true;  // nothing drains: the lane must fill
  options.queue_bound = kBound;
  options.admission = Admission::kReject;
  Dispatcher dispatcher(session.view(), options);

  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> futures;
  for (std::size_t i = 0; i < kSubmitted; ++i) {
    futures.push_back(dispatcher.submit(engine::Same2Ecc{{{0, 32}}}));
  }
  // Overflow submits resolve kOverloaded synchronously — no waiting for a
  // worker, which is the point of Reject under overload.
  for (std::size_t i = kBound; i < kSubmitted; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "rejected submit " << i << " should already be resolved";
    const auto reply = futures[i].get();
    EXPECT_EQ(reply.status, Status::kOverloaded);
    EXPECT_TRUE(reply.value.empty());
  }
  dispatcher.resume();
  for (std::size_t i = 0; i < kBound; ++i) {
    const auto reply = futures[i].get();
    EXPECT_EQ(reply.status, Status::kOk);
    EXPECT_EQ(reply.value[0], 1);
  }
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.rejected, kSubmitted - kBound);
  EXPECT_EQ(stats.answered, kBound);
  EXPECT_EQ(stats.max_queue_depth, kBound);  // the bound really bounded it
  EXPECT_EQ(stats.submitted, outcomes(stats));
}

TEST(ServeQoS, ShedOldestEvictsTheFattestClientNotTheLightOne) {
  constexpr std::size_t kBound = 8;
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(64);
  Session session = engine.session(g);

  DispatcherOptions options;
  options.workers = 1;
  options.start_paused = true;
  options.queue_bound = kBound;
  options.admission = Admission::kShedOldest;
  Dispatcher dispatcher(session.view(), options);

  Ticket heavy;
  heavy.client = 1;
  Ticket light;
  light.client = 2;

  // The heavy tenant fills the lane; each light submit must then evict the
  // OLDEST heavy item, never another light one — this is the fairness pin
  // (round-robin drain order itself is not externally observable).
  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> heavy_futures;
  for (std::size_t i = 0; i < kBound; ++i) {
    heavy_futures.push_back(
        dispatcher.submit(engine::Same2Ecc{{{0, 32}}}, heavy));
  }
  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> light_futures;
  light_futures.push_back(dispatcher.submit(engine::Same2Ecc{{{0, 32}}}, light));
  light_futures.push_back(dispatcher.submit(engine::Same2Ecc{{{0, 32}}}, light));

  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(heavy_futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(heavy_futures[i].get().status, Status::kOverloaded)
        << "oldest heavy item " << i << " should have been shed";
  }
  dispatcher.resume();
  for (auto& future : light_futures) {
    const auto reply = future.get();
    EXPECT_EQ(reply.status, Status::kOk) << "light tenant must not be shed";
    EXPECT_EQ(reply.value[0], 1);
  }
  for (std::size_t i = 2; i < kBound; ++i) {
    EXPECT_EQ(heavy_futures[i].get().status, Status::kOk);
  }
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.submitted, outcomes(stats));
}

TEST(ServeQoS, BlockAdmissionAppliesBackpressureUntilSpaceFrees) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(64);
  Session session = engine.session(g);

  DispatcherOptions options;
  options.workers = 1;
  options.start_paused = true;
  options.queue_bound = 2;
  options.admission = Admission::kBlock;
  Dispatcher dispatcher(session.view(), options);

  auto first = dispatcher.submit(engine::Same2Ecc{{{0, 32}}});
  auto second = dispatcher.submit(engine::Same2Ecc{{{0, 32}}});

  std::atomic<bool> admitted{false};
  Status blocked_status = Status::kFaulted;
  std::thread blocked([&] {
    auto future = dispatcher.submit(engine::Same2Ecc{{{0, 32}}});
    admitted.store(true);  // submit() returned: the lane made room
    blocked_status = future.get().status;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load()) << "submit into a full Block lane must wait";

  dispatcher.resume();  // drains the lane, which unblocks the caller
  blocked.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(blocked_status, Status::kOk);
  EXPECT_EQ(first.get().status, Status::kOk);
  EXPECT_EQ(second.get().status, Status::kOk);
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.answered, 3u);
  EXPECT_EQ(stats.max_queue_depth, 2u);
  EXPECT_EQ(stats.submitted, outcomes(stats));
}

TEST(ServeQoS, FlashCrowdShedsExcessAndKeepsAdmittedLatencyBounded) {
  constexpr NodeId kNodes = 400;
  constexpr std::size_t kBound = 32;
  constexpr unsigned kFlashThreads = 4;  // the 4x oversubscription
  constexpr std::size_t kPerThread = 300;
  Engine engine({.device_workers = 2});
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::er_graph(kNodes, 900, 11)));
  Session session = engine.session(g);

  // Host route: merged rounds answer in the host loop, so admitted latency
  // is queue-dominated and the steady/flash comparison is about QUEUEING,
  // not about which backend a bigger merged batch happens to pick.
  Policy host_route;
  host_route.min_device_batch = std::size_t{1} << 30;

  DispatcherOptions options;
  options.workers = 2;
  options.queue_bound = kBound;
  options.admission = Admission::kShedOldest;
  options.default_ttl = std::chrono::milliseconds(200);
  Dispatcher dispatcher(session.view(host_route), options);

  util::Rng rng(47);
  const auto one_query = [&] {
    return engine::Same2Ecc{{{static_cast<NodeId>(rng.below(g.num_nodes)),
                              static_cast<NodeId>(rng.below(g.num_nodes))}}};
  };
  const auto p99 = [](std::vector<double>& lat) {
    std::sort(lat.begin(), lat.end());
    return lat.empty() ? 0.0 : lat[lat.size() - 1 - lat.size() / 100];
  };

  // Steady state: closed loop, 4 outstanding requests at a time.
  std::vector<double> steady_lat;
  for (int wave = 0; wave < 50; ++wave) {
    std::array<std::chrono::steady_clock::time_point, 4> begin;
    std::array<std::future<Reply<std::vector<std::uint8_t>>>, 4> futures;
    for (int i = 0; i < 4; ++i) {
      begin[i] = std::chrono::steady_clock::now();
      futures[i] = dispatcher.submit(one_query());
    }
    for (int i = 0; i < 4; ++i) {
      const auto reply = futures[i].get();
      ASSERT_EQ(reply.status, Status::kOk);
      steady_lat.push_back(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - begin[i])
                               .count());
    }
  }
  const double steady_p99 = p99(steady_lat);

  // Flash crowd: kFlashThreads open-loop submitters flooding as fast as
  // they can against the same bounded lane. Each thread reaps its own
  // futures FIFO — opportunistically (non-blocking) while still
  // submitting, so a reply's latency is measured when it resolves, not
  // after the whole flood ends.
  struct Timed {
    std::chrono::steady_clock::time_point begin;
    std::future<Reply<std::vector<std::uint8_t>>> future;
  };
  struct FlashOutcome {
    std::size_t ok = 0, overloaded = 0, timeout = 0, unexpected = 0;
    std::size_t nonempty_failures = 0;  // non-Ok replies carrying a value
    std::vector<double> lat;
  };
  std::vector<FlashOutcome> per_thread(kFlashThreads);
  std::vector<std::thread> flood;
  for (unsigned t = 0; t < kFlashThreads; ++t) {
    flood.emplace_back([&, t] {
      util::Rng thread_rng(100 + t);
      FlashOutcome& mine = per_thread[t];
      std::deque<Timed> inflight;
      const auto reap = [&](Timed& timed) {
        const auto reply = timed.future.get();
        switch (reply.status) {
          case Status::kOk:
            ++mine.ok;
            mine.lat.push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - timed.begin)
                    .count());
            break;
          case Status::kOverloaded:
            ++mine.overloaded;
            break;
          case Status::kTimeout:
            ++mine.timeout;
            break;
          default:
            ++mine.unexpected;
        }
        if (reply.status != Status::kOk && !reply.value.empty()) {
          ++mine.nonempty_failures;
        }
      };
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const auto u = static_cast<NodeId>(thread_rng.below(g.num_nodes));
        const auto v = static_cast<NodeId>(thread_rng.below(g.num_nodes));
        inflight.push_back({std::chrono::steady_clock::now(),
                            dispatcher.submit(engine::Same2Ecc{{{u, v}}})});
        while (!inflight.empty() &&
               inflight.front().future.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready) {
          reap(inflight.front());
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {  // blocking drain of the tail
        reap(inflight.front());
        inflight.pop_front();
      }
    });
  }
  for (auto& thread : flood) thread.join();

  // Every future must resolve with a definite Status — none abandoned.
  std::size_t ok = 0, overloaded = 0, timeout = 0;
  std::vector<double> flash_lat;
  for (const FlashOutcome& mine : per_thread) {
    ok += mine.ok;
    overloaded += mine.overloaded;
    timeout += mine.timeout;
    EXPECT_EQ(mine.unexpected, 0u);
    EXPECT_EQ(mine.nonempty_failures, 0u);
    flash_lat.insert(flash_lat.end(), mine.lat.begin(), mine.lat.end());
  }
  EXPECT_EQ(ok + overloaded + timeout, kFlashThreads * kPerThread);
  EXPECT_GT(ok, 0u);
  EXPECT_GT(overloaded + timeout, 0u)
      << "4x oversubscription of a bounded lane must shed or expire";

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_LE(stats.max_queue_depth, kBound);  // lanes stayed bounded
  EXPECT_EQ(stats.shed + stats.expired, overloaded + timeout);
  EXPECT_EQ(stats.submitted, outcomes(stats));

  // The latency pin: shedding keeps ADMITTED p99 near the steady-state
  // p99 instead of letting it grow with the (unbounded) arrival backlog.
  // The absolute floor absorbs scheduler noise on loaded CI machines; the
  // bench (bench_serve qos/flash) records the real ratio.
  const double flash_p99 = p99(flash_lat);
  EXPECT_LE(flash_p99, std::max(2.0 * steady_p99, 0.005))
      << "steady p99 " << steady_p99 << "s vs flash admitted p99 "
      << flash_p99 << "s";
}

// ---------------------------------------------------------------------------
// Failpoints: publish retry/degradation and the randomized fault fuzz.
// CI runs this filter with EMC_FAILPOINT set (one site per job round); the
// deterministic launch-count pins above would not survive an env-armed
// process, so the full binary runs unarmed.

TEST(ServeFailpoints, PublishRetriesThroughATransientFault) {
  failpoint::disable_all();
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);

  DispatcherOptions options;
  options.workers = 1;
  options.publish_backoff = std::chrono::microseconds(50);
  Dispatcher dispatcher(session.view(), options);

  dg.insert_edges(engine.device(), {{0, 32}});
  // One-shot: the first build attempt throws, the retry succeeds.
  ASSERT_TRUE(failpoint::configure(failpoint::kPublish, "1"));
  EXPECT_TRUE(dispatcher.publish(session));
  failpoint::disable_all();

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_GE(stats.publish_retries, 1u);
  EXPECT_EQ(stats.publish_failures, 0u);
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.staleness, 0u);
  EXPECT_GE(stats.faults_injected, 1u);

  // And it is really serving the fresh epoch.
  const auto reply = dispatcher.submit(engine::Same2Ecc{{{0, 32}}}).get();
  EXPECT_EQ(reply.status, Status::kOk);
  EXPECT_EQ(reply.epoch, dg.epoch());
  EXPECT_EQ(reply.staleness, 0u);
}

TEST(ServeFailpoints, PublishGivesUpIntoBoundedStalenessAndRecovers) {
  failpoint::disable_all();
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);

  DispatcherOptions options;
  options.workers = 1;
  options.publish_attempts = 2;
  options.publish_backoff = std::chrono::microseconds(50);
  Dispatcher dispatcher(session.view(), options);
  const std::uint64_t healthy_epoch = dispatcher.current_view().epoch();

  dg.insert_edges(engine.device(), {{1, 33}});
  // Persistent: every build attempt fails — the dispatcher must give up
  // into bounded-staleness mode, keeping the previous View serving.
  ASSERT_TRUE(failpoint::configure(failpoint::kPublish, "1+"));
  EXPECT_FALSE(dispatcher.publish(session));

  DispatcherStats stats = dispatcher.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.publish_failures, 1u);
  EXPECT_GE(stats.publish_retries, 1u);
  EXPECT_GT(stats.staleness, 0u);

  // Stale but correct-at-its-epoch answers, staleness stamped in replies.
  auto reply = dispatcher.submit(engine::Same2Ecc{{{0, 32}}}).get();
  EXPECT_EQ(reply.status, Status::kOk);
  EXPECT_EQ(reply.epoch, healthy_epoch);
  EXPECT_GT(reply.staleness, 0u);
  EXPECT_EQ(reply.value[0], 1);
  EXPECT_GT(dispatcher.stats().stale_served, 0u);

  // Recovery is the next successful publish.
  failpoint::disable_all();
  EXPECT_TRUE(dispatcher.publish(session));
  stats = dispatcher.stats();
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.staleness, 0u);
  reply = dispatcher.submit(engine::Same2Ecc{{{0, 32}}}).get();
  EXPECT_EQ(reply.status, Status::kOk);
  EXPECT_EQ(reply.epoch, dg.epoch());
  EXPECT_EQ(reply.staleness, 0u);
}

TEST(ServeStats, StalenessCountsForwardFromTheHighWaterMarkAndNeverWraps) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(32));
  Session session = engine.session(dg);
  const View v0 = session.view();  // epoch 0
  ASSERT_GT(dg.insert_edges(engine.device(), {{0, 5}}), 0u);
  ASSERT_GT(dg.insert_edges(engine.device(), {{1, 9}}), 0u);
  session.refresh();

  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(session.view(), options);  // serving epoch 2
  EXPECT_EQ(dispatcher.stats().staleness, 0u);

  // Publishing an OLDER View (a rollback) must not wrap the gauge: the
  // high-water mark stays at the newest epoch ever seen, so the dispatcher
  // reports serving 2 epochs behind — a small forward count, not ~2^64 —
  // and stamps the same clamped number into replies.
  dispatcher.publish(v0);
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.staleness, 2u);
  const auto reply = dispatcher.submit(engine::Same2Ecc{{{0, 1}}}).get();
  EXPECT_EQ(reply.status, Status::kOk);
  EXPECT_EQ(reply.epoch, 0u);
  EXPECT_EQ(reply.staleness, 2u);
}

TEST(ServeStats, PublishAttributionSeparatesReplaysFromRebuilds) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);
  DispatcherOptions options;
  options.workers = 1;
  Dispatcher dispatcher(session.view(), options);
  ASSERT_EQ(dispatcher.stats().publish_rebuilds, 0u);  // ctor View isn't one

  // An insert-only chord publishes by delta replay; an erase forces the
  // full pipeline; a publish with nothing new counts as neither.
  dg.insert_edges(engine.device(), {{0, 32}});
  EXPECT_TRUE(dispatcher.publish(session));
  dg.erase_edges(engine.device(), {{0, 32}});
  EXPECT_TRUE(dispatcher.publish(session));
  EXPECT_TRUE(dispatcher.publish(session));  // same epoch: a cache hit
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.publish_replays, 1u);
  EXPECT_EQ(stats.publish_rebuilds, 1u);
  EXPECT_EQ(stats.views_published, 3u);
}

// The robustness fuzz (ISSUE 6 acceptance): under fault injection at EVERY
// catalog site, every submitted future must still resolve with a definite
// Status, kOk answers must match the reference of their serving epoch, and
// the outcome ledger must balance. When the environment armed EMC_FAILPOINT
// (the CI matrix does, one site per job), fuzz under THAT configuration;
// otherwise rotate through the catalog round-robin.
TEST(ServeFailpoints, EveryFutureResolvesUnderRandomizedFaults) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/909, /*rounds=*/16);
  SCOPED_TRACE(fuzz.trace);
  constexpr NodeId kNodes = 256;

  // Re-arm from the environment explicitly: an earlier test's
  // disable_all() must not silently demote a CI-configured run into the
  // self-rotating mode.
  const char* env_spec = std::getenv("EMC_FAILPOINT");
  const bool env_armed =
      env_spec != nullptr && failpoint::configure_from_string(env_spec) > 0;
  constexpr std::array<const char*, 4> kCatalog = {
      failpoint::kArenaAlloc, failpoint::kDeviceLaunch, failpoint::kSnapshot,
      failpoint::kPublish};

  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(engine.device(),
                           gen::er_graph(kNodes, 400, fuzz.seed));
  Session session = engine.session(dg);

  std::map<std::uint64_t, std::shared_ptr<const ReferenceOracle>> refs;
  // Reference building must not absorb injected faults: it is the ground
  // truth, not the system under test.
  const auto capture_ref = [&](const View& view) {
    if (refs.count(view.epoch())) return;
    failpoint::ScopedSuspend suspend;
    refs[view.epoch()] =
        std::make_shared<const ReferenceOracle>(ref_ctx, view.edges());
  };

  View initial = session.view();
  capture_ref(initial);
  DispatcherOptions options;
  options.workers = 2;
  options.queue_bound = 64;
  options.admission = Admission::kShedOldest;
  options.publish_attempts = 2;
  options.publish_backoff = std::chrono::microseconds(20);
  Dispatcher dispatcher(std::move(initial), options);

  struct PendingSame {
    engine::Same2Ecc request;
    std::future<Reply<std::vector<std::uint8_t>>> future;
  };
  std::vector<PendingSame> pending;
  util::Rng rng(fuzz.seed * 31 + 7);
  for (int round = 0; round < fuzz.rounds; ++round) {
    if (!env_armed) {
      failpoint::disable_all();
      ASSERT_TRUE(
          failpoint::configure(kCatalog[round % kCatalog.size()], "0.3"));
    }
    for (int burst = 0; burst < 16; ++burst) {
      engine::Same2Ecc same;
      for (int q = 0; q < 3; ++q) {
        same.pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                              static_cast<NodeId>(rng.below(kNodes))});
      }
      auto future = dispatcher.submit(engine::Same2Ecc{same});
      pending.push_back({std::move(same), std::move(future)});
    }
    {
      // The writer's own graph mutation must stay fault-free (a failed
      // insert would corrupt the ground truth, not exercise the server).
      failpoint::ScopedSuspend suspend;
      dg.insert_edges(engine.device(), random_batch(rng, kNodes, 3));
    }
    dispatcher.publish(session);  // faults live: may retry or degrade
    capture_ref(dispatcher.current_view());
  }
  failpoint::disable_all();
  dispatcher.stop();

  std::size_t ok = 0, not_ok = 0;
  for (PendingSame& item : pending) {
    ASSERT_EQ(item.future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "a future was abandoned";
    const auto reply = item.future.get();
    if (reply.status == Status::kOk) {
      ++ok;
      ASSERT_TRUE(refs.count(reply.epoch)) << "unknown serving epoch";
      const ReferenceOracle& ref = *refs[reply.epoch];
      for (std::size_t q = 0; q < item.request.pairs.size(); ++q) {
        const auto [u, v] = item.request.pairs[q];
        ASSERT_EQ(reply.value[q] != 0, ref.comp[u] == ref.comp[v])
            << "epoch " << reply.epoch << " " << u << "," << v;
      }
    } else {
      ++not_ok;
      EXPECT_TRUE(reply.value.empty());
    }
  }
  EXPECT_EQ(ok + not_ok, pending.size());
  EXPECT_GT(ok, 0u) << "the server should still answer between faults";

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.submitted, outcomes(stats));
  if (!env_armed) {
    // Rotating every catalog site at p=0.3 over the whole run must have
    // actually fired — otherwise this fuzz tested nothing.
    EXPECT_GT(stats.faults_injected, 0u);
  }
}

}  // namespace
}  // namespace emc::serve
