// The serving layer: epoch-pinned Views must give snapshot isolation under
// a concurrent writer, and the Dispatcher must coalesce small request
// batches into single bulk answers.
//
// Four pillars:
//   snapshot isolation — a View acquired at epoch E keeps answering E's
//     truth (differentially checked against the shared reference) while
//     the DynamicGraph advances arbitrarily far past E;
//   concurrency — N reader threads answer on Views (host and device
//     routes) while one writer applies insert/erase batches and publishes
//     fresh Views; every answer must match the reference of the answering
//     View's OWN epoch. This is the suite the TSan CI job leans on;
//   coalescing pins — K small submitted batches drain as ONE answer round
//     costing one bulk kernel launch (and exactly K launches with
//     coalescing disabled — the per-request baseline);
//   lifecycle — drains on stop, shutdown races, copy-on-write of the
//     2-ecc index preserving the incremental-replay stats.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "serve/serve.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/rng.hpp"

namespace emc::serve {
namespace {

using engine::Backend;
using engine::Engine;
using engine::Policy;
using engine::Session;
using engine::View;
using graph::Edge;
using graph::EdgeList;
using test_support::ReferenceOracle;

std::vector<Edge> random_batch(util::Rng& rng, NodeId n, std::size_t count) {
  std::vector<Edge> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back({static_cast<NodeId>(rng.below(n)),
                     static_cast<NodeId>(rng.below(n))});
  }
  return batch;
}

/// Checks one view's answers for `pairs` against the reference of the
/// view's own epoch. `tag` carries the replay seed into cross-thread
/// failure messages (SCOPED_TRACE is thread-local).
void expect_view_matches(const View& view, const ReferenceOracle& ref,
                         const std::vector<std::pair<NodeId, NodeId>>& pairs,
                         const std::string& tag) {
  const auto same = view.run(engine::Same2Ecc{pairs});
  const auto paths = view.run(engine::BridgesOnPath{pairs});
  const auto lcas = view.run(engine::LcaBatch{pairs});
  engine::ComponentSize sizes;
  for (const auto& [u, v] : pairs) sizes.nodes.push_back(u);
  const auto size_got = view.run(sizes);
  for (std::size_t q = 0; q < pairs.size(); ++q) {
    const auto [u, v] = pairs[q];
    EXPECT_EQ(same[q] != 0, ref.comp[u] == ref.comp[v])
        << tag << " epoch " << view.epoch() << " same2ecc " << u << "," << v;
    EXPECT_EQ(paths[q], ref.bridges_on_path(u, v))
        << tag << " epoch " << view.epoch() << " paths " << u << "," << v;
    // The forest LCA itself is rooting-specific; the component split is
    // not: pairs meet a real ancestor iff they share a component.
    EXPECT_EQ(lcas[q] == kNoNode, ref.cc[u] != ref.cc[v])
        << tag << " epoch " << view.epoch() << " lca " << u << "," << v;
    EXPECT_EQ(size_got[q], ref.comp_size[u])
        << tag << " epoch " << view.epoch() << " size " << u;
  }
}

TEST(ServeView, EpochPinnedSnapshotIsolation) {
  Engine engine({.device_workers = 2});
  // Sequential context for references: keeps the ground truth off the
  // engine's (locked) contexts entirely.
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(engine.device(),
                           gen::road_graph(24, 24, 0.7, 0.05, 31));
  Session session = engine.session(dg);

  Policy device_route;
  device_route.min_device_batch = 1;
  View v0 = session.view();
  View v0_dev = session.view(device_route);
  const std::size_t m0 = dg.num_edges();
  const auto ref0 =
      std::make_shared<ReferenceOracle>(ref_ctx, dg.snapshot(engine.device()));
  EXPECT_EQ(session.pinned_epochs(), 1u);  // both views pin the same epoch

  // Advance the graph two effective epochs past the views.
  util::Rng rng(91);
  const EdgeList& snap = dg.snapshot(engine.device());
  std::vector<Edge> erase(snap.edges.begin(), snap.edges.begin() + 40);
  ASSERT_GT(dg.erase_edges(engine.device(), erase), 0u);
  ASSERT_GT(dg.insert_edges(engine.device(), random_batch(rng, 576, 30)), 0u);
  session.refresh();
  View v1 = session.view();
  const ReferenceOracle ref1(ref_ctx, dg.snapshot(engine.device()));
  EXPECT_LT(v0.epoch(), v1.epoch());
  EXPECT_EQ(session.pinned_epochs(), 2u);

  // The old views answer at THEIR epoch — host route and device route.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int q = 0; q < 200; ++q) {
    pairs.push_back({static_cast<NodeId>(rng.below(576)),
                     static_cast<NodeId>(rng.below(576))});
  }
  expect_view_matches(v0, *ref0, pairs, "v0");
  expect_view_matches(v0_dev, *ref0, pairs, "v0-dev");
  expect_view_matches(v1, ref1, pairs, "v1");
  EXPECT_EQ(v0.run(engine::Same2Ecc{pairs}), v0_dev.run(engine::Same2Ecc{pairs}));

  // The frozen mask still indexes the OLD snapshot (which the view pins).
  EXPECT_EQ(v0.run(engine::Bridges{}).size(), m0);
  EXPECT_EQ(v0.num_edges(), m0);
  EXPECT_EQ(v0.edges().edges.size(), m0);
  EXPECT_NE(m0, dg.num_edges());

  // Session-side drops do not disturb live views; dropping the last view
  // of an epoch retires it.
  session.drop_artifacts();
  expect_view_matches(v0, *ref0, pairs, "v0-after-drop");
  v0 = View{};
  v0_dev = View{};
  EXPECT_EQ(session.pinned_epochs(), 1u);
  expect_view_matches(v1, ref1, pairs, "v1-after-retire");
}

TEST(ServeView, CopyOnWriteKeepsIncrementalReplayAndStats) {
  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);

  session.run(engine::TwoEcc{});  // build the index (rebuild #1)
  View ring = session.view();
  EXPECT_EQ(session.two_ecc_index().rebuilds(), 1u);

  // An erase splits the cycle into a path of bridges. The session's index
  // must advance (full rebuild on deletion) on a CLONE, the view's frozen
  // copy must keep answering the ring.
  ASSERT_EQ(dg.erase_edges(engine.device(), {{10, 11}}), 1u);
  const auto after = session.run(engine::Same2Ecc{{{0, 32}}});
  EXPECT_EQ(after[0], 0);  // path: no two edge-disjoint routes remain
  const auto ring_answer = ring.run(engine::Same2Ecc{{{0, 32}}});
  EXPECT_EQ(ring_answer[0], 1);  // the pinned epoch still sees the cycle
  // The clone carried the cumulative stats (1 initial + 1 post-erase).
  EXPECT_EQ(session.two_ecc_index().rebuilds(), 2u);

  // Insert-only deltas still take the incremental path on the clone.
  ASSERT_EQ(dg.insert_edges(engine.device(), {{10, 11}}), 1u);
  session.refresh();
  EXPECT_EQ(session.two_ecc_index().incremental_refreshes(), 1u);
  const ReferenceOracle ref(ref_ctx, dg.snapshot(engine.device()));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  util::Rng rng(7);
  for (int q = 0; q < 100; ++q) {
    pairs.push_back({static_cast<NodeId>(rng.below(64)),
                     static_cast<NodeId>(rng.below(64))});
  }
  expect_view_matches(session.view(), ref, pairs, "post-incremental");
}

// The marquee concurrency fuzz: N readers on published Views, one writer
// advancing the graph. Every answer is checked against the reference of
// the answering view's OWN epoch — stale reads are correct reads here;
// wrong ones mean the snapshot leaked. Run under TSan in CI.
TEST(ServeConcurrent, ReadersHoldSnapshotsWhileWriterAdvances) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/2026, /*rounds=*/30);
  SCOPED_TRACE(fuzz.trace);
  const std::string tag = "[" + fuzz.trace + "]";
  constexpr NodeId kSide = 18;
  constexpr NodeId kNodes = kSide * kSide;

  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(
      engine.device(), gen::road_graph(kSide, kSide, 0.65, 0.05, fuzz.seed));
  Session session = engine.session(dg);

  struct Entry {
    View view;
    std::shared_ptr<const ReferenceOracle> ref;
  };
  std::mutex board_mutex;
  Entry board;
  const auto publish = [&](const Policy& policy) {
    Entry entry;
    entry.view = session.view(policy);
    entry.ref = std::make_shared<const ReferenceOracle>(
        ref_ctx, dg.snapshot(engine.device()));
    const std::lock_guard<std::mutex> lock(board_mutex);
    board = std::move(entry);
  };
  publish(Policy{});

  std::atomic<bool> done{false};
  const auto reader = [&](unsigned tid) {
    util::Rng rng(fuzz.seed * 1000003 + tid);
    while (!done.load(std::memory_order_acquire)) {
      Entry entry;
      {
        const std::lock_guard<std::mutex> lock(board_mutex);
        entry = board;
      }
      std::vector<std::pair<NodeId, NodeId>> pairs;
      for (int q = 0; q < 24; ++q) {
        pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                         static_cast<NodeId>(rng.below(kNodes))});
      }
      expect_view_matches(entry.view, *entry.ref, pairs, tag);
    }
  };
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 3; ++t) readers.emplace_back(reader, t);

  // Writer: alternating insert/erase batches; every effective batch is
  // refreshed and published, odd epochs with the forced-device query route
  // so readers exercise the bulk kernels concurrently too.
  util::Rng rng(fuzz.seed ^ 0x9e3779b9);
  test_support::BatchScript script;
  for (int round = 0; round < fuzz.rounds; ++round) {
    const bool do_erase = round % 3 == 2;
    std::vector<Edge> batch;
    if (do_erase) {
      const EdgeList& snap = dg.snapshot(engine.device());
      const std::size_t count = 1 + rng.below(6);
      for (std::size_t i = 0; i < count && !snap.edges.empty(); ++i) {
        batch.push_back(snap.edges[rng.below(snap.edges.size())]);
      }
      script.add(round, "erase", batch);
      dg.erase_edges(engine.device(), batch);
    } else {
      batch = random_batch(rng, kNodes, 1 + rng.below(8));
      script.add(round, "insert", batch);
      dg.insert_edges(engine.device(), batch);
    }
    Policy policy;
    if (round % 2 == 1) policy.min_device_batch = 1;
    publish(policy);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thread : readers) thread.join();
  if (::testing::Test::HasFailure()) {
    ADD_FAILURE() << script.replay(fuzz.seed, fuzz.rounds);
  }
}

TEST(ServeDispatcher, AnswersCarryTheServingEpochAcrossPublishes) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/414, /*rounds=*/12);
  SCOPED_TRACE(fuzz.trace);
  constexpr NodeId kNodes = 400;

  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  dynamic::DynamicGraph dg(engine.device(),
                           gen::er_graph(kNodes, 520, fuzz.seed));
  Session session = engine.session(dg);

  std::map<std::uint64_t, std::shared_ptr<const ReferenceOracle>> refs;
  View first = session.view();
  refs[first.epoch()] = std::make_shared<const ReferenceOracle>(
      ref_ctx, dg.snapshot(engine.device()));
  Dispatcher dispatcher(std::move(first), {.workers = 2});

  util::Rng rng(fuzz.seed + 5);
  struct PendingSame {
    engine::Same2Ecc request;
    std::future<Reply<std::vector<std::uint8_t>>> future;
  };
  struct PendingPath {
    engine::BridgesOnPath request;
    std::future<Reply<std::vector<NodeId>>> future;
  };
  std::vector<PendingSame> sames;
  std::vector<PendingPath> paths;
  for (int round = 0; round < fuzz.rounds; ++round) {
    for (int burst = 0; burst < 20; ++burst) {
      engine::Same2Ecc same;
      engine::BridgesOnPath path;
      for (int q = 0; q < 4; ++q) {
        same.pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                              static_cast<NodeId>(rng.below(kNodes))});
        path.pairs.push_back({static_cast<NodeId>(rng.below(kNodes)),
                              static_cast<NodeId>(rng.below(kNodes))});
      }
      auto same_future = dispatcher.submit(engine::Same2Ecc{same});
      auto path_future = dispatcher.submit(engine::BridgesOnPath{path});
      sames.push_back({std::move(same), std::move(same_future)});
      paths.push_back({std::move(path), std::move(path_future)});
    }
    // Advance and publish mid-traffic.
    dg.insert_edges(engine.device(), random_batch(rng, kNodes, 4));
    session.refresh();
    View view = session.view();
    if (refs.find(view.epoch()) == refs.end()) {
      refs[view.epoch()] = std::make_shared<const ReferenceOracle>(
          ref_ctx, dg.snapshot(engine.device()));
    }
    dispatcher.publish(std::move(view));
  }
  dispatcher.stop();

  for (PendingSame& pending : sames) {
    const auto reply = pending.future.get();
    ASSERT_TRUE(refs.count(reply.epoch)) << "unknown serving epoch";
    const ReferenceOracle& ref = *refs[reply.epoch];
    for (std::size_t q = 0; q < pending.request.pairs.size(); ++q) {
      const auto [u, v] = pending.request.pairs[q];
      ASSERT_EQ(reply.value[q] != 0, ref.comp[u] == ref.comp[v])
          << "epoch " << reply.epoch << " " << u << "," << v;
    }
  }
  for (PendingPath& pending : paths) {
    const auto reply = pending.future.get();
    ASSERT_TRUE(refs.count(reply.epoch)) << "unknown serving epoch";
    const ReferenceOracle& ref = *refs[reply.epoch];
    for (std::size_t q = 0; q < pending.request.pairs.size(); ++q) {
      const auto [u, v] = pending.request.pairs[q];
      ASSERT_EQ(reply.value[q], ref.bridges_on_path(u, v))
          << "epoch " << reply.epoch << " " << u << "," << v;
    }
  }
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.submitted, stats.answered);
  EXPECT_GT(stats.views_published, 0u);
}

TEST(ServeDispatcher, CoalescesKSmallBatchesIntoOneBulkLaunch) {
  constexpr std::size_t kRequests = 48;
  Engine engine({.device_workers = 2});
  const device::Context ref_ctx = device::Context::sequential();
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::road_graph(30, 30, 0.72, 0.04, 3)));
  Session session = engine.session(g);
  const ReferenceOracle ref(ref_ctx, g);

  Policy device_route;
  device_route.min_device_batch = 1;  // every round is a bulk kernel
  DispatcherOptions options;
  options.workers = 1;  // deterministic: one drainer, one round
  options.start_paused = true;
  Dispatcher dispatcher(session.view(device_route), options);

  util::Rng rng(17);
  std::vector<std::pair<NodeId, NodeId>> queries;
  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto u = static_cast<NodeId>(rng.below(g.num_nodes));
    const auto v = static_cast<NodeId>(rng.below(g.num_nodes));
    queries.push_back({u, v});
    futures.push_back(dispatcher.submit(engine::Same2Ecc{{{u, v}}}));
  }

  const std::uint64_t before = engine.device_launches();
  dispatcher.resume();
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto reply = futures[i].get();
    ASSERT_EQ(reply.value.size(), 1u);
    const auto [u, v] = queries[i];
    EXPECT_EQ(reply.value[0] != 0, ref.comp[u] == ref.comp[v]) << u << "," << v;
  }
  // The pin: K single-pair requests, ONE bulk answer kernel.
  EXPECT_EQ(engine.device_launches(), before + 1);
  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.coalesced_requests, kRequests);
  EXPECT_EQ(stats.max_round, kRequests);
  EXPECT_EQ(stats.answered, kRequests);
}

TEST(ServeDispatcher, DisablingCoalescingPaysALaunchPerRequest) {
  constexpr std::size_t kRequests = 16;
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(128);
  Session session = engine.session(g);

  Policy device_route;
  device_route.min_device_batch = 1;
  DispatcherOptions options;
  options.workers = 1;
  options.start_paused = true;
  options.max_coalesce = 1;  // the per-request baseline
  Dispatcher dispatcher(session.view(device_route), options);

  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(dispatcher.submit(
        engine::Same2Ecc{{{static_cast<NodeId>(i), static_cast<NodeId>(i + 1)}}}));
  }
  const std::uint64_t before = engine.device_launches();
  dispatcher.resume();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().value[0], 1);  // a cycle is one 2ecc block
  }
  EXPECT_EQ(engine.device_launches(), before + kRequests);
  EXPECT_EQ(dispatcher.stats().rounds, kRequests);
  EXPECT_EQ(dispatcher.stats().coalesced_requests, 0u);
}

TEST(ServeDispatcher, BroadcastLanesAnswerOncePerRound) {
  Engine engine({.device_workers = 2});
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::er_graph(300, 500, 23)));
  Session session = engine.session(g);
  const bridges::BridgeMask expected = session.run(engine::Bridges{});
  const engine::TwoEccView expected_blocks = session.run(engine::TwoEcc{});

  DispatcherOptions options;
  options.workers = 1;
  options.start_paused = true;
  Dispatcher dispatcher(session.view(), options);
  std::vector<std::future<Reply<bridges::BridgeMask>>> masks;
  std::vector<std::future<Reply<TwoEccSummary>>> blocks;
  for (int i = 0; i < 5; ++i) {
    masks.push_back(dispatcher.submit(engine::Bridges{}));
    blocks.push_back(dispatcher.submit(engine::TwoEcc{}));
  }
  const std::uint64_t before = engine.device_launches();
  dispatcher.resume();
  for (auto& future : masks) EXPECT_EQ(future.get().value, expected);
  for (auto& future : blocks) {
    const auto reply = future.get();
    EXPECT_EQ(reply.value.num_blocks, expected_blocks.num_blocks);
    EXPECT_EQ(reply.value.num_bridges, expected_blocks.num_bridges);
  }
  // Everything was prebuilt into the view: broadcasting launches nothing.
  EXPECT_EQ(engine.device_launches(), before);
  EXPECT_EQ(dispatcher.stats().rounds, 2u);  // one per lane
}

TEST(ServeDispatcher, StopDrainsEverythingAndLateSubmitsStillAnswer) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(64);
  Session session = engine.session(g);
  DispatcherOptions options;
  options.workers = 2;
  options.start_paused = true;  // nothing drains until stop()
  Dispatcher dispatcher(session.view(), options);

  std::vector<std::future<Reply<std::vector<std::uint8_t>>>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(dispatcher.submit(engine::Same2Ecc{{{0, 32}}}));
  }
  dispatcher.stop();  // must answer the paused backlog, not abandon it
  for (auto& future : futures) EXPECT_EQ(future.get().value[0], 1);

  auto late = dispatcher.submit(engine::Same2Ecc{{{1, 2}}});
  EXPECT_EQ(late.get().value[0], 1);  // synchronous shutdown-race path
  EXPECT_EQ(dispatcher.stats().submitted, dispatcher.stats().answered);
}

}  // namespace
}  // namespace emc::serve
