#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"
#include "device/segreduce.hpp"
#include "device/union_find.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace emc::device {
namespace {

// Most primitive tests run under several worker counts: even on a 1-core
// machine the multi-worker pool exercises the chunking/barrier logic.
class DeviceParam
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
 protected:
  Context ctx_{std::get<0>(GetParam())};
  std::size_t n_ = std::get<1>(GetParam());
};

INSTANTIATE_TEST_SUITE_P(
    WorkersAndSizes, DeviceParam,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{17},
                                         std::size_t{1000},
                                         std::size_t{100'000})));

TEST_P(DeviceParam, LaunchCoversEveryIndexOnce) {
  std::vector<int> hits(n_, 0);
  launch(ctx_, n_, [&](std::size_t i) {
    std::atomic_ref<int>(hits[i]).fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n_; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST_P(DeviceParam, TransformMapsIndices) {
  std::vector<std::int64_t> out(n_);
  transform(ctx_, n_, out.data(),
            [](std::size_t i) { return static_cast<std::int64_t>(i * i); });
  for (std::size_t i = 0; i < n_; ++i) {
    ASSERT_EQ(out[i], static_cast<std::int64_t>(i * i));
  }
}

TEST_P(DeviceParam, FillAndIota) {
  std::vector<int> a(n_, -1), b(n_, -1);
  fill(ctx_, n_, a.data(), 7);
  iota(ctx_, n_, b.data());
  for (std::size_t i = 0; i < n_; ++i) {
    ASSERT_EQ(a[i], 7);
    ASSERT_EQ(b[i], static_cast<int>(i));
  }
}

TEST_P(DeviceParam, ReduceMatchesAccumulate) {
  util::Rng rng(n_ + 1);
  std::vector<std::int64_t> values(n_);
  for (auto& v : values) v = static_cast<std::int64_t>(rng.below(1000)) - 500;
  const auto expected =
      std::accumulate(values.begin(), values.end(), std::int64_t{0});
  EXPECT_EQ(reduce_sum(ctx_, values.data(), n_), expected);
}

TEST_P(DeviceParam, ReduceMax) {
  util::Rng rng(n_ + 2);
  std::vector<std::int64_t> values(n_);
  for (auto& v : values) v = static_cast<std::int64_t>(rng.below(1 << 20));
  const auto expected =
      n_ == 0 ? std::int64_t{-1}
              : *std::max_element(values.begin(), values.end());
  const auto got = reduce(
      ctx_, n_, std::int64_t{-1}, [&](std::size_t i) { return values[i]; },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  EXPECT_EQ(got, expected);
}

TEST_P(DeviceParam, ExclusiveScanMatchesReference) {
  util::Rng rng(n_ + 3);
  std::vector<std::int64_t> in(n_), out(n_), expected(n_);
  for (auto& v : in) v = static_cast<std::int64_t>(rng.below(100));
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    expected[i] = acc;
    acc += in[i];
  }
  const auto total = exclusive_scan(ctx_, in.data(), n_, out.data());
  EXPECT_EQ(total, acc);
  EXPECT_EQ(out, expected);
}

TEST_P(DeviceParam, InclusiveScanMatchesReference) {
  util::Rng rng(n_ + 4);
  std::vector<std::int64_t> in(n_), out(n_), expected(n_);
  for (auto& v : in) v = static_cast<std::int64_t>(rng.below(100)) - 50;
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    acc += in[i];
    expected[i] = acc;
  }
  const auto total = inclusive_scan(ctx_, in.data(), n_, out.data());
  EXPECT_EQ(total, acc);
  EXPECT_EQ(out, expected);
}

TEST_P(DeviceParam, ExclusiveScanInPlace) {
  util::Rng rng(n_ + 5);
  std::vector<std::int64_t> data(n_), expected(n_);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.below(10));
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    expected[i] = acc;
    acc += data[i];
  }
  exclusive_scan(ctx_, data.data(), n_, data.data());
  EXPECT_EQ(data, expected);
}

TEST_P(DeviceParam, GatherScatterRoundTrip) {
  if (n_ == 0) return;
  util::Rng rng(n_ + 6);
  std::vector<std::int64_t> values(n_);
  for (std::size_t i = 0; i < n_; ++i) values[i] = static_cast<std::int64_t>(i);
  // Random permutation.
  std::vector<std::uint32_t> perm(n_);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = n_; i > 1; --i) std::swap(perm[i - 1], perm[rng.below(i)]);

  std::vector<std::int64_t> scattered(n_), gathered(n_);
  scatter(ctx_, values.data(), perm.data(), n_, scattered.data());
  gather(ctx_, scattered.data(), perm.data(), n_, gathered.data());
  EXPECT_EQ(gathered, values);
}

TEST_P(DeviceParam, CopyIfIndexSelectsInOrder) {
  std::vector<std::uint32_t> out(n_);
  const std::size_t k = copy_if_index(
      ctx_, n_, [](std::size_t i) { return i % 3 == 0; }, out.data());
  std::size_t expected_count = (n_ + 2) / 3;
  EXPECT_EQ(k, expected_count);
  for (std::size_t j = 0; j < k; ++j) ASSERT_EQ(out[j], 3 * j);
}

TEST_P(DeviceParam, UnionFindMatchesSequentialReference) {
  if (n_ == 0) return;
  // Random unions applied concurrently (one bulk kernel, all workers
  // hooking at once) must produce the same partition as a sequential
  // union-find over the same pairs — the min-id root rule makes the result
  // schedule-independent.
  util::Rng rng(n_ ^ 0x5eed);
  const std::size_t num_pairs = n_ / 2 + 3;
  std::vector<std::pair<NodeId, NodeId>> pairs(num_pairs);
  for (auto& [a, b] : pairs) {
    a = static_cast<NodeId>(rng.below(n_));
    b = static_cast<NodeId>(rng.below(n_));
  }
  std::vector<NodeId> uf(n_);
  uf_init(ctx_, uf.data(), n_);
  launch(ctx_, num_pairs, [&](std::size_t i) {
    uf_unite(uf.data(), pairs[i].first, pairs[i].second);
  });
  uf_flatten(ctx_, uf.data(), n_);

  std::vector<NodeId> ref(n_);
  std::iota(ref.begin(), ref.end(), 0);
  auto find = [&](NodeId x) {
    while (ref[x] != x) x = ref[x] = ref[ref[x]];
    return x;
  };
  for (const auto& [a, b] : pairs) {
    const NodeId ra = find(a), rb = find(b);
    // Hook larger onto smaller, mirroring the primitive's determinism rule.
    if (ra != rb) ref[std::max(ra, rb)] = std::min(ra, rb);
  }
  for (std::size_t v = 0; v < n_; ++v) {
    ASSERT_EQ(uf[v], find(static_cast<NodeId>(v))) << "node " << v;
  }
}

TEST(DevicePrimitives, UnionFindRootIsMinimumOfSet) {
  const Context ctx(4);
  constexpr std::size_t kN = 1000;
  std::vector<NodeId> uf(kN);
  uf_init(ctx, uf.data(), kN);
  // Chain unions submitted in adversarial (reverse) order still leave the
  // minimum as the root of the single merged set.
  launch(ctx, kN - 1, [&](std::size_t i) {
    const auto v = static_cast<NodeId>(kN - 1 - i);
    uf_unite(uf.data(), v, v - 1);
  });
  uf_flatten(ctx, uf.data(), kN);
  for (std::size_t v = 0; v < kN; ++v) ASSERT_EQ(uf[v], 0);
}

TEST(DevicePrimitives, AtomicMinMax) {
  Context ctx(4);
  NodeId lo = kNodeInf;
  NodeId hi = -1;
  launch(ctx, 100'000, [&](std::size_t i) {
    atomic_min(&lo, static_cast<NodeId>(i ^ 0x5a5a));
    atomic_max(&hi, static_cast<NodeId>(i ^ 0x5a5a));
  });
  NodeId expected_lo = kNodeInf, expected_hi = -1;
  for (std::size_t i = 0; i < 100'000; ++i) {
    expected_lo = std::min(expected_lo, static_cast<NodeId>(i ^ 0x5a5a));
    expected_hi = std::max(expected_hi, static_cast<NodeId>(i ^ 0x5a5a));
  }
  EXPECT_EQ(lo, expected_lo);
  EXPECT_EQ(hi, expected_hi);
}

TEST(DevicePrimitives, AtomicCasClaimsOnce) {
  Context ctx(4);
  NodeId slot = kNoNode;
  std::atomic<int> winners{0};
  launch(ctx, 10'000, [&](std::size_t i) {
    if (atomic_cas(&slot, kNoNode, static_cast<NodeId>(i)) == kNoNode) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_NE(slot, kNoNode);
}

TEST(Context, SequentialHasOneWorker) {
  EXPECT_EQ(Context::sequential().workers(), 1u);
}

TEST(Context, ExplicitWorkerCount) {
  EXPECT_EQ(Context(3).workers(), 3u);
}

TEST(Context, CopyShares) {
  Context a(2);
  Context b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(&a.pool(), &b.pool());
}

TEST(ThreadPool, NestedSequentialLaunchInsideParallel) {
  // Per-segment work inside a kernel must not deadlock the pool.
  Context ctx(2);
  std::vector<int> out(100, 0);
  launch(ctx, 100, [&](std::size_t i) {
    int acc = 0;
    for (int k = 0; k <= static_cast<int>(i); ++k) acc += k;
    out[i] = acc;
  });
  EXPECT_EQ(out[9], 45);
}

TEST(ThreadPool, ManySmallLaunches) {
  Context ctx(4);
  std::int64_t total = 0;
  for (int round = 0; round < 1000; ++round) {
    total += reduce(
        ctx, 10, std::int64_t{0},
        [](std::size_t i) { return static_cast<std::int64_t>(i); },
        [](std::int64_t a, std::int64_t b) { return a + b; });
  }
  EXPECT_EQ(total, 45'000);
}

// ------------------------------------------------- edge sizes & arena reuse

// Chunking boundaries the arena/chained-scan rework could regress: below
// one grain, exactly at grain multiples, and one element either side.
TEST(DevicePrimitives, ScanAndReduceAtGrainBoundaries) {
  for (const unsigned workers : {1u, 2u, 4u}) {
    Context ctx(workers);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{1023}, std::size_t{1024},
          std::size_t{1025}, std::size_t{2048}, std::size_t{4096},
          std::size_t{4 * 1024 * workers}, std::size_t{4 * 1024 * workers + 1},
          std::size_t{200'000}}) {
      util::Rng rng(n + workers);
      std::vector<std::int64_t> in64(n);
      std::vector<NodeId> in32(n);
      for (std::size_t i = 0; i < n; ++i) {
        in64[i] = static_cast<std::int64_t>(rng.below(1000)) - 500;
        in32[i] = static_cast<NodeId>(rng.below(1000)) - 500;
      }
      // int64 exclusive + int32 inclusive: covers both SIMD lane widths.
      std::vector<std::int64_t> out64(n), ref64(n);
      std::vector<NodeId> out32(n), ref32(n);
      std::int64_t acc64 = 0;
      NodeId acc32 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        ref64[i] = acc64;
        acc64 += in64[i];
        acc32 += in32[i];
        ref32[i] = acc32;
      }
      ASSERT_EQ(exclusive_scan(ctx, in64.data(), n, out64.data()), acc64)
          << "workers=" << workers << " n=" << n;
      ASSERT_EQ(out64, ref64) << "workers=" << workers << " n=" << n;
      ASSERT_EQ(inclusive_scan(ctx, in32.data(), n, out32.data()), acc32)
          << "workers=" << workers << " n=" << n;
      ASSERT_EQ(out32, ref32) << "workers=" << workers << " n=" << n;
      ASSERT_EQ(reduce_sum(ctx, in64.data(), n), acc64);
      // In-place exclusive over the int32 input as well.
      std::vector<NodeId> ref32ex(n);
      NodeId acc32ex = 0;
      for (std::size_t i = 0; i < n; ++i) {
        ref32ex[i] = acc32ex;
        acc32ex += in32[i];
      }
      exclusive_scan(ctx, in32.data(), n, in32.data());
      ASSERT_EQ(in32, ref32ex) << "workers=" << workers << " n=" << n;
    }
  }
}

// Back-to-back primitive calls with different scratch types and sizes must
// reuse the arena: after a warm-up cycle, the block count stops growing —
// steady state performs zero allocations.
TEST(Arena, SteadyStateReusesBlocksAcrossMixedCalls) {
  Context ctx(2);
  util::Rng rng(42);
  std::vector<std::int64_t> big(150'000);
  std::vector<NodeId> small(10'000);
  std::vector<std::int64_t> out64(big.size());
  std::vector<NodeId> out32(small.size());
  std::vector<std::uint32_t> picked(big.size());
  const auto cycle = [&] {
    inclusive_scan(ctx, big.data(), big.size(), out64.data());
    exclusive_scan(ctx, small.data(), small.size(), out32.data());
    reduce_sum(ctx, big.data(), big.size());
    copy_if_index(
        ctx, big.size(), [](std::size_t i) { return i % 7 == 0; },
        picked.data());
  };
  for (auto& v : big) v = static_cast<std::int64_t>(rng.below(100));
  for (auto& v : small) v = static_cast<NodeId>(rng.below(100));
  cycle();
  cycle();  // warm-up: high-water mark found, blocks consolidated
  const std::size_t warmed = ctx.arena().block_allocations();
  for (int round = 0; round < 5; ++round) cycle();
  EXPECT_EQ(ctx.arena().block_allocations(), warmed);
  EXPECT_GT(ctx.arena().capacity(), 0u);
}

TEST(Arena, ScopedSlotsAreDistinctAndNestable) {
  Arena arena;
  Arena::Scope outer(arena);
  std::int64_t* a = outer.get<std::int64_t>(100);
  std::uint8_t* b = outer.get<std::uint8_t>(33);
  std::fill(a, a + 100, 7);
  std::fill(b, b + 33, std::uint8_t{9});
  {
    Arena::Scope inner(arena);
    NodeId* c = inner.get<NodeId>(1000);
    std::fill(c, c + 1000, 3);
  }
  // Slots handed out before the nested scope survive it untouched.
  std::int64_t* d = outer.get<std::int64_t>(50);
  std::fill(d, d + 50, 8);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a[i], 7);
  for (int i = 0; i < 33; ++i) ASSERT_EQ(b[i], 9);
}

TEST(ThreadPool, LaunchCounterCountsEveryKernel) {
  Context ctx(2);
  const std::uint64_t before = ctx.launch_count();
  launch(ctx, 10'000, [](std::size_t) {});
  std::vector<int> buf(10'000);
  fill(ctx, buf.size(), buf.data(), 1);
  EXPECT_EQ(ctx.launch_count() - before, 2u);
  // Chained scans and compaction are single launches; the old
  // two-kernel/four-kernel shapes would fail these.
  std::vector<std::int64_t> in(50'000, 1), out(in.size());
  const std::uint64_t scans = ctx.launch_count();
  inclusive_scan(ctx, in.data(), in.size(), out.data());
  EXPECT_EQ(ctx.launch_count() - scans, 1u);
  std::vector<std::uint32_t> idx(in.size());
  const std::uint64_t compact = ctx.launch_count();
  copy_if_index(
      ctx, in.size(), [](std::size_t i) { return i % 2 == 0; }, idx.data());
  EXPECT_EQ(ctx.launch_count() - compact, 1u);
}

// ---------------------------------------------------------------- segreduce

TEST(Segreduce, MatchesReferenceOnRandomSegments) {
  Context ctx(3);
  util::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const std::size_t segments = 1 + rng.below(50);
    std::vector<EdgeId> offsets(segments + 1, 0);
    for (std::size_t s = 1; s <= segments; ++s) {
      offsets[s] = offsets[s - 1] + static_cast<EdgeId>(rng.below(10));
    }
    const std::size_t n = offsets[segments];
    std::vector<NodeId> values(n);
    for (auto& v : values) v = static_cast<NodeId>(rng.below(1000));

    std::vector<NodeId> got(segments);
    segreduce(ctx, values.data(), offsets.data(), segments, kNodeInf,
              [](NodeId a, NodeId b) { return std::min(a, b); }, got.data());
    for (std::size_t s = 0; s < segments; ++s) {
      NodeId expected = kNodeInf;
      for (EdgeId i = offsets[s]; i < offsets[s + 1]; ++i) {
        expected = std::min(expected, values[i]);
      }
      ASSERT_EQ(got[s], expected) << "segment " << s;
    }
  }
}

TEST(Segreduce, EmptySegmentsGetIdentity) {
  Context ctx(1);
  std::vector<NodeId> values{5, 3};
  std::vector<EdgeId> offsets{0, 0, 2, 2};  // segments: empty, {5,3}, empty
  std::vector<NodeId> lo(3), hi(3);
  segreduce_min_max(ctx, values.data(), offsets.data(), 3, kNodeInf,
                    NodeId{-1}, lo.data(), hi.data());
  EXPECT_EQ(lo[0], kNodeInf);
  EXPECT_EQ(hi[0], -1);
  EXPECT_EQ(lo[1], 3);
  EXPECT_EQ(hi[1], 5);
  EXPECT_EQ(lo[2], kNodeInf);
  EXPECT_EQ(hi[2], -1);
}

TEST(Segreduce, MinMaxAgreeWithSeparateReductions) {
  Context ctx(2);
  util::Rng rng(7);
  const std::size_t segments = 100;
  std::vector<EdgeId> offsets(segments + 1, 0);
  for (std::size_t s = 1; s <= segments; ++s) {
    offsets[s] = offsets[s - 1] + static_cast<EdgeId>(rng.below(20));
  }
  std::vector<NodeId> values(offsets[segments]);
  for (auto& v : values) v = static_cast<NodeId>(rng.below(10'000));
  std::vector<NodeId> lo(segments), hi(segments), lo2(segments), hi2(segments);
  segreduce_min_max(ctx, values.data(), offsets.data(), segments, kNodeInf,
                    NodeId{-1}, lo.data(), hi.data());
  segreduce(ctx, values.data(), offsets.data(), segments, kNodeInf,
            [](NodeId a, NodeId b) { return std::min(a, b); }, lo2.data());
  segreduce(ctx, values.data(), offsets.data(), segments, NodeId{-1},
            [](NodeId a, NodeId b) { return std::max(a, b); }, hi2.data());
  EXPECT_EQ(lo, lo2);
  EXPECT_EQ(hi, hi2);
}

}  // namespace
}  // namespace emc::device
