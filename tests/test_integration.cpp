// End-to-end pipelines mirroring the paper's experiments at test scale:
// generate → preprocess → answer → cross-check every implementation against
// every other, across worker counts. These are the tests that would catch a
// barrier/ordering bug that unit tests on a single module might miss.
#include <gtest/gtest.h>

#include <vector>

#include "bridges/dfs_bridges.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "core/euler_tour.hpp"
#include "engine/engine.hpp"
#include "core/tree.hpp"
#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/naive.hpp"
#include "lca/rmq_lca.hpp"

namespace emc {
namespace {

TEST(Integration, LcaExperimentPipeline) {
  // The Figure 3 pipeline at test scale: shallow + deep trees, q = n,
  // all four algorithm configurations agreeing query by query.
  const device::Context gpu = device::Context(4);
  const device::Context multicore = device::Context(2);
  for (const NodeId grasp : {gen::kInfiniteGrasp, NodeId{50}}) {
    const NodeId n = 10'000;
    core::ParentTree tree = gen::random_tree(n, grasp, 1);
    gen::scramble_ids(tree, 2);
    const auto queries = gen::random_queries(n, n, 3);

    const auto cpu1 = lca::InlabelLca::build_sequential(tree);
    const auto cpuk = lca::InlabelLca::build_parallel(multicore, tree);
    const auto gpu_inlabel = lca::InlabelLca::build_parallel(gpu, tree);
    const auto gpu_naive = lca::NaiveLca::build(gpu, tree);

    std::vector<NodeId> a1, ak, ag, an;
    cpu1.query_batch(device::Context::sequential(), queries, a1);
    cpuk.query_batch(multicore, queries, ak);
    gpu_inlabel.query_batch(gpu, queries, ag);
    gpu_naive.query_batch(gpu, queries, an);
    ASSERT_EQ(a1, ak);
    ASSERT_EQ(a1, ag);
    ASSERT_EQ(a1, an);
  }
}

TEST(Integration, LcaBatchedOnlinePipeline) {
  // Figure 6 setting: answers must not depend on the batch split.
  const device::Context ctx(3);
  core::ParentTree tree = gen::random_tree(5000, gen::kInfiniteGrasp, 4);
  gen::scramble_ids(tree, 5);
  const auto lca = lca::InlabelLca::build_parallel(ctx, tree);
  const auto queries = gen::random_queries(5000, 4096, 6);

  std::vector<NodeId> whole;
  lca.query_batch(ctx, queries, whole);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{17},
                                  std::size_t{512}}) {
    std::vector<NodeId> pieces;
    for (std::size_t start = 0; start < queries.size(); start += batch) {
      const std::size_t end = std::min(queries.size(), start + batch);
      std::vector<std::pair<NodeId, NodeId>> chunk(queries.begin() + start,
                                                   queries.begin() + end);
      std::vector<NodeId> part;
      lca.query_batch(ctx, chunk, part);
      pieces.insert(pieces.end(), part.begin(), part.end());
    }
    ASSERT_EQ(pieces, whole) << "batch=" << batch;
  }
}

TEST(Integration, BridgesExperimentPipeline) {
  // The Figure 9/10 pipeline at test scale, over all three graph classes,
  // run the way the benches now run it: one engine Session per instance,
  // every backend forced through the same Bridges request.
  engine::Engine eng({.device_workers = 4, .multicore_workers = 2});
  const std::vector<std::pair<const char*, graph::EdgeList>> suite = {
      {"kron", gen::kron_graph(10, 6, 1)},
      {"social", gen::social_graph(10, 4, 2)},
      {"road", gen::road_graph(40, 40, 0.68, 0.04, 3)},
  };
  for (const auto& [name, raw] : suite) {
    const graph::EdgeList g =
        graph::largest_component(graph::simplified(raw));
    ASSERT_GE(g.num_nodes, 100) << name;
    engine::Session session = eng.session(g);
    const auto dfs = bridges::find_bridges_dfs(session.csr());
    for (const engine::Backend backend : engine::kFixedBackends) {
      ASSERT_EQ(session.run(engine::Bridges{}, engine::Policy::fixed(backend)),
                dfs)
          << name << " via " << engine::to_string(backend);
    }
    ASSERT_EQ(session.run(engine::Bridges{}), dfs) << name << " via auto";
  }
}

TEST(Integration, WorkerCountNeverChangesResults) {
  // The same computation across 1..5 workers must be bit-identical — the
  // device simulation is deterministic by construction (atomic-min keyed
  // proposals, double-buffered jumps).
  core::ParentTree tree = gen::random_tree(3000, NodeId{25}, 7);
  gen::scramble_ids(tree, 8);
  const auto queries = gen::random_queries(3000, 2000, 9);
  const graph::EdgeList g = graph::largest_component(
      graph::simplified(gen::er_graph(2000, 3200, 10)));

  std::vector<NodeId> first_lca;
  bridges::BridgeMask first_mask;
  for (unsigned workers = 1; workers <= 5; ++workers) {
    const device::Context ctx(workers);
    const auto lca = lca::InlabelLca::build_parallel(ctx, tree);
    std::vector<NodeId> answers;
    lca.query_batch(ctx, queries, answers);
    const auto mask = bridges::find_bridges_tarjan_vishkin(ctx, g);
    if (workers == 1) {
      first_lca = answers;
      first_mask = mask;
    } else {
      ASSERT_EQ(answers, first_lca) << "workers=" << workers;
      ASSERT_EQ(mask, first_mask) << "workers=" << workers;
    }
  }
}

TEST(Integration, EulerTourFeedsBothApplications) {
  // One tour reused by an LCA structure and a bridge run on the same tree
  // viewed as a graph: the tree's edges must all be bridges, and LCA of any
  // adjacent pair must be the parent.
  const device::Context ctx(2);
  core::ParentTree tree = gen::random_tree(2000, NodeId{15}, 11);
  gen::scramble_ids(tree, 12);
  const graph::EdgeList edges = core::tree_edges(tree);

  const auto lca = lca::InlabelLca::build_parallel(ctx, tree);
  const auto mask = bridges::find_bridges_tarjan_vishkin(ctx, edges);
  EXPECT_EQ(bridges::count_bridges(mask), edges.edges.size());
  for (std::size_t e = 0; e < 200; ++e) {
    const auto [u, v] = edges.edges[e];
    const NodeId expected = tree.parent[u] == v ? v : u;
    ASSERT_EQ(lca.query(u, v), expected);
  }
}

TEST(Integration, ScaleFreePipeline) {
  // Figures 7/8 setting: BA trees through the full LCA pipeline.
  const device::Context ctx(3);
  core::ParentTree tree = gen::barabasi_albert_tree(20'000, 13);
  gen::scramble_ids(tree, 14);
  const auto inlabel = lca::InlabelLca::build_parallel(ctx, tree);
  const auto naive = lca::NaiveLca::build(ctx, tree);
  const auto rmq = lca::RmqLca::build(tree);
  const auto queries = gen::random_queries(20'000, 20'000, 15);
  std::vector<NodeId> a, b, c;
  inlabel.query_batch(ctx, queries, a);
  naive.query_batch(ctx, queries, b);
  rmq.query_batch(ctx, queries, c);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace emc
