#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bcc/bcc.hpp"
#include "device/context.hpp"
#include "device/primitives.hpp"
#include "ingest/ingest.hpp"
#include "serve/serve.hpp"
#include "shard/shard.hpp"
#include "support/fuzz_env.hpp"
#include "util/failpoint.hpp"
#include "util/flags.hpp"

namespace emc::util {
namespace {

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  Flags flags = make_flags({"--nodes=42"});
  EXPECT_EQ(flags.get_int("nodes", 0), 42);
  flags.finish();
}

TEST(Flags, SpaceSyntax) {
  Flags flags = make_flags({"--name", "hello"});
  EXPECT_EQ(flags.get_string("name", ""), "hello");
  flags.finish();
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  Flags flags = make_flags({});
  EXPECT_EQ(flags.get_int("nodes", 7), 7);
  EXPECT_EQ(flags.get_string("algo", "tv"), "tv");
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 1.5), 1.5);
  EXPECT_TRUE(flags.get_bool("verify", true));
  flags.finish();
}

TEST(Flags, BareBooleanIsTrue) {
  Flags flags = make_flags({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  flags.finish();
}

TEST(Flags, BooleanSpellings) {
  Flags on = make_flags({"--a=true", "--b=1", "--c=yes"});
  EXPECT_TRUE(on.get_bool("a", false));
  EXPECT_TRUE(on.get_bool("b", false));
  EXPECT_TRUE(on.get_bool("c", false));
  on.finish();
  Flags off = make_flags({"--a=false", "--b=0", "--c=no"});
  EXPECT_FALSE(off.get_bool("a", true));
  EXPECT_FALSE(off.get_bool("b", true));
  EXPECT_FALSE(off.get_bool("c", true));
  off.finish();
}

TEST(Flags, NegativeAndLargeIntegers) {
  Flags flags = make_flags({"--delta=-3", "--big=8589934592"});
  EXPECT_EQ(flags.get_int("delta", 0), -3);
  EXPECT_EQ(flags.get_int("big", 0), 8'589'934'592LL);
  flags.finish();
}

TEST(Flags, MixedStyles) {
  Flags flags = make_flags({"--a=1", "--b", "2", "--c"});
  EXPECT_EQ(flags.get_int("a", 0), 1);
  EXPECT_EQ(flags.get_int("b", 0), 2);
  EXPECT_TRUE(flags.get_bool("c", false));
  flags.finish();
}

TEST(DeviceWorkers, ValidEmcWorkersIsHonored) {
  ASSERT_EQ(setenv("EMC_WORKERS", "3", 1), 0);
  EXPECT_EQ(device::Context(0).workers(), 3u);
  unsetenv("EMC_WORKERS");
}

TEST(DeviceWorkers, InvalidEmcWorkersFallsBackToHardwareConcurrency) {
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  for (const char* bad :
       {"0", "-3", "abc", "", "2x", "1e3", "999999999999"}) {
    ASSERT_EQ(setenv("EMC_WORKERS", bad, 1), 0);
    EXPECT_EQ(device::Context(0).workers(), hardware)
        << "EMC_WORKERS=\"" << bad << "\"";
  }
  unsetenv("EMC_WORKERS");
  EXPECT_EQ(device::Context(0).workers(), hardware);
}

// EMC_FUZZ_SEED / EMC_FUZZ_ROUNDS use the same strict policy as
// EMC_WORKERS: complete parse within the knob's range, else the default.

TEST(FuzzEnv, ValidOverridesAreHonored) {
  ASSERT_EQ(setenv("EMC_FUZZ_SEED", "12345", 1), 0);
  ASSERT_EQ(setenv("EMC_FUZZ_ROUNDS", "7", 1), 0);
  EXPECT_EQ(test_support::fuzz_seed(42), 12345u);
  EXPECT_EQ(test_support::fuzz_rounds(100), 7);
  ASSERT_EQ(setenv("EMC_FUZZ_SEED", "0", 1), 0);  // 0 is a valid seed
  EXPECT_EQ(test_support::fuzz_seed(42), 0u);
  unsetenv("EMC_FUZZ_SEED");
  unsetenv("EMC_FUZZ_ROUNDS");
}

TEST(FuzzEnv, InvalidOverridesFallBackToDefault) {
  for (const char* bad : {"abc", "", "2x", "1e3", "-1", "99999999999999999"}) {
    ASSERT_EQ(setenv("EMC_FUZZ_ROUNDS", bad, 1), 0);
    EXPECT_EQ(test_support::fuzz_rounds(100), 100)
        << "EMC_FUZZ_ROUNDS=\"" << bad << "\"";
  }
  ASSERT_EQ(setenv("EMC_FUZZ_ROUNDS", "0", 1), 0);  // rounds must be >= 1
  EXPECT_EQ(test_support::fuzz_rounds(100), 100);
  // The last entry overflows int64: strtoll clamps it to LLONG_MAX, which
  // would pass a naive range check — the errno guard must reject it.
  for (const char* bad : {"abc", "", "7seven", "-5",
                          "92233720368547758071"}) {
    ASSERT_EQ(setenv("EMC_FUZZ_SEED", bad, 1), 0);
    EXPECT_EQ(test_support::fuzz_seed(42), 42u)
        << "EMC_FUZZ_SEED=\"" << bad << "\"";
  }
  unsetenv("EMC_FUZZ_SEED");
  unsetenv("EMC_FUZZ_ROUNDS");
  EXPECT_EQ(test_support::fuzz_seed(42), 42u);
  EXPECT_EQ(test_support::fuzz_rounds(100), 100);
}

// EMC_SERVE_QUEUE_BOUND / EMC_SERVE_DEADLINE_US (the dispatcher's overload
// knobs) follow the same strict policy; a typo'd bound must degrade to
// "unbounded / no deadline", never to a surprise admission behavior.

TEST(ServeEnv, QueueBoundAndDeadlineOverridesAreHonored) {
  ASSERT_EQ(setenv("EMC_SERVE_QUEUE_BOUND", "128", 1), 0);
  ASSERT_EQ(setenv("EMC_SERVE_DEADLINE_US", "2500", 1), 0);
  EXPECT_EQ(serve::resolve_queue_bound(0), 128u);
  EXPECT_EQ(serve::resolve_default_ttl({}).count(), 2500);
  // Explicit DispatcherOptions win over the environment.
  EXPECT_EQ(serve::resolve_queue_bound(16), 16u);
  EXPECT_EQ(serve::resolve_default_ttl(std::chrono::microseconds(9)).count(),
            9);
  unsetenv("EMC_SERVE_QUEUE_BOUND");
  unsetenv("EMC_SERVE_DEADLINE_US");
  EXPECT_EQ(serve::resolve_queue_bound(0), 0u);      // unbounded
  EXPECT_EQ(serve::resolve_default_ttl({}).count(), 0);  // no deadline
}

TEST(ServeEnv, InvalidValuesFallBackToUnset) {
  for (const char* bad : {"0", "-5", "abc", "", "64k", "1e3",
                          "99999999999999999999"}) {
    ASSERT_EQ(setenv("EMC_SERVE_QUEUE_BOUND", bad, 1), 0);
    ASSERT_EQ(setenv("EMC_SERVE_DEADLINE_US", bad, 1), 0);
    EXPECT_EQ(serve::resolve_queue_bound(0), 0u)
        << "EMC_SERVE_QUEUE_BOUND=\"" << bad << "\"";
    EXPECT_EQ(serve::resolve_default_ttl({}).count(), 0)
        << "EMC_SERVE_DEADLINE_US=\"" << bad << "\"";
  }
  // In-type but out-of-range: bound caps at 2^30, deadline at 10^9 us.
  ASSERT_EQ(setenv("EMC_SERVE_QUEUE_BOUND", "1073741825", 1), 0);
  ASSERT_EQ(setenv("EMC_SERVE_DEADLINE_US", "1000000001", 1), 0);
  EXPECT_EQ(serve::resolve_queue_bound(0), 0u);
  EXPECT_EQ(serve::resolve_default_ttl({}).count(), 0);
  unsetenv("EMC_SERVE_QUEUE_BOUND");
  unsetenv("EMC_SERVE_DEADLINE_US");
}

// The EMC_BCC_* knobs share the strict grammar: EMC_BCC_EAGER is a 0/1
// switch (build the BCC index at publish instead of on first demand),
// EMC_BCC_MIN_DEVICE_BATCH a routing floor in [0, 2^30] (0 = the Policy
// cost model decides). A typo must leave lazy builds and model routing —
// never silently flip eagerness or force a route.

TEST(BccEnv, EagerAndRoutingFloorOverridesAreHonored) {
  ASSERT_EQ(setenv("EMC_BCC_EAGER", "1", 1), 0);
  ASSERT_EQ(setenv("EMC_BCC_MIN_DEVICE_BATCH", "64", 1), 0);
  EXPECT_TRUE(bcc::resolve_bcc_eager());
  EXPECT_EQ(bcc::resolve_bcc_min_device_batch(), 64u);
  ASSERT_EQ(setenv("EMC_BCC_EAGER", "0", 1), 0);  // explicit off is valid
  ASSERT_EQ(setenv("EMC_BCC_MIN_DEVICE_BATCH", "0", 1), 0);
  EXPECT_FALSE(bcc::resolve_bcc_eager());
  EXPECT_EQ(bcc::resolve_bcc_min_device_batch(), 0u);
  unsetenv("EMC_BCC_EAGER");
  unsetenv("EMC_BCC_MIN_DEVICE_BATCH");
  EXPECT_FALSE(bcc::resolve_bcc_eager());
  EXPECT_EQ(bcc::resolve_bcc_min_device_batch(), 0u);
}

TEST(BccEnv, InvalidValuesFallBackToDefaults) {
  for (const char* bad : {"-1", "2", "abc", "", "1x", "1e3", "yes",
                          "99999999999999999999"}) {
    ASSERT_EQ(setenv("EMC_BCC_EAGER", bad, 1), 0);
    EXPECT_FALSE(bcc::resolve_bcc_eager()) << "EMC_BCC_EAGER=\"" << bad
                                           << "\"";
  }
  for (const char* bad : {"-1", "abc", "", "64k", "1e3",
                          "1073741825",  // in-type but over the 2^30 cap
                          "99999999999999999999"}) {
    ASSERT_EQ(setenv("EMC_BCC_MIN_DEVICE_BATCH", bad, 1), 0);
    EXPECT_EQ(bcc::resolve_bcc_min_device_batch(), 0u)
        << "EMC_BCC_MIN_DEVICE_BATCH=\"" << bad << "\"";
  }
  unsetenv("EMC_BCC_EAGER");
  unsetenv("EMC_BCC_MIN_DEVICE_BATCH");
}

// The EMC_INGEST_* knobs share the strict policy, with per-knob ranges:
// queue bound and max batch in [1, 2^30], linger in [0, 1e9] us (0 is a
// real setting — opportunistic batching), publish pacing in [1, 1e9].

TEST(IngestEnv, OverridesAreHonoredAndOptionsWin) {
  ASSERT_EQ(setenv("EMC_INGEST_QUEUE_BOUND", "1024", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_MAX_BATCH", "512", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_LINGER_US", "750", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_PUBLISH_EVERY", "8", 1), 0);
  EXPECT_EQ(ingest::resolve_queue_bound(0), 1024u);
  EXPECT_EQ(ingest::resolve_max_batch(0), 512u);
  EXPECT_EQ(ingest::resolve_linger(std::chrono::microseconds(-1)).count(),
            750);
  EXPECT_EQ(ingest::resolve_publish_every(0), 8u);
  // Explicit IngestorOptions win over the environment; linger 0 is an
  // explicit setting, not "unset".
  EXPECT_EQ(ingest::resolve_queue_bound(16), 16u);
  EXPECT_EQ(ingest::resolve_max_batch(32), 32u);
  EXPECT_EQ(ingest::resolve_linger(std::chrono::microseconds(0)).count(), 0);
  EXPECT_EQ(ingest::resolve_publish_every(3), 3u);
  unsetenv("EMC_INGEST_QUEUE_BOUND");
  unsetenv("EMC_INGEST_MAX_BATCH");
  unsetenv("EMC_INGEST_LINGER_US");
  unsetenv("EMC_INGEST_PUBLISH_EVERY");
  EXPECT_EQ(ingest::resolve_queue_bound(0), 65536u);
  EXPECT_EQ(ingest::resolve_max_batch(0), 2048u);
  EXPECT_EQ(ingest::resolve_linger(std::chrono::microseconds(-1)).count(),
            200);
  EXPECT_EQ(ingest::resolve_publish_every(0), 1u);
}

TEST(IngestEnv, InvalidValuesFallBackToDefaults) {
  for (const char* bad : {"-5", "abc", "", "64k", "1e3",
                          "99999999999999999999"}) {
    ASSERT_EQ(setenv("EMC_INGEST_QUEUE_BOUND", bad, 1), 0);
    ASSERT_EQ(setenv("EMC_INGEST_MAX_BATCH", bad, 1), 0);
    ASSERT_EQ(setenv("EMC_INGEST_LINGER_US", bad, 1), 0);
    ASSERT_EQ(setenv("EMC_INGEST_PUBLISH_EVERY", bad, 1), 0);
    EXPECT_EQ(ingest::resolve_queue_bound(0), 65536u)
        << "EMC_INGEST_QUEUE_BOUND=\"" << bad << "\"";
    EXPECT_EQ(ingest::resolve_max_batch(0), 2048u)
        << "EMC_INGEST_MAX_BATCH=\"" << bad << "\"";
    EXPECT_EQ(ingest::resolve_linger(std::chrono::microseconds(-1)).count(),
              200)
        << "EMC_INGEST_LINGER_US=\"" << bad << "\"";
    EXPECT_EQ(ingest::resolve_publish_every(0), 1u)
        << "EMC_INGEST_PUBLISH_EVERY=\"" << bad << "\"";
  }
  // "0" splits the knobs: linger accepts it, the counted knobs do not.
  ASSERT_EQ(setenv("EMC_INGEST_QUEUE_BOUND", "0", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_MAX_BATCH", "0", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_LINGER_US", "0", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_PUBLISH_EVERY", "0", 1), 0);
  EXPECT_EQ(ingest::resolve_queue_bound(0), 65536u);
  EXPECT_EQ(ingest::resolve_max_batch(0), 2048u);
  EXPECT_EQ(ingest::resolve_linger(std::chrono::microseconds(-1)).count(), 0);
  EXPECT_EQ(ingest::resolve_publish_every(0), 1u);
  // In-type but out-of-range: sizes cap at 2^30, times/counts at 10^9.
  ASSERT_EQ(setenv("EMC_INGEST_QUEUE_BOUND", "1073741825", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_MAX_BATCH", "1073741825", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_LINGER_US", "1000000001", 1), 0);
  ASSERT_EQ(setenv("EMC_INGEST_PUBLISH_EVERY", "1000000001", 1), 0);
  EXPECT_EQ(ingest::resolve_queue_bound(0), 65536u);
  EXPECT_EQ(ingest::resolve_max_batch(0), 2048u);
  EXPECT_EQ(ingest::resolve_linger(std::chrono::microseconds(-1)).count(),
            200);
  EXPECT_EQ(ingest::resolve_publish_every(0), 1u);
  unsetenv("EMC_INGEST_QUEUE_BOUND");
  unsetenv("EMC_INGEST_MAX_BATCH");
  unsetenv("EMC_INGEST_LINGER_US");
  unsetenv("EMC_INGEST_PUBLISH_EVERY");
}

// EMC_SHARD_COUNT follows the same strict contract: explicit
// ShardedOptions.shards wins, a valid complete in-range parse is honored,
// and anything else degrades to the default of 4 shards.

TEST(ShardEnv, ShardCountIsHonoredAndOptionsWin) {
  ASSERT_EQ(setenv("EMC_SHARD_COUNT", "6", 1), 0);
  EXPECT_EQ(shard::resolve_shard_count(0), 6u);
  EXPECT_EQ(shard::resolve_shard_count(2), 2u);  // options beat the env
  ASSERT_EQ(setenv("EMC_SHARD_COUNT", "1", 1), 0);   // range floor
  EXPECT_EQ(shard::resolve_shard_count(0), 1u);
  ASSERT_EQ(setenv("EMC_SHARD_COUNT", "1024", 1), 0);  // range ceiling
  EXPECT_EQ(shard::resolve_shard_count(0), 1024u);
  unsetenv("EMC_SHARD_COUNT");
  EXPECT_EQ(shard::resolve_shard_count(0), 4u);  // documented default
}

TEST(ShardEnv, InvalidShardCountFallsBackToDefault) {
  for (const char* bad : {"-5", "abc", "", "4k", "1e1", "0", "1025",
                          "99999999999999999999"}) {
    ASSERT_EQ(setenv("EMC_SHARD_COUNT", bad, 1), 0);
    EXPECT_EQ(shard::resolve_shard_count(0), 4u)
        << "EMC_SHARD_COUNT=\"" << bad << "\"";
  }
  unsetenv("EMC_SHARD_COUNT");
}

// EMC_FAILPOINT's spec grammar ("0.25" | "7" | "7+") is strict, and a full
// config string arms all-or-nothing — a typo disarms everything rather than
// arming the wrong site. Only the engine.publish site is used here: this
// binary's other tests never hit it, while arming device.launch would fault
// the primitive runs below.

TEST(FailpointSpec, AcceptsTheDocumentedGrammar) {
  namespace fp = failpoint;
  EXPECT_TRUE(fp::configure(fp::kPublish, "1"));     // one-shot, first hit
  EXPECT_TRUE(fp::configure(fp::kPublish, "7"));     // one-shot, nth hit
  EXPECT_TRUE(fp::configure(fp::kPublish, "7+"));    // persistent from nth
  EXPECT_TRUE(fp::configure(fp::kPublish, "1+"));    // always fail
  EXPECT_TRUE(fp::configure(fp::kPublish, "0.25"));  // probability
  EXPECT_TRUE(fp::configure(fp::kPublish, "1.0"));   // p == 1 is allowed
  fp::disable_all();
  EXPECT_FALSE(fp::armed());
}

TEST(FailpointSpec, RejectsMalformedSpecsAndUnknownSites) {
  namespace fp = failpoint;
  for (const char* bad : {"", "0", "0+", "0.0", "1.5", "-1", "abc", "0.25x",
                          "7seven", "+", "1++", "0.5+"}) {
    EXPECT_FALSE(fp::configure(fp::kPublish, bad))
        << "spec \"" << bad << "\" should be rejected";
  }
  EXPECT_FALSE(fp::configure("no.such.site", "1"));
  EXPECT_FALSE(fp::armed());
}

TEST(FailpointSpec, ConfigStringArmsAllOrNothing) {
  namespace fp = failpoint;
  EXPECT_EQ(fp::configure_from_string("arena.alloc:1,engine.publish:0.5"), 2);
  EXPECT_TRUE(fp::armed());
  fp::disable_all();
  // One malformed entry must disarm the WHOLE string.
  for (const char* bad :
       {"arena.alloc:1,bogus.site:0.5", "arena.alloc:1,engine.publish:1.5",
        "arena.alloc", "arena.alloc:", ":1", "arena.alloc:1,"}) {
    EXPECT_EQ(fp::configure_from_string(bad), -1)
        << "EMC_FAILPOINT \"" << bad << "\" should arm nothing";
    EXPECT_FALSE(fp::armed());
  }
  fp::disable_all();
}

TEST(FailpointSpec, OneShotFiresExactlyOnceAndCountersTrack) {
  namespace fp = failpoint;
  ASSERT_TRUE(fp::configure(fp::kPublish, "2"));
  EXPECT_FALSE(fp::should_fail(fp::kPublish));  // hit 1
  EXPECT_TRUE(fp::should_fail(fp::kPublish));   // hit 2: fires
  EXPECT_FALSE(fp::should_fail(fp::kPublish));  // hit 3: spent
  EXPECT_EQ(fp::hits(fp::kPublish), 3u);
  EXPECT_EQ(fp::fired(fp::kPublish), 1u);
  fp::disable_all();
  EXPECT_EQ(fp::hits(fp::kPublish), 0u);  // teardown zeroes the counters
}

TEST(FailpointSpec, ScopedSuspendMasksTheCallingThread) {
  namespace fp = failpoint;
  ASSERT_TRUE(fp::configure(fp::kPublish, "1+"));  // always fail...
  {
    fp::ScopedSuspend suspend;
    EXPECT_FALSE(fp::should_fail(fp::kPublish));  // ...except when suspended
    EXPECT_EQ(fp::hits(fp::kPublish), 0u);  // suspended hits are not counted
  }
  EXPECT_TRUE(fp::should_fail(fp::kPublish));
  fp::disable_all();
}

TEST(DeviceLatencyModel, SequentialAndExplicitContextsAreFree) {
  EXPECT_DOUBLE_EQ(device::Context::sequential().launch_overhead(), 0.0);
  EXPECT_DOUBLE_EQ(device::Context(3).launch_overhead(), 0.0);
}

TEST(DeviceLatencyModel, DeviceChargesConfiguredLatency) {
  // Explicit override via constructor.
  const device::Context ctx(1, 100e-6);
  EXPECT_DOUBLE_EQ(ctx.launch_overhead(), 100e-6);
}

TEST(DeviceLatencyModel, LatencyDoesNotChangeResults) {
  const device::Context fast(2, 0.0);
  const device::Context slow(2, 20e-6);
  std::vector<std::int64_t> in(10'000, 3), a(10'000), b(10'000);
  device::inclusive_scan(fast, in.data(), in.size(), a.data());
  device::inclusive_scan(slow, in.data(), in.size(), b.data());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace emc::util
