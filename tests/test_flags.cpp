#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"
#include "util/flags.hpp"

namespace emc::util {
namespace {

Flags make_flags(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  Flags flags = make_flags({"--nodes=42"});
  EXPECT_EQ(flags.get_int("nodes", 0), 42);
  flags.finish();
}

TEST(Flags, SpaceSyntax) {
  Flags flags = make_flags({"--name", "hello"});
  EXPECT_EQ(flags.get_string("name", ""), "hello");
  flags.finish();
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  Flags flags = make_flags({});
  EXPECT_EQ(flags.get_int("nodes", 7), 7);
  EXPECT_EQ(flags.get_string("algo", "tv"), "tv");
  EXPECT_DOUBLE_EQ(flags.get_double("scale", 1.5), 1.5);
  EXPECT_TRUE(flags.get_bool("verify", true));
  flags.finish();
}

TEST(Flags, BareBooleanIsTrue) {
  Flags flags = make_flags({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  flags.finish();
}

TEST(Flags, BooleanSpellings) {
  Flags on = make_flags({"--a=true", "--b=1", "--c=yes"});
  EXPECT_TRUE(on.get_bool("a", false));
  EXPECT_TRUE(on.get_bool("b", false));
  EXPECT_TRUE(on.get_bool("c", false));
  on.finish();
  Flags off = make_flags({"--a=false", "--b=0", "--c=no"});
  EXPECT_FALSE(off.get_bool("a", true));
  EXPECT_FALSE(off.get_bool("b", true));
  EXPECT_FALSE(off.get_bool("c", true));
  off.finish();
}

TEST(Flags, NegativeAndLargeIntegers) {
  Flags flags = make_flags({"--delta=-3", "--big=8589934592"});
  EXPECT_EQ(flags.get_int("delta", 0), -3);
  EXPECT_EQ(flags.get_int("big", 0), 8'589'934'592LL);
  flags.finish();
}

TEST(Flags, MixedStyles) {
  Flags flags = make_flags({"--a=1", "--b", "2", "--c"});
  EXPECT_EQ(flags.get_int("a", 0), 1);
  EXPECT_EQ(flags.get_int("b", 0), 2);
  EXPECT_TRUE(flags.get_bool("c", false));
  flags.finish();
}

TEST(DeviceWorkers, ValidEmcWorkersIsHonored) {
  ASSERT_EQ(setenv("EMC_WORKERS", "3", 1), 0);
  EXPECT_EQ(device::Context(0).workers(), 3u);
  unsetenv("EMC_WORKERS");
}

TEST(DeviceWorkers, InvalidEmcWorkersFallsBackToHardwareConcurrency) {
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  for (const char* bad :
       {"0", "-3", "abc", "", "2x", "1e3", "999999999999"}) {
    ASSERT_EQ(setenv("EMC_WORKERS", bad, 1), 0);
    EXPECT_EQ(device::Context(0).workers(), hardware)
        << "EMC_WORKERS=\"" << bad << "\"";
  }
  unsetenv("EMC_WORKERS");
  EXPECT_EQ(device::Context(0).workers(), hardware);
}

TEST(DeviceLatencyModel, SequentialAndExplicitContextsAreFree) {
  EXPECT_DOUBLE_EQ(device::Context::sequential().launch_overhead(), 0.0);
  EXPECT_DOUBLE_EQ(device::Context(3).launch_overhead(), 0.0);
}

TEST(DeviceLatencyModel, DeviceChargesConfiguredLatency) {
  // Explicit override via constructor.
  const device::Context ctx(1, 100e-6);
  EXPECT_DOUBLE_EQ(ctx.launch_overhead(), 100e-6);
}

TEST(DeviceLatencyModel, LatencyDoesNotChangeResults) {
  const device::Context fast(2, 0.0);
  const device::Context slow(2, 20e-6);
  std::vector<std::int64_t> in(10'000, 3), a(10'000), b(10'000);
  device::inclusive_scan(fast, in.data(), in.size(), a.data());
  device::inclusive_scan(slow, in.data(), in.size(), b.data());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace emc::util
