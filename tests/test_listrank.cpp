#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "device/context.hpp"
#include "listrank/listrank.hpp"
#include "util/rng.hpp"

namespace emc::listrank {
namespace {

/// Builds a random list over n elements: returns (next, head) where the
/// list visits all n elements in a random order.
std::pair<std::vector<EdgeId>, EdgeId> random_list(std::size_t n,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<EdgeId> order(n);
  std::iota(order.begin(), order.end(), EdgeId{0});
  for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.below(i)]);
  std::vector<EdgeId> next(n, kNoEdge);
  for (std::size_t i = 0; i + 1 < n; ++i) next[order[i]] = order[i + 1];
  return {next, order[0]};
}

class ListRankParam
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
 protected:
  device::Context ctx() const {
    return device::Context(std::get<0>(GetParam()));
  }
  std::size_t n() const { return std::get<1>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    WorkersAndSizes, ListRankParam,
    ::testing::Combine(::testing::Values(1u, 3u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}, std::size_t{64},
                                         std::size_t{1000},
                                         std::size_t{50'000})));

TEST_P(ListRankParam, SequentialIsIdentityOnOrder) {
  const auto [next, head] = random_list(n(), 1);
  std::vector<EdgeId> rank;
  rank_sequential(next, head, rank);
  // rank values are a permutation of 0..n-1 and consistent with next.
  EXPECT_EQ(rank[head], 0);
  for (std::size_t i = 0; i < n(); ++i) {
    if (next[i] != kNoEdge) {
      ASSERT_EQ(rank[next[i]], rank[i] + 1);
    }
  }
}

TEST_P(ListRankParam, WyllieMatchesSequential) {
  const auto [next, head] = random_list(n(), 2);
  std::vector<EdgeId> expected, got;
  rank_sequential(next, head, expected);
  rank_wyllie(ctx(), next, head, got);
  EXPECT_EQ(got, expected);
}

TEST_P(ListRankParam, WeiJajaMatchesSequential) {
  const auto [next, head] = random_list(n(), 3);
  std::vector<EdgeId> expected, got;
  rank_sequential(next, head, expected);
  rank_wei_jaja(ctx(), next, head, got);
  EXPECT_EQ(got, expected);
}

TEST_P(ListRankParam, WeiJajaSublistCountSweep) {
  const auto [next, head] = random_list(n(), 4);
  std::vector<EdgeId> expected, got;
  rank_sequential(next, head, expected);
  for (const std::size_t sublists : {std::size_t{1}, std::size_t{2},
                                     std::size_t{16}, n()}) {
    rank_wei_jaja(ctx(), next, head, got, sublists);
    ASSERT_EQ(got, expected) << "sublists=" << sublists;
  }
}

TEST_P(ListRankParam, PrefixMatchesSequential) {
  const auto [next, head] = random_list(n(), 5);
  util::Rng rng(6);
  std::vector<std::int64_t> values(n());
  for (auto& v : values) v = static_cast<std::int64_t>(rng.below(100)) - 50;
  std::vector<std::int64_t> expected, got;
  prefix_sequential(next, head, values, expected);
  prefix_wei_jaja(ctx(), next, head, values, got);
  EXPECT_EQ(got, expected);
}

TEST(ListRank, SingleElement) {
  std::vector<EdgeId> next{kNoEdge};
  std::vector<EdgeId> rank;
  const device::Context ctx(2);
  rank_wei_jaja(ctx, next, 0, rank);
  EXPECT_EQ(rank[0], 0);
  rank_wyllie(ctx, next, 0, rank);
  EXPECT_EQ(rank[0], 0);
}

TEST(ListRank, InOrderList) {
  // next[i] = i+1: ranks must equal indices.
  const std::size_t n = 10'000;
  std::vector<EdgeId> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = i + 1 < n ? static_cast<EdgeId>(i + 1) : kNoEdge;
  }
  const device::Context ctx(3);
  std::vector<EdgeId> rank;
  rank_wei_jaja(ctx, next, 0, rank);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(rank[i], static_cast<EdgeId>(i));
}

TEST(ListRank, ReversedList) {
  // next[i] = i-1, head = n-1: rank[i] = n-1-i.
  const std::size_t n = 10'000;
  std::vector<EdgeId> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = i == 0 ? kNoEdge : static_cast<EdgeId>(i - 1);
  }
  const device::Context ctx(3);
  std::vector<EdgeId> rank;
  rank_wyllie(ctx, next, static_cast<EdgeId>(n - 1), rank);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(rank[i], static_cast<EdgeId>(n - 1 - i));
  }
}

TEST(ListRank, PrefixWithUnitWeightsIsRankPlusOne) {
  const auto [next, head] = random_list(5000, 77);
  const device::Context ctx(2);
  std::vector<std::int64_t> ones(5000, 1), prefix;
  prefix_wei_jaja(ctx, next, head, ones, prefix);
  std::vector<EdgeId> rank;
  rank_sequential(next, head, rank);
  for (std::size_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(prefix[i], static_cast<std::int64_t>(rank[i]) + 1);
  }
}

TEST(ListRank, DeterministicAcrossRuns) {
  const auto [next, head] = random_list(20'000, 123);
  const device::Context ctx(4);
  std::vector<EdgeId> a, b;
  rank_wei_jaja(ctx, next, head, a, 0, 999);
  rank_wei_jaja(ctx, next, head, b, 0, 999);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace emc::listrank
