// Direct unit tests for bridges/stitch.hpp — component_representatives and
// stitch_components, the virtual-edge stitch-and-slice machinery. Until
// this file they were covered only indirectly through the oracle/engine
// pipelines; the shard summary now reuses them as a standalone building
// block, so their contract is pinned here on its own.
#include "bridges/stitch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bridges/cc_spanning.hpp"
#include "bridges/dfs_bridges.hpp"
#include "device/context.hpp"
#include "graph/graph.hpp"
#include "support/reference.hpp"

namespace emc::bridges {
namespace {

TEST(Stitch, RepresentativesAreSelfLabeledNodesInNodeOrder) {
  const device::Context ctx(2);
  // Three components: {0,1,2} triangle, {3,4} edge, {5} isolated.
  graph::EdgeList g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}};
  const SpanningForest forest = cc_spanning_forest(ctx, g);
  ASSERT_EQ(forest.num_components, 3u);

  const std::vector<NodeId> reps = component_representatives(ctx, forest);
  ASSERT_EQ(reps.size(), 3u);
  // Exactly the self-labeled nodes, compacted in ascending node order.
  for (std::size_t r = 0; r < reps.size(); ++r) {
    EXPECT_EQ(forest.component[reps[r]], reps[r]);
    if (r > 0) EXPECT_LT(reps[r - 1], reps[r]);
  }
  // Every node's label is one of the representatives.
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    EXPECT_NE(std::find(reps.begin(), reps.end(), forest.component[v]),
              reps.end());
  }
}

TEST(Stitch, ConnectedGraphIsReturnedUnchanged) {
  const device::Context ctx(2);
  graph::EdgeList g;
  g.num_nodes = 4;
  g.edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const SpanningForest forest = cc_spanning_forest(ctx, g);
  const std::vector<NodeId> reps = component_representatives(ctx, forest);
  ASSERT_EQ(reps.size(), 1u);

  const graph::EdgeList stitched = stitch_components(g, reps);
  EXPECT_EQ(stitched.num_nodes, g.num_nodes);
  EXPECT_EQ(stitched.edges, g.edges);
}

TEST(Stitch, AddsOneVirtualEdgePerExtraComponent) {
  const device::Context ctx(2);
  graph::EdgeList g;
  g.num_nodes = 7;
  g.edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}};  // components: 3 + {5}, {6}
  const SpanningForest forest = cc_spanning_forest(ctx, g);
  const std::vector<NodeId> reps = component_representatives(ctx, forest);
  ASSERT_EQ(reps.size(), 4u);

  const graph::EdgeList stitched = stitch_components(g, reps);
  EXPECT_EQ(stitched.num_nodes, g.num_nodes);
  ASSERT_EQ(stitched.edges.size(), g.edges.size() + reps.size() - 1);
  // The real edges come first, untouched (the slice-back contract).
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    EXPECT_EQ(stitched.edges[e], g.edges[e]);
  }
  // Then one virtual edge from the first representative to each other.
  for (std::size_t r = 1; r < reps.size(); ++r) {
    EXPECT_EQ(stitched.edges[g.edges.size() + r - 1],
              (graph::Edge{reps[0], reps[r]}));
  }
  ASSERT_TRUE(stitched.valid());
}

TEST(Stitch, VirtualEdgesNeverChangeARealEdgesBridgeness) {
  const device::Context ctx(2);
  // Two triangles (no bridges) + a path 6-7-8 (two bridges) + isolated 9.
  graph::EdgeList g;
  g.num_nodes = 10;
  g.edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5},
             {3, 5}, {6, 7}, {7, 8}};
  const SpanningForest forest = cc_spanning_forest(ctx, g);
  const std::vector<NodeId> reps = component_representatives(ctx, forest);
  const graph::EdgeList stitched = stitch_components(g, reps);
  ASSERT_TRUE(stitched.valid());

  // Mask on the augmentation, truncated to the real edges, must equal the
  // per-component DFS verdicts on the original graph.
  const BridgeMask full = find_bridges_dfs(graph::build_csr(ctx, stitched));
  const BridgeMask direct = find_bridges_dfs(graph::build_csr(ctx, g));
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    EXPECT_EQ(full[e], direct[e]) << "edge " << e;
  }
  // And every virtual edge is itself a bridge (sole connection between its
  // components).
  for (std::size_t e = g.edges.size(); e < stitched.edges.size(); ++e) {
    EXPECT_TRUE(full[e]) << "virtual edge " << e;
  }
}

TEST(Stitch, EmptyAndSingleNodeGraphs) {
  const device::Context ctx(2);
  graph::EdgeList empty;
  empty.num_nodes = 0;
  const SpanningForest forest = cc_spanning_forest(ctx, empty);
  EXPECT_EQ(forest.num_components, 0u);
  const std::vector<NodeId> reps = component_representatives(ctx, forest);
  EXPECT_TRUE(reps.empty());
  const graph::EdgeList stitched = stitch_components(empty, reps);
  EXPECT_EQ(stitched.num_nodes, 0);
  EXPECT_TRUE(stitched.edges.empty());

  graph::EdgeList one;
  one.num_nodes = 1;
  const SpanningForest f1 = cc_spanning_forest(ctx, one);
  const std::vector<NodeId> r1 = component_representatives(ctx, f1);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0], 0);
  EXPECT_TRUE(stitch_components(one, r1).edges.empty());
}

}  // namespace
}  // namespace emc::bridges
