#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "device/context.hpp"
#include "rmq/segment_tree.hpp"
#include "rmq/sparse_table.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace emc::rmq {
namespace {

std::vector<NodeId> random_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<NodeId> values(n);
  for (auto& v : values) v = static_cast<NodeId>(rng.below(1'000'000));
  return values;
}

class RmqParam
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
 protected:
  device::Context ctx_{std::get<0>(GetParam())};
  std::size_t n_ = std::get<1>(GetParam());
};

INSTANTIATE_TEST_SUITE_P(
    WorkersAndSizes, RmqParam,
    ::testing::Combine(::testing::Values(1u, 3u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}, std::size_t{7},
                                         std::size_t{64}, std::size_t{1000},
                                         std::size_t{4097})));

TEST_P(RmqParam, SegmentTreeMinMatchesBruteForce) {
  const auto values = random_values(n_, n_);
  const MinSegmentTree<NodeId> tree(ctx_, values, kNodeInf);
  util::Rng rng(n_ + 1);
  for (int q = 0; q < 200; ++q) {
    std::size_t lo = rng.below(n_);
    std::size_t hi = rng.below(n_);
    if (lo > hi) std::swap(lo, hi);
    const NodeId expected =
        *std::min_element(values.begin() + lo, values.begin() + hi + 1);
    ASSERT_EQ(tree.query(lo, hi), expected) << lo << ".." << hi;
  }
}

TEST_P(RmqParam, SegmentTreeMaxMatchesBruteForce) {
  const auto values = random_values(n_, n_ + 7);
  const MaxSegmentTree<NodeId> tree(ctx_, values, NodeId{-1});
  util::Rng rng(n_ + 2);
  for (int q = 0; q < 200; ++q) {
    std::size_t lo = rng.below(n_);
    std::size_t hi = rng.below(n_);
    if (lo > hi) std::swap(lo, hi);
    const NodeId expected =
        *std::max_element(values.begin() + lo, values.begin() + hi + 1);
    ASSERT_EQ(tree.query(lo, hi), expected);
  }
}

TEST_P(RmqParam, SparseTableAgreesWithSegmentTree) {
  const auto values = random_values(n_, n_ + 13);
  const MinSegmentTree<NodeId> seg(ctx_, values, kNodeInf);
  const SparseTable<NodeId, MinOp> table(ctx_, values);
  util::Rng rng(n_ + 3);
  for (int q = 0; q < 200; ++q) {
    std::size_t lo = rng.below(n_);
    std::size_t hi = rng.below(n_);
    if (lo > hi) std::swap(lo, hi);
    ASSERT_EQ(table.query(lo, hi), seg.query(lo, hi));
  }
}

TEST_P(RmqParam, FullRangeAndPointQueries) {
  const auto values = random_values(n_, n_ + 17);
  const MinSegmentTree<NodeId> tree(ctx_, values, kNodeInf);
  EXPECT_EQ(tree.query(0, n_ - 1),
            *std::min_element(values.begin(), values.end()));
  for (std::size_t i = 0; i < std::min<std::size_t>(n_, 64); ++i) {
    ASSERT_EQ(tree.query(i, i), values[i]);
  }
}

TEST(SegmentTree, EmptyInput) {
  const device::Context ctx(1);
  const MinSegmentTree<NodeId> tree(ctx, {}, kNodeInf);
  EXPECT_EQ(tree.size(), 0u);
}

TEST(SegmentTree, ValueAtReadsLeaves) {
  const device::Context ctx(1);
  const std::vector<NodeId> values{5, 2, 9};
  const MinSegmentTree<NodeId> tree(ctx, values, kNodeInf);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(tree.value_at(i), values[i]);
  }
}

TEST(SegmentTree, AdjacentRangesCompose) {
  const device::Context ctx(2);
  const auto values = random_values(257, 21);
  const MinSegmentTree<NodeId> tree(ctx, values, kNodeInf);
  for (std::size_t mid = 1; mid < 257; mid += 13) {
    const NodeId whole = tree.query(0, 256);
    const NodeId left = tree.query(0, mid - 1);
    const NodeId right = tree.query(mid, 256);
    ASSERT_EQ(whole, std::min(left, right));
  }
}

TEST(SparseTable, SingleElement) {
  const device::Context ctx(1);
  const SparseTable<NodeId, MaxOp> table(ctx, std::vector<NodeId>{42});
  EXPECT_EQ(table.query(0, 0), 42);
}

TEST(SparseTable, PowersOfTwoBoundaries) {
  const device::Context ctx(1);
  std::vector<NodeId> values(1024);
  for (std::size_t i = 0; i < 1024; ++i) values[i] = static_cast<NodeId>(i);
  const SparseTable<NodeId, MinOp> table(ctx, values);
  EXPECT_EQ(table.query(0, 1023), 0);
  EXPECT_EQ(table.query(512, 1023), 512);
  EXPECT_EQ(table.query(511, 512), 511);
  EXPECT_EQ(table.query(1023, 1023), 1023);
}

}  // namespace
}  // namespace emc::rmq
