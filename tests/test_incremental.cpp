// Incremental oracle maintenance under insertions.
//
// The contract: for an insert-only, intra-component, size-bounded delta,
// ConnectivityOracle::refresh() must produce an index INDISTINGUISHABLE
// from a full rebuild of the same snapshot — verified here three ways:
// differential fuzz against a from-scratch oracle and the shared sequential
// reference (tests/support/reference.hpp), launch-count pins showing the
// incremental path is a fixed kernel sequence cheaper than the rebuild,
// and unit tests of the explicit fallback rule.
#include <gtest/gtest.h>

#include <iostream>
#include <utility>
#include <vector>

#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/oracle.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/rng.hpp"

namespace emc::dynamic {
namespace {

using graph::Edge;
using graph::EdgeList;

/// Diffs `oracle` against a freshly rebuilt oracle AND the sequential
/// reference on the same snapshot: structure counts plus a query sample.
void expect_equivalent_to_full_rebuild(const device::Context& ctx,
                                       const DynamicGraph& dg,
                                       const ConnectivityOracle& oracle,
                                       util::Rng& rng, int num_queries) {
  ConnectivityOracle fresh;
  fresh.refresh(ctx, dg);
  ASSERT_EQ(oracle.num_bridges(), fresh.num_bridges());
  ASSERT_EQ(oracle.num_blocks(), fresh.num_blocks());
  const test_support::ReferenceOracle ref(ctx, dg.snapshot(ctx));
  ASSERT_EQ(oracle.num_bridges(), ref.num_bridges);
  for (int q = 0; q < num_queries; ++q) {
    const auto u = static_cast<NodeId>(rng.below(dg.num_nodes()));
    const auto v = static_cast<NodeId>(rng.below(dg.num_nodes()));
    ASSERT_EQ(oracle.same_2ecc(u, v), fresh.same_2ecc(u, v))
        << "same_2ecc(" << u << ", " << v << ")";
    ASSERT_EQ(oracle.same_2ecc(u, v), ref.comp[u] == ref.comp[v])
        << "same_2ecc(" << u << ", " << v << ") vs reference";
    ASSERT_EQ(oracle.bridges_on_path(u, v), fresh.bridges_on_path(u, v))
        << "bridges_on_path(" << u << ", " << v << ")";
    ASSERT_EQ(oracle.bridges_on_path(u, v), ref.bridges_on_path(u, v))
        << "bridges_on_path(" << u << ", " << v << ") vs reference";
    ASSERT_EQ(oracle.component_size(u), fresh.component_size(u))
        << "component_size(" << u << ")";
  }
}

// --------------------------------------------------- the fallback rule

TEST(IncrementalRule, SizeRuleIsExplicit) {
  using O = ConnectivityOracle;
  // Any erase, or an empty delta, disqualifies.
  EXPECT_FALSE(O::incremental_applies(0, 0, 1000));
  EXPECT_FALSE(O::incremental_applies(10, 1, 1000));
  // The floor keeps small graphs incremental...
  EXPECT_TRUE(O::incremental_applies(1, 0, 0));
  EXPECT_TRUE(O::incremental_applies(O::kIncrementalFloor, 0, 0));
  EXPECT_FALSE(O::incremental_applies(O::kIncrementalFloor + 1, 0, 0));
  // ...and the ratio governs past it: inserted <= edges / kIncrementalRatio.
  EXPECT_TRUE(O::incremental_applies(250, 0, 1000));
  EXPECT_FALSE(O::incremental_applies(251, 0, 1000));
}

TEST(IncrementalRule, InsertOnlyIntraComponentDeltaGoesIncremental) {
  const device::Context ctx(2);
  // Two triangles joined by a bridge; closing a second path kills it.
  DynamicGraph dg(6);
  dg.insert_edges(ctx,
                  {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  ConnectivityOracle oracle;
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 1u);
  dg.insert_edges(ctx, {{1, 4}});
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 1u);  // no full pipeline this time
  EXPECT_EQ(oracle.incremental_refreshes(), 1u);
  EXPECT_EQ(oracle.built_epoch(), dg.epoch());
  EXPECT_EQ(oracle.num_bridges(), 0u);
  EXPECT_EQ(oracle.num_blocks(), 1u);
  util::Rng rng(3);
  expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 36);
}

TEST(IncrementalRule, EraseBatchFallsBackToRebuild) {
  const device::Context ctx(2);
  DynamicGraph dg(ctx, gen::cycle_graph(8));
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  dg.erase_edges(ctx, {{0, 1}});
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 2u);
  EXPECT_EQ(oracle.incremental_refreshes(), 0u);
  EXPECT_EQ(oracle.num_bridges(), 7u);  // the cycle became a path
}

TEST(IncrementalRule, CrossComponentInsertTreeLinks) {
  const device::Context ctx(2);
  DynamicGraph dg(7);
  dg.insert_edges(ctx, {{0, 1}, {1, 2}, {2, 0},    // triangle
                        {3, 4}, {4, 5}, {5, 3}});  // triangle, 6 isolated
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  // {2, 3} joins two components: it is a new bridge linking two block
  // trees, replayed by the tree-link fast path — no full pipeline.
  dg.insert_edges(ctx, {{2, 3}});
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 1u);
  EXPECT_EQ(oracle.incremental_refreshes(), 1u);
  EXPECT_EQ(oracle.tree_links(), 1u);
  EXPECT_EQ(oracle.num_bridges(), 1u);
  EXPECT_FALSE(oracle.same_2ecc(0, 3));
  EXPECT_EQ(oracle.bridges_on_path(0, 4), 1);
  EXPECT_EQ(oracle.bridges_on_path(0, 6), kNoNode);  // 6 still isolated
  util::Rng rng(21);
  expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 36);

  // Linking the isolated node, together with an intra-component chord in
  // the same batch, exercises both replay paths in one refresh.
  dg.insert_edges(ctx, {{6, 0}, {1, 4}});
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 1u);
  EXPECT_EQ(oracle.incremental_refreshes(), 2u);
  EXPECT_EQ(oracle.tree_links(), 2u);
  EXPECT_EQ(oracle.num_bridges(), 1u);  // {1,4} collapsed the old bridge
  EXPECT_TRUE(oracle.same_2ecc(0, 5));
  EXPECT_EQ(oracle.bridges_on_path(2, 6), 1);
  util::Rng rng2(22);
  expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng2, 36);
}

TEST(IncrementalRule, CycleClosingCrossBatchFallsBackToRebuild) {
  const device::Context ctx(2);
  DynamicGraph dg(6);
  dg.insert_edges(ctx, {{0, 1}, {1, 2}, {2, 0},    // triangle
                        {3, 4}, {4, 5}, {5, 3}});  // triangle
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  // Two edges between the SAME pair of components in one batch: the second
  // closes a cycle through the first, which no replay path can express
  // (it is neither a bridge nor intra-component on the indexed snapshot).
  dg.insert_edges(ctx, {{0, 3}, {1, 4}});
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 2u);
  EXPECT_EQ(oracle.incremental_refreshes(), 0u);
  EXPECT_EQ(oracle.num_bridges(), 0u);
  EXPECT_TRUE(oracle.same_2ecc(0, 5));
  util::Rng rng(23);
  expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 24);
}

TEST(IncrementalRule, MultipleBatchesBehindFallsBackToRebuild) {
  const device::Context ctx(2);
  DynamicGraph dg(ctx, gen::cycle_graph(16));
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  // Two effective batches with no refresh between: only the second delta is
  // retained, so the one-batch-ahead precondition fails.
  dg.insert_edges(ctx, {{0, 2}});
  dg.insert_edges(ctx, {{0, 4}});
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 2u);
  EXPECT_EQ(oracle.incremental_refreshes(), 0u);
  util::Rng rng(5);
  expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 24);
}

TEST(IncrementalRule, OversizedDeltaFallsBackToRebuild) {
  const device::Context ctx(2);
  // Path on 200 nodes: m = 199, so the cutoff is max(64, 199/4) = 64.
  DynamicGraph dg(ctx, gen::path_graph(200));
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  std::vector<Edge> batch;
  for (NodeId v = 0; v < 65; ++v) batch.push_back({v, static_cast<NodeId>(v + 100)});
  ASSERT_EQ(dg.insert_edges(ctx, batch), 65u);
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 2u);
  EXPECT_EQ(oracle.incremental_refreshes(), 0u);
  util::Rng rng(6);
  expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 24);
}

TEST(IncrementalRule, LongCoveredPathFallsBackToRebuild) {
  const device::Context ctx(2);
  // Path graph: every edge a bridge, every node its own block, so an
  // inserted edge covers a block-tree path as long as its span. The delta
  // size (1) passes the size rule; the covered-length rule must catch it.
  DynamicGraph dg(ctx, gen::path_graph(1000));
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  ASSERT_EQ(oracle.num_blocks(), 1000u);
  // Covered length 999 > max(64, 1000 / 4) = 250: full rebuild.
  dg.insert_edges(ctx, {{0, 999}});
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 2u);
  EXPECT_EQ(oracle.incremental_refreshes(), 0u);
  EXPECT_EQ(oracle.num_bridges(), 0u);  // the path closed into a cycle
  // A chord inside the merged block (covered length 0) stays incremental.
  dg.insert_edges(ctx, {{200, 205}});
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.rebuilds(), 2u);
  EXPECT_EQ(oracle.incremental_refreshes(), 1u);
  util::Rng rng(9);
  expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 24);
}

TEST(IncrementalRule, WithinBlockInsertIsStructurallyInert) {
  const device::Context ctx(2);
  // K4 plus a pendant: adding another chord inside the K4 block changes no
  // structure, but must still go through the incremental path and keep the
  // index exact.
  DynamicGraph dg(5);
  dg.insert_edges(ctx, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 3}, {3, 4}});
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  const std::size_t bridges_before = oracle.num_bridges();
  dg.insert_edges(ctx, {{2, 3}});  // inside the 2ecc {0,1,2,3}
  EXPECT_TRUE(oracle.refresh(ctx, dg));
  EXPECT_EQ(oracle.incremental_refreshes(), 1u);
  EXPECT_EQ(oracle.num_bridges(), bridges_before);
  util::Rng rng(7);
  expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 25);
}

// ------------------------------------------------ launch-count guarantees

TEST(IncrementalLaunches, FixedKernelSequenceCheaperThanRebuild) {
  const device::Context ctx = device::Context::device();
  // Road-like base: bridgy appendages over a 2-edge-connected core, all in
  // one giant component (reliability 1 keeps the grid connected).
  DynamicGraph dg(ctx, gen::road_graph(40, 40, 1.0, 0.05, 3));
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  const auto cc = test_support::cc_labels(dg.snapshot(ctx));

  // Batches of intra-component edges, sizes 8 and 56: the incremental
  // refresh must take the same number of launches for both (the kernel
  // sequence is fixed; only per-kernel work scales with the delta).
  util::Rng rng(11);
  auto intra_batch = [&](std::size_t size) {
    std::vector<Edge> batch;
    while (batch.size() < size) {
      const auto u = static_cast<NodeId>(rng.below(dg.num_nodes()));
      const auto v = static_cast<NodeId>(rng.below(dg.num_nodes()));
      if (u != v && cc[u] == cc[v] && !dg.has_edge(u, v)) batch.push_back({u, v});
    }
    return batch;
  };
  auto refresh_launches = [&](const std::vector<Edge>& batch) {
    EXPECT_GT(dg.insert_edges(ctx, batch), 0u) << "batch was a no-op";
    const std::uint64_t before = ctx.launch_count();
    EXPECT_TRUE(oracle.refresh(ctx, dg));
    return ctx.launch_count() - before;
  };

  const std::uint64_t small = refresh_launches(intra_batch(8));
  const std::uint64_t large = refresh_launches(intra_batch(56));
  EXPECT_EQ(oracle.incremental_refreshes(), 2u);
  EXPECT_EQ(small, large) << "incremental launch count must not scale with "
                             "the delta size";

  // And it must undercut the full pipeline on the same graph.
  ConnectivityOracle scratch;
  const std::uint64_t before = ctx.launch_count();
  scratch.refresh(ctx, dg);
  const std::uint64_t rebuild = ctx.launch_count() - before;
  EXPECT_LT(large, rebuild);
}

// ------------------------------------------------------------------- fuzz

TEST(IncrementalFuzz, InsertOnlyBatchesMatchFullRebuild) {
  const device::Context ctx(2);
  constexpr NodeId kNodes = 64;
  const std::uint64_t seed = test_support::fuzz_seed(777);
  const int rounds = test_support::fuzz_rounds(200);
  util::Rng rng(seed);
  test_support::BatchScript script;

  // Connected base so every insertion is intra-component and the
  // incremental path carries (almost) every round.
  DynamicGraph dg(ctx, gen::cycle_graph(kNodes));
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);

  int effective_rounds = 0;
  for (int round = 0; round < rounds; ++round) {
    std::vector<Edge> batch;
    const std::size_t size = 1 + rng.below(12);
    for (std::size_t i = 0; i < size; ++i) {
      batch.push_back({static_cast<NodeId>(rng.below(kNodes)),
                       static_cast<NodeId>(rng.below(kNodes))});
    }
    script.add(round, "insert", batch);
    if (dg.insert_edges(ctx, batch) > 0) ++effective_rounds;
    // IIFE so a fatal failure lands here and the replay print still fires.
    [&] {
      oracle.refresh(ctx, dg);
      ASSERT_EQ(oracle.built_epoch(), dg.epoch());
      expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 16);
    }();
    if (::testing::Test::HasFailure()) {
      std::cerr << script.replay(seed, rounds);
      return;
    }
  }
  // The point of the suite: the incremental path must actually have served
  // every effective round (connected base + small insert-only batches).
  EXPECT_EQ(oracle.rebuilds(), 1u);
  EXPECT_EQ(oracle.incremental_refreshes(),
            static_cast<std::size_t>(effective_rounds));
}

TEST(IncrementalFuzz, MixedBatchesMatchFullRebuild) {
  const device::Context ctx(2);
  constexpr NodeId kNodes = 60;
  const std::uint64_t seed = test_support::fuzz_seed(31337);
  const int rounds = test_support::fuzz_rounds(200);
  util::Rng rng(seed);
  test_support::BatchScript script;

  // Disconnected base (two cycles + isolated tail nodes): inserts are a mix
  // of intra-component (incremental) and cross-component (rebuild) edges,
  // and every few rounds an erase batch forces the rebuild path.
  DynamicGraph dg(kNodes);
  std::vector<Edge> base;
  for (NodeId v = 0; v < 24; ++v)
    base.push_back({v, static_cast<NodeId>((v + 1) % 24)});
  for (NodeId v = 24; v < 48; ++v)
    base.push_back({v, static_cast<NodeId>(v == 47 ? 24 : v + 1)});
  dg.insert_edges(ctx, base);
  ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);

  std::vector<Edge> inserted_pool(base);
  for (int round = 0; round < rounds; ++round) {
    std::vector<Edge> batch;
    const std::size_t size = 1 + rng.below(10);
    if (round % 3 == 2) {
      for (std::size_t i = 0; i < size; ++i) {
        batch.push_back(inserted_pool[rng.below(inserted_pool.size())]);
      }
      script.add(round, "erase", batch);
      dg.erase_edges(ctx, batch);
    } else {
      for (std::size_t i = 0; i < size; ++i) {
        const Edge e = {static_cast<NodeId>(rng.below(kNodes)),
                        static_cast<NodeId>(rng.below(kNodes))};
        batch.push_back(e);
        if (e.u != e.v) inserted_pool.push_back(e);
      }
      script.add(round, "insert", batch);
      dg.insert_edges(ctx, batch);
    }
    [&] {
      oracle.refresh(ctx, dg);
      ASSERT_EQ(oracle.built_epoch(), dg.epoch());
      expect_equivalent_to_full_rebuild(ctx, dg, oracle, rng, 16);
    }();
    if (::testing::Test::HasFailure()) {
      std::cerr << script.replay(seed, rounds);
      return;
    }
  }
  // Both paths must have been exercised by the mix — a coverage claim that
  // only holds statistically, so skip it when a small EMC_FUZZ_ROUNDS
  // override (a replay session) leaves too few rounds to guarantee it.
  if (rounds >= 30) {
    EXPECT_GT(oracle.incremental_refreshes(), 0u);
    EXPECT_GT(oracle.rebuilds(), 1u);
  }
}

}  // namespace
}  // namespace emc::dynamic
