#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/euler_tour.hpp"
#include "core/tree.hpp"
#include "device/context.hpp"
#include "gen/trees.hpp"
#include "util/rng.hpp"

namespace emc::core {
namespace {

/// Reference statistics by sequential DFS over child lists, with children
/// visited in ascending (dst id) order of... — order does not matter for
/// preorder *validity* checks below; for exact comparison we instead verify
/// structural invariants that hold for every DFS order.
struct Reference {
  std::vector<NodeId> depth;
  std::vector<NodeId> subtree_size;
};

Reference reference_stats(const ParentTree& tree) {
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  Reference ref;
  ref.depth = depths_reference(tree);
  ref.subtree_size.assign(n, 1);
  // Accumulate sizes bottom-up: process nodes in decreasing depth.
  std::vector<NodeId> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<NodeId>(v);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return ref.depth[a] > ref.depth[b];
  });
  for (const NodeId v : order) {
    if (v != tree.root) ref.subtree_size[tree.parent[v]] += ref.subtree_size[v];
  }
  return ref;
}

void check_tour_invariants(const device::Context& ctx, const ParentTree& tree,
                           RankAlgo algo) {
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  const graph::EdgeList edges = tree_edges(tree);
  const EulerTour tour = build_euler_tour(ctx, edges, tree.root, algo);
  const std::size_t h = 2 * (n - 1);
  ASSERT_EQ(tour.num_half_edges(), h);

  // rank is a bijection onto [0, h) and tour is its inverse.
  std::vector<bool> seen(h, false);
  for (std::size_t e = 0; e < h; ++e) {
    ASSERT_GE(tour.rank[e], 0);
    ASSERT_LT(tour.rank[e], static_cast<EdgeId>(h));
    ASSERT_FALSE(seen[tour.rank[e]]);
    seen[tour.rank[e]] = true;
    ASSERT_EQ(tour.tour[tour.rank[e]], static_cast<EdgeId>(e));
  }

  // The tour is a closed walk: consecutive edges share endpoints; it starts
  // at the root and ends back at the root.
  ASSERT_EQ(tour.edge_src[tour.tour[0]], tree.root);
  ASSERT_EQ(tour.edge_dst[tour.tour[h - 1]], tree.root);
  for (std::size_t r = 0; r + 1 < h; ++r) {
    ASSERT_EQ(tour.edge_dst[tour.tour[r]], tour.edge_src[tour.tour[r + 1]]);
  }

  // Each half-edge and its twin are traversed in opposite directions.
  for (std::size_t e = 0; e < h; e += 2) {
    ASSERT_EQ(tour.edge_src[e], tour.edge_dst[e + 1]);
    ASSERT_EQ(tour.edge_dst[e], tour.edge_src[e + 1]);
    ASSERT_NE(tour.goes_down(static_cast<EdgeId>(e)),
              tour.goes_down(static_cast<EdgeId>(e + 1)));
  }

  // Statistics match the reference DFS.
  const TreeStats stats = compute_tree_stats(ctx, tour);
  const Reference ref = reference_stats(tree);
  ASSERT_EQ(stats.parent[tree.root], kNoNode);
  ASSERT_EQ(stats.preorder[tree.root], 1);
  ASSERT_EQ(stats.subtree_size[tree.root], static_cast<NodeId>(n));
  std::vector<bool> pre_seen(n + 1, false);
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_EQ(stats.level[v], ref.depth[v]) << "node " << v;
    ASSERT_EQ(stats.subtree_size[v], ref.subtree_size[v]) << "node " << v;
    if (static_cast<NodeId>(v) != tree.root) {
      ASSERT_EQ(stats.parent[v], tree.parent[v]) << "node " << v;
      // Preorder of a child lies inside the parent's interval.
      const NodeId p = tree.parent[v];
      ASSERT_GT(stats.preorder[v], stats.preorder[p]);
      ASSERT_LT(stats.preorder[v],
                stats.preorder[p] + stats.subtree_size[p]);
    }
    ASSERT_GE(stats.preorder[v], 1);
    ASSERT_LE(stats.preorder[v], static_cast<NodeId>(n));
    ASSERT_FALSE(pre_seen[stats.preorder[v]]);  // preorder is a permutation
    pre_seen[stats.preorder[v]] = true;
  }
}

class EulerTourParam
    : public ::testing::TestWithParam<std::tuple<unsigned, NodeId, NodeId>> {
 protected:
  device::Context ctx_{std::get<0>(GetParam())};
  NodeId n_ = std::get<1>(GetParam());
  NodeId grasp_ = std::get<2>(GetParam());
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, EulerTourParam,
    ::testing::Combine(::testing::Values(1u, 3u),
                       ::testing::Values(NodeId{2}, NodeId{3}, NodeId{10},
                                         NodeId{100}, NodeId{2000}),
                       ::testing::Values(gen::kInfiniteGrasp, NodeId{1},
                                         NodeId{5})));

TEST_P(EulerTourParam, InvariantsAndStats) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ParentTree tree = gen::random_tree(n_, grasp_, seed);
    gen::scramble_ids(tree, seed + 100);
    ASSERT_TRUE(valid_parent_tree(tree));
    check_tour_invariants(ctx_, tree, RankAlgo::kWeiJaja);
  }
}

TEST(EulerTour, AllRankAlgosAgree) {
  const device::Context ctx(2);
  ParentTree tree = gen::random_tree(500, gen::kInfiniteGrasp, 9);
  const graph::EdgeList edges = tree_edges(tree);
  const EulerTour a = build_euler_tour(ctx, edges, tree.root, RankAlgo::kWeiJaja);
  const EulerTour b = build_euler_tour(ctx, edges, tree.root, RankAlgo::kWyllie);
  const EulerTour c =
      build_euler_tour(ctx, edges, tree.root, RankAlgo::kSequential);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.rank, c.rank);
  EXPECT_EQ(a.tour, b.tour);
}

TEST(EulerTour, PaperFigure1) {
  // Figure 1: root 0, children 2,3,4; node 2 has children 1,5. Preorders are
  // determined by sorted adjacency: 0,2,1,5,3,4 -> pre 1,3,2,4,5,6.
  const device::Context ctx = device::Context::sequential();
  graph::EdgeList tree;
  tree.num_nodes = 6;
  tree.edges = {{0, 2}, {2, 1}, {0, 3}, {0, 4}, {2, 5}};
  const EulerTour tour = build_euler_tour(ctx, tree, 0);
  const TreeStats stats = compute_tree_stats(ctx, tour);
  EXPECT_EQ(stats.preorder, (std::vector<NodeId>{1, 3, 2, 5, 6, 4}));
  EXPECT_EQ(stats.subtree_size, (std::vector<NodeId>{6, 1, 3, 1, 1, 1}));
  EXPECT_EQ(stats.level, (std::vector<NodeId>{0, 2, 1, 1, 1, 2}));
  EXPECT_EQ(stats.parent,
            (std::vector<NodeId>{kNoNode, 2, 0, 0, 0, 2}));
}

TEST(EulerTour, SingleNodeTree) {
  const device::Context ctx(2);
  graph::EdgeList tree;
  tree.num_nodes = 1;
  const EulerTour tour = build_euler_tour(ctx, tree, 0);
  EXPECT_EQ(tour.num_half_edges(), 0u);
  const TreeStats stats = compute_tree_stats(ctx, tour);
  EXPECT_EQ(stats.preorder[0], 1);
  EXPECT_EQ(stats.subtree_size[0], 1);
  EXPECT_EQ(stats.level[0], 0);
  EXPECT_EQ(stats.parent[0], kNoNode);
}

TEST(EulerTour, TwoNodeTree) {
  const device::Context ctx(2);
  graph::EdgeList tree;
  tree.num_nodes = 2;
  tree.edges = {{1, 0}};
  const EulerTour tour = build_euler_tour(ctx, tree, 0);
  const TreeStats stats = compute_tree_stats(ctx, tour);
  EXPECT_EQ(stats.preorder, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(stats.level, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(stats.parent, (std::vector<NodeId>{kNoNode, 0}));
}

TEST(EulerTour, PathRootedAtEnd) {
  const device::Context ctx(3);
  const NodeId n = 1000;
  graph::EdgeList tree;
  tree.num_nodes = n;
  for (NodeId v = 0; v + 1 < n; ++v) tree.edges.push_back({v, v + 1});
  const EulerTour tour = build_euler_tour(ctx, tree, 0);
  const TreeStats stats = compute_tree_stats(ctx, tour);
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(stats.level[v], v);
    ASSERT_EQ(stats.preorder[v], v + 1);
    ASSERT_EQ(stats.subtree_size[v], n - v);
  }
}

TEST(EulerTour, PathRootedInMiddle) {
  const device::Context ctx(2);
  const NodeId n = 101;
  graph::EdgeList tree;
  tree.num_nodes = n;
  for (NodeId v = 0; v + 1 < n; ++v) tree.edges.push_back({v, v + 1});
  const NodeId root = 50;
  const EulerTour tour = build_euler_tour(ctx, tree, root);
  const TreeStats stats = compute_tree_stats(ctx, tour);
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(stats.level[v], std::abs(v - root));
  }
  EXPECT_EQ(stats.subtree_size[root], n);
}

TEST(EulerTour, StarTree) {
  const device::Context ctx(2);
  const NodeId n = 500;
  graph::EdgeList tree;
  tree.num_nodes = n;
  for (NodeId v = 1; v < n; ++v) tree.edges.push_back({0, v});
  const EulerTour tour = build_euler_tour(ctx, tree, 0);
  const TreeStats stats = compute_tree_stats(ctx, tour);
  for (NodeId v = 1; v < n; ++v) {
    ASSERT_EQ(stats.level[v], 1);
    ASSERT_EQ(stats.subtree_size[v], 1);
    ASSERT_EQ(stats.parent[v], 0);
  }
}

TEST(EulerTour, RootTreeMatchesStats) {
  const device::Context ctx(2);
  ParentTree tree = gen::random_tree(3000, NodeId{20}, 31);
  gen::scramble_ids(tree, 32);
  const graph::EdgeList edges = tree_edges(tree);
  std::vector<NodeId> parent, level;
  root_tree(ctx, edges, tree.root, parent, level);
  EXPECT_EQ(parent, tree.parent);
  EXPECT_EQ(level, depths_reference(tree));
}

TEST(EulerTour, SuccForsmLinkedListVisitsAllEdges) {
  const device::Context ctx(1);
  ParentTree tree = gen::random_tree(200, gen::kInfiniteGrasp, 77);
  const graph::EdgeList edges = tree_edges(tree);
  const EulerTour tour = build_euler_tour(ctx, edges, tree.root);
  std::size_t count = 0;
  for (EdgeId e = tour.head; e != kNoEdge; e = tour.succ[e]) ++count;
  EXPECT_EQ(count, tour.num_half_edges());
}

TEST(EulerTour, FusedConstructionStaysWithinLaunchBudget) {
  // The construction is fused into: DCEL expand + key pack + id seed (1),
  // sort (1 histogram/max kernel + one scatter per radix pass + possible
  // copy-back), first_pos (1), the combined next/succ/tail link kernel (1),
  // Wei-JáJá (2), tour array (1). For 20k nodes the packed keys use 30
  // bits = 4 passes, so the whole pipeline fits in 11 launches; the unfused
  // seed shape needed 19+. Guards against kernel-count regressions.
  device::Context ctx(2);
  ParentTree tree = gen::random_tree(20'000, gen::kInfiniteGrasp, 5);
  const graph::EdgeList edges = tree_edges(tree);
  const std::uint64_t before = ctx.launch_count();
  const EulerTour tour = build_euler_tour(ctx, edges, tree.root);
  const std::uint64_t used = ctx.launch_count() - before;
  EXPECT_LE(used, 12u);
  EXPECT_EQ(tour.num_half_edges(), 2 * edges.edges.size());
}

TEST(ParentTreeValidation, DetectsCycle) {
  ParentTree bad;
  bad.root = 0;
  bad.parent = {kNoNode, 2, 1};  // 1 <-> 2 cycle
  EXPECT_FALSE(valid_parent_tree(bad));
}

TEST(ParentTreeValidation, DetectsOutOfRangeParent) {
  ParentTree bad;
  bad.root = 0;
  bad.parent = {kNoNode, 5};
  EXPECT_FALSE(valid_parent_tree(bad));
}

TEST(ParentTreeValidation, AcceptsValid) {
  ParentTree good;
  good.root = 2;
  good.parent = {2, 0, kNoNode};
  EXPECT_TRUE(valid_parent_tree(good));
}

}  // namespace
}  // namespace emc::core
