#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gen/graphs.hpp"
#include "gen/trees.hpp"
#include "io/io.hpp"

namespace emc::io {
namespace {

TEST(EdgeListIo, RoundTrip) {
  const graph::EdgeList g = gen::er_graph(50, 120, 1);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const auto back = read_edge_list(buffer);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value->num_nodes, g.num_nodes);
  EXPECT_EQ(back.value->edges, g.edges);
}

TEST(EdgeListIo, SkipsCommentsAndBlankLines) {
  std::stringstream in("# a comment\n\n3 2\n0 1\n# inline\n1 2\n");
  const auto g = read_edge_list(in);
  ASSERT_TRUE(g);
  EXPECT_EQ(g.value->num_nodes, 3);
  EXPECT_EQ(g.value->edges.size(), 2u);
}

TEST(EdgeListIo, RejectsMissingHeader) {
  std::stringstream in("0 1\n");
  const auto g = read_edge_list(in);
  // "0 1" parses as the header n=0 m=1 -> invalid n.
  EXPECT_FALSE(g);
}

TEST(EdgeListIo, RejectsOutOfRangeIds) {
  std::stringstream in("2 1\n0 5\n");
  const auto g = read_edge_list(in);
  ASSERT_FALSE(g);
  EXPECT_EQ(g.error.line, 2u);
}

TEST(EdgeListIo, RejectsEdgeCountMismatch) {
  std::stringstream in("3 5\n0 1\n");
  EXPECT_FALSE(read_edge_list(in));
}

TEST(EdgeListIo, RejectsEmptyInput) {
  std::stringstream in("");
  EXPECT_FALSE(read_edge_list(in));
}

TEST(DimacsIo, ParsesRoadFormat) {
  std::stringstream in(
      "c USA-road style file\n"
      "p sp 4 6\n"
      "a 1 2 100\n"
      "a 2 1 100\n"
      "a 2 3 50\n"
      "a 3 2 50\n"
      "a 3 4 10\n"
      "a 4 3 10\n");
  const auto g = read_dimacs(in);
  ASSERT_TRUE(g);
  EXPECT_EQ(g.value->num_nodes, 4);
  EXPECT_EQ(g.value->edges.size(), 6u);  // both directions kept; simplify later
  const auto simple = graph::simplified(*g.value);
  EXPECT_EQ(simple.edges.size(), 3u);
}

TEST(DimacsIo, RoundTrip) {
  const graph::EdgeList g = gen::cycle_graph(10);
  std::stringstream buffer;
  write_dimacs(buffer, g);
  const auto back = read_dimacs(buffer);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value->num_nodes, 10);
  EXPECT_EQ(graph::simplified(*back.value).edges.size(), 10u);
}

TEST(DimacsIo, RejectsArcBeforeHeader) {
  std::stringstream in("a 1 2 3\n");
  ASSERT_FALSE(read_dimacs(in));
}

TEST(DimacsIo, RejectsUnknownLineType) {
  std::stringstream in("p sp 2 1\nx 1 2\n");
  ASSERT_FALSE(read_dimacs(in));
}

TEST(DimacsIo, IgnoresSelfLoops) {
  std::stringstream in("p sp 2 2\na 1 1 5\na 1 2 5\n");
  const auto g = read_dimacs(in);
  ASSERT_TRUE(g);
  EXPECT_EQ(g.value->edges.size(), 1u);
}

TEST(SnapIo, RenumbersArbitraryIds) {
  std::stringstream in(
      "# SNAP-style\n"
      "1000000 42\n"
      "42 7\n"
      "7 1000000\n");
  const auto g = read_snap(in);
  ASSERT_TRUE(g);
  EXPECT_EQ(g.value->num_nodes, 3);
  EXPECT_EQ(g.value->edges.size(), 3u);
  EXPECT_TRUE(g.value->valid());
}

TEST(SnapIo, SkipsSelfLoops) {
  std::stringstream in("5 5\n5 6\n");
  const auto g = read_snap(in);
  ASSERT_TRUE(g);
  EXPECT_EQ(g.value->edges.size(), 1u);
}

TEST(SnapIo, RejectsGarbage) {
  std::stringstream in("hello world\n");
  EXPECT_FALSE(read_snap(in));
}

TEST(ParentTreeIo, RoundTrip) {
  core::ParentTree tree = gen::random_tree(100, NodeId{5}, 3);
  gen::scramble_ids(tree, 4);
  std::stringstream buffer;
  write_parent_tree(buffer, tree);
  const auto back = read_parent_tree(buffer);
  ASSERT_TRUE(back);
  EXPECT_EQ(back.value->root, tree.root);
  EXPECT_EQ(back.value->parent, tree.parent);
}

TEST(ParentTreeIo, RejectsCycle) {
  std::stringstream in("3 0\n-1 2 1\n");
  EXPECT_FALSE(read_parent_tree(in));
}

TEST(ParentTreeIo, RejectsRootWithParent) {
  std::stringstream in("2 0\n1 0\n");
  EXPECT_FALSE(read_parent_tree(in));
}

TEST(ParentTreeIo, RejectsShortInput) {
  std::stringstream in("5 0\n-1 0 0\n");
  EXPECT_FALSE(read_parent_tree(in));
}

TEST(LoadGraphFile, SniffsFormats) {
  // Write three temp files and load each through the sniffing loader.
  const graph::EdgeList g = gen::cycle_graph(6);
  {
    std::ofstream out("/tmp/emc_test_native.txt");
    write_edge_list(out, g);
  }
  {
    std::ofstream out("/tmp/emc_test_dimacs.gr");
    write_dimacs(out, g);
  }
  {
    std::ofstream out("/tmp/emc_test_snap.txt");
    out << "# snap\n";
    for (const auto& e : g.edges) out << e.u << ' ' << e.v << '\n';
  }
  const auto native = load_graph_file("/tmp/emc_test_native.txt");
  const auto dimacs = load_graph_file("/tmp/emc_test_dimacs.gr");
  const auto snap = load_graph_file("/tmp/emc_test_snap.txt");
  ASSERT_TRUE(native);
  ASSERT_TRUE(dimacs);
  ASSERT_TRUE(snap);
  EXPECT_EQ(native.value->edges.size(), 6u);
  EXPECT_EQ(graph::simplified(*dimacs.value).edges.size(), 6u);
  EXPECT_EQ(snap.value->edges.size(), 6u);
}

TEST(LoadGraphFile, MissingFileFails) {
  const auto result = load_graph_file("/tmp/does-not-exist-emc");
  ASSERT_FALSE(result);
  EXPECT_NE(result.error.message.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace emc::io
