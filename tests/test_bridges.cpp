#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bridges/bfs.hpp"
#include "bridges/cc_spanning.hpp"
#include "bridges/chaitanya_kothapalli.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/hybrid.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "bridges/two_ecc.hpp"
#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "support/reference.hpp"
#include "util/rng.hpp"

namespace emc::bridges {
namespace {

graph::EdgeList prepared(graph::EdgeList raw) {
  return graph::largest_component(graph::simplified(raw));
}

/// Asserts that all three parallel algorithms agree with the DFS baseline.
void expect_all_agree(const device::Context& ctx, const graph::EdgeList& g,
                      const char* label) {
  ASSERT_GE(g.num_nodes, 1) << label;
  const graph::Csr csr = build_csr(ctx, g);
  const BridgeMask dfs = find_bridges_dfs(csr);
  const BridgeMask tv = find_bridges_tarjan_vishkin(ctx, g);
  const BridgeMask ck = find_bridges_ck(ctx, g, csr);
  const BridgeMask hy = find_bridges_hybrid(ctx, g);
  ASSERT_EQ(tv, dfs) << label << ": TV disagrees with DFS";
  ASSERT_EQ(ck, dfs) << label << ": CK disagrees with DFS";
  ASSERT_EQ(hy, dfs) << label << ": hybrid disagrees with DFS";
}

class BridgesParam : public ::testing::TestWithParam<unsigned> {
 protected:
  device::Context ctx_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Workers, BridgesParam, ::testing::Values(1u, 4u));

TEST_P(BridgesParam, PathAllBridges) {
  const auto g = gen::path_graph(500);
  const graph::Csr csr = build_csr(ctx_, g);
  EXPECT_EQ(count_bridges(find_bridges_dfs(csr)), 499u);
  expect_all_agree(ctx_, g, "path");
}

TEST_P(BridgesParam, CycleNoBridges) {
  const auto g = gen::cycle_graph(500);
  EXPECT_EQ(count_bridges(find_bridges_tarjan_vishkin(ctx_, g)), 0u);
  expect_all_agree(ctx_, g, "cycle");
}

TEST_P(BridgesParam, StarAllBridges) {
  graph::EdgeList g;
  g.num_nodes = 200;
  for (NodeId v = 1; v < 200; ++v) g.edges.push_back({0, v});
  EXPECT_EQ(count_bridges(find_bridges_tarjan_vishkin(ctx_, g)), 199u);
  expect_all_agree(ctx_, g, "star");
}

TEST_P(BridgesParam, ParallelEdgeIsNeverABridge) {
  graph::EdgeList g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {0, 1}, {1, 2}};  // duplicated edge 0-1, bridge 1-2
  const graph::Csr csr = build_csr(ctx_, g);
  const BridgeMask dfs = find_bridges_dfs(csr);
  EXPECT_EQ(dfs[0], 0);
  EXPECT_EQ(dfs[1], 0);
  EXPECT_EQ(dfs[2], 1);
  expect_all_agree(ctx_, g, "parallel-edge");
}

TEST_P(BridgesParam, TwoTrianglesJoinedByBridge) {
  graph::EdgeList g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {2, 0},   // triangle A
             {3, 4}, {4, 5}, {5, 3},   // triangle B
             {2, 3}};                  // the bridge
  const BridgeMask tv = find_bridges_tarjan_vishkin(ctx_, g);
  EXPECT_EQ(count_bridges(tv), 1u);
  EXPECT_EQ(tv[6], 1);
  expect_all_agree(ctx_, g, "two-triangles");
}

TEST_P(BridgesParam, BarbellOfCliques) {
  // Two K5 cliques connected by a path of length 3: 2 path edges + the
  // connecting edges are bridges (3 total).
  graph::EdgeList g;
  g.num_nodes = 12;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) {
      g.edges.push_back({i, j});
      g.edges.push_back({static_cast<NodeId>(i + 5),
                         static_cast<NodeId>(j + 5)});
    }
  }
  g.edges.push_back({4, 10});
  g.edges.push_back({10, 11});
  g.edges.push_back({11, 5});
  const BridgeMask tv = find_bridges_tarjan_vishkin(ctx_, g);
  EXPECT_EQ(count_bridges(tv), 3u);
  expect_all_agree(ctx_, g, "barbell");
}

TEST_P(BridgesParam, RandomErSweep) {
  // Density sweep: m/n from 1.02 (many bridges) to 4 (few bridges).
  for (const double density : {1.02, 1.2, 2.0, 4.0}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto g = prepared(gen::er_graph(
          400, static_cast<std::size_t>(400 * density), seed * 31));
      if (g.num_nodes < 2) continue;
      expect_all_agree(ctx_, g, "er");
    }
  }
}

TEST_P(BridgesParam, RoadGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto g = prepared(gen::road_graph(25, 25, 0.65, 0.05, seed));
    if (g.num_nodes < 2) continue;
    expect_all_agree(ctx_, g, "road");
  }
}

TEST_P(BridgesParam, KroneckerGraphs) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const auto g = prepared(gen::kron_graph(9, 4, seed));
    if (g.num_nodes < 2) continue;
    expect_all_agree(ctx_, g, "kron");
  }
}

TEST_P(BridgesParam, TreeInputAllEdgesAreBridges) {
  // A tree given as a graph: every edge is a bridge.
  const auto g = prepared(gen::road_graph(30, 1, 1.0, 0.0, 5));
  const BridgeMask tv = find_bridges_tarjan_vishkin(ctx_, g);
  EXPECT_EQ(count_bridges(tv), g.edges.size());
  expect_all_agree(ctx_, g, "tree");
}

// ---------------------------------------------------------------- cc

TEST_P(BridgesParam, SpanningForestProperties) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = gen::er_graph(300, 500, seed * 7);
    const SpanningForest forest = cc_spanning_forest(ctx_, g);
    const auto ref_labels = graph::connected_component_labels(g);
    const std::size_t ref_components = graph::count_components(ref_labels);
    ASSERT_EQ(forest.num_components, ref_components);
    // Forest size: n - #components.
    ASSERT_EQ(forest.tree_edges.size(),
              static_cast<std::size_t>(g.num_nodes) - ref_components);
    // Labels agree with reference components (same partition).
    for (const auto& e : g.edges) {
      ASSERT_EQ(forest.component[e.u], forest.component[e.v]);
    }
    // Forest edges are acyclic: union-find over them never sees a cycle.
    std::vector<NodeId> uf(g.num_nodes);
    for (NodeId v = 0; v < g.num_nodes; ++v) uf[v] = v;
    auto find = [&](NodeId x) {
      while (uf[x] != x) x = uf[x] = uf[uf[x]];
      return x;
    };
    for (const EdgeId e : forest.tree_edges) {
      const NodeId a = find(g.edges[e].u);
      const NodeId b = find(g.edges[e].v);
      ASSERT_NE(a, b) << "cycle in spanning forest";
      uf[a] = b;
    }
  }
}

TEST_P(BridgesParam, SpanningForestDeterministic) {
  const auto g = gen::er_graph(500, 1200, 99);
  const SpanningForest a = cc_spanning_forest(ctx_, g);
  const SpanningForest b = cc_spanning_forest(ctx_, g);
  EXPECT_EQ(a.component, b.component);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
}

// ---------------------------------------------------------------- bfs

TEST_P(BridgesParam, BfsLevelsMatchSequential) {
  const auto g = prepared(gen::er_graph(400, 900, 3));
  const graph::Csr csr = build_csr(ctx_, g);
  const BfsTree tree = bfs(ctx_, csr, 0);
  // Shared sequential reference BFS.
  EXPECT_EQ(tree.level, test_support::bfs_levels(csr, 0));
  // Parent edges are consistent: level[parent] == level[v] - 1.
  for (NodeId v = 0; v < g.num_nodes; ++v) {
    if (v == 0) continue;
    ASSERT_EQ(tree.level[tree.parent[v]], tree.level[v] - 1);
    const graph::Edge e = g.edges[tree.parent_edge[v]];
    ASSERT_TRUE((e.u == v && e.v == tree.parent[v]) ||
                (e.v == v && e.u == tree.parent[v]));
  }
}

TEST_P(BridgesParam, BfsOnPathHasFullDepth) {
  const auto g = gen::path_graph(300);
  const graph::Csr csr = build_csr(ctx_, g);
  const BfsTree tree = bfs(ctx_, csr, 0);
  EXPECT_EQ(tree.num_levels, 300);
  EXPECT_EQ(tree.level[299], 299);
}

// ---------------------------------------------------------------- 2ecc

TEST_P(BridgesParam, TwoEccPartitionsByBridges) {
  graph::EdgeList g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}};
  const BridgeMask mask = find_bridges_tarjan_vishkin(ctx_, g);
  const auto labels = two_edge_components(ctx_, g, mask);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST_P(BridgesParam, TwoEccOfCycleIsOneComponent) {
  const auto g = gen::cycle_graph(100);
  const auto labels = two_edge_components(
      ctx_, g, find_bridges_tarjan_vishkin(ctx_, g));
  const std::set<NodeId> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 1u);
}

TEST_P(BridgesParam, TwoEccOfTreeIsAllSingletons) {
  const auto g = gen::path_graph(50);
  const auto labels =
      two_edge_components(ctx_, g, find_bridges_tarjan_vishkin(ctx_, g));
  const std::set<NodeId> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 50u);
}

TEST_P(BridgesParam, TwoEccSizesSumToN) {
  const auto g = prepared(gen::er_graph(300, 450, 17));
  const auto labels =
      two_edge_components(ctx_, g, find_bridges_tarjan_vishkin(ctx_, g));
  EXPECT_EQ(labels.size(), static_cast<std::size_t>(g.num_nodes));
}

// ------------------------------------------------------- phase breakdowns

TEST(BridgesPhases, TvReportsThreePhases) {
  const device::Context ctx(1);
  const auto g = prepared(gen::er_graph(200, 400, 1));
  util::PhaseTimer phases;
  find_bridges_tarjan_vishkin(ctx, g, &phases);
  std::vector<std::string> names;
  for (const auto& [name, secs] : phases.phases()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"spanning_tree", "euler_tour",
                                             "detect_bridges"}));
}

TEST(BridgesPhases, CkReportsBfsAndMark) {
  const device::Context ctx(1);
  const auto g = prepared(gen::er_graph(200, 400, 2));
  const graph::Csr csr = build_csr(ctx, g);
  util::PhaseTimer phases;
  find_bridges_ck(ctx, g, csr, &phases);
  std::vector<std::string> names;
  for (const auto& [name, secs] : phases.phases()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"bfs", "mark_non_bridges"}));
}

TEST(BridgesPhases, HybridReportsFourPhases) {
  const device::Context ctx(1);
  const auto g = prepared(gen::er_graph(200, 400, 3));
  util::PhaseTimer phases;
  find_bridges_hybrid(ctx, g, &phases);
  std::vector<std::string> names;
  for (const auto& [name, secs] : phases.phases()) names.push_back(name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"spanning_tree", "euler_tour",
                                      "levels_and_parents",
                                      "mark_non_bridges"}));
}

TEST(Bridges, LargeRandomStress) {
  const device::Context ctx(4);
  const auto g = prepared(gen::er_graph(20'000, 30'000, 11));
  expect_all_agree(ctx, g, "large-er");
}

TEST(Bridges, LargeRoadStress) {
  const device::Context ctx(4);
  const auto g = prepared(gen::road_graph(120, 120, 0.6, 0.03, 13));
  expect_all_agree(ctx, g, "large-road");
}

}  // namespace
}  // namespace emc::bridges
