#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/euler_tour.hpp"
#include "core/tree.hpp"
#include "core/tree_ops.hpp"
#include "device/context.hpp"
#include "gen/trees.hpp"
#include "util/rng.hpp"

namespace emc::core {
namespace {

struct Fixture {
  ParentTree tree;
  EulerTour tour;
  TreeStats stats;
  device::Context ctx;

  Fixture(NodeId n, NodeId grasp, std::uint64_t seed, unsigned workers)
      : ctx(workers) {
    tree = gen::random_tree(n, grasp, seed);
    gen::scramble_ids(tree, seed + 1);
    tour = build_euler_tour(ctx, tree_edges(tree), tree.root);
    stats = compute_tree_stats(ctx, tour);
  }
};

class TreeOpsParam
    : public ::testing::TestWithParam<std::tuple<unsigned, NodeId, NodeId>> {
 protected:
  Fixture fx_{std::get<1>(GetParam()), std::get<2>(GetParam()),
              std::get<1>(GetParam()) * 7ull, std::get<0>(GetParam())};
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeOpsParam,
    ::testing::Combine(::testing::Values(1u, 3u),
                       ::testing::Values(NodeId{2}, NodeId{50}, NodeId{1000},
                                         NodeId{5000}),
                       ::testing::Values(gen::kInfiniteGrasp, NodeId{1},
                                         NodeId{8})));

TEST_P(TreeOpsParam, PostorderIsValidAndConsistent) {
  const auto post = postorder_numbers(fx_.ctx, fx_.tour);
  const NodeId n = fx_.tree.num_nodes();
  // Permutation of 1..n; root is last; every node after all its children;
  // postorder(v) = preorder(v) + size(v) - depth-corrected... we check the
  // defining property instead: post(v) >= post(c) + 1 for children c, and
  // the interval [post(v) - size(v) + 1, post(v)] is exactly v's subtree.
  std::vector<bool> seen(n + 1, false);
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_GE(post[v], 1);
    ASSERT_LE(post[v], n);
    ASSERT_FALSE(seen[post[v]]);
    seen[post[v]] = true;
  }
  EXPECT_EQ(post[fx_.tree.root], n);
  for (NodeId v = 0; v < n; ++v) {
    if (v == fx_.tree.root) continue;
    const NodeId p = fx_.tree.parent[v];
    EXPECT_LT(post[v], post[p]);
    // Subtree of v occupies a contiguous postorder interval ending at v.
    EXPECT_GE(post[v], fx_.stats.subtree_size[v]);
  }
}

TEST_P(TreeOpsParam, SubtreeSumsMatchReference) {
  const NodeId n = fx_.tree.num_nodes();
  util::Rng rng(99);
  std::vector<std::int64_t> value(n);
  for (auto& v : value) v = static_cast<std::int64_t>(rng.below(1000)) - 500;
  const auto sums = subtree_sums(fx_.ctx, fx_.tour, fx_.stats, value);

  // Reference: accumulate children into parents by decreasing depth.
  std::vector<std::int64_t> expected(value.begin(), value.end());
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return fx_.stats.level[a] > fx_.stats.level[b];
  });
  for (const NodeId v : order) {
    if (v != fx_.tree.root) expected[fx_.tree.parent[v]] += expected[v];
  }
  for (NodeId v = 0; v < n; ++v) ASSERT_EQ(sums[v], expected[v]) << v;
}

TEST_P(TreeOpsParam, LeafCountsMatchReference) {
  const NodeId n = fx_.tree.num_nodes();
  const auto counts = subtree_leaf_counts(fx_.ctx, fx_.tour, fx_.stats);
  std::vector<NodeId> expected(n, 0);
  std::vector<bool> has_child(n, false);
  for (NodeId v = 0; v < n; ++v) {
    if (v != fx_.tree.root) has_child[fx_.tree.parent[v]] = true;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (has_child[v]) continue;
    for (NodeId u = v; ; u = fx_.tree.parent[u]) {
      ++expected[u];
      if (u == fx_.tree.root) break;
    }
  }
  EXPECT_EQ(counts, expected);
  // The root counts every leaf.
  NodeId leaves = 0;
  for (NodeId v = 0; v < n; ++v) leaves += has_child[v] ? 0 : 1;
  EXPECT_EQ(counts[fx_.tree.root], leaves);
}

TEST_P(TreeOpsParam, AncestorOracleMatchesClimbing) {
  const NodeId n = fx_.tree.num_nodes();
  const AncestorOracle oracle(fx_.stats);
  util::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const NodeId a = static_cast<NodeId>(rng.below(n));
    const NodeId b = static_cast<NodeId>(rng.below(n));
    bool expected = false;
    for (NodeId u = b; ; u = fx_.tree.parent[u]) {
      if (u == a) {
        expected = true;
        break;
      }
      if (u == fx_.tree.root) break;
    }
    ASSERT_EQ(oracle.is_ancestor(a, b), expected) << a << " " << b;
  }
  // Everyone is their own ancestor; the root is everyone's.
  const NodeId v = static_cast<NodeId>(rng.below(n));
  EXPECT_TRUE(oracle.is_ancestor(v, v));
  EXPECT_TRUE(oracle.is_ancestor(fx_.tree.root, v));
}

TEST_P(TreeOpsParam, HeavyChildrenAreHeaviest) {
  const NodeId n = fx_.tree.num_nodes();
  const auto heavy = heavy_children(fx_.ctx, fx_.tour, fx_.stats);
  // Reference max per parent.
  std::vector<NodeId> best_size(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (v == fx_.tree.root) continue;
    const NodeId p = fx_.tree.parent[v];
    best_size[p] = std::max(best_size[p], fx_.stats.subtree_size[v]);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (best_size[v] == 0) {
      ASSERT_EQ(heavy[v], kNoNode) << "leaf " << v;
    } else {
      ASSERT_NE(heavy[v], kNoNode);
      ASSERT_EQ(fx_.tree.parent[heavy[v]], v);
      ASSERT_EQ(fx_.stats.subtree_size[heavy[v]], best_size[v]);
    }
  }
}

TEST(TreeOps, SingleNode) {
  const device::Context ctx(1);
  graph::EdgeList edges;
  edges.num_nodes = 1;
  const EulerTour tour = build_euler_tour(ctx, edges, 0);
  const TreeStats stats = compute_tree_stats(ctx, tour);
  EXPECT_EQ(postorder_numbers(ctx, tour), std::vector<NodeId>{1});
  EXPECT_EQ(subtree_sums(ctx, tour, stats, {42}), std::vector<std::int64_t>{42});
  EXPECT_EQ(subtree_leaf_counts(ctx, tour, stats), std::vector<NodeId>{1});
  EXPECT_EQ(heavy_children(ctx, tour, stats), std::vector<NodeId>{kNoNode});
}

TEST(TreeOps, PathPostorderReversesPreorder) {
  const device::Context ctx(2);
  const NodeId n = 500;
  graph::EdgeList edges;
  edges.num_nodes = n;
  for (NodeId v = 0; v + 1 < n; ++v) edges.edges.push_back({v, v + 1});
  const EulerTour tour = build_euler_tour(ctx, edges, 0);
  const auto post = postorder_numbers(ctx, tour);
  for (NodeId v = 0; v < n; ++v) ASSERT_EQ(post[v], n - v);
}

}  // namespace
}  // namespace emc::core
