#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/tree.hpp"
#include "device/context.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/naive.hpp"
#include "lca/rmq_lca.hpp"
#include "util/rng.hpp"

namespace emc::lca {
namespace {

/// Brute-force LCA by climbing with reference depths.
class BruteLca {
 public:
  explicit BruteLca(const core::ParentTree& tree)
      : parent_(tree.parent), depth_(core::depths_reference(tree)) {}

  NodeId query(NodeId x, NodeId y) const {
    while (depth_[x] > depth_[y]) x = parent_[x];
    while (depth_[y] > depth_[x]) y = parent_[y];
    while (x != y) {
      x = parent_[x];
      y = parent_[y];
    }
    return x;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> depth_;
};

struct LcaCase {
  NodeId n;
  NodeId grasp;
  std::uint64_t seed;
};

class LcaAllAlgorithms : public ::testing::TestWithParam<LcaCase> {};

INSTANTIATE_TEST_SUITE_P(
    TreeShapes, LcaAllAlgorithms,
    ::testing::Values(LcaCase{1, gen::kInfiniteGrasp, 1},
                      LcaCase{2, gen::kInfiniteGrasp, 2},
                      LcaCase{3, 1, 3},
                      LcaCase{10, gen::kInfiniteGrasp, 4},
                      LcaCase{10, 1, 5},
                      LcaCase{100, gen::kInfiniteGrasp, 6},
                      LcaCase{100, 3, 7},
                      LcaCase{1000, gen::kInfiniteGrasp, 8},
                      LcaCase{1000, 1, 9},      // a path
                      LcaCase{1000, 10, 10},    // deep
                      LcaCase{1000, 100, 11},
                      LcaCase{5000, gen::kInfiniteGrasp, 12},
                      LcaCase{5000, 50, 13},
                      LcaCase{20000, gen::kInfiniteGrasp, 14},
                      LcaCase{20000, 200, 15}));

TEST_P(LcaAllAlgorithms, AgreeWithBruteForce) {
  const auto [n, grasp, seed] = GetParam();
  core::ParentTree tree = gen::random_tree(n, grasp, seed);
  gen::scramble_ids(tree, seed + 1000);
  ASSERT_TRUE(core::valid_parent_tree(tree));

  const device::Context ctx(2);
  const BruteLca brute(tree);
  const InlabelLca inlabel_par = InlabelLca::build_parallel(ctx, tree);
  const InlabelLca inlabel_seq = InlabelLca::build_sequential(tree);
  const NaiveLca naive = NaiveLca::build(ctx, tree);
  const RmqLca rmq = RmqLca::build(tree);

  const auto queries = gen::random_queries(n, 300, seed + 2000);
  for (const auto& [x, y] : queries) {
    const NodeId expected = brute.query(x, y);
    ASSERT_EQ(inlabel_par.query(x, y), expected)
        << "inlabel_par lca(" << x << "," << y << ")";
    ASSERT_EQ(inlabel_seq.query(x, y), expected)
        << "inlabel_seq lca(" << x << "," << y << ")";
    ASSERT_EQ(naive.query(x, y), expected)
        << "naive lca(" << x << "," << y << ")";
    ASSERT_EQ(rmq.query(x, y), expected)
        << "rmq lca(" << x << "," << y << ")";
  }
}

TEST_P(LcaAllAlgorithms, SelfAndAncestorQueries) {
  const auto [n, grasp, seed] = GetParam();
  core::ParentTree tree = gen::random_tree(n, grasp, seed);
  gen::scramble_ids(tree, seed + 1);
  const device::Context ctx(1);
  const InlabelLca inlabel = InlabelLca::build_parallel(ctx, tree);
  util::Rng rng(seed + 2);
  for (int i = 0; i < 100; ++i) {
    const NodeId v = static_cast<NodeId>(rng.below(n));
    // lca(v, v) == v.
    ASSERT_EQ(inlabel.query(v, v), v);
    // lca(v, ancestor) == ancestor.
    NodeId a = v;
    for (int hop = 0; hop < 3 && tree.parent[a] != kNoNode; ++hop) {
      a = tree.parent[a];
    }
    ASSERT_EQ(inlabel.query(v, a), a);
    ASSERT_EQ(inlabel.query(a, v), a);  // symmetric
  }
  // lca with the root is the root.
  const NodeId v = static_cast<NodeId>(rng.below(n));
  ASSERT_EQ(inlabel.query(v, tree.root), tree.root);
}

TEST(Lca, ScaleFreeTrees) {
  const device::Context ctx(2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    core::ParentTree tree = gen::barabasi_albert_tree(3000, seed);
    gen::scramble_ids(tree, seed + 50);
    const BruteLca brute(tree);
    const InlabelLca inlabel = InlabelLca::build_parallel(ctx, tree);
    const NaiveLca naive = NaiveLca::build(ctx, tree);
    const auto queries = gen::random_queries(3000, 200, seed + 60);
    for (const auto& [x, y] : queries) {
      const NodeId expected = brute.query(x, y);
      ASSERT_EQ(inlabel.query(x, y), expected);
      ASSERT_EQ(naive.query(x, y), expected);
    }
  }
}

TEST(Lca, BatchMatchesScalarQueries) {
  const device::Context ctx(3);
  core::ParentTree tree = gen::random_tree(5000, NodeId{30}, 21);
  gen::scramble_ids(tree, 22);
  const InlabelLca inlabel = InlabelLca::build_parallel(ctx, tree);
  const NaiveLca naive = NaiveLca::build(ctx, tree);
  const auto queries = gen::random_queries(5000, 10'000, 23);
  std::vector<NodeId> batch_inlabel, batch_naive;
  inlabel.query_batch(ctx, queries, batch_inlabel);
  naive.query_batch(ctx, queries, batch_naive);
  ASSERT_EQ(batch_inlabel.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(batch_inlabel[q], inlabel.query(queries[q].first, queries[q].second));
    ASSERT_EQ(batch_naive[q], batch_inlabel[q]);
  }
}

TEST(Lca, NaiveJumpBatchingVariantsAgree) {
  const device::Context ctx(2);
  core::ParentTree tree = gen::random_tree(4000, NodeId{7}, 31);
  gen::scramble_ids(tree, 32);
  const auto expected = core::depths_reference(tree);
  for (const int jumps : {2, 3, 5, 8}) {
    const NaiveLca naive = NaiveLca::build(ctx, tree, jumps);
    ASSERT_EQ(naive.levels(), expected) << "jumps_per_round=" << jumps;
  }
}

TEST(Lca, InlabelLevelsMatchReference) {
  const device::Context ctx(2);
  core::ParentTree tree = gen::random_tree(2000, NodeId{4}, 41);
  gen::scramble_ids(tree, 42);
  const InlabelLca par = InlabelLca::build_parallel(ctx, tree);
  const InlabelLca seq = InlabelLca::build_sequential(tree);
  const auto expected = core::depths_reference(tree);
  EXPECT_EQ(par.levels(), expected);
  EXPECT_EQ(seq.levels(), expected);
}

TEST(Lca, PathTreeEndToEnd) {
  // Worst case for naive: a path. lca(u, v) is the one closer to the root.
  const NodeId n = 2000;
  core::ParentTree tree;
  tree.root = 0;
  tree.parent.assign(n, kNoNode);
  for (NodeId v = 1; v < n; ++v) tree.parent[v] = v - 1;
  const device::Context ctx(1);
  const InlabelLca inlabel = InlabelLca::build_parallel(ctx, tree);
  const NaiveLca naive = NaiveLca::build(ctx, tree);
  EXPECT_EQ(inlabel.query(0, n - 1), 0);
  EXPECT_EQ(inlabel.query(n - 1, n - 2), n - 2);
  EXPECT_EQ(inlabel.query(500, 1500), 500);
  EXPECT_EQ(naive.query(500, 1500), 500);
}

TEST(Lca, StarTree) {
  const NodeId n = 1000;
  core::ParentTree tree;
  tree.root = 0;
  tree.parent.assign(n, 0);
  tree.parent[0] = kNoNode;
  const device::Context ctx(2);
  const InlabelLca inlabel = InlabelLca::build_parallel(ctx, tree);
  EXPECT_EQ(inlabel.query(1, 2), 0);
  EXPECT_EQ(inlabel.query(999, 1), 0);
  EXPECT_EQ(inlabel.query(5, 5), 5);
  EXPECT_EQ(inlabel.query(0, 7), 0);
}

TEST(Lca, CompleteBinaryTree) {
  // Heap-indexed complete binary tree: lca has a closed form.
  const NodeId n = 4095;
  core::ParentTree tree;
  tree.root = 0;
  tree.parent.assign(n, kNoNode);
  for (NodeId v = 1; v < n; ++v) tree.parent[v] = (v - 1) / 2;
  const device::Context ctx(2);
  const InlabelLca inlabel = InlabelLca::build_parallel(ctx, tree);
  const BruteLca brute(tree);
  util::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const NodeId x = static_cast<NodeId>(rng.below(n));
    const NodeId y = static_cast<NodeId>(rng.below(n));
    ASSERT_EQ(inlabel.query(x, y), brute.query(x, y));
  }
}

TEST(Lca, CaterpillarTree) {
  // Spine 0-1-...-499 with a leaf hanging off each spine node: stresses the
  // inlabel path decomposition with many short paths.
  const NodeId spine = 500;
  core::ParentTree tree;
  tree.root = 0;
  tree.parent.assign(2 * spine, kNoNode);
  for (NodeId v = 1; v < spine; ++v) tree.parent[v] = v - 1;
  for (NodeId v = 0; v < spine; ++v) tree.parent[spine + v] = v;
  const device::Context ctx(2);
  const InlabelLca inlabel = InlabelLca::build_parallel(ctx, tree);
  const BruteLca brute(tree);
  util::Rng rng(10);
  for (int i = 0; i < 500; ++i) {
    const NodeId x = static_cast<NodeId>(rng.below(2 * spine));
    const NodeId y = static_cast<NodeId>(rng.below(2 * spine));
    ASSERT_EQ(inlabel.query(x, y), brute.query(x, y));
  }
}

TEST(Lca, ParallelAndSequentialInlabelAgreeEverywhere) {
  const device::Context ctx(3);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    core::ParentTree tree = gen::random_tree(300, NodeId{6}, seed);
    gen::scramble_ids(tree, seed + 7);
    const InlabelLca par = InlabelLca::build_parallel(ctx, tree);
    const InlabelLca seq = InlabelLca::build_sequential(tree);
    // Exhaustive n^2 queries on this small tree.
    for (NodeId x = 0; x < 300; ++x) {
      for (NodeId y = x; y < 300; y += 7) {
        ASSERT_EQ(par.query(x, y), seq.query(x, y)) << x << "," << y;
      }
    }
  }
}

}  // namespace
}  // namespace emc::lca
