// Shared from-scratch reference implementations for differential testing.
//
// Every fuzz/differential suite checks a device pipeline against an
// independent sequential recompute. The references here — union-find
// connectivity, DFS-bridge-based 2ecc labels, BFS reachability, and the
// full oracle reference built from them — used to be duplicated across
// test_dynamic.cpp and test_fuzz.cpp; they live here once so all suites
// (and future ones) diff against the same ground truth. Nothing in this
// header shares code with the device pipelines it checks, except the
// sequential DFS bridge finder, which is itself a paper baseline.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "bridges/dfs_bridges.hpp"
#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace emc::test_support {

/// Minimal sequential union-find (path halving, no ranks) — the
/// connectivity reference. Deliberately unrelated to device::uf_*.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t v = 0; v < n; ++v) parent_[v] = static_cast<NodeId>(v);
  }

  NodeId find(NodeId x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }

  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<NodeId> parent_;
};

/// Connected-component label per node (a representative node id) by
/// union-find over the edge list.
inline std::vector<NodeId> cc_labels(const graph::EdgeList& g) {
  UnionFind uf(static_cast<std::size_t>(g.num_nodes));
  for (const graph::Edge& e : g.edges) uf.unite(e.u, e.v);
  std::vector<NodeId> label(static_cast<std::size_t>(g.num_nodes));
  for (NodeId v = 0; v < g.num_nodes; ++v) label[v] = uf.find(v);
  return label;
}

/// 2-edge-connected-component label per node: union-find over the
/// non-bridge edges of `mask` (which must align with g.edges).
inline std::vector<NodeId> two_ecc_labels(const graph::EdgeList& g,
                                          const bridges::BridgeMask& mask) {
  UnionFind uf(static_cast<std::size_t>(g.num_nodes));
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    if (!mask[e]) uf.unite(g.edges[e].u, g.edges[e].v);
  }
  std::vector<NodeId> label(static_cast<std::size_t>(g.num_nodes));
  for (NodeId v = 0; v < g.num_nodes; ++v) label[v] = uf.find(v);
  return label;
}

/// BFS levels from `source`; kNoNode for unreachable nodes — the
/// reachability/level reference for the device BFS and block-tree walks.
inline std::vector<NodeId> bfs_levels(const graph::Csr& csr, NodeId source) {
  std::vector<NodeId> dist(static_cast<std::size_t>(csr.num_nodes), kNoNode);
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (EdgeId i = csr.row_offsets[u]; i < csr.row_offsets[u + 1]; ++i) {
      const NodeId v = csr.neighbors[i];
      if (dist[v] == kNoNode) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

/// Sequential iterative Hopcroft–Tarjan vertex biconnectivity: per-edge
/// block labels, articulation mask, and per-vertex block membership. The
/// classical edge-stack DFS — deliberately nothing like the bulk
/// Tarjan-Vishkin pipeline in src/bcc it checks. Handles disconnected
/// inputs (fresh DFS per component), multigraphs (the parent skip is by
/// edge id, so a parallel edge counts as a back edge and glues its
/// endpoints into one block), and self-loops (excluded: they belong to no
/// block, mirroring edge_block == kNoNode in the device pipeline).
struct ReferenceBcc {
  std::vector<NodeId> edge_block;            // kNoNode for self-loops
  std::vector<std::uint8_t> is_articulation; // member of >= 2 blocks
  std::vector<std::vector<NodeId>> vertex_blocks;  // sorted, unique
  std::size_t num_blocks = 0;

  explicit ReferenceBcc(const graph::EdgeList& g) {
    const auto n = static_cast<std::size_t>(g.num_nodes);
    const std::size_t m = g.edges.size();
    edge_block.assign(m, kNoNode);
    is_articulation.assign(n, 0);
    vertex_blocks.assign(n, {});
    std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(n);
    for (std::size_t e = 0; e < m; ++e) {
      const auto [u, v] = g.edges[e];
      if (u == v) continue;
      adj[u].push_back({v, static_cast<EdgeId>(e)});
      adj[v].push_back({u, static_cast<EdgeId>(e)});
    }

    struct Frame {
      NodeId v;
      EdgeId via;        // edge used to enter v (kNoEdge at a root)
      std::size_t next;  // cursor into adj[v]
      NodeId children;   // tree children seen so far
    };
    std::vector<NodeId> disc(n, kNoNode), low(n, 0);
    std::vector<EdgeId> estack;
    std::vector<Frame> stack;
    NodeId time = 0;
    for (NodeId root = 0; root < g.num_nodes; ++root) {
      if (disc[root] != kNoNode) continue;
      disc[root] = low[root] = time++;
      stack.push_back({root, kNoEdge, 0, 0});
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next < adj[f.v].size()) {
          const auto [w, e] = adj[f.v][f.next++];
          if (e == f.via) continue;  // the one entering edge, by id
          if (disc[w] == kNoNode) {
            estack.push_back(e);
            disc[w] = low[w] = time++;
            ++f.children;
            stack.push_back({w, e, 0, 0});
          } else if (disc[w] < disc[f.v]) {
            estack.push_back(e);  // back edge (its reverse view is skipped)
            low[f.v] = std::min(low[f.v], disc[w]);
          }
          continue;
        }
        const Frame done = f;
        stack.pop_back();
        if (stack.empty()) continue;  // component finished; estack is empty
        Frame& p = stack.back();
        low[p.v] = std::min(low[p.v], low[done.v]);
        if (low[done.v] >= disc[p.v]) {
          // done's subtree hangs off p through no back edge: flush one block.
          const auto b = static_cast<NodeId>(num_blocks++);
          EdgeId e = kNoEdge;
          do {
            e = estack.back();
            estack.pop_back();
            edge_block[e] = b;
          } while (e != done.via);
        }
      }
    }

    for (std::size_t e = 0; e < m; ++e) {
      if (edge_block[e] == kNoNode) continue;
      vertex_blocks[g.edges[e].u].push_back(edge_block[e]);
      vertex_blocks[g.edges[e].v].push_back(edge_block[e]);
    }
    for (std::size_t v = 0; v < n; ++v) {
      auto& blocks = vertex_blocks[v];
      std::sort(blocks.begin(), blocks.end());
      blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
      is_articulation[v] = blocks.size() >= 2 ? 1 : 0;
    }
  }

  /// Do u and v share a biconnected block? (u == v counts as yes, the
  /// same convention BccIndex::same_bcc uses.)
  bool same_bcc(NodeId u, NodeId v) const {
    if (u == v) return true;
    const auto& a = vertex_blocks[u];
    const auto& b = vertex_blocks[v];
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] == b[j]) return true;
      a[i] < b[j] ? ++i : ++j;
    }
    return false;
  }
};

/// From-scratch recompute reference for every ConnectivityOracle query:
/// DFS bridges, union-find cc/2ecc labels, and BFS distances over the
/// contracted block graph. Shares no code with the oracle's device
/// pipeline.
struct ReferenceOracle {
  std::vector<NodeId> cc;         // connected component label
  std::vector<NodeId> comp;       // 2ecc label
  std::vector<NodeId> comp_size;  // per node: size of its 2ecc component
  std::vector<std::vector<NodeId>> block_adj;  // bridge adjacency over comps
  std::size_t num_bridges = 0;

  ReferenceOracle(const device::Context& ctx, const graph::EdgeList& g) {
    const auto n = static_cast<std::size_t>(g.num_nodes);
    const graph::Csr csr = graph::build_csr(ctx, g);
    const bridges::BridgeMask mask = bridges::find_bridges_dfs(csr);
    num_bridges = bridges::count_bridges(mask);
    cc = cc_labels(g);
    comp = two_ecc_labels(g, mask);
    comp_size.assign(n, 0);
    std::vector<NodeId> count(n, 0);
    for (std::size_t v = 0; v < n; ++v) ++count[comp[v]];
    for (std::size_t v = 0; v < n; ++v) comp_size[v] = count[comp[v]];
    block_adj.assign(n, {});
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      if (mask[e]) {
        block_adj[comp[g.edges[e].u]].push_back(comp[g.edges[e].v]);
        block_adj[comp[g.edges[e].v]].push_back(comp[g.edges[e].u]);
      }
    }
  }

  NodeId bridges_on_path(NodeId u, NodeId v) const {
    if (cc[u] != cc[v]) return kNoNode;
    if (comp[u] == comp[v]) return 0;
    std::vector<NodeId> dist(block_adj.size(), kNoNode);
    std::queue<NodeId> queue;
    dist[comp[u]] = 0;
    queue.push(comp[u]);
    while (!queue.empty()) {
      const NodeId b = queue.front();
      queue.pop();
      if (b == comp[v]) return dist[b];
      for (const NodeId next : block_adj[b]) {
        if (dist[next] == kNoNode) {
          dist[next] = dist[b] + 1;
          queue.push(next);
        }
      }
    }
    return kNoNode;  // unreachable: same cc implies a block path exists
  }
};

}  // namespace emc::test_support
