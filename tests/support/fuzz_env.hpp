// Seed-replayable fuzzing support.
//
// Every fuzz suite draws its seed and round count through here so a CI
// failure is reproducible locally:
//
//   EMC_FUZZ_SEED=<n>    — replaces the suite's default seed
//   EMC_FUZZ_ROUNDS=<n>  — replaces the suite's default round count
//
// Both use the strict EMC_* parsing policy of util/env.hpp: the value is
// taken only when it parses completely as an integer inside the knob's sane
// range; empty, non-numeric, trailing junk, or out-of-range values fall
// back to the default, so a typo in a job script degrades to the stock run
// instead of silently fuzzing nothing.
//
// On a mismatch, suites print the failing seed plus the batch script that
// led to it (BatchScript below), so the exact failing update sequence can be
// replayed or turned into a regression test.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/env.hpp"

namespace emc::test_support {

/// The shared strict env parse (one policy for every EMC_* knob).
using util::env_int_or;

/// Fuzz seed: EMC_FUZZ_SEED override, any non-negative 63-bit value.
inline std::uint64_t fuzz_seed(std::uint64_t def) {
  return static_cast<std::uint64_t>(env_int_or(
      "EMC_FUZZ_SEED", static_cast<std::int64_t>(def), 0,
      std::numeric_limits<std::int64_t>::max()));
}

/// Fuzz round count: EMC_FUZZ_ROUNDS override, [1, 10^7] (the extended-CI
/// job raises it; anything past 10^7 is assumed to be a typo).
inline int fuzz_rounds(int def) {
  return static_cast<int>(env_int_or("EMC_FUZZ_ROUNDS", def, 1, 10'000'000));
}

/// The resolved knobs of one fuzz test, plus the ready-made replay line to
/// hand to SCOPED_TRACE (hoisted above the round loop — the message is
/// loop-invariant).
struct FuzzRun {
  std::uint64_t seed;
  int rounds;
  std::string trace;
};

inline FuzzRun fuzz_run(std::uint64_t default_seed, int default_rounds) {
  FuzzRun run{fuzz_seed(default_seed), fuzz_rounds(default_rounds), {}};
  run.trace = "replay with EMC_FUZZ_SEED=" + std::to_string(run.seed) +
              " EMC_FUZZ_ROUNDS=" + std::to_string(run.rounds);
  return run;
}

/// Accumulates a human-readable script of the update batches a fuzz run
/// applied, for printing next to the seed when a round fails.
class BatchScript {
 public:
  void add(int round, const char* op, const std::vector<graph::Edge>& batch) {
    script_ += "round " + std::to_string(round) + ": " + op + " {";
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i > 0) script_ += ", ";
      script_ += std::to_string(batch[i].u) + "-" + std::to_string(batch[i].v);
    }
    script_ += "}\n";
  }

  /// The replay header + script to print on mismatch.
  std::string replay(std::uint64_t seed, int rounds) const {
    return "fuzz mismatch — replay with EMC_FUZZ_SEED=" +
           std::to_string(seed) + " EMC_FUZZ_ROUNDS=" +
           std::to_string(rounds) + "\nbatch script so far:\n" + script_;
  }

 private:
  std::string script_;
};

}  // namespace emc::test_support
