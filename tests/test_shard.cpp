// emc::shard — K-shard partitioned graphs behind the routing façade.
//
// The core claim under test is the STITCH: per-shard 2-ecc block trees plus
// the boundary set compose into exact global connectivity answers. The
// differential fuzz drives a multi-producer update stream through a
// ShardedGraph and compares every answer family (Same2Ecc, ComponentSize,
// BridgesOnPath, bridge/block/component counts) against an UNSHARDED
// engine::Session over the same canonical edge set AND the sequential
// ReferenceOracle, at every epoch vector it quiesces. Deterministic corner
// cases pin the cross-shard shapes that make stitching subtle: a boundary
// edge that IS a bridge, boundary edges closing a cycle across three
// shards, parallel summary edges demoting each other, and shards that own
// zero vertices. ShardFailpoints pins the per-shard isolation story:
// publish faults on one shard leave the other shards serving fresh epochs.
#include "shard/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>
#include <vector>

#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "support/fuzz_env.hpp"
#include "support/reference.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace emc::shard {
namespace {

using namespace std::chrono_literals;

ingest::Update make_update(NodeId u, NodeId v, ingest::UpdateKind kind,
                           std::uint32_t producer = 0) {
  return {graph::Edge{u, v}, kind, producer, 0};
}

/// Small, fast fleet: 1 device worker per shard, publish every batch, no
/// linger — every flush() leaves each shard's serving view at its applied
/// epoch, so the epoch vector is deterministic per quiesce point.
ShardedOptions fast_options(std::size_t shards) {
  ShardedOptions opts;
  opts.shards = shards;
  opts.shard_workers = 1;
  opts.ingest.admission = ingest::Admission::kBlock;
  opts.ingest.max_batch = 8;
  opts.ingest.linger = std::chrono::microseconds(0);
  opts.ingest.publish_every = 1;
  opts.dispatch.workers = 1;
  return opts;
}

graph::EdgeList edges_from_keys(NodeId n,
                                const std::unordered_set<std::uint64_t>& keys) {
  graph::EdgeList g;
  g.num_nodes = n;
  std::vector<std::uint64_t> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  for (const std::uint64_t key : sorted) {
    g.edges.push_back({static_cast<NodeId>(key >> 32),
                       static_cast<NodeId>(key & 0xffffffffu)});
  }
  return g;
}

/// Differential check of one pinned ShardedView against an unsharded
/// Session on the same edge set and the sequential reference.
void expect_matches(engine::Engine& engine, const ShardedView& view,
                    const graph::EdgeList& expected) {
  const NodeId n = expected.num_nodes;
  engine::Session session = engine.session(expected);
  const test_support::ReferenceOracle ref(engine.device(), expected);

  const engine::TwoEccView blocks = session.run(engine::TwoEcc{});
  ASSERT_EQ(view.num_edges(), expected.num_edges());
  ASSERT_EQ(view.num_bridges(), blocks.num_bridges);
  ASSERT_EQ(view.num_blocks(), blocks.num_blocks);
  ASSERT_EQ(view.num_components(), session.num_components());

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u; v < n; ++v) pairs.push_back({u, v});
  }
  const std::vector<std::uint8_t> got_same =
      view.run(engine::Same2Ecc{pairs});
  const std::vector<std::uint8_t> want_same =
      session.run(engine::Same2Ecc{{pairs}});
  const std::vector<NodeId> got_bop = view.run(engine::BridgesOnPath{pairs});
  const std::vector<NodeId> want_bop =
      session.run(engine::BridgesOnPath{{pairs}});
  for (std::size_t q = 0; q < pairs.size(); ++q) {
    const auto [u, v] = pairs[q];
    ASSERT_EQ(got_same[q] != 0, ref.comp[u] == ref.comp[v])
        << "same_2ecc(" << u << ", " << v << ") vs reference";
    ASSERT_EQ(got_same[q], want_same[q])
        << "same_2ecc(" << u << ", " << v << ") vs unsharded session";
    ASSERT_EQ(got_bop[q], want_bop[q])
        << "bridges_on_path(" << u << ", " << v << ") vs unsharded session";
    ASSERT_EQ(got_bop[q], ref.bridges_on_path(u, v))
        << "bridges_on_path(" << u << ", " << v << ") vs reference";
    // Scalar (host-route) forms agree with the batch answers.
    ASSERT_EQ(view.same_2ecc(u, v), got_same[q] != 0);
  }

  std::vector<NodeId> nodes(n);
  for (NodeId v = 0; v < n; ++v) nodes[v] = v;
  const std::vector<NodeId> got_size =
      view.run(engine::ComponentSize{nodes});
  const std::vector<NodeId> want_size =
      session.run(engine::ComponentSize{{nodes}});
  for (NodeId v = 0; v < n; ++v) {
    ASSERT_EQ(got_size[v], ref.comp_size[v]) << "component_size(" << v << ")";
    ASSERT_EQ(got_size[v], want_size[v]) << "component_size(" << v << ")";
  }
}

// ------------------------------------------------------------- routing

TEST(ShardRouter, PartitionRuleRoundTripsAndCoversAllNodes) {
  const Router router(/*num_nodes=*/11, /*shards=*/3);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < 3; ++s) covered += router.local_nodes(s);
  EXPECT_EQ(covered, 11u);
  for (NodeId v = 0; v < 11; ++v) {
    const std::size_t s = router.shard_of(v);
    const NodeId local = router.local_of(v);
    EXPECT_LT(local, router.local_nodes(s));
    EXPECT_EQ(router.global_of(s, local), v);
  }
  EXPECT_TRUE(router.is_boundary(0, 1));
  EXPECT_FALSE(router.is_boundary(0, 3));  // 0 % 3 == 3 % 3
}

TEST(ShardRouter, BoundarySetIsVersionedPerEffectiveChange) {
  Router router(8, 2);
  EXPECT_EQ(router.boundary_version(), 0u);
  EXPECT_TRUE(router.insert_boundary(0, 1));
  EXPECT_FALSE(router.insert_boundary(1, 0));  // canonical dup: no-op
  EXPECT_EQ(router.boundary_version(), 1u);
  EXPECT_FALSE(router.erase_boundary(2, 3));  // absent: no-op
  EXPECT_TRUE(router.erase_boundary(0, 1));
  EXPECT_EQ(router.boundary_version(), 2u);
  EXPECT_EQ(router.boundary_edges(), 0u);

  router.insert_boundary(2, 1);
  router.insert_boundary(0, 1);
  const auto [snap, version] = router.boundary_snapshot();
  EXPECT_EQ(version, 4u);
  ASSERT_EQ(snap->size(), 2u);  // canonical key order
  EXPECT_EQ((*snap)[0], (graph::Edge{0, 1}));
  EXPECT_EQ((*snap)[1], (graph::Edge{1, 2}));
  // Unchanged set: repeated snapshots share the same immutable vector.
  EXPECT_EQ(router.boundary_snapshot().first.get(), snap.get());
}

TEST(ShardFlagsInCode, ResolveShardCountPrefersOptions) {
  unsetenv("EMC_SHARD_COUNT");
  EXPECT_EQ(resolve_shard_count(7), 7u);
  EXPECT_EQ(resolve_shard_count(0), 4u);  // documented default
}

// ----------------------------------------------------- cross-shard shapes

TEST(ShardCorners, BoundaryEdgeIsABridge) {
  // K=2 over the path 2 - 0 - 1 - 3: (0,2) intra shard 0, (1,3) intra
  // shard 1, (0,1) boundary — every edge is a bridge, and the boundary
  // edge is the only connection between the shard halves.
  ShardedGraph sg(4, fast_options(2));
  sg.insert({{0, 2}, {1, 3}, {0, 1}});
  sg.flush();
  const ShardedView view = sg.view();
  EXPECT_EQ(view.num_bridges(), 3u);
  EXPECT_EQ(view.num_components(), 1u);
  EXPECT_EQ(view.num_blocks(), 4u);
  EXPECT_FALSE(view.same_2ecc(2, 3));
  EXPECT_EQ(view.bridges_on_path(2, 3), 3u);
  EXPECT_EQ(view.component_size(0), 1u);

  engine::Engine engine({.device_workers = 1});
  graph::EdgeList expected;
  expected.num_nodes = 4;
  expected.edges = {{0, 1}, {0, 2}, {1, 3}};
  expect_matches(engine, view, expected);
}

TEST(ShardCorners, BoundaryEdgeClosesACycleAcrossThreeShards) {
  // K=3, n=9: an intra-shard path in each shard (0-3-6, 1-4-7, 2-5-8),
  // boundary edges 6-1, 7-2 chain the shards, and the final boundary edge
  // 8-0 closes one global cycle through all three shards: every edge's
  // verdict flips from bridge to non-bridge at that single insert.
  ShardedGraph sg(9, fast_options(3));
  sg.insert({{0, 3}, {3, 6}, {1, 4}, {4, 7}, {2, 5}, {5, 8}});
  sg.insert({{6, 1}, {7, 2}});
  sg.flush();
  ShardedView view = sg.view();
  EXPECT_EQ(view.num_bridges(), 8u);
  EXPECT_EQ(view.num_components(), 1u);
  EXPECT_FALSE(view.same_2ecc(0, 8));

  sg.insert({{8, 0}});  // boundary edge closes the cycle
  sg.flush();
  view = sg.view();
  EXPECT_EQ(view.num_bridges(), 0u);
  EXPECT_EQ(view.num_blocks(), 1u);
  EXPECT_TRUE(view.same_2ecc(0, 8));
  EXPECT_EQ(view.bridges_on_path(3, 7), 0u);
  EXPECT_EQ(view.component_size(4), 9u);

  engine::Engine engine({.device_workers = 1});
  graph::EdgeList expected;
  expected.num_nodes = 9;
  expected.edges = {{0, 3}, {3, 6}, {1, 4}, {4, 7}, {2, 5},
                    {5, 8}, {1, 6}, {2, 7}, {0, 8}};
  expect_matches(engine, view, expected);
}

TEST(ShardCorners, ParallelBoundaryEdgesDemoteEachOther) {
  // Shard 0 triangle {0,2,4}, shard 1 triangle {1,3,5}: one block each.
  // A single boundary edge 0-1 is a bridge between the blocks; adding a
  // SECOND boundary edge 2-3 lands on the same summary block pair — the
  // two summary edges are parallel and demote each other, merging
  // everything into one global 2-ecc block.
  ShardedGraph sg(6, fast_options(2));
  sg.insert({{0, 2}, {2, 4}, {0, 4}, {1, 3}, {3, 5}, {1, 5}});
  sg.insert({{0, 1}});
  sg.flush();
  ShardedView view = sg.view();
  EXPECT_EQ(view.num_bridges(), 1u);
  EXPECT_FALSE(view.same_2ecc(0, 1));

  sg.insert({{2, 3}});
  sg.flush();
  view = sg.view();
  EXPECT_EQ(view.num_bridges(), 0u);
  EXPECT_EQ(view.num_blocks(), 1u);
  EXPECT_TRUE(view.same_2ecc(4, 5));
  EXPECT_EQ(view.component_size(0), 6u);

  engine::Engine engine({.device_workers = 1});
  graph::EdgeList expected;
  expected.num_nodes = 6;
  expected.edges = {{0, 2}, {2, 4}, {0, 4}, {1, 3},
                    {3, 5}, {1, 5}, {0, 1}, {2, 3}};
  expect_matches(engine, view, expected);
}

TEST(ShardCorners, ShardsWithZeroVerticesAreLegal) {
  // n=2 < K=4: shards 2 and 3 own no vertices; the only possible edge is
  // the boundary edge 0-1.
  ShardedGraph sg(2, fast_options(4));
  EXPECT_EQ(sg.router().local_nodes(2), 0u);
  EXPECT_EQ(sg.router().local_nodes(3), 0u);
  sg.insert({{0, 1}});
  sg.flush();
  const ShardedView view = sg.view();
  EXPECT_EQ(view.num_components(), 1u);
  EXPECT_EQ(view.num_bridges(), 1u);
  EXPECT_FALSE(view.same_2ecc(0, 1));
  EXPECT_EQ(view.component_size(0), 1u);
  EXPECT_EQ(view.bridges_on_path(0, 1), 1u);

  engine::Engine engine({.device_workers = 1});
  graph::EdgeList expected;
  expected.num_nodes = 2;
  expected.edges = {{0, 1}};
  expect_matches(engine, view, expected);
}

TEST(ShardCorners, SeededConstructionPartitionsTheInitialGraph) {
  graph::EdgeList initial;
  initial.num_nodes = 8;
  initial.edges = {{0, 2}, {2, 4}, {0, 4}, {1, 3}, {0, 1}, {0, 1}, {5, 5}};
  ShardedGraph sg(8, initial, fast_options(2));
  const ShardedStats stats = sg.stats();
  EXPECT_EQ(stats.boundary_edges, 1u);   // (0,1) deduped
  EXPECT_EQ(stats.boundary_noops, 1u);   // the duplicate
  EXPECT_EQ(stats.invalid_dropped, 1u);  // the self-loop
  const ShardedView view = sg.view();
  EXPECT_EQ(view.num_edges(), 5u);

  engine::Engine engine({.device_workers = 1});
  graph::EdgeList expected;
  expected.num_nodes = 8;
  expected.edges = {{0, 2}, {2, 4}, {0, 4}, {1, 3}, {0, 1}};
  expect_matches(engine, view, expected);
}

// ------------------------------------------------ epoch-vector consistency

TEST(ShardView, StitchIsCachedPerEpochVector) {
  ShardedGraph sg(8, fast_options(2));
  sg.insert({{0, 2}, {1, 3}});
  sg.flush();
  const ShardedView a = sg.view();
  const ShardedView b = sg.view();
  EXPECT_EQ(a.version(), b.version());
  EXPECT_TRUE(a.epochs() == b.epochs());
  ShardedStats stats = sg.stats();
  EXPECT_EQ(stats.stitch_builds, 1u);
  EXPECT_EQ(stats.stitch_hits, 1u);

  // A boundary-only change advances the vector (no shard epoch moves).
  sg.insert({{2, 3}});
  sg.flush();
  const ShardedView c = sg.view();
  EXPECT_GT(c.version(), b.version());
  EXPECT_EQ(c.epochs().boundary_version,
            b.epochs().boundary_version + 1);
  EXPECT_EQ(c.epochs().shard_epochs, b.epochs().shard_epochs);

  // Pinned views keep answering at their vector: the old view still sees
  // two components, the new one sees the boundary connection.
  EXPECT_EQ(b.num_components(), 6u);
  EXPECT_EQ(c.num_components(), 5u);
  stats = sg.stats();
  EXPECT_EQ(stats.stitch_builds, 2u);
}

TEST(ShardView, IntraShardChangeMovesOnlyThatShardsEpoch) {
  ShardedGraph sg(8, fast_options(2));
  sg.insert({{0, 2}, {1, 3}});
  sg.flush();
  const EpochVector before = sg.current_epochs();
  sg.insert({{2, 4}});  // intra shard 0 only
  sg.flush();
  const EpochVector after = sg.current_epochs();
  EXPECT_GT(after.shard_epochs[0], before.shard_epochs[0]);
  EXPECT_EQ(after.shard_epochs[1], before.shard_epochs[1]);
  EXPECT_EQ(after.boundary_version, before.boundary_version);
}

// ---------------------------------------------------------------- façade

TEST(ShardDispatcher, AnswersMatchTheViewAndStopCancels) {
  ShardedGraph sg(6, fast_options(3));
  sg.insert({{0, 3}, {1, 4}, {0, 1}, {3, 4}});
  sg.flush();
  ShardedDispatcher dispatcher(sg, {.workers = 2});

  auto same = dispatcher.submit(
      engine::Same2Ecc{{{0, 1}, {0, 3}, {2, 5}, {0, 0}}});
  auto sizes = dispatcher.submit(engine::ComponentSize{{0, 1, 2}});
  auto summary = dispatcher.submit(engine::TwoEcc{});
  auto bridges = dispatcher.submit(engine::Bridges{});
  auto bop = dispatcher.submit(engine::BridgesOnPath{{{0, 4}, {0, 2}}});

  const ShardedView view = sg.view();
  const auto same_reply = same.get();
  ASSERT_EQ(same_reply.status, serve::Status::kOk);
  EXPECT_EQ(same_reply.value,
            view.run(engine::Same2Ecc{{{0, 1}, {0, 3}, {2, 5}, {0, 0}}}));
  EXPECT_EQ(same_reply.epoch, view.version());
  const auto size_reply = sizes.get();
  ASSERT_TRUE(size_reply.ok());
  EXPECT_EQ(size_reply.value,
            view.run(engine::ComponentSize{{{0, 1, 2}}}));
  const auto summary_reply = summary.get();
  ASSERT_TRUE(summary_reply.ok());
  EXPECT_EQ(summary_reply.value.num_blocks, view.num_blocks());
  EXPECT_EQ(summary_reply.value.num_bridges, view.num_bridges());
  const auto bridges_reply = bridges.get();
  ASSERT_TRUE(bridges_reply.ok());
  EXPECT_EQ(bridges_reply.value, view.num_bridges());
  const auto bop_reply = bop.get();
  ASSERT_TRUE(bop_reply.ok());
  EXPECT_EQ(bop_reply.value,
            view.run(engine::BridgesOnPath{{{0, 4}, {0, 2}}}));

  dispatcher.stop();
  auto late = dispatcher.submit(engine::Bridges{});
  EXPECT_EQ(late.get().status, serve::Status::kCancelled);

  const ShardedStats stats = dispatcher.stats();
  EXPECT_EQ(stats.dispatch.submitted, 6u);
  EXPECT_EQ(stats.dispatch.answered, 5u);
  EXPECT_EQ(stats.dispatch.cancelled, 1u);
}

TEST(ShardStats, LedgerBalancesAcrossShardsAndFacade) {
  ShardedGraph sg(12, fast_options(3));
  ShardedDispatcher dispatcher(sg, {.workers = 1});

  util::Rng rng(97);
  std::size_t accepted = 0;
  std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>> futures;
  for (int burst = 0; burst < 20; ++burst) {
    std::vector<ingest::Update> ups;
    for (int i = 0; i < 6; ++i) {
      const auto u = static_cast<NodeId>(rng.below(12));
      const auto v = static_cast<NodeId>(rng.below(12));
      ups.push_back(make_update(u, v,
                                rng.below(4) == 0
                                    ? ingest::UpdateKind::kErase
                                    : ingest::UpdateKind::kInsert));
    }
    accepted += sg.submit(ups);
    futures.push_back(
        dispatcher.submit(engine::Same2Ecc{{{static_cast<NodeId>(
                                                 rng.below(12)),
                                             static_cast<NodeId>(
                                                 rng.below(12))}}}));
  }
  sg.flush();
  for (auto& future : futures) {
    ASSERT_EQ(future.get().status, serve::Status::kOk);
  }
  dispatcher.stop();

  const ShardedStats stats = dispatcher.stats();
  // The façade + per-shard dispatcher ledger balances.
  EXPECT_EQ(stats.dispatch.submitted,
            stats.dispatch.answered + stats.dispatch.shed +
                stats.dispatch.rejected + stats.dispatch.expired +
                stats.dispatch.cancelled + stats.dispatch.faulted);
  // The aggregated ingest ledger balances, and it is exactly the sum of
  // the per-shard ledgers.
  EXPECT_EQ(stats.ingest.submitted,
            stats.ingest.accepted + stats.ingest.rejected +
                stats.ingest.cancelled);
  EXPECT_EQ(stats.ingest.accepted, stats.ingest.applied + stats.ingest.shed);
  EXPECT_EQ(stats.ingest.lag, 0u);
  std::size_t per_shard_submitted = 0;
  for (const auto& shard : stats.per_shard_ingest) {
    per_shard_submitted += shard.submitted;
  }
  EXPECT_EQ(stats.ingest.submitted, per_shard_submitted);
  // Every routed update is accounted once: intra-shard accepted + boundary
  // applied/no-op == accepted at the façade.
  EXPECT_EQ(stats.ingest.accepted + stats.boundary_applied +
                stats.boundary_noops + stats.invalid_dropped,
            accepted + stats.invalid_dropped);
  EXPECT_EQ(stats.shards, 3u);
  ASSERT_EQ(stats.shard_staleness.size(), 3u);
  for (const std::uint64_t staleness : stats.shard_staleness) {
    EXPECT_EQ(staleness, 0u) << "flush() must leave every shard fresh";
  }
  EXPECT_EQ(stats.max_staleness, 0u);
}

// ------------------------------------------------------------------ fuzz

TEST(ShardFuzz, MultiProducerDifferentialVsUnshardedAndReference) {
  const auto fuzz = test_support::fuzz_run(/*seed=*/8817, /*rounds=*/200);
  SCOPED_TRACE(fuzz.trace);
  engine::Engine engine({.device_workers = 2});

  util::Rng rng(fuzz.seed);
  for (int round = 0; round < fuzz.rounds; ++round) {
    const auto n = static_cast<NodeId>(2 + rng.below(28));
    const std::size_t shards = 1 + rng.below(4);
    const int producers = 2 + static_cast<int>(rng.below(2));
    const int phases = 2;

    ShardedOptions opts = fast_options(shards);
    opts.ingest.max_batch = 1 + rng.below(8);
    ShardedGraph sg(n, opts);

    // Disjoint per-producer edge pools (edge_key % producers == p): the
    // streams race through the rings, but each edge has ONE owner, so the
    // final set is the union of per-producer sequential replays. The pools
    // are enumerated up front — at tiny n a producer's pool can be EMPTY
    // (n=2 has one possible edge), and rejection sampling would spin.
    std::vector<std::vector<graph::Edge>> pool(
        static_cast<std::size_t>(producers));
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        pool[graph::edge_key(u, v) %
             static_cast<std::uint64_t>(producers)]
            .push_back({u, v});
      }
    }
    std::vector<std::unordered_set<std::uint64_t>> owned(
        static_cast<std::size_t>(producers));

    for (int phase = 0; phase < phases; ++phase) {
      // Script each producer's ops up front (deterministic), then submit
      // them from racing threads.
      std::vector<std::vector<ingest::Update>> script(
          static_cast<std::size_t>(producers));
      for (int p = 0; p < producers; ++p) {
        if (pool[p].empty()) continue;
        const int ops = 1 + static_cast<int>(rng.below(3));
        for (int op = 0; op < ops; ++op) {
          const bool erase_op =
              !owned[p].empty() && rng.below(3) == 0;
          const int batch = 1 + static_cast<int>(rng.below(6));
          for (int i = 0; i < batch; ++i) {
            const graph::Edge e = pool[p][rng.below(pool[p].size())];
            const std::uint64_t key = graph::edge_key(e.u, e.v);
            script[p].push_back(make_update(
                e.u, e.v,
                erase_op ? ingest::UpdateKind::kErase
                         : ingest::UpdateKind::kInsert,
                static_cast<std::uint32_t>(p)));
            if (erase_op) {
              owned[p].erase(key);
            } else {
              owned[p].insert(key);
            }
          }
        }
      }

      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(producers));
      for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&sg, &script, p] {
          // One update at a time: maximal interleaving through the rings.
          for (const ingest::Update& up : script[p]) {
            sg.submit({up});
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      sg.flush();

      std::unordered_set<std::uint64_t> all;
      for (const auto& pool : owned) all.insert(pool.begin(), pool.end());
      const graph::EdgeList expected = edges_from_keys(n, all);
      expect_matches(engine, sg.view(), expected);
      if (::testing::Test::HasFailure()) {
        FAIL() << fuzz.trace << "\nround " << round << " phase " << phase
               << ": n=" << n << " shards=" << shards
               << " producers=" << producers;
      }
    }
  }
}

// ------------------------------------------------------------ failpoints

TEST(ShardFailpoints, EveryFutureResolvesAndNoUpdateIsLostUnderFaults) {
  namespace failpoint = util::failpoint;
  const auto fuzz = test_support::fuzz_run(/*seed=*/5115, /*rounds=*/12);
  SCOPED_TRACE(fuzz.trace);

  // Re-arm from the environment explicitly (CI pins engine.publish and the
  // snapshot+publish combo); self-arm engine.publish otherwise. Apply-path
  // sites stay unarmed for the same reason as IngestFailpoints: the writer
  // mutation is ground truth, not the system under test.
  const char* env_spec = std::getenv("EMC_FAILPOINT");
  const bool env_armed =
      env_spec != nullptr && failpoint::configure_from_string(env_spec) > 0;
  if (!env_armed) {
    failpoint::disable_all();
    ASSERT_TRUE(failpoint::configure(failpoint::kPublish, "0.3"));
  }
  const std::size_t fired_before = failpoint::total_fired();

  engine::Engine check_engine({.device_workers = 1});
  constexpr NodeId kNodes = 24;
  ShardedOptions opts = fast_options(3);
  opts.dispatch.publish_attempts = 2;
  opts.dispatch.publish_backoff = std::chrono::microseconds(20);

  auto sg = [&] {
    failpoint::ScopedSuspend suspend;  // construction is setup, not SUT
    return std::make_unique<ShardedGraph>(kNodes, opts);
  }();
  ShardedDispatcher dispatcher(*sg, {.workers = 1});

  util::Rng rng(fuzz.seed * 17 + 3);
  std::unordered_set<std::uint64_t> expected_keys;
  std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>> futures;
  std::size_t accepted = 0;
  for (int round = 0; round < fuzz.rounds; ++round) {
    std::vector<ingest::Update> burst;
    for (int i = 0; i < 8; ++i) {
      NodeId u = 0;
      NodeId v = 0;
      do {
        u = static_cast<NodeId>(rng.below(kNodes));
        v = static_cast<NodeId>(rng.below(kNodes));
      } while (u == v);
      const bool erase_op = rng.below(4) == 0;
      burst.push_back(make_update(
          u, v,
          erase_op ? ingest::UpdateKind::kErase
                   : ingest::UpdateKind::kInsert));
      if (erase_op) {
        expected_keys.erase(graph::edge_key(u, v));
      } else {
        expected_keys.insert(graph::edge_key(u, v));
      }
    }
    accepted += sg->submit(burst);
    futures.push_back(dispatcher.submit(engine::Same2Ecc{
        {{static_cast<NodeId>(rng.below(kNodes)),
          static_cast<NodeId>(rng.below(kNodes))}}}));
  }

  // Quiesce with faults still live, then disable and flush: the final
  // publishes must land on every shard.
  sg->drain();
  failpoint::disable_all();
  sg->flush();

  std::size_t ok = 0;
  for (auto& future : futures) {
    const auto reply = future.get();  // never abandoned
    if (reply.status == serve::Status::kOk) ++ok;
  }
  EXPECT_GT(ok, 0u) << "the façade should keep answering between faults";

  const ShardedStats stats = dispatcher.stats();
  EXPECT_EQ(stats.ingest.lag, 0u) << "faults must never drop updates";
  EXPECT_EQ(stats.max_staleness, 0u);
  EXPECT_EQ(stats.dispatch.submitted,
            stats.dispatch.answered + stats.dispatch.shed +
                stats.dispatch.rejected + stats.dispatch.expired +
                stats.dispatch.cancelled + stats.dispatch.faulted);
  if (!env_armed) {
    EXPECT_GT(failpoint::total_fired(), fired_before);
  }

  const graph::EdgeList expected = edges_from_keys(kNodes, expected_keys);
  expect_matches(check_engine, sg->view(), expected);
  dispatcher.stop();
}

TEST(ShardFailpoints, PublishFaultsOnOneShardLeaveOthersFresh) {
  namespace failpoint = util::failpoint;
  // Deterministic isolation: this test owns the failpoint configuration
  // (the env spec, if any, is cleared — probabilistic arming would fail
  // shard 1's publishes too and erase the contrast under test).
  failpoint::disable_all();

  ShardedOptions opts = fast_options(2);
  opts.dispatch.publish_attempts = 1;  // fail fast into degraded mode
  ShardedGraph sg(8, opts);
  // Phase 1 (fault-free): both shards publish real traffic.
  sg.insert({{0, 2}, {2, 4}, {1, 3}, {3, 5}});
  sg.flush();
  const EpochVector baseline = sg.current_epochs();
  ASSERT_EQ(sg.stats().max_staleness, 0u);

  // Phase 2: every publish now fails, but only shard 0 receives updates —
  // so only shard 0's pipeline ever attempts (and fails) a publish.
  ASSERT_TRUE(failpoint::configure(failpoint::kPublish, "1+"));
  sg.insert({{4, 6}, {0, 6}});
  sg.drain();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (sg.stats().per_shard_ingest[0].publish_failures == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ShardedStats stats = sg.stats();
  ASSERT_GT(stats.per_shard_ingest[0].publish_failures, 0u);
  // Shard 0 is stale (applied epochs it cannot publish); shard 1 is
  // untouched: same serving epoch as the fault-free baseline, staleness 0,
  // not degraded. Bounded staleness stays PER SHARD.
  EXPECT_GT(stats.shard_staleness[0], 0u);
  EXPECT_EQ(stats.shard_staleness[1], 0u);
  EXPECT_EQ(stats.shard_epochs[1], baseline.shard_epochs[1]);
  EXPECT_FALSE(stats.per_shard_dispatch[1].degraded);

  // The façade still answers, at the stale shard-0 epoch: the phase-2
  // edges are applied but not published, so the view must not see them.
  const ShardedView stale_view = sg.view();
  EXPECT_EQ(stale_view.num_edges(), 4u);
  EXPECT_TRUE(stale_view.epochs().shard_epochs == baseline.shard_epochs);

  // Recovery: disarm, flush — the retried publish lands, staleness clears.
  failpoint::disable_all();
  sg.flush();
  stats = sg.stats();
  EXPECT_EQ(stats.max_staleness, 0u);
  EXPECT_EQ(sg.view().num_edges(), 6u);
}

}  // namespace
}  // namespace emc::shard
