// The engine façade: every backend choice must agree on every graph, and
// the artifact cache must make repeated request batches free.
//
// Three pillars:
//   differential — for each graph of the gen suite (connected, disconnected,
//     multigraph-ish, edgeless), every FORCED backend and the auto policy
//     produce the DFS reference's bridge mask, and the TwoEcc labels are
//     partition-equal to the sequential union-find reference;
//   cache-reuse pins — a second identical request batch on an unchanged
//     epoch performs ZERO rebuild kernel launches (and exactly one launch
//     when a device query batch is forced — the bulk answer kernel itself);
//   policy — the cost model ranks backends the way the paper's figures say
//     (DFS on one core, device TV once workers swallow the work term, CK
//     punished by diameter), and batch-size routing follows Figure 6.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "bridges/dfs_bridges.hpp"
#include "core/tree.hpp"
#include "core/euler_tour.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "gen/trees.hpp"
#include "graph/graph.hpp"
#include "lca/inlabel.hpp"
#include "support/reference.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace emc::engine {
namespace {

using graph::Edge;
using graph::EdgeList;

/// Same partition <=> equal label arrays up to renaming.
void expect_same_partition(const std::vector<NodeId>& got,
                           const std::vector<NodeId>& want) {
  ASSERT_EQ(got.size(), want.size());
  std::map<NodeId, NodeId> fwd, bwd;
  for (std::size_t v = 0; v < got.size(); ++v) {
    const auto [f, f_new] = fwd.try_emplace(got[v], want[v]);
    ASSERT_EQ(f->second, want[v]) << "node " << v;
    const auto [b, b_new] = bwd.try_emplace(want[v], got[v]);
    ASSERT_EQ(b->second, got[v]) << "node " << v;
  }
}

std::vector<std::pair<const char*, EdgeList>> differential_suite() {
  std::vector<std::pair<const char*, EdgeList>> suite;
  suite.emplace_back("kron", graph::largest_component(
                                 graph::simplified(gen::kron_graph(9, 5, 1))));
  suite.emplace_back("social", graph::largest_component(graph::simplified(
                                   gen::social_graph(9, 4, 2))));
  suite.emplace_back("road", graph::largest_component(graph::simplified(
                                 gen::road_graph(30, 30, 0.7, 0.05, 3))));
  // Raw generated graphs are disconnected multigraphs — exactly the inputs
  // the free functions could NOT take directly.
  suite.emplace_back("er-raw", gen::er_graph(600, 700, 4));
  suite.emplace_back("road-raw", gen::road_graph(24, 24, 0.55, 0.03, 5));
  EdgeList tiny;  // two triangles + a bridge + an isolated node
  tiny.num_nodes = 8;
  tiny.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}};
  suite.emplace_back("tiny", tiny);
  EdgeList edgeless;
  edgeless.num_nodes = 5;
  suite.emplace_back("edgeless", edgeless);
  return suite;
}

TEST(EngineDifferential, EveryBackendAgreesAcrossTheGenSuite) {
  Engine engine({.device_workers = 3, .multicore_workers = 2});
  for (const auto& [name, g] : differential_suite()) {
    Session session = engine.session(g);
    const auto reference =
        bridges::find_bridges_dfs(graph::build_csr(engine.device(), g));
    for (const Backend backend : kFixedBackends) {
      const bridges::BridgeMask& mask =
          session.run(Bridges{}, Policy::fixed(backend));
      ASSERT_EQ(mask, reference) << name << " via " << to_string(backend);
      ASSERT_EQ(session.mask_backend(), backend) << name;
    }
    const bridges::BridgeMask& auto_mask = session.run(Bridges{});
    ASSERT_EQ(auto_mask, reference) << name << " via auto";

    const TwoEccView view = session.run(TwoEcc{});
    ASSERT_EQ(view.num_bridges, bridges::count_bridges(reference)) << name;
    expect_same_partition(*view.labels,
                          test_support::two_ecc_labels(g, reference));
  }
}

TEST(EngineDifferential, QueryBatchesMatchTheReferenceBothRoutes) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::er_graph(400, 520, 7);  // disconnected, parallel
  Session session = engine.session(g);
  const test_support::ReferenceOracle ref(engine.device(), g);

  util::Rng rng(11);
  Same2Ecc same;
  BridgesOnPath paths;
  ComponentSize sizes;
  for (int q = 0; q < 300; ++q) {
    const auto u = static_cast<NodeId>(rng.below(400));
    const auto v = static_cast<NodeId>(rng.below(400));
    same.pairs.push_back({u, v});
    paths.pairs.push_back({u, v});
    sizes.nodes.push_back(u);
  }
  // Host route (auto on a small batch) and forced device route must agree
  // with each other and the reference.
  Policy device_route;
  device_route.min_device_batch = 1;
  const auto same_host = session.run(same);
  const auto same_device = session.run(same, device_route);
  const auto path_host = session.run(paths);
  const auto path_device = session.run(paths, device_route);
  const auto size_host = session.run(sizes);
  const auto size_device = session.run(sizes, device_route);
  EXPECT_EQ(same_host, same_device);
  EXPECT_EQ(path_host, path_device);
  EXPECT_EQ(size_host, size_device);
  for (std::size_t q = 0; q < same.pairs.size(); ++q) {
    const auto [u, v] = same.pairs[q];
    ASSERT_EQ(same_host[q] != 0, ref.comp[u] == ref.comp[v]) << u << "," << v;
    ASSERT_EQ(path_host[q], ref.bridges_on_path(u, v)) << u << "," << v;
    ASSERT_EQ(size_host[q], ref.comp_size[u]) << u;
  }
}

TEST(EngineCache, SecondIdenticalRequestBatchLaunchesNothing) {
  Engine engine;
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::road_graph(40, 40, 0.72, 0.04, 9)));
  Session session = engine.session(g);

  // Mixed first batch builds every artifact (mask via TV so all launches
  // land on the countable device context).
  const Policy tv = Policy::fixed(Backend::kTv);
  Same2Ecc queries{{{0, 1}, {2, 3}, {4, 5}}};
  session.run(Bridges{}, tv);
  session.run(TwoEcc{}, tv);
  const auto first = session.run(queries, tv);
  ASSERT_GT(engine.stats().artifact_builds, 0u);

  // The pin: identical batch, unchanged epoch -> zero kernel launches.
  const std::uint64_t before = engine.device_launches();
  const auto& mask = session.run(Bridges{}, tv);
  const TwoEccView view = session.run(TwoEcc{}, tv);
  const auto second = session.run(queries, tv);
  EXPECT_EQ(engine.device_launches(), before);
  EXPECT_EQ(second, first);
  EXPECT_EQ(mask.size(), g.num_edges());
  EXPECT_GT(view.num_blocks, 0u);

  // Forcing the device query route must cost exactly ONE launch per batch
  // (the bulk answer kernel) and still zero rebuild launches.
  Policy device_route = tv;
  device_route.min_device_batch = 1;
  const std::uint64_t before_device = engine.device_launches();
  const auto third = session.run(queries, device_route);
  EXPECT_EQ(engine.device_launches(), before_device + 1);
  EXPECT_EQ(third, first);
}

TEST(EngineCache, AutoReusesAnyMaskButForcingRecomputes) {
  Engine engine;
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::er_graph(500, 900, 13)));
  Session session = engine.session(g);
  session.run(Bridges{}, Policy::fixed(Backend::kDfs));
  const auto runs_before = engine.stats().backend_runs;
  session.run(Bridges{});  // auto: any cached mask is the right answer
  EXPECT_EQ(engine.stats().backend_runs, runs_before);
  session.run(Bridges{}, Policy::fixed(Backend::kHybrid));  // forcing runs
  EXPECT_EQ(engine.stats().backend_runs[backend_index(Backend::kHybrid)],
            runs_before[backend_index(Backend::kHybrid)] + 1);
}

TEST(EngineDynamic, EpochChangesInvalidateAndReplayIncrementally) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(), gen::cycle_graph(64));
  Session session = engine.session(dg);

  Same2Ecc ring{{{0, 32}, {1, 2}}};
  const auto before = session.run(ring);
  EXPECT_TRUE(before[0] != 0);  // a cycle is one 2ecc block

  // An effective insert advances the epoch; the session must re-answer
  // against the new snapshot (via the oracle's incremental replay, not a
  // rebuild — the engine keeps the oracle object alive across epochs).
  dg.insert_edges(engine.device(), {{0, 2}});
  EXPECT_EQ(session.epoch(), dg.epoch());
  const auto after = session.run(ring);
  EXPECT_TRUE(after[0] != 0);
  EXPECT_EQ(session.two_ecc_index().rebuilds(), 1u);
  EXPECT_EQ(session.two_ecc_index().incremental_refreshes(), 1u);

  // A no-op batch does not advance the epoch: everything stays cached.
  dg.insert_edges(engine.device(), {{0, 1}});
  const std::uint64_t launches = engine.device_launches();
  session.run(ring);
  EXPECT_EQ(engine.device_launches(), launches);

  // Differential check against the reference after a mixed update.
  dg.erase_edges(engine.device(), {{5, 6}, {20, 21}});
  const test_support::ReferenceOracle ref(engine.device(),
                                          dg.snapshot(engine.device()));
  BridgesOnPath probes;
  util::Rng rng(3);
  for (int q = 0; q < 120; ++q) {
    probes.pairs.push_back({static_cast<NodeId>(rng.below(64)),
                            static_cast<NodeId>(rng.below(64))});
  }
  const auto got = session.run(probes);
  for (std::size_t q = 0; q < probes.pairs.size(); ++q) {
    const auto [u, v] = probes.pairs[q];
    ASSERT_EQ(got[q], ref.bridges_on_path(u, v)) << u << "," << v;
  }
}

TEST(EngineDynamic, BridgesRequestSharesItsMaskWithTheTwoEccIndex) {
  Engine engine({.device_workers = 2});
  dynamic::DynamicGraph dg(engine.device(),
                           gen::road_graph(16, 16, 0.8, 0.05, 17));
  Session session = engine.session(dg);
  // Force a large erase so the oracle MUST take the full-rebuild path; the
  // session's cached mask (computed by DFS here) is handed down, so no TV
  // backend run happens at all.
  session.run(Bridges{}, Policy::fixed(Backend::kDfs));
  session.run(TwoEcc{});
  const auto& snapshot = dg.snapshot(engine.device()).edges;
  std::vector<Edge> erase(snapshot.begin(), snapshot.begin() + 60);
  dg.erase_edges(engine.device(), erase);
  const auto runs_before = engine.stats().backend_runs;
  session.run(Bridges{}, Policy::fixed(Backend::kDfs));
  const TwoEccView view = session.run(TwoEcc{});
  auto runs_after = engine.stats().backend_runs;
  EXPECT_EQ(runs_after[backend_index(Backend::kTv)],
            runs_before[backend_index(Backend::kTv)]);  // no internal TV
  EXPECT_EQ(runs_after[backend_index(Backend::kDfs)],
            runs_before[backend_index(Backend::kDfs)] + 1);
  // And the labels are right.
  const test_support::ReferenceOracle ref(engine.device(),
                                          dg.snapshot(engine.device()));
  expect_same_partition(*view.labels, ref.comp);
}

TEST(EngineLca, ForestLcaMatchesADirectIndexOnTrees) {
  Engine engine({.device_workers = 2});
  core::ParentTree tree = gen::random_tree(3000, NodeId{40}, 19);
  gen::scramble_ids(tree, 20);
  const EdgeList edges = core::tree_edges(tree);
  Session session = engine.session(edges);

  // The engine roots each component at its representative — the component's
  // MIN node id (cc_spanning hooks strictly towards smaller labels) — so a
  // connected tree is rooted at node 0; build the direct reference on the
  // same rooting.
  std::vector<NodeId> parent, level;
  const NodeId root = 0;
  core::root_tree(engine.device(), edges, root, parent, level);
  const core::ParentTree rooted{root, std::move(parent)};
  const auto direct = lca::InlabelLca::build_sequential(rooted);

  LcaBatch batch{gen::random_queries(3000, 2000, 21)};
  const auto got = session.run(batch);
  for (std::size_t q = 0; q < batch.pairs.size(); ++q) {
    ASSERT_EQ(got[q], direct.query(batch.pairs[q].first, batch.pairs[q].second))
        << "query " << q;
  }

  // Cross-component pairs answer kNoNode (two disjoint paths).
  EdgeList two;
  two.num_nodes = 6;
  two.edges = {{0, 1}, {1, 2}, {3, 4}, {4, 5}};
  Session split = engine.session(two);
  const auto answers = split.run(LcaBatch{{{0, 2}, {0, 4}, {3, 5}}});
  EXPECT_NE(answers[0], kNoNode);
  EXPECT_EQ(answers[1], kNoNode);
  EXPECT_NE(answers[2], kNoNode);
}

TEST(EnginePolicy, CostModelRanksBackendsLikeThePaper) {
  const CostModel model;
  // One worker, real launch overhead: sequential DFS wins (the container
  // regime — and the paper's cpu1 baseline winning at tiny scale).
  PlanInputs cpu1;
  cpu1.n = 1 << 20;
  cpu1.m = 1 << 22;
  cpu1.diameter = 30;
  cpu1.device_workers = 1;
  cpu1.multicore_workers = 1;
  cpu1.launch_overhead = 50e-6;
  EXPECT_EQ(Policy{}.choose(cpu1), Backend::kDfs);

  // A wide device on a small-diameter graph: TV (or CK) swallows the work
  // term and DFS loses by orders of magnitude.
  PlanInputs gpu = cpu1;
  gpu.device_workers = 2048;
  gpu.multicore_workers = 12;
  const Backend wide = Policy{}.choose(gpu);
  EXPECT_NE(wide, Backend::kDfs);
  EXPECT_LT(model.seconds(wide, gpu), model.seconds(Backend::kDfs, gpu));

  // Diameter punishes CK but not TV (the Figure 9-11 mechanism): on a road
  // shape CK's BFS launches alone dwarf TV's fixed budget.
  PlanInputs road = gpu;
  road.m = road.n * 5 / 4;
  road.diameter = 6000;
  EXPECT_GT(model.seconds(Backend::kCk, road),
            model.seconds(Backend::kTv, road));
  // And TV's prediction is diameter-invariant.
  PlanInputs road_flat = road;
  road_flat.diameter = 10;
  EXPECT_EQ(model.seconds(Backend::kTv, road),
            model.seconds(Backend::kTv, road_flat));
}

TEST(EnginePolicy, BatchRoutingFollowsTheLaunchOverhead) {
  Policy policy;
  PlanInputs one_worker;
  one_worker.device_workers = 1;
  one_worker.launch_overhead = 50e-6;
  // One worker: the kernel does the same serial work PLUS the launch.
  EXPECT_FALSE(policy.use_device_batch(1, one_worker));
  EXPECT_FALSE(policy.use_device_batch(1 << 20, one_worker));

  PlanInputs wide = one_worker;
  wide.device_workers = 1024;
  EXPECT_FALSE(policy.use_device_batch(64, wide));       // Figure 6 left edge
  EXPECT_TRUE(policy.use_device_batch(1 << 20, wide));   // bulk regime

  policy.min_device_batch = 10;  // explicit override beats the model
  EXPECT_TRUE(policy.use_device_batch(10, one_worker));
  EXPECT_FALSE(policy.use_device_batch(9, wide));
}

TEST(EnginePolicy, CalibrationFitsThisMachineAndAutoStaysCompetitive) {
  Engine engine({.device_workers = 2});
  Policy calibrated;
  calibrated.calibrate(engine);
  const CostModel& fit = calibrated.model;

  // Work constants stay positive and finite; structural terms (launch
  // counts, diameter dependence) are priors, not fit targets.
  for (const double c : {fit.dfs_node_ns, fit.dfs_edge_ns, fit.ck_node_ns,
                         fit.ck_edge_ns, fit.tv_node_ns, fit.tv_edge_ns,
                         fit.hybrid_node_ns, fit.hybrid_edge_ns,
                         fit.multicore_sync_ns, fit.query_host_ns,
                         fit.query_device_ns}) {
    ASSERT_TRUE(std::isfinite(c));
    ASSERT_GT(c, 0.0);
  }
  const CostModel hand;
  EXPECT_EQ(fit.tv_launches, hand.tv_launches);
  EXPECT_EQ(fit.hybrid_launches, hand.hybrid_launches);
  EXPECT_EQ(fit.ck_launches_per_diameter, hand.ck_launches_per_diameter);

  // The mini bench_engine: on a small road instance under the simulated
  // 50us launch latency the device backends pay milliseconds of fixed
  // charge, so calibrated auto must route around them...
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::road_graph(48, 48, 0.72, 0.04, 7)));
  Session session = engine.session(g);
  session.csr();
  session.num_components();
  session.diameter_estimate();
  const Plan plan = session.plan(Bridges{}, calibrated);
  EXPECT_NE(plan.chosen, Backend::kCk);
  EXPECT_NE(plan.chosen, Backend::kTv);
  EXPECT_NE(plan.chosen, Backend::kHybrid);

  // ...and must match or beat every fixed backend when measured (generous
  // tolerance: the auto pick IS one of the fixed backends plus a model
  // evaluation, so losing by 2x means the fit pointed at a loser).
  const auto timed = [&](const Policy& policy) {
    double best = 1e300;
    for (int run = 0; run < 3; ++run) {
      session.drop_results();
      util::Timer timer;
      session.run(Bridges{}, policy);
      best = std::min(best, timer.seconds());
    }
    return best;
  };
  double best_fixed = 1e300;
  for (const Backend backend : kFixedBackends) {
    best_fixed = std::min(best_fixed, timed(Policy::fixed(backend)));
  }
  const double auto_seconds = timed(calibrated);
  EXPECT_LE(auto_seconds, best_fixed * 2.0 + 2e-3)
      << "calibrated auto picked " << to_string(session.mask_backend());

  // EngineOptions::calibrate wires the same fit into the default policy.
  Engine calibrated_engine(
      {.device_workers = 2, .multicore_workers = 2, .calibrate = true});
  ASSERT_TRUE(
      std::isfinite(calibrated_engine.default_policy().model.dfs_edge_ns));
}

TEST(EnginePolicy, ForcedBackendIsRespected) {
  Engine engine({.device_workers = 2});
  const EdgeList g = graph::largest_component(
      graph::simplified(gen::er_graph(300, 600, 23)));
  Session session = engine.session(g);
  for (const Backend backend : kFixedBackends) {
    session.run(Bridges{}, Policy::fixed(backend));
    EXPECT_EQ(session.mask_backend(), backend);
  }
  const Plan plan = session.plan(Bridges{});
  EXPECT_NE(plan.chosen, Backend::kAuto);
  EXPECT_EQ(plan.inputs.n, g.num_nodes);
  EXPECT_EQ(plan.inputs.m, g.num_edges());
  // plan() itself must not disturb the cached mask.
  EXPECT_EQ(session.mask_backend(), kFixedBackends.back());
}

TEST(EngineEdgeCases, EmptyAndTrivialGraphs) {
  Engine engine({.device_workers = 2});
  EdgeList empty;  // zero nodes
  Session none = engine.session(empty);
  EXPECT_TRUE(none.run(Bridges{}).empty());
  EXPECT_EQ(none.run(TwoEcc{}).num_blocks, 0u);
  EXPECT_TRUE(none.run(Same2Ecc{}).empty());
  EXPECT_TRUE(none.run(LcaBatch{}).empty());

  EdgeList isolated;  // nodes, no edges
  isolated.num_nodes = 4;
  Session iso = engine.session(isolated);
  EXPECT_TRUE(iso.run(Bridges{}).empty());
  const TwoEccView view = iso.run(TwoEcc{});
  EXPECT_EQ(view.num_blocks, 4u);
  EXPECT_EQ(view.num_bridges, 0u);
  const auto sizes = iso.run(ComponentSize{{0, 1, 2, 3}});
  EXPECT_EQ(sizes, (std::vector<NodeId>{1, 1, 1, 1}));
  const auto same = iso.run(Same2Ecc{{{0, 1}, {2, 2}}});
  EXPECT_EQ(same[0], 0);
  EXPECT_EQ(same[1], 1);
}

TEST(EngineStatsTest, CountersTrackSessionsAndRequests) {
  Engine engine({.device_workers = 2});
  const EdgeList g = gen::cycle_graph(32);
  Session a = engine.session(g);
  Session b = engine.session(g);
  EXPECT_EQ(engine.stats().sessions, 2u);
  a.run(Bridges{});
  a.run(Bridges{});
  b.run(Same2Ecc{{{0, 16}}});
  EXPECT_EQ(engine.stats().requests, 3u);
  EXPECT_GT(engine.stats().artifact_builds, 0u);
  EXPECT_GT(engine.stats().artifact_hits, 0u);  // the second Bridges
  EXPECT_GT(engine.stats().host_query_batches, 0u);

  // drop_artifacts: the next request rebuilds (the benchmark hook).
  const auto builds = engine.stats().artifact_builds;
  a.drop_artifacts();
  a.run(Bridges{}, Policy::fixed(Backend::kTv));
  EXPECT_GT(engine.stats().artifact_builds, builds);
}

}  // namespace
}  // namespace emc::engine
