#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "device/context.hpp"
#include "device/sort.hpp"
#include "util/rng.hpp"

namespace emc::device {
namespace {

class SortParam
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {
 protected:
  Context ctx_{std::get<0>(GetParam())};
  std::size_t n_ = std::get<1>(GetParam());
};

INSTANTIATE_TEST_SUITE_P(
    WorkersAndSizes, SortParam,
    ::testing::Combine(::testing::Values(1u, 3u),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{100},
                                         std::size_t{4096},
                                         std::size_t{50'000})));

TEST_P(SortParam, KeysRandom64) {
  util::Rng rng(n_ + 10);
  std::vector<std::uint64_t> keys(n_);
  for (auto& k : keys) k = rng();
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  sort_keys(ctx_, keys);
  EXPECT_EQ(keys, expected);
}

TEST_P(SortParam, KeysSmallRange) {
  util::Rng rng(n_ + 11);
  std::vector<std::uint32_t> keys(n_);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(4));
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  sort_keys(ctx_, keys);
  EXPECT_EQ(keys, expected);
}

TEST_P(SortParam, KeysAlreadySorted) {
  std::vector<std::uint32_t> keys(n_);
  std::iota(keys.begin(), keys.end(), 0u);
  auto expected = keys;
  sort_keys(ctx_, keys);
  EXPECT_EQ(keys, expected);
}

TEST_P(SortParam, KeysReverseSorted) {
  std::vector<std::uint32_t> keys(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    keys[i] = static_cast<std::uint32_t>(n_ - i);
  }
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  sort_keys(ctx_, keys);
  EXPECT_EQ(keys, expected);
}

TEST_P(SortParam, PairsPermuteValuesWithKeys) {
  util::Rng rng(n_ + 12);
  std::vector<std::uint64_t> keys(n_);
  std::vector<std::int32_t> values(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    keys[i] = rng.below(1'000'000);
    values[i] = static_cast<std::int32_t>(i);
  }
  auto ref = keys;
  sort_pairs(ctx_, keys, values);
  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Every value index appears once and carries its original key.
  std::vector<bool> seen(n_, false);
  for (std::size_t i = 0; i < n_; ++i) {
    const auto original = static_cast<std::size_t>(values[i]);
    ASSERT_FALSE(seen[original]);
    seen[original] = true;
    ASSERT_EQ(keys[i], ref[original]);
  }
}

TEST_P(SortParam, PairsStable) {
  util::Rng rng(n_ + 13);
  std::vector<std::uint32_t> keys(n_);
  std::vector<std::int32_t> values(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    keys[i] = static_cast<std::uint32_t>(rng.below(8));  // many duplicates
    values[i] = static_cast<std::int32_t>(i);
  }
  sort_pairs(ctx_, keys, values);
  // Stability: equal keys keep ascending original indices.
  for (std::size_t i = 1; i < n_; ++i) {
    if (keys[i] == keys[i - 1]) {
      ASSERT_LT(values[i - 1], values[i]);
    }
  }
}

// The arena-backed double buffers must reuse cleanly across back-to-back
// sorts with different key widths, payload types and sizes.
TEST(Sort, ArenaSteadyStateAcrossMixedSorts) {
  Context ctx(2);
  util::Rng rng(321);
  const auto cycle = [&] {
    std::vector<std::uint64_t> k64(20'000);
    std::vector<std::int32_t> v32(k64.size());
    for (std::size_t i = 0; i < k64.size(); ++i) {
      k64[i] = rng();
      v32[i] = static_cast<std::int32_t>(i);
    }
    auto ref = k64;
    std::sort(ref.begin(), ref.end());
    sort_pairs(ctx, k64, v32);
    ASSERT_EQ(k64, ref);

    std::vector<std::uint32_t> k32(5'000);
    for (auto& k : k32) k = static_cast<std::uint32_t>(rng.below(1 << 16));
    auto ref32 = k32;
    std::sort(ref32.begin(), ref32.end());
    sort_keys(ctx, k32);
    ASSERT_EQ(k32, ref32);
  };
  cycle();
  cycle();  // warm-up: arena high-water mark reached and consolidated
  const std::size_t warmed = ctx.arena().block_allocations();
  for (int round = 0; round < 4; ++round) cycle();
  EXPECT_EQ(ctx.arena().block_allocations(), warmed);
}

// Pointer-based entry points sort arena-resident scratch directly.
TEST(Sort, PointerApiSortsArenaScratch) {
  Context ctx(3);
  util::Rng rng(7);
  const std::size_t n = 30'000;
  Arena::Scope scope(ctx.arena());
  auto* keys = scope.get<std::uint64_t>(n);
  auto* values = scope.get<std::int32_t>(n);
  std::vector<std::uint64_t> ref(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.below(1'000'000);
    ref[i] = keys[i];
    values[i] = static_cast<std::int32_t>(i);
  }
  std::sort(ref.begin(), ref.end());
  sort_pairs(ctx, keys, values, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], ref[i]);
    if (i > 0 && keys[i] == keys[i - 1]) {
      ASSERT_LT(values[i - 1], values[i]);  // still stable
    }
  }
}

TEST(Sort, HandlesFullWidthKeys) {
  Context ctx(2);
  util::Rng rng(1);
  std::vector<std::uint64_t> keys(10'000);
  for (auto& k : keys) k = rng();  // exercises all 8 radix passes
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  sort_keys(ctx, keys);
  EXPECT_EQ(keys, expected);
}

TEST(Sort, AllEqualKeys) {
  Context ctx(2);
  std::vector<std::uint64_t> keys(1000, 42);
  std::vector<std::int32_t> values(1000);
  std::iota(values.begin(), values.end(), 0);
  sort_pairs(ctx, keys, values);
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(keys[i], 42u);
    ASSERT_EQ(values[i], static_cast<std::int32_t>(i));  // stability
  }
}

TEST(Sort, LexicographicPackedPairsOrderAsPairs) {
  // The Euler tour packs (src, dst) into one key; check the order matches
  // lexicographic pair comparison.
  Context ctx(1);
  util::Rng rng(5);
  const std::size_t n = 5000;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(n);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::int32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs[i] = {static_cast<std::uint32_t>(rng.below(100)),
                static_cast<std::uint32_t>(rng.below(100))};
    keys[i] = (static_cast<std::uint64_t>(pairs[i].first) << 32) |
              pairs[i].second;
    ids[i] = static_cast<std::int32_t>(i);
  }
  sort_pairs(ctx, keys, ids);
  for (std::size_t i = 1; i < n; ++i) {
    ASSERT_LE(pairs[ids[i - 1]], pairs[ids[i]]);
  }
}

}  // namespace
}  // namespace emc::device
