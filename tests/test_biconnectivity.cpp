#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bridges/biconnectivity.hpp"
#include "bridges/dfs_bridges.hpp"
#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"

namespace emc::bridges {
namespace {

graph::EdgeList prepared(graph::EdgeList raw) {
  return graph::largest_component(graph::simplified(raw));
}

void expect_tv_matches_dfs(const device::Context& ctx,
                           const graph::EdgeList& g, const char* label) {
  const graph::Csr csr = build_csr(ctx, g);
  const BiconnectivityResult tv = biconnectivity_tv(ctx, g);
  const BiconnectivityResult dfs = biconnectivity_dfs(g, csr);
  ASSERT_TRUE(same_block_partition(tv.edge_block, dfs.edge_block))
      << label << ": block partitions differ";
  ASSERT_EQ(tv.num_blocks, dfs.num_blocks) << label;
  ASSERT_EQ(tv.is_articulation, dfs.is_articulation) << label;
}

class BiconnParam : public ::testing::TestWithParam<unsigned> {
 protected:
  device::Context ctx_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Workers, BiconnParam, ::testing::Values(1u, 4u));

TEST_P(BiconnParam, SingleEdge) {
  graph::EdgeList g;
  g.num_nodes = 2;
  g.edges = {{0, 1}};
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 1u);
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 0}));
  expect_tv_matches_dfs(ctx_, g, "single-edge");
}

TEST_P(BiconnParam, PathEveryInternalNodeIsArticulation) {
  const auto g = gen::path_graph(50);
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 49u);  // every edge its own block
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(result.is_articulation[v], v != 0 && v != 49) << v;
  }
  expect_tv_matches_dfs(ctx_, g, "path");
}

TEST_P(BiconnParam, CycleIsOneBlock) {
  const auto g = gen::cycle_graph(60);
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 1u);
  for (NodeId v = 0; v < 60; ++v) EXPECT_EQ(result.is_articulation[v], 0);
  expect_tv_matches_dfs(ctx_, g, "cycle");
}

TEST_P(BiconnParam, TwoTrianglesSharingAVertex) {
  // Classic articulation example: blocks {0,1,2} and {2,3,4} share node 2.
  graph::EdgeList g;
  g.num_nodes = 5;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}};
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 2u);
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 0, 1, 0, 0}));
  EXPECT_EQ(result.edge_block[0], result.edge_block[1]);
  EXPECT_EQ(result.edge_block[1], result.edge_block[2]);
  EXPECT_EQ(result.edge_block[3], result.edge_block[4]);
  EXPECT_NE(result.edge_block[0], result.edge_block[3]);
  expect_tv_matches_dfs(ctx_, g, "bowtie");
}

TEST_P(BiconnParam, BridgeEndpointsAreArticulationsWhenInternal) {
  // Two triangles joined by a path of two bridges through node 6.
  graph::EdgeList g;
  g.num_nodes = 7;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 6}, {6, 3}};
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 4u);  // 2 triangles + 2 bridge blocks
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 0, 1, 1, 0, 0, 1}));
  expect_tv_matches_dfs(ctx_, g, "dumbbell");
}

TEST_P(BiconnParam, ParallelEdgesFormTheirOwnBlock) {
  graph::EdgeList g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {0, 1}, {1, 2}};
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 2u);
  EXPECT_EQ(result.edge_block[0], result.edge_block[1]);
  EXPECT_NE(result.edge_block[0], result.edge_block[2]);
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 1, 0}));
  expect_tv_matches_dfs(ctx_, g, "parallel");
}

TEST_P(BiconnParam, StarBlocksArePendantEdges) {
  graph::EdgeList g;
  g.num_nodes = 30;
  for (NodeId v = 1; v < 30; ++v) g.edges.push_back({0, v});
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 29u);
  EXPECT_EQ(result.is_articulation[0], 1);
  for (NodeId v = 1; v < 30; ++v) EXPECT_EQ(result.is_articulation[v], 0);
  expect_tv_matches_dfs(ctx_, g, "star");
}

TEST_P(BiconnParam, RandomGraphSweepMatchesDfs) {
  for (const double density : {1.05, 1.5, 3.0}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto g = prepared(gen::er_graph(
          300, static_cast<std::size_t>(300 * density), seed * 13));
      if (g.num_nodes < 3) continue;
      expect_tv_matches_dfs(ctx_, g, "er-sweep");
    }
  }
}

TEST_P(BiconnParam, RoadAndKronClasses) {
  expect_tv_matches_dfs(
      ctx_, prepared(gen::road_graph(20, 20, 0.7, 0.05, 2)), "road");
  expect_tv_matches_dfs(ctx_, prepared(gen::kron_graph(8, 3, 3)), "kron");
}

TEST_P(BiconnParam, BlocksRefineBridges) {
  // A bridge is exactly an edge that forms a singleton block that is also
  // a cut: cross-check edge_block against the bridge finder.
  const auto g = prepared(gen::er_graph(400, 450, 21));
  const graph::Csr csr = build_csr(ctx_, g);
  const auto mask = find_bridges_dfs(csr);
  const auto bic = biconnectivity_tv(ctx_, g);
  // Count members of each block.
  std::vector<std::size_t> block_size;
  std::vector<NodeId> labels = bic.edge_block;
  std::set<NodeId> distinct(labels.begin(), labels.end());
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    std::size_t members = 0;
    for (std::size_t f = 0; f < g.edges.size(); ++f) {
      members += labels[f] == labels[e];
    }
    // bridge <=> singleton block
    ASSERT_EQ(mask[e] == 1, members == 1) << "edge " << e;
    if (g.edges.size() > 2000) break;  // quadratic guard
  }
  EXPECT_EQ(distinct.size(), bic.num_blocks);
}

TEST(Biconnectivity, DfsBaselineOnDisconnectedInput) {
  // The DFS baseline tolerates multiple components (TV requires connected).
  graph::EdgeList g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}};
  const device::Context ctx(1);
  const auto result = biconnectivity_dfs(g, build_csr(ctx, g));
  EXPECT_EQ(result.num_blocks, 2u);
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 0, 0, 0, 0, 0}));
}

TEST(Biconnectivity, SameBlockPartitionUtility) {
  EXPECT_TRUE(same_block_partition({1, 1, 2}, {7, 7, 9}));
  EXPECT_FALSE(same_block_partition({1, 1, 2}, {7, 8, 9}));
  EXPECT_FALSE(same_block_partition({1, 2, 2}, {7, 7, 9}));
  EXPECT_FALSE(same_block_partition({1}, {1, 2}));
  EXPECT_TRUE(same_block_partition({}, {}));
}

}  // namespace
}  // namespace emc::bridges
