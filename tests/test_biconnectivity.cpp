#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bridges/biconnectivity.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/two_ecc.hpp"
#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"

namespace emc::bridges {
namespace {

graph::EdgeList prepared(graph::EdgeList raw) {
  return graph::largest_component(graph::simplified(raw));
}

void expect_tv_matches_dfs(const device::Context& ctx,
                           const graph::EdgeList& g, const char* label) {
  const graph::Csr csr = build_csr(ctx, g);
  const BiconnectivityResult tv = biconnectivity_tv(ctx, g);
  const BiconnectivityResult dfs = biconnectivity_dfs(g, csr);
  ASSERT_TRUE(same_block_partition(tv.edge_block, dfs.edge_block))
      << label << ": block partitions differ";
  ASSERT_EQ(tv.num_blocks, dfs.num_blocks) << label;
  ASSERT_EQ(tv.is_articulation, dfs.is_articulation) << label;
}

class BiconnParam : public ::testing::TestWithParam<unsigned> {
 protected:
  device::Context ctx_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Workers, BiconnParam, ::testing::Values(1u, 4u));

TEST_P(BiconnParam, SingleEdge) {
  graph::EdgeList g;
  g.num_nodes = 2;
  g.edges = {{0, 1}};
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 1u);
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 0}));
  expect_tv_matches_dfs(ctx_, g, "single-edge");
}

TEST_P(BiconnParam, PathEveryInternalNodeIsArticulation) {
  const auto g = gen::path_graph(50);
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 49u);  // every edge its own block
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(result.is_articulation[v], v != 0 && v != 49) << v;
  }
  expect_tv_matches_dfs(ctx_, g, "path");
}

TEST_P(BiconnParam, CycleIsOneBlock) {
  const auto g = gen::cycle_graph(60);
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 1u);
  for (NodeId v = 0; v < 60; ++v) EXPECT_EQ(result.is_articulation[v], 0);
  expect_tv_matches_dfs(ctx_, g, "cycle");
}

TEST_P(BiconnParam, TwoTrianglesSharingAVertex) {
  // Classic articulation example: blocks {0,1,2} and {2,3,4} share node 2.
  graph::EdgeList g;
  g.num_nodes = 5;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}};
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 2u);
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 0, 1, 0, 0}));
  EXPECT_EQ(result.edge_block[0], result.edge_block[1]);
  EXPECT_EQ(result.edge_block[1], result.edge_block[2]);
  EXPECT_EQ(result.edge_block[3], result.edge_block[4]);
  EXPECT_NE(result.edge_block[0], result.edge_block[3]);
  expect_tv_matches_dfs(ctx_, g, "bowtie");
}

TEST_P(BiconnParam, BridgeEndpointsAreArticulationsWhenInternal) {
  // Two triangles joined by a path of two bridges through node 6.
  graph::EdgeList g;
  g.num_nodes = 7;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 6}, {6, 3}};
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 4u);  // 2 triangles + 2 bridge blocks
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 0, 1, 1, 0, 0, 1}));
  expect_tv_matches_dfs(ctx_, g, "dumbbell");
}

TEST_P(BiconnParam, ParallelEdgesFormTheirOwnBlock) {
  graph::EdgeList g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {0, 1}, {1, 2}};
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 2u);
  EXPECT_EQ(result.edge_block[0], result.edge_block[1]);
  EXPECT_NE(result.edge_block[0], result.edge_block[2]);
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 1, 0}));
  expect_tv_matches_dfs(ctx_, g, "parallel");
}

TEST_P(BiconnParam, StarBlocksArePendantEdges) {
  graph::EdgeList g;
  g.num_nodes = 30;
  for (NodeId v = 1; v < 30; ++v) g.edges.push_back({0, v});
  const auto result = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(result.num_blocks, 29u);
  EXPECT_EQ(result.is_articulation[0], 1);
  for (NodeId v = 1; v < 30; ++v) EXPECT_EQ(result.is_articulation[v], 0);
  expect_tv_matches_dfs(ctx_, g, "star");
}

TEST_P(BiconnParam, RandomGraphSweepMatchesDfs) {
  for (const double density : {1.05, 1.5, 3.0}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto g = prepared(gen::er_graph(
          300, static_cast<std::size_t>(300 * density), seed * 13));
      if (g.num_nodes < 3) continue;
      expect_tv_matches_dfs(ctx_, g, "er-sweep");
    }
  }
}

TEST_P(BiconnParam, RoadAndKronClasses) {
  expect_tv_matches_dfs(
      ctx_, prepared(gen::road_graph(20, 20, 0.7, 0.05, 2)), "road");
  expect_tv_matches_dfs(ctx_, prepared(gen::kron_graph(8, 3, 3)), "kron");
}

TEST_P(BiconnParam, BlocksRefineBridges) {
  // A bridge is exactly an edge that forms a singleton block that is also
  // a cut: cross-check edge_block against the bridge finder.
  const auto g = prepared(gen::er_graph(400, 450, 21));
  const graph::Csr csr = build_csr(ctx_, g);
  const auto mask = find_bridges_dfs(csr);
  const auto bic = biconnectivity_tv(ctx_, g);
  // Count members of each block.
  std::vector<std::size_t> block_size;
  std::vector<NodeId> labels = bic.edge_block;
  std::set<NodeId> distinct(labels.begin(), labels.end());
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    std::size_t members = 0;
    for (std::size_t f = 0; f < g.edges.size(); ++f) {
      members += labels[f] == labels[e];
    }
    // bridge <=> singleton block
    ASSERT_EQ(mask[e] == 1, members == 1) << "edge " << e;
    if (g.edges.size() > 2000) break;  // quadratic guard
  }
  EXPECT_EQ(distinct.size(), bic.num_blocks);
}

TEST(Biconnectivity, DfsBaselineOnDisconnectedInput) {
  // The DFS baseline tolerates multiple components (TV requires connected).
  graph::EdgeList g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}};
  const device::Context ctx(1);
  const auto result = biconnectivity_dfs(g, build_csr(ctx, g));
  EXPECT_EQ(result.num_blocks, 2u);
  EXPECT_EQ(result.is_articulation,
            (std::vector<std::uint8_t>{0, 0, 0, 0, 0, 0}));
}

// --------------------------------------------- dynamic-path adversarials
//
// The batch-dynamic subsystem (src/dynamic) feeds these shapes to the
// static algorithms on every rebuild; pin them down standalone.

TEST(BiconnectivityAdversarial, TwoEccOnEdgelessGraph) {
  // An update batch that erases everything leaves an edgeless snapshot.
  const device::Context ctx(1);
  graph::EdgeList g;
  g.num_nodes = 4;
  const auto labels = two_edge_components(ctx, g, BridgeMask{});
  ASSERT_EQ(labels.size(), 4u);
  const std::set<NodeId> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 4u);  // all singletons
}

TEST(BiconnectivityAdversarial, TwoEccAcrossConnectingInsert) {
  // Disconnected graph gaining a connecting edge: the new edge is a bridge,
  // so the 2ecc partition must not merge across it.
  const device::Context ctx(2);
  graph::EdgeList g;
  g.num_nodes = 6;
  g.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}};
  const graph::Csr before = build_csr(ctx, g);
  const auto labels_before =
      two_edge_components(ctx, g, find_bridges_dfs(before));
  EXPECT_EQ(labels_before[0], labels_before[2]);
  EXPECT_NE(labels_before[0], labels_before[3]);

  g.edges.push_back({2, 3});  // the connecting insert
  const auto mask = find_bridges_dfs(build_csr(ctx, g));
  EXPECT_EQ(count_bridges(mask), 1u);
  EXPECT_EQ(mask[6], 1);
  const auto labels_after = two_edge_components(ctx, g, mask);
  EXPECT_NE(labels_after[2], labels_after[3]);
  EXPECT_EQ(labels_after[0], labels_after[2]);
  EXPECT_EQ(labels_after[3], labels_after[5]);
}

TEST_P(BiconnParam, LosesAllBridgesAfterInsert) {
  // A path (every edge a bridge, every internal node an articulation)
  // closed into a cycle by one insert: no bridges, no articulations, one
  // block. Both the blocks and the 2ecc partition must collapse.
  graph::EdgeList g = gen::path_graph(64);
  const auto mask_before = find_bridges_dfs(build_csr(ctx_, g));
  EXPECT_EQ(count_bridges(mask_before), 63u);

  g.edges.push_back({63, 0});
  const auto mask_after = find_bridges_dfs(build_csr(ctx_, g));
  EXPECT_EQ(count_bridges(mask_after), 0u);
  const auto bic = biconnectivity_tv(ctx_, g);
  EXPECT_EQ(bic.num_blocks, 1u);
  for (const auto a : bic.is_articulation) EXPECT_EQ(a, 0);
  const auto labels = two_edge_components(ctx_, g, mask_after);
  const std::set<NodeId> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 1u);
  expect_tv_matches_dfs(ctx_, g, "closed-path");
}

TEST_P(BiconnParam, AllDuplicateBatchShape) {
  // An all-duplicate insert batch leaves the snapshot a simple graph, but
  // the same edges may also arrive as a raw multigraph; the two forms must
  // produce the same block partition sizes.
  graph::EdgeList multi;
  multi.num_nodes = 4;
  multi.edges = {{0, 1}, {1, 0}, {1, 2}, {1, 2}, {2, 3}};
  const auto simple = graph::canonicalize(ctx_, multi);
  ASSERT_EQ(simple.edges.size(), 3u);
  const auto bic_multi = biconnectivity_tv(ctx_, multi);
  const auto bic_simple = biconnectivity_tv(ctx_, simple);
  // Multigraph: each parallel pair is a 2-cycle block, plus the 2-3 pendant
  // edge. Simple form: a path of 3 pendant blocks. Both have 3 blocks.
  EXPECT_EQ(bic_multi.num_blocks, 3u);
  EXPECT_EQ(bic_simple.num_blocks, 3u);
  expect_tv_matches_dfs(ctx_, multi, "multi");
  expect_tv_matches_dfs(ctx_, simple, "simple");
}

TEST(Biconnectivity, SameBlockPartitionUtility) {
  EXPECT_TRUE(same_block_partition({1, 1, 2}, {7, 7, 9}));
  EXPECT_FALSE(same_block_partition({1, 1, 2}, {7, 8, 9}));
  EXPECT_FALSE(same_block_partition({1, 2, 2}, {7, 7, 9}));
  EXPECT_FALSE(same_block_partition({1}, {1, 2}));
  EXPECT_TRUE(same_block_partition({}, {}));
}

}  // namespace
}  // namespace emc::bridges
