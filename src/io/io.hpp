// Graph and tree serialization.
//
// The paper's datasets ship in two ecosystems' formats: DIMACS .gr (the
// USA-road files) and SNAP/network-repository edge lists (the social and web
// graphs). This module reads both, plus a minimal native format for trees
// and edge lists, so the bench harnesses and examples can run on real files
// when they are available and on generated stand-ins when they are not.
//
// All readers are tolerant of comments and blank lines, validate ids, and
// report failures with a line number instead of asserting.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/tree.hpp"
#include "graph/graph.hpp"

namespace emc::io {

/// Parse failure description.
struct Error {
  std::size_t line = 0;
  std::string message;
};

template <typename T>
struct Result {
  std::optional<T> value;
  Error error;  // meaningful only when !value

  explicit operator bool() const { return value.has_value(); }
};

/// Native edge-list format:
///   # comment
///   n m
///   u v        (m lines, 0-based)
Result<graph::EdgeList> read_edge_list(std::istream& in);
void write_edge_list(std::ostream& out, const graph::EdgeList& graph);

/// DIMACS shortest-path format (.gr): "c" comments, one "p sp n m" header,
/// "a u v w" arcs with 1-based endpoints. Arcs usually appear in both
/// directions; duplicates are kept (use graph::simplified()).
Result<graph::EdgeList> read_dimacs(std::istream& in);
void write_dimacs(std::ostream& out, const graph::EdgeList& graph);

/// SNAP-style edge list: "#" comments, "u v" per line with arbitrary
/// non-negative ids, which are densely renumbered in first-seen order.
Result<graph::EdgeList> read_snap(std::istream& in);

/// Native parent-array tree format:
///   n root
///   parent(0) parent(1) ... parent(n-1)   (-1 for the root; whitespace-split)
Result<core::ParentTree> read_parent_tree(std::istream& in);
void write_parent_tree(std::ostream& out, const core::ParentTree& tree);

/// Convenience file wrappers (nullopt + message on open failure too).
Result<graph::EdgeList> load_graph_file(const std::string& path);

}  // namespace emc::io
