#include "io/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace emc::io {

namespace {

bool is_blank_or_comment(const std::string& line, char comment) {
  for (const char c : line) {
    if (c == comment) return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

template <typename T>
Result<T> fail(std::size_t line, std::string message) {
  Result<T> result;
  result.error = {line, std::move(message)};
  return result;
}

}  // namespace

Result<graph::EdgeList> read_edge_list(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  graph::EdgeList g;
  bool header_seen = false;
  std::size_t expected_edges = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_blank_or_comment(line, '#')) continue;
    std::istringstream fields(line);
    if (!header_seen) {
      long long n = 0, m = 0;
      if (!(fields >> n >> m) || n < 1 || m < 0) {
        return fail<graph::EdgeList>(line_no, "expected header 'n m'");
      }
      g.num_nodes = static_cast<NodeId>(n);
      expected_edges = static_cast<std::size_t>(m);
      g.edges.reserve(expected_edges);
      header_seen = true;
      continue;
    }
    long long u = 0, v = 0;
    if (!(fields >> u >> v)) {
      return fail<graph::EdgeList>(line_no, "expected edge 'u v'");
    }
    if (u < 0 || v < 0 || u >= g.num_nodes || v >= g.num_nodes) {
      return fail<graph::EdgeList>(line_no, "node id out of range");
    }
    g.edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  if (!header_seen) return fail<graph::EdgeList>(line_no, "empty input");
  if (g.edges.size() != expected_edges) {
    return fail<graph::EdgeList>(line_no, "edge count mismatch with header");
  }
  Result<graph::EdgeList> result;
  result.value = std::move(g);
  return result;
}

void write_edge_list(std::ostream& out, const graph::EdgeList& graph) {
  out << graph.num_nodes << ' ' << graph.edges.size() << '\n';
  for (const auto& e : graph.edges) out << e.u << ' ' << e.v << '\n';
}

Result<graph::EdgeList> read_dimacs(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  graph::EdgeList g;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    switch (line[0]) {
      case 'c':
        continue;
      case 'p': {
        std::istringstream fields(line);
        std::string p, kind;
        long long n = 0, m = 0;
        if (!(fields >> p >> kind >> n >> m) || n < 1) {
          return fail<graph::EdgeList>(line_no, "bad 'p' header");
        }
        g.num_nodes = static_cast<NodeId>(n);
        g.edges.reserve(static_cast<std::size_t>(m));
        header_seen = true;
        break;
      }
      case 'a': {
        if (!header_seen) {
          return fail<graph::EdgeList>(line_no, "'a' line before 'p' header");
        }
        std::istringstream fields(line);
        char a = 0;
        long long u = 0, v = 0;
        if (!(fields >> a >> u >> v)) {  // weight, if present, is ignored
          return fail<graph::EdgeList>(line_no, "bad 'a' line");
        }
        if (u < 1 || v < 1 || u > g.num_nodes || v > g.num_nodes) {
          return fail<graph::EdgeList>(line_no, "node id out of range");
        }
        if (u != v) {
          g.edges.push_back({static_cast<NodeId>(u - 1),
                             static_cast<NodeId>(v - 1)});
        }
        break;
      }
      default:
        return fail<graph::EdgeList>(line_no, "unknown line type");
    }
  }
  if (!header_seen) return fail<graph::EdgeList>(line_no, "missing 'p' header");
  Result<graph::EdgeList> result;
  result.value = std::move(g);
  return result;
}

void write_dimacs(std::ostream& out, const graph::EdgeList& graph) {
  out << "c written by euler-meets-gpu\n";
  out << "p sp " << graph.num_nodes << ' ' << 2 * graph.edges.size() << '\n';
  for (const auto& e : graph.edges) {
    out << "a " << e.u + 1 << ' ' << e.v + 1 << " 1\n";
    out << "a " << e.v + 1 << ' ' << e.u + 1 << " 1\n";
  }
}

Result<graph::EdgeList> read_snap(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  graph::EdgeList g;
  std::unordered_map<long long, NodeId> remap;
  auto intern = [&](long long raw) {
    const auto [it, inserted] = remap.try_emplace(raw, g.num_nodes);
    if (inserted) ++g.num_nodes;
    return it->second;
  };
  bool any = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_blank_or_comment(line, '#')) continue;
    std::istringstream fields(line);
    long long u = 0, v = 0;
    if (!(fields >> u >> v)) {
      return fail<graph::EdgeList>(line_no, "expected edge 'u v'");
    }
    if (u < 0 || v < 0) {
      return fail<graph::EdgeList>(line_no, "negative node id");
    }
    any = true;
    if (u == v) continue;
    g.edges.push_back({intern(u), intern(v)});
  }
  if (!any) return fail<graph::EdgeList>(line_no, "no edges in input");
  Result<graph::EdgeList> result;
  result.value = std::move(g);
  return result;
}

Result<core::ParentTree> read_parent_tree(std::istream& in) {
  long long n = 0, root = 0;
  if (!(in >> n >> root) || n < 1 || root < 0 || root >= n) {
    return fail<core::ParentTree>(1, "expected header 'n root'");
  }
  core::ParentTree tree;
  tree.root = static_cast<NodeId>(root);
  tree.parent.resize(static_cast<std::size_t>(n));
  for (long long v = 0; v < n; ++v) {
    long long p = 0;
    if (!(in >> p)) {
      return fail<core::ParentTree>(2, "missing parent entries");
    }
    if (p < -1 || p >= n) {
      return fail<core::ParentTree>(2, "parent id out of range");
    }
    tree.parent[v] = static_cast<NodeId>(p);
  }
  if (tree.parent[tree.root] != kNoNode) {
    return fail<core::ParentTree>(2, "root must have parent -1");
  }
  if (!core::valid_parent_tree(tree)) {
    return fail<core::ParentTree>(2, "parent array is not a tree");
  }
  Result<core::ParentTree> result;
  result.value = std::move(tree);
  return result;
}

void write_parent_tree(std::ostream& out, const core::ParentTree& tree) {
  out << tree.parent.size() << ' ' << tree.root << '\n';
  for (std::size_t v = 0; v < tree.parent.size(); ++v) {
    out << tree.parent[v] << (v + 1 == tree.parent.size() ? '\n' : ' ');
  }
}

Result<graph::EdgeList> load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return fail<graph::EdgeList>(0, "cannot open " + path);
  // Sniff the format: DIMACS starts with 'c'/'p', SNAP with '#', native
  // with a bare "n m" header.
  const int first = in.peek();
  if (first == 'c' || first == 'p') return read_dimacs(in);
  if (first == '#') return read_snap(in);
  return read_edge_list(in);
}

}  // namespace emc::io
