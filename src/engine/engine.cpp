#include "engine/engine.hpp"

#include <algorithm>
#include <cassert>

#include "bridges/chaitanya_kothapalli.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/hybrid.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "core/euler_tour.hpp"
#include "core/tree.hpp"
#include "device/primitives.hpp"

namespace emc::engine {

Engine::Engine(const EngineOptions& options)
    : options_(options),
      device_(options.device_workers == 0
                  ? device::Context::device()
                  : device::Context(options.device_workers,
                                    device::Context::device_launch_overhead())),
      multicore_(options.multicore_workers == 0
                     ? device::Context(std::max(2u, device_.workers() / 2))
                     : device::Context(options.multicore_workers)) {}

Session Engine::session(GraphRef graph) {
  ++stats_.sessions;
  return Session(*this, graph);
}

// ----------------------------------------------------------- cache plumbing

void Session::sync_epoch() {
  const std::uint64_t epoch = graph_.epoch();
  if (cache_.epoch == epoch) return;
  cache_.epoch = epoch;
  cache_.csr.reset();
  cache_.forest.reset();
  cache_.stitched.reset();
  cache_.stitched_csr.reset();
  cache_.mask.reset();
  cache_.mask_backend = Backend::kAuto;
  cache_.oracle_current = false;  // the oracle object itself survives: its
                                  // refresh() replays dynamic deltas
  cache_.forest_lca.reset();
  // The diameter hint is sticky by design (see diameter_estimate()).
}

void Session::drop_artifacts() {
  cache_.epoch = Cache::kNone;
  sync_epoch();  // resets every epoch-keyed artifact
  cache_.epoch = Cache::kNone;
  // A dynamic graph's oracle would otherwise see an unchanged (uid, epoch)
  // and no-op its refresh — sever the binding so the rebuild is real.
  cache_.oracle.invalidate();
}

void Session::drop_results() {
  cache_.mask.reset();
  cache_.mask_backend = Backend::kAuto;
  cache_.oracle_current = false;
  cache_.oracle.invalidate();  // see drop_artifacts()
  cache_.forest_lca.reset();
}

bool Session::track(bool built) {
  if (built) {
    ++engine_->stats_.artifact_builds;
  } else {
    ++engine_->stats_.artifact_hits;
  }
  return built;
}

const graph::Csr& Session::csr() {
  sync_epoch();
  if (graph_.is_dynamic()) {
    // The DCSR caches its own per-epoch CSR; delegating keeps it zero-copy.
    track(!graph_.dynamic_graph()->csr_snapshot_ready());
    return graph_.dynamic_graph()->snapshot_csr(engine_->device_);
  }
  track(!cache_.csr);
  if (!cache_.csr) {
    cache_.csr = graph::build_csr(engine_->device_, graph_.edges(engine_->device_));
  }
  return *cache_.csr;
}

const bridges::SpanningForest& Session::forest() {
  sync_epoch();
  track(!cache_.forest);
  if (!cache_.forest) {
    cache_.forest = bridges::cc_spanning_forest(engine_->device_,
                                                graph_.edges(engine_->device_));
  }
  return *cache_.forest;
}

std::size_t Session::num_components() { return forest().num_components; }

const graph::EdgeList& Session::stitched() {
  sync_epoch();
  track(!cache_.stitched);
  if (!cache_.stitched) {
    const device::Context& ctx = engine_->device_;
    const graph::EdgeList& g = graph_.edges(ctx);
    cache_.stitched = bridges::stitch_components(
        g, bridges::component_representatives(ctx, forest()));
  }
  return *cache_.stitched;
}

const graph::Csr& Session::stitched_csr() {
  sync_epoch();
  track(!cache_.stitched_csr);
  if (!cache_.stitched_csr) {
    cache_.stitched_csr = graph::build_csr(engine_->device_, stitched());
  }
  return *cache_.stitched_csr;
}

NodeId Session::diameter_estimate() {
  sync_epoch();
  if (graph_.num_nodes() == 0) return 0;
  const std::size_t m = graph_.num_edges();
  const std::size_t m0 = cache_.diameter_at_m;
  const std::size_t drift = m > m0 ? m - m0 : m0 - m;
  // Edge-count drift misses structural change at constant m (balanced
  // insert/erase batches can collapse a road diameter without moving m),
  // so the hint also expires after a fixed number of effective update
  // batches — amortizing the two BFS sweeps to a sliver of steady-state
  // serving while bounding how stale the policy's key input can get.
  const bool stale =
      cache_.diameter == kNoNode ||
      drift * 4 > std::max<std::size_t>(m0, 1) ||
      graph_.epoch() - cache_.diameter_at_epoch >= Cache::kDiameterMaxAge;
  track(stale);
  if (stale) {
    cache_.diameter = graph::estimate_diameter(csr(), /*sweeps=*/2);
    cache_.diameter_at_m = m;
    cache_.diameter_at_epoch = graph_.epoch();
  }
  return cache_.diameter;
}

PlanInputs Session::machine_inputs() const {
  PlanInputs inputs;
  inputs.n = graph_.num_nodes();
  inputs.m = graph_.num_edges();
  inputs.device_workers = engine_->device_.workers();
  inputs.multicore_workers = engine_->multicore_.workers();
  inputs.launch_overhead = engine_->device_.launch_overhead();
  return inputs;
}

PlanInputs Session::plan_inputs() {
  PlanInputs inputs = machine_inputs();
  inputs.diameter = diameter_estimate();
  return inputs;
}

// -------------------------------------------------------------- artifacts

const bridges::BridgeMask& Session::mask_artifact(const Policy& policy,
                                                  util::PhaseTimer* phases) {
  sync_epoch();
  // A cached mask is reusable unless the request FORCES a backend other
  // than the one that computed it (forcing is the point in benches/tests).
  if (cache_.mask && (policy.backend == Backend::kAuto ||
                      policy.backend == cache_.mask_backend)) {
    track(false);
    return *cache_.mask;
  }
  const device::Context& device = engine_->device_;
  const graph::EdgeList& g = graph_.edges(device);
  const std::size_t m = g.edges.size();
  bridges::BridgeMask mask(m, 0);
  Backend backend = policy.backend;
  if (m == 0) {
    if (backend == Backend::kAuto) backend = Backend::kDfs;
  } else {
    if (backend == Backend::kAuto) backend = policy.choose(plan_inputs());
    if (backend == Backend::kDfs) {
      mask = bridges::find_bridges_dfs(csr());
    } else {
      // The parallel backends require a connected input; a disconnected
      // graph runs through the stitched augmentation and slices back.
      const bool connected = forest().num_components <= 1;
      const graph::EdgeList& target = connected ? g : stitched();
      switch (backend) {
        case Backend::kCkMulticore:
          mask = bridges::find_bridges_ck(engine_->multicore_, target,
                                          connected ? csr() : stitched_csr(),
                                          phases);
          break;
        case Backend::kCk:
          mask = bridges::find_bridges_ck(
              device, target, connected ? csr() : stitched_csr(), phases);
          break;
        case Backend::kTv:
          mask = bridges::find_bridges_tarjan_vishkin(device, target, phases);
          break;
        case Backend::kHybrid:
          mask = bridges::find_bridges_hybrid(device, target, phases);
          break;
        case Backend::kDfs:
        case Backend::kAuto:
          assert(false);
          break;
      }
      mask.resize(m);  // drop the virtual stitch edges' verdicts
    }
    // Inside the m > 0 branch: the edgeless early path runs no backend, so
    // it must not count as one.
    ++engine_->stats_.backend_runs[backend_index(backend)];
  }
  track(true);
  cache_.mask = std::move(mask);
  cache_.mask_backend = backend;
  return *cache_.mask;
}

const dynamic::ConnectivityOracle& Session::oracle_artifact(
    const Policy& policy) {
  sync_epoch();
  track(!(cache_.oracle_current));
  if (!cache_.oracle_current) {
    const bridges::BridgeMask* mask =
        cache_.mask ? &*cache_.mask : nullptr;
    // A forced backend follows the same rule as a forced Bridges request:
    // a cached mask from a DIFFERENT backend does not satisfy it.
    const bool needs_forced_mask =
        policy.backend != Backend::kAuto &&
        (mask == nullptr || cache_.mask_backend != policy.backend);
    if (graph_.is_dynamic()) {
      // An explicit backend override is honored by computing this epoch's
      // mask artifact with it and handing it down (it stays cached for
      // later Bridges requests) — but only when refresh() would actually
      // run the full rebuild: eagerly building a mask the incremental
      // replay then discards would turn every small-delta serving step
      // into a full mask computation. kAuto always stays lazy, and a
      // candidate delta that still aborts into the rebuild mid-flight
      // just runs the oracle's own TV mask phase.
      if (needs_forced_mask &&
          cache_.oracle.refresh_needs_rebuild(*graph_.dynamic_graph())) {
        mask = &mask_artifact(policy, nullptr);
      }
      // refresh() replays deltas incrementally when it can; this epoch's
      // cached mask and forest (only if already built — forcing either
      // would defeat the incremental path) spare the full rebuild those
      // phases.
      cache_.oracle.refresh(engine_->device_, *graph_.dynamic_graph(),
                            nullptr, mask,
                            cache_.forest ? &*cache_.forest : nullptr);
    } else {
      // Static: the mask is the policy-chosen artifact — ensure it exists
      // (recomputing a forced-backend mismatch, like a Bridges request
      // would), and hand the cached spanning forest down with it, so the
      // 2-ecc index pays only the marginal work on top of both.
      if (mask == nullptr || needs_forced_mask) {
        mask = &mask_artifact(policy, nullptr);
      }
      cache_.oracle.build(engine_->device_, graph_.edges(engine_->device_),
                          mask, &forest());
    }
    cache_.oracle_current = true;
  }
  return cache_.oracle;
}

const lca::InlabelLca& Session::forest_lca_artifact() {
  sync_epoch();
  track(!cache_.forest_lca);
  if (!cache_.forest_lca) {
    const device::Context& ctx = engine_->device_;
    const graph::EdgeList& g = graph_.edges(ctx);
    const bridges::SpanningForest& f = forest();
    const auto n = static_cast<std::size_t>(g.num_nodes);
    const auto virtual_root = static_cast<NodeId>(n);
    // Stitch the spanning forest into one tree below a virtual root (one
    // edge per component representative), root it with the Euler tour
    // technique, and index it with the Schieber-Vishkin inlabel LCA.
    graph::EdgeList tree;
    tree.num_nodes = static_cast<NodeId>(n + 1);
    const std::size_t t = f.tree_edges.size();
    const std::vector<NodeId> reps = bridges::component_representatives(ctx, f);
    const std::size_t k = reps.size();
    tree.edges.resize(t + k);
    device::transform(ctx, t, tree.edges.data(), [&](std::size_t i) {
      return g.edges[f.tree_edges[i]];
    });
    device::transform(ctx, k, tree.edges.data() + t, [&](std::size_t r) {
      return graph::Edge{virtual_root, reps[r]};
    });
    std::vector<NodeId> parent, level;
    core::root_tree(ctx, tree, virtual_root, parent, level);
    const core::ParentTree ptree{virtual_root, std::move(parent)};
    cache_.forest_lca = lca::InlabelLca::build_parallel(ctx, ptree);
  }
  return *cache_.forest_lca;
}

// --------------------------------------------------------------- requests

const bridges::BridgeMask& Session::run(const Bridges& request) {
  return run(request, engine_->default_policy());
}

const bridges::BridgeMask& Session::run(const Bridges& request,
                                        const Policy& policy) {
  ++engine_->stats_.requests;
  return mask_artifact(policy, request.phases);
}

TwoEccView Session::run(const TwoEcc& request) {
  return run(request, engine_->default_policy());
}

TwoEccView Session::run(const TwoEcc&, const Policy& policy) {
  ++engine_->stats_.requests;
  const dynamic::ConnectivityOracle& oracle = oracle_artifact(policy);
  return {&oracle.block_labels(), oracle.num_blocks(), oracle.num_bridges()};
}

std::vector<std::uint8_t> Session::run(const Same2Ecc& request) {
  return run(request, engine_->default_policy());
}

std::vector<std::uint8_t> Session::run(const Same2Ecc& request,
                                       const Policy& policy) {
  ++engine_->stats_.requests;
  const dynamic::ConnectivityOracle& oracle = oracle_artifact(policy);
  std::vector<std::uint8_t> answers;
  if (policy.use_device_batch(request.pairs.size(), machine_inputs())) {
    ++engine_->stats_.device_query_batches;
    oracle.same_2ecc_batch(engine_->device_, request.pairs, answers);
  } else {
    ++engine_->stats_.host_query_batches;
    answers.resize(request.pairs.size());
    for (std::size_t q = 0; q < request.pairs.size(); ++q) {
      answers[q] = static_cast<std::uint8_t>(
          oracle.same_2ecc(request.pairs[q].first, request.pairs[q].second));
    }
  }
  return answers;
}

std::vector<NodeId> Session::run(const BridgesOnPath& request) {
  return run(request, engine_->default_policy());
}

std::vector<NodeId> Session::run(const BridgesOnPath& request,
                                 const Policy& policy) {
  ++engine_->stats_.requests;
  const dynamic::ConnectivityOracle& oracle = oracle_artifact(policy);
  std::vector<NodeId> answers;
  if (policy.use_device_batch(request.pairs.size(), machine_inputs())) {
    ++engine_->stats_.device_query_batches;
    oracle.bridges_on_path_batch(engine_->device_, request.pairs, answers);
  } else {
    ++engine_->stats_.host_query_batches;
    answers.resize(request.pairs.size());
    for (std::size_t q = 0; q < request.pairs.size(); ++q) {
      answers[q] =
          oracle.bridges_on_path(request.pairs[q].first, request.pairs[q].second);
    }
  }
  return answers;
}

std::vector<NodeId> Session::run(const ComponentSize& request) {
  return run(request, engine_->default_policy());
}

std::vector<NodeId> Session::run(const ComponentSize& request,
                                 const Policy& policy) {
  ++engine_->stats_.requests;
  const dynamic::ConnectivityOracle& oracle = oracle_artifact(policy);
  std::vector<NodeId> answers;
  if (policy.use_device_batch(request.nodes.size(), machine_inputs())) {
    ++engine_->stats_.device_query_batches;
    oracle.component_size_batch(engine_->device_, request.nodes, answers);
  } else {
    ++engine_->stats_.host_query_batches;
    answers.resize(request.nodes.size());
    for (std::size_t q = 0; q < request.nodes.size(); ++q) {
      answers[q] = oracle.component_size(request.nodes[q]);
    }
  }
  return answers;
}

std::vector<NodeId> Session::run(const LcaBatch& request) {
  return run(request, engine_->default_policy());
}

std::vector<NodeId> Session::run(const LcaBatch& request,
                                 const Policy& policy) {
  ++engine_->stats_.requests;
  const lca::InlabelLca& lca = forest_lca_artifact();
  const auto virtual_root = static_cast<NodeId>(graph_.num_nodes());
  std::vector<NodeId> answers;
  if (policy.use_device_batch(request.pairs.size(), machine_inputs())) {
    ++engine_->stats_.device_query_batches;
    lca.query_batch(engine_->device_, request.pairs, answers);
  } else {
    ++engine_->stats_.host_query_batches;
    answers.resize(request.pairs.size());
    for (std::size_t q = 0; q < request.pairs.size(); ++q) {
      answers[q] = lca.query(request.pairs[q].first, request.pairs[q].second);
    }
  }
  // Meeting at the virtual root means "different components".
  for (NodeId& a : answers) {
    if (a == virtual_root) a = kNoNode;
  }
  return answers;
}

Plan Session::plan(const Bridges& request) {
  return plan(request, engine_->default_policy());
}

Plan Session::plan(const Bridges&, const Policy& policy) {
  Plan result;
  result.inputs = plan_inputs();
  for (std::size_t i = 0; i < kNumBackends; ++i) {
    result.predicted_seconds[i] =
        policy.model.seconds(kFixedBackends[i], result.inputs);
  }
  result.chosen = policy.choose(result.inputs);
  return result;
}

}  // namespace emc::engine
