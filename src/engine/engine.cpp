#include "engine/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "bridges/bfs.hpp"
#include "bridges/chaitanya_kothapalli.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/hybrid.hpp"
#include "bridges/stitch.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "device/primitives.hpp"
#include "gen/graphs.hpp"
#include "util/failpoint.hpp"

namespace emc::engine {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Machine-only inputs for the batch-size routing decision (Figure 6);
/// shared by Session (cache-side) and View (snapshot-side) answering.
PlanInputs query_inputs(const Engine& engine, NodeId n, std::size_t m) {
  PlanInputs inputs;
  inputs.n = n;
  inputs.m = m;
  inputs.device_workers = engine.device().workers();
  inputs.multicore_workers = engine.multicore().workers();
  inputs.launch_overhead = engine.device().launch_overhead();
  return inputs;
}

// The four query-answer routines below are the single implementation both
// Session::run (lazy cache) and View::run (frozen snapshot) delegate to.
// The host route reads the index with no synchronization at all — the
// index is immutable while the caller holds it — and the device route
// serializes its one bulk kernel on the context's driver lock, so any
// number of threads can answer concurrently. With
// Policy::host_fallback_when_busy set, a device-routed batch that finds the
// driver lock held degrades to the (identical-answer) host loop instead of
// queueing behind whoever holds it.

/// Device-route attempt shared by the helpers: returns a lock owning the
/// driver mutex, or an unowned lock when the policy chose to fall back.
std::unique_lock<std::recursive_mutex> lock_device_for_batch(
    const Engine& engine, const Policy& policy) {
  if (!policy.host_fallback_when_busy) return engine.device().exclusive();
  auto lock = engine.device().try_exclusive();
  if (!lock.owns_lock()) {
    engine.counters().host_fallbacks.fetch_add(1, kRelaxed);
  }
  return lock;
}

std::vector<std::uint8_t> answer_same2ecc(
    const Engine& engine, const dynamic::ConnectivityOracle& oracle,
    const Policy& policy, const PlanInputs& inputs, const Same2Ecc& request) {
  std::vector<std::uint8_t> answers;
  if (policy.use_device_batch(request.pairs.size(), inputs)) {
    const auto lock = lock_device_for_batch(engine, policy);
    if (lock.owns_lock()) {
      engine.counters().device_query_batches.fetch_add(1, kRelaxed);
      oracle.same_2ecc_batch(engine.device(), request.pairs, answers);
      return answers;
    }
  }
  engine.counters().host_query_batches.fetch_add(1, kRelaxed);
  answers.resize(request.pairs.size());
  for (std::size_t q = 0; q < request.pairs.size(); ++q) {
    answers[q] = static_cast<std::uint8_t>(
        oracle.same_2ecc(request.pairs[q].first, request.pairs[q].second));
  }
  return answers;
}

std::vector<NodeId> answer_bridges_on_path(
    const Engine& engine, const dynamic::ConnectivityOracle& oracle,
    const Policy& policy, const PlanInputs& inputs,
    const BridgesOnPath& request) {
  std::vector<NodeId> answers;
  if (policy.use_device_batch(request.pairs.size(), inputs)) {
    const auto lock = lock_device_for_batch(engine, policy);
    if (lock.owns_lock()) {
      engine.counters().device_query_batches.fetch_add(1, kRelaxed);
      oracle.bridges_on_path_batch(engine.device(), request.pairs, answers);
      return answers;
    }
  }
  engine.counters().host_query_batches.fetch_add(1, kRelaxed);
  answers.resize(request.pairs.size());
  for (std::size_t q = 0; q < request.pairs.size(); ++q) {
    answers[q] = oracle.bridges_on_path(request.pairs[q].first,
                                        request.pairs[q].second);
  }
  return answers;
}

std::vector<NodeId> answer_component_size(
    const Engine& engine, const dynamic::ConnectivityOracle& oracle,
    const Policy& policy, const PlanInputs& inputs,
    const ComponentSize& request) {
  std::vector<NodeId> answers;
  if (policy.use_device_batch(request.nodes.size(), inputs)) {
    const auto lock = lock_device_for_batch(engine, policy);
    if (lock.owns_lock()) {
      engine.counters().device_query_batches.fetch_add(1, kRelaxed);
      oracle.component_size_batch(engine.device(), request.nodes, answers);
      return answers;
    }
  }
  engine.counters().host_query_batches.fetch_add(1, kRelaxed);
  answers.resize(request.nodes.size());
  for (std::size_t q = 0; q < request.nodes.size(); ++q) {
    answers[q] = oracle.component_size(request.nodes[q]);
  }
  return answers;
}

std::vector<NodeId> answer_lca(const Engine& engine, const lca::InlabelLca& lca,
                               NodeId virtual_root, const Policy& policy,
                               const PlanInputs& inputs,
                               const LcaBatch& request) {
  std::vector<NodeId> answers;
  bool answered = false;
  if (policy.use_device_batch(request.pairs.size(), inputs)) {
    const auto lock = lock_device_for_batch(engine, policy);
    if (lock.owns_lock()) {
      engine.counters().device_query_batches.fetch_add(1, kRelaxed);
      lca.query_batch(engine.device(), request.pairs, answers);
      answered = true;
    }
  }
  if (!answered) {
    engine.counters().host_query_batches.fetch_add(1, kRelaxed);
    answers.resize(request.pairs.size());
    for (std::size_t q = 0; q < request.pairs.size(); ++q) {
      answers[q] = lca.query(request.pairs[q].first, request.pairs[q].second);
    }
  }
  // Meeting at the virtual root means "different components".
  for (NodeId& a : answers) {
    if (a == virtual_root) a = kNoNode;
  }
  return answers;
}

/// The new-family batch routing: the Policy cost model, with the strict
/// EMC_BCC_MIN_DEVICE_BATCH floor as an operator override (0 = model only).
bool use_device_for_family(const Policy& policy, std::size_t size,
                           const PlanInputs& inputs) {
  const std::size_t floor = bcc::resolve_bcc_min_device_batch();
  if (floor != 0 && size >= floor) return true;
  return policy.use_device_batch(size, inputs);
}

std::vector<std::uint8_t> answer_same_bcc(const Engine& engine,
                                          const bcc::BccIndex& index,
                                          const Policy& policy,
                                          const PlanInputs& inputs,
                                          const SameBcc& request) {
  std::vector<std::uint8_t> answers(request.pairs.size());
  const auto answer = [&](std::size_t q) -> std::uint8_t {
    return index.same_bcc(request.pairs[q].first, request.pairs[q].second)
               ? 1
               : 0;
  };
  if (use_device_for_family(policy, request.pairs.size(), inputs)) {
    const auto lock = lock_device_for_batch(engine, policy);
    if (lock.owns_lock()) {
      engine.counters().device_query_batches.fetch_add(1, kRelaxed);
      device::transform(engine.device(), request.pairs.size(), answers.data(),
                        answer);
      return answers;
    }
  }
  engine.counters().host_query_batches.fetch_add(1, kRelaxed);
  for (std::size_t q = 0; q < request.pairs.size(); ++q) answers[q] = answer(q);
  return answers;
}

std::vector<NodeId> answer_cc_membership(const Engine& engine,
                                         const bridges::SpanningForest& forest,
                                         const Policy& policy,
                                         const PlanInputs& inputs,
                                         const CcMembership& request) {
  std::vector<NodeId> answers(request.nodes.size());
  if (use_device_for_family(policy, request.nodes.size(), inputs)) {
    const auto lock = lock_device_for_batch(engine, policy);
    if (lock.owns_lock()) {
      engine.counters().device_query_batches.fetch_add(1, kRelaxed);
      device::gather(engine.device(), forest.component.data(),
                     request.nodes.data(), request.nodes.size(),
                     answers.data());
      return answers;
    }
  }
  engine.counters().host_query_batches.fetch_add(1, kRelaxed);
  for (std::size_t q = 0; q < request.nodes.size(); ++q) {
    answers[q] = forest.component[request.nodes[q]];
  }
  return answers;
}

std::vector<NodeId> answer_bfs_levels(const Engine& engine,
                                      const graph::Csr& csr,
                                      const Policy& policy,
                                      const PlanInputs& inputs,
                                      const BfsLevels& request) {
  std::vector<NodeId> answers(request.pairs.size(), kNoNode);
  if (request.pairs.empty()) return answers;
  // Group by distinct source: pairs sharing one share one traversal (the
  // launch-count pin — K same-source queries cost ONE device BFS). Both
  // routes are O(n + m) per distinct source; the policy's batch decision
  // separates the level-synchronous device kernels from a cache-friendly
  // sequential frontier walk, exactly the Figure 6 trade-off.
  std::unordered_map<NodeId, std::vector<std::size_t>> by_source;
  for (std::size_t q = 0; q < request.pairs.size(); ++q) {
    by_source[request.pairs[q].first].push_back(q);
  }
  if (use_device_for_family(policy, request.pairs.size(), inputs)) {
    const auto lock = lock_device_for_batch(engine, policy);
    if (lock.owns_lock()) {
      engine.counters().device_query_batches.fetch_add(1, kRelaxed);
      for (const auto& [source, queries] : by_source) {
        const bridges::BfsTree tree =
            bridges::bfs(engine.device(), csr, source);
        for (const std::size_t q : queries) {
          answers[q] = tree.level[request.pairs[q].second];
        }
      }
      return answers;
    }
  }
  engine.counters().host_query_batches.fetch_add(1, kRelaxed);
  std::vector<NodeId> level(static_cast<std::size_t>(csr.num_nodes));
  std::vector<NodeId> frontier, next;
  for (const auto& [source, queries] : by_source) {
    std::fill(level.begin(), level.end(), kNoNode);
    level[source] = 0;
    frontier.assign(1, source);
    NodeId depth = 0;
    while (!frontier.empty()) {
      ++depth;
      next.clear();
      for (const NodeId v : frontier) {
        for (EdgeId i = csr.row_offsets[v]; i < csr.row_offsets[v + 1]; ++i) {
          const NodeId w = csr.neighbors[i];
          if (level[w] == kNoNode) {
            level[w] = depth;
            next.push_back(w);
          }
        }
      }
      frontier.swap(next);
    }
    for (const std::size_t q : queries) {
      answers[q] = level[request.pairs[q].second];
    }
  }
  return answers;
}

}  // namespace

// ---------------------------------------------------------------- Engine

Engine::Engine(const EngineOptions& options)
    : options_(options),
      device_(options.device_workers == 0
                  ? device::Context::device()
                  : device::Context(options.device_workers,
                                    device::Context::device_launch_overhead())),
      multicore_(options.multicore_workers == 0
                     ? device::Context(std::max(2u, device_.workers() / 2))
                     : device::Context(options.multicore_workers)) {
  if (options_.calibrate) options_.policy.calibrate(*this);
}

Session Engine::session(GraphRef graph) {
  counters_.sessions.fetch_add(1, kRelaxed);
  return Session(*this, graph);
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.sessions = counters_.sessions.load(kRelaxed);
  s.requests = counters_.requests.load(kRelaxed);
  s.artifact_builds = counters_.artifact_builds.load(kRelaxed);
  s.artifact_hits = counters_.artifact_hits.load(kRelaxed);
  for (std::size_t i = 0; i < kNumBackends; ++i) {
    s.backend_runs[i] = counters_.backend_runs[i].load(kRelaxed);
  }
  s.device_query_batches = counters_.device_query_batches.load(kRelaxed);
  s.host_query_batches = counters_.host_query_batches.load(kRelaxed);
  s.host_fallbacks = counters_.host_fallbacks.load(kRelaxed);
  s.views = counters_.views.load(kRelaxed);
  s.publish_replays = counters_.publish_replays.load(kRelaxed);
  s.publish_rebuilds = counters_.publish_rebuilds.load(kRelaxed);
  return s;
}

// ----------------------------------------------------------- cache plumbing

void Session::sync_epoch() {
  const std::uint64_t epoch = graph_.epoch();
  if (cache_.epoch == epoch) return;
  cache_.epoch = epoch;
  // Resetting a shared_ptr drops the SESSION's reference only: Views
  // pinning the outgoing epoch keep its artifacts alive until they retire.
  cache_.csr.reset();
  cache_.forest.reset();
  cache_.stitched.reset();
  cache_.stitched_csr.reset();
  cache_.mask.reset();
  cache_.mask_backend = Backend::kAuto;
  cache_.bridge_edges.reset();
  cache_.mask_published = false;
  cache_.forest_published = false;
  cache_.oracle_current = false;  // the oracle object itself survives: its
                                  // refresh() replays dynamic deltas
  cache_.forest_lca.reset();
  // A FRESH cell, not a reset of the old one: Views pinning the outgoing
  // epoch share the old cell and may still be building into it.
  cache_.bcc = std::make_shared<bcc::BccCell>();
  // The diameter hint is sticky by design (see diameter_estimate()).
}

void Session::drop_artifacts() {
  cache_.epoch = Cache::kNone;
  sync_epoch();  // resets every epoch-keyed artifact
  cache_.epoch = Cache::kNone;
  // A dynamic graph's oracle would otherwise see an unchanged (uid, epoch)
  // and no-op its refresh — sever the binding so the rebuild is real.
  oracle_mut().invalidate();
}

void Session::drop_results() {
  cache_.mask.reset();
  cache_.mask_backend = Backend::kAuto;
  cache_.oracle_current = false;
  oracle_mut().invalidate();  // see drop_artifacts()
  cache_.forest_lca.reset();
  cache_.bcc = std::make_shared<bcc::BccCell>();
}

dynamic::ConnectivityOracle& Session::oracle_mut() {
  if (cache_.oracle_published) {
    // Copy-on-write: a View shares the object, so it must never change
    // underneath the readers. The clone carries the (uid, epoch) binding
    // and the cumulative stats, so the incremental replay still applies to
    // it exactly as it would have in place. The sticky flag (rather than
    // use_count() == 1) is deliberate: a refcount load is not a
    // synchronization point, so mutating on an observed count of 1 would
    // race the retired readers' earlier reads (no happens-before edge);
    // the price is at most one conservative clone after every View of an
    // epoch has already dropped.
    cache_.oracle = std::make_shared<dynamic::ConnectivityOracle>(*cache_.oracle);
    cache_.oracle_published = false;
  }
  return *cache_.oracle;
}

bool Session::track(bool built) {
  (built ? engine_->counters_.artifact_builds : engine_->counters_.artifact_hits)
      .fetch_add(1, kRelaxed);
  return built;
}

const graph::Csr& Session::csr_artifact() {
  sync_epoch();
  if (graph_.is_dynamic()) {
    // The DCSR caches its own per-epoch CSR; delegating keeps it zero-copy.
    track(!graph_.dynamic_graph()->csr_snapshot_ready());
    return graph_.dynamic_graph()->snapshot_csr(engine_->device_);
  }
  track(!cache_.csr);
  if (!cache_.csr) {
    cache_.csr = std::make_shared<const graph::Csr>(
        graph::build_csr(engine_->device_, graph_.edges(engine_->device_)));
  }
  return *cache_.csr;
}

const graph::Csr& Session::csr() {
  const auto lock = engine_->device_.exclusive();
  return csr_artifact();
}

const bridges::SpanningForest& Session::forest() {
  sync_epoch();
  track(!cache_.forest);
  if (!cache_.forest) {
    cache_.forest = std::make_shared<const bridges::SpanningForest>(
        bridges::cc_spanning_forest(engine_->device_,
                                    graph_.edges(engine_->device_)));
  }
  return *cache_.forest;
}

std::size_t Session::num_components() {
  const auto lock = engine_->device_.exclusive();
  return forest().num_components;
}

const graph::EdgeList& Session::stitched() {
  sync_epoch();
  track(!cache_.stitched);
  if (!cache_.stitched) {
    const device::Context& ctx = engine_->device_;
    const graph::EdgeList& g = graph_.edges(ctx);
    cache_.stitched = std::make_shared<const graph::EdgeList>(
        bridges::stitch_components(
            g, bridges::component_representatives(ctx, forest())));
  }
  return *cache_.stitched;
}

const graph::Csr& Session::stitched_csr() {
  sync_epoch();
  track(!cache_.stitched_csr);
  if (!cache_.stitched_csr) {
    cache_.stitched_csr = std::make_shared<const graph::Csr>(
        graph::build_csr(engine_->device_, stitched()));
  }
  return *cache_.stitched_csr;
}

NodeId Session::diameter_artifact() {
  sync_epoch();
  if (graph_.num_nodes() == 0) return 0;
  const std::size_t m = graph_.num_edges();
  const std::size_t m0 = cache_.diameter_at_m;
  const std::size_t drift = m > m0 ? m - m0 : m0 - m;
  // Edge-count drift misses structural change at constant m (balanced
  // insert/erase batches can collapse a road diameter without moving m),
  // so the hint also expires after a fixed number of effective update
  // batches — amortizing the two BFS sweeps to a sliver of steady-state
  // serving while bounding how stale the policy's key input can get.
  const bool stale =
      cache_.diameter == kNoNode ||
      drift * 4 > std::max<std::size_t>(m0, 1) ||
      graph_.epoch() - cache_.diameter_at_epoch >= Cache::kDiameterMaxAge;
  track(stale);
  if (stale) {
    cache_.diameter = graph::estimate_diameter(csr_artifact(), /*sweeps=*/2);
    cache_.diameter_at_m = m;
    cache_.diameter_at_epoch = graph_.epoch();
  }
  return cache_.diameter;
}

NodeId Session::diameter_estimate() {
  const auto lock = engine_->device_.exclusive();
  return diameter_artifact();
}

PlanInputs Session::machine_inputs() const {
  return query_inputs(*engine_, graph_.num_nodes(), graph_.num_edges());
}

PlanInputs Session::plan_inputs() {
  PlanInputs inputs = machine_inputs();
  inputs.diameter = diameter_artifact();
  return inputs;
}

// -------------------------------------------------------------- artifacts

const bridges::BridgeMask& Session::mask_artifact(const Policy& policy,
                                                  util::PhaseTimer* phases) {
  sync_epoch();
  // A cached mask is reusable unless the request FORCES a backend other
  // than the one that computed it (forcing is the point in benches/tests).
  if (cache_.mask && (policy.backend == Backend::kAuto ||
                      policy.backend == cache_.mask_backend)) {
    track(false);
    return *cache_.mask;
  }
  const device::Context& device = engine_->device_;
  const graph::EdgeList& g = graph_.edges(device);
  const std::size_t m = g.edges.size();
  bridges::BridgeMask mask(m, 0);
  Backend backend = policy.backend;
  if (m == 0) {
    if (backend == Backend::kAuto) backend = Backend::kDfs;
  } else {
    if (backend == Backend::kAuto) backend = policy.choose(plan_inputs());
    if (backend == Backend::kDfs) {
      mask = bridges::find_bridges_dfs(csr_artifact());
    } else {
      // The parallel backends require a connected input; a disconnected
      // graph runs through the stitched augmentation and slices back.
      const bool connected = forest().num_components <= 1;
      const graph::EdgeList& target = connected ? g : stitched();
      switch (backend) {
        case Backend::kCkMulticore:
          mask = bridges::find_bridges_ck(
              engine_->multicore_, target,
              connected ? csr_artifact() : stitched_csr(), phases);
          break;
        case Backend::kCk:
          mask = bridges::find_bridges_ck(
              device, target, connected ? csr_artifact() : stitched_csr(),
              phases);
          break;
        case Backend::kTv:
          mask = bridges::find_bridges_tarjan_vishkin(device, target, phases);
          break;
        case Backend::kHybrid:
          mask = bridges::find_bridges_hybrid(device, target, phases);
          break;
        case Backend::kDfs:
        case Backend::kAuto:
          assert(false);
          break;
      }
      mask.resize(m);  // drop the virtual stitch edges' verdicts
    }
    // Inside the m > 0 branch: the edgeless early path runs no backend, so
    // it must not count as one.
    engine_->counters_.backend_runs[backend_index(backend)].fetch_add(1,
                                                                      kRelaxed);
  }
  track(true);
  cache_.mask = std::make_shared<const bridges::BridgeMask>(std::move(mask));
  cache_.mask_backend = backend;
  return *cache_.mask;
}

const dynamic::ConnectivityOracle& Session::oracle_artifact(
    const Policy& policy) {
  sync_epoch();
  track(!(cache_.oracle_current));
  if (!cache_.oracle_current) {
    const bridges::BridgeMask* mask =
        cache_.mask ? &*cache_.mask : nullptr;
    // A forced backend follows the same rule as a forced Bridges request:
    // a cached mask from a DIFFERENT backend does not satisfy it.
    const bool needs_forced_mask =
        policy.backend != Backend::kAuto &&
        (mask == nullptr || cache_.mask_backend != policy.backend);
    const bridges::SpanningForest* forest_hint = nullptr;
    if (graph_.is_dynamic()) {
      // An explicit backend override is honored by computing this epoch's
      // mask artifact with it and handing it down (it stays cached for
      // later Bridges requests) — but only when refresh() would actually
      // run the full rebuild: eagerly building a mask the incremental
      // replay then discards would turn every small-delta serving step
      // into a full mask computation. kAuto always stays lazy, and a
      // candidate delta that still aborts into the rebuild mid-flight
      // just runs the oracle's own TV mask phase.
      if (needs_forced_mask &&
          cache_.oracle->refresh_needs_rebuild(*graph_.dynamic_graph())) {
        mask = &mask_artifact(policy, nullptr);
      }
      forest_hint = cache_.forest ? &*cache_.forest : nullptr;
    } else {
      // Static: the mask is the policy-chosen artifact — ensure it exists
      // (recomputing a forced-backend mismatch, like a Bridges request
      // would), and hand the cached spanning forest down with it, so the
      // 2-ecc index pays only the marginal work on top of both.
      if (mask == nullptr || needs_forced_mask) {
        mask = &mask_artifact(policy, nullptr);
      }
      forest_hint = &forest();
    }
    // oracle_mut() OUTSIDE the try: a clone failure must not invalidate the
    // published oracle still serving live Views.
    dynamic::ConnectivityOracle& oracle = oracle_mut();
    try {
      // refresh() replays deltas incrementally when it can; this epoch's
      // cached mask and forest (only if already built — forcing either
      // would defeat the incremental path) spare the full rebuild those
      // phases.
      if (graph_.is_dynamic()) {
        oracle.refresh(engine_->device_, *graph_.dynamic_graph(), nullptr,
                       mask, forest_hint);
      } else {
        oracle.build(engine_->device_, graph_.edges(engine_->device_), mask,
                     forest_hint);
      }
    } catch (...) {
      // A throw mid-refresh (injected fault, real OOM) can leave the index
      // half-updated with its (uid, epoch) binding intact — a retry would
      // then replay deltas on top of a corrupt base. Sever the binding so
      // the next attempt rebuilds from scratch.
      oracle.invalidate();
      throw;
    }
    cache_.oracle_current = true;
  }
  return *cache_.oracle;
}

const lca::InlabelLca& Session::forest_lca_artifact() {
  sync_epoch();
  track(!cache_.forest_lca);
  if (!cache_.forest_lca) {
    const device::Context& ctx = engine_->device_;
    const graph::EdgeList& g = graph_.edges(ctx);
    const bridges::SpanningForest& f = forest();
    const auto n = static_cast<std::size_t>(g.num_nodes);
    const auto virtual_root = static_cast<NodeId>(n);
    // Stitch the spanning forest into one tree below a virtual root (one
    // edge per component representative), root it with the Euler tour
    // technique, and index it with the Schieber-Vishkin inlabel LCA.
    graph::EdgeList tree;
    tree.num_nodes = static_cast<NodeId>(n + 1);
    const std::size_t t = f.tree_edges.size();
    const std::vector<NodeId> reps = bridges::component_representatives(ctx, f);
    const std::size_t k = reps.size();
    tree.edges.resize(t + k);
    device::transform(ctx, t, tree.edges.data(), [&](std::size_t i) {
      return g.edges[f.tree_edges[i]];
    });
    device::transform(ctx, k, tree.edges.data() + t, [&](std::size_t r) {
      return graph::Edge{virtual_root, reps[r]};
    });
    // One fused Euler tour roots the stitched tree AND feeds the inlabel
    // index (the root_tree + build_parallel pair toured it twice).
    cache_.forest_lca = std::make_shared<const lca::InlabelLca>(
        lca::InlabelLca::build_from_edges(ctx, tree, virtual_root));
  }
  return *cache_.forest_lca;
}

// --------------------------------------------------------------- requests

const bridges::BridgeMask& Session::run(const Bridges& request) {
  return run(request, engine_->default_policy());
}

const bridges::BridgeMask& Session::run(const Bridges& request,
                                        const Policy& policy) {
  engine_->counters_.requests.fetch_add(1, kRelaxed);
  const auto lock = engine_->device_.exclusive();
  return mask_artifact(policy, request.phases);
}

TwoEccView Session::run(const TwoEcc& request) {
  return run(request, engine_->default_policy());
}

TwoEccView Session::run(const TwoEcc&, const Policy& policy) {
  engine_->counters_.requests.fetch_add(1, kRelaxed);
  const auto lock = engine_->device_.exclusive();
  const dynamic::ConnectivityOracle& oracle = oracle_artifact(policy);
  return {&oracle.block_labels(), &oracle.block_sizes(), oracle.num_blocks(),
          oracle.num_bridges()};
}

const dynamic::ConnectivityOracle& Session::locked_oracle(
    const Policy& policy) {
  engine_->counters_.requests.fetch_add(1, kRelaxed);
  const auto lock = engine_->device_.exclusive();
  return oracle_artifact(policy);
}

const lca::InlabelLca& Session::locked_forest_lca() {
  engine_->counters_.requests.fetch_add(1, kRelaxed);
  const auto lock = engine_->device_.exclusive();
  return forest_lca_artifact();
}

std::shared_ptr<const bcc::BccIndex> Session::bcc_artifact() {
  sync_epoch();
  track(cache_.bcc->peek() == nullptr);
  forest();  // the build input; counted separately, like every artifact
  return cache_.bcc->get_or_build(engine_->device_,
                                  graph_.edges(engine_->device_),
                                  *cache_.forest);
}

std::shared_ptr<const bcc::BccIndex> Session::locked_bcc() {
  engine_->counters_.requests.fetch_add(1, kRelaxed);
  const auto lock = engine_->device_.exclusive();
  return bcc_artifact();
}

const bridges::SpanningForest& Session::locked_forest() {
  engine_->counters_.requests.fetch_add(1, kRelaxed);
  const auto lock = engine_->device_.exclusive();
  return forest();
}

std::vector<std::uint8_t> Session::run(const Same2Ecc& request) {
  return run(request, engine_->default_policy());
}

std::vector<std::uint8_t> Session::run(const Same2Ecc& request,
                                       const Policy& policy) {
  return answer_same2ecc(*engine_, locked_oracle(policy), policy,
                         machine_inputs(), request);
}

std::vector<NodeId> Session::run(const BridgesOnPath& request) {
  return run(request, engine_->default_policy());
}

std::vector<NodeId> Session::run(const BridgesOnPath& request,
                                 const Policy& policy) {
  return answer_bridges_on_path(*engine_, locked_oracle(policy), policy,
                                machine_inputs(), request);
}

std::vector<NodeId> Session::run(const ComponentSize& request) {
  return run(request, engine_->default_policy());
}

std::vector<NodeId> Session::run(const ComponentSize& request,
                                 const Policy& policy) {
  return answer_component_size(*engine_, locked_oracle(policy), policy,
                               machine_inputs(), request);
}

std::vector<NodeId> Session::run(const LcaBatch& request) {
  return run(request, engine_->default_policy());
}

std::vector<NodeId> Session::run(const LcaBatch& request,
                                 const Policy& policy) {
  return answer_lca(*engine_, locked_forest_lca(),
                    static_cast<NodeId>(graph_.num_nodes()), policy,
                    machine_inputs(), request);
}

std::vector<std::uint8_t> Session::run(const Articulations&) {
  return locked_bcc()->is_articulation;
}

std::vector<std::uint8_t> Session::run(const SameBcc& request) {
  return run(request, engine_->default_policy());
}

std::vector<std::uint8_t> Session::run(const SameBcc& request,
                                       const Policy& policy) {
  return answer_same_bcc(*engine_, *locked_bcc(), policy, machine_inputs(),
                         request);
}

std::vector<NodeId> Session::run(const BfsLevels& request) {
  return run(request, engine_->default_policy());
}

std::vector<NodeId> Session::run(const BfsLevels& request,
                                 const Policy& policy) {
  engine_->counters_.requests.fetch_add(1, kRelaxed);
  const graph::Csr* csr = nullptr;
  {
    const auto lock = engine_->device_.exclusive();
    csr = &csr_artifact();
  }
  return answer_bfs_levels(*engine_, *csr, policy, machine_inputs(), request);
}

std::vector<NodeId> Session::run(const CcMembership& request) {
  return run(request, engine_->default_policy());
}

std::vector<NodeId> Session::run(const CcMembership& request,
                                 const Policy& policy) {
  return answer_cc_membership(*engine_, locked_forest(), policy,
                              machine_inputs(), request);
}

Plan Session::plan(const Bridges& request) {
  return plan(request, engine_->default_policy());
}

Plan Session::plan(const Bridges&, const Policy& policy) {
  const auto lock = engine_->device_.exclusive();
  Plan result;
  result.inputs = plan_inputs();
  for (std::size_t i = 0; i < kNumBackends; ++i) {
    result.predicted_seconds[i] =
        policy.model.seconds(kFixedBackends[i], result.inputs);
  }
  result.chosen = policy.choose(result.inputs);
  return result;
}

// ------------------------------------------------------------------ views

struct View::State {
  Engine* engine = nullptr;
  Policy policy;  // captured at acquisition: decides batch routing
  std::uint64_t epoch = 0;
  NodeId n = 0;
  std::size_t m = 0;
  std::size_t components = 0;
  Backend mask_backend = Backend::kAuto;
  std::shared_ptr<const graph::EdgeList> owned_edges;  // dynamic snapshot
  const graph::EdgeList* edges = nullptr;  // owned_edges or the static graph
  std::shared_ptr<const graph::Csr> csr;
  std::shared_ptr<const bridges::SpanningForest> forest;
  std::shared_ptr<const bridges::BridgeMask> mask;
  std::shared_ptr<const dynamic::ConnectivityOracle> oracle;
  std::shared_ptr<const lca::InlabelLca> forest_lca;
  /// The epoch's BCC cell, SHARED with the session's cache: whichever side
  /// builds first, everyone reads the same immutable index. The cell is
  /// epoch-keyed (sync_epoch swaps a fresh one in), so a View never sees a
  /// later epoch's index.
  std::shared_ptr<bcc::BccCell> bcc;
};

void Session::ensure_bridge_edges() {
  if (cache_.bridge_edges) return;
  const bridges::BridgeMask& mask = *cache_.mask;
  std::vector<EdgeId> ids(mask.size());
  const std::size_t b = device::copy_if_index(
      engine_->device_, mask.size(),
      [&](std::size_t e) { return mask[e] != 0; }, ids.data());
  ids.resize(b);
  cache_.bridge_edges =
      std::make_shared<const std::vector<EdgeId>>(std::move(ids));
}

bool Session::try_replay_publish(const Policy& policy) {
  // --- eligibility: cheap host checks only; any `return false` here has
  //     mutated NOTHING, and the caller runs the full pipeline instead.
  if (!graph_.is_dynamic()) return false;
  const dynamic::DynamicGraph& g = *graph_.dynamic_graph();
  if (cache_.epoch == Cache::kNone || g.epoch() != cache_.epoch + 1) {
    return false;
  }
  const dynamic::UpdateDelta& delta = g.last_delta();
  if (delta.from_epoch != cache_.epoch || !delta.insert_only() ||
      delta.inserted.empty()) {
    return false;  // deletions (or no delta) take the full pipeline
  }
  // Every previous-epoch artifact must exist: the replay is a patch, not a
  // build. bridge_edges is only materialized by publishes, so the FIRST
  // publish after lazy run()-only traffic rebuilds once, then replays.
  if (!cache_.forest || !cache_.mask || !cache_.forest_lca ||
      !cache_.bridge_edges || !cache_.oracle_current) {
    return false;
  }
  // A forced backend different from the one that produced the carried-over
  // mask must actually run it — same rule as mask_artifact's reuse check.
  if (policy.backend != Backend::kAuto &&
      policy.backend != cache_.mask_backend) {
    return false;
  }
  const std::size_t old_m = cache_.mask->size();
  const std::size_t d = delta.inserted.size();
  if (!dynamic::ConnectivityOracle::incremental_applies(d, 0, old_m)) {
    return false;  // oversized batch: patching would not beat rebuilding
  }

  // Partition the delta by the indexed components, mirroring the oracle's
  // refresh(): intra-component edges merge 2-ecc blocks (the forest and its
  // LCA keep their shape), cross-component edges each become a bridge
  // linking two forest trees. A union-find over the touched labels catches
  // the one shape neither patch can express — a set of cross edges closing
  // a cycle through components merged earlier in the same batch.
  const std::vector<NodeId>& comp = cache_.forest->component;
  std::vector<std::size_t> cross;  // delta indexes of cross-component edges
  std::unordered_map<NodeId, NodeId> comp_uf;  // label -> parent label
  auto find = [&](NodeId c) {
    auto it = comp_uf.find(c);
    while (it != comp_uf.end()) {
      c = it->second;
      it = comp_uf.find(c);
    }
    return c;
  };
  for (std::size_t i = 0; i < d; ++i) {
    const graph::Edge& e = delta.inserted[i];
    const NodeId cu = comp[e.u];
    const NodeId cv = comp[e.v];
    if (cu == cv) continue;
    const NodeId a = find(cu);
    const NodeId b = find(cv);
    if (a == b) return false;  // cycle across components merged this batch
    // Min label wins, so the surviving label stays self-representative
    // (component[rep] == rep), the invariant component_representatives and
    // the stitched augmentation rely on.
    comp_uf[std::max(a, b)] = std::min(a, b);
    cross.push_back(i);
  }
  std::unordered_map<NodeId, NodeId> merged;  // loser -> final winner
  for (const auto& entry : comp_uf) merged[entry.first] = find(entry.first);

  // --- the replay. Failure past this point (a thrown injected fault or
  //     real OOM) leaves cache_.epoch at the PREVIOUS epoch while the graph
  //     is ahead, so the next artifact access resyncs and rebuilds from
  //     scratch — no path can serve a half-patched artifact. The oracle is
  //     the one object that survives a successful step (it is then validly
  //     at the new epoch; refresh() skips on retry).
  const device::Context& ctx = engine_->device_;

  // (1) Snapshot + CSR via the DCSR append fast paths. If the snapshot did
  // not actually append (cache evicted by a competing export), edge ids are
  // not position-stable and the patches below would mis-index — fall back.
  const std::shared_ptr<const graph::EdgeList> snap = g.snapshot_shared(ctx);
  if (snap->edges.size() != old_m + d ||
      !std::equal(delta.inserted.begin(), delta.inserted.end(),
                  snap->edges.begin() + static_cast<std::ptrdiff_t>(old_m),
                  [](const graph::Edge& a, const graph::Edge& b) {
                    return a.u == b.u && a.v == b.v;
                  })) {
    return false;
  }
  g.csr_snapshot_shared(ctx);

  // (2) 2-ecc index: the oracle's own incremental refresh (it may still
  // choose its internal full rebuild — covered-length abort — without
  // invalidating this replay: bridgeness is block_of[u] != block_of[v]
  // EXACTLY, whichever path produced the labels).
  dynamic::ConnectivityOracle& oracle = oracle_mut();
  try {
    oracle.refresh(ctx, g, nullptr, nullptr, nullptr);
  } catch (...) {
    // Half-refreshed with the (uid, epoch) binding intact would let a retry
    // replay onto a corrupt base — sever it (see oracle_artifact).
    oracle.invalidate();
    cache_.oracle_current = false;
    throw;
  }
  const std::vector<NodeId>& block = oracle.block_labels();

  // (3) Bridge mask: copy-on-write iff a View shares it, else in place.
  std::shared_ptr<bridges::BridgeMask> mask =
      cache_.mask_published
          ? std::make_shared<bridges::BridgeMask>(*cache_.mask)
          : std::const_pointer_cast<bridges::BridgeMask>(cache_.mask);
  mask->resize(old_m + d);
  // Appended verdicts are exact: an edge is a bridge iff its endpoints lie
  // in different blocks of the NEW index (cross inserts always, intra
  // inserts never — but reading the labels needs no case split).
  device::launch(ctx, d, [&](std::size_t i) {
    const graph::Edge e = delta.inserted[i];
    (*mask)[old_m + i] = block[e.u] != block[e.v] ? 1 : 0;
  });
  // Inserts never promote an old edge to a bridge (its witness cycle
  // survives); they only demote old bridges whose endpoints now share a
  // block. Recheck exactly the previous epoch's bridge set.
  const std::vector<EdgeId>& old_bridges = *cache_.bridge_edges;
  device::launch(ctx, old_bridges.size(), [&](std::size_t i) {
    const graph::Edge e = snap->edges[old_bridges[i]];
    if (block[e.u] == block[e.v]) (*mask)[old_bridges[i]] = 0;
  });
  // New bridge set = surviving old bridges + the cross inserts, compacted
  // bridge-count-sized rather than by rescanning the m-sized mask.
  std::vector<EdgeId> keep(old_bridges.size());
  const std::size_t survivors = device::copy_if_index(
      ctx, old_bridges.size(),
      [&](std::size_t i) { return (*mask)[old_bridges[i]] != 0; }, keep.data());
  std::vector<EdgeId> new_bridges(survivors + cross.size());
  device::gather(ctx, old_bridges.data(), keep.data(), survivors,
                 new_bridges.data());
  for (std::size_t i = 0; i < cross.size(); ++i) {
    new_bridges[survivors + i] = static_cast<EdgeId>(old_m + cross[i]);
  }
  assert(new_bridges.size() == oracle.num_bridges());

  // (4) Spanning forest: intra inserts leave it untouched (the endpoints
  // were already connected, so the tree edges still span); each cross
  // insert links two trees — append it and fold the loser labels in, the
  // link_components relabel idiom.
  if (!cross.empty()) {
    std::shared_ptr<bridges::SpanningForest> forest =
        cache_.forest_published
            ? std::make_shared<bridges::SpanningForest>(*cache_.forest)
            : std::const_pointer_cast<bridges::SpanningForest>(cache_.forest);
    std::vector<NodeId>& labels = forest->component;
    device::launch(ctx, labels.size(), [&](std::size_t v) {
      const auto it = merged.find(labels[v]);
      if (it != merged.end()) labels[v] = it->second;
    });
    forest->tree_edges.reserve(forest->tree_edges.size() + cross.size());
    for (const std::size_t i : cross) {
      forest->tree_edges.push_back(static_cast<EdgeId>(old_m + i));
    }
    forest->num_components -= cross.size();
    cache_.forest = std::move(forest);
    cache_.forest_published = false;
  }

  // (5) Commit. The stitched augmentation is stale either way (it embeds
  // the old snapshot) and rebuilds lazily; the forest LCA survives exactly
  // when the forest kept its shape (intra-only delta).
  cache_.epoch = g.epoch();
  cache_.mask = std::move(mask);
  cache_.mask_published = false;
  cache_.bridge_edges =
      std::make_shared<const std::vector<EdgeId>>(std::move(new_bridges));
  cache_.stitched.reset();
  cache_.stitched_csr.reset();
  // Even an intra-component insert can merge blocks or demote an
  // articulation — the BCC index never survives a replay (incremental BCC
  // maintenance is a recorded follow-up). Fresh cell: old Views keep theirs.
  cache_.bcc = std::make_shared<bcc::BccCell>();
  cache_.oracle_current = true;
  if (!cross.empty()) {
    cache_.forest_lca.reset();
    forest_lca_artifact();
  }
  ++publish_replays_;
  engine_->counters_.publish_replays.fetch_add(1, kRelaxed);
  return true;
}

void Session::ensure_all_artifacts(const Policy& policy) {
  // Failpoint: the publish chokepoint — both refresh() and view() pass
  // through here, and nothing is mutated yet when it fires, so a caller
  // that catches the fault keeps a coherent (stale) cache.
  util::failpoint::maybe_throw(util::failpoint::kPublish);
  // EMC_BCC_EAGER moves the BCC build from first-query to publish time;
  // it runs LAST either way, so a fault inside it leaves every other
  // artifact committed and only the (retryable) cell empty.
  if (try_replay_publish(policy)) {
    if (bcc::resolve_bcc_eager()) bcc_artifact();
    return;
  }
  const bool fresh = cache_.epoch != graph_.epoch();
  sync_epoch();
  csr_artifact();
  forest();
  mask_artifact(policy, nullptr);
  oracle_artifact(policy);
  forest_lca_artifact();
  if (graph_.is_dynamic()) ensure_bridge_edges();
  if (bcc::resolve_bcc_eager()) bcc_artifact();
  if (fresh) {
    ++publish_rebuilds_;
    engine_->counters_.publish_rebuilds.fetch_add(1, kRelaxed);
  }
}

std::shared_ptr<const View::State> Session::make_state(const Policy& policy) {
  ensure_all_artifacts(policy);
  auto state = std::make_shared<View::State>();
  state->engine = engine_;
  state->policy = policy;
  state->epoch = cache_.epoch;
  state->n = graph_.num_nodes();
  state->m = graph_.num_edges();
  state->components = cache_.forest->num_components;
  state->mask_backend = cache_.mask_backend;
  if (graph_.is_dynamic()) {
    state->owned_edges =
        graph_.dynamic_graph()->snapshot_shared(engine_->device_);
    state->edges = state->owned_edges.get();
    state->csr = graph_.dynamic_graph()->csr_snapshot_shared(engine_->device_);
  } else {
    state->edges = graph_.static_graph();
    state->csr = cache_.csr;
  }
  state->forest = cache_.forest;
  state->mask = cache_.mask;
  state->oracle = cache_.oracle;
  state->forest_lca = cache_.forest_lca;
  state->bcc = cache_.bcc;
  // From here on the shared artifacts are frozen: the next epoch's refresh
  // clones the oracle first (oracle_mut) instead of replaying deltas in
  // place, and the delta-replay publish patches COPIES of the mask/forest.
  cache_.oracle_published = true;
  cache_.mask_published = true;
  cache_.forest_published = true;
  std::erase_if(published_, [](const auto& weak) { return weak.expired(); });
  published_.push_back(state);
  return state;
}

View Session::view() { return view(engine_->default_policy()); }

View Session::view(const Policy& policy) {
  engine_->counters_.views.fetch_add(1, kRelaxed);
  const auto lock = engine_->device_.exclusive();
  return View(make_state(policy));
}

std::uint64_t Session::refresh() { return refresh(engine_->default_policy()); }

std::uint64_t Session::refresh(const Policy& policy) {
  const auto lock = engine_->device_.exclusive();
  ensure_all_artifacts(policy);
  return cache_.epoch;
}

std::size_t Session::pinned_epochs() const {
  std::vector<std::uint64_t> epochs;
  for (const auto& weak : published_) {
    if (const auto state = weak.lock()) epochs.push_back(state->epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
  return epochs.size();
}

View View::with_policy(const Policy& policy) const {
  auto state = std::make_shared<State>(*state_);
  state->policy = policy;
  return View(std::move(state));
}

std::uint64_t View::epoch() const { return state_->epoch; }
NodeId View::num_nodes() const { return state_->n; }
std::size_t View::num_edges() const { return state_->m; }
std::size_t View::num_components() const { return state_->components; }
Backend View::mask_backend() const { return state_->mask_backend; }
const Policy& View::policy() const { return state_->policy; }
const graph::EdgeList& View::edges() const { return *state_->edges; }
const graph::Csr& View::csr() const { return *state_->csr; }
const bridges::SpanningForest& View::forest() const { return *state_->forest; }

const bridges::BridgeMask& View::run(const Bridges&) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return *state_->mask;  // prebuilt and frozen; phases would have nothing
                         // to time
}

TwoEccView View::run(const TwoEcc&) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return {&state_->oracle->block_labels(), &state_->oracle->block_sizes(),
          state_->oracle->num_blocks(), state_->oracle->num_bridges()};
}

std::vector<std::uint8_t> View::run(const Same2Ecc& request) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return answer_same2ecc(*state_->engine, *state_->oracle, state_->policy,
                         query_inputs(*state_->engine, state_->n, state_->m),
                         request);
}

std::vector<NodeId> View::run(const BridgesOnPath& request) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return answer_bridges_on_path(
      *state_->engine, *state_->oracle, state_->policy,
      query_inputs(*state_->engine, state_->n, state_->m), request);
}

std::vector<NodeId> View::run(const ComponentSize& request) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return answer_component_size(
      *state_->engine, *state_->oracle, state_->policy,
      query_inputs(*state_->engine, state_->n, state_->m), request);
}

std::vector<NodeId> View::run(const LcaBatch& request) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return answer_lca(*state_->engine, *state_->forest_lca, state_->n,
                    state_->policy,
                    query_inputs(*state_->engine, state_->n, state_->m),
                    request);
}

std::shared_ptr<const bcc::BccIndex> View::bcc_index() const {
  // Fast path: someone (this View, a sibling, or the Session) already built
  // this epoch's index — no device lock needed, the index is immutable.
  if (auto index = state_->bcc->peek()) {
    state_->engine->counters().artifact_hits.fetch_add(1, kRelaxed);
    return index;
  }
  const auto lock = state_->engine->device().exclusive();
  const bool built = state_->bcc->peek() == nullptr;  // re-check under lock
  (built ? state_->engine->counters().artifact_builds
         : state_->engine->counters().artifact_hits)
      .fetch_add(1, kRelaxed);
  return state_->bcc->get_or_build(state_->engine->device(), *state_->edges,
                                   *state_->forest);
}

std::vector<std::uint8_t> View::run(const Articulations&) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return bcc_index()->is_articulation;
}

std::vector<std::uint8_t> View::run(const SameBcc& request) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return answer_same_bcc(*state_->engine, *bcc_index(), state_->policy,
                         query_inputs(*state_->engine, state_->n, state_->m),
                         request);
}

std::vector<NodeId> View::run(const BfsLevels& request) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return answer_bfs_levels(*state_->engine, *state_->csr, state_->policy,
                           query_inputs(*state_->engine, state_->n, state_->m),
                           request);
}

std::vector<NodeId> View::run(const CcMembership& request) const {
  state_->engine->counters().requests.fetch_add(1, kRelaxed);
  return answer_cc_membership(
      *state_->engine, *state_->forest, state_->policy,
      query_inputs(*state_->engine, state_->n, state_->m), request);
}

// ------------------------------------------------------------ calibration

namespace {

/// The model's pure-work prediction (launch/sync charges zeroed) and the
/// charges themselves — the charges are already exact (launch counts are
/// structural, the overhead is the context's known constant), so
/// calibration subtracts them from measured time and refits only the work.
double work_seconds(const CostModel& model, Backend backend,
                    const PlanInputs& inputs) {
  CostModel work_only = model;
  work_only.multicore_sync_ns = 0.0;
  PlanInputs no_launch = inputs;
  no_launch.launch_overhead = 0.0;
  return work_only.seconds(backend, no_launch);
}

double charge_seconds(const CostModel& model, Backend backend,
                      const PlanInputs& inputs) {
  return model.seconds(backend, inputs) - work_seconds(model, backend, inputs);
}

}  // namespace

void Policy::calibrate(Engine& engine) {
  // Two small instances spanning the regimes that separate the backends: a
  // high-diameter ribbon (CK's BFS-launch regime) and a dense low-diameter
  // kron. ~1-2k nodes each keeps the whole fit around 100ms on the
  // reference container.
  struct Instance {
    graph::EdgeList g;
    graph::Csr csr;
    PlanInputs inputs;
  };
  const device::Context& device = engine.device();
  const auto lock = device.exclusive();
  std::array<Instance, 2> instances{
      Instance{graph::largest_component(
                   graph::simplified(gen::road_graph(192, 8, 0.92, 0.02, 71))),
               {},
               {}},
      Instance{graph::largest_component(
                   graph::simplified(gen::kron_graph(10, 12.0, 72))),
               {},
               {}}};
  for (Instance& inst : instances) {
    inst.csr = graph::build_csr(device, inst.g);
    inst.inputs = query_inputs(engine, inst.g.num_nodes, inst.g.num_edges());
    inst.inputs.diameter = graph::estimate_diameter(inst.csr, /*sweeps=*/2);
  }

  const auto measure = [&](Backend backend, const Instance& inst) {
    double best = 1e300;
    for (int run = 0; run < 2; ++run) {
      util::Timer timer;
      switch (backend) {
        case Backend::kDfs:
          bridges::find_bridges_dfs(inst.csr);
          break;
        case Backend::kCkMulticore:
          bridges::find_bridges_ck(engine.multicore(), inst.g, inst.csr);
          break;
        case Backend::kCk:
          bridges::find_bridges_ck(device, inst.g, inst.csr);
          break;
        case Backend::kTv:
          bridges::find_bridges_tarjan_vishkin(device, inst.g);
          break;
        case Backend::kHybrid:
          bridges::find_bridges_hybrid(device, inst.g);
          break;
        case Backend::kAuto:
          break;
      }
      best = std::min(best, timer.seconds());
    }
    return best;
  };

  // Measured-over-predicted work ratio per backend (geometric mean across
  // the instances); implausible ratios — noise, or a work term fully
  // hidden under the launch charge — leave the hand constants in place.
  const CostModel hand = model;
  const auto fit_ratio = [&](Backend backend) {
    double log_sum = 0.0;
    int count = 0;
    for (const Instance& inst : instances) {
      const double work = work_seconds(hand, backend, inst.inputs);
      const double net =
          measure(backend, inst) - charge_seconds(hand, backend, inst.inputs);
      if (!(work > 0.0) || !(net > 0.0)) continue;
      const double ratio = net / work;
      if (!std::isfinite(ratio) || ratio < 1.0 / 20.0 || ratio > 20.0) continue;
      log_sum += std::log(ratio);
      ++count;
    }
    return count > 0 ? std::exp(log_sum / count) : 1.0;
  };

  const double r_dfs = fit_ratio(Backend::kDfs);
  model.dfs_node_ns *= r_dfs;
  model.dfs_edge_ns *= r_dfs;
  const double r_ck = fit_ratio(Backend::kCk);
  model.ck_node_ns *= r_ck;
  model.ck_edge_ns *= r_ck;
  const double r_tv = fit_ratio(Backend::kTv);
  model.tv_node_ns *= r_tv;
  model.tv_edge_ns *= r_tv;
  const double r_hybrid = fit_ratio(Backend::kHybrid);
  model.hybrid_node_ns *= r_hybrid;
  model.hybrid_edge_ns *= r_hybrid;
  // Host/device point-query work scales with scalar host throughput.
  model.query_host_ns *= r_dfs;
  model.query_device_ns *= r_dfs;

  // Multicore shares CK's (now rescaled) work constants; what is left to
  // fit is the per-BFS-level pool sync. Take the residual over the
  // instances, clamped to a plausible band around the hand value.
  double sync_sum = 0.0;
  int sync_count = 0;
  for (const Instance& inst : instances) {
    const double work =
        work_seconds(model, Backend::kCkMulticore, inst.inputs);
    const double residual = measure(Backend::kCkMulticore, inst) - work;
    const double launches =
        hand.ck_launches_per_diameter *
            static_cast<double>(std::max<NodeId>(inst.inputs.diameter, 1)) +
        hand.ck_fixed_launches;
    if (residual <= 0.0 || launches <= 0.0) continue;
    const double per_sync_ns = residual / launches * 1e9;
    if (!std::isfinite(per_sync_ns) ||
        per_sync_ns < hand.multicore_sync_ns / 20.0 ||
        per_sync_ns > hand.multicore_sync_ns * 20.0) {
      continue;
    }
    sync_sum += per_sync_ns;
    ++sync_count;
  }
  if (sync_count > 0) model.multicore_sync_ns = sync_sum / sync_count;
}

}  // namespace emc::engine
