#include "engine/policy.hpp"

#include <algorithm>
#include <cassert>

namespace emc::engine {

std::string_view to_string(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kDfs: return "dfs";
    case Backend::kCkMulticore: return "ck_multicore";
    case Backend::kCk: return "ck";
    case Backend::kTv: return "tv";
    case Backend::kHybrid: return "hybrid";
  }
  return "?";
}

std::size_t backend_index(Backend backend) {
  switch (backend) {
    case Backend::kDfs: return 0;
    case Backend::kCkMulticore: return 1;
    case Backend::kCk: return 2;
    case Backend::kTv: return 3;
    case Backend::kHybrid: return 4;
    case Backend::kAuto: break;
  }
  assert(false && "backend_index(kAuto)");
  return 0;
}

// Calibration notes — constants fitted to the committed BENCH tables
// (BENCH_engine.json is the primary source: it measures every fixed
// backend on scenarios spanning the density/diameter regimes; the worker
// division extrapolates to wider machines):
//
//   DFS  — per-edge cost ~9.7 ns on dense kron (n/m ~ 0.03) vs ~24-27 ns
//          on road shapes (n/m ~ 0.7): node_ns ~ 22, edge_ns ~ 4.5 per
//          half-edge.
//   TV   — work split from the same regimes (kron ~87, road ~200-250
//          ns/edge at one worker, ~70 launches from
//          bench_bridges_breakdown): node_ns ~ 230, edge_ns ~ 48.
//   CK   — the road-ribbon row pins the launch term: measured ~1769
//          ns/edge at diameter ~4700 on m ~ 141k is almost exactly
//          diameter * 50us of launch latency; the flat work term (~50
//          ns/edge) comes from the small-diameter rows. The multicore
//          variant pays ~1us pool syncs per BFS level instead of launches.
//   Hybrid — fewer launches than TV (~40) and a marking phase far cheaper
//          than TV's detect on this simulator: node_ns ~ 280, edge ~ 10.
double CostModel::seconds(Backend backend, const PlanInputs& inputs) const {
  const double n = static_cast<double>(inputs.n);
  const double m = static_cast<double>(inputs.m);
  const double diam = static_cast<double>(std::max<NodeId>(inputs.diameter, 1));
  const double device_w = std::max(1u, inputs.device_workers);
  const double multicore_w = std::max(1u, inputs.multicore_workers);
  const double launch = inputs.launch_overhead;
  const double ck_work_ns = ck_node_ns * n + ck_edge_ns * m;
  const double ck_launches = ck_launches_per_diameter * diam + ck_fixed_launches;
  switch (backend) {
    case Backend::kDfs:
      return (dfs_node_ns * n + dfs_edge_ns * 2.0 * m) * 1e-9;
    case Backend::kCkMulticore:
      // CPU contexts charge no launch latency, but every BFS level still
      // synchronizes the pool.
      return (ck_work_ns / multicore_w + ck_launches * multicore_sync_ns) *
             1e-9;
    case Backend::kCk:
      return ck_launches * launch + ck_work_ns / device_w * 1e-9;
    case Backend::kTv:
      return tv_launches * launch +
             (tv_node_ns * n + tv_edge_ns * m) / device_w * 1e-9;
    case Backend::kHybrid:
      return hybrid_launches * launch +
             (hybrid_node_ns * n + hybrid_edge_ns * m) / device_w * 1e-9;
    case Backend::kAuto: break;
  }
  assert(false && "CostModel::seconds(kAuto)");
  return 0.0;
}

Backend Policy::choose(const PlanInputs& inputs) const {
  if (backend != Backend::kAuto) return backend;
  Backend best = Backend::kDfs;
  double best_seconds = model.seconds(best, inputs);
  for (const Backend candidate : kFixedBackends) {
    const double seconds = model.seconds(candidate, inputs);
    if (seconds < best_seconds) {
      best = candidate;
      best_seconds = seconds;
    }
  }
  return best;
}

bool Policy::use_device_batch(std::size_t size, const PlanInputs& inputs) const {
  if (min_device_batch > 0) return size >= min_device_batch;
  // One bulk kernel costs the launch latency plus the divided per-query
  // work; the host loop pays the undivided work with no latency.
  const double device_w = std::max(1u, inputs.device_workers);
  const double host_seconds = model.query_host_ns * size * 1e-9;
  const double device_seconds =
      inputs.launch_overhead + model.query_device_ns * size / device_w * 1e-9;
  return device_seconds < host_seconds;
}

}  // namespace emc::engine
