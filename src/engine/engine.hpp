// emc::engine — the one Graph/Session façade over the whole library.
//
// Everything below src/engine is a zoo of free functions with inconsistent
// signatures (find_bridges_dfs(Csr), find_bridges_ck(ctx, EdgeList, Csr),
// ConnectivityOracle with its own lifecycle); every bench/example used to
// re-wire that pipeline by hand, and nothing above the oracle reused
// derived artifacts. The engine replaces that with three nouns:
//
//   Engine  — owns the execution contexts (device and multicore; the
//             paper's third machine model, one sequential core, is the
//             calling thread itself — DFS runs on it directly), the default
//             Policy, and aggregate stats. One per process is the intended
//             shape.
//   GraphRef — one non-owning handle over both input kinds: a static
//             graph::EdgeList or a live dynamic::DynamicGraph. Static and
//             dynamic inputs are served by IDENTICAL code paths; the only
//             difference is where the epoch comes from (a DynamicGraph
//             advances it per effective update batch, a static graph is
//             forever at epoch 0).
//   Session — a GraphRef plus an epoch-keyed ArtifactCache. Requests are
//             typed batches (Bridges, TwoEcc, Same2Ecc, BridgesOnPath,
//             ComponentSize, LcaBatch); each is answered with the existing
//             bulk kernels, a Policy picks the backend per request
//             (explicit override or the calibrated cost model —
//             policy.hpp), and every derived artifact (Csr, spanning
//             forest, stitched augmentation, bridge mask, 2-ecc index,
//             forest LCA) is cached under the graph epoch so repeated and
//             mixed request batches pay only the marginal work.
//
// The ArtifactCache's 2-ecc artifact IS a dynamic::ConnectivityOracle —
// not a parallel universe: for dynamic graphs refresh() replays deltas
// incrementally, for static graphs build() runs the full pipeline once,
// and in both cases a bridge mask the session already computed is handed
// down so the oracle skips its own mask phase.
//
// Disconnected inputs are handled uniformly (the free-function backends
// except DFS require connected graphs): the cache keeps a "stitched"
// augmentation — one virtual edge from the first component representative
// to each other representative, which can never change the bridgeness of a
// real edge — runs the backend on it, and slices the mask back.
//
// Lifetimes: the Engine must outlive its Sessions; a Session must not
// outlive its graph. A static EdgeList must not be mutated while a Session
// is bound to it (the epoch key cannot see such edits); a DynamicGraph may
// be updated freely between requests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "bridges/bridges.hpp"
#include "bridges/cc_spanning.hpp"
#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/oracle.hpp"
#include "engine/policy.hpp"
#include "graph/graph.hpp"
#include "lca/inlabel.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::engine {

class Engine;
class Session;

// ------------------------------------------------------------- requests
//
// A request is a plain struct naming the question plus its batch payload;
// Session::run overloads on the request type and returns the typed answer.
// Batched requests are answered by ONE bulk kernel (or a host loop when
// the policy says the batch is too small to pay a launch — Figure 6).

/// Per-edge bridge verdict for the whole graph, EdgeList order. The answer
/// is cached per epoch: a second run on an unchanged epoch is free — and
/// `phases` is then left untouched (nothing ran, nothing to time); call
/// drop_results() first when timing the computation itself.
struct Bridges {
  util::PhaseTimer* phases = nullptr;  // optional per-phase breakdown
};

/// 2-edge-connected components of the whole graph.
struct TwoEcc {};

/// For each pair: do two edge-disjoint paths connect them?
struct Same2Ecc {
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// For each pair: number of bridges on the connecting path (kNoNode if in
/// different components).
struct BridgesOnPath {
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// For each node: size of its 2-edge-connected component.
struct ComponentSize {
  std::vector<NodeId> nodes;
};

/// For each pair: lowest common ancestor on the session's cached rooted
/// spanning forest (each component rooted at its representative; kNoNode
/// for pairs in different components). The forest and its inlabel index
/// are artifacts — built once per epoch via the Euler tour technique.
struct LcaBatch {
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// Answer view for TwoEcc: compact per-node block ids served straight from
/// the cached 2-ecc index (valid until the session's next refresh/drop).
struct TwoEccView {
  const std::vector<NodeId>* labels = nullptr;  // block id per node
  std::size_t num_blocks = 0;
  std::size_t num_bridges = 0;
};

// ------------------------------------------------------------- GraphRef

/// Non-owning handle over either graph kind. Constructed implicitly, so
/// engine.session(my_edge_list) and engine.session(my_dynamic_graph) both
/// read naturally.
class GraphRef {
 public:
  /* implicit */ GraphRef(const graph::EdgeList& graph) : static_(&graph) {}
  /* implicit */ GraphRef(const dynamic::DynamicGraph& graph)
      : dynamic_(&graph) {}
  // Non-owning: binding a temporary (eng.session(make_graph())) would
  // dangle the moment the full expression ends — make it a compile error.
  GraphRef(const graph::EdgeList&&) = delete;
  GraphRef(const dynamic::DynamicGraph&&) = delete;

  bool is_dynamic() const { return dynamic_ != nullptr; }
  NodeId num_nodes() const {
    return dynamic_ != nullptr ? dynamic_->num_nodes() : static_->num_nodes;
  }
  std::size_t num_edges() const {
    return dynamic_ != nullptr ? dynamic_->num_edges() : static_->num_edges();
  }
  /// The artifact-cache key: a static graph is immutable (epoch 0 forever),
  /// a dynamic graph advances per effective update batch.
  std::uint64_t epoch() const {
    return dynamic_ != nullptr ? dynamic_->epoch() : 0;
  }
  const graph::EdgeList& edges(const device::Context& ctx) const {
    return dynamic_ != nullptr ? dynamic_->snapshot(ctx) : *static_;
  }
  const dynamic::DynamicGraph* dynamic_graph() const { return dynamic_; }

 private:
  const graph::EdgeList* static_ = nullptr;
  const dynamic::DynamicGraph* dynamic_ = nullptr;
};

// -------------------------------------------------------------- Engine

/// Aggregate counters across all of an engine's sessions.
struct EngineStats {
  std::size_t sessions = 0;
  std::size_t requests = 0;
  /// Artifact-cache outcomes: builds ran kernels, hits were free.
  std::size_t artifact_builds = 0;
  std::size_t artifact_hits = 0;
  /// Bridge-mask computations per backend, kFixedBackends order.
  std::array<std::size_t, kNumBackends> backend_runs{};
  /// Query batches answered by one device kernel vs a host loop.
  std::size_t device_query_batches = 0;
  std::size_t host_query_batches = 0;
};

struct EngineOptions {
  /// Workers for the device context (0 = EMC_WORKERS / hardware width).
  unsigned device_workers = 0;
  /// Workers for the multicore context (0 = half the device width, >= 2 —
  /// the paper's mid-tier baseline).
  unsigned multicore_workers = 0;
  /// Default policy for sessions; per-request overrides win.
  Policy policy{};
};

class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Binds a session to a graph. The engine and the graph must outlive it.
  Session session(GraphRef graph);

  const device::Context& device() const { return device_; }
  const device::Context& multicore() const { return multicore_; }

  const Policy& default_policy() const { return options_.policy; }
  const EngineStats& stats() const { return stats_; }
  /// Kernel launches issued on the device context so far (the currency the
  /// cache-reuse tests pin).
  std::uint64_t device_launches() const { return device_.launch_count(); }

 private:
  friend class Session;
  EngineOptions options_;
  device::Context device_;
  device::Context multicore_;
  EngineStats stats_;
};

// ------------------------------------------------------------- Session

class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  // --- typed request batches (overload per request; the second form
  //     overrides the engine's default policy for this request only)
  //
  // run(Bridges) returns a reference into the artifact cache: it stays
  // valid until the next request that recomputes the mask (an epoch
  // change, drop_results/drop_artifacts, or a forced backend different
  // from the one that produced it). Copy the mask to keep it across such
  // calls.
  const bridges::BridgeMask& run(const Bridges& request);
  const bridges::BridgeMask& run(const Bridges& request, const Policy& policy);
  TwoEccView run(const TwoEcc& request);
  TwoEccView run(const TwoEcc& request, const Policy& policy);
  std::vector<std::uint8_t> run(const Same2Ecc& request);
  std::vector<std::uint8_t> run(const Same2Ecc& request, const Policy& policy);
  std::vector<NodeId> run(const BridgesOnPath& request);
  std::vector<NodeId> run(const BridgesOnPath& request, const Policy& policy);
  std::vector<NodeId> run(const ComponentSize& request);
  std::vector<NodeId> run(const ComponentSize& request, const Policy& policy);
  std::vector<NodeId> run(const LcaBatch& request);
  std::vector<NodeId> run(const LcaBatch& request, const Policy& policy);

  /// The decision a Bridges request would take, without running it: chosen
  /// backend plus the model's per-backend predictions. Builds the cheap
  /// inputs (Csr, diameter estimate) if missing.
  Plan plan(const Bridges& request);
  Plan plan(const Bridges& request, const Policy& policy);

  // --- artifacts and instance statistics
  const graph::Csr& csr();
  /// Double-sweep BFS diameter lower bound. Sticky across epochs: an
  /// estimate survives small edge-count drift (|m - m_at_estimate| <= 25%)
  /// for up to Cache::kDiameterMaxAge effective update batches, so
  /// steady-state dynamic serving does not re-pay the sweeps while the
  /// policy's key input cannot go arbitrarily stale at constant m.
  NodeId diameter_estimate();
  /// The session's 2-ecc index object — a pure stats reader (rebuilds,
  /// incremental refreshes, tree-links, block counts). It does NOT refresh:
  /// it may lag the graph until the next 2-ecc request runs. Queries go
  /// through run().
  const dynamic::ConnectivityOracle& two_ecc_index() const {
    return cache_.oracle;
  }
  std::size_t num_components();

  NodeId num_nodes() const { return graph_.num_nodes(); }
  std::size_t num_edges() const { return graph_.num_edges(); }
  std::uint64_t epoch() const { return graph_.epoch(); }
  /// The backend that served the most recent bridge-mask computation
  /// (after kAuto resolution); kAuto if none ran yet this epoch.
  Backend mask_backend() const { return cache_.mask_backend; }

  /// Drops every cached artifact (benchmark / memory-pressure hook) except
  /// the sticky diameter hint. The next request rebuilds from scratch.
  void drop_artifacts();

  /// Drops only the ANSWER artifacts (bridge mask, 2-ecc index, forest
  /// LCA), keeping the input-preparation ones (Csr, spanning forest,
  /// stitched augmentation, diameter hint). The benchmark hook for timing
  /// the per-request algorithm cost the way the paper's figures do — input
  /// prep outside the timer, algorithm inside.
  void drop_results();

 private:
  friend class Engine;
  Session(Engine& engine, GraphRef graph) : engine_(&engine), graph_(graph) {}

  struct Cache {
    static constexpr std::uint64_t kNone = ~std::uint64_t{0};
    std::uint64_t epoch = kNone;  // epoch the artifacts below belong to
    std::optional<graph::Csr> csr;  // static graphs only; dynamic ones
                                    // delegate to the DCSR's own snapshot
    std::optional<bridges::SpanningForest> forest;
    std::optional<graph::EdgeList> stitched;  // connected augmentation
    std::optional<graph::Csr> stitched_csr;
    std::optional<bridges::BridgeMask> mask;
    Backend mask_backend = Backend::kAuto;
    bool oracle_current = false;
    dynamic::ConnectivityOracle oracle;  // persists across epochs: dynamic
                                         // refreshes replay deltas
    std::optional<lca::InlabelLca> forest_lca;
    // Sticky diameter hint (see diameter_estimate()).
    static constexpr std::uint64_t kDiameterMaxAge = 16;  // effective batches
    NodeId diameter = kNoNode;
    std::size_t diameter_at_m = 0;
    std::uint64_t diameter_at_epoch = 0;
  };

  /// Epoch fence: every request passes through here first; a changed epoch
  /// invalidates the epoch-keyed artifacts (the oracle object survives so
  /// dynamic refreshes can take the incremental paths).
  void sync_epoch();
  const bridges::SpanningForest& forest();
  /// Connected augmentation of a disconnected graph: one virtual edge from
  /// the first component representative to each other representative (can
  /// never change a real edge's bridgeness), so the connected-only backends
  /// run unmodified and the mask is sliced back to the real edges.
  const graph::EdgeList& stitched();
  const graph::Csr& stitched_csr();
  /// The mask artifact under `policy` (the heart of the Bridges request).
  const bridges::BridgeMask& mask_artifact(const Policy& policy,
                                           util::PhaseTimer* phases);
  /// The 2-ecc index artifact: refresh (dynamic) or build (static), either
  /// way reusing this epoch's cached mask when present.
  const dynamic::ConnectivityOracle& oracle_artifact(const Policy& policy);
  const lca::InlabelLca& forest_lca_artifact();
  /// Machine-only inputs (workers, launch overhead, n, m) — enough for the
  /// batch-size decision without touching the diameter artifact.
  PlanInputs machine_inputs() const;
  PlanInputs plan_inputs();
  bool track(bool built);  // stats helper: count a build or a hit

  Engine* engine_;
  GraphRef graph_;
  Cache cache_;
};

}  // namespace emc::engine
