// emc::engine — the one Graph/Session façade over the whole library.
//
// Everything below src/engine is a zoo of free functions with inconsistent
// signatures (find_bridges_dfs(Csr), find_bridges_ck(ctx, EdgeList, Csr),
// ConnectivityOracle with its own lifecycle); every bench/example used to
// re-wire that pipeline by hand, and nothing above the oracle reused
// derived artifacts. The engine replaces that with four nouns:
//
//   Engine  — owns the execution contexts (device and multicore; the
//             paper's third machine model, one sequential core, is the
//             calling thread itself — DFS runs on it directly), the default
//             Policy, and aggregate stats. One per process is the intended
//             shape. Stats are atomic: concurrent Views account their work
//             without locks.
//   GraphRef — one non-owning handle over both input kinds: a static
//             graph::EdgeList or a live dynamic::DynamicGraph. Static and
//             dynamic inputs are served by IDENTICAL code paths; the only
//             difference is where the epoch comes from (a DynamicGraph
//             advances it per effective update batch, a static graph is
//             forever at epoch 0).
//   Session — a GraphRef plus an epoch-keyed artifact cache. Requests are
//             typed batches (Bridges, TwoEcc, Same2Ecc, BridgesOnPath,
//             ComponentSize, LcaBatch, Articulations, SameBcc, BfsLevels,
//             CcMembership); each is answered with the existing bulk
//             kernels, a Policy picks the backend per request
//             (explicit override or the calibrated cost model —
//             policy.hpp), and every derived artifact (Csr, spanning
//             forest, stitched augmentation, bridge mask, 2-ecc index,
//             forest LCA, BCC index) is cached under the graph epoch so
//             repeated and mixed request batches pay only the marginal
//             work.
//   View    — an immutable, refcounted snapshot of ONE epoch's artifacts,
//             acquired with Session::view(). A View answers every request
//             type concurrently from any number of threads (snapshot
//             isolation): host-routed query batches are lock-free reads of
//             the frozen index; device-routed bulk kernels serialize on the
//             context's driver lock. The serving shape is one writer thread
//             updating the DynamicGraph and calling refresh()/view() to
//             publish each new epoch, while reader threads keep answering
//             on the Views they hold — an old epoch's artifacts stay alive
//             exactly until the last View pinning them drops (MVCC by
//             refcount; see Session::pinned_epochs()).
//
// The artifact cache's 2-ecc artifact IS a dynamic::ConnectivityOracle —
// not a parallel universe: for dynamic graphs refresh() replays deltas
// incrementally, for static graphs build() runs the full pipeline once,
// and in both cases a bridge mask the session already computed is handed
// down so the oracle skips its own mask phase. Publishing a View freezes
// the oracle object; the next epoch's refresh then clones it first
// (copy-on-write — the incremental replay runs on the clone, the frozen
// snapshot keeps answering) while unpublished sessions refresh in place
// exactly as before.
//
// Disconnected inputs are handled uniformly (the free-function backends
// except DFS require connected graphs): the cache keeps a "stitched"
// augmentation — one virtual edge from the first component representative
// to each other representative, which can never change the bridgeness of a
// real edge — runs the backend on it, and slices the mask back.
//
// Lifetimes: the Engine (whose contexts execute the bulk kernels) must
// outlive its Sessions and their Views. A Session must not outlive its
// graph. A View of a STATIC graph references the user's EdgeList and must
// not outlive it either; a View of a DYNAMIC graph co-owns its epoch's
// snapshot and survives both the graph moving on and the graph being
// destroyed. A static EdgeList must not be mutated while a Session is
// bound to it (the epoch key cannot see such edits).
//
// Threading contract: a Session (and a DynamicGraph) is driven by ONE
// writer thread at a time; Views are the concurrent surface and may be
// copied, queried, and dropped from any thread. Session builds and View
// device-batches share the execution contexts safely through
// device::Context::exclusive().
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bcc/bcc.hpp"
#include "bridges/bridges.hpp"
#include "bridges/cc_spanning.hpp"
#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/oracle.hpp"
#include "engine/policy.hpp"
#include "graph/graph.hpp"
#include "lca/inlabel.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::engine {

class Engine;
class Session;
class View;

// ------------------------------------------------------------- requests
//
// A request is a plain struct naming the question plus its batch payload;
// Session::run / View::run overload on the request type and return the
// typed answer. Batched requests are answered by ONE bulk kernel (or a
// host loop when the policy says the batch is too small to pay a launch —
// Figure 6).

/// Per-edge bridge verdict for the whole graph, EdgeList order. The answer
/// is cached per epoch: a second run on an unchanged epoch is free — and
/// `phases` is then left untouched (nothing ran, nothing to time); call
/// drop_results() first when timing the computation itself. Views ignore
/// `phases` entirely (their mask is prebuilt).
struct Bridges {
  util::PhaseTimer* phases = nullptr;  // optional per-phase breakdown
};

/// 2-edge-connected components of the whole graph.
struct TwoEcc {};

/// For each pair: do two edge-disjoint paths connect them?
struct Same2Ecc {
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// For each pair: number of bridges on the connecting path (kNoNode if in
/// different components).
struct BridgesOnPath {
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// For each node: size of its 2-edge-connected component.
struct ComponentSize {
  std::vector<NodeId> nodes;
};

/// For each pair: lowest common ancestor on the session's cached rooted
/// spanning forest (each component rooted at its representative; kNoNode
/// for pairs in different components). The forest and its inlabel index
/// are artifacts — built once per epoch via the Euler tour technique.
struct LcaBatch {
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// Whole-graph articulation-point mask: per node, 1 iff removing the node
/// increases the component count. Served from the epoch's cached BCC index
/// (built on first demand, or at publish under EMC_BCC_EAGER).
struct Articulations {};

/// For each pair: does some biconnected component (block) contain both
/// endpoints? Equivalently, are they connected by two vertex-disjoint
/// paths — or adjacent, or equal. The vertex analogue of Same2Ecc.
struct SameBcc {
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// For each (source, target) pair: target's BFS level from source, kNoNode
/// when unreachable. Pairs sharing a source share ONE traversal (the batch
/// is grouped by distinct source), so K same-source queries cost one BFS.
struct BfsLevels {
  std::vector<std::pair<NodeId, NodeId>> pairs;
};

/// For each node: its connected-component label — the spanning forest's
/// flat representative, so two nodes are connected iff labels match.
/// Labels are representatives, not compacted; compare, don't index.
struct CcMembership {
  std::vector<NodeId> nodes;
};

/// Answer view for TwoEcc: compact per-node block ids served straight from
/// the cached 2-ecc index. From Session::run it is valid until the
/// session's next refresh/drop; from View::run it is valid as long as that
/// View (or any copy) lives.
struct TwoEccView {
  const std::vector<NodeId>* labels = nullptr;  // block id per node
  /// Vertex count per block id (indexable by (*labels)[v]) — the weight a
  /// composite index needs when its nodes are CONTRACTED blocks rather
  /// than vertices (shard::ShardedView accumulates these per summary
  /// block to answer global ComponentSize).
  const std::vector<NodeId>* sizes = nullptr;
  std::size_t num_blocks = 0;
  std::size_t num_bridges = 0;
};

// ------------------------------------------------------------- GraphRef

/// Non-owning handle over either graph kind. Constructed implicitly, so
/// engine.session(my_edge_list) and engine.session(my_dynamic_graph) both
/// read naturally.
class GraphRef {
 public:
  /* implicit */ GraphRef(const graph::EdgeList& graph) : static_(&graph) {}
  /* implicit */ GraphRef(const dynamic::DynamicGraph& graph)
      : dynamic_(&graph) {}
  // Non-owning: binding a temporary (eng.session(make_graph())) would
  // dangle the moment the full expression ends — make it a compile error.
  GraphRef(const graph::EdgeList&&) = delete;
  GraphRef(const dynamic::DynamicGraph&&) = delete;

  bool is_dynamic() const { return dynamic_ != nullptr; }
  NodeId num_nodes() const {
    return dynamic_ != nullptr ? dynamic_->num_nodes() : static_->num_nodes;
  }
  std::size_t num_edges() const {
    return dynamic_ != nullptr ? dynamic_->num_edges() : static_->num_edges();
  }
  /// The artifact-cache key: a static graph is immutable (epoch 0 forever),
  /// a dynamic graph advances per effective update batch.
  std::uint64_t epoch() const {
    return dynamic_ != nullptr ? dynamic_->epoch() : 0;
  }
  const graph::EdgeList& edges(const device::Context& ctx) const {
    return dynamic_ != nullptr ? dynamic_->snapshot(ctx) : *static_;
  }
  const graph::EdgeList* static_graph() const { return static_; }
  const dynamic::DynamicGraph* dynamic_graph() const { return dynamic_; }

 private:
  const graph::EdgeList* static_ = nullptr;
  const dynamic::DynamicGraph* dynamic_ = nullptr;
};

// -------------------------------------------------------------- Engine

/// Coherent snapshot of an engine's aggregate counters, taken by
/// Engine::stats().
struct EngineStats {
  std::size_t sessions = 0;
  std::size_t requests = 0;
  /// Artifact-cache outcomes: builds ran kernels, hits were free.
  std::size_t artifact_builds = 0;
  std::size_t artifact_hits = 0;
  /// Bridge-mask computations per backend, kFixedBackends order.
  std::array<std::size_t, kNumBackends> backend_runs{};
  /// Query batches answered by one device kernel vs a host loop.
  std::size_t device_query_batches = 0;
  std::size_t host_query_batches = 0;
  /// Device-routed batches re-routed to the host loop because the driver
  /// lock was busy (Policy::host_fallback_when_busy).
  std::size_t host_fallbacks = 0;
  /// Views acquired via Session::view().
  std::size_t views = 0;
  /// Epoch publishes (refresh()/view() materializations) served by the
  /// delta-replay fast path vs the full per-artifact pipeline. A publish
  /// that found its epoch already built counts as neither.
  std::size_t publish_replays = 0;
  std::size_t publish_rebuilds = 0;
};

struct EngineOptions {
  /// Workers for the device context (0 = EMC_WORKERS / hardware width).
  unsigned device_workers = 0;
  /// Workers for the multicore context (0 = half the device width, >= 2 —
  /// the paper's mid-tier baseline).
  unsigned multicore_workers = 0;
  /// Default policy for sessions; per-request overrides win.
  Policy policy{};
  /// Run policy.calibrate(*this) at construction: replaces the committed
  /// hand-fitted CostModel constants (1-core container numbers) with ones
  /// fitted to this machine by a ~100ms startup microbenchmark.
  bool calibrate = false;
};

class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Binds a session to a graph. The engine and the graph must outlive it.
  Session session(GraphRef graph);

  const device::Context& device() const { return device_; }
  const device::Context& multicore() const { return multicore_; }

  const Policy& default_policy() const { return options_.policy; }

  /// The live atomic counter sink behind stats(). Mutable through a const
  /// Engine so concurrent Views account their work without locks; it is an
  /// implementation surface for the engine/serve layers — consumers should
  /// read the plain stats() snapshot instead.
  struct Counters {
    std::atomic<std::size_t> sessions{0};
    std::atomic<std::size_t> requests{0};
    std::atomic<std::size_t> artifact_builds{0};
    std::atomic<std::size_t> artifact_hits{0};
    std::array<std::atomic<std::size_t>, kNumBackends> backend_runs{};
    std::atomic<std::size_t> device_query_batches{0};
    std::atomic<std::size_t> host_query_batches{0};
    std::atomic<std::size_t> host_fallbacks{0};
    std::atomic<std::size_t> views{0};
    std::atomic<std::size_t> publish_replays{0};
    std::atomic<std::size_t> publish_rebuilds{0};
  };
  Counters& counters() const { return counters_; }

  /// Plain snapshot of counters() (each counter read atomically).
  EngineStats stats() const;

  /// Kernel launches issued on the device context so far (the currency the
  /// cache-reuse tests pin).
  std::uint64_t device_launches() const { return device_.launch_count(); }

 private:
  friend class Session;
  EngineOptions options_;
  device::Context device_;
  device::Context multicore_;
  mutable Counters counters_;
};

// ---------------------------------------------------------------- View

/// An immutable snapshot of one epoch's artifacts — the concurrent request
/// surface. Copyable (copies share the refcounted state); a default-
/// constructed View is empty and must not be queried. All run() overloads
/// are safe to call from any number of threads simultaneously; answers are
/// always computed against the acquisition epoch, no matter how far the
/// graph has advanced since. The policy captured at acquisition decides
/// host-loop vs bulk-device routing for query batches.
class View {
 public:
  View() = default;
  explicit operator bool() const { return state_ != nullptr; }

  std::uint64_t epoch() const;
  NodeId num_nodes() const;
  std::size_t num_edges() const;
  std::size_t num_components() const;
  /// Backend that produced this snapshot's bridge mask.
  Backend mask_backend() const;
  /// The routing policy captured at acquisition (see with_policy()).
  const Policy& policy() const;

  /// The pinned snapshot itself: for a dynamic graph, the epoch's edge
  /// list (mask order) co-owned with the DCSR cache; for a static graph,
  /// the user's EdgeList.
  const graph::EdgeList& edges() const;
  const graph::Csr& csr() const;
  const bridges::SpanningForest& forest() const;

  // Typed requests, mirroring Session::run. The Bridges answer references
  // the view's frozen mask (valid while any copy of the View lives);
  // request.phases is ignored — nothing runs at answer time.
  const bridges::BridgeMask& run(const Bridges& request) const;
  TwoEccView run(const TwoEcc& request) const;
  std::vector<std::uint8_t> run(const Same2Ecc& request) const;
  std::vector<NodeId> run(const BridgesOnPath& request) const;
  std::vector<NodeId> run(const ComponentSize& request) const;
  std::vector<NodeId> run(const LcaBatch& request) const;
  std::vector<std::uint8_t> run(const Articulations& request) const;
  std::vector<std::uint8_t> run(const SameBcc& request) const;
  std::vector<NodeId> run(const BfsLevels& request) const;
  std::vector<NodeId> run(const CcMembership& request) const;

  /// The epoch's vertex-biconnectivity artifact, building it on first call
  /// (the build serializes on the device driver lock; afterwards the index
  /// is immutable and lock-free to read). Shared with the session's cache
  /// cell, so the first builder — session or any View — pays for everyone.
  /// Composite indexes (shard::ShardedView's skeleton stitch) read the
  /// per-shard tables through this.
  std::shared_ptr<const bcc::BccIndex> bcc_index() const;

  /// A copy of this View answering under a different routing policy (e.g.
  /// host_fallback_when_busy for degraded serving). Cheap: the copy shares
  /// every pinned artifact; only the captured Policy differs.
  View with_policy(const Policy& policy) const;

 private:
  friend class Session;
  struct State;
  explicit View(std::shared_ptr<const State> state) : state_(std::move(state)) {}
  std::shared_ptr<const State> state_;
};

// ------------------------------------------------------------- Session

class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  // --- typed request batches (overload per request; the second form
  //     overrides the engine's default policy for this request only)
  //
  // run(Bridges) returns a reference into the artifact cache: it stays
  // valid until the next request that recomputes the mask (an epoch
  // change, drop_results/drop_artifacts, or a forced backend different
  // from the one that produced it). Copy the mask to keep it across such
  // calls — or hold a View, whose mask is frozen.
  const bridges::BridgeMask& run(const Bridges& request);
  const bridges::BridgeMask& run(const Bridges& request, const Policy& policy);
  TwoEccView run(const TwoEcc& request);
  TwoEccView run(const TwoEcc& request, const Policy& policy);
  std::vector<std::uint8_t> run(const Same2Ecc& request);
  std::vector<std::uint8_t> run(const Same2Ecc& request, const Policy& policy);
  std::vector<NodeId> run(const BridgesOnPath& request);
  std::vector<NodeId> run(const BridgesOnPath& request, const Policy& policy);
  std::vector<NodeId> run(const ComponentSize& request);
  std::vector<NodeId> run(const ComponentSize& request, const Policy& policy);
  std::vector<NodeId> run(const LcaBatch& request);
  std::vector<NodeId> run(const LcaBatch& request, const Policy& policy);
  std::vector<std::uint8_t> run(const Articulations& request);
  std::vector<std::uint8_t> run(const SameBcc& request);
  std::vector<std::uint8_t> run(const SameBcc& request, const Policy& policy);
  std::vector<NodeId> run(const BfsLevels& request);
  std::vector<NodeId> run(const BfsLevels& request, const Policy& policy);
  std::vector<NodeId> run(const CcMembership& request);
  std::vector<NodeId> run(const CcMembership& request, const Policy& policy);

  // --- snapshot serving
  //
  // view() materializes EVERY artifact for the current epoch (where run()
  // builds lazily per request type) and returns the epoch-pinned snapshot;
  // refresh() does the same without acquiring a View — the writer-side
  // "publish artifacts on the side" step, making the next view() cheap.
  // Acquiring a View freezes the artifacts it shares: the next epoch's
  // 2-ecc refresh clones the oracle (copy-on-write) instead of replaying
  // deltas in place, so held Views keep answering at their epoch.
  View view();
  View view(const Policy& policy);
  std::uint64_t refresh();
  std::uint64_t refresh(const Policy& policy);
  /// Number of distinct epochs still pinned by live Views of this session
  /// (the current one included). An epoch's artifacts retire when its last
  /// View drops — this is the observable for that.
  std::size_t pinned_epochs() const;

  /// The decision a Bridges request would take, without running it: chosen
  /// backend plus the model's per-backend predictions. Builds the cheap
  /// inputs (Csr, diameter estimate) if missing.
  Plan plan(const Bridges& request);
  Plan plan(const Bridges& request, const Policy& policy);

  // --- artifacts and instance statistics
  const graph::Csr& csr();
  /// Double-sweep BFS diameter lower bound. Sticky across epochs: an
  /// estimate survives small edge-count drift (|m - m_at_estimate| <= 25%)
  /// for up to Cache::kDiameterMaxAge effective update batches, so
  /// steady-state dynamic serving does not re-pay the sweeps while the
  /// policy's key input cannot go arbitrarily stale at constant m.
  NodeId diameter_estimate();
  /// The session's 2-ecc index object — a pure stats reader (rebuilds,
  /// incremental refreshes, tree-links, block counts). It does NOT refresh:
  /// it may lag the graph until the next 2-ecc request runs. Queries go
  /// through run().
  const dynamic::ConnectivityOracle& two_ecc_index() const {
    return *cache_.oracle;
  }
  std::size_t num_components();

  NodeId num_nodes() const { return graph_.num_nodes(); }
  std::size_t num_edges() const { return graph_.num_edges(); }
  std::uint64_t epoch() const { return graph_.epoch(); }
  /// The backend that served the most recent bridge-mask computation
  /// (after kAuto resolution); kAuto if none ran yet this epoch.
  Backend mask_backend() const { return cache_.mask_backend; }

  /// Epoch publishes (refresh()/view()) this session served by replaying
  /// the graph's last delta onto the previous epoch's artifacts, vs by the
  /// full per-artifact pipeline. A publish that found its epoch already
  /// built counts as neither. The replay requires the PREVIOUS epoch to
  /// have been published (its artifacts all materialized) and the delta to
  /// be insert-only under the oracle's incremental size rule.
  std::uint64_t publish_replays() const { return publish_replays_; }
  std::uint64_t publish_rebuilds() const { return publish_rebuilds_; }

  /// Drops every cached artifact (benchmark / memory-pressure hook) except
  /// the sticky diameter hint. The next request rebuilds from scratch.
  /// Live Views are unaffected: they co-own what they pinned.
  void drop_artifacts();

  /// Drops only the ANSWER artifacts (bridge mask, 2-ecc index, forest
  /// LCA), keeping the input-preparation ones (Csr, spanning forest,
  /// stitched augmentation, diameter hint). The benchmark hook for timing
  /// the per-request algorithm cost the way the paper's figures do — input
  /// prep outside the timer, algorithm inside.
  void drop_results();

 private:
  friend class Engine;
  Session(Engine& engine, GraphRef graph) : engine_(&engine), graph_(graph) {}

  struct Cache {
    static constexpr std::uint64_t kNone = ~std::uint64_t{0};
    std::uint64_t epoch = kNone;  // epoch the artifacts below belong to
    // Artifacts are shared_ptrs so a published View co-owns them: an epoch
    // change RESETS the session's reference (and rebuilds on demand) while
    // every View pinning the old epoch keeps the objects alive.
    std::shared_ptr<const graph::Csr> csr;  // static graphs only; dynamic
                                            // ones delegate to the DCSR's
                                            // own shared snapshot
    std::shared_ptr<const bridges::SpanningForest> forest;
    std::shared_ptr<const graph::EdgeList> stitched;  // connected augmentation
    std::shared_ptr<const graph::Csr> stitched_csr;
    std::shared_ptr<const bridges::BridgeMask> mask;
    Backend mask_backend = Backend::kAuto;
    /// Edge ids (mask order) of the current mask's bridges, computed on the
    /// publish path only: the next epoch's delta replay demotes dying
    /// bridges by rechecking exactly these instead of rescanning the mask.
    std::shared_ptr<const std::vector<EdgeId>> bridge_edges;
    /// Set when a View shares the mask / forest object (make_state); the
    /// delta replay then patches a COPY (copy-on-write) instead of mutating
    /// the artifact under the readers. Sticky for the same reason as
    /// `oracle_published` below: a refcount load is not a synchronization
    /// point, so use_count() == 1 must not license in-place mutation.
    bool mask_published = false;
    bool forest_published = false;
    bool oracle_current = false;
    // The 2-ecc index persists across epochs (dynamic refreshes replay
    // deltas). Once `oracle_published` (a View shares the object), any
    // mutation goes through Session::oracle_mut(), which clones first.
    bool oracle_published = false;
    std::shared_ptr<dynamic::ConnectivityOracle> oracle =
        std::make_shared<dynamic::ConnectivityOracle>();
    std::shared_ptr<const lca::InlabelLca> forest_lca;
    /// Vertex-biconnectivity cell: built at most once per epoch (lazily on
    /// first Articulations/SameBcc demand, or at publish under
    /// EMC_BCC_EAGER). An epoch change swaps in a FRESH cell — never a
    /// mutation of the old one — so Views pinning the outgoing epoch keep
    /// their (immutable) index: copy-on-write at cell granularity, the
    /// same published-artifact discipline as the bridge mask.
    std::shared_ptr<bcc::BccCell> bcc = std::make_shared<bcc::BccCell>();
    // Sticky diameter hint (see diameter_estimate()).
    static constexpr std::uint64_t kDiameterMaxAge = 16;  // effective batches
    NodeId diameter = kNoNode;
    std::size_t diameter_at_m = 0;
    std::uint64_t diameter_at_epoch = 0;
  };

  /// Epoch fence: every request passes through here first; a changed epoch
  /// invalidates the epoch-keyed artifacts (the oracle object survives so
  /// dynamic refreshes can take the incremental paths).
  void sync_epoch();
  const graph::Csr& csr_artifact();
  NodeId diameter_artifact();
  const bridges::SpanningForest& forest();
  /// Connected augmentation of a disconnected graph: one virtual edge from
  /// the first component representative to each other representative (can
  /// never change a real edge's bridgeness), so the connected-only backends
  /// run unmodified and the mask is sliced back to the real edges.
  const graph::EdgeList& stitched();
  const graph::Csr& stitched_csr();
  /// The mask artifact under `policy` (the heart of the Bridges request).
  const bridges::BridgeMask& mask_artifact(const Policy& policy,
                                           util::PhaseTimer* phases);
  /// The 2-ecc index artifact: refresh (dynamic) or build (static), either
  /// way reusing this epoch's cached mask when present.
  const dynamic::ConnectivityOracle& oracle_artifact(const Policy& policy);
  const lca::InlabelLca& forest_lca_artifact();
  /// The artifact fetch shared by the query-type run() overloads: bump the
  /// request counter, build (or hit) the artifact under the device driver
  /// lock, release it — answering then routes host/device per policy.
  const dynamic::ConnectivityOracle& locked_oracle(const Policy& policy);
  const lca::InlabelLca& locked_forest_lca();
  /// The BCC index artifact (expects the device driver lock held).
  std::shared_ptr<const bcc::BccIndex> bcc_artifact();
  std::shared_ptr<const bcc::BccIndex> locked_bcc();
  const bridges::SpanningForest& locked_forest();
  /// Mutable access to the 2-ecc index: clones it first if a View shares
  /// the object (copy-on-write — cumulative stats and the (uid, epoch)
  /// binding travel with the clone, so incremental replay still applies).
  dynamic::ConnectivityOracle& oracle_mut();
  /// Materializes every artifact for the current epoch under `policy`
  /// (expects the caller to hold the device driver lock).
  void ensure_all_artifacts(const Policy& policy);
  /// The delta-replay publish fast path: when the graph is exactly one
  /// insert-only batch ahead of a fully published cache (same decision-rule
  /// family as ConnectivityOracle::incremental_applies), produce this
  /// epoch's snapshot, CSR, spanning forest, bridge mask, and forest LCA by
  /// patching the previous epoch's artifacts instead of rebuilding — O(n)
  /// worst case (label relabel, CSR row shift) rather than the full
  /// pipeline. Returns false, having mutated nothing, when any eligibility
  /// check fails (deletions, cross-component cycle, oversized batch,
  /// missing artifacts, forced-backend mismatch); the caller then runs the
  /// full pipeline.
  bool try_replay_publish(const Policy& policy);
  /// Materializes Cache::bridge_edges from the current mask (publish path
  /// only — dynamic sessions; lazy run() requests never need it).
  void ensure_bridge_edges();
  /// ensure_all_artifacts + assemble and register the shared snapshot.
  std::shared_ptr<const View::State> make_state(const Policy& policy);
  /// Machine-only inputs (workers, launch overhead, n, m) — enough for the
  /// batch-size decision without touching the diameter artifact.
  PlanInputs machine_inputs() const;
  PlanInputs plan_inputs();
  bool track(bool built);  // stats helper: count a build or a hit

  Engine* engine_;
  GraphRef graph_;
  Cache cache_;
  std::uint64_t publish_replays_ = 0;
  std::uint64_t publish_rebuilds_ = 0;
  /// Weak registry of every State this session published, for
  /// pinned_epochs(); expired entries are pruned opportunistically.
  std::vector<std::weak_ptr<const View::State>> published_;
};

}  // namespace emc::engine
