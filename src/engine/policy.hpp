// Backend selection policy for the engine (paper §4 + ISSUE 4).
//
// The paper's headline finding is that the SAME bridge/2-ecc problem is
// best served by different backends depending on the instance: sequential
// DFS on one core, CK on multicore, CK/TV/hybrid on the device — with the
// winner decided by graph shape (diameter, density) and, for query
// serving, by the batch size (Figure 6's launch-overhead regime). In the
// spirit of Optiplan (PAPERS.md), which let IP-based and graph-based
// planners compete per instance behind one interface, a Policy either
// forces one backend or resolves kAuto through an explicit cost model.
//
// The cost model is deliberately simple — per-element work constants plus
// a per-kernel launch charge — and is CALIBRATED, not derived: the
// constants in CostModel's defaults are fitted to the committed BENCH
// tables (see the notes in policy.cpp). It only has to rank backends,
// not predict wall time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/types.hpp"

namespace emc::engine {

class Engine;

/// The bridge-finding backends a Session can dispatch to. All produce the
/// identical per-edge verdict; they differ only in cost shape.
enum class Backend {
  kAuto = 0,     // resolve through the cost model
  kDfs,          // sequential Hopcroft-Tarjan on the CSR (cpu1 baseline)
  kCkMulticore,  // Chaitanya-Kothapalli on the multicore context
  kCk,           // Chaitanya-Kothapalli on the device context
  kTv,           // Tarjan-Vishkin on the device context
  kHybrid,       // CC tree + Euler rooting + CK marking on the device
};

inline constexpr std::size_t kNumBackends = 5;

/// The fixed (non-auto) backends, in the order Plan::predicted_seconds and
/// EngineStats::backend_runs are indexed.
inline constexpr std::array<Backend, kNumBackends> kFixedBackends = {
    Backend::kDfs, Backend::kCkMulticore, Backend::kCk, Backend::kTv,
    Backend::kHybrid};

std::string_view to_string(Backend backend);

/// Index of a fixed backend in kFixedBackends order (kAuto not allowed).
std::size_t backend_index(Backend backend);

/// What the cost model sees: instance statistics (from the session's
/// artifact cache) and machine parameters (from the engine's contexts).
struct PlanInputs {
  NodeId n = 0;
  std::size_t m = 0;
  NodeId diameter = 0;  // double-sweep BFS lower bound (cached artifact)
  unsigned device_workers = 1;
  unsigned multicore_workers = 1;
  double launch_overhead = 0.0;  // seconds per device kernel launch
};

/// Per-element work constants (nanoseconds) and launch counts. Defaults are
/// fitted to the committed BENCH tables; override to recalibrate for other
/// hardware without rebuilding.
struct CostModel {
  // Sequential DFS: one cache-unfriendly pass over n + 2m adjacency slots.
  double dfs_node_ns = 22.0;
  double dfs_edge_ns = 4.5;  // per directed half-edge (the model doubles m)
  // Tarjan-Vishkin: node/edge split fitted from the BENCH tables (see
  // policy.cpp); launch count pinned by bench_bridges_breakdown.
  double tv_node_ns = 230.0;
  double tv_edge_ns = 48.0;
  double tv_launches = 70.0;
  // CK: the diameter cost is the BFS LAUNCH COUNT (~1 launch per unit of
  // the diameter estimate), not the marking walks — measured walks stay
  // local (most non-tree edges meet their BFS-tree LCA within a few hops),
  // so marking folds into the flat per-edge constant.
  double ck_node_ns = 37.0;
  double ck_edge_ns = 50.0;
  double ck_launches_per_diameter = 1.0;
  double ck_fixed_launches = 10.0;
  double multicore_sync_ns = 950.0;  // per BFS-level pool barrier (no
                                     // modeled latency on CPU contexts)
  // Hybrid: TV's spanning tree + Euler tour, then CK's (cheap) marking in
  // place of TV's RMQ-heavy detect phase — fewer launches than TV.
  double hybrid_node_ns = 280.0;
  double hybrid_edge_ns = 10.0;
  double hybrid_launches = 40.0;
  // Point queries on the 2-ecc index / forest LCA (per query; identical
  // arithmetic either way, so the device only wins by dividing it).
  double query_host_ns = 30.0;
  double query_device_ns = 30.0;

  /// Predicted seconds for one bridge-mask computation with `backend`
  /// (kAuto not allowed) on the given instance.
  double seconds(Backend backend, const PlanInputs& inputs) const;
};

/// How a Session chooses and runs backends. Default-constructed = full auto.
struct Policy {
  /// Forced backend for bridge-mask computations, or kAuto to let the cost
  /// model pick per request.
  Backend backend = Backend::kAuto;
  /// Query batches at least this large run as ONE bulk device kernel;
  /// smaller batches loop on the host, dodging the launch overhead that
  /// makes small batches wasteful on the device (Figure 6). 0 = derive the
  /// threshold from the model and machine parameters.
  std::size_t min_device_batch = 0;
  /// Degradation knob for concurrent serving: when a device-routed query
  /// batch finds the driver lock held (a writer mid-pipeline, or another
  /// reader's kernel), answer with the host loop instead of queueing behind
  /// it. Identical answers, bounded latency; counted in
  /// EngineStats::host_fallbacks.
  bool host_fallback_when_busy = false;
  CostModel model{};

  static Policy fixed(Backend backend) {
    Policy policy;
    policy.backend = backend;
    return policy;
  }

  /// Auto-fits the CostModel's per-element work constants to THIS machine
  /// with a ~100ms startup microbenchmark: each fixed backend runs on two
  /// small calibration instances spanning the diameter regimes (a
  /// high-diameter road ribbon and a dense small-diameter kron), the
  /// already-exact launch/sync charges are subtracted from the measured
  /// times, and each backend's work constants are scaled by the measured /
  /// predicted work ratio. The committed hand-fitted constants (calibrated
  /// for the 1-core reference container) stay as both the structural prior
  /// — launch counts, diameter dependence and node/edge split are NOT
  /// refitted, only scaled — and the fallback: a non-finite or wildly
  /// implausible ratio (outside [1/20, 20], i.e. noise) leaves that
  /// backend's constants untouched. Implemented in engine.cpp (it drives
  /// the engine's execution contexts).
  void calibrate(Engine& engine);

  /// Resolves this policy for one bridge request: the forced backend, or
  /// the cost-model argmin over kFixedBackends.
  Backend choose(const PlanInputs& inputs) const;

  /// True iff a query batch of `size` should run as a device kernel.
  bool use_device_batch(std::size_t size, const PlanInputs& inputs) const;
};

/// The resolved decision for one bridge request — exposed so benches and
/// tests can audit the policy (and print WHY a backend was picked).
struct Plan {
  Backend chosen = Backend::kAuto;
  std::array<double, kNumBackends> predicted_seconds{};  // kFixedBackends order
  PlanInputs inputs;
};

}  // namespace emc::engine
