// Vertex biconnectivity on the engine's cached artifacts.
//
// bridges/biconnectivity.hpp completes the Tarjan-Vishkin framework for
// CONNECTED inputs; this module is the serving-shaped version: it computes
// blocks (2-vertex-connected components) and articulation points for ANY
// snapshot — disconnected, multigraph, edgeless — directly from the spanning
// forest the engine already caches per epoch, and packages the result as an
// immutable epoch-keyed artifact (`BccIndex`) behind a once-per-epoch cell
// (`BccCell`) that Session and View share.
//
// Construction = Tarjan-Vishkin over the same virtual-root stitched tree the
// forest-LCA artifact uses (one virtual root adjacent to every component
// representative; n + 1 nodes, exactly n tree edges):
//   * low/high per node from the Euler tour of the stitched tree + one
//     non-tree min/max aggregation + two sparse tables (cf. fast-bcc's
//     low/high interval machinery);
//   * the auxiliary graph G'' over parent edges, with both rules restricted
//     to REAL edges: a representative's parent edge is virtual, and rule (a)
//     can never select it (every non-tree edge incident to a representative
//     stays inside its subtree), while rule (b) explicitly skips nodes whose
//     parent — or grandparent — is the virtual root, which is exactly the
//     "v is not the root" side condition of per-component Tarjan-Vishkin
//     rooted at the representative;
//   * block labels compacted to [0, num_blocks) (the bridge-module variant
//     keeps raw representatives; the serving layer wants dense ids for the
//     O(num_blocks) head/articulation passes and for cross-shard offsets).
//
// Two derived tables make every point query O(1):
//   * vertex_block[v] — the block of v's parent edge (kNoNode for component
//     roots and isolated nodes). Within a block B, B ∩ T is a connected
//     subtree, so every vertex of B except the subtree's top has its parent
//     edge IN B.
//   * head[b] — that top vertex (the minimum-preorder vertex of block b).
// Then v's blocks are {vertex_block[v]} ∪ {b : head[b] == v} with no double
// count, giving both same_bcc() and the articulation mask ("belongs to >= 2
// blocks") without the counting-sorted incidence pass biconnectivity_tv
// needs.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bridges/cc_spanning.hpp"
#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::bcc {

/// Immutable vertex-biconnectivity artifact for one epoch's snapshot.
/// Everything is computed once by build(); afterwards the structure is
/// read-only and safe to share across reader threads without locks — the
/// same published-artifact discipline as the bridge mask (a new epoch gets
/// a NEW index; the old one stays frozen under its pinned Views).
struct BccIndex {
  /// Per undirected edge: its block id in [0, num_blocks), or kNoNode for
  /// a self-loop (self-loops belong to no block; the engine's snapshots
  /// never contain one, but skeleton callers may).
  std::vector<NodeId> edge_block;
  /// Per node: the block of v's parent edge in the spanning forest, or
  /// kNoNode when v has none (component representatives, isolated nodes).
  std::vector<NodeId> vertex_block;
  /// Per block: its minimum-preorder vertex — the root of the block's
  /// subtree in the forest, the one member whose parent edge is outside.
  std::vector<NodeId> head;
  /// Per node: 1 iff removing the node increases the component count.
  std::vector<std::uint8_t> is_articulation;
  std::size_t num_blocks = 0;
  std::size_t num_articulations = 0;

  /// True iff some block contains both u and v (u == v counts as true).
  /// O(1): v's blocks are {vertex_block[v]} ∪ {b : head[b] == v}.
  bool same_bcc(NodeId u, NodeId v) const {
    if (u == v) return true;
    const NodeId bu = vertex_block[u];
    const NodeId bv = vertex_block[v];
    if (bu != kNoNode && bu == bv) return true;
    if (bu != kNoNode && head[bu] == v) return true;
    if (bv != kNoNode && head[bv] == u) return true;
    return false;
  }

  /// Builds the index from a snapshot and its cached spanning forest (the
  /// exact forest the engine's bridge pipeline produced for this epoch).
  /// Caller must hold the device driver lock, as for every bulk build.
  static BccIndex build(const device::Context& ctx,
                        const graph::EdgeList& graph,
                        const bridges::SpanningForest& forest,
                        util::PhaseTimer* phases = nullptr);
};

/// Once-per-epoch build cell. The Session's artifact cache holds one
/// BccCell per epoch (a fresh cell on every publish/invalidate, never a
/// mutation of the old one — copy-on-write at cell granularity); Views
/// share the epoch's cell and the first query builds the index.
///
/// Lock order: device exclusive lock FIRST, then the cell mutex —
/// get_or_build assumes the caller already holds the driver lock (it runs
/// bulk kernels), and peek() takes only the cell mutex.
class BccCell {
 public:
  /// Returns the index, building it on first call. Exception-safe: a fault
  /// mid-build (failpoints, allocation) leaves the cell empty and the next
  /// caller retries.
  std::shared_ptr<const BccIndex> get_or_build(
      const device::Context& ctx, const graph::EdgeList& graph,
      const bridges::SpanningForest& forest) {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_ == nullptr) {
      index_ = std::make_shared<const BccIndex>(
          BccIndex::build(ctx, graph, forest));
    }
    return index_;
  }

  /// The index if already built, else nullptr. Never builds.
  std::shared_ptr<const BccIndex> peek() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const BccIndex> index_;
};

/// EMC_BCC_EAGER ∈ {0, 1} (default 0): build the BCC index at publish time
/// instead of on first query. Strict parse on the shared env grammar.
bool resolve_bcc_eager();

/// EMC_BCC_MIN_DEVICE_BATCH ∈ [0, 2^30] (default 0 = let the Policy cost
/// model decide): batches at least this large take the bulk-kernel route in
/// the BCC answer paths regardless of the model.
std::size_t resolve_bcc_min_device_batch();

}  // namespace emc::bcc
