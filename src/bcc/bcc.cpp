#include "bcc/bcc.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "bridges/stitch.hpp"
#include "bridges/tv_detail.hpp"
#include "core/euler_tour.hpp"
#include "device/primitives.hpp"
#include "rmq/segment_tree.hpp"
#include "rmq/sparse_table.hpp"
#include "util/env.hpp"

namespace emc::bcc {

BccIndex BccIndex::build(const device::Context& ctx,
                         const graph::EdgeList& graph,
                         const bridges::SpanningForest& forest,
                         util::PhaseTimer* phases) {
  const auto n = static_cast<std::size_t>(graph.num_nodes);
  const std::size_t m = graph.edges.size();
  BccIndex result;
  result.edge_block.assign(m, kNoNode);
  result.vertex_block.assign(n, kNoNode);
  result.is_articulation.assign(n, 0);
  if (m == 0) return result;

  // --- Stitched tree: the forest's tree edges plus one virtual edge from a
  // virtual root to each component representative — the same augmentation
  // the forest-LCA artifact uses. n + 1 nodes, exactly n tree edges.
  const NodeId vroot = graph.num_nodes;
  const std::size_t t = forest.tree_edges.size();
  std::vector<std::uint8_t> is_tree_edge(m, 0);
  device::launch(ctx, t, [&](std::size_t k) {
    is_tree_edge[forest.tree_edges[k]] = 1;
  });
  const std::vector<NodeId> reps =
      bridges::component_representatives(ctx, forest);
  graph::EdgeList tree;
  tree.num_nodes = graph.num_nodes + 1;
  tree.edges.resize(t + reps.size());
  device::transform(ctx, t, tree.edges.data(), [&](std::size_t k) {
    return graph.edges[forest.tree_edges[k]];
  });
  device::transform(ctx, reps.size(), tree.edges.data() + t,
                    [&](std::size_t r) {
                      return graph::Edge{vroot, reps[r]};
                    });

  core::TreeStats stats;
  {
    util::ScopedPhase phase(phases, "euler_tour");
    const core::EulerTour tour = core::build_euler_tour(ctx, tree, vroot);
    stats = core::compute_tree_stats(ctx, tour);
  }
  const std::vector<NodeId>& pre = stats.preorder;      // over n + 1 nodes
  const std::vector<NodeId>& size = stats.subtree_size;
  const std::vector<NodeId>& parent = stats.parent;     // parent[rep] == vroot

  util::ScopedPhase phase(phases, "blocks");

  // --- Per-node min/max non-tree neighbor preorders, then subtree low/high.
  // Preorders are global over the stitched tree, but each component's form a
  // contiguous interval, so every comparison below — always within one
  // component — is equivalent to the per-component computation.
  const std::size_t ns = n + 1;
  std::vector<NodeId> node_min(ns), node_max(ns);
  device::launch(ctx, ns, [&](std::size_t v) {
    node_min[v] = pre[v];
    node_max[v] = pre[v];
  });
  bridges::tv_detail::aggregate_non_tree_min_max(ctx, graph, is_tree_edge, pre,
                                                 node_min, node_max);
  std::vector<NodeId> by_pre_min(ns), by_pre_max(ns), node_at_pre(ns);
  device::launch(ctx, ns, [&](std::size_t v) {
    by_pre_min[pre[v] - 1] = node_min[v];
    by_pre_max[pre[v] - 1] = node_max[v];
    node_at_pre[pre[v] - 1] = static_cast<NodeId>(v);
  });
  const rmq::SparseTable<NodeId, rmq::MinOp> low_tree(ctx, by_pre_min);
  const rmq::SparseTable<NodeId, rmq::MaxOp> high_tree(ctx, by_pre_max);
  std::vector<NodeId> low(ns), high(ns);
  device::launch(ctx, ns, [&](std::size_t v) {
    const auto lo = static_cast<std::size_t>(pre[v]) - 1;
    const auto hi = lo + static_cast<std::size_t>(size[v]) - 1;
    low[v] = low_tree.query(lo, hi);
    high[v] = high_tree.query(lo, hi);
  });

  // --- Auxiliary graph G'' over parent edges (aux vertex w stands for the
  // tree edge {w, parent[w]}). Virtual parent edges never participate:
  // rule (a) cannot pick a representative (every non-tree edge incident to
  // one stays inside its subtree, so the unrelatedness test fails) and
  // rule (b) skips w or v whose parent is the virtual root — the "v is not
  // the root" side condition of per-component Tarjan-Vishkin.
  graph::EdgeList aux;
  aux.num_nodes = graph.num_nodes;
  {
    std::vector<EdgeId> flag(m), pos(m);
    device::transform(ctx, m, flag.data(), [&](std::size_t e) -> EdgeId {
      if (is_tree_edge[e]) return 0;
      auto [u, v] = graph.edges[e];
      if (u == v) return 0;  // self-loops belong to no block
      if (pre[v] < pre[u]) std::swap(u, v);
      return pre[u] + size[u] <= pre[v] ? 1 : 0;
    });
    const EdgeId rule_a =
        device::exclusive_scan(ctx, flag.data(), m, pos.data());
    std::vector<EdgeId> flag_b(n), pos_b(n);
    device::transform(ctx, n, flag_b.data(), [&](std::size_t w) -> EdgeId {
      const NodeId v = parent[w];
      if (v == kNoNode || v == vroot) return 0;
      if (parent[v] == kNoNode || parent[v] == vroot) return 0;
      return (low[w] < pre[v] || high[w] >= pre[v] + size[v]) ? 1 : 0;
    });
    const EdgeId rule_b =
        device::exclusive_scan(ctx, flag_b.data(), n, pos_b.data());
    aux.edges.resize(static_cast<std::size_t>(rule_a + rule_b));
    device::launch(ctx, m, [&](std::size_t e) {
      if (!flag[e]) return;
      aux.edges[pos[e]] = graph.edges[e];
    });
    device::launch(ctx, n, [&](std::size_t w) {
      if (!flag_b[w]) return;
      aux.edges[rule_a + pos_b[w]] = {static_cast<NodeId>(w), parent[w]};
    });
  }

  // --- Blocks = connected components of G''.
  const bridges::SpanningForest blocks = bridges::cc_spanning_forest(ctx, aux);

  const auto real_parent = [&](std::size_t w) {
    return parent[w] != kNoNode && parent[w] != vroot;
  };

  // --- Compact the raw labels (component representatives in G'') to dense
  // ids. Every block contains at least one real tree edge, so flagging the
  // labels of real-parent nodes covers exactly the blocks.
  std::vector<NodeId> compact(n, kNoNode);
  {
    std::vector<NodeId> flag(n, 0), pos(n);
    device::launch(ctx, n, [&](std::size_t w) {
      if (real_parent(w)) {
        std::atomic_ref<NodeId>(flag[blocks.component[w]])
            .store(1, std::memory_order_relaxed);
      }
    });
    const NodeId total =
        device::exclusive_scan(ctx, flag.data(), n, pos.data());
    result.num_blocks = static_cast<std::size_t>(total);
    device::launch(ctx, n, [&](std::size_t raw) {
      if (flag[raw]) compact[raw] = pos[raw];
    });
  }

  // --- Edge labels: a tree edge takes its child endpoint's component, a
  // non-tree edge its deeper endpoint's (the deeper endpoint always has a
  // real parent edge — a representative is the shallowest node of its
  // component, and self-loops were excluded above).
  device::transform(ctx, m, result.edge_block.data(),
                    [&](std::size_t e) -> NodeId {
                      const auto [u, v] = graph.edges[e];
                      if (u == v) return kNoNode;
                      if (is_tree_edge[e]) {
                        const NodeId child = parent[u] == v ? u : v;
                        return compact[blocks.component[child]];
                      }
                      return compact[blocks.component[pre[u] > pre[v] ? u : v]];
                    });
  device::launch(ctx, n, [&](std::size_t w) {
    if (real_parent(w)) {
      result.vertex_block[w] = compact[blocks.component[w]];
    }
  });

  // --- head[b]: block b ∩ T is a connected subtree, so the minimum
  // preorder among members' PARENTS is the subtree's root — the one member
  // whose own parent edge lies outside b.
  result.head.assign(result.num_blocks, kNoNode);
  std::vector<NodeId> head_count(n, 0);
  if (result.num_blocks != 0) {
    std::vector<NodeId> head_pre(result.num_blocks,
                                 std::numeric_limits<NodeId>::max());
    device::launch(ctx, n, [&](std::size_t w) {
      const NodeId b = result.vertex_block[w];
      if (b != kNoNode) device::atomic_min(&head_pre[b], pre[parent[w]]);
    });
    device::launch(ctx, result.num_blocks, [&](std::size_t b) {
      const NodeId h = node_at_pre[head_pre[b] - 1];
      result.head[b] = h;
      std::atomic_ref<NodeId>(head_count[h])
          .fetch_add(1, std::memory_order_relaxed);
    });
  }

  // --- Articulations: v belongs to >= 2 blocks. v's blocks are
  // {vertex_block[v]} ∪ {b : head[b] == v}, disjoint by construction (the
  // head's parent edge is outside its block).
  device::transform(ctx, n, result.is_articulation.data(),
                    [&](std::size_t v) -> std::uint8_t {
                      const NodeId own =
                          result.vertex_block[v] != kNoNode ? 1 : 0;
                      return own + head_count[v] >= 2 ? 1 : 0;
                    });
  result.num_articulations = device::reduce(
      ctx, n, std::size_t{0},
      [&](std::size_t v) -> std::size_t { return result.is_articulation[v]; },
      [](std::size_t a, std::size_t b) { return a + b; });
  return result;
}

bool resolve_bcc_eager() {
  return util::env_int_or("EMC_BCC_EAGER", 0, 0, 1) != 0;
}

std::size_t resolve_bcc_min_device_batch() {
  return static_cast<std::size_t>(util::env_int_or(
      "EMC_BCC_MIN_DEVICE_BATCH", 0, 0, std::int64_t{1} << 30));
}

}  // namespace emc::bcc
