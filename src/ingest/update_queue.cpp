#include "ingest/update_queue.hpp"

#include <algorithm>

namespace emc::ingest {

UpdateQueue::UpdateQueue(std::size_t bound, Admission admission)
    : ring_(std::max<std::size_t>(1, bound)), admission_(admission) {}

std::size_t UpdateQueue::push(const Update* updates, std::size_t count) {
  if (count == 0) return 0;
  const auto now = Clock::now();
  std::unique_lock<std::mutex> lk(mutex_);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < count; ++i) {
    stats_.submitted++;
    if (closed_) {
      stats_.cancelled++;
      continue;
    }
    if (size_ == ring_.size()) {
      switch (admission_) {
        case Admission::kBlock:
          // Wake the consumer first: it may be idling out a linger window
          // while we hold the only updates that would let it make room.
          not_empty_.notify_one();
          not_full_.wait(lk, [&] { return closed_ || size_ < ring_.size(); });
          if (closed_) {
            stats_.cancelled++;
            continue;
          }
          break;
        case Admission::kReject:
          stats_.rejected++;
          continue;
        case Admission::kShedOldest:
          // Evict the globally oldest update. The ring is one total order
          // (the write path has no per-client lanes), so serve's "oldest of
          // the fattest client" degenerates to plain oldest-first here.
          head_ = (head_ + 1) % ring_.size();
          --size_;
          stats_.shed++;
          break;
      }
    }
    ring_[(head_ + size_) % ring_.size()] = Queued{updates[i], now};
    ++size_;
    ++accepted;
    stats_.accepted++;
    stats_.max_depth = std::max(stats_.max_depth, size_);
  }
  stats_.depth = size_;
  lk.unlock();
  not_empty_.notify_one();
  return accepted;
}

std::size_t UpdateQueue::push(const std::vector<Update>& updates) {
  return push(updates.data(), updates.size());
}

std::size_t UpdateQueue::pop_wait(std::vector<Queued>& out, std::size_t max,
                                  Clock::time_point deadline) {
  std::unique_lock<std::mutex> lk(mutex_);
  const std::uint64_t kick_mark = kicks_;
  not_empty_.wait_until(lk, deadline, [&] {
    return size_ > 0 || closed_ || kicks_ != kick_mark;
  });
  const std::size_t take = std::min(max, size_);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(ring_[head_]));
    head_ = (head_ + 1) % ring_.size();
  }
  size_ -= take;
  stats_.depth = size_;
  lk.unlock();
  if (take > 0) not_full_.notify_all();
  return take;
}

void UpdateQueue::kick() {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    ++kicks_;
  }
  not_empty_.notify_all();
}

void UpdateQueue::close() {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool UpdateQueue::closed() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return closed_;
}

std::size_t UpdateQueue::depth() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return size_;
}

UpdateQueue::Stats UpdateQueue::stats() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  Stats s = stats_;
  s.depth = size_;
  return s;
}

}  // namespace emc::ingest
