// emc::ingest — bounded multi-producer ring buffer of edge updates.
//
// The front door of the write path: producer threads push() tagged updates
// (insert/erase an edge, optionally stamped with a source timestamp), a
// single consumer (the Batcher) drains them in arrival order. The buffer is
// a fixed-capacity ring — under a producer storm it holds `bound` updates
// and applies an explicit ADMISSION policy, the write-side mirror of the
// Dispatcher's bounded lanes:
//
//   kBlock      the producer waits for space (backpressure — nothing is
//               ever dropped; close() wakes and cancels blocked pushes)
//   kReject     the overflowing updates are refused on the spot; push()
//               returns how many were accepted, the producer decides
//   kShedOldest the OLDEST queued update is evicted to admit the new one
//               (freshest-wins: under overload the stream degrades to a
//               recent suffix instead of an ancient prefix)
//
// Every admission outcome is counted, and the ledger balances:
//   submitted == accepted + rejected + cancelled        (at push)
//   accepted  == popped + shed + still-queued           (at any instant)
// which is what lets the Ingestor's Stats prove "every accepted update is
// applied exactly once" (see test_ingest.cpp).
//
// Each slot also records its ENQUEUE TICK (steady clock at admission); the
// Batcher's linger window and the Ingestor's end-to-end latency EWMA are
// measured from it, so queueing delay is part of the reported latency, not
// hidden before it.
//
// Threading: push()/stats()/depth()/close() are safe from any thread;
// pop_wait() is single-consumer (the Ingestor's writer thread). kick()
// wakes a consumer blocked in pop_wait() without enqueueing anything — the
// flush/stop paths use it to get the loop's attention.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace emc::ingest {

enum class UpdateKind : std::uint8_t { kInsert = 0, kErase };

/// What a full ring does to an incoming push() (see the header comment).
enum class Admission : std::uint8_t {
  kBlock = 0,
  kReject,
  kShedOldest,
};

/// One tagged edge update. `producer` is a provenance tag (which stream the
/// update came from — carried through, not interpreted); `source_ts_us` is
/// an optional caller-domain timestamp (e.g. the event time of a replayed
/// arrival schedule) that rides along for the caller's own lag accounting.
struct Update {
  graph::Edge edge{};
  UpdateKind kind = UpdateKind::kInsert;
  std::uint32_t producer = 0;
  std::uint64_t source_ts_us = 0;
};

class UpdateQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// An admitted update plus its enqueue tick.
  struct Queued {
    Update update;
    Clock::time_point enqueued;
  };

  /// One coherent snapshot (all counters read under the queue mutex).
  struct Stats {
    std::size_t submitted = 0;  // push()ed updates, any outcome
    std::size_t accepted = 0;   // admitted into the ring
    std::size_t rejected = 0;   // kReject refusals
    std::size_t shed = 0;       // kShedOldest evictions (were accepted)
    std::size_t cancelled = 0;  // pushed after close()
    std::size_t depth = 0;      // currently queued
    std::size_t max_depth = 0;  // deepest the ring has been
  };

  /// `bound` is clamped to >= 1; the ring never reallocates after this.
  UpdateQueue(std::size_t bound, Admission admission);

  UpdateQueue(const UpdateQueue&) = delete;
  UpdateQueue& operator=(const UpdateQueue&) = delete;

  /// Admits `count` updates in order under the ring's admission policy.
  /// Returns how many were ACCEPTED (== count except under kReject, or when
  /// close() raced a kBlock wait). One enqueue tick is taken per call.
  std::size_t push(const Update* updates, std::size_t count);
  std::size_t push(const std::vector<Update>& updates);

  /// Single-consumer pop: appends up to `max` queued updates to `out`,
  /// oldest first, blocking until at least one is available, the queue is
  /// closed, a kick() arrives, or `deadline` passes. Returns the number
  /// popped (0 on timeout/kick/closed-and-empty).
  std::size_t pop_wait(std::vector<Queued>& out, std::size_t max,
                       Clock::time_point deadline);

  /// Wakes a pop_wait()ing consumer without enqueueing (it returns 0 and
  /// re-evaluates its control flags).
  void kick();

  /// Ends admission: subsequent pushes are cancelled, blocked pushes wake
  /// cancelled, and a draining consumer sees closed()+empty as the end of
  /// stream. Idempotent.
  void close();
  bool closed() const;

  std::size_t depth() const;
  std::size_t bound() const { return ring_.size(); }
  Admission admission() const { return admission_; }
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;   // producers blocked by kBlock
  std::condition_variable not_empty_;  // the consumer
  std::vector<Queued> ring_;           // fixed capacity == bound
  std::size_t head_ = 0;               // index of the oldest queued slot
  std::size_t size_ = 0;
  std::uint64_t kicks_ = 0;
  bool closed_ = false;
  Admission admission_;
  Stats stats_;
};

}  // namespace emc::ingest
