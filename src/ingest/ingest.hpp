// emc::ingest — the streaming write path: ring buffer -> adaptive batcher
// -> one writer thread applying batches and publishing epochs.
//
// The read side of the serving stack (engine::View, serve::Dispatcher)
// assumes SOMEONE drives the graph: applies update batches and publishes
// fresh epochs. Until now that someone was a hand-rolled loop. This module
// is the production shape of that loop:
//
//   producers ──push()──> UpdateQueue ──drain──> Batcher ──Batch──> Ingestor
//   (any threads)         (bounded ring,         (canonicalize,     (writer
//                          admission policy)      dual threshold,    thread:
//                          kind segregation)      apply + publish)
//
// BATCHER. The graph layer is batch-dynamic: one update batch costs a small
// constant number of kernel launches regardless of batch size, so per-update
// application is launch-bound exactly like per-request queries were before
// the Dispatcher's coalescing — the batcher is the write-side coalescer.
// It cuts a batch when EITHER threshold trips: `max_batch` updates are
// waiting (amortization has saturated), or the oldest waiting update has
// lingered `linger` (latency floor). The linger window ADAPTS to queue
// depth with the same clamp as the Dispatcher's coalescing window
// (scale = clamp(2*depth/max_batch, 0.25, 4.0)), applied as a divisor:
// under backlog the ring itself supplies the batch, so the window shrinks
// toward linger/4 and the pipeline stays apply-bound; when the stream
// trickles it stretches toward 4*linger to buy wider batches. Batches are
// KIND-HOMOGENEOUS: a batch holds only inserts or only erases, cut at every
// kind switch so commit order is preserved — and so insert-only stretches
// of the stream reach the graph as insert-only deltas, the shape the
// ConnectivityOracle's incremental refresh (and the DynamicGraph's snapshot
// append path) fast-path. Edges are canonicalized host-side (u < v, sorted,
// within-batch duplicates collapsed) before they touch the device.
//
// INGESTOR. One dedicated writer thread owns the DynamicGraph + Session for
// its lifetime (the engine's one-writer contract): it applies each batch,
// then publishes at a configurable PACING — every batch, every N batches
// (`publish_every`), and/or no sooner than `publish_min_interval` since the
// last publish. Pacing decouples apply throughput from publish cost: at 1M
// nodes an epoch publish rebuilds non-oracle artifacts (~1s today) while a
// batch applies in ~ms, so publishing every batch would cap ingest at ~1
// batch/s. The gap between "applied" and "published" is the ingest LAG
// (accepted-but-unpublished updates), reported in Stats and — when the
// Ingestor is attached to a serve::Dispatcher — reflected in every Reply's
// `staleness` field, so paced publishing is visible to readers as bounded
// staleness, not silently hidden. Publishing goes through a pluggable hook:
// the default refreshes the Session; Dispatcher::attach_ingestor() rewires
// it to the dispatcher's retry/backoff/bounded-staleness publish path, so
// ingest inherits PR 6's degradation behavior (a failing publish leaves the
// previous epoch serving and is retried at the next pacing trigger).
//
// Stats ledger (the invariants test_ingest pins):
//   submitted == accepted + rejected + cancelled
//   accepted  == applied + shed + in-flight        (== applied + shed once
//                                                     flush()/stop() drain)
//   lag       == accepted - shed - published       (0 after flush()/stop())
//
// Threading: submit()/insert()/erase() are safe from any producer thread;
// stats()/lag()/graph_epoch() from any thread. The graph and session passed
// to the constructor belong to the writer thread until stop() returns —
// callers must not mutate the graph or drive the session concurrently
// (publishing through an attached Dispatcher is fine: the hook runs on the
// writer thread). An Ingestor attached to a Dispatcher must be stop()ped
// before the Dispatcher is destroyed, and destroyed after it (declare the
// Ingestor first).
//
// Env knobs (strict util/env.hpp parsing — a typo degrades to the default,
// never to a surprise configuration):
//   EMC_INGEST_QUEUE_BOUND    ring capacity         [1, 2^30]   (def 65536)
//   EMC_INGEST_MAX_BATCH      batch size threshold  [1, 2^30]   (def 2048)
//   EMC_INGEST_LINGER_US      linger threshold      [0, 1e9]    (def 200)
//   EMC_INGEST_PUBLISH_EVERY  publish pacing        [1, 1e9]    (def 1)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "ingest/update_queue.hpp"

namespace emc::ingest {

/// The resolved ring capacity: `from_options` when nonzero, else a strict
/// EMC_INGEST_QUEUE_BOUND parse (complete, in [1, 2^30]), else 65536.
/// Exposed for the env-hardening tests (test_flags.cpp).
std::size_t resolve_queue_bound(std::size_t from_options);

/// The resolved batch-size threshold: `from_options` when nonzero, else a
/// strict EMC_INGEST_MAX_BATCH parse (complete, in [1, 2^30]), else 2048.
std::size_t resolve_max_batch(std::size_t from_options);

/// The resolved linger threshold: `from_options` when non-negative, else a
/// strict EMC_INGEST_LINGER_US parse (complete, in [0, 1e9] microseconds —
/// 0 is valid and means opportunistic batching, no added wait), else 200us.
std::chrono::microseconds resolve_linger(std::chrono::microseconds from_options);

/// The resolved publish pacing: `from_options` when nonzero, else a strict
/// EMC_INGEST_PUBLISH_EVERY parse (complete, in [1, 1e9]), else 1
/// (publish every batch).
std::size_t resolve_publish_every(std::size_t from_options);

/// One kind-homogeneous, canonicalized update batch cut by the Batcher.
struct Batch {
  UpdateKind kind = UpdateKind::kInsert;
  /// Canonical u < v, sorted by edge key, within-batch duplicates dropped.
  std::vector<graph::Edge> edges;
  /// Queued updates this batch consumed (>= edges.size(): duplicates and
  /// the canonicalization collapse count toward the applied ledger).
  std::size_t raw_updates = 0;
  /// Earliest enqueue tick among them — the latency measurement anchor.
  UpdateQueue::Clock::time_point oldest{};
};

struct BatcherOptions {
  std::size_t max_batch = 0;              // 0 = resolve_max_batch
  std::chrono::microseconds linger{-1};   // < 0 = resolve_linger
  bool adaptive_linger = true;            // depth-scaled window (see above)
};

/// Drains an UpdateQueue into Batches (single consumer — the Ingestor's
/// writer thread, or a test driving it directly).
class Batcher {
 public:
  using Clock = UpdateQueue::Clock;

  enum class Poll : std::uint8_t {
    kBatch,    // `out` holds a batch
    kTimeout,  // `deadline` passed (or a kick()) before a batch was due
    kClosed,   // queue closed and fully drained, including carried updates
  };

  Batcher(UpdateQueue& queue, const BatcherOptions& options);

  /// Blocks until a batch is due (either threshold, a kind switch, or end
  /// of stream), the caller's `deadline` passes, or the queue is kicked.
  /// `force` cuts whatever is pending immediately, ignoring the linger
  /// (the flush/stop path). Consumer thread only.
  Poll next(Batch& out, Clock::time_point deadline, bool force = false);

  /// Updates drained from the queue but not yet cut into a batch.
  std::size_t carried() const { return pending_.size(); }

  /// The depth-adapted linger window (exposed so tests can pin the shape).
  std::chrono::microseconds effective_linger(std::size_t depth) const;

  const BatcherOptions& options() const { return options_; }

 private:
  /// Length of the same-kind prefix of pending_.
  std::size_t prefix_run() const;
  /// Cuts the first `take` pending updates into `out` (canonicalized).
  void cut(Batch& out, std::size_t take);

  UpdateQueue& queue_;
  BatcherOptions options_;
  std::deque<UpdateQueue::Queued> pending_;  // consumer-thread only
  std::vector<UpdateQueue::Queued> scratch_;
};

struct IngestorOptions {
  // --- admission (the ring) ---
  std::size_t queue_bound = 0;  // 0 = resolve_queue_bound
  Admission admission = Admission::kBlock;

  // --- batching ---
  std::size_t max_batch = 0;             // 0 = resolve_max_batch
  std::chrono::microseconds linger{-1};  // < 0 = resolve_linger
  bool adaptive_linger = true;

  // --- publish pacing (both gates must pass; see the header comment) ---
  /// Publish after this many applied batches. 0 = resolve_publish_every
  /// (default 1 = every batch); SIZE_MAX = batch count never triggers
  /// (publish on min-interval/flush/stop only).
  std::size_t publish_every = 0;
  /// Publish no sooner than this after the previous publish. 0 = no
  /// minimum interval.
  std::chrono::microseconds publish_min_interval{0};
  /// A backlog of applied-but-unpublished batches never waits longer than
  /// this past the last apply before a publish is forced (so a stream that
  /// goes quiet mid-pacing-cycle still surfaces its updates). 0 = derive
  /// from the linger (max(4*linger, 1ms)).
  std::chrono::microseconds idle_publish{0};

  // --- lifecycle / test hooks ---
  /// Construct with the writer thread parked until resume() — lets tests
  /// and benches stage the queue deterministically first.
  bool start_paused = false;
  /// Called on the writer thread after each batch applies: the batch, the
  /// graph epoch it produced, and how many edges actually changed. The
  /// differential fuzz records the commit order through this.
  std::function<void(const Batch&, std::uint64_t epoch_after,
                     std::size_t effective)>
      on_apply;
};

/// One coherent snapshot of the pipeline (admission counters and apply
/// counters each read under their own lock; exact cross-lock identities
/// hold once the pipeline is quiesced by flush()/stop()).
struct IngestorStats {
  // Admission side (the ring's ledger).
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t cancelled = 0;
  std::size_t queue_depth = 0;
  std::size_t max_queue_depth = 0;

  // Apply side.
  std::size_t applied = 0;            // accepted updates consumed by batches
  std::size_t applied_effective = 0;  // edges that actually changed the graph
  std::size_t batches = 0;
  std::size_t insert_batches = 0;
  std::size_t erase_batches = 0;
  std::size_t max_batch = 0;  // largest batch, in raw updates

  // Publish side.
  std::size_t publishes = 0;
  std::size_t publish_failures = 0;  // hook returned false or threw
  std::uint64_t graph_epoch = 0;     // epoch after the last applied batch
  std::uint64_t published_epoch = 0;
  /// Accepted-but-unpublished updates (accepted - shed - published).
  std::size_t lag = 0;
  /// EWMA of enqueue -> successful-publish latency, microseconds (the
  /// end-to-end "how stale is what readers see" number).
  double latency_ewma_us = 0.0;
};

class Ingestor {
 public:
  using Clock = UpdateQueue::Clock;
  /// The publish hook: bring the session (and any downstream consumer) to
  /// the graph's current epoch; return false on a failed-but-handled
  /// publish (the Ingestor counts it and retries at the next trigger).
  using PublishFn = std::function<bool(engine::Session&)>;

  /// Starts the writer thread. `graph` must be the dynamic graph `session`
  /// was opened on; both are owned by the writer thread until stop().
  Ingestor(engine::Engine& engine, dynamic::DynamicGraph& graph,
           engine::Session& session, const IngestorOptions& options = {});
  ~Ingestor();

  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  /// Producer entry points; safe from any thread. Return the number of
  /// updates ACCEPTED by the ring (== count unless kReject refused some or
  /// stop() raced).
  std::size_t submit(const Update* updates, std::size_t count);
  std::size_t submit(const std::vector<Update>& updates);
  std::size_t insert(const std::vector<graph::Edge>& edges,
                     std::uint32_t producer = 0);
  std::size_t erase(const std::vector<graph::Edge>& edges,
                    std::uint32_t producer = 0);

  /// Replaces the publish hook (serve::Dispatcher::attach_ingestor uses
  /// this to route publishes through its retry/degradation path). Set
  /// before traffic flows; the hook runs on the writer thread.
  void set_publisher(PublishFn publish);

  /// Releases a start_paused writer thread.
  void resume();

  /// Waits until every update accepted so far is applied or shed (cuts any
  /// lingering partial batch immediately). Does NOT force a publish — lag
  /// may be nonzero after; pacing still applies.
  void drain();

  /// drain(), then publishes any unpublished epochs and waits for that
  /// publish to land (or fail — flush returns with lag == 0 on success).
  void flush();

  /// Closes the ring (subsequent submits are cancelled), drains and applies
  /// everything still queued, publishes the final epoch, and joins the
  /// writer thread. Idempotent; the destructor calls it.
  void stop();

  IngestorStats stats() const;
  /// Accepted-but-unpublished updates right now (the headline lag gauge).
  std::size_t lag() const;
  /// Epoch after the last applied batch (atomic — safe for hot paths like
  /// the Dispatcher's per-reply staleness stamp).
  std::uint64_t graph_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t published_epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  const UpdateQueue& queue() const { return queue_; }

 private:
  void run();  // the writer thread
  void apply(const Batch& batch);
  /// Publishes if a trigger fires (`force` = flush/stop/end-of-stream).
  void maybe_publish(bool force);
  /// When the next time-based trigger (pacing interval or idle flush) is
  /// due, given the current backlog; far future when there is none.
  Clock::time_point next_deadline() const;
  /// Ring empty and ledger closed (accepted - shed == applied): nothing is
  /// queued, carried by the batcher, or mid-apply. Requires state_.
  bool quiesced_locked() const;

  engine::Engine& engine_;
  dynamic::DynamicGraph& graph_;
  engine::Session& session_;
  IngestorOptions options_;
  UpdateQueue queue_;
  Batcher batcher_;

  mutable std::mutex state_;          // apply/publish counters + control
  std::condition_variable state_cv_;  // drain()/flush() waiters
  PublishFn publish_;
  bool paused_ = false;
  bool cut_now_ = false;      // drain()/flush(): cut pending immediately
  bool publish_now_ = false;  // flush(): publish regardless of pacing
  bool done_ = false;         // the writer thread has exited its loop
  std::size_t applied_ = 0;
  std::size_t applied_effective_ = 0;
  std::size_t batches_ = 0;
  std::size_t insert_batches_ = 0;
  std::size_t erase_batches_ = 0;
  std::size_t max_batch_seen_ = 0;
  std::size_t publishes_ = 0;
  std::size_t publish_failures_ = 0;
  std::size_t published_applied_ = 0;  // applied_ at the last good publish
  std::size_t batches_since_publish_ = 0;
  /// The most recent publish attempt failed: next_deadline floors the
  /// retry at kPublishRetryFloor so zero-min-interval pacing stays
  /// immediate for healthy publishes without hot-spinning a failing hook.
  bool last_publish_failed_ = false;
  static constexpr std::chrono::milliseconds kPublishRetryFloor{1};
  Clock::time_point last_publish_ = Clock::now();
  Clock::time_point last_apply_ = Clock::now();
  /// Earliest enqueue tick among applied-but-unpublished batches.
  Clock::time_point oldest_unpublished_ = Clock::time_point::max();
  double latency_ewma_us_ = 0.0;
  std::atomic<std::uint64_t> applied_epoch_{0};
  std::atomic<std::uint64_t> published_epoch_{0};

  std::thread thread_;
};

}  // namespace emc::ingest
