#include "ingest/ingest.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/graph.hpp"
#include "util/env.hpp"

namespace emc::ingest {

std::size_t resolve_queue_bound(std::size_t from_options) {
  if (from_options > 0) return from_options;
  return static_cast<std::size_t>(util::env_int_or(
      "EMC_INGEST_QUEUE_BOUND", 65536, 1, std::int64_t{1} << 30));
}

std::size_t resolve_max_batch(std::size_t from_options) {
  if (from_options > 0) return from_options;
  return static_cast<std::size_t>(util::env_int_or(
      "EMC_INGEST_MAX_BATCH", 2048, 1, std::int64_t{1} << 30));
}

std::chrono::microseconds resolve_linger(
    std::chrono::microseconds from_options) {
  if (from_options.count() >= 0) return from_options;
  return std::chrono::microseconds(util::env_int_or(
      "EMC_INGEST_LINGER_US", 200, 0, std::int64_t{1'000'000'000}));
}

std::size_t resolve_publish_every(std::size_t from_options) {
  if (from_options > 0) return from_options;
  return static_cast<std::size_t>(util::env_int_or(
      "EMC_INGEST_PUBLISH_EVERY", 1, 1, std::int64_t{1'000'000'000}));
}

// ---------------------------------------------------------------- batcher

Batcher::Batcher(UpdateQueue& queue, const BatcherOptions& options)
    : queue_(queue), options_(options) {
  options_.max_batch = resolve_max_batch(options_.max_batch);
  options_.linger = resolve_linger(options_.linger);
}

std::chrono::microseconds Batcher::effective_linger(std::size_t depth) const {
  if (!options_.adaptive_linger || options_.linger.count() <= 0) {
    return options_.linger;
  }
  // The Dispatcher's depth scale (clamp(2*depth/cap, 0.25, 4.0)) as a
  // DIVISOR: a deep ring supplies batches by itself, so the window
  // collapses toward linger/4 and the pipeline stays apply-bound; a
  // trickle stretches it toward 4*linger to buy wider batches per launch.
  const double scale =
      std::clamp(2.0 * static_cast<double>(depth) /
                     static_cast<double>(options_.max_batch),
                 0.25, 4.0);
  return std::chrono::microseconds(std::llround(
      static_cast<double>(options_.linger.count()) / scale));
}

std::size_t Batcher::prefix_run() const {
  std::size_t run = 0;
  const UpdateKind kind =
      pending_.empty() ? UpdateKind::kInsert : pending_.front().update.kind;
  for (const UpdateQueue::Queued& q : pending_) {
    if (q.update.kind != kind) break;
    ++run;
  }
  return run;
}

void Batcher::cut(Batch& out, std::size_t take) {
  out.kind = pending_.front().update.kind;
  out.raw_updates = take;
  out.oldest = pending_.front().enqueued;
  out.edges.clear();
  out.edges.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    const UpdateQueue::Queued& q = pending_.front();
    out.oldest = std::min(out.oldest, q.enqueued);
    graph::Edge e = q.update.edge;
    if (e.u > e.v) std::swap(e.u, e.v);
    out.edges.push_back(e);
    pending_.pop_front();
  }
  // Canonical batch: sorted by edge key, duplicates collapsed (the graph
  // layer re-normalizes on the device anyway; doing it here keeps repeated
  // hot edges from inflating device batches and gives on_apply consumers a
  // canonical commit record).
  std::sort(out.edges.begin(), out.edges.end(),
            [](const graph::Edge& a, const graph::Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end(),
                              [](const graph::Edge& a, const graph::Edge& b) {
                                return a.u == b.u && a.v == b.v;
                              }),
                  out.edges.end());
}

Batcher::Poll Batcher::next(Batch& out, Clock::time_point deadline,
                            bool force) {
  const std::size_t room = 2 * options_.max_batch;
  for (;;) {
    // Opportunistic top-up with whatever is already queued.
    if (pending_.size() < room) {
      scratch_.clear();
      queue_.pop_wait(scratch_, room - pending_.size(),
                      Clock::time_point::min());
      for (UpdateQueue::Queued& q : scratch_) pending_.push_back(std::move(q));
    }
    const std::size_t run = prefix_run();
    // Size threshold: amortization has saturated.
    if (run >= options_.max_batch) {
      cut(out, options_.max_batch);
      return Poll::kBatch;
    }
    // Kind switch inside pending_: the prefix run cannot grow any further
    // (commit order forbids merging across the switch) — cut it now.
    if (run > 0 && run < pending_.size()) {
      cut(out, run);
      return Poll::kBatch;
    }
    const bool end = queue_.closed() && queue_.depth() == 0;
    if (run > 0 && (force || end)) {
      cut(out, run);
      return Poll::kBatch;
    }
    if (end) return Poll::kClosed;
    const auto now = Clock::now();
    if (run > 0) {
      // Linger threshold, measured from the oldest waiting update's
      // ENQUEUE tick — time spent in the ring counts against the window.
      const auto flush_at =
          pending_.front().enqueued +
          effective_linger(queue_.depth() + pending_.size());
      if (now >= flush_at) {
        cut(out, run);
        return Poll::kBatch;
      }
      if (now >= deadline) return Poll::kTimeout;
      scratch_.clear();
      const std::size_t got = queue_.pop_wait(
          scratch_, room - pending_.size(), std::min(deadline, flush_at));
      for (UpdateQueue::Queued& q : scratch_) pending_.push_back(std::move(q));
      if (got == 0 && Clock::now() < flush_at && Clock::now() < deadline) {
        return Poll::kTimeout;  // a kick(): let the caller re-read its flags
      }
      continue;
    }
    // Nothing pending: sleep for arrivals until the caller's deadline.
    if (now >= deadline) return Poll::kTimeout;
    scratch_.clear();
    const std::size_t got = queue_.pop_wait(scratch_, room, deadline);
    if (got == 0) {
      if (queue_.closed() && queue_.depth() == 0) return Poll::kClosed;
      return Poll::kTimeout;  // deadline or kick
    }
    for (UpdateQueue::Queued& q : scratch_) pending_.push_back(std::move(q));
  }
}

// --------------------------------------------------------------- ingestor

Ingestor::Ingestor(engine::Engine& engine, dynamic::DynamicGraph& graph,
                   engine::Session& session, const IngestorOptions& options)
    : engine_(engine),
      graph_(graph),
      session_(session),
      options_(options),
      queue_(resolve_queue_bound(options.queue_bound), options.admission),
      batcher_(queue_, BatcherOptions{options.max_batch, options.linger,
                                      options.adaptive_linger}),
      paused_(options.start_paused) {
  options_.publish_every = resolve_publish_every(options_.publish_every);
  if (options_.idle_publish.count() <= 0) {
    options_.idle_publish =
        std::max(4 * batcher_.options().linger, std::chrono::microseconds(
                                                    std::chrono::milliseconds(1)));
  }
  publish_ = [](engine::Session& s) {
    s.refresh();
    return true;
  };
  applied_epoch_.store(graph_.epoch(), std::memory_order_release);
  published_epoch_.store(graph_.epoch(), std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

Ingestor::~Ingestor() { stop(); }

std::size_t Ingestor::submit(const Update* updates, std::size_t count) {
  return queue_.push(updates, count);
}

std::size_t Ingestor::submit(const std::vector<Update>& updates) {
  return queue_.push(updates);
}

std::size_t Ingestor::insert(const std::vector<graph::Edge>& edges,
                             std::uint32_t producer) {
  std::vector<Update> updates(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    updates[i] = Update{edges[i], UpdateKind::kInsert, producer, 0};
  }
  return queue_.push(updates);
}

std::size_t Ingestor::erase(const std::vector<graph::Edge>& edges,
                            std::uint32_t producer) {
  std::vector<Update> updates(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    updates[i] = Update{edges[i], UpdateKind::kErase, producer, 0};
  }
  return queue_.push(updates);
}

void Ingestor::set_publisher(PublishFn publish) {
  const std::lock_guard<std::mutex> lk(state_);
  publish_ = std::move(publish);
}

void Ingestor::resume() {
  {
    const std::lock_guard<std::mutex> lk(state_);
    paused_ = false;
  }
  state_cv_.notify_all();
}

// Quiesced = the ring is empty AND the ledger closes: accepted - shed ==
// applied. The ledger form is exact where a "carried by the batcher" mirror
// would not be — the writer can be mid-pop with updates drained from the
// ring but not yet cut, and only the ledger still counts those.
bool Ingestor::quiesced_locked() const {
  const UpdateQueue::Stats q = queue_.stats();
  return q.depth == 0 && q.accepted - q.shed == applied_;
}

void Ingestor::drain() {
  std::unique_lock<std::mutex> lk(state_);
  cut_now_ = true;
  lk.unlock();
  queue_.kick();
  lk.lock();
  state_cv_.wait(lk, [&] { return done_ || quiesced_locked(); });
  cut_now_ = false;
}

void Ingestor::flush() {
  std::unique_lock<std::mutex> lk(state_);
  cut_now_ = true;
  publish_now_ = true;
  lk.unlock();
  queue_.kick();
  lk.lock();
  // The writer clears publish_now_ after its forced attempt (success or
  // counted failure) once everything queued has applied.
  state_cv_.wait(lk, [&] { return done_ || !publish_now_; });
  cut_now_ = false;
}

void Ingestor::stop() {
  {
    const std::lock_guard<std::mutex> lk(state_);
    paused_ = false;
  }
  state_cv_.notify_all();
  queue_.close();  // wakes the writer and any kBlock producers
  if (thread_.joinable()) thread_.join();
}

std::size_t Ingestor::lag() const {
  const std::lock_guard<std::mutex> lk(state_);
  const UpdateQueue::Stats q = queue_.stats();
  // Saturating: the ring's ledger and published_applied_ live under
  // different locks, so a reader can observe published_applied_ from a
  // publish whose accepted-side increments it hasn't seen yet. The true
  // lag is never negative; a wrapped ~2^64 here would poison every
  // downstream staleness gauge (Dispatcher ingest_lag, degradation).
  return saturating_sub(saturating_sub(q.accepted, q.shed),
                        published_applied_);
}

IngestorStats Ingestor::stats() const {
  const std::lock_guard<std::mutex> lk(state_);
  const UpdateQueue::Stats q = queue_.stats();
  IngestorStats s;
  s.submitted = q.submitted;
  s.accepted = q.accepted;
  s.rejected = q.rejected;
  s.shed = q.shed;
  s.cancelled = q.cancelled;
  s.queue_depth = q.depth;
  s.max_queue_depth = q.max_depth;
  s.applied = applied_;
  s.applied_effective = applied_effective_;
  s.batches = batches_;
  s.insert_batches = insert_batches_;
  s.erase_batches = erase_batches_;
  s.max_batch = max_batch_seen_;
  s.publishes = publishes_;
  s.publish_failures = publish_failures_;
  s.graph_epoch = applied_epoch_.load(std::memory_order_acquire);
  s.published_epoch = published_epoch_.load(std::memory_order_acquire);
  s.lag = saturating_sub(saturating_sub(q.accepted, q.shed),
                         published_applied_);  // see lag()
  s.latency_ewma_us = latency_ewma_us_;
  return s;
}

void Ingestor::apply(const Batch& batch) {
  std::size_t effective = 0;
  if (batch.kind == UpdateKind::kInsert) {
    effective = graph_.insert_edges(engine_.device(), batch.edges);
  } else {
    effective = graph_.erase_edges(engine_.device(), batch.edges);
  }
  if (options_.on_apply) options_.on_apply(batch, graph_.epoch(), effective);
  {
    const std::lock_guard<std::mutex> lk(state_);
    applied_ += batch.raw_updates;
    applied_effective_ += effective;
    ++batches_;
    ++(batch.kind == UpdateKind::kInsert ? insert_batches_ : erase_batches_);
    max_batch_seen_ = std::max(max_batch_seen_, batch.raw_updates);
    ++batches_since_publish_;
    applied_epoch_.store(graph_.epoch(), std::memory_order_release);
    last_apply_ = Clock::now();
    oldest_unpublished_ = std::min(oldest_unpublished_, batch.oldest);
  }
  state_cv_.notify_all();
}

Ingestor::Clock::time_point Ingestor::next_deadline() const {
  const std::lock_guard<std::mutex> lk(state_);
  const auto now = Clock::now();
  if (cut_now_ || publish_now_) return now;
  const bool backlog = published_applied_ != applied_;
  if (!backlog) return now + std::chrono::hours(1);
  // A backlog's next time-based trigger: the pacing interval or the idle
  // flush, whichever lands first.
  auto due = last_apply_ + options_.idle_publish;
  if (batches_since_publish_ >= options_.publish_every) {
    // The count gate is already met, so the min-interval is the only time
    // gate left: wake the moment it opens — immediately when none is
    // configured. (Skipping this for a zero min-interval used to park the
    // writer until idle_publish with a publishable backlog in hand, e.g.
    // after a failed publish left batches_since_publish_ at the gate.)
    // After a FAILURE the retry is floored at kPublishRetryFloor so a
    // persistently failing hook retries at ~ms cadence instead of
    // hot-spinning the writer through publish attempts.
    auto interval = options_.publish_min_interval;
    if (last_publish_failed_ && interval < kPublishRetryFloor) {
      interval = std::chrono::microseconds(kPublishRetryFloor);
    }
    due = std::min(due, last_publish_ + interval);
  }
  return due;
}

void Ingestor::maybe_publish(bool force) {
  bool attempt = false;
  bool flushing = false;
  PublishFn publish;
  {
    const std::lock_guard<std::mutex> lk(state_);
    flushing = publish_now_ && quiesced_locked();
    const bool backlog = published_applied_ != applied_;
    if (backlog) {
      const auto now = Clock::now();
      const bool count_gate = batches_since_publish_ >= options_.publish_every;
      const bool time_gate =
          now - last_publish_ >= options_.publish_min_interval;
      const bool idle_gate = now - last_apply_ >= options_.idle_publish;
      attempt = force || flushing || (count_gate && time_gate) || idle_gate;
    }
    publish = publish_;
  }
  if (attempt) {
    bool ok = false;
    try {
      ok = publish(session_);
    } catch (...) {
      // A throwing publish hook is a FAILED publish, not a dead pipeline:
      // the previous epoch keeps serving (bounded staleness) and the next
      // pacing trigger retries. Same contract as Dispatcher::publish.
      ok = false;
    }
    const std::lock_guard<std::mutex> lk(state_);
    if (ok) {
      last_publish_failed_ = false;
      ++publishes_;
      published_epoch_.store(applied_epoch_.load(std::memory_order_acquire),
                             std::memory_order_release);
      published_applied_ = applied_;
      batches_since_publish_ = 0;
      last_publish_ = Clock::now();
      if (oldest_unpublished_ != Clock::time_point::max()) {
        const double us = static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                last_publish_ - oldest_unpublished_)
                .count());
        latency_ewma_us_ = latency_ewma_us_ <= 0.0
                               ? us
                               : 0.8 * latency_ewma_us_ + 0.2 * us;
        oldest_unpublished_ = Clock::time_point::max();
      }
    } else {
      ++publish_failures_;
      last_publish_failed_ = true;
      // Re-arm the time triggers from the FAILED attempt, so a persistently
      // failing publish retries at the pacing cadence (floored at
      // kPublishRetryFloor by next_deadline) instead of spinning the
      // writer thread through the timeout path.
      last_publish_ = Clock::now();
      last_apply_ = last_publish_;
    }
  }
  {
    const std::lock_guard<std::mutex> lk(state_);
    // flush() returns after one forced attempt, landed or counted failed.
    if (flushing) publish_now_ = false;
  }
  state_cv_.notify_all();
}

void Ingestor::run() {
  {
    std::unique_lock<std::mutex> lk(state_);
    state_cv_.wait(lk, [&] { return !paused_; });
  }
  Batch batch;
  for (;;) {
    bool force_cut;
    {
      const std::lock_guard<std::mutex> lk(state_);
      force_cut = cut_now_ || publish_now_;
    }
    const Batcher::Poll poll = batcher_.next(batch, next_deadline(), force_cut);
    if (poll == Batcher::Poll::kBatch) {
      apply(batch);
      maybe_publish(/*force=*/false);
      continue;
    }
    if (poll == Batcher::Poll::kClosed) {
      // End of stream: everything accepted has applied; the final epoch
      // must land (stop()'s contract), pacing notwithstanding.
      maybe_publish(/*force=*/true);
      {
        const std::lock_guard<std::mutex> lk(state_);
        done_ = true;
      }
      state_cv_.notify_all();
      return;
    }
    // kTimeout (or a kick): re-evaluate the time-based publish triggers
    // and any drain()/flush() request.
    maybe_publish(/*force=*/false);
  }
}

}  // namespace emc::ingest
