#include "dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "device/primitives.hpp"
#include "device/sort.hpp"
#include "util/failpoint.hpp"

namespace emc::dynamic {

namespace {

/// Directed key: source in the high word, so sorting groups half-edges by
/// the segment they land in. (The undirected dedup key is the shared
/// graph::edge_key.)
std::uint64_t pack_directed(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

/// Sentinel for invalid batch entries; sorts past every real key.
constexpr std::uint64_t kInvalidKey = ~std::uint64_t{0};

/// Slack policy: a quarter of the occupancy, at least 4 slots, so repeated
/// small batches amortize to O(1) moves per inserted edge.
EdgeId capacity_for(EdgeId need) {
  return need + std::max<EdgeId>(4, need / 4);
}

/// Process-wide id source; ids start at 1 so 0 means "no graph yet" to
/// consumers like ConnectivityOracle.
std::atomic<std::uint64_t> uid_counter{0};

/// Half-open bounds of run r in a directed key array of `total` entries.
std::pair<std::size_t, std::size_t> run_bounds(
    const std::vector<EdgeId>& run_start, std::size_t runs, std::size_t total,
    std::size_t r) {
  const auto begin = static_cast<std::size_t>(run_start[r]);
  const std::size_t end =
      r + 1 < runs ? static_cast<std::size_t>(run_start[r + 1]) : total;
  return {begin, end};
}

/// Expands canonical undirected keys into both directed half-edge keys,
/// sorted by source node; fills run_start with each distinct source's first
/// index and returns the run count. Shared by the insert and erase paths —
/// consecutive runs are exactly the per-segment work lists.
std::size_t expand_directed_runs(const device::Context& ctx,
                                 const std::vector<std::uint64_t>& undirected,
                                 std::vector<std::uint64_t>& dir,
                                 std::vector<EdgeId>& run_start) {
  const std::size_t c = undirected.size();
  dir.resize(2 * c);
  device::launch(ctx, c, [&](std::size_t i) {
    const auto lo = static_cast<NodeId>(undirected[i] >> 32);
    const auto hi = static_cast<NodeId>(undirected[i] & 0xffffffffULL);
    dir[2 * i] = pack_directed(lo, hi);
    dir[2 * i + 1] = pack_directed(hi, lo);
  });
  device::sort_keys(ctx, dir.data(), 2 * c);
  run_start.resize(2 * c);
  return device::copy_if_index(
      ctx, 2 * c,
      [&](std::size_t i) {
        return i == 0 || (dir[i] >> 32) != (dir[i - 1] >> 32);
      },
      run_start.data());
}

}  // namespace

DynamicGraph::DynamicGraph(NodeId num_nodes)
    : num_nodes_(num_nodes),
      uid_(uid_counter.fetch_add(1, std::memory_order_relaxed) + 1),
      seg_begin_(static_cast<std::size_t>(num_nodes) + 1, 0),
      seg_count_(static_cast<std::size_t>(num_nodes), 0) {}

DynamicGraph::DynamicGraph(const device::Context& ctx,
                           const graph::EdgeList& initial)
    : DynamicGraph(initial.num_nodes) {
  const auto lock = ctx.exclusive();  // see insert_edges
  const graph::EdgeList canon = graph::canonicalize(ctx, initial);
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  const std::size_t m = canon.edges.size();

  std::vector<EdgeId> degree(n, 0);
  device::launch(ctx, m, [&](std::size_t e) {
    std::atomic_ref<EdgeId>(degree[canon.edges[e].u])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<EdgeId>(degree[canon.edges[e].v])
        .fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<EdgeId> cap(n);
  device::transform(ctx, n, cap.data(),
                    [&](std::size_t v) { return capacity_for(degree[v]); });
  seg_begin_[n] = device::exclusive_scan(ctx, cap.data(), n, seg_begin_.data());
  adj_.resize(static_cast<std::size_t>(seg_begin_[n]));

  std::vector<EdgeId> cursor(seg_begin_.begin(), seg_begin_.end() - 1);
  device::launch(ctx, m, [&](std::size_t e) {
    const graph::Edge edge = canon.edges[e];
    const EdgeId slot_u = std::atomic_ref<EdgeId>(cursor[edge.u])
                              .fetch_add(1, std::memory_order_relaxed);
    adj_[slot_u] = edge.v;
    const EdgeId slot_v = std::atomic_ref<EdgeId>(cursor[edge.v])
                              .fetch_add(1, std::memory_order_relaxed);
    adj_[slot_v] = edge.u;
  });
  seg_count_ = std::move(degree);
  num_edges_ = m;
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  if (!graph::edge_valid(u, v, num_nodes_)) return false;
  if (seg_count_[u] > seg_count_[v]) std::swap(u, v);
  const EdgeId begin = seg_begin_[u];
  const EdgeId end = begin + seg_count_[u];
  for (EdgeId i = begin; i < end; ++i) {
    if (adj_[i] == v) return true;
  }
  return false;
}

std::vector<std::uint64_t> DynamicGraph::normalized_batch(
    const device::Context& ctx, const std::vector<graph::Edge>& batch,
    bool keep_present) const {
  const std::size_t b = batch.size();
  std::vector<std::uint64_t> keys(b);
  device::transform(ctx, b, keys.data(), [&](std::size_t i) {
    const graph::Edge e = batch[i];
    if (!graph::edge_valid(e.u, e.v, num_nodes_)) return kInvalidKey;
    return graph::edge_key(e.u, e.v);
  });
  device::sort_keys(ctx, keys.data(), b);
  std::vector<EdgeId> picked(b);
  const std::size_t kept = device::copy_if_index(
      ctx, b,
      [&](std::size_t i) {
        const std::uint64_t k = keys[i];
        if (k == kInvalidKey) return false;
        if (i > 0 && k == keys[i - 1]) return false;  // within-batch duplicate
        return has_edge(static_cast<NodeId>(k >> 32),
                        static_cast<NodeId>(k & 0xffffffffULL)) ==
               keep_present;
      },
      picked.data());
  std::vector<std::uint64_t> out(kept);
  device::gather(ctx, keys.data(), picked.data(), kept, out.data());
  return out;
}

std::size_t DynamicGraph::insert_edges(const device::Context& ctx,
                                       const std::vector<graph::Edge>& batch) {
  if (batch.empty()) return 0;
  // Self-locking: a serving writer races concurrent device-routed View
  // queries on the same context (the pool's dispatch slot and the arena
  // take one driver at a time). Recursive, so callers already holding the
  // driver lock compose.
  const auto lock = ctx.exclusive();
  const auto fresh = normalized_batch(ctx, batch, /*keep_present=*/false);
  const std::size_t c = fresh.size();
  if (c == 0) return 0;

  std::vector<std::uint64_t> dir;
  std::vector<EdgeId> run_start;
  const std::size_t runs = expand_directed_runs(ctx, fresh, dir, run_start);

  // If any segment lacks slack for its run, rebuild the store once with the
  // batch demand folded into the new capacities; appends then always fit.
  const std::size_t overflows = device::reduce(
      ctx, runs, std::size_t{0},
      [&](std::size_t r) -> std::size_t {
        const auto [begin, end] = run_bounds(run_start, runs, 2 * c, r);
        const auto src = static_cast<NodeId>(dir[begin] >> 32);
        const EdgeId room =
            seg_begin_[src + 1] - seg_begin_[src] - seg_count_[src];
        return end - begin > static_cast<std::size_t>(room) ? 1 : 0;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  if (overflows != 0) {
    std::vector<EdgeId> demand(static_cast<std::size_t>(num_nodes_), 0);
    device::launch(ctx, runs, [&](std::size_t r) {
      const auto [begin, end] = run_bounds(run_start, runs, 2 * c, r);
      demand[dir[begin] >> 32] = static_cast<EdgeId>(end - begin);
    });
    compact(ctx, demand.data());
  }

  // One virtual thread per touched segment; runs are disjoint so the kernel
  // is race-free and the append order (sorted by neighbor) deterministic.
  device::launch(ctx, runs, [&](std::size_t r) {
    const auto [begin, end] = run_bounds(run_start, runs, 2 * c, r);
    const auto src = static_cast<NodeId>(dir[begin] >> 32);
    EdgeId cursor = seg_begin_[src] + seg_count_[src];
    for (std::size_t i = begin; i < end; ++i) {
      adj_[cursor++] = static_cast<NodeId>(dir[i] & 0xffffffffULL);
    }
    seg_count_[src] = cursor - seg_begin_[src];
  });
  num_edges_ += c;
  ++epoch_;
  record_delta(ctx, fresh, /*inserted=*/true);
  return c;
}

std::size_t DynamicGraph::erase_edges(const device::Context& ctx,
                                      const std::vector<graph::Edge>& batch) {
  if (batch.empty()) return 0;
  const auto lock = ctx.exclusive();  // see insert_edges

  const auto doomed = normalized_batch(ctx, batch, /*keep_present=*/true);
  const std::size_t c = doomed.size();
  if (c == 0) return 0;

  std::vector<std::uint64_t> dir;
  std::vector<EdgeId> run_start;
  const std::size_t runs = expand_directed_runs(ctx, doomed, dir, run_start);

  // One in-place compaction sweep per segment: the run's targets are
  // already sorted (the directed sort orders by dst within a src), so each
  // surviving neighbor costs one binary search — O(deg log k) even when a
  // hub loses its whole adjacency in one batch. Each thread owns one
  // segment, so nothing races.
  device::launch(ctx, runs, [&](std::size_t r) {
    const auto [begin, end] = run_bounds(run_start, runs, 2 * c, r);
    const auto src = static_cast<NodeId>(dir[begin] >> 32);
    const EdgeId seg = seg_begin_[src];
    const EdgeId count = seg_count_[src];
    EdgeId keep = seg;
    for (EdgeId s = seg; s < seg + count; ++s) {
      const std::uint64_t probe = pack_directed(src, adj_[s]);
      if (!std::binary_search(dir.begin() + begin, dir.begin() + end, probe)) {
        adj_[keep++] = adj_[s];
      }
    }
    seg_count_[src] = keep - seg;
  });
  num_edges_ -= c;
  ++epoch_;
  record_delta(ctx, doomed, /*inserted=*/false);
  return c;
}

void DynamicGraph::record_delta(const device::Context& ctx,
                                const std::vector<std::uint64_t>& keys,
                                bool inserted) {
  last_delta_.from_epoch = epoch_ - 1;
  auto& applied = inserted ? last_delta_.inserted : last_delta_.erased;
  auto& other = inserted ? last_delta_.erased : last_delta_.inserted;
  other.clear();
  applied.resize(keys.size());
  device::transform(ctx, keys.size(), applied.data(), [&](std::size_t i) {
    return graph::Edge{static_cast<NodeId>(keys[i] >> 32),
                       static_cast<NodeId>(keys[i] & 0xffffffffULL)};
  });
}

void DynamicGraph::compact(const device::Context& ctx, const EdgeId* demand) {
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  std::vector<EdgeId> cap(n);
  device::transform(ctx, n, cap.data(), [&](std::size_t v) {
    return capacity_for(seg_count_[v] + (demand != nullptr ? demand[v] : 0));
  });
  std::vector<EdgeId> new_begin(n + 1);
  new_begin[n] = device::exclusive_scan(ctx, cap.data(), n, new_begin.data());
  std::vector<NodeId> new_adj(static_cast<std::size_t>(new_begin[n]));
  device::launch(ctx, n, [&](std::size_t v) {
    const EdgeId from = seg_begin_[v];
    const EdgeId to = new_begin[v];
    for (EdgeId i = 0; i < seg_count_[v]; ++i) new_adj[to + i] = adj_[from + i];
  });
  seg_begin_ = std::move(new_begin);
  adj_ = std::move(new_adj);
  ++num_compactions_;
}

std::shared_ptr<const graph::EdgeList> DynamicGraph::snapshot_shared(
    const device::Context& ctx) const {
  if (edge_snapshot_epoch_ == epoch_) return edge_snapshot_;
  // Failpoint: after the cache-hit check, so an armed site perturbs only
  // fresh materializations — cached snapshots stay servable, the property
  // the bounded-staleness mode relies on.
  util::failpoint::maybe_throw(util::failpoint::kSnapshot);
  // Append fast path: when exactly one insert-only batch separates the
  // cached snapshot from the current epoch, the new edge list is the old
  // one plus the recorded delta — a host-side copy + append, no kernel
  // launches and no driver lock. This is what lets a streaming ingest
  // writer publish insert-heavy epochs without re-exporting every segment.
  // (Edge ORDER differs from the segment-walk export below, but a snapshot
  // only promises within-epoch consistency: the CSR and bridge mask built
  // from it index ITS order.)
  if (edge_snapshot_ != nullptr && edge_snapshot_epoch_ + 1 == epoch_ &&
      last_delta_.from_epoch + 1 == epoch_ && last_delta_.insert_only() &&
      !last_delta_.inserted.empty()) {
    graph::EdgeList snap;
    snap.num_nodes = num_nodes_;
    snap.edges.reserve(edge_snapshot_->edges.size() +
                       last_delta_.inserted.size());
    snap.edges = edge_snapshot_->edges;
    snap.edges.insert(snap.edges.end(), last_delta_.inserted.begin(),
                      last_delta_.inserted.end());
    edge_snapshot_ = std::make_shared<const graph::EdgeList>(std::move(snap));
    edge_snapshot_epoch_ = epoch_;
    edge_snapshot_appended_ = true;
    ++num_snapshot_appends_;
    return edge_snapshot_;
  }
  const auto lock = ctx.exclusive();  // see insert_edges
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  // The lower endpoint of each edge emits it, so every undirected edge
  // appears exactly once: per-node counts, scan, then a placement kernel.
  std::vector<EdgeId> count(n);
  device::transform(ctx, n, count.data(), [&](std::size_t v) {
    EdgeId c = 0;
    const EdgeId begin = seg_begin_[v];
    for (EdgeId i = begin; i < begin + seg_count_[v]; ++i) {
      if (adj_[i] > static_cast<NodeId>(v)) ++c;
    }
    return c;
  });
  std::vector<EdgeId> offset(n + 1);
  offset[n] = device::exclusive_scan(ctx, count.data(), n, offset.data());
  graph::EdgeList snap;
  snap.num_nodes = num_nodes_;
  snap.edges.resize(static_cast<std::size_t>(offset[n]));
  device::launch(ctx, n, [&](std::size_t v) {
    EdgeId w = offset[v];
    const EdgeId begin = seg_begin_[v];
    for (EdgeId i = begin; i < begin + seg_count_[v]; ++i) {
      if (adj_[i] > static_cast<NodeId>(v)) {
        snap.edges[w++] = {static_cast<NodeId>(v), adj_[i]};
      }
    }
  });
  // A fresh object rather than reuse: a consumer may still hold the previous
  // epoch's snapshot through its shared handle.
  edge_snapshot_ = std::make_shared<const graph::EdgeList>(std::move(snap));
  edge_snapshot_epoch_ = epoch_;
  edge_snapshot_appended_ = false;
  return edge_snapshot_;
}

std::shared_ptr<const graph::Csr> DynamicGraph::csr_snapshot_shared(
    const device::Context& ctx) const {
  if (csr_snapshot_epoch_ == epoch_) return csr_snapshot_;
  util::failpoint::maybe_throw(util::failpoint::kSnapshot);
  const auto lock = ctx.exclusive();  // see insert_edges
  const std::shared_ptr<const graph::EdgeList> snap = snapshot_shared(ctx);
  // Append fast path, mirroring snapshot_shared: when the cached CSR is one
  // insert-only batch behind AND this epoch's edge snapshot was itself
  // served by the append path (edge ids [0, old_m) position-stable), splice
  // the delta's half-edges in — an n-sized row shift plus a d-sized scatter
  // instead of the full sort-based rebuild.
  if (csr_snapshot_ != nullptr && csr_snapshot_epoch_ + 1 == epoch_ &&
      edge_snapshot_appended_) {
    const graph::Csr& old_csr = *csr_snapshot_;
    const std::vector<graph::Edge>& delta = last_delta_.inserted;
    const std::size_t d = delta.size();
    const std::size_t n = static_cast<std::size_t>(num_nodes_);
    const std::size_t old_m = old_csr.num_edges();

    // Small-delta splice: only the rows of the delta's <= 2d endpoints gain
    // entries, and every span between two touched rows is one contiguous
    // block in both the old and new layout. Grouping the half-edges by
    // endpoint (one small sort) turns the splice into <= 2d+1 bulk copies —
    // no n-sized shift, no zero-initialized 2m-sized buffers — which is
    // what keeps an insert-only epoch publish delta-priced at 1M nodes.
    // Large deltas fall through to the n-sized shift below, whose cost the
    // sort would exceed.
    if (2 * d <= std::size_t{1} << 16) {
      struct Half {
        NodeId node;
        NodeId nbr;
        EdgeId eid;
      };
      std::vector<Half> halves(2 * d);
      for (std::size_t i = 0; i < d; ++i) {
        const auto eid = static_cast<EdgeId>(old_m + i);
        halves[2 * i] = {delta[i].u, delta[i].v, eid};
        halves[2 * i + 1] = {delta[i].v, delta[i].u, eid};
      }
      std::sort(halves.begin(), halves.end(),
                [](const Half& a, const Half& b) { return a.node < b.node; });

      graph::Csr csr;
      csr.num_nodes = num_nodes_;
      csr.row_offsets.resize(n + 1);
      csr.neighbors.reserve(2 * (old_m + d));
      csr.edge_ids.reserve(2 * (old_m + d));
      std::size_t src = 0;     // next un-copied element of the old arrays
      std::size_t row = 0;     // next row_offsets index to fill
      EdgeId shift = 0;        // half-edges appended so far
      std::size_t g = 0;
      while (g < halves.size()) {
        const NodeId t = halves[g].node;
        // Rows up to and including t start before any of t's new entries.
        for (; row <= static_cast<std::size_t>(t); ++row) {
          csr.row_offsets[row] = old_csr.row_offsets[row] + shift;
        }
        const std::size_t end = old_csr.row_offsets[t + 1];
        csr.neighbors.insert(csr.neighbors.end(),
                             old_csr.neighbors.begin() + src,
                             old_csr.neighbors.begin() + end);
        csr.edge_ids.insert(csr.edge_ids.end(), old_csr.edge_ids.begin() + src,
                            old_csr.edge_ids.begin() + end);
        src = end;
        for (; g < halves.size() && halves[g].node == t; ++g, ++shift) {
          csr.neighbors.push_back(halves[g].nbr);
          csr.edge_ids.push_back(halves[g].eid);
        }
      }
      for (; row <= n; ++row) {
        csr.row_offsets[row] = old_csr.row_offsets[row] + shift;
      }
      csr.neighbors.insert(csr.neighbors.end(), old_csr.neighbors.begin() + src,
                           old_csr.neighbors.end());
      csr.edge_ids.insert(csr.edge_ids.end(), old_csr.edge_ids.begin() + src,
                          old_csr.edge_ids.end());
      csr_snapshot_ = std::make_shared<const graph::Csr>(std::move(csr));
      csr_snapshot_epoch_ = epoch_;
      ++num_csr_appends_;
      return csr_snapshot_;
    }

    graph::Csr csr;
    csr.num_nodes = num_nodes_;
    std::vector<EdgeId> extra(n, 0);
    device::launch(ctx, d, [&](std::size_t i) {
      std::atomic_ref<EdgeId>(extra[delta[i].u])
          .fetch_add(1, std::memory_order_relaxed);
      std::atomic_ref<EdgeId>(extra[delta[i].v])
          .fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<EdgeId> new_deg(n);
    device::transform(ctx, n, new_deg.data(), [&](std::size_t v) {
      return old_csr.row_offsets[v + 1] - old_csr.row_offsets[v] + extra[v];
    });
    csr.row_offsets.resize(n + 1);
    csr.row_offsets[n] =
        device::exclusive_scan(ctx, new_deg.data(), n, csr.row_offsets.data());
    csr.neighbors.resize(2 * (old_m + d));
    csr.edge_ids.resize(2 * (old_m + d));
    // Shift each old row to its new offset, leaving the slack at the row
    // tail for the delta scatter below (cursor marks the first free slot).
    std::vector<EdgeId> cursor(n);
    device::launch(ctx, n, [&](std::size_t v) {
      const EdgeId from = old_csr.row_offsets[v];
      const EdgeId count = old_csr.row_offsets[v + 1] - from;
      const EdgeId to = csr.row_offsets[v];
      for (EdgeId i = 0; i < count; ++i) {
        csr.neighbors[to + i] = old_csr.neighbors[from + i];
        csr.edge_ids[to + i] = old_csr.edge_ids[from + i];
      }
      cursor[v] = to + count;
    });
    device::launch(ctx, d, [&](std::size_t i) {
      const graph::Edge e = delta[i];
      const auto eid = static_cast<EdgeId>(old_m + i);
      const EdgeId su = std::atomic_ref<EdgeId>(cursor[e.u])
                            .fetch_add(1, std::memory_order_relaxed);
      csr.neighbors[su] = e.v;
      csr.edge_ids[su] = eid;
      const EdgeId sv = std::atomic_ref<EdgeId>(cursor[e.v])
                            .fetch_add(1, std::memory_order_relaxed);
      csr.neighbors[sv] = e.u;
      csr.edge_ids[sv] = eid;
    });
    csr_snapshot_ = std::make_shared<const graph::Csr>(std::move(csr));
    csr_snapshot_epoch_ = epoch_;
    ++num_csr_appends_;
    return csr_snapshot_;
  }
  csr_snapshot_ =
      std::make_shared<const graph::Csr>(graph::build_csr(ctx, *snap));
  csr_snapshot_epoch_ = epoch_;
  return csr_snapshot_;
}

}  // namespace emc::dynamic
