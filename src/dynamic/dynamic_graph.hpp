// Batch-dynamic graph storage — a DCSR (dynamic CSR) over the device layer.
//
// The paper's pipeline is a one-shot batch computation; a serving system
// needs the graph to *change*. This module stores the adjacency the way
// dynamic-CSR systems do (per-node segments with slack, cf. the DCSR of
// ldeng-ustc/bubble): node v owns the slot range
// [seg_begin[v], seg_begin[v+1]) of `adj`, of which the first seg_count[v]
// slots hold v's current neighbors and the rest are slack absorbing future
// insertions without moving other nodes' segments.
//
// Updates arrive as *batches* of undirected edges and are applied with the
// existing device primitives: radix sort of the packed (lo, hi) keys
// deduplicates the batch, a second sort of the directed expansion groups the
// half-edges by source node, and one bulk kernel per batch (one virtual
// thread per touched node) appends into — or deletes from — the segments,
// so the launch count per update batch is a small constant independent of
// the batch size. When some segment's slack is exhausted the whole store is
// compacted into a fresh CSR with renewed slack (chained scan for the new
// offsets, scatter of the surviving segments), amortizing the reshuffle over
// many batches.
//
// The graph is kept *simple* (no self-loops, no parallel edges; see
// graph::canonicalize): inserting an edge already present or erasing one
// already absent is a no-op and does not advance the epoch. The epoch
// counter advances exactly when the edge set actually changes, which is what
// lets ConnectivityOracle::refresh skip rebuilding entirely for no-op
// batches.
//
// snapshot()/snapshot_csr() export the current version as the immutable
// graph::EdgeList/Csr every existing algorithm consumes, built once per
// epoch and cached — repeated calls within an epoch are zero-copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace emc::dynamic {

/// The applied (post-normalization) delta of the most recent effective
/// update batch: the edges that actually entered or left the store, in
/// canonical (u < v) form, and the epoch the batch applied on top of. A
/// consumer holding an index for `from_epoch` can bring it to
/// `from_epoch + 1` by replaying the delta instead of re-reading the whole
/// graph — the hook ConnectivityOracle's incremental refresh hangs off.
struct UpdateDelta {
  /// Epoch the delta applies on top of (the batch produced from_epoch + 1).
  /// kNoDelta when no effective batch has run yet.
  std::uint64_t from_epoch = ~std::uint64_t{0};
  std::vector<graph::Edge> inserted;  // canonical u < v, deduplicated
  std::vector<graph::Edge> erased;    // canonical u < v, deduplicated

  static constexpr std::uint64_t kNoDelta = ~std::uint64_t{0};
  bool insert_only() const { return erased.empty(); }
};

class DynamicGraph {
 public:
  /// Empty graph on `num_nodes` nodes (all segments empty, zero capacity;
  /// the first insert batch triggers the initial compaction).
  explicit DynamicGraph(NodeId num_nodes);

  /// Seeds the store from an edge list. The input is canonicalized first
  /// (self-loops and duplicate/reversed-duplicate edges dropped), so the
  /// stored edge set is the simple form of `initial`.
  DynamicGraph(const device::Context& ctx, const graph::EdgeList& initial);

  /// Identity type — neither copyable nor movable: a copy (or a gutted
  /// moved-from source) would carry the uid that identifies this graph to
  /// oracle caches while holding a different edge set. Heap-allocate when
  /// ownership must travel.
  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  /// Applies a batch of insertions. Self-loops, out-of-range endpoints,
  /// within-batch duplicates and edges already present are ignored. Returns
  /// the number of edges actually added; the epoch advances iff that is
  /// non-zero.
  std::size_t insert_edges(const device::Context& ctx,
                           const std::vector<graph::Edge>& batch);

  /// Applies a batch of deletions (same normalization; edges not present are
  /// ignored). Returns the number of edges actually removed; the epoch
  /// advances iff that is non-zero.
  std::size_t erase_edges(const device::Context& ctx,
                          const std::vector<graph::Edge>& batch);

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return num_edges_; }

  /// Version counter: advances exactly when the edge set changes.
  std::uint64_t epoch() const { return epoch_; }

  /// Delta of the most recent effective update batch (the one that advanced
  /// the epoch to epoch()). No-op batches leave it untouched; before any
  /// effective batch (including right after the seeding constructor, whose
  /// initial edges are part of epoch 0, not a delta on top of it) its
  /// from_epoch is UpdateDelta::kNoDelta. Invalidated by the next effective
  /// batch — consumers replay it immediately or not at all.
  const UpdateDelta& last_delta() const { return last_delta_; }

  /// Process-unique graph identity (never 0). Consumers that cache derived
  /// state key it on (uid, epoch): epoch alone would collide across
  /// different DynamicGraph instances.
  std::uint64_t uid() const { return uid_; }

  /// Compactions performed so far (the amortized reshuffles).
  std::size_t num_compactions() const { return num_compactions_; }

  /// Edge-list snapshots served by the insert-only APPEND fast path (the
  /// previous epoch's snapshot plus the recorded delta — no kernels, no
  /// segment walk) rather than a full export. Advances when a streaming
  /// writer publishes back-to-back insert-only epochs; the ingest tests pin
  /// that insert-only stretches actually take it.
  std::size_t num_snapshot_appends() const { return num_snapshot_appends_; }

  /// CSR snapshots served by the matching append fast path: the delta's
  /// half-edges spliced into the previous epoch's CSR (n-sized shift +
  /// d-sized scatter) instead of the full sort-based rebuild. Only taken
  /// when the edge snapshot itself appended, so edge ids stay
  /// position-stable across the epoch.
  std::size_t num_csr_appends() const { return num_csr_appends_; }

  /// Total adjacency slots currently reserved (used + slack).
  std::size_t slot_capacity() const { return adj_.size(); }

  EdgeId degree(NodeId v) const { return seg_count_[v]; }

  /// Membership test by scanning the smaller endpoint's segment.
  bool has_edge(NodeId u, NodeId v) const;

  /// The current version as an immutable edge list, built once per epoch and
  /// cached: calling again without an intervening update returns the same
  /// object (zero-copy). Every existing bridge finder runs unmodified on it.
  const graph::EdgeList& snapshot(const device::Context& ctx) const {
    return *snapshot_shared(ctx);
  }

  /// CSR adjacency of snapshot(), with edge_ids aligned to snapshot() edge
  /// order (so a BridgeMask computed on the snapshot indexes both). Cached
  /// per epoch like snapshot().
  const graph::Csr& snapshot_csr(const device::Context& ctx) const {
    return *csr_snapshot_shared(ctx);
  }

  /// Shared-ownership forms of the per-epoch snapshots. The store only keeps
  /// the CURRENT epoch's snapshot cached; a consumer pinning an older
  /// version (an engine::View generation) holds it alive through these
  /// handles after the cache has moved on — MVCC by refcount, no copying.
  std::shared_ptr<const graph::EdgeList> snapshot_shared(
      const device::Context& ctx) const;
  std::shared_ptr<const graph::Csr> csr_snapshot_shared(
      const device::Context& ctx) const;

  /// True iff this epoch's CSR snapshot is already materialized, i.e. the
  /// next snapshot_csr() call is free. Lets delegating caches (the engine
  /// session) report a build vs a hit truthfully.
  bool csr_snapshot_ready() const { return csr_snapshot_epoch_ == epoch_; }

 private:
  /// Sorts and deduplicates a batch into canonical packed (lo << 32 | hi)
  /// keys, dropping invalid entries and keeping only edges whose presence in
  /// the store matches `keep_present` (false for inserts, true for erases).
  std::vector<std::uint64_t> normalized_batch(
      const device::Context& ctx, const std::vector<graph::Edge>& batch,
      bool keep_present) const;

  /// Rebuilds the segment store with fresh slack. `demand` (optional, per
  /// node) reserves room for that many additional neighbors on top of the
  /// current degree, guaranteeing a pending insert batch fits.
  void compact(const device::Context& ctx, const EdgeId* demand);

  NodeId num_nodes_ = 0;
  std::size_t num_edges_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t uid_ = 0;
  std::size_t num_compactions_ = 0;

  /// Records `keys` (canonical packed edges) as the delta that produced the
  /// current epoch, into the inserted or erased side.
  void record_delta(const device::Context& ctx,
                    const std::vector<std::uint64_t>& keys, bool inserted);

  std::vector<EdgeId> seg_begin_;  // size n+1: slot range of each segment
  std::vector<EdgeId> seg_count_;  // size n: used slots (node degree)
  std::vector<NodeId> adj_;        // slot store
  UpdateDelta last_delta_;

  static constexpr std::uint64_t kNeverBuilt = ~std::uint64_t{0};
  mutable std::shared_ptr<const graph::EdgeList> edge_snapshot_;
  mutable std::uint64_t edge_snapshot_epoch_ = kNeverBuilt;
  /// How the cached edge snapshot was produced: true iff by the append fast
  /// path, which is what guarantees edge POSITIONS [0, old_m) carried over
  /// — the precondition for appending the CSR (and for the engine's
  /// delta-replay publish to patch its mask by edge id).
  mutable bool edge_snapshot_appended_ = false;
  mutable std::size_t num_snapshot_appends_ = 0;
  mutable std::shared_ptr<const graph::Csr> csr_snapshot_;
  mutable std::uint64_t csr_snapshot_epoch_ = kNeverBuilt;
  mutable std::size_t num_csr_appends_ = 0;
};

}  // namespace emc::dynamic
