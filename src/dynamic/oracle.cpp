#include "dynamic/oracle.hpp"

#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "bridges/cc_spanning.hpp"
#include "bridges/stitch.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "bridges/two_ecc.hpp"
#include "device/primitives.hpp"
#include "device/union_find.hpp"

namespace emc::dynamic {

bool ConnectivityOracle::refresh(const device::Context& ctx,
                                 const DynamicGraph& graph,
                                 util::PhaseTimer* phases,
                                 const bridges::BridgeMask* bridge_mask,
                                 const bridges::SpanningForest* cc) {
  if (built_uid_ == graph.uid() && built_epoch_ == graph.epoch()) {
    ++refreshes_skipped_;
    return false;
  }
  // Incremental path: the index must be exactly the one effective batch
  // whose delta the graph still holds behind the current epoch, and the
  // delta must pass the size rule.
  const UpdateDelta& delta = graph.last_delta();
  bool incremental = incremental_candidate(graph);
  // Partition the delta by the indexed components — on the host, since the
  // size rule bounds it. Intra-component edges merge blocks (contraction);
  // cross-component edges become bridges linking block trees (tree-link).
  // A union-find over the touched component labels catches the one shape
  // neither path can express: a SET of cross-component edges that closes a
  // cycle through components merged earlier in the same batch (the second
  // edge between two merged components is not a bridge, but it is also not
  // intra-component on the indexed snapshot, so neither replay applies).
  std::vector<graph::Edge> intra, cross;
  std::unordered_map<NodeId, NodeId> merged;  // loser label -> winner label
  if (incremental) {
    std::unordered_map<NodeId, NodeId> comp_uf;  // label -> parent label
    auto find = [&](NodeId c) {
      auto it = comp_uf.find(c);
      while (it != comp_uf.end()) {
        c = it->second;
        it = comp_uf.find(c);
      }
      return c;
    };
    for (const graph::Edge& e : delta.inserted) {
      const NodeId cu = cc_label_[e.u];
      const NodeId cv = cc_label_[e.v];
      if (cu == cv) {
        intra.push_back(e);
        continue;
      }
      // Min label wins, so the merged labels stay exactly what a fresh CC
      // labeling of the new snapshot would assign.
      const NodeId a = find(cu);
      const NodeId b = find(cv);
      if (a == b) {
        incremental = false;  // cycle across components merged this batch
        break;
      }
      comp_uf[std::max(a, b)] = std::min(a, b);
      cross.push_back(e);
    }
    // Fully resolve loser -> final winner once; link_components consumes
    // this instead of re-deriving the merge partition.
    if (incremental) {
      for (const auto& entry : comp_uf) merged[entry.first] = find(entry.first);
    }
  }
  // A mixed batch pipelines the two replays through ONE block-tree reindex:
  // the contraction hands its un-indexed tree to the tree-link, which
  // splices in the new bridges before the shared index_block_tree tail.
  graph::EdgeList contracted;
  bool have_contracted = false;
  if (incremental && !intra.empty()) {
    incremental = apply_insertions(ctx, intra, phases,
                                   cross.empty() ? nullptr : &contracted);
    have_contracted = incremental && !cross.empty();
  }
  if (incremental) {
    if (!cross.empty()) {
      if (!have_contracted) contracted = current_block_tree(ctx);
      link_components(ctx, cross, merged, contracted, phases);
      ++tree_links_;
    }
    ++incremental_refreshes_;
  } else {
    rebuild(ctx, graph.snapshot(ctx), phases, bridge_mask, cc);
    ++rebuilds_;
  }
  built_uid_ = graph.uid();
  built_epoch_ = graph.epoch();
  built_edges_ = graph.num_edges();
  return true;
}

void ConnectivityOracle::build(const device::Context& ctx,
                               const graph::EdgeList& snapshot,
                               const bridges::BridgeMask* bridge_mask,
                               const bridges::SpanningForest* cc,
                               util::PhaseTimer* phases) {
  rebuild(ctx, snapshot, phases, bridge_mask, cc);
  ++rebuilds_;
  built_uid_ = 0;  // no DynamicGraph has uid 0: never matches a refresh()
  built_epoch_ = kNeverBuilt;
  built_edges_ = snapshot.edges.size();
}

void ConnectivityOracle::rebuild(const device::Context& ctx,
                                 const graph::EdgeList& snapshot,
                                 util::PhaseTimer* phases,
                                 const bridges::BridgeMask* bridge_mask,
                                 const bridges::SpanningForest* cc) {
  const auto n = static_cast<std::size_t>(snapshot.num_nodes);
  const std::size_t m = snapshot.edges.size();
  if (n == 0) {
    cc_label_.clear();
    block_of_.clear();
    block_size_.clear();
    block_lca_.reset();
    num_bridges_ = 0;
    num_blocks_ = 0;
    return;
  }

  // Connected components; the representatives both stitch the augmented
  // graph below and become the virtual-root children of the block tree.
  bridges::SpanningForest forest;
  {
    util::ScopedPhase phase(phases, "components");
    if (cc != nullptr) {
      // Precomputed by the caller (the engine's cached forest artifact).
      // Only the labels are consumed here, and they are copied because the
      // tail below moves them into cc_label_.
      assert(cc->component.size() == n);
      forest.component = cc->component;
      forest.num_components = cc->num_components;
    } else {
      forest = bridges::cc_spanning_forest(ctx, snapshot);
    }
  }
  const std::size_t k = forest.num_components;
  const std::vector<NodeId> comp_reps =
      bridges::component_representatives(ctx, forest);

  bridges::BridgeMask mask;
  {
    util::ScopedPhase phase(phases, "bridge_mask");
    if (bridge_mask != nullptr) {
      // Precomputed by the caller (the engine's policy-chosen backend);
      // every backend produces the same verdict, so reuse is exact.
      assert(bridge_mask->size() == m);
      mask = *bridge_mask;
    } else if (m > 0 && k == 1) {
      mask = bridges::find_bridges_tarjan_vishkin(ctx, snapshot);
    } else if (m > 0) {
      // Disconnected: run TV on the stitched augmentation and slice the
      // mask back to the real edges.
      mask = bridges::find_bridges_tarjan_vishkin(
          ctx, bridges::stitch_components(snapshot, comp_reps));
      mask.resize(m);
    }
  }
  num_bridges_ = bridges::count_bridges(mask);

  std::vector<NodeId> label;
  {
    util::ScopedPhase phase(phases, "two_ecc");
    label = bridges::two_edge_components(ctx, snapshot, mask);
  }

  util::ScopedPhase phase(phases, "block_tree");
  // Compact the representative labels to block ids [0, B).
  std::vector<NodeId> block_reps(n);
  const std::size_t num_blocks = device::copy_if_index(
      ctx, n,
      [&](std::size_t v) { return label[v] == static_cast<NodeId>(v); },
      block_reps.data());
  std::vector<NodeId> block_index(n);
  device::launch(ctx, num_blocks, [&](std::size_t b) {
    block_index[block_reps[b]] = static_cast<NodeId>(b);
  });
  block_of_.resize(n);
  device::transform(ctx, n, block_of_.data(),
                    [&](std::size_t v) { return block_index[label[v]]; });
  block_size_.assign(num_blocks, 0);
  device::launch(ctx, n, [&](std::size_t v) {
    std::atomic_ref<NodeId>(block_size_[block_of_[v]])
        .fetch_add(1, std::memory_order_relaxed);
  });
  num_blocks_ = num_blocks;
  cc_label_ = std::move(forest.component);

  // Contract: blocks are the nodes, bridges the edges — a forest with one
  // tree per connected component (num_bridges == num_blocks - k), rooted
  // into a single tree through a virtual super-root adjacent to each
  // component's representative block.
  std::vector<EdgeId> bridge_ids(m);
  device::copy_if_index(ctx, m, [&](std::size_t e) { return mask[e] != 0; },
                        bridge_ids.data());
  graph::EdgeList block_tree;
  block_tree.num_nodes = static_cast<NodeId>(num_blocks + 1);
  block_tree.edges.resize(num_bridges_ + k);
  device::transform(ctx, num_bridges_, block_tree.edges.data(),
                    [&](std::size_t i) {
                      const graph::Edge e = snapshot.edges[bridge_ids[i]];
                      return graph::Edge{block_of_[e.u], block_of_[e.v]};
                    });
  device::transform(ctx, k, block_tree.edges.data() + num_bridges_,
                    [&](std::size_t r) {
                      return graph::Edge{static_cast<NodeId>(num_blocks),
                                         block_of_[comp_reps[r]]};
                    });
  index_block_tree(ctx, block_tree);
}

void ConnectivityOracle::index_block_tree(const device::Context& ctx,
                                          const graph::EdgeList& block_tree) {
  const auto super_root = static_cast<NodeId>(block_tree.num_nodes - 1);
  // One fused Euler tour roots the tree AND feeds the inlabel index (the
  // root_tree + build_parallel pair used to tour the same tree twice).
  block_lca_ = lca::InlabelLca::build_from_edges(ctx, block_tree, super_root);
}

bool ConnectivityOracle::apply_insertions(
    const device::Context& ctx, const std::vector<graph::Edge>& inserted,
    util::PhaseTimer* phases, graph::EdgeList* deferred_tree) {
  const std::size_t n = block_of_.size();
  const std::size_t d = inserted.size();
  const auto old_blocks = static_cast<NodeId>(num_blocks_);
  const NodeId old_super_root = old_blocks;
  const std::vector<NodeId>& parent = block_lca_->parents();
  const std::vector<NodeId>& depth = block_lca_->levels();

  // The inserted endpoints' block pairs, and their meeting points on the
  // block tree — one bulk LCA kernel for the whole delta. Every pair lies
  // within one component, so the meet is always a real block, never the
  // virtual super-root.
  std::vector<std::pair<NodeId, NodeId>> pairs(d);
  device::transform(ctx, d, pairs.data(), [&](std::size_t i) {
    return std::pair<NodeId, NodeId>{block_of_[inserted[i].u],
                                     block_of_[inserted[i].v]};
  });
  std::vector<NodeId> meet;
  {
    util::ScopedPhase phase(phases, "lca_paths");
    block_lca_->query_batch(ctx, pairs, meet);
  }

  // Covered-length rule: the contraction below walks every covered tree
  // edge, and the delta SIZE does not bound that (a single inserted edge
  // can span a chain of a million blocks). Sum the path lengths from the
  // LCA answers and hand oversized totals back to the full rebuild — the
  // probe's cost so far is three small kernels, noise next to either path.
  const std::size_t covered = device::reduce(
      ctx, d, std::size_t{0},
      [&](std::size_t i) -> std::size_t {
        return static_cast<std::size_t>(depth[pairs[i].first] +
                                        depth[pairs[i].second] -
                                        2 * depth[meet[i]]);
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  if (covered > std::max<std::size_t>(kIncrementalFloor,
                                      num_blocks_ / kIncrementalRatio)) {
    return false;
  }

  // Contract: each inserted edge closes a cycle through the tree path
  // between its blocks, merging every block on it. One virtual thread per
  // edge walks both legs up to the meet, hooking each block to its tree
  // parent in the shared union-find; paths overlap freely (unite is
  // idempotent and order-independent), and the final partition is exactly
  // connectivity over the covered tree edges. A tree edge (b, parent[b])
  // dies iff it was covered: the tree path between b and parent[b] is that
  // single edge, so transitive merges cannot kill an uncovered bridge.
  std::vector<NodeId> uf(num_blocks_);
  {
    util::ScopedPhase phase(phases, "contract");
    device::uf_init(ctx, uf.data(), num_blocks_);
    device::launch(ctx, d, [&](std::size_t i) {
      const NodeId z = meet[i];
      for (NodeId b : {pairs[i].first, pairs[i].second}) {
        while (depth[b] > depth[z]) {
          const NodeId p = parent[b];
          device::uf_unite(uf.data(), b, p);
          b = p;
        }
      }
    });
    device::uf_flatten(ctx, uf.data(), num_blocks_);
  }

  util::ScopedPhase phase(phases, "block_tree");
  // Compact surviving roots to new block ids and remap old blocks.
  std::vector<NodeId> reps(num_blocks_);
  const std::size_t new_blocks = device::copy_if_index(
      ctx, num_blocks_,
      [&](std::size_t b) { return uf[b] == static_cast<NodeId>(b); },
      reps.data());
  std::vector<NodeId> new_id(num_blocks_);
  device::launch(ctx, new_blocks, [&](std::size_t b) {
    new_id[reps[b]] = static_cast<NodeId>(b);
  });
  std::vector<NodeId> remap(num_blocks_);
  device::transform(ctx, num_blocks_, remap.data(),
                    [&](std::size_t b) { return new_id[uf[b]]; });

  // Surviving bridges (uncontracted non-virtual tree edges) and the virtual
  // root children (one per component — unchanged, since the delta never
  // joins components; a component's root child can merge downward but never
  // with another component's).
  std::vector<NodeId> surviving(num_blocks_);
  const std::size_t num_surviving = device::copy_if_index(
      ctx, num_blocks_,
      [&](std::size_t b) {
        const NodeId p = parent[b];
        return p != old_super_root && uf[b] != uf[p];
      },
      surviving.data());
  std::vector<NodeId> root_children(num_blocks_);
  const std::size_t k = device::copy_if_index(
      ctx, num_blocks_,
      [&](std::size_t b) { return parent[b] == old_super_root; },
      root_children.data());

  graph::EdgeList new_tree;
  new_tree.num_nodes = static_cast<NodeId>(new_blocks + 1);
  new_tree.edges.resize(num_surviving + k);
  device::transform(ctx, num_surviving, new_tree.edges.data(),
                    [&](std::size_t i) {
                      const NodeId b = surviving[i];
                      return graph::Edge{remap[b], remap[parent[b]]};
                    });
  device::transform(ctx, k, new_tree.edges.data() + num_surviving,
                    [&](std::size_t r) {
                      return graph::Edge{static_cast<NodeId>(new_blocks),
                                         remap[root_children[r]]};
                    });

  // Relabel the per-node index (the one n-sized pass of this path) and
  // fold the merged blocks' sizes together.
  device::launch(ctx, n, [&](std::size_t v) { block_of_[v] = remap[block_of_[v]]; });
  std::vector<NodeId> new_size(new_blocks, 0);
  device::launch(ctx, num_blocks_, [&](std::size_t b) {
    std::atomic_ref<NodeId>(new_size[remap[b]])
        .fetch_add(block_size_[b], std::memory_order_relaxed);
  });
  block_size_ = std::move(new_size);
  num_bridges_ = num_surviving;
  num_blocks_ = new_blocks;
  // cc_label_ is untouched: an intra-component delta cannot change
  // connectivity. Rebuild only the (now smaller) block tree index — or, in
  // a mixed batch, hand the tree to link_components() so the two replays
  // share one reindex.
  if (deferred_tree != nullptr) {
    *deferred_tree = std::move(new_tree);
  } else {
    index_block_tree(ctx, new_tree);
  }
  return true;
}

graph::EdgeList ConnectivityOracle::current_block_tree(
    const device::Context& ctx) const {
  graph::EdgeList tree;
  tree.num_nodes = static_cast<NodeId>(num_blocks_ + 1);
  tree.edges.resize(num_blocks_);
  // One parent edge per block; root children point at the super-root, so
  // the edge count is exactly num_blocks_.
  const std::vector<NodeId>& parent = block_lca_->parents();
  device::transform(ctx, num_blocks_, tree.edges.data(), [&](std::size_t b) {
    return graph::Edge{static_cast<NodeId>(b), parent[b]};
  });
  return tree;
}

void ConnectivityOracle::link_components(
    const device::Context& ctx, const std::vector<graph::Edge>& cross,
    const std::unordered_map<NodeId, NodeId>& merged,
    const graph::EdgeList& tree, util::PhaseTimer* phases) {
  util::ScopedPhase phase(phases, "tree_link");
  const std::size_t num_blocks = num_blocks_;
  const auto super_root = static_cast<NodeId>(num_blocks);
  assert(tree.edges.size() == num_blocks);

  // The merged-away components' root-child blocks — one per cross edge. A
  // component's root child is the block holding its representative (the
  // virtual edges are built as (super_root, block_of[rep])); block_of_ is
  // read here, after any same-batch contraction relabeled it, while the
  // merged map's keys are component labels, which contraction never moves.
  std::unordered_set<NodeId> loser_children;
  for (const auto& entry : merged) {
    loser_children.insert(block_of_[entry.first]);
  }
  assert(loser_children.size() == cross.size());

  // The new block tree: every real bridge survives (no block merges here),
  // the cross edges join as bridges between the linked trees, and the
  // merged-away components' virtual-root edges are dropped — one per cross
  // edge, keeping the edge count at exactly num_blocks.
  std::vector<NodeId> kept(num_blocks);
  const std::size_t k = device::copy_if_index(
      ctx, num_blocks,
      [&](std::size_t i) {
        const graph::Edge e = tree.edges[i];
        if (e.u != super_root && e.v != super_root) return true;
        const NodeId child = e.u == super_root ? e.v : e.u;
        return !loser_children.contains(child);
      },
      kept.data());
  assert(k + cross.size() == num_blocks);

  graph::EdgeList new_tree;
  new_tree.num_nodes = static_cast<NodeId>(num_blocks + 1);
  new_tree.edges.resize(num_blocks);
  device::transform(ctx, k, new_tree.edges.data(),
                    [&](std::size_t i) { return tree.edges[kept[i]]; });
  for (std::size_t i = 0; i < cross.size(); ++i) {
    new_tree.edges[k + i] = {block_of_[cross[i].u], block_of_[cross[i].v]};
  }

  // Relabel the merged components with one n-sized pass (read-only host map
  // lookups race-free under the bulk kernel) and count the new bridges. The
  // 2-ecc state — block_of_, block_size_, num_blocks_ — is untouched: a
  // first edge between two components can never close a cycle.
  device::launch(ctx, cc_label_.size(), [&](std::size_t v) {
    const auto it = merged.find(cc_label_[v]);
    if (it != merged.end()) cc_label_[v] = it->second;
  });
  num_bridges_ += cross.size();
  index_block_tree(ctx, new_tree);
}

NodeId ConnectivityOracle::bridges_on_path(NodeId u, NodeId v) const {
  assert(in_range(u) && in_range(v));
  if (cc_label_[u] != cc_label_[v]) return kNoNode;
  const NodeId bu = block_of_[u];
  const NodeId bv = block_of_[v];
  if (bu == bv) return 0;
  // Both blocks hang below the same component root, so the LCA is a real
  // block and tree distance counts exactly the bridges between them.
  const NodeId z = block_lca_->query(bu, bv);
  const auto& depth = block_lca_->levels();
  return depth[bu] + depth[bv] - 2 * depth[z];
}

void ConnectivityOracle::same_2ecc_batch(
    const device::Context& ctx,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    std::vector<std::uint8_t>& answers) const {
  answers.resize(queries.size());
  device::transform(ctx, queries.size(), answers.data(), [&](std::size_t q) {
    return static_cast<std::uint8_t>(
        same_2ecc(queries[q].first, queries[q].second));
  });
}

void ConnectivityOracle::bridges_on_path_batch(
    const device::Context& ctx,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    std::vector<NodeId>& answers) const {
  answers.resize(queries.size());
  device::transform(ctx, queries.size(), answers.data(), [&](std::size_t q) {
    return bridges_on_path(queries[q].first, queries[q].second);
  });
}

void ConnectivityOracle::component_size_batch(
    const device::Context& ctx, const std::vector<NodeId>& nodes,
    std::vector<NodeId>& answers) const {
  answers.resize(nodes.size());
  device::transform(ctx, nodes.size(), answers.data(),
                    [&](std::size_t q) { return component_size(nodes[q]); });
}

}  // namespace emc::dynamic
