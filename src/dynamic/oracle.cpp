#include "dynamic/oracle.hpp"

#include <atomic>

#include "bridges/cc_spanning.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "bridges/two_ecc.hpp"
#include "core/euler_tour.hpp"
#include "core/tree.hpp"
#include "device/primitives.hpp"

namespace emc::dynamic {

bool ConnectivityOracle::refresh(const device::Context& ctx,
                                 const DynamicGraph& graph,
                                 util::PhaseTimer* phases) {
  if (built_uid_ == graph.uid() && built_epoch_ == graph.epoch()) {
    ++refreshes_skipped_;
    return false;
  }
  rebuild(ctx, graph.snapshot(ctx), phases);
  built_uid_ = graph.uid();
  built_epoch_ = graph.epoch();
  ++rebuilds_;
  return true;
}

void ConnectivityOracle::rebuild(const device::Context& ctx,
                                 const graph::EdgeList& snapshot,
                                 util::PhaseTimer* phases) {
  const auto n = static_cast<std::size_t>(snapshot.num_nodes);
  const std::size_t m = snapshot.edges.size();
  if (n == 0) {
    cc_label_.clear();
    block_of_.clear();
    block_size_.clear();
    block_lca_.reset();
    num_bridges_ = 0;
    num_blocks_ = 0;
    return;
  }

  // Connected components; the representatives both stitch the augmented
  // graph below and become the virtual-root children of the block tree.
  bridges::SpanningForest forest;
  {
    util::ScopedPhase phase(phases, "components");
    forest = bridges::cc_spanning_forest(ctx, snapshot);
  }
  const std::size_t k = forest.num_components;
  std::vector<NodeId> comp_reps(n);
  device::copy_if_index(
      ctx, n,
      [&](std::size_t v) {
        return forest.component[v] == static_cast<NodeId>(v);
      },
      comp_reps.data());

  bridges::BridgeMask mask;
  {
    util::ScopedPhase phase(phases, "bridge_mask");
    if (m > 0 && k == 1) {
      mask = bridges::find_bridges_tarjan_vishkin(ctx, snapshot);
    } else if (m > 0) {
      // Disconnected: stitch components with one virtual edge each from the
      // first representative, run TV on the (connected) augmented graph,
      // and slice the mask back to the real edges.
      graph::EdgeList augmented;
      augmented.num_nodes = snapshot.num_nodes;
      augmented.edges.reserve(m + k - 1);
      augmented.edges.insert(augmented.edges.end(), snapshot.edges.begin(),
                             snapshot.edges.end());
      for (std::size_t r = 1; r < k; ++r) {
        augmented.edges.push_back({comp_reps[0], comp_reps[r]});
      }
      mask = bridges::find_bridges_tarjan_vishkin(ctx, augmented);
      mask.resize(m);
    }
  }
  num_bridges_ = bridges::count_bridges(mask);

  std::vector<NodeId> label;
  {
    util::ScopedPhase phase(phases, "two_ecc");
    label = bridges::two_edge_components(ctx, snapshot, mask);
  }

  util::ScopedPhase phase(phases, "block_tree");
  // Compact the representative labels to block ids [0, B).
  std::vector<NodeId> block_reps(n);
  const std::size_t num_blocks = device::copy_if_index(
      ctx, n,
      [&](std::size_t v) { return label[v] == static_cast<NodeId>(v); },
      block_reps.data());
  std::vector<NodeId> block_index(n);
  device::launch(ctx, num_blocks, [&](std::size_t b) {
    block_index[block_reps[b]] = static_cast<NodeId>(b);
  });
  block_of_.resize(n);
  device::transform(ctx, n, block_of_.data(),
                    [&](std::size_t v) { return block_index[label[v]]; });
  block_size_.assign(num_blocks, 0);
  device::launch(ctx, n, [&](std::size_t v) {
    std::atomic_ref<NodeId>(block_size_[block_of_[v]])
        .fetch_add(1, std::memory_order_relaxed);
  });
  num_blocks_ = num_blocks;
  cc_label_ = std::move(forest.component);

  // Contract: blocks are the nodes, bridges the edges — a forest with one
  // tree per connected component (num_bridges == num_blocks - k), rooted
  // into a single tree through a virtual super-root adjacent to each
  // component's representative block.
  std::vector<EdgeId> bridge_ids(m);
  device::copy_if_index(ctx, m, [&](std::size_t e) { return mask[e] != 0; },
                        bridge_ids.data());
  graph::EdgeList block_tree;
  block_tree.num_nodes = static_cast<NodeId>(num_blocks + 1);
  block_tree.edges.resize(num_bridges_ + k);
  device::transform(ctx, num_bridges_, block_tree.edges.data(),
                    [&](std::size_t i) {
                      const graph::Edge e = snapshot.edges[bridge_ids[i]];
                      return graph::Edge{block_of_[e.u], block_of_[e.v]};
                    });
  device::transform(ctx, k, block_tree.edges.data() + num_bridges_,
                    [&](std::size_t r) {
                      return graph::Edge{static_cast<NodeId>(num_blocks),
                                         block_of_[comp_reps[r]]};
                    });
  std::vector<NodeId> parent, level;
  core::root_tree(ctx, block_tree, static_cast<NodeId>(num_blocks), parent,
                  level);
  const core::ParentTree tree{static_cast<NodeId>(num_blocks),
                              std::move(parent)};
  block_lca_ = lca::InlabelLca::build_parallel(ctx, tree);
}

NodeId ConnectivityOracle::bridges_on_path(NodeId u, NodeId v) const {
  assert(in_range(u) && in_range(v));
  if (cc_label_[u] != cc_label_[v]) return kNoNode;
  const NodeId bu = block_of_[u];
  const NodeId bv = block_of_[v];
  if (bu == bv) return 0;
  // Both blocks hang below the same component root, so the LCA is a real
  // block and tree distance counts exactly the bridges between them.
  const NodeId z = block_lca_->query(bu, bv);
  const auto& depth = block_lca_->levels();
  return depth[bu] + depth[bv] - 2 * depth[z];
}

void ConnectivityOracle::same_2ecc_batch(
    const device::Context& ctx,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    std::vector<std::uint8_t>& answers) const {
  answers.resize(queries.size());
  device::transform(ctx, queries.size(), answers.data(), [&](std::size_t q) {
    return static_cast<std::uint8_t>(
        same_2ecc(queries[q].first, queries[q].second));
  });
}

void ConnectivityOracle::bridges_on_path_batch(
    const device::Context& ctx,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    std::vector<NodeId>& answers) const {
  answers.resize(queries.size());
  device::transform(ctx, queries.size(), answers.data(), [&](std::size_t q) {
    return bridges_on_path(queries[q].first, queries[q].second);
  });
}

void ConnectivityOracle::component_size_batch(
    const device::Context& ctx, const std::vector<NodeId>& nodes,
    std::vector<NodeId>& answers) const {
  answers.resize(nodes.size());
  device::transform(ctx, nodes.size(), answers.data(),
                    [&](std::size_t q) { return component_size(nodes[q]); });
}

}  // namespace emc::dynamic
