// 2-edge-connectivity oracle over a DynamicGraph — the queryable index the
// paper's pipeline produces, kept alive between update batches.
//
// After each update batch the oracle rebuilds its index from the current
// snapshot with the paper's own pipeline:
//
//   bridge mask          — Tarjan-Vishkin on the snapshot (a disconnected
//                          snapshot is stitched with virtual edges between
//                          component representatives first: a single extra
//                          edge between two components can never change the
//                          bridgeness of a real edge, so slicing the mask
//                          back to the real edges is exact);
//   2ecc labels          — two_edge_components (bridge removal + device CC);
//   bridge-block tree    — contract each 2-edge-connected component to one
//                          node; the bridges are exactly the tree edges of
//                          the resulting forest, which is rooted through a
//                          virtual super-root and preprocessed with the
//                          Schieber-Vishkin inlabel LCA.
//
// Queries then arrive in *batches* and are answered by ONE bulk kernel per
// batch (each answer is O(1) arithmetic on the index — the inlabel query on
// the block tree), so there are no per-query kernel launches, exactly the
// regime the paper's Figure 6 shows the device needs.
//
// Epoch versioning: refresh() compares its build epoch against the graph's
// and skips the rebuild entirely when nothing changed — in particular after
// update batches that turn out to be no-ops (all duplicates / already
// absent), which never advance the graph epoch. Incremental (non-rebuild)
// maintenance is the designated follow-on (see ROADMAP).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "lca/inlabel.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::dynamic {

class ConnectivityOracle {
 public:
  /// Brings the index up to date with `graph`. Returns true if a rebuild
  /// ran, false if the (uid, epoch) check proved the index is already
  /// current for this exact graph instance. Phases (when collected):
  /// components, bridge_mask, two_ecc, block_tree.
  bool refresh(const device::Context& ctx, const DynamicGraph& graph,
               util::PhaseTimer* phases = nullptr);

  /// Epoch of the snapshot the index was built from.
  std::uint64_t built_epoch() const { return built_epoch_; }
  std::size_t rebuilds() const { return rebuilds_; }
  std::size_t refreshes_skipped() const { return refreshes_skipped_; }

  std::size_t num_bridges() const { return num_bridges_; }
  /// Number of 2-edge-connected components (blocks).
  std::size_t num_blocks() const { return num_blocks_; }

  // Query precondition (all forms below): refresh() must have run against
  // the queried graph, and node ids must be < that snapshot's num_nodes —
  // checked by assert in Debug builds, unchecked on the Release hot path.

  /// True iff two edge-disjoint u-v paths exist.
  bool same_2ecc(NodeId u, NodeId v) const {
    assert(in_range(u) && in_range(v));
    return block_of_[u] == block_of_[v];
  }

  /// Number of bridges on the (every) u-v path, or kNoNode if u and v lie
  /// in different connected components. O(1) via the block-tree LCA.
  NodeId bridges_on_path(NodeId u, NodeId v) const;

  /// Size of u's 2-edge-connected component.
  NodeId component_size(NodeId u) const {
    assert(in_range(u));
    return block_size_[block_of_[u]];
  }

  /// Batch forms: one bulk kernel per call, one virtual thread per query.
  void same_2ecc_batch(const device::Context& ctx,
                       const std::vector<std::pair<NodeId, NodeId>>& queries,
                       std::vector<std::uint8_t>& answers) const;
  void bridges_on_path_batch(
      const device::Context& ctx,
      const std::vector<std::pair<NodeId, NodeId>>& queries,
      std::vector<NodeId>& answers) const;
  void component_size_batch(const device::Context& ctx,
                            const std::vector<NodeId>& nodes,
                            std::vector<NodeId>& answers) const;

 private:
  void rebuild(const device::Context& ctx, const graph::EdgeList& snapshot,
               util::PhaseTimer* phases);

  bool in_range(NodeId v) const {
    return v >= 0 && static_cast<std::size_t>(v) < block_of_.size();
  }

  static constexpr std::uint64_t kNeverBuilt = ~std::uint64_t{0};
  std::uint64_t built_uid_ = 0;  // no DynamicGraph has uid 0
  std::uint64_t built_epoch_ = kNeverBuilt;
  std::size_t rebuilds_ = 0;
  std::size_t refreshes_skipped_ = 0;

  std::size_t num_bridges_ = 0;
  std::size_t num_blocks_ = 0;
  std::vector<NodeId> cc_label_;    // connected-component representative
  std::vector<NodeId> block_of_;    // compact 2ecc block id, [0, num_blocks)
  std::vector<NodeId> block_size_;  // nodes per block
  // Inlabel LCA over the block forest rooted at a virtual super-root (node
  // id num_blocks). Engaged whenever the indexed snapshot has >= 1 node.
  std::optional<lca::InlabelLca> block_lca_;
};

}  // namespace emc::dynamic
