// 2-edge-connectivity oracle over a DynamicGraph — the queryable index the
// paper's pipeline produces, kept alive between update batches.
//
// After each update batch the oracle rebuilds its index from the current
// snapshot with the paper's own pipeline:
//
//   bridge mask          — Tarjan-Vishkin on the snapshot (a disconnected
//                          snapshot is stitched with virtual edges between
//                          component representatives first: a single extra
//                          edge between two components can never change the
//                          bridgeness of a real edge, so slicing the mask
//                          back to the real edges is exact);
//   2ecc labels          — two_edge_components (bridge removal + device CC);
//   bridge-block tree    — contract each 2-edge-connected component to one
//                          node; the bridges are exactly the tree edges of
//                          the resulting forest, which is rooted through a
//                          virtual super-root and preprocessed with the
//                          Schieber-Vishkin inlabel LCA.
//
// Queries then arrive in *batches* and are answered by ONE bulk kernel per
// batch (each answer is O(1) arithmetic on the index — the inlabel query on
// the block tree), so there are no per-query kernel launches, exactly the
// regime the paper's Figure 6 shows the device needs.
//
// Epoch versioning: refresh() compares its build epoch against the graph's
// and skips the rebuild entirely when nothing changed — in particular after
// update batches that turn out to be no-ops (all duplicates / already
// absent), which never advance the graph epoch.
//
// Incremental maintenance: when the graph is exactly ONE effective batch
// ahead of the index and that batch's applied delta (DynamicGraph::
// last_delta) is insert-only, small, and stays within connected components,
// refresh() skips the full pipeline. An inserted edge {u, v} inside one
// component can only MERGE 2-edge-connected components: it closes a cycle
// through the block-tree path between u's and v's blocks, so every block on
// that path collapses into one. The incremental path therefore
//
//   1. answers all inserted endpoints' block pairs with ONE bulk LCA kernel
//      on the existing block tree;
//   2. contracts each pair's tree path with the device union-find (one bulk
//      kernel; each virtual thread walks its path hooking blocks together
//      with CAS — src/device/union_find.hpp);
//   3. relabels the per-node block ids with one n-sized pass and drops the
//      contracted bridges;
//   4. rebuilds only the now-smaller block tree + its inlabel LCA.
//
// An inserted edge whose endpoints lie in DIFFERENT components takes the
// complementary fast path: it cannot merge any 2-edge-connected components
// (every cycle through it would need a second connecting edge), it IS a new
// bridge, and its only structural effect is linking two trees of the block
// forest. refresh() therefore splits an insert-only delta into the
// intra-component part (contracted as above) and the cross-component part,
// which link_components() replays without touching the n-sized 2-ecc state:
// merge the affected component labels (one n-sized relabel pass), append
// one block-tree edge per inserted bridge, drop the merged-away components'
// virtual-root edges, and rebuild only the block tree + inlabel LCA.
//
// Everything else — deletions, oversized deltas, a cycle-closing set of
// cross-component edges within one batch (two deltas joining the same pair
// of components), or a graph more than one batch ahead — falls back to the
// full rebuild under the explicit cost rule in incremental_applies(). One
// more guard engages mid-flight: the contraction's work is the total length
// of the covered block-tree paths, which the delta size does not bound (one
// edge can span a million-block chain), so after the bulk LCA answers the
// path lengths are summed and an oversized total aborts into the rebuild —
// see apply_insertions().
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bridges/bridges.hpp"
#include "bridges/cc_spanning.hpp"
#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "lca/inlabel.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::dynamic {

class ConnectivityOracle {
 public:
  /// Brings the index up to date with `graph`. Returns true if any work ran
  /// (incremental or full rebuild), false if the (uid, epoch) check proved
  /// the index is already current for this exact graph instance. Phases
  /// (when collected): components, bridge_mask, two_ecc, block_tree for the
  /// full rebuild; lca_paths, contract, block_tree, tree_link for the
  /// incremental paths. `bridge_mask` and `cc`, when provided, must belong
  /// to the graph's CURRENT snapshot (engine artifact reuse: the per-edge
  /// bridge verdict and the connected-components spanning forest); both are
  /// consumed only if the full-rebuild path runs.
  bool refresh(const device::Context& ctx, const DynamicGraph& graph,
               util::PhaseTimer* phases = nullptr,
               const bridges::BridgeMask* bridge_mask = nullptr,
               const bridges::SpanningForest* cc = nullptr);

  /// Builds the index from an immutable snapshot with the full pipeline,
  /// unconditionally — the engine's static-graph entry (the caller owns
  /// change detection; epoch-keying lives in its artifact cache). Severs any
  /// (uid, epoch) binding to a DynamicGraph and counts as a rebuild.
  /// `bridge_mask`, when provided, must align with `snapshot.edges` (any
  /// backend — they all agree) and lets the rebuild skip its own
  /// Tarjan-Vishkin mask phase; `cc`, when provided, must be the spanning
  /// forest of `snapshot` and spares the rebuild its components phase the
  /// same way — so a session that already answered a Bridges request pays
  /// only the marginal 2-ecc work.
  void build(const device::Context& ctx, const graph::EdgeList& snapshot,
             const bridges::BridgeMask* bridge_mask = nullptr,
             const bridges::SpanningForest* cc = nullptr,
             util::PhaseTimer* phases = nullptr);

  /// True iff a refresh() against `graph` right now would run the full
  /// rebuild pipeline — neither the (uid, epoch) skip nor the incremental
  /// candidacy checks hold. Cheap host checks only: a candidate delta can
  /// still fall back to the rebuild mid-flight (cycle-closing cross edges,
  /// oversized covered paths), so a false here is a strong hint, not a
  /// promise. The engine uses it to decide whether a policy-chosen mask is
  /// worth computing up front.
  bool refresh_needs_rebuild(const DynamicGraph& graph) const {
    if (built_uid_ == graph.uid() && built_epoch_ == graph.epoch()) {
      return false;  // refresh would skip entirely
    }
    return !incremental_candidate(graph);
  }

  /// Severs the (uid, epoch) binding so the next refresh() can take neither
  /// the skip nor the incremental path — it must run the full pipeline. The
  /// engine's drop_artifacts/drop_results hooks call this so "the next
  /// request rebuilds" holds for dynamic sessions too (their refresh would
  /// otherwise no-op on the unchanged epoch). The index stays queryable.
  void invalidate() {
    built_uid_ = 0;
    built_epoch_ = kNeverBuilt;
    built_edges_ = 0;
  }

  /// The size half of the incremental decision rule: an insert-only delta
  /// qualifies iff it is small relative to the INDEXED snapshot —
  ///   inserted <= max(kIncrementalFloor, indexed_edges / kIncrementalRatio)
  /// and erased == 0. (The floor keeps small graphs on the incremental path;
  /// the ratio bounds the worst case where contraction relabels would not
  /// beat the full pipeline.) The remaining conditions — index exactly one
  /// batch behind, and no cycle-closing set of cross-component edges within
  /// the batch — are checked against live state by refresh().
  static bool incremental_applies(std::size_t inserted, std::size_t erased,
                                  std::size_t indexed_edges) {
    return erased == 0 && inserted > 0 &&
           inserted <= std::max<std::size_t>(kIncrementalFloor,
                                             indexed_edges / kIncrementalRatio);
  }

  static constexpr std::size_t kIncrementalFloor = 64;
  static constexpr std::size_t kIncrementalRatio = 4;

  /// Epoch of the snapshot the index was built from.
  std::uint64_t built_epoch() const { return built_epoch_; }
  std::size_t rebuilds() const { return rebuilds_; }
  std::size_t refreshes_skipped() const { return refreshes_skipped_; }
  /// Refreshes served by the incremental (delta-replay) path.
  std::size_t incremental_refreshes() const { return incremental_refreshes_; }
  /// Incremental refreshes whose delta included cross-component edges,
  /// served by the tree-link path (a subset of incremental_refreshes()).
  std::size_t tree_links() const { return tree_links_; }

  std::size_t num_bridges() const { return num_bridges_; }
  /// Number of 2-edge-connected components (blocks).
  std::size_t num_blocks() const { return num_blocks_; }

  /// Per-node compact 2-ecc block id in [0, num_blocks) — u and v share a
  /// block iff same_2ecc(u, v). This is the label array the engine serves
  /// as its TwoEcc artifact (the oracle IS the cache's 2-ecc index, not a
  /// parallel universe).
  const std::vector<NodeId>& block_labels() const { return block_of_; }
  /// Nodes per block, indexed by block id.
  const std::vector<NodeId>& block_sizes() const { return block_size_; }
  /// Per-node connected-component representative of the indexed snapshot.
  const std::vector<NodeId>& component_labels() const { return cc_label_; }

  // Query precondition (all forms below): refresh() must have run against
  // the queried graph, and node ids must be < that snapshot's num_nodes —
  // checked by assert in Debug builds, unchecked on the Release hot path.

  /// True iff two edge-disjoint u-v paths exist.
  bool same_2ecc(NodeId u, NodeId v) const {
    assert(in_range(u) && in_range(v));
    return block_of_[u] == block_of_[v];
  }

  /// Number of bridges on the (every) u-v path, or kNoNode if u and v lie
  /// in different connected components. O(1) via the block-tree LCA.
  NodeId bridges_on_path(NodeId u, NodeId v) const;

  /// Size of u's 2-edge-connected component.
  NodeId component_size(NodeId u) const {
    assert(in_range(u));
    return block_size_[block_of_[u]];
  }

  /// Batch forms: one bulk kernel per call, one virtual thread per query.
  void same_2ecc_batch(const device::Context& ctx,
                       const std::vector<std::pair<NodeId, NodeId>>& queries,
                       std::vector<std::uint8_t>& answers) const;
  void bridges_on_path_batch(
      const device::Context& ctx,
      const std::vector<std::pair<NodeId, NodeId>>& queries,
      std::vector<NodeId>& answers) const;
  void component_size_batch(const device::Context& ctx,
                            const std::vector<NodeId>& nodes,
                            std::vector<NodeId>& answers) const;

 private:
  /// The stateful half of the incremental decision rule (shared by
  /// refresh() and refresh_needs_rebuild()): the index is exactly the one
  /// effective batch whose delta the graph still holds behind the current
  /// epoch, and the delta passes incremental_applies().
  bool incremental_candidate(const DynamicGraph& graph) const {
    const UpdateDelta& delta = graph.last_delta();
    return built_uid_ == graph.uid() && built_epoch_ != kNeverBuilt &&
           graph.epoch() == built_epoch_ + 1 &&
           delta.from_epoch == built_epoch_ &&
           incremental_applies(delta.inserted.size(), delta.erased.size(),
                               built_edges_);
  }

  void rebuild(const device::Context& ctx, const graph::EdgeList& snapshot,
               util::PhaseTimer* phases,
               const bridges::BridgeMask* bridge_mask = nullptr,
               const bridges::SpanningForest* cc = nullptr);

  /// Replays an insert-only, intra-component delta onto the current index.
  /// Precondition: incremental_applies() held and every edge's endpoints
  /// share a connected component (checked by refresh()). Returns false —
  /// leaving the index UNCHANGED — when the covered-length rule fires: the
  /// summed block-tree path length of the delta exceeds
  /// max(kIncrementalFloor, num_blocks / kIncrementalRatio), in which case
  /// the contraction walk would not beat the full pipeline.
  /// With `deferred_tree` set, the contracted block tree is handed back
  /// un-indexed instead of running index_block_tree — the mixed-batch path
  /// splices the cross-component bridges into it first so both replays
  /// share one reindex.
  bool apply_insertions(const device::Context& ctx,
                        const std::vector<graph::Edge>& inserted,
                        util::PhaseTimer* phases,
                        graph::EdgeList* deferred_tree = nullptr);

  /// Replays cross-component insertions onto the current index: each edge
  /// becomes a new bridge linking two trees of the block forest, so no
  /// 2-ecc state changes — apply `merged` (refresh's fully resolved
  /// loser-label -> winner-label partition of the cross edges, min label
  /// winning so the result matches a fresh CC labeling) to the component
  /// labels in one n-sized pass, splice the new bridges into `tree` (the
  /// current block forest, either current_block_tree() or
  /// apply_insertions' deferred output) in place of the merged-away
  /// components' virtual-root edges, and reindex once.
  void link_components(const device::Context& ctx,
                       const std::vector<graph::Edge>& cross,
                       const std::unordered_map<NodeId, NodeId>& merged,
                       const graph::EdgeList& tree, util::PhaseTimer* phases);

  /// The indexed block forest as an edge list (one parent edge per block,
  /// root children attached to the virtual super-root, node id num_blocks).
  graph::EdgeList current_block_tree(const device::Context& ctx) const;

  /// Shared tail of both paths: roots the block forest (+ virtual
  /// super-root, node id num_blocks) and builds the inlabel LCA over it.
  void index_block_tree(const device::Context& ctx,
                        const graph::EdgeList& block_tree);

  bool in_range(NodeId v) const {
    return v >= 0 && static_cast<std::size_t>(v) < block_of_.size();
  }

  static constexpr std::uint64_t kNeverBuilt = ~std::uint64_t{0};
  std::uint64_t built_uid_ = 0;  // no DynamicGraph has uid 0
  std::uint64_t built_epoch_ = kNeverBuilt;
  std::size_t built_edges_ = 0;  // edge count of the indexed snapshot
  std::size_t rebuilds_ = 0;
  std::size_t refreshes_skipped_ = 0;
  std::size_t incremental_refreshes_ = 0;
  std::size_t tree_links_ = 0;

  std::size_t num_bridges_ = 0;
  std::size_t num_blocks_ = 0;
  std::vector<NodeId> cc_label_;    // connected-component representative
  std::vector<NodeId> block_of_;    // compact 2ecc block id, [0, num_blocks)
  std::vector<NodeId> block_size_;  // nodes per block
  // Inlabel LCA over the block forest rooted at a virtual super-root (node
  // id num_blocks). Engaged whenever the indexed snapshot has >= 1 node.
  std::optional<lca::InlabelLca> block_lca_;
};

}  // namespace emc::dynamic
