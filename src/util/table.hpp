// Plain-text table printer used by the figure/table benchmark harnesses.
// Produces aligned, machine-grep-friendly output:
//
//   nodes      algo                 prep_ms    queries_per_s
//   1048576    gpu-inlabel          42.1       3.1e+08
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace emc::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Formats helpers for numeric cells.
  static std::string num(double v, int precision = 3);
  static std::string sci(double v);

  /// Prints the table to `out` (stdout by default).
  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emc::util
