#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace emc::util {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::string Flags::get_string(const std::string& name, const std::string& def,
                              const std::string& help) {
  decls_.push_back({name, def, help});
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  used_[name] = true;
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def,
                            const std::string& help) {
  const std::string raw = get_string(name, std::to_string(def), help);
  char* end = nullptr;
  const std::int64_t value = std::strtoll(raw.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "flag --%s expects an integer, got '%s'\n",
                 name.c_str(), raw.c_str());
    std::exit(2);
  }
  return value;
}

double Flags::get_double(const std::string& name, double def,
                         const std::string& help) {
  const std::string raw = get_string(name, std::to_string(def), help);
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "flag --%s expects a number, got '%s'\n", name.c_str(),
                 raw.c_str());
    std::exit(2);
  }
  return value;
}

bool Flags::get_bool(const std::string& name, bool def,
                     const std::string& help) {
  const std::string raw = get_string(name, def ? "true" : "false", help);
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  std::fprintf(stderr, "flag --%s expects a boolean, got '%s'\n", name.c_str(),
               raw.c_str());
  std::exit(2);
}

void Flags::finish() {
  if (help_requested_) {
    std::fprintf(stderr, "usage: %s [flags]\n", program_.c_str());
    for (const auto& decl : decls_) {
      std::fprintf(stderr, "  --%-24s %s (default: %s)\n", decl.name.c_str(),
                   decl.help.c_str(), decl.def.c_str());
    }
    std::exit(0);
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    bool known = false;
    for (const auto& decl : decls_) known = known || decl.name == name;
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", name.c_str());
      std::exit(2);
    }
  }
}

}  // namespace emc::util
