// Wall-clock timers and the per-phase breakdown record used by the Figure 11
// style benchmarks.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace emc::util {

/// Simple monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations, in order of first appearance.
/// Algorithms that report a runtime breakdown (Figure 11) take an optional
/// PhaseTimer pointer; passing nullptr disables collection.
class PhaseTimer {
 public:
  /// Records `seconds` against `name`, accumulating over repeated calls.
  void add(const std::string& name, double seconds) {
    for (auto& entry : phases_) {
      if (entry.first == name) {
        entry.second += seconds;
        return;
      }
    }
    phases_.emplace_back(name, seconds);
  }

  const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  double total() const {
    double sum = 0;
    for (const auto& entry : phases_) sum += entry.second;
    return sum;
  }

  void clear() { phases_.clear(); }

 private:
  std::vector<std::pair<std::string, double>> phases_;
};

/// RAII helper: times a scope and records it into a PhaseTimer (if non-null).
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* sink, std::string name)
      : sink_(sink), name_(std::move(name)) {}
  ~ScopedPhase() {
    if (sink_ != nullptr) sink_->add(name_, timer_.seconds());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* sink_;
  std::string name_;
  Timer timer_;
};

}  // namespace emc::util
