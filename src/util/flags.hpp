// Minimal command-line flag parsing for benchmark and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace emc::util {

class Flags {
 public:
  /// Parses argv. On error prints a message to stderr and exits(2).
  Flags(int argc, char** argv);

  /// Declares a flag (for --help output) and returns its value.
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help = "");
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help = "");
  double get_double(const std::string& name, double def,
                    const std::string& help = "");
  bool get_bool(const std::string& name, bool def,
                const std::string& help = "");

  /// Call after all get_* declarations: handles --help and rejects unknown
  /// flags. Returns normally if execution should continue.
  void finish();

  const std::string& program() const { return program_; }

 private:
  struct Decl {
    std::string name;
    std::string def;
    std::string help;
  };

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> used_;
  std::vector<Decl> decls_;
  bool help_requested_ = false;
};

}  // namespace emc::util
