// Small, fast, reproducible random number generation.
//
// All generators in this library are seeded explicitly so every experiment is
// reproducible bit-for-bit. We use splitmix64 for seeding and xoshiro256**
// for the stream (both public domain constructions), rather than std::mt19937,
// for speed and for a stable cross-platform sequence.
#pragma once

#include <cstdint>

namespace emc::util {

/// splitmix64 step; good for turning an arbitrary 64-bit seed into
/// well-distributed state words.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace emc::util
