#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace emc::util {

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                   c + 1 == row.size() ? "" : "  ");
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace emc::util
