// Strict environment-variable parsing, shared by every EMC_* knob.
//
// Policy (established for EMC_WORKERS in device/context.cpp and reused by
// EMC_FUZZ_SEED/EMC_FUZZ_ROUNDS and the serve-layer QoS knobs): a value is
// taken only when it parses COMPLETELY as an integer inside the knob's sane
// range; empty, non-numeric, trailing junk, or out-of-range values fall back
// to the caller's default. A typo in a job script degrades to stock behavior
// instead of silently arming the wrong configuration.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace emc::util {

/// Strict integer env parse: the value is used iff it parses completely and
/// lies in [lo, hi]; otherwise `def`.
inline std::int64_t env_int_or(const char* name, std::int64_t def,
                               std::int64_t lo, std::int64_t hi) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(env, &end, 10);
    // errno check: strtoll clamps overflow to LLONG_MIN/MAX, which would
    // otherwise sneak past a range check whose bound is the type's limit.
    if (errno == 0 && end != env && *end == '\0' && parsed >= lo &&
        parsed <= hi) {
      return parsed;
    }
  }
  return def;
}

}  // namespace emc::util
