// Failpoints — deterministic fault injection for robustness testing.
//
// A failpoint is a named site in the code ("arena.alloc", "engine.publish")
// that can be armed to fail on demand: the site calls should_fail()/
// maybe_throw() on its hot path, and an armed configuration decides, per
// hit, whether the site fires. With nothing armed the cost is one relaxed
// atomic load — the sites stay in release builds, so CI exercises the exact
// binaries that serve traffic.
//
// Arming, two ways:
//   env   EMC_FAILPOINT=<site>:<spec>[,<site>:<spec>]*   (parsed lazily at
//         first use; the WHOLE value is rejected if any entry is malformed
//         or names an unknown site — same strictness as EMC_WORKERS, a typo
//         disarms everything rather than arming the wrong thing)
//   code  failpoint::configure("engine.publish", "1") from a test, undone
//         with disable()/disable_all().
//
// Spec grammar (who fires, deterministically):
//   "0.25"  probability mode: each hit fires iff a hash of the per-site hit
//           index lands under p — deterministic for a given hit sequence,
//           so a failing run replays. p must be in (0, 1].
//   "7"     one-shot: fires on exactly the 7th hit, then never again —
//           "fail once, let the retry succeed".
//   "7+"    persistent: fires on every hit from the 7th on ("1+" = always
//           fail — the knob for pinning permanent-degradation behavior).
//
// Scoping: ScopedSuspend suppresses every failpoint on the constructing
// thread until it is destroyed. Harnesses wrap the operations whose
// invariants injection would corrupt (e.g. DCSR update batches, reference
// oracle builds) so faults land only on the recovery paths under test.
//
// Site catalog (each named site throws where a real system would fail):
//   arena.alloc      device scratch-arena backing allocation -> bad_alloc
//                    (simulated device OOM)
//   device.launch    kernel launch on any ThreadPool -> InjectedFault
//                    (launch failure / device lost)
//   engine.snapshot  DynamicGraph snapshot/CSR materialization -> InjectedFault
//   engine.publish   Session artifact publish (refresh()/view()) -> InjectedFault
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace emc::util::failpoint {

/// The exception injected sites throw (arena.alloc throws std::bad_alloc
/// instead — a simulated OOM should look like one).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at failpoint '" + site + "'") {}
};

// Site names (the catalog above). Sites are a closed set: configure()
// rejects unknown names so a typo'd site cannot arm silently inert.
inline constexpr const char* kArenaAlloc = "arena.alloc";
inline constexpr const char* kDeviceLaunch = "device.launch";
inline constexpr const char* kSnapshot = "engine.snapshot";
inline constexpr const char* kPublish = "engine.publish";

namespace detail {
/// Number of armed sites, or -1 before the EMC_FAILPOINT env has been
/// parsed. Exposed only for the armed() fast path.
extern std::atomic<int> g_armed;
/// Parses EMC_FAILPOINT once; returns the armed-site count.
int init_from_env();
bool should_fail_slow(const char* site);
}  // namespace detail

/// True iff any site is armed. One relaxed load on the steady path.
inline bool armed() {
  const int s = detail::g_armed.load(std::memory_order_relaxed);
  return s < 0 ? detail::init_from_env() > 0 : s > 0;
}

/// Counts a hit at `site` and returns true iff the site fires this hit.
inline bool should_fail(const char* site) {
  return armed() && detail::should_fail_slow(site);
}

/// Throws InjectedFault when the site fires.
inline void maybe_throw(const char* site) {
  if (should_fail(site)) throw InjectedFault(site);
}

/// Arms `site` with `spec` (grammar above). Returns false — arming nothing —
/// on an unknown site or malformed spec. Resets the site's hit counters.
bool configure(const char* site, const char* spec);

/// Parses a full "<site>:<spec>[,...]" string (the EMC_FAILPOINT format) and
/// arms every entry. Strict: returns -1 and arms NOTHING if any entry is
/// malformed; otherwise returns the number of sites armed.
int configure_from_string(const char* value);

void disable(const char* site);
/// Disarms every site and zeroes all counters (test teardown).
void disable_all();

/// Per-site counters: evaluations seen / faults fired.
std::uint64_t hits(const char* site);
std::uint64_t fired(const char* site);
/// Process-wide injected-fault count across all sites.
std::uint64_t total_fired();

/// Suppresses every failpoint on THIS thread for the scope's lifetime
/// (suspended hits are not counted). Nestable.
class ScopedSuspend {
 public:
  ScopedSuspend();
  ~ScopedSuspend();
  ScopedSuspend(const ScopedSuspend&) = delete;
  ScopedSuspend& operator=(const ScopedSuspend&) = delete;
};

}  // namespace emc::util::failpoint
