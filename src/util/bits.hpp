// Bit-manipulation helpers used by the Inlabel LCA algorithm and the RMQ
// structures. Thin wrappers over <bit> with the conventions the
// Schieber-Vishkin formulas expect (positions, not counts).
#pragma once

#include <bit>
#include <cstdint>

namespace emc::util {

/// Position of the most significant set bit (0-based). Requires x != 0.
inline int msb_index(std::uint32_t x) { return 31 - std::countl_zero(x); }
inline int msb_index(std::uint64_t x) { return 63 - std::countl_zero(x); }

/// Position of the least significant set bit (0-based). Requires x != 0.
inline int lsb_index(std::uint32_t x) { return std::countr_zero(x); }
inline int lsb_index(std::uint64_t x) { return std::countr_zero(x); }

/// Smallest power of two >= x (x >= 1).
inline std::uint64_t ceil_pow2(std::uint64_t x) { return std::bit_ceil(x); }

/// floor(log2(x)) for x >= 1.
inline int floor_log2(std::uint64_t x) { return msb_index(x); }

/// ceil(log2(x)) for x >= 1.
inline int ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0 : msb_index(x - 1) + 1;
}

}  // namespace emc::util
