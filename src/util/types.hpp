// Fundamental integer types shared across the library.
//
// Node and (directed half-)edge identifiers are 32-bit: every instance the
// paper evaluates (up to 32M nodes / 182M edges) fits comfortably, and the
// original CUDA implementation makes the same choice to halve memory traffic.
#pragma once

#include <cstdint>
#include <limits>

namespace emc {

/// Vertex identifier. Valid ids are [0, n). Negative values are sentinels.
using NodeId = std::int32_t;

/// Identifier of a directed half-edge or of an undirected edge, depending on
/// context. Valid ids are [0, m). Negative values are sentinels.
using EdgeId = std::int32_t;

/// Sentinel used for "no node" (e.g. the parent of a root).
inline constexpr NodeId kNoNode = -1;

/// Sentinel used for "no edge" (e.g. the successor of a list tail).
inline constexpr EdgeId kNoEdge = -1;

/// Largest representable node id, used as +infinity in min-aggregations.
inline constexpr NodeId kNodeInf = std::numeric_limits<NodeId>::max();

/// Saturating unsigned subtraction: a - b clamped at zero instead of
/// wrapping. Gauges like serve staleness and ingest lag are DERIVED from
/// counters that are updated at different times (sometimes under different
/// locks); the true difference is never negative, but a transiently
/// inconsistent read pair would make plain unsigned subtraction report
/// ~2^64 instead of 0. Every such gauge goes through this helper.
template <typename T>
constexpr T saturating_sub(T a, T b) {
  return a > b ? static_cast<T>(a - b) : T{0};
}

}  // namespace emc
