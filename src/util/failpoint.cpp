#include "util/failpoint.hpp"

#include <array>
#include <cstdlib>
#include <mutex>
#include <string_view>

namespace emc::util::failpoint {

namespace detail {
std::atomic<int> g_armed{-1};
}  // namespace detail

namespace {

enum class Mode : std::uint8_t { kOff, kProbability, kOneShot, kPersistent };

struct Site {
  const char* name;
  Mode mode = Mode::kOff;
  double probability = 0.0;
  std::uint64_t nth = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

// The closed site catalog. Fixed storage: hot-path lookups never allocate
// and site pointers stay valid forever.
std::array<Site, 4> g_sites{{{kArenaAlloc}, {kDeviceLaunch}, {kSnapshot},
                             {kPublish}}};
std::mutex g_config_mutex;           // guards mode/probability/nth writes
std::atomic<std::uint64_t> g_total_fired{0};
std::once_flag g_env_once;
thread_local int tl_suspended = 0;

Site* find(std::string_view name) {
  for (Site& site : g_sites) {
    if (name == site.name) return &site;
  }
  return nullptr;
}

int armed_count_locked() {
  int count = 0;
  for (const Site& site : g_sites) count += site.mode != Mode::kOff ? 1 : 0;
  return count;
}

/// splitmix64: the per-hit coin for probability mode. Deterministic in the
/// hit index, so a given hit sequence always fires the same subset.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Strict spec parse (see the header grammar). Returns false on any
/// malformed input; out-params are written only on success.
bool parse_spec(std::string_view spec, Mode* mode, double* probability,
                std::uint64_t* nth) {
  if (spec.empty()) return false;
  // Integer forms first: "<n>" (one-shot) and "<n>+" (persistent). "1.0"
  // contains a non-digit so it falls through to the probability parse.
  bool persistent = false;
  std::string_view digits = spec;
  if (digits.back() == '+') {
    persistent = true;
    digits.remove_suffix(1);
  }
  bool all_digits = !digits.empty();
  for (const char c : digits) all_digits = all_digits && c >= '0' && c <= '9';
  if (all_digits) {
    const std::string owned(digits);
    char* end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(owned.c_str(), &end, 10);
    if (errno != 0 || end == owned.c_str() || *end != '\0' || n < 1) {
      return false;
    }
    *mode = persistent ? Mode::kPersistent : Mode::kOneShot;
    *nth = n;
    return true;
  }
  if (persistent) return false;  // "+" only composes with the integer form
  const std::string owned(spec);
  char* end = nullptr;
  errno = 0;
  const double p = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end == owned.c_str() || *end != '\0' || !(p > 0.0) ||
      p > 1.0) {
    return false;
  }
  *mode = Mode::kProbability;
  *probability = p;
  return true;
}

}  // namespace

namespace detail {

int init_from_env() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("EMC_FAILPOINT");
    const int armed = env != nullptr ? configure_from_string(env) : 0;
    // configure_from_string already stored the real count on success; a
    // parse failure (-1) arms nothing.
    if (armed <= 0) {
      int expected = -1;
      g_armed.compare_exchange_strong(expected, 0);
    }
  });
  return g_armed.load(std::memory_order_relaxed);
}

bool should_fail_slow(const char* site_name) {
  if (tl_suspended > 0) return false;
  Site* site = find(site_name);
  if (site == nullptr || site->mode == Mode::kOff) return false;
  const std::uint64_t hit = site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (site->mode) {
    case Mode::kProbability:
      // Top 53 bits of the mixed hit index as a uniform double in [0, 1).
      fire = static_cast<double>(mix(hit) >> 11) * 0x1.0p-53 <
             site->probability;
      break;
    case Mode::kOneShot:
      fire = hit == site->nth;
      break;
    case Mode::kPersistent:
      fire = hit >= site->nth;
      break;
    case Mode::kOff:
      break;
  }
  if (fire) {
    site->fired.fetch_add(1, std::memory_order_relaxed);
    g_total_fired.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

}  // namespace detail

bool configure(const char* site_name, const char* spec) {
  detail::init_from_env();  // settle the env state before overriding it
  Mode mode = Mode::kOff;
  double probability = 0.0;
  std::uint64_t nth = 0;
  if (!parse_spec(spec, &mode, &probability, &nth)) return false;
  const std::lock_guard<std::mutex> lock(g_config_mutex);
  Site* site = find(site_name);
  if (site == nullptr) return false;
  site->mode = mode;
  site->probability = probability;
  site->nth = nth;
  site->hits.store(0, std::memory_order_relaxed);
  site->fired.store(0, std::memory_order_relaxed);
  detail::g_armed.store(armed_count_locked(), std::memory_order_relaxed);
  return true;
}

int configure_from_string(const char* value) {
  // Validate every entry BEFORE arming any (strict all-or-nothing).
  struct Entry {
    Site* site;
    Mode mode;
    double probability;
    std::uint64_t nth;
  };
  std::array<Entry, g_sites.size()> entries;
  std::size_t count = 0;
  std::string_view rest(value);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view entry =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    // A comma promises another entry: "a:1," and "a:1,,b:1" are malformed,
    // not silently tolerated.
    if (comma != std::string_view::npos && rest.empty()) return -1;
    const std::size_t colon = entry.find(':');
    if (colon == std::string_view::npos || count == entries.size()) return -1;
    Site* site = find(entry.substr(0, colon));
    Mode mode = Mode::kOff;
    double probability = 0.0;
    std::uint64_t nth = 0;
    if (site == nullptr ||
        !parse_spec(entry.substr(colon + 1), &mode, &probability, &nth)) {
      return -1;
    }
    entries[count++] = {site, mode, probability, nth};
  }
  const std::lock_guard<std::mutex> lock(g_config_mutex);
  for (std::size_t i = 0; i < count; ++i) {
    entries[i].site->mode = entries[i].mode;
    entries[i].site->probability = entries[i].probability;
    entries[i].site->nth = entries[i].nth;
    entries[i].site->hits.store(0, std::memory_order_relaxed);
    entries[i].site->fired.store(0, std::memory_order_relaxed);
  }
  const int armed = armed_count_locked();
  detail::g_armed.store(armed, std::memory_order_relaxed);
  return armed;
}

void disable(const char* site_name) {
  detail::init_from_env();
  const std::lock_guard<std::mutex> lock(g_config_mutex);
  if (Site* site = find(site_name)) {
    site->mode = Mode::kOff;
    detail::g_armed.store(armed_count_locked(), std::memory_order_relaxed);
  }
}

void disable_all() {
  detail::init_from_env();
  const std::lock_guard<std::mutex> lock(g_config_mutex);
  for (Site& site : g_sites) {
    site.mode = Mode::kOff;
    site.hits.store(0, std::memory_order_relaxed);
    site.fired.store(0, std::memory_order_relaxed);
  }
  detail::g_armed.store(0, std::memory_order_relaxed);
}

std::uint64_t hits(const char* site_name) {
  const Site* site = find(site_name);
  return site != nullptr ? site->hits.load(std::memory_order_relaxed) : 0;
}

std::uint64_t fired(const char* site_name) {
  const Site* site = find(site_name);
  return site != nullptr ? site->fired.load(std::memory_order_relaxed) : 0;
}

std::uint64_t total_fired() {
  return g_total_fired.load(std::memory_order_relaxed);
}

ScopedSuspend::ScopedSuspend() { ++tl_suspended; }
ScopedSuspend::~ScopedSuspend() { --tl_suspended; }

}  // namespace emc::util::failpoint
