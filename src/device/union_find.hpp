// Concurrent union-find — the reusable hook/compress primitive.
//
// The CC algorithm in src/bridges hard-wires its hooking into the edge
// relaxation loop; incremental oracle maintenance (and future consumers)
// need the same structure as a standalone primitive: a flat parent array
// usable from inside bulk kernels, with
//
//   find   — pointer jumping with path halving (each probe CASes its
//            grandparent in, so concurrent finds shorten the chains they
//            walk — the "compress" half);
//   unite  — hook the LARGER root under the smaller via CAS on the root
//            slot (the "hook" half). Hooking strictly label-decreasing
//            keeps the structure acyclic under any interleaving and makes
//            the final partition deterministic: every set's root is its
//            minimum id, independent of thread schedule;
//   flatten — one bulk kernel making every parent point at its root, so
//            subsequent reads are plain loads (no more jumping).
//
// This is the Jayanti-Tarjan style lock-free DSU specialized to the
// device simulation: all state lives in a caller-owned NodeId array, so
// kernels capture a raw pointer exactly as they would device memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"
#include "util/types.hpp"

namespace emc::device {

/// Root of x, halving the path as it walks. Safe to call concurrently with
/// other find/unite calls on the same array.
inline NodeId uf_find(NodeId* parent, NodeId x) {
  while (true) {
    std::atomic_ref<NodeId> slot(parent[x]);
    NodeId p = slot.load(std::memory_order_acquire);
    if (p == x) return x;
    const NodeId gp =
        std::atomic_ref<NodeId>(parent[p]).load(std::memory_order_acquire);
    if (gp == p) return p;
    // Halve: point x at its grandparent. A lost race only means another
    // thread already shortened this link.
    slot.compare_exchange_weak(p, gp, std::memory_order_release,
                               std::memory_order_relaxed);
    x = gp;
  }
}

/// Merges the sets of a and b; returns true if they were distinct. The
/// larger root is hooked under the smaller, so the surviving root of every
/// set is its minimum member regardless of interleaving.
inline bool uf_unite(NodeId* parent, NodeId a, NodeId b) {
  while (true) {
    a = uf_find(parent, a);
    b = uf_find(parent, b);
    if (a == b) return false;
    if (a > b) std::swap(a, b);  // hook b (larger) under a (smaller)
    NodeId expected = b;
    if (std::atomic_ref<NodeId>(parent[b])
            .compare_exchange_strong(expected, a, std::memory_order_acq_rel)) {
      return true;
    }
    // b gained a parent between find and hook; retry from the new roots.
  }
}

/// parent[i] = i for all i: every element its own singleton set.
inline void uf_init(const Context& ctx, NodeId* parent, std::size_t n) {
  iota(ctx, n, parent);
}

/// One bulk kernel pointing every element directly at its root. After this,
/// parent[i] IS the set representative (plain loads suffice) — until the
/// next unite.
inline void uf_flatten(const Context& ctx, NodeId* parent, std::size_t n) {
  launch(ctx, n, [&](std::size_t i) {
    // Atomic store: concurrent lanes' find() calls may still be CASing
    // halved links into this same slot.
    const NodeId root = uf_find(parent, static_cast<NodeId>(i));
    std::atomic_ref<NodeId>(parent[i]).store(root, std::memory_order_relaxed);
  });
}

}  // namespace emc::device
