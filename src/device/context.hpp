// Execution context handed to every parallel algorithm in the library.
//
// In the paper, algorithms run either on the GPU (CUDA + moderngpu), on
// multi-core CPU (OpenMP), or on a single core. In this reproduction all
// three are instances of the same Context with different worker counts:
//
//   Context::sequential()  — single-core CPU baseline (1 worker, inline)
//   Context(k)             — multi-core CPU baseline (k workers)
//   Context::device()      — the "GPU": as many workers as the machine has,
//                            executing bulk kernels with a global barrier
//                            between them (see thread_pool.hpp)
//
// The distinction that matters for reproducing the paper's results is not
// the worker count but the *algorithm structure*: device algorithms are
// sequences of bulk data-parallel kernels with the paper's work/depth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

#include "device/arena.hpp"
#include "device/thread_pool.hpp"

namespace emc::device {

class Context {
 public:
  /// Creates a context with the given number of workers (0 means "use the
  /// EMC_WORKERS environment variable when it holds a valid positive count,
  /// else hardware concurrency") and a fixed per-kernel launch + barrier
  /// latency in seconds (CPU contexts use the default 0; see
  /// thread_pool.hpp for why the device charges one).
  explicit Context(unsigned workers = 0, double launch_overhead_seconds = 0.0);

  /// Single-worker context; all launches run inline on the caller.
  static Context sequential() { return Context(1); }

  /// Full-width context simulating the GPU: charges a per-kernel launch
  /// latency (EMC_KERNEL_LATENCY_US, default 50us — the GTX 980's ~5us
  /// launch+sync cost scaled to this simulator's throughput), the cost that
  /// makes level-synchronous BFS diameter-bound in the paper's Figures 9-11
  /// and small query batches wasteful in Figure 6.
  static Context device();

  /// The per-kernel latency device() charges (EMC_KERNEL_LATENCY_US or the
  /// 50us default) — exposed so callers building a custom-width device
  /// context (engine::EngineOptions::device_workers) keep the same model.
  static double device_launch_overhead();

  double launch_overhead() const { return pool_->launch_overhead(); }

  unsigned workers() const { return pool_->workers(); }
  ThreadPool& pool() const { return *pool_; }

  /// Scratch arena shared by every primitive running on this context (the
  /// device-memory pool of the simulation; see arena.hpp). Like the pool, it
  /// assumes one host thread drives the context at a time.
  Arena& arena() const { return *arena_; }

  /// Kernel launches issued on this context's pool so far.
  std::uint64_t launch_count() const { return pool_->launch_count(); }

  /// Driver lock for multi-threaded hosts. The pool's dispatch slot and the
  /// arena both assume ONE host thread drives the context at a time (the
  /// CUDA-stream shape); single-threaded programs satisfy that for free and
  /// never touch this. Concurrent drivers (emc::serve workers racing a
  /// writer's artifact builds or DynamicGraph updates) must hold this lock
  /// across each whole kernel pipeline — not per launch, since arena slots
  /// live across launches. Recursive, so self-locking entry points
  /// (DynamicGraph updates/snapshots) compose with callers that already
  /// hold it (a Session building artifacts). Copies of a Context share the
  /// lock along with the pool and arena.
  std::unique_lock<std::recursive_mutex> exclusive() const {
    return std::unique_lock<std::recursive_mutex>(*driver_mutex_);
  }

  /// Non-blocking exclusive(): returns a lock that owns the driver mutex iff
  /// it was free (check owns_lock()). Lets serve-layer callers detect a
  /// saturated device route and fall back to the host route instead of
  /// queueing behind a long kernel pipeline.
  std::unique_lock<std::recursive_mutex> try_exclusive() const {
    return std::unique_lock<std::recursive_mutex>(*driver_mutex_,
                                                  std::try_to_lock);
  }

  /// Default chunk grain for bulk launches: large enough to amortize
  /// scheduling, small enough to balance load.
  std::size_t grain_for(std::size_t n) const;

 private:
  std::shared_ptr<ThreadPool> pool_;  // shared so Context is cheaply copyable
  std::shared_ptr<Arena> arena_;
  std::shared_ptr<std::recursive_mutex> driver_mutex_;
};

}  // namespace emc::device
