// Least-significant-digit radix sort — the mgpu::mergesort stand-in.
//
// The Euler tour construction sorts the directed half-edge array
// lexicographically (§2.1, "the costly sorting"); we sort 64-bit packed
// (src, dst) keys carrying a 32-bit payload. Classic parallel LSD radix
// sort with the per-pass kernels fused, the way tuned GPU sorts (onesweep
// and friends) fuse them:
//
//   * kernel 0 reads the keys once, producing the digit-0 histograms AND
//     the per-chunk maximum key (so the pass count adapts to the bits
//     actually present without the separate reduce the old code paid);
//   * each pass is then ONE scatter kernel: while an element streams to its
//     slot, the kernel also bins the element's *next* digit into the
//     per-worker histogram of the output chunk the slot lands in, so the
//     following pass starts with its histograms already built. Per-worker
//     tables (via parallel_for_worker) keep the accumulation free of atomic
//     contention; the host merges them between passes, like the tiny
//     chunk-base scan it already does.
//
// Double buffers and histograms live in the context arena: steady-state
// sorting performs no allocations. 8-bit digits; keys are (node id << 32 |
// node id) and node ids rarely use all 32 bits, so most sorts run 3-5
// passes instead of 8.
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "device/arena.hpp"
#include "device/context.hpp"
#include "device/primitives.hpp"

namespace emc::device {

namespace detail {

constexpr int kDigitBits = 8;
constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;

template <typename Key>
int radix_passes_for(Key max_key) {
  constexpr int kMaxBits = static_cast<int>(sizeof(Key) * 8);
  int bits = 1;
  while (bits < kMaxBits && (max_key >> bits) != 0) ++bits;
  return (bits + kDigitBits - 1) / kDigitBits;
}

/// Turns per-chunk digit counts into stable scatter bases, in place.
/// Column-major (digit d then chunk c) so each chunk owns a contiguous span
/// per digit.
inline void scan_scatter_bases(std::size_t* counts, std::size_t num_chunks) {
  std::size_t running = 0;
  for (std::size_t d = 0; d < kBuckets; ++d) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      std::size_t& cell = counts[c * kBuckets + d];
      const std::size_t count = cell;
      cell = running;
      running += count;
    }
  }
}

/// One fused radix pass: stable scatter by the digit at `shift`, and (when
/// `next_counts` is non-null) histogram the digit at `shift + kDigitBits`
/// of every scattered element into its output chunk's per-worker table.
/// `Value == void*` sentinel is avoided by a separate overload; this one
/// moves keys plus values.
template <typename Key, typename Value>
void scatter_pass(const Context& ctx, std::size_t n, std::size_t grain,
                  const Key* key_in, Key* key_out, const Value* value_in,
                  Value* value_out, std::size_t* counts,
                  std::size_t* next_counts, int shift) {
  const int next_shift = shift + kDigitBits;
  ctx.pool().parallel_for_worker(
      n, grain,
      [&](unsigned worker, std::size_t begin, std::size_t end) {
        std::size_t* local = counts + (begin / grain) * kBuckets;
        std::size_t* next_local =
            next_counts ? next_counts + worker * ((n + grain - 1) / grain) *
                                            kBuckets
                        : nullptr;
        for (std::size_t i = begin; i < end; ++i) {
          const Key k = key_in[i];
          const std::size_t slot = local[(k >> shift) & (kBuckets - 1)]++;
          key_out[slot] = k;
          if constexpr (!std::is_void_v<Value>) {
            value_out[slot] = value_in[i];
          }
          if (next_local) {
            ++next_local[(slot / grain) * kBuckets +
                         ((k >> next_shift) & (kBuckets - 1))];
          }
        }
      });
}

/// Core LSD loop shared by sort_pairs and sort_keys. Value may be void.
template <typename Key, typename Value>
void radix_sort(const Context& ctx, Key* keys, Value* values, std::size_t n) {
  if (n <= 1) return;
  const std::size_t grain = ctx.grain_for(n);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  const unsigned workers = ctx.workers();

  // Fusing the next pass's histogram into the scatter pays off while the
  // per-worker tables stay cache-resident; their size and the serial host
  // merge grow with workers x chunks (chunks itself ~4 x workers), so very
  // wide pools would spend more on the merge than the histogram kernel the
  // fusion removes. Past this budget, keep a separate histogram kernel.
  const std::size_t worker_table_cells = workers * num_chunks * kBuckets;
  const bool fuse_histograms =
      worker_table_cells * sizeof(std::size_t) <= (std::size_t{1} << 21);

  Arena::Scope scope(ctx.arena());
  Key* key_buf = scope.get<Key>(n);
  Value* value_buf = nullptr;
  if constexpr (!std::is_void_v<Value>) value_buf = scope.get<Value>(n);
  std::size_t* counts = scope.get<std::size_t>(num_chunks * kBuckets);
  std::size_t* worker_counts =
      fuse_histograms ? scope.get<std::size_t>(worker_table_cells) : nullptr;
  Key* chunk_max = scope.get<Key>(num_chunks);

  // Kernel 0: digit-0 histograms and the maximum key, one fused read.
  std::memset(counts, 0, num_chunks * kBuckets * sizeof(std::size_t));
  ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    std::size_t* local = counts + (begin / grain) * kBuckets;
    Key mx = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const Key k = keys[i];
      if (k > mx) mx = k;
      ++local[k & (kBuckets - 1)];
    }
    chunk_max[begin / grain] = mx;
  });
  Key max_key = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (chunk_max[c] > max_key) max_key = chunk_max[c];
  }
  const int passes = radix_passes_for(max_key);

  Key* key_in = keys;
  Key* key_out = key_buf;
  Value* value_in = values;
  Value* value_out = value_buf;

  for (int pass = 0; pass < passes; ++pass) {
    scan_scatter_bases(counts, num_chunks);
    const bool histogram_next = pass + 1 < passes;
    std::size_t* next_counts =
        histogram_next && fuse_histograms ? worker_counts : nullptr;
    if (next_counts) {
      std::memset(next_counts, 0, worker_table_cells * sizeof(std::size_t));
    }
    scatter_pass(ctx, n, grain, key_in, key_out, value_in, value_out, counts,
                 next_counts, pass * kDigitBits);
    if (next_counts) {
      // Merge the per-worker tables into the next pass's chunk histograms.
      std::memset(counts, 0, num_chunks * kBuckets * sizeof(std::size_t));
      for (unsigned w = 0; w < workers; ++w) {
        const std::size_t* src = next_counts + w * num_chunks * kBuckets;
        for (std::size_t cell = 0; cell < num_chunks * kBuckets; ++cell) {
          counts[cell] += src[cell];
        }
      }
    } else if (histogram_next) {
      // Wide-pool fallback: classic standalone histogram of the scattered
      // output, one read pass.
      const int next_shift = (pass + 1) * kDigitBits;
      std::memset(counts, 0, num_chunks * kBuckets * sizeof(std::size_t));
      ctx.pool().parallel_for(
          n, grain, [&](std::size_t begin, std::size_t end) {
            std::size_t* local = counts + (begin / grain) * kBuckets;
            for (std::size_t i = begin; i < end; ++i) {
              ++local[(key_out[i] >> next_shift) & (kBuckets - 1)];
            }
          });
    }
    std::swap(key_in, key_out);
    if constexpr (!std::is_void_v<Value>) std::swap(value_in, value_out);
  }
  if (key_in != keys) {
    launch(ctx, n, [&](std::size_t i) {
      keys[i] = key_in[i];
      if constexpr (!std::is_void_v<Value>) values[i] = value_in[i];
    });
  }
}

}  // namespace detail

/// Sorts keys[0, n) ascending, permuting values alongside. Stable.
template <typename Key, typename Value>
void sort_pairs(const Context& ctx, Key* keys, Value* values, std::size_t n) {
  detail::radix_sort<Key, Value>(ctx, keys, values, n);
}

/// Sorts keys[0, n) ascending. Stable.
template <typename Key>
void sort_keys(const Context& ctx, Key* keys, std::size_t n) {
  detail::radix_sort<Key, void>(ctx, keys, nullptr, n);
}

/// Vector conveniences (the pointer forms are the primary API — they let
/// callers sort arena-resident scratch).
template <typename Key, typename Value>
void sort_pairs(const Context& ctx, std::vector<Key>& keys,
                std::vector<Value>& values) {
  sort_pairs(ctx, keys.data(), values.data(), keys.size());
}

template <typename Key>
void sort_keys(const Context& ctx, std::vector<Key>& keys) {
  sort_keys(ctx, keys.data(), keys.size());
}

}  // namespace emc::device
