// Least-significant-digit radix sort — the mgpu::mergesort stand-in.
//
// The Euler tour construction sorts the directed half-edge array
// lexicographically (§2.1, "the costly sorting"); we sort 64-bit packed
// (src, dst) keys carrying a 32-bit payload. Classic parallel LSD radix
// sort: per pass, (1) per-chunk digit histograms, (2) a small sequential
// scan over chunk×digit counts giving every chunk its stable scatter bases,
// (3) parallel stable scatter. 8-bit digits; the number of passes adapts to
// the highest set bit actually present, which matters because keys are
// (node id << 32 | node id) and node ids rarely use all 32 bits.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"

namespace emc::device {

namespace detail {

template <typename Key>
int radix_passes_for(const Context& ctx, const Key* keys, std::size_t n) {
  const Key max_key = reduce(
      ctx, n, Key{0}, [&](std::size_t i) { return keys[i]; },
      [](Key a, Key b) { return a > b ? a : b; });
  constexpr int kMaxBits = static_cast<int>(sizeof(Key) * 8);
  int bits = 1;
  while (bits < kMaxBits && (max_key >> bits) != 0) ++bits;
  return (bits + 7) / 8;
}

}  // namespace detail

/// Sorts `keys` ascending, permuting `values` alongside. Stable.
template <typename Key, typename Value>
void sort_pairs(const Context& ctx, std::vector<Key>& keys,
                std::vector<Value>& values) {
  const std::size_t n = keys.size();
  if (n <= 1) return;
  constexpr int kDigitBits = 8;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  const int passes = detail::radix_passes_for(ctx, keys.data(), n);

  std::vector<Key> key_buf(n);
  std::vector<Value> value_buf(n);
  Key* key_in = keys.data();
  Key* key_out = key_buf.data();
  Value* value_in = values.data();
  Value* value_out = value_buf.data();

  const std::size_t grain = ctx.grain_for(n);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::size_t> counts(num_chunks * kBuckets);

  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * kDigitBits;
    std::fill(counts.begin(), counts.end(), 0);
    ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      std::size_t* local = counts.data() + (begin / grain) * kBuckets;
      for (std::size_t i = begin; i < end; ++i) {
        ++local[(key_in[i] >> shift) & (kBuckets - 1)];
      }
    });
    // Column-major exclusive scan: for digit d then chunk c, so that each
    // chunk scatters stably into its own reserved span.
    std::size_t running = 0;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      for (std::size_t c = 0; c < num_chunks; ++c) {
        std::size_t& cell = counts[c * kBuckets + d];
        const std::size_t count = cell;
        cell = running;
        running += count;
      }
    }
    ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      std::size_t* local = counts.data() + (begin / grain) * kBuckets;
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t slot = local[(key_in[i] >> shift) & (kBuckets - 1)]++;
        key_out[slot] = key_in[i];
        value_out[slot] = value_in[i];
      }
    });
    std::swap(key_in, key_out);
    std::swap(value_in, value_out);
  }
  if (key_in != keys.data()) {
    launch(ctx, n, [&](std::size_t i) {
      keys[i] = key_in[i];
      values[i] = value_in[i];
    });
  }
}

/// Sorts `keys` ascending. Stable.
template <typename Key>
void sort_keys(const Context& ctx, std::vector<Key>& keys) {
  // Payload-free specialization kept simple by reusing sort_pairs' machinery
  // with a zero-size-cost dummy is not worth the template complexity; a
  // narrow payload of bytes would still double memory traffic. Inline the
  // same loop without values instead.
  const std::size_t n = keys.size();
  if (n <= 1) return;
  constexpr int kDigitBits = 8;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  const int passes = detail::radix_passes_for(ctx, keys.data(), n);

  std::vector<Key> key_buf(n);
  Key* key_in = keys.data();
  Key* key_out = key_buf.data();

  const std::size_t grain = ctx.grain_for(n);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<std::size_t> counts(num_chunks * kBuckets);

  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * kDigitBits;
    std::fill(counts.begin(), counts.end(), 0);
    ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      std::size_t* local = counts.data() + (begin / grain) * kBuckets;
      for (std::size_t i = begin; i < end; ++i) {
        ++local[(key_in[i] >> shift) & (kBuckets - 1)];
      }
    });
    std::size_t running = 0;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      for (std::size_t c = 0; c < num_chunks; ++c) {
        std::size_t& cell = counts[c * kBuckets + d];
        const std::size_t count = cell;
        cell = running;
        running += count;
      }
    }
    ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      std::size_t* local = counts.data() + (begin / grain) * kBuckets;
      for (std::size_t i = begin; i < end; ++i) {
        key_out[local[(key_in[i] >> shift) & (kBuckets - 1)]++] = key_in[i];
      }
    });
    std::swap(key_in, key_out);
  }
  if (key_in != keys.data()) {
    launch(ctx, n, [&](std::size_t i) { keys[i] = key_in[i]; });
  }
}

}  // namespace emc::device
