// Segmented reduction — the mgpu::segreduce stand-in.
//
// The Tarjan-Vishkin implementation uses segreduce to compute, per node, the
// minimum and maximum preorder number among its non-tree neighbors (§4.1).
// Segments are described by an offsets array of s+1 entries
// (offsets[0] = 0, offsets[s] = n); segment i covers
// values[offsets[i] .. offsets[i+1]). Empty segments get the identity.
#pragma once

#include <cstddef>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"

namespace emc::device {

/// out[i] = op-fold of values over segment i, starting from `identity`.
/// `out` must have room for `num_segments` entries.
template <typename T, typename Offset, typename Op>
void segreduce(const Context& ctx, const T* values, const Offset* offsets,
               std::size_t num_segments, T identity, Op&& op, T* out) {
  // One launch over segments: each segment is reduced by a single virtual
  // thread. Work is proportional to n overall; load imbalance across very
  // skewed segments is handled by the dynamic chunk scheduler.
  launch(ctx, num_segments, [&](std::size_t s) {
    T acc = identity;
    for (Offset i = offsets[s]; i < offsets[s + 1]; ++i) {
      acc = op(acc, values[i]);
    }
    out[s] = acc;
  });
}

/// Convenience min/max segreduce pair used by the bridges code.
template <typename T, typename Offset>
void segreduce_min_max(const Context& ctx, const T* values,
                       const Offset* offsets, std::size_t num_segments,
                       T min_identity, T max_identity, T* out_min, T* out_max) {
  launch(ctx, num_segments, [&](std::size_t s) {
    T lo = min_identity;
    T hi = max_identity;
    for (Offset i = offsets[s]; i < offsets[s + 1]; ++i) {
      const T v = values[i];
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    out_min[s] = lo;
    out_max[s] = hi;
  });
}

}  // namespace emc::device
