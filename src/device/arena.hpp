// Reusable scratch arena — the device-memory pool of the simulation.
//
// Every primitive (reduce partials, scan chunk states, sort histograms and
// double buffers) used to allocate fresh std::vector scratch per call; on a
// real GPU that is a cudaMalloc in the middle of a pipeline, exactly what
// tuned libraries avoid by pooling temporary storage. The arena hands out
// typed, cacheline-aligned slots with bump-pointer cost, and scopes restore
// the cursor on exit so back-to-back calls reuse the same bytes. Once the
// high-water mark stops growing, steady state performs zero allocations.
//
// Discipline (stack-shaped, matching nested primitive calls):
//   Arena::Scope scope(ctx.arena());     // open one scope per routine
//   T* slot = scope.get<T>(n);           // uninitialized, valid until the
//                                        // scope closes
// Nested routines open their own scopes; their slots die before the parent
// allocates again, so parent slots are never invalidated. The arena is not
// thread-safe: like the pool, a Context is driven by one host thread (kernel
// code must never touch the arena).
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/failpoint.hpp"

namespace emc::device {

class Arena {
 public:
  /// Cacheline alignment: distinct slots never share a line, so per-chunk
  /// scratch (partials, chunk states) cannot false-share.
  static constexpr std::size_t kAlign = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  class Scope {
   public:
    explicit Scope(Arena& arena)
        : arena_(arena),
          saved_block_(arena.active_),
          saved_used_(arena.blocks_.empty()
                          ? 0
                          : arena.blocks_[arena.active_].used) {
      ++arena_.depth_;
    }

    ~Scope() {
      for (std::size_t b = saved_block_ + 1; b < arena_.blocks_.size(); ++b) {
        arena_.blocks_[b].used = 0;
      }
      if (!arena_.blocks_.empty()) {
        arena_.blocks_[saved_block_].used = saved_used_;
      }
      arena_.active_ = saved_block_;
      if (--arena_.depth_ == 0) arena_.consolidate();
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    template <typename T>
    T* get(std::size_t count) {
      return arena_.get<T>(count);
    }

   private:
    Arena& arena_;
    std::size_t saved_block_;
    std::size_t saved_used_;
  };

  /// Returns an uninitialized slot for `count` objects of T, valid until the
  /// innermost open Scope closes.
  template <typename T>
  T* get(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena slots hold plain scratch data");
    static_assert(alignof(T) <= kAlign);
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  /// Number of backing-store allocations performed so far. Stable across
  /// repeated identically-sized call sequences once warmed up — the property
  /// the steady-state tests pin down.
  std::size_t block_allocations() const { return block_allocations_; }

  /// Total bytes of backing store currently held.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.capacity;
    return total;
  }

  /// Releases all backing store (no scope may be open).
  void release() {
    blocks_.clear();
    active_ = 0;
  }

 private:
  struct Deleter {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t(kAlign));
    }
  };

  struct Block {
    std::unique_ptr<std::byte[], Deleter> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kMinBlock = std::size_t{1} << 16;

  static std::size_t round_up(std::size_t bytes) {
    return (bytes + (kAlign - 1)) & ~(kAlign - 1);
  }

  void* allocate(std::size_t bytes) {
    bytes = round_up(bytes);
    // Advance the cursor to the first block from `active_` on with room.
    // Blocks past the cursor are always empty (scopes reset them).
    while (active_ < blocks_.size() &&
           blocks_[active_].used + bytes > blocks_[active_].capacity) {
      ++active_;
    }
    if (active_ == blocks_.size()) {
      const std::size_t grown =
          std::max({bytes, kMinBlock, 2 * capacity()});
      blocks_.push_back(make_block(grown));
    }
    Block& block = blocks_[active_];
    void* slot = block.data.get() + block.used;
    block.used += bytes;
    return slot;
  }

  Block make_block(std::size_t bytes) {
    // Failpoint: simulated device OOM at the backing-store chokepoint. Bump
    // allocations from warm blocks stay fault-free, matching a real pool
    // (only growth talks to the driver).
    if (util::failpoint::should_fail(util::failpoint::kArenaAlloc)) {
      throw std::bad_alloc{};
    }
    Block block;
    block.data.reset(static_cast<std::byte*>(
        ::operator new[](bytes, std::align_val_t(kAlign))));
    block.capacity = bytes;
    ++block_allocations_;
    return block;
  }

  /// Called when the outermost scope closes: collapse a fragmented block
  /// chain into one block large enough for the whole previous cycle, so the
  /// next cycle bump-allocates from a single block and never mallocs.
  void consolidate() {
    if (blocks_.size() <= 1) return;
    const std::size_t total = capacity();
    blocks_.clear();
    blocks_.push_back(make_block(total));
    active_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  int depth_ = 0;
  std::size_t block_allocations_ = 0;
};

}  // namespace emc::device
