// Persistent worker pool used to execute "device kernels".
//
// The pool plays the role of the CUDA runtime in this reproduction: a kernel
// launch maps to a bulk parallel-for over a virtual grid, executed by a fixed
// set of worker threads, and returning from the launch is the global barrier
// that separates kernels (exactly the synchronization structure GPU
// algorithms are written against). Chunks are handed out dynamically via an
// atomic counter, which mirrors how thread blocks are scheduled onto SMs.
//
// Launches are allocation-free: kernels arrive as non-owning FunctionRef
// handles (the caller blocks until the barrier, so the callable outlives the
// launch by construction), and dispatch writes two pointers into the job
// slot. No std::function — and therefore no heap — sits on the launch path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "device/function_ref.hpp"

namespace emc::device {

class ThreadPool {
 public:
  /// Kernel body: processes the half-open chunk [begin, end).
  using ChunkFn = FunctionRef<void(std::size_t, std::size_t)>;
  /// Kernel body that also receives the executing worker's index, for
  /// kernels that keep per-worker scratch (e.g. sort digit histograms).
  using WorkerChunkFn =
      FunctionRef<void(unsigned, std::size_t, std::size_t)>;
  /// Per-worker body for run_on_workers.
  using WorkerFn = FunctionRef<void(unsigned)>;

  /// Creates a pool with `workers` total workers (including the caller, who
  /// participates in every launch). workers == 1 means fully inline
  /// execution with no extra threads.
  ///
  /// `launch_overhead_seconds` models the fixed kernel-launch + global-
  /// barrier cost a real GPU pays per kernel (~5-10us on the paper's
  /// GTX 980). It is charged once per parallel_for/run_on_workers call; it
  /// is what makes level-synchronous BFS diameter-bound and tiny query
  /// batches wasteful on the device, exactly as in the paper's Figures 6
  /// and 9-11. CPU contexts use 0.
  explicit ThreadPool(unsigned workers, double launch_overhead_seconds = 0.0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return workers_; }

  /// Runs f(chunk_begin, chunk_end) over [0, n) split into chunks of at most
  /// `grain` elements. Returns once every chunk has completed (barrier).
  /// f must be safe to call concurrently on disjoint ranges.
  void parallel_for(std::size_t n, std::size_t grain, ChunkFn f);

  /// As parallel_for, but f also receives the executing worker's index in
  /// [0, workers()). A worker may process many chunks; the index lets
  /// kernels accumulate into contention-free per-worker scratch.
  void parallel_for_worker(std::size_t n, std::size_t grain, WorkerChunkFn f);

  /// Runs f(worker_index) once on each of the pool's workers in parallel.
  void run_on_workers(WorkerFn f);

  double launch_overhead() const { return launch_overhead_seconds_; }

  /// Total kernel launches issued so far (every parallel_for /
  /// parallel_for_worker / run_on_workers counts as one). Snapshot before
  /// and after a pipeline to measure how many launch-overhead charges it
  /// pays — the figure the breakdown benchmark reports.
  std::uint64_t launch_count() const {
    return launch_count_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(unsigned index);
  void work_on_current_job(unsigned worker_index);
  void charge_launch_overhead();
  void dispatch_and_wait();

  struct Job {
    ChunkFn chunk_fn;
    WorkerChunkFn worker_chunk_fn;
    WorkerFn worker_fn;
    std::size_t n = 0;
    std::size_t grain = 0;
    std::size_t num_chunks = 0;
  };

  const unsigned workers_;
  const double launch_overhead_seconds_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job job_;
  std::uint64_t epoch_ = 0;     // incremented per launch; wakes workers
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<std::size_t> pending_workers_{0};
  std::atomic<std::uint64_t> launch_count_{0};
  bool shutdown_ = false;
};

}  // namespace emc::device
