// Non-owning callable reference — the allocation-free kernel handle.
//
// A kernel launch hands the pool a callable whose lifetime spans the launch
// (the launch returns only after the barrier), so owning type erasure is
// pure overhead: std::function may heap-allocate captures on every launch
// and defeats the "a launch is two pointer writes" property real GPU
// runtimes have. FunctionRef stores one object pointer and one invoke
// thunk, is trivially copyable, and never allocates.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace emc::device {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  /// Binds to any callable. The callable must outlive every invocation —
  /// true for kernel launches, which block until the last chunk finishes.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void* object_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace emc::device
