// Bulk data-parallel primitives — the moderngpu stand-in.
//
// The paper leans on the moderngpu library for sort, scan and segreduce
// ("Using the library throughout the implementation saves us the burden of
// low-level fine tuning", §2.2). This header provides the same primitive set
// over the thread-pool device simulation:
//
//   launch        — bulk kernel over [0, n)          (cta/thread grid)
//   transform     — map                              (mgpu::transform)
//   reduce        — reduction                        (mgpu::reduce)
//   *_scan        — array prefix sums                (mgpu::scan)
//   gather/scatter
//   copy_if_index — stream compaction
//
// Tuning mirrors what the real library does for the GPU:
//   * scratch (reduce partials, scan chunk states) comes from the context's
//     arena, never from a per-call allocation;
//   * scans and compaction are SINGLE kernels using the chained-scan
//     ("decoupled lookback") structure — each chunk publishes its running
//     prefix and the next chunk picks it up in the same launch — instead of
//     the classic two-kernel upsweep/downsweep, halving the per-call
//     launch-overhead charge;
//   * the scan inner loop breaks the carry chain with tree partials and,
//     where the architecture allows, writes through non-temporal stores so
//     the output array does not pay a read-for-ownership.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <thread>
#include <type_traits>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "device/arena.hpp"
#include "device/context.hpp"

namespace emc::device {

/// Bulk kernel: runs f(i) for every i in [0, n).
template <typename F>
void launch(const Context& ctx, std::size_t n, F&& f) {
  ctx.pool().parallel_for(n, ctx.grain_for(n),
                          [&f](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) f(i);
                          });
}

/// out[i] = f(i). `out` may alias inputs of f only elementwise.
template <typename T, typename F>
void transform(const Context& ctx, std::size_t n, T* out, F&& f) {
  launch(ctx, n, [&](std::size_t i) { out[i] = f(i); });
}

template <typename T>
void fill(const Context& ctx, std::size_t n, T* out, T value) {
  launch(ctx, n, [&](std::size_t i) { out[i] = value; });
}

template <typename T>
void iota(const Context& ctx, std::size_t n, T* out) {
  launch(ctx, n, [&](std::size_t i) { out[i] = static_cast<T>(i); });
}

namespace detail {

/// Per-chunk handoff cell for chained scans: `value` holds the inclusive
/// prefix over chunks [0..c] once `ready` is set. One cache line per chunk
/// so publishing never false-shares with a neighbor's spin.
template <typename T>
struct alignas(Arena::kAlign) ChunkState {
  T value;
  std::uint32_t ready;
};

/// Spin-then-yield: chunks are claimed in index order, so the predecessor is
/// always in flight, but its worker may be preempted on an oversubscribed
/// machine — yield keeps the wait bounded by a timeslice instead of burning
/// one.
inline void backoff(unsigned& spins) {
  if (++spins >= 64) {
    std::this_thread::yield();
    spins = 0;
  }
}

template <typename T>
bool chunk_ready(ChunkState<T>& state) {
  return std::atomic_ref<std::uint32_t>(state.ready).load(
             std::memory_order_acquire) != 0;
}

template <typename T>
void chunk_publish(ChunkState<T>& state, T value) {
  state.value = value;
  std::atomic_ref<std::uint32_t>(state.ready).store(1,
                                                    std::memory_order_release);
}

template <typename T>
T chunk_wait(ChunkState<T>& state) {
  unsigned spins = 0;
  std::atomic_ref<std::uint32_t> flag(state.ready);
  while (flag.load(std::memory_order_acquire) == 0) backoff(spins);
  return state.value;
}

template <typename T>
constexpr bool kStreamable =
    std::is_integral_v<T> && (sizeof(T) == 8 || sizeof(T) == 4);

/// Running prefix of in[0..count) written to out, starting from `carry`;
/// returns carry + sum(in). kInclusive picks out[i] = carry + sum(in[0..i])
/// versus sum(in[0..i)). The 4/8-wide blocks compute tree partials so the
/// loop-carried chain advances once per block, not once per element, and
/// `stream` (requires out not aliasing in) uses non-temporal stores to skip
/// the read-for-ownership on `out`.
template <bool kInclusive, typename T>
T prefix_block(const T* in, T* out, std::size_t count, T carry, bool stream) {
  std::size_t i = 0;
#if defined(__AVX2__)
  // In-register prefix via lane shifts (the classic Hillis-Steele step done
  // inside one vector), so the loop-carried chain is one broadcast+add per
  // vector instead of one add per element. Streaming variant additionally
  // skips the read-for-ownership on `out` with non-temporal stores.
  if constexpr (kStreamable<T>) {
    if (count >= 64) {
      constexpr std::size_t kLane = 32 / sizeof(T);
      if (stream) {
        // NT stores need 32-byte-aligned targets; peel scalar head.
        while ((reinterpret_cast<std::uintptr_t>(out + i) & 31) != 0) {
          const T v = in[i];
          if constexpr (kInclusive) {
            carry += v;
            out[i] = carry;
          } else {
            out[i] = carry;
            carry += v;
          }
          ++i;
        }
      }
      __m256i carry_v;
      if constexpr (sizeof(T) == 8) {
        carry_v = _mm256_set1_epi64x(static_cast<long long>(carry));
      } else {
        carry_v = _mm256_set1_epi32(static_cast<int>(carry));
      }
      const __m256i zero = _mm256_setzero_si256();
      for (; i + kLane <= count; i += kLane) {
        __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
        __m256i incl;
        if constexpr (sizeof(T) == 8) {
          v = _mm256_add_epi64(v, _mm256_slli_si256(v, 8));
          __m256i low = _mm256_permute4x64_epi64(v, 0x55);  // lane1 everywhere
          low = _mm256_blend_epi32(low, zero, 0x0F);        // only high 128
          v = _mm256_add_epi64(v, low);
          incl = _mm256_add_epi64(v, carry_v);
          __m256i store_v = incl;
          if constexpr (!kInclusive) {
            // Shift the inclusive prefix one lane up; lane 0 is the carry.
            store_v = _mm256_permute4x64_epi64(incl, 0x90);
            store_v = _mm256_blend_epi32(store_v, carry_v, 0x03);
          }
          if (stream) {
            _mm256_stream_si256(reinterpret_cast<__m256i*>(out + i), store_v);
          } else {
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), store_v);
          }
          carry_v = _mm256_permute4x64_epi64(incl, 0xFF);  // lane3 everywhere
        } else {
          v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
          v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));
          __m256i low = _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(3));
          low = _mm256_blend_epi32(low, zero, 0x0F);
          v = _mm256_add_epi32(v, low);
          incl = _mm256_add_epi32(v, carry_v);
          __m256i store_v = incl;
          if constexpr (!kInclusive) {
            store_v = _mm256_permutevar8x32_epi32(
                incl, _mm256_set_epi32(6, 5, 4, 3, 2, 1, 0, 0));
            store_v = _mm256_blend_epi32(store_v, carry_v, 0x01);
          }
          if (stream) {
            _mm256_stream_si256(reinterpret_cast<__m256i*>(out + i), store_v);
          } else {
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), store_v);
          }
          carry_v = _mm256_permutevar8x32_epi32(incl, _mm256_set1_epi32(7));
        }
      }
      if (stream) _mm_sfence();
      if constexpr (sizeof(T) == 8) {
        carry = static_cast<T>(_mm256_extract_epi64(carry_v, 0));
      } else {
        carry = static_cast<T>(_mm256_extract_epi32(carry_v, 0));
      }
    }
  }
#else
  (void)stream;
#endif
  // Tree-partial tail/fallback; reads the whole 4-block before writing it,
  // which also makes the in == out case safe.
  for (; i + 4 <= count; i += 4) {
    const T s0 = in[i], s1 = s0 + in[i + 1];
    const T s2 = in[i + 2], s3 = s2 + in[i + 3];
    if constexpr (kInclusive) {
      out[i] = carry + s0;
      out[i + 1] = carry + s1;
      out[i + 2] = carry + s1 + s2;
      out[i + 3] = carry + s1 + s3;
    } else {
      out[i] = carry;
      out[i + 1] = carry + s0;
      out[i + 2] = carry + s1;
      out[i + 3] = carry + s1 + s2;
    }
    carry += s1 + s3;
  }
  for (; i < count; ++i) {
    const T v = in[i];  // read before write: supports in == out
    if constexpr (kInclusive) {
      carry += v;
      out[i] = carry;
    } else {
      out[i] = carry;
      carry += v;
    }
  }
  return carry;
}

/// The chained-lookback protocol shared by scans and compaction: ONE kernel
/// whose chunks are claimed in index order. A chunk whose predecessor has
/// already published its running prefix (always true with one worker, the
/// common case under in-order dynamic scheduling) runs `emit` directly;
/// otherwise it computes its own contribution with `aggregate` so the wait
/// overlaps useful work, publishes early so successors unblock, then emits
/// over its (cache-warm) range.
///
/// aggregate(begin, end) -> the chunk's contribution alone;
/// emit(begin, end, base) -> processes the chunk given the prefix `base`
/// over all earlier chunks and returns base + contribution. Returns the
/// grand total. This is subtle lock-free code — keep every user on this one
/// copy.
template <typename T, typename AggregateFn, typename EmitFn>
T chunk_lookback(const Context& ctx, std::size_t n, AggregateFn&& aggregate,
                 EmitFn&& emit) {
  if (n == 0) return T{};
  const std::size_t grain = ctx.grain_for(n);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  Arena::Scope scope(ctx.arena());
  auto* state = scope.get<ChunkState<T>>(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) state[c].ready = 0;
  ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    const std::size_t c = begin / grain;
    T base{};
    if (c != 0) {
      if (chunk_ready(state[c - 1])) {
        base = state[c - 1].value;
      } else {
        const T local = aggregate(begin, end);
        base = chunk_wait(state[c - 1]);
        chunk_publish(state[c], static_cast<T>(base + local));
        emit(begin, end, base);
        return;
      }
    }
    chunk_publish(state[c], emit(begin, end, base));
  });
  return state[num_chunks - 1].value;
}

template <bool kInclusive, typename T>
T chained_scan(const Context& ctx, const T* in, std::size_t n, T* out) {
  const bool stream = in != out;
  return chunk_lookback<T>(
      ctx, n,
      [&](std::size_t begin, std::size_t end) {
        T local{};
        for (std::size_t i = begin; i < end; ++i) local += in[i];
        return local;
      },
      [&](std::size_t begin, std::size_t end, T base) {
        return prefix_block<kInclusive>(in + begin, out + begin, end - begin,
                                        base, stream);
      });
}

}  // namespace detail

/// Reduction of f(i) over [0, n) with operator `op` and identity `init`.
template <typename T, typename F, typename Op>
T reduce(const Context& ctx, std::size_t n, T init, F&& f, Op&& op) {
  if (n == 0) return init;
  const std::size_t grain = ctx.grain_for(n);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  Arena::Scope scope(ctx.arena());
  T* partial = scope.get<T>(num_chunks);
  ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = op(acc, f(i));
    partial[begin / grain] = acc;
  });
  T total = init;
  for (std::size_t c = 0; c < num_chunks; ++c) total = op(total, partial[c]);
  return total;
}

/// Sum of values[0, n).
template <typename T>
T reduce_sum(const Context& ctx, const T* values, std::size_t n) {
  return reduce(
      ctx, n, T{0}, [&](std::size_t i) { return values[i]; },
      [](T a, T b) { return a + b; });
}

/// Exclusive prefix sum: out[i] = sum of in[0..i). Returns the grand total.
/// in == out aliasing is allowed.
template <typename T>
T exclusive_scan(const Context& ctx, const T* in, std::size_t n, T* out) {
  return detail::chained_scan<false>(ctx, in, n, out);
}

/// Inclusive prefix sum: out[i] = sum of in[0..i]. Returns the grand total.
/// in == out aliasing is allowed.
template <typename T>
T inclusive_scan(const Context& ctx, const T* in, std::size_t n, T* out) {
  return detail::chained_scan<true>(ctx, in, n, out);
}

/// out[i] = in[index[i]].
template <typename T, typename I>
void gather(const Context& ctx, const T* in, const I* index, std::size_t n,
            T* out) {
  launch(ctx, n, [&](std::size_t i) { out[i] = in[index[i]]; });
}

/// out[index[i]] = in[i]. Indices must be distinct.
template <typename T, typename I>
void scatter(const Context& ctx, const T* in, const I* index, std::size_t n,
             T* out) {
  launch(ctx, n, [&](std::size_t i) { out[index[i]] = in[i]; });
}

/// Stream compaction: writes the indices i in [0, n) with pred(i) true, in
/// increasing order, to `out_indices` (must have room for n entries).
/// Returns the number written.
///
/// Single chained kernel (the flag/scan/scatter trio fused): each chunk
/// learns how many indices earlier chunks selected, then appends its own.
/// pred must be pure — a chunk that has to wait evaluates it twice.
template <typename I, typename Pred>
std::size_t copy_if_index(const Context& ctx, std::size_t n, Pred&& pred,
                          I* out_indices) {
  return detail::chunk_lookback<std::size_t>(
      ctx, n,
      [&](std::size_t begin, std::size_t end) {
        std::size_t local = 0;
        for (std::size_t i = begin; i < end; ++i) local += pred(i) ? 1 : 0;
        return local;
      },
      [&](std::size_t begin, std::size_t end, std::size_t base) {
        for (std::size_t i = begin; i < end; ++i) {
          if (pred(i)) out_indices[base++] = static_cast<I>(i);
        }
        return base;
      });
}

/// Device-style atomic min on a plain integer location.
template <typename T>
void atomic_min(T* location, T value) {
  std::atomic_ref<T> ref(*location);
  T current = ref.load(std::memory_order_relaxed);
  while (value < current &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Device-style atomic max on a plain integer location.
template <typename T>
void atomic_max(T* location, T value) {
  std::atomic_ref<T> ref(*location);
  T current = ref.load(std::memory_order_relaxed);
  while (value > current &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Device-style atomic compare-and-swap; returns the previous value.
template <typename T>
T atomic_cas(T* location, T expected, T desired) {
  std::atomic_ref<T> ref(*location);
  ref.compare_exchange_strong(expected, desired, std::memory_order_acq_rel);
  return expected;
}

}  // namespace emc::device
