// Bulk data-parallel primitives — the moderngpu stand-in.
//
// The paper leans on the moderngpu library for sort, scan and segreduce
// ("Using the library throughout the implementation saves us the burden of
// low-level fine tuning", §2.2). This header provides the same primitive set
// over the thread-pool device simulation:
//
//   launch        — bulk kernel over [0, n)          (cta/thread grid)
//   transform     — map                              (mgpu::transform)
//   reduce        — reduction                        (mgpu::reduce)
//   *_scan        — array prefix sums                (mgpu::scan)
//   gather/scatter
//   copy_if_index — stream compaction
//
// Every primitive is a sequence of bulk kernels separated by barriers, so
// work/depth match the GPU originals; scans use the classic two-pass
// (per-chunk partials, scan of partials, local rescan) structure.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "device/context.hpp"

namespace emc::device {

/// Bulk kernel: runs f(i) for every i in [0, n).
template <typename F>
void launch(const Context& ctx, std::size_t n, F&& f) {
  ctx.pool().parallel_for(n, ctx.grain_for(n),
                          [&f](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) f(i);
                          });
}

/// out[i] = f(i). `out` may alias inputs of f only elementwise.
template <typename T, typename F>
void transform(const Context& ctx, std::size_t n, T* out, F&& f) {
  launch(ctx, n, [&](std::size_t i) { out[i] = f(i); });
}

template <typename T>
void fill(const Context& ctx, std::size_t n, T* out, T value) {
  launch(ctx, n, [&](std::size_t i) { out[i] = value; });
}

template <typename T>
void iota(const Context& ctx, std::size_t n, T* out) {
  launch(ctx, n, [&](std::size_t i) { out[i] = static_cast<T>(i); });
}

/// Reduction of f(i) over [0, n) with operator `op` and identity `init`.
template <typename T, typename F, typename Op>
T reduce(const Context& ctx, std::size_t n, T init, F&& f, Op&& op) {
  if (n == 0) return init;
  const std::size_t grain = ctx.grain_for(n);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<T> partial(num_chunks, init);
  ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    T acc = init;
    for (std::size_t i = begin; i < end; ++i) acc = op(acc, f(i));
    partial[begin / grain] = acc;
  });
  T total = init;
  for (const T& p : partial) total = op(total, p);
  return total;
}

/// Sum of values[0, n).
template <typename T>
T reduce_sum(const Context& ctx, const T* values, std::size_t n) {
  return reduce(
      ctx, n, T{0}, [&](std::size_t i) { return values[i]; },
      [](T a, T b) { return a + b; });
}

/// Exclusive prefix sum: out[i] = sum of in[0..i). Returns the grand total.
/// in == out aliasing is allowed.
template <typename T>
T exclusive_scan(const Context& ctx, const T* in, std::size_t n, T* out) {
  if (n == 0) return T{0};
  const std::size_t grain = ctx.grain_for(n);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<T> partial(num_chunks);
  ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    T acc{0};
    for (std::size_t i = begin; i < end; ++i) acc += in[i];
    partial[begin / grain] = acc;
  });
  T total{0};
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const T chunk_sum = partial[c];
    partial[c] = total;
    total += chunk_sum;
  }
  ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    T acc = partial[begin / grain];
    for (std::size_t i = begin; i < end; ++i) {
      const T value = in[i];  // read before write: supports in == out
      out[i] = acc;
      acc += value;
    }
  });
  return total;
}

/// Inclusive prefix sum: out[i] = sum of in[0..i]. Returns the grand total.
template <typename T>
T inclusive_scan(const Context& ctx, const T* in, std::size_t n, T* out) {
  if (n == 0) return T{0};
  const std::size_t grain = ctx.grain_for(n);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  std::vector<T> partial(num_chunks);
  ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    T acc{0};
    for (std::size_t i = begin; i < end; ++i) acc += in[i];
    partial[begin / grain] = acc;
  });
  T total{0};
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const T chunk_sum = partial[c];
    partial[c] = total;
    total += chunk_sum;
  }
  ctx.pool().parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    T acc = partial[begin / grain];
    for (std::size_t i = begin; i < end; ++i) {
      acc += in[i];
      out[i] = acc;
    }
  });
  return total;
}

/// out[i] = in[index[i]].
template <typename T, typename I>
void gather(const Context& ctx, const T* in, const I* index, std::size_t n,
            T* out) {
  launch(ctx, n, [&](std::size_t i) { out[i] = in[index[i]]; });
}

/// out[index[i]] = in[i]. Indices must be distinct.
template <typename T, typename I>
void scatter(const Context& ctx, const T* in, const I* index, std::size_t n,
             T* out) {
  launch(ctx, n, [&](std::size_t i) { out[index[i]] = in[i]; });
}

/// Stream compaction: writes the indices i in [0, n) with pred(i) true, in
/// increasing order, to `out_indices` (must have room for n entries).
/// Returns the number written.
template <typename I, typename Pred>
std::size_t copy_if_index(const Context& ctx, std::size_t n, Pred&& pred,
                          I* out_indices) {
  if (n == 0) return 0;
  std::vector<I> flags(n);
  transform(ctx, n, flags.data(),
            [&](std::size_t i) { return static_cast<I>(pred(i) ? 1 : 0); });
  std::vector<I> offsets(n);
  const I total = exclusive_scan(ctx, flags.data(), n, offsets.data());
  launch(ctx, n, [&](std::size_t i) {
    if (flags[i]) out_indices[offsets[i]] = static_cast<I>(i);
  });
  return static_cast<std::size_t>(total);
}

/// Device-style atomic min on a plain integer location.
template <typename T>
void atomic_min(T* location, T value) {
  std::atomic_ref<T> ref(*location);
  T current = ref.load(std::memory_order_relaxed);
  while (value < current &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Device-style atomic max on a plain integer location.
template <typename T>
void atomic_max(T* location, T value) {
  std::atomic_ref<T> ref(*location);
  T current = ref.load(std::memory_order_relaxed);
  while (value > current &&
         !ref.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Device-style atomic compare-and-swap; returns the previous value.
template <typename T>
T atomic_cas(T* location, T expected, T desired) {
  std::atomic_ref<T> ref(*location);
  ref.compare_exchange_strong(expected, desired, std::memory_order_acq_rel);
  return expected;
}

}  // namespace emc::device
