#include "device/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/failpoint.hpp"

namespace emc::device {

ThreadPool::ThreadPool(unsigned workers, double launch_overhead_seconds)
    : workers_(std::max(1u, workers)),
      launch_overhead_seconds_(std::max(0.0, launch_overhead_seconds)) {
  threads_.reserve(workers_ - 1);
  for (unsigned i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++epoch_;
  }
  wake_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::charge_launch_overhead() {
  // Failpoint: every launch path (parallel_for / parallel_for_worker /
  // run_on_workers) funnels through here, before any job state is written,
  // so an injected launch failure leaves the pool reusable.
  util::failpoint::maybe_throw(util::failpoint::kDeviceLaunch);
  launch_count_.fetch_add(1, std::memory_order_relaxed);
  if (launch_overhead_seconds_ <= 0.0) return;
  // Busy-wait: the latency is serial on a real device (the host cannot see
  // results before launch + barrier complete), so sleeping would understate
  // contention and spinning matches the modeled cost precisely.
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(launch_overhead_seconds_));
  while (std::chrono::steady_clock::now() < until) {
  }
}

void ThreadPool::dispatch_and_wait() {
  wake_.notify_all();
  work_on_current_job(0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock,
             [this] { return pending_workers_.load(std::memory_order_acquire) ==
                             0; });
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain, ChunkFn f) {
  charge_launch_overhead();
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  // Inline fast path: one worker, or work too small to amortize a barrier.
  if (workers_ == 1 || num_chunks == 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * grain;
      f(begin, std::min(n, begin + grain));
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.chunk_fn = f;
    job_.worker_chunk_fn = WorkerChunkFn();
    job_.worker_fn = WorkerFn();
    job_.n = n;
    job_.grain = grain;
    job_.num_chunks = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_workers_.store(workers_, std::memory_order_relaxed);
    ++epoch_;
  }
  dispatch_and_wait();
}

void ThreadPool::parallel_for_worker(std::size_t n, std::size_t grain,
                                     WorkerChunkFn f) {
  charge_launch_overhead();
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t num_chunks = (n + grain - 1) / grain;
  if (workers_ == 1 || num_chunks == 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * grain;
      f(0, begin, std::min(n, begin + grain));
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.chunk_fn = ChunkFn();
    job_.worker_chunk_fn = f;
    job_.worker_fn = WorkerFn();
    job_.n = n;
    job_.grain = grain;
    job_.num_chunks = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_workers_.store(workers_, std::memory_order_relaxed);
    ++epoch_;
  }
  dispatch_and_wait();
}

void ThreadPool::run_on_workers(WorkerFn f) {
  charge_launch_overhead();
  if (workers_ == 1) {
    f(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.chunk_fn = ChunkFn();
    job_.worker_chunk_fn = WorkerChunkFn();
    job_.worker_fn = f;
    job_.num_chunks = 0;
    pending_workers_.store(workers_, std::memory_order_relaxed);
    ++epoch_;
  }
  dispatch_and_wait();
}

void ThreadPool::work_on_current_job(unsigned worker_index) {
  if (job_.worker_fn) {
    job_.worker_fn(worker_index);
  } else if (job_.worker_chunk_fn) {
    while (true) {
      const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= job_.num_chunks) break;
      const std::size_t begin = c * job_.grain;
      job_.worker_chunk_fn(worker_index, begin,
                           std::min(job_.n, begin + job_.grain));
    }
  } else {
    while (true) {
      const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= job_.num_chunks) break;
      const std::size_t begin = c * job_.grain;
      job_.chunk_fn(begin, std::min(job_.n, begin + job_.grain));
    }
  }
  if (pending_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_.notify_all();
  }
}

void ThreadPool::worker_loop(unsigned index) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock,
                 [this, seen_epoch] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    work_on_current_job(index);
  }
}

}  // namespace emc::device
