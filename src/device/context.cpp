#include "device/context.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace emc::device {

namespace {

unsigned default_workers() {
  // EMC_WORKERS is taken only when it parses completely as a positive,
  // sane worker count; anything else (empty, non-numeric, trailing junk,
  // zero, negative, absurd) falls back to hardware concurrency so a typo in
  // a job script degrades gracefully instead of silently serializing or
  // spawning thousands of threads.
  constexpr long kMaxWorkers = 4096;
  if (const char* env = std::getenv("EMC_WORKERS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= kMaxWorkers) {
      return static_cast<unsigned>(parsed);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

Context::Context(unsigned workers, double launch_overhead_seconds)
    : pool_(std::make_shared<ThreadPool>(
          workers == 0 ? default_workers() : workers,
          launch_overhead_seconds)),
      arena_(std::make_shared<Arena>()),
      driver_mutex_(std::make_shared<std::recursive_mutex>()) {}

double Context::device_launch_overhead() {
  // Default 50us: the GTX 980's ~5us launch+sync latency scaled by the
  // roughly 10-100x throughput gap between that GPU and one CPU core, so
  // the latency-to-work ratio — which decides the diameter-bound behaviors
  // in Figures 6 and 9-11 — is preserved rather than the absolute number.
  // Override with EMC_KERNEL_LATENCY_US (0 disables the model).
  double overhead_us = 50.0;
  if (const char* env = std::getenv("EMC_KERNEL_LATENCY_US")) {
    overhead_us = std::strtod(env, nullptr);
  }
  return overhead_us * 1e-6;
}

Context Context::device() { return Context(0, device_launch_overhead()); }

std::size_t Context::grain_for(std::size_t n) const {
  // Aim for ~4 chunks per worker so dynamic scheduling can balance load,
  // but never chunks smaller than 1024 elements.
  const std::size_t target_chunks = std::size_t{4} * workers();
  const std::size_t grain = (n + target_chunks - 1) / std::max<std::size_t>(
                                                          1, target_chunks);
  return std::max<std::size_t>(1024, grain);
}

}  // namespace emc::device
