// emc::serve — concurrent request serving on top of engine::View.
//
// The engine gives snapshot isolation (epoch-pinned Views); this layer
// gives it a front door for heavy traffic: clients submit() typed requests
// and get a std::future back, worker threads drain a queue of pending
// requests and answer them against the CURRENT View, and a writer thread
// publishes fresher Views as the graph advances — submission never blocks
// on graph updates, updates never block on in-flight answers.
//
// The throughput mechanism is REQUEST COALESCING. Point-query traffic
// arrives as many small batches (often single pairs); answered one by one
// on the device, each batch pays a full kernel launch — the exact
// left-edge-of-Figure-6 regime the paper shows is launch-bound. The
// dispatcher instead merges every queued request of the same type (up to
// `max_coalesce`, optionally waiting `coalesce_window` for stragglers)
// into ONE payload, answers it with one View::run — one bulk kernel, or
// one host loop — and scatters the answer slices back to the individual
// futures. K coalesced requests thus cost one launch instead of K, which
// is precisely the amortization the paper's batched-query figures predict;
// whole-graph requests (Bridges, TwoEcc) coalesce even harder, one answer
// broadcast to every waiter.
//
// Ordering/consistency: answers are computed against the View current at
// DRAIN time, whose epoch is reported in the Reply envelope — a client
// that must not see an epoch older than X checks reply.epoch. Requests of
// the same type are answered FIFO; across types the oldest pending request
// picks which lane drains next.
//
// Threading: submit(), publish(), current_view() and stats() are safe from
// any thread. stop() (also run by the destructor) answers everything still
// queued, then joins the workers — no future is ever abandoned; a submit()
// racing stop() is answered synchronously by the caller.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bridges/bridges.hpp"
#include "engine/engine.hpp"
#include "util/types.hpp"

namespace emc::serve {

/// Answer envelope: the value plus the epoch of the View that served it.
template <typename T>
struct Reply {
  T value{};
  std::uint64_t epoch = 0;
};

/// Value-type answer for TwoEcc requests (the engine's TwoEccView points
/// into a live index — a future outliving the View needs a copy).
struct TwoEccSummary {
  std::size_t num_blocks = 0;
  std::size_t num_bridges = 0;
};

struct DispatcherOptions {
  /// Worker threads draining the queue.
  unsigned workers = 2;
  /// After popping the first pending request of a type, wait up to this
  /// long for more of the same type to coalesce with (0 = merge only what
  /// is already queued — opportunistic coalescing, no added latency).
  std::chrono::microseconds coalesce_window{0};
  /// Largest number of requests merged into one answer round; 1 disables
  /// coalescing entirely (the per-request baseline bench_serve compares
  /// against).
  std::size_t max_coalesce = 4096;
  /// Construct with the workers parked; no request is drained until
  /// resume(). Lets tests/benches enqueue a burst first, making coalescing
  /// deterministic.
  bool start_paused = false;
};

struct DispatcherStats {
  std::size_t submitted = 0;
  std::size_t answered = 0;
  /// Answer rounds (each is one View::run — one bulk kernel or host loop).
  std::size_t rounds = 0;
  /// Requests that shared their round with at least one other request.
  std::size_t coalesced_requests = 0;
  std::size_t max_round = 0;  // largest round, in requests
  std::size_t views_published = 0;
};

class Dispatcher {
 public:
  /// Starts `options.workers` drain threads answering against `view`.
  explicit Dispatcher(engine::View view,
                      const DispatcherOptions& options = {});
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Installs the View subsequent rounds answer against (the writer-side
  /// publish step). In-flight rounds finish on the View they took.
  void publish(engine::View view);
  engine::View current_view() const;

  // submit(): enqueue and return the future. Coalescable query types merge
  // with same-type neighbors; Bridges/TwoEcc answer once per round and
  // broadcast. The Bridges reply owns a COPY of the mask.
  std::future<Reply<std::vector<std::uint8_t>>> submit(engine::Same2Ecc request);
  std::future<Reply<std::vector<NodeId>>> submit(engine::BridgesOnPath request);
  std::future<Reply<std::vector<NodeId>>> submit(engine::ComponentSize request);
  std::future<Reply<std::vector<NodeId>>> submit(engine::LcaBatch request);
  std::future<Reply<bridges::BridgeMask>> submit(engine::Bridges request);
  std::future<Reply<TwoEccSummary>> submit(engine::TwoEcc request);

  /// Releases start_paused workers.
  void resume();

  /// Answers everything still queued, then joins the workers. Idempotent;
  /// the destructor calls it.
  void stop();

  DispatcherStats stats() const;

 private:
  template <typename Req, typename Ans>
  struct Item {
    std::uint64_t seq = 0;
    Req request;
    std::promise<Reply<Ans>> promise;
  };

  template <typename Req, typename Ans>
  struct Lane {
    std::deque<Item<Req, Ans>> queue;
    bool claimed = false;  // a worker is waiting out the window on it
  };

  template <typename Req, typename Ans>
  std::future<Reply<Ans>> enqueue(Lane<Req, Ans>& lane, Req&& request);

  /// Claims `lane`, optionally waits the coalescing window, merges up to
  /// max_coalesce payloads, answers them with ONE View::run outside the
  /// lock, and scatters the slices. `lk` is held on entry and exit.
  template <typename Req, typename Ans, typename Payload>
  void drain_queries(std::unique_lock<std::mutex>& lk, Lane<Req, Ans>& lane,
                     Payload Req::* payload);

  /// Takes every queued whole-graph request, answers ONCE, broadcasts.
  template <typename Req, typename Ans, typename AnswerFn>
  void drain_broadcast(std::unique_lock<std::mutex>& lk, Lane<Req, Ans>& lane,
                       AnswerFn&& answer);

  void worker_loop();
  bool pending_unclaimed() const;
  bool pending_none() const;
  /// Serves the unclaimed lane whose head is the oldest pending request.
  void serve_next(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  engine::View view_;
  DispatcherOptions options_;
  DispatcherStats stats_;
  std::uint64_t next_seq_ = 0;
  bool paused_ = false;
  bool stop_ = false;

  Lane<engine::Same2Ecc, std::vector<std::uint8_t>> same_;
  Lane<engine::BridgesOnPath, std::vector<NodeId>> paths_;
  Lane<engine::ComponentSize, std::vector<NodeId>> sizes_;
  Lane<engine::LcaBatch, std::vector<NodeId>> lcas_;
  Lane<engine::Bridges, bridges::BridgeMask> bridges_;
  Lane<engine::TwoEcc, TwoEccSummary> twoecc_;

  std::vector<std::thread> threads_;
};

}  // namespace emc::serve
