// emc::serve — concurrent request serving on top of engine::View.
//
// The engine gives snapshot isolation (epoch-pinned Views); this layer
// gives it a front door for heavy traffic: clients submit() typed requests
// and get a std::future back, worker threads drain a queue of pending
// requests and answer them against the CURRENT View, and a writer thread
// publishes fresher Views as the graph advances — submission never blocks
// on graph updates, updates never block on in-flight answers.
//
// The throughput mechanism is REQUEST COALESCING. Point-query traffic
// arrives as many small batches (often single pairs); answered one by one
// on the device, each batch pays a full kernel launch — the exact
// left-edge-of-Figure-6 regime the paper shows is launch-bound. The
// dispatcher instead merges every queued request of the same type (up to
// `max_coalesce`, optionally waiting `coalesce_window` for stragglers)
// into ONE payload, answers it with one View::run — one bulk kernel, or
// one host loop — and scatters the answer slices back to the individual
// futures. K coalesced requests thus cost one launch instead of K, which
// is precisely the amortization the paper's batched-query figures predict;
// whole-graph requests (Bridges, TwoEcc) coalesce even harder, one answer
// broadcast to every waiter.
//
// OVERLOAD AND FAILURE are first-class, not exceptional: every future
// resolves with a definite Reply whose Status says what happened —
//   kOk          answered normally
//   kTimeout     the request's deadline passed before a round took it
//   kOverloaded  a bounded lane was full (Reject) or the request was shed
//                to admit newer work (ShedOldest)
//   kCancelled   submitted after stop() began
//   kFaulted     the answering round threw (injected fault, real OOM);
//                the round fails exactly its own requests
//   kUnsupported the deployment cannot answer this family at all (e.g.
//                BfsLevels against a sharded graph — see shard.hpp);
//                resolved immediately, never queued
// Lanes are BOUNDED (`queue_bound`, or EMC_SERVE_QUEUE_BOUND) with an
// explicit admission policy, and drained FAIRLY: each lane keeps one
// sub-queue per client (Ticket::client), and rounds take items by
// weighted round-robin across clients, so one hot tenant cannot starve
// the rest — ShedOldest likewise shed from the fattest client first.
// The coalescing window is deadline-aware: it widens when queues are deep
// (more amortization when latency is already queue-dominated), shrinks
// when they are shallow, and never waits past the earliest queued
// deadline minus the measured round-service time.
//
// GRACEFUL DEGRADATION: publish(Session&) builds the next epoch's View
// with bounded retry-with-backoff; when every attempt fails the previous
// healthy View simply keeps serving and the dispatcher enters bounded-
// staleness mode — replies carry `staleness` (graph epochs the serving
// snapshot lags) so clients can decide, and recovery is the next
// successful publish. With `degrade_to_host`, device-routed answer
// batches that find the driver lock busy fall back to the identical-
// answer host loop instead of queueing behind a writer's kernel pipeline.
// Fault injection for all of the above: util/failpoint.hpp.
//
// Ordering/consistency: answers are computed against the View current at
// DRAIN time, whose epoch is reported in the Reply envelope — a client
// that must not see an epoch older than X checks reply.epoch. Requests of
// the same type AND client are answered FIFO; across clients the weighted
// round-robin decides; across types the oldest pending request picks
// which lane drains next.
//
// Threading: submit(), publish(), current_view() and stats() are safe from
// any thread. stop() (also run by the destructor) answers everything still
// queued, then joins the workers — no future is ever abandoned; a submit()
// racing stop() resolves immediately with Status::kCancelled.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bridges/bridges.hpp"
#include "engine/engine.hpp"
#include "util/types.hpp"

namespace emc::ingest {
class Ingestor;  // serve sits above ingest; see attach_ingestor()
}

namespace emc::serve {

/// What happened to a submitted request (see the header comment).
enum class Status : std::uint8_t {
  kOk = 0,
  kTimeout,
  kOverloaded,
  kCancelled,
  kFaulted,
  kUnsupported,
};

std::string_view to_string(Status status);

/// Answer envelope: the value plus the epoch of the View that served it.
/// `value` is meaningful only when `status == kOk` (expected-style);
/// `staleness` is how many graph epochs that View lagged the newest
/// published state at answer time — 0 except in bounded-staleness mode.
template <typename T>
struct Reply {
  T value{};
  std::uint64_t epoch = 0;
  Status status = Status::kOk;
  std::uint64_t staleness = 0;

  bool ok() const { return status == Status::kOk; }
};

/// Value-type answer for TwoEcc requests (the engine's TwoEccView points
/// into a live index — a future outliving the View needs a copy).
struct TwoEccSummary {
  std::size_t num_blocks = 0;
  std::size_t num_bridges = 0;
};

/// What a full lane does to an incoming submit().
enum class Admission : std::uint8_t {
  kBlock = 0,    // wait for space (backpressure onto the caller)
  kReject,       // resolve the NEW request kOverloaded immediately
  kShedOldest,   // resolve the OLDEST queued request of the fattest
                 // client kOverloaded, admit the new one
};

/// Per-request envelope carried alongside the payload.
struct Ticket {
  /// Time budget from submit(); once passed, the request resolves
  /// kTimeout instead of being answered. 0 = the dispatcher's default_ttl.
  std::chrono::microseconds ttl{0};
  /// Fairness key: requests are drained round-robin ACROSS clients,
  /// FIFO within one. The default client 0 is just another tenant.
  std::uint64_t client = 0;
  /// Round-robin quantum for this client (items per fairness turn,
  /// clamped to >= 1). Last submit wins per (lane, client).
  std::uint32_t weight = 1;
};

struct DispatcherOptions {
  /// Worker threads draining the queue.
  unsigned workers = 2;
  /// After popping the first pending request of a type, wait up to this
  /// long for more of the same type to coalesce with (0 = merge only what
  /// is already queued — opportunistic coalescing, no added latency).
  std::chrono::microseconds coalesce_window{0};
  /// Largest number of requests merged into one answer round; 1 disables
  /// coalescing entirely (the per-request baseline bench_serve compares
  /// against).
  std::size_t max_coalesce = 4096;
  /// Construct with the workers parked; no request is drained until
  /// resume(). Lets tests/benches enqueue a burst first, making coalescing
  /// deterministic.
  bool start_paused = false;

  // --- overload / robustness knobs ---

  /// Per-lane queued-request bound. 0 = take EMC_SERVE_QUEUE_BOUND from
  /// the environment (strict parse, range [1, 2^30]), unbounded when that
  /// is unset too.
  std::size_t queue_bound = 0;
  /// Policy when a bounded lane is full.
  Admission admission = Admission::kBlock;
  /// Deadline for requests whose Ticket carries none. 0 = take
  /// EMC_SERVE_DEADLINE_US from the environment (strict parse, range
  /// [1, 1e9] microseconds), no deadline when that is unset too.
  std::chrono::microseconds default_ttl{0};
  /// Scale coalesce_window with queue depth and cap it by the earliest
  /// queued deadline (see the header comment). Off = the fixed window,
  /// for tests that pin exact timing.
  bool adaptive_window = true;
  /// publish(Session&): total build attempts before giving up into
  /// bounded-staleness mode (>= 1), and the first retry's sleep (doubling
  /// each retry).
  unsigned publish_attempts = 3;
  std::chrono::microseconds publish_backoff{100};
  /// Re-acquire each published View with host_fallback_when_busy set, so
  /// answer rounds degrade device-routed batches to the host loop instead
  /// of queueing on a busy driver lock.
  bool degrade_to_host = false;
};

/// One coherent snapshot (every counter below is updated under the same
/// dispatcher mutex stats() reads them under — the serve-layer analog of
/// the engine's atomic Counters).
struct DispatcherStats {
  std::size_t submitted = 0;
  std::size_t answered = 0;  // resolved kOk
  /// Answer rounds (each is one View::run — one bulk kernel or host loop).
  std::size_t rounds = 0;
  /// Requests that shared their round with at least one other request.
  std::size_t coalesced_requests = 0;
  /// Payload elements a round answered WITHOUT computing: under Zipfian
  /// skew the same hot (u,v) pairs repeat within one coalesced round, so
  /// the merged payload is deduplicated before View::run and the shared
  /// answer is scattered to every duplicate. Counts duplicates elided,
  /// summed over rounds (the ROADMAP skew item's candidate fix).
  std::size_t coalesce_cache_hits = 0;
  std::size_t max_round = 0;  // largest round, in requests
  std::size_t views_published = 0;

  // --- overload / failure outcomes (submitted == answered + shed +
  //     rejected + expired + cancelled + faulted + unsupported once
  //     drained) ---
  std::size_t shed = 0;       // ShedOldest victims (kOverloaded)
  std::size_t rejected = 0;   // Reject admissions (kOverloaded)
  std::size_t expired = 0;    // deadline passed before a round (kTimeout)
  std::size_t cancelled = 0;  // submitted after stop() (kCancelled)
  std::size_t faulted = 0;    // round threw (kFaulted)
  /// Families the deployment cannot answer (kUnsupported). Always 0 for
  /// this Dispatcher — every engine family is served unsharded; the
  /// sharded façade folds its BfsLevels resolutions in here.
  std::size_t unsupported = 0;
  /// Requests answered while the serving View lagged the graph.
  std::size_t stale_served = 0;
  /// publish(Session&) attempts beyond each call's first, and calls that
  /// exhausted every attempt (entering/renewing bounded-staleness mode).
  std::size_t publish_retries = 0;
  std::size_t publish_failures = 0;
  /// How the epochs this dispatcher published were produced: by replaying
  /// the applied delta onto the previous epoch's artifacts (the insert-only
  /// fast path — delta-sized work) vs by the full rebuild pipeline
  /// (deletions, cross-heavy or oversized batches — n-sized work). A
  /// publish that found the epoch already built counts as neither.
  std::size_t publish_replays = 0;
  std::size_t publish_rebuilds = 0;
  /// Process-wide injected faults (util::failpoint::total_fired()).
  std::size_t faults_injected = 0;
  /// Deepest any lane has been at admission.
  std::size_t max_queue_depth = 0;
  /// Bounded-staleness mode: the last publish(Session&) failed; replies
  /// carry staleness = how far the serving epoch lags.
  bool degraded = false;
  std::uint64_t staleness = 0;
  /// With an attached Ingestor (attach_ingestor): accepted-but-unpublished
  /// updates in the write pipeline right now. 0 when none is attached.
  std::size_t ingest_lag = 0;
};

/// The resolved per-lane bound: `from_options` when nonzero, else a strict
/// EMC_SERVE_QUEUE_BOUND parse (complete, in [1, 2^30]; anything else is
/// ignored), else 0 = unbounded. Exposed for the env-hardening tests.
std::size_t resolve_queue_bound(std::size_t from_options);

/// The resolved default TTL: `from_options` when nonzero, else a strict
/// EMC_SERVE_DEADLINE_US parse (complete, in [1, 1e9] microseconds), else
/// zero = no deadline. Exposed for the env-hardening tests.
std::chrono::microseconds resolve_default_ttl(
    std::chrono::microseconds from_options);

class Dispatcher {
 public:
  /// Starts `options.workers` drain threads answering against `view`.
  explicit Dispatcher(engine::View view,
                      const DispatcherOptions& options = {});
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Installs the View subsequent rounds answer against (the writer-side
  /// publish step). In-flight rounds finish on the View they took.
  void publish(engine::View view);

  /// Builds and installs the session's current epoch's View with bounded
  /// retry-with-backoff (publish_attempts / publish_backoff). On success
  /// returns true and clears bounded-staleness mode. When every attempt
  /// fails (epoch build keeps throwing — injected fault, real OOM), the
  /// PREVIOUS healthy View keeps serving, the dispatcher records how far
  /// it lags (`stats().staleness`), stamps that into every subsequent
  /// Reply, and returns false. The writer retries on its next publish.
  bool publish(engine::Session& session);
  bool publish(engine::Session& session, const engine::Policy& policy);

  /// Wires a streaming write pipeline into this dispatcher: the Ingestor's
  /// publish hook is rewired to this->publish(Session&) — so its epoch
  /// publishes inherit the retry/backoff/bounded-staleness path — and the
  /// dispatcher starts folding the ingestor's progress into its staleness
  /// accounting: replies' `staleness` measures against the newest APPLIED
  /// graph epoch (paced publishing shows up as bounded staleness, not as
  /// freshness), and stats().ingest_lag reports the pipeline's lag.
  /// Lifecycle: the Ingestor must be stop()ped before this dispatcher is
  /// destroyed and destroyed after it (declare the Ingestor first).
  void attach_ingestor(ingest::Ingestor& ingestor);

  engine::View current_view() const;

  // submit(): enqueue and return the future. Coalescable query types merge
  // with same-type neighbors; Bridges/TwoEcc answer once per round and
  // broadcast. The Bridges reply owns a COPY of the mask. The Ticket
  // carries the request's deadline and fairness identity.
  std::future<Reply<std::vector<std::uint8_t>>> submit(
      engine::Same2Ecc request, Ticket ticket = {});
  std::future<Reply<std::vector<NodeId>>> submit(engine::BridgesOnPath request,
                                                 Ticket ticket = {});
  std::future<Reply<std::vector<NodeId>>> submit(engine::ComponentSize request,
                                                 Ticket ticket = {});
  std::future<Reply<std::vector<NodeId>>> submit(engine::LcaBatch request,
                                                 Ticket ticket = {});
  std::future<Reply<bridges::BridgeMask>> submit(engine::Bridges request,
                                                 Ticket ticket = {});
  std::future<Reply<TwoEccSummary>> submit(engine::TwoEcc request,
                                           Ticket ticket = {});
  // The vertex-biconnectivity families. Articulations is whole-graph
  // (answered once per round, mask broadcast like Bridges); the other
  // three coalesce like their edge-connectivity namesakes.
  std::future<Reply<std::vector<std::uint8_t>>> submit(
      engine::Articulations request, Ticket ticket = {});
  std::future<Reply<std::vector<std::uint8_t>>> submit(engine::SameBcc request,
                                                       Ticket ticket = {});
  std::future<Reply<std::vector<NodeId>>> submit(engine::BfsLevels request,
                                                 Ticket ticket = {});
  std::future<Reply<std::vector<NodeId>>> submit(engine::CcMembership request,
                                                 Ticket ticket = {});

  /// Releases start_paused workers.
  void resume();

  /// Answers everything still queued, then joins the workers. Idempotent;
  /// the destructor calls it.
  void stop();

  DispatcherStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  template <typename Req, typename Ans>
  struct Item {
    std::uint64_t seq = 0;
    Req request;
    std::promise<Reply<Ans>> promise;
    Clock::time_point deadline = Clock::time_point::max();
  };

  template <typename Req, typename Ans>
  struct Lane {
    /// One FIFO per client; rounds take weighted round-robin across them.
    struct Sub {
      std::deque<Item<Req, Ans>> queue;
      std::uint32_t weight = 1;
    };
    std::map<std::uint64_t, Sub> subs;
    std::size_t total = 0;      // queued items across subs
    std::uint64_t cursor = 0;   // client the next fairness turn starts at
    bool claimed = false;  // a worker is waiting out the window on it
  };

  /// Epoch/staleness pair captured under the lock when a round (or an
  /// immediate resolution) picks its View.
  struct Snapshot {
    engine::View view;
    std::uint64_t staleness = 0;
  };

  template <typename Req, typename Ans>
  std::future<Reply<Ans>> enqueue(Lane<Req, Ans>& lane, Req&& request,
                                  const Ticket& ticket);

  /// Pops up to `max_take` live items by weighted round-robin across the
  /// lane's clients (FIFO within one), routing already-expired items to
  /// `expired` instead (they do not consume fairness quota or round
  /// capacity). Lock held.
  template <typename Req, typename Ans>
  void take_round(Lane<Req, Ans>& lane, std::size_t max_take,
                  std::vector<Item<Req, Ans>>& live,
                  std::vector<Item<Req, Ans>>& expired);

  /// The deadline-aware coalescing wait (lock held; see header comment).
  template <typename Req, typename Ans>
  void wait_for_round(std::unique_lock<std::mutex>& lk, Lane<Req, Ans>& lane);

  /// Claims `lane`, optionally waits the coalescing window, merges up to
  /// max_coalesce payloads, answers them with ONE View::run outside the
  /// lock, and scatters the slices. `lk` is held on entry and exit.
  template <typename Req, typename Ans, typename Payload>
  void drain_queries(std::unique_lock<std::mutex>& lk, Lane<Req, Ans>& lane,
                     Payload Req::* payload);

  /// Takes every queued whole-graph request, answers ONCE, broadcasts.
  template <typename Req, typename Ans, typename AnswerFn>
  void drain_broadcast(std::unique_lock<std::mutex>& lk, Lane<Req, Ans>& lane,
                       AnswerFn&& answer);

  /// Applies degrade_to_host to a freshly published view.
  engine::View adapt(engine::View view) const;

  bool publish_impl(engine::Session& session, const engine::Policy* policy);

  void worker_loop();
  bool pending_unclaimed() const;
  bool pending_none() const;
  /// Serves the unclaimed lane whose head is the oldest pending request.
  void serve_next(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  engine::View view_;
  DispatcherOptions options_;
  DispatcherStats stats_;
  std::uint64_t next_seq_ = 0;
  /// Newest graph epoch the writer has shown us (successful publishes AND
  /// failed publish(Session&) calls); staleness = latest_epoch_ - serving.
  std::uint64_t latest_epoch_ = 0;
  /// latest_epoch_, folded with an attached ingestor's newest applied
  /// epoch (lock held; one relaxed atomic read on the hot path).
  std::uint64_t latest_known_epoch() const;
  ingest::Ingestor* ingestor_ = nullptr;
  bool degraded_ = false;
  /// EWMA of round service time, the "p99 headroom" input to the adaptive
  /// window (nanoseconds).
  double round_ewma_ns_ = 0.0;
  bool paused_ = false;
  bool stop_ = false;

  Lane<engine::Same2Ecc, std::vector<std::uint8_t>> same_;
  Lane<engine::BridgesOnPath, std::vector<NodeId>> paths_;
  Lane<engine::ComponentSize, std::vector<NodeId>> sizes_;
  Lane<engine::LcaBatch, std::vector<NodeId>> lcas_;
  Lane<engine::Bridges, bridges::BridgeMask> bridges_;
  Lane<engine::TwoEcc, TwoEccSummary> twoecc_;
  Lane<engine::Articulations, std::vector<std::uint8_t>> articulations_;
  Lane<engine::SameBcc, std::vector<std::uint8_t>> samebcc_;
  Lane<engine::BfsLevels, std::vector<NodeId>> bfslevels_;
  Lane<engine::CcMembership, std::vector<NodeId>> ccmember_;

  std::vector<std::thread> threads_;
};

}  // namespace emc::serve
