#include "serve/serve.hpp"

#include <algorithm>
#include <exception>

namespace emc::serve {

namespace {

/// Synchronous answer for the shutdown race (submit after stop): same
/// result shape a drained round would produce. The generic form covers the
/// types whose View answer IS the reply value; TwoEcc converts its
/// index-pointing answer view into the value summary.
template <typename Req>
auto answer_now(const engine::View& view, const Req& request) {
  return view.run(request);
}

TwoEccSummary answer_now(const engine::View& view,
                         const engine::TwoEcc& request) {
  const engine::TwoEccView answer = view.run(request);
  return {answer.num_blocks, answer.num_bridges};
}

}  // namespace

Dispatcher::Dispatcher(engine::View view, const DispatcherOptions& options)
    : view_(std::move(view)),
      options_(options),
      paused_(options.start_paused) {
  options_.workers = std::max(1u, options_.workers);
  options_.max_coalesce = std::max<std::size_t>(1, options_.max_coalesce);
  threads_.reserve(options_.workers);
  for (unsigned t = 0; t < options_.workers; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Dispatcher::~Dispatcher() { stop(); }

void Dispatcher::publish(engine::View view) {
  const std::lock_guard<std::mutex> lk(mutex_);
  view_ = std::move(view);
  ++stats_.views_published;
}

engine::View Dispatcher::current_view() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return view_;
}

void Dispatcher::resume() {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Dispatcher::stop() {
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
    paused_ = false;
    to_join.swap(threads_);  // swap makes a second stop() a no-op
  }
  cv_.notify_all();
  for (std::thread& thread : to_join) thread.join();
}

DispatcherStats Dispatcher::stats() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

template <typename Req, typename Ans>
std::future<Reply<Ans>> Dispatcher::enqueue(Lane<Req, Ans>& lane,
                                            Req&& request) {
  std::unique_lock<std::mutex> lk(mutex_);
  ++stats_.submitted;
  if (stop_) {
    // Shutdown race: answer synchronously so no future is ever abandoned.
    const engine::View view = view_;
    ++stats_.rounds;
    ++stats_.answered;
    stats_.max_round = std::max<std::size_t>(stats_.max_round, 1);
    lk.unlock();
    std::promise<Reply<Ans>> promise;
    promise.set_value(Reply<Ans>{answer_now(view, request), view.epoch()});
    return promise.get_future();
  }
  lane.queue.push_back(Item<Req, Ans>{next_seq_++, std::move(request), {}});
  std::future<Reply<Ans>> future = lane.queue.back().promise.get_future();
  cv_.notify_all();
  return future;
}

std::future<Reply<std::vector<std::uint8_t>>> Dispatcher::submit(
    engine::Same2Ecc request) {
  return enqueue(same_, std::move(request));
}

std::future<Reply<std::vector<NodeId>>> Dispatcher::submit(
    engine::BridgesOnPath request) {
  return enqueue(paths_, std::move(request));
}

std::future<Reply<std::vector<NodeId>>> Dispatcher::submit(
    engine::ComponentSize request) {
  return enqueue(sizes_, std::move(request));
}

std::future<Reply<std::vector<NodeId>>> Dispatcher::submit(
    engine::LcaBatch request) {
  return enqueue(lcas_, std::move(request));
}

std::future<Reply<bridges::BridgeMask>> Dispatcher::submit(
    engine::Bridges request) {
  return enqueue(bridges_, std::move(request));
}

std::future<Reply<TwoEccSummary>> Dispatcher::submit(engine::TwoEcc request) {
  return enqueue(twoecc_, std::move(request));
}

bool Dispatcher::pending_unclaimed() const {
  const auto ready = [](const auto& lane) {
    return !lane.claimed && !lane.queue.empty();
  };
  return ready(same_) || ready(paths_) || ready(sizes_) || ready(lcas_) ||
         ready(bridges_) || ready(twoecc_);
}

bool Dispatcher::pending_none() const {
  return same_.queue.empty() && paths_.queue.empty() && sizes_.queue.empty() &&
         lcas_.queue.empty() && bridges_.queue.empty() &&
         twoecc_.queue.empty();
}

template <typename Req, typename Ans, typename Payload>
void Dispatcher::drain_queries(std::unique_lock<std::mutex>& lk,
                               Lane<Req, Ans>& lane, Payload Req::* payload) {
  lane.claimed = true;
  if (options_.coalesce_window.count() > 0 && options_.max_coalesce > 1 &&
      !stop_) {
    // Let the round fill: a claimed lane is only drained by this worker,
    // other lanes stay fair game for the rest of the pool.
    const auto deadline =
        std::chrono::steady_clock::now() + options_.coalesce_window;
    cv_.wait_until(lk, deadline, [&] {
      return stop_ || lane.queue.size() >= options_.max_coalesce;
    });
  }
  const std::size_t take =
      std::min(lane.queue.size(), options_.max_coalesce);
  std::vector<Item<Req, Ans>> items;
  items.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    items.push_back(std::move(lane.queue.front()));
    lane.queue.pop_front();
  }
  lane.claimed = false;
  const engine::View view = view_;
  ++stats_.rounds;
  stats_.answered += take;
  if (take > 1) stats_.coalesced_requests += take;
  stats_.max_round = std::max(stats_.max_round, take);
  lk.unlock();

  // One merged payload -> one View::run -> scatter the slices back. A
  // throwing round (bad_alloc on a merged payload, most plausibly) fails
  // exactly its own requests through their promises — it must not escape
  // the worker thread (std::terminate) or abandon the futures.
  try {
    Req merged;
    auto& all = merged.*payload;
    std::vector<std::size_t> cuts;
    cuts.reserve(items.size());
    for (Item<Req, Ans>& item : items) {
      const auto& part = item.request.*payload;
      all.insert(all.end(), part.begin(), part.end());
      cuts.push_back(all.size());
    }
    const Ans full = view.run(merged);
    std::size_t begin = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      Ans slice(full.begin() + static_cast<std::ptrdiff_t>(begin),
                full.begin() + static_cast<std::ptrdiff_t>(cuts[i]));
      begin = cuts[i];
      items[i].promise.set_value(Reply<Ans>{std::move(slice), view.epoch()});
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Item<Req, Ans>& item : items) item.promise.set_exception(error);
  }

  lk.lock();
  cv_.notify_all();  // a stopping worker may be waiting for pending_none()
}

template <typename Req, typename Ans, typename AnswerFn>
void Dispatcher::drain_broadcast(std::unique_lock<std::mutex>& lk,
                                 Lane<Req, Ans>& lane, AnswerFn&& answer) {
  const std::size_t take =
      std::min(lane.queue.size(), options_.max_coalesce);
  std::vector<Item<Req, Ans>> items;
  items.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    items.push_back(std::move(lane.queue.front()));
    lane.queue.pop_front();
  }
  const engine::View view = view_;
  ++stats_.rounds;
  stats_.answered += take;
  if (take > 1) stats_.coalesced_requests += take;
  stats_.max_round = std::max(stats_.max_round, take);
  lk.unlock();

  try {
    const Ans full = answer(view);
    for (Item<Req, Ans>& item : items) {
      item.promise.set_value(Reply<Ans>{full, view.epoch()});
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Item<Req, Ans>& item : items) item.promise.set_exception(error);
  }

  lk.lock();
  cv_.notify_all();
}

void Dispatcher::serve_next(std::unique_lock<std::mutex>& lk) {
  // FIFO across lanes: the unclaimed lane holding the oldest request wins.
  std::uint64_t best = ~std::uint64_t{0};
  int which = -1;
  const auto consider = [&](const auto& lane, int id) {
    if (!lane.claimed && !lane.queue.empty() &&
        lane.queue.front().seq < best) {
      best = lane.queue.front().seq;
      which = id;
    }
  };
  consider(same_, 0);
  consider(paths_, 1);
  consider(sizes_, 2);
  consider(lcas_, 3);
  consider(bridges_, 4);
  consider(twoecc_, 5);
  switch (which) {
    case 0:
      drain_queries(lk, same_, &engine::Same2Ecc::pairs);
      break;
    case 1:
      drain_queries(lk, paths_, &engine::BridgesOnPath::pairs);
      break;
    case 2:
      drain_queries(lk, sizes_, &engine::ComponentSize::nodes);
      break;
    case 3:
      drain_queries(lk, lcas_, &engine::LcaBatch::pairs);
      break;
    case 4:
      drain_broadcast(lk, bridges_, [](const engine::View& view) {
        return bridges::BridgeMask(view.run(engine::Bridges{}));
      });
      break;
    case 5:
      drain_broadcast(lk, twoecc_, [](const engine::View& view) {
        const engine::TwoEccView answer = view.run(engine::TwoEcc{});
        return TwoEccSummary{answer.num_blocks, answer.num_bridges};
      });
      break;
    default:
      break;
  }
}

void Dispatcher::worker_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    cv_.wait(lk, [&] {
      return (stop_ && pending_none()) || (!paused_ && pending_unclaimed());
    });
    if (!paused_ && pending_unclaimed()) {
      serve_next(lk);
      continue;
    }
    if (stop_ && pending_none()) return;
  }
}

}  // namespace emc::serve
