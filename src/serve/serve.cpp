#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <iterator>
#include <optional>
#include <unordered_map>

#include "ingest/ingest.hpp"
#include "util/env.hpp"
#include "util/failpoint.hpp"

namespace emc::serve {

std::string_view to_string(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kTimeout:
      return "timeout";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kCancelled:
      return "cancelled";
    case Status::kFaulted:
      return "faulted";
    case Status::kUnsupported:
      return "unsupported";
  }
  return "?";
}

std::size_t resolve_queue_bound(std::size_t from_options) {
  if (from_options > 0) return from_options;
  return static_cast<std::size_t>(util::env_int_or(
      "EMC_SERVE_QUEUE_BOUND", 0, 1, std::int64_t{1} << 30));
}

std::chrono::microseconds resolve_default_ttl(
    std::chrono::microseconds from_options) {
  if (from_options.count() > 0) return from_options;
  return std::chrono::microseconds(util::env_int_or(
      "EMC_SERVE_DEADLINE_US", 0, 1, std::int64_t{1'000'000'000}));
}

namespace {

/// A reply that carries no answer: the non-Ok resolutions.
template <typename Ans>
Reply<Ans> empty_reply(Status status, std::uint64_t epoch,
                       std::uint64_t staleness) {
  return Reply<Ans>{Ans{}, epoch, status, staleness};
}

/// Per-round dedup keys: both payload element shapes pack into 64 bits.
/// Order-sensitive for pairs — (u,v) and (v,u) stay distinct, so the
/// cache never assumes a family is symmetric.
std::uint64_t dedup_key(NodeId v) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
}
std::uint64_t dedup_key(const std::pair<NodeId, NodeId>& p) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.second));
}

}  // namespace

Dispatcher::Dispatcher(engine::View view, const DispatcherOptions& options)
    : options_(options), paused_(options.start_paused) {
  options_.workers = std::max(1u, options_.workers);
  options_.max_coalesce = std::max<std::size_t>(1, options_.max_coalesce);
  options_.queue_bound = resolve_queue_bound(options_.queue_bound);
  options_.default_ttl = resolve_default_ttl(options_.default_ttl);
  options_.publish_attempts = std::max(1u, options_.publish_attempts);
  latest_epoch_ = view.epoch();
  view_ = adapt(std::move(view));
  threads_.reserve(options_.workers);
  for (unsigned t = 0; t < options_.workers; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Dispatcher::~Dispatcher() { stop(); }

engine::View Dispatcher::adapt(engine::View view) const {
  if (!options_.degrade_to_host) return view;
  engine::Policy policy = view.policy();
  policy.host_fallback_when_busy = true;
  return view.with_policy(policy);
}

void Dispatcher::publish(engine::View view) {
  const std::lock_guard<std::mutex> lk(mutex_);
  latest_epoch_ = std::max(latest_epoch_, view.epoch());
  view_ = adapt(std::move(view));
  degraded_ = false;  // an explicit healthy View ends staleness mode
  ++stats_.views_published;
}

bool Dispatcher::publish(engine::Session& session) {
  return publish_impl(session, nullptr);
}

bool Dispatcher::publish(engine::Session& session,
                         const engine::Policy& policy) {
  return publish_impl(session, &policy);
}

bool Dispatcher::publish_impl(engine::Session& session,
                              const engine::Policy* policy) {
  auto backoff = options_.publish_backoff;
  for (unsigned attempt = 0; attempt < options_.publish_attempts; ++attempt) {
    if (attempt > 0) {
      {
        const std::lock_guard<std::mutex> lk(mutex_);
        ++stats_.publish_retries;
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    try {
      // Diffing the session's replay/rebuild counters around the build
      // attributes this publish to the incremental or full pipeline (both
      // deltas are 0 when the epoch was already built — a cache hit).
      const std::uint64_t replays_before = session.publish_replays();
      const std::uint64_t rebuilds_before = session.publish_rebuilds();
      engine::View fresh = policy ? session.view(*policy) : session.view();
      const std::lock_guard<std::mutex> lk(mutex_);
      stats_.publish_replays += session.publish_replays() - replays_before;
      stats_.publish_rebuilds += session.publish_rebuilds() - rebuilds_before;
      latest_epoch_ = std::max(latest_epoch_, fresh.epoch());
      view_ = adapt(std::move(fresh));
      degraded_ = false;
      ++stats_.views_published;
      return true;
    } catch (...) {
      // Epoch build failed (injected fault, allocation failure); the
      // previous View is untouched and keeps serving. Retry after backoff.
    }
  }
  // Every attempt failed: enter (or renew) bounded-staleness mode. The
  // graph's real epoch tells readers how far the serving snapshot lags.
  const std::lock_guard<std::mutex> lk(mutex_);
  ++stats_.publish_failures;
  latest_epoch_ = std::max(latest_epoch_, session.epoch());
  degraded_ = true;
  return false;
}

// LOCKING AUDIT (satellite of the incremental-publish PR): every call site
// reads latest_epoch_/ingestor_ under mutex_ — stats(), the two enqueue
// resolution points, and the drain_queries/drain_broadcast Snapshot
// captures (both compute their Snapshot BEFORE lk.unlock()). Keep it that
// way: an unlocked call would race publish()/attach_ingestor(). The TSan
// CI job runs test_serve (ctest -R "test_(serve|engine|ingest)") over
// exactly these paths.
std::uint64_t Dispatcher::latest_known_epoch() const {
  std::uint64_t latest = latest_epoch_;
  if (ingestor_ != nullptr) {
    latest = std::max(latest, ingestor_->graph_epoch());
  }
  return latest;
}

void Dispatcher::attach_ingestor(ingest::Ingestor& ingestor) {
  // The hook runs on the ingestor's writer thread; publish_impl takes the
  // dispatcher mutex internally, so no lock is held across the call.
  ingestor.set_publisher(
      [this](engine::Session& session) { return publish(session); });
  const std::lock_guard<std::mutex> lk(mutex_);
  ingestor_ = &ingestor;
}

engine::View Dispatcher::current_view() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  return view_;
}

void Dispatcher::resume() {
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Dispatcher::stop() {
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
    paused_ = false;
    to_join.swap(threads_);  // swap makes a second stop() a no-op
  }
  cv_.notify_all();
  for (std::thread& thread : to_join) thread.join();
}

DispatcherStats Dispatcher::stats() const {
  const std::lock_guard<std::mutex> lk(mutex_);
  DispatcherStats s = stats_;
  s.degraded = degraded_;
  // Saturating: publish(View) maintains latest_epoch_ >= view_.epoch()
  // with std::max at every assignment, but an attached ingestor's
  // graph_epoch() is NOT part of that invariant chain (a View published
  // out-of-band can outrun it), so the gauge clamps instead of wrapping.
  s.staleness = saturating_sub(latest_known_epoch(), view_.epoch());
  s.faults_injected = util::failpoint::total_fired();
  if (ingestor_ != nullptr) s.ingest_lag = ingestor_->lag();
  return s;
}

template <typename Req, typename Ans>
std::future<Reply<Ans>> Dispatcher::enqueue(Lane<Req, Ans>& lane,
                                            Req&& request,
                                            const Ticket& ticket) {
  std::unique_lock<std::mutex> lk(mutex_);
  ++stats_.submitted;
  // The answer-free resolutions below report the CURRENT serving epoch —
  // the client learns what it would have been answered against.
  const auto resolve_now = [&](Status status) {
    ++(status == Status::kCancelled ? stats_.cancelled : stats_.rejected);
    const std::uint64_t epoch = view_.epoch();
    const std::uint64_t staleness = saturating_sub(latest_known_epoch(), epoch);
    lk.unlock();
    std::promise<Reply<Ans>> promise;
    promise.set_value(empty_reply<Ans>(status, epoch, staleness));
    return promise.get_future();
  };
  // Shutdown race: a submit() after stop() began is REFUSED, not silently
  // worked on the caller thread after teardown started.
  if (stop_) return resolve_now(Status::kCancelled);

  std::optional<Item<Req, Ans>> victim;
  if (options_.queue_bound > 0 && lane.total >= options_.queue_bound) {
    switch (options_.admission) {
      case Admission::kBlock:
        cv_.wait(lk, [&] {
          return stop_ || lane.total < options_.queue_bound;
        });
        if (stop_) return resolve_now(Status::kCancelled);
        break;
      case Admission::kReject:
        return resolve_now(Status::kOverloaded);
      case Admission::kShedOldest: {
        // Shed from the FATTEST client (queued / weight) so a flood pays
        // for its own shedding and light tenants ride through untouched.
        auto fattest = lane.subs.end();
        double worst = -1.0;
        for (auto it = lane.subs.begin(); it != lane.subs.end(); ++it) {
          if (it->second.queue.empty()) continue;
          const double load =
              static_cast<double>(it->second.queue.size()) /
              static_cast<double>(std::max<std::uint32_t>(1, it->second.weight));
          if (load > worst) {
            worst = load;
            fattest = it;
          }
        }
        victim.emplace(std::move(fattest->second.queue.front()));
        fattest->second.queue.pop_front();
        --lane.total;
        ++stats_.shed;
        break;
      }
    }
  }

  const auto ttl =
      ticket.ttl.count() > 0 ? ticket.ttl : options_.default_ttl;
  auto& sub = lane.subs[ticket.client];
  sub.weight = std::max<std::uint32_t>(1, ticket.weight);
  sub.queue.push_back(Item<Req, Ans>{
      next_seq_++, std::move(request), {},
      ttl.count() > 0 ? Clock::now() + ttl : Clock::time_point::max()});
  ++lane.total;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, lane.total);
  std::future<Reply<Ans>> future = sub.queue.back().promise.get_future();
  const std::uint64_t epoch = view_.epoch();
  const std::uint64_t staleness = saturating_sub(latest_known_epoch(), epoch);
  lk.unlock();
  cv_.notify_all();
  if (victim) {
    victim->promise.set_value(
        empty_reply<Ans>(Status::kOverloaded, epoch, staleness));
  }
  return future;
}

std::future<Reply<std::vector<std::uint8_t>>> Dispatcher::submit(
    engine::Same2Ecc request, Ticket ticket) {
  return enqueue(same_, std::move(request), ticket);
}

std::future<Reply<std::vector<NodeId>>> Dispatcher::submit(
    engine::BridgesOnPath request, Ticket ticket) {
  return enqueue(paths_, std::move(request), ticket);
}

std::future<Reply<std::vector<NodeId>>> Dispatcher::submit(
    engine::ComponentSize request, Ticket ticket) {
  return enqueue(sizes_, std::move(request), ticket);
}

std::future<Reply<std::vector<NodeId>>> Dispatcher::submit(
    engine::LcaBatch request, Ticket ticket) {
  return enqueue(lcas_, std::move(request), ticket);
}

std::future<Reply<bridges::BridgeMask>> Dispatcher::submit(
    engine::Bridges request, Ticket ticket) {
  return enqueue(bridges_, std::move(request), ticket);
}

std::future<Reply<TwoEccSummary>> Dispatcher::submit(engine::TwoEcc request,
                                                     Ticket ticket) {
  return enqueue(twoecc_, std::move(request), ticket);
}

std::future<Reply<std::vector<std::uint8_t>>> Dispatcher::submit(
    engine::Articulations request, Ticket ticket) {
  return enqueue(articulations_, std::move(request), ticket);
}

std::future<Reply<std::vector<std::uint8_t>>> Dispatcher::submit(
    engine::SameBcc request, Ticket ticket) {
  return enqueue(samebcc_, std::move(request), ticket);
}

std::future<Reply<std::vector<NodeId>>> Dispatcher::submit(
    engine::BfsLevels request, Ticket ticket) {
  return enqueue(bfslevels_, std::move(request), ticket);
}

std::future<Reply<std::vector<NodeId>>> Dispatcher::submit(
    engine::CcMembership request, Ticket ticket) {
  return enqueue(ccmember_, std::move(request), ticket);
}

bool Dispatcher::pending_unclaimed() const {
  const auto ready = [](const auto& lane) {
    return !lane.claimed && lane.total > 0;
  };
  return ready(same_) || ready(paths_) || ready(sizes_) || ready(lcas_) ||
         ready(bridges_) || ready(twoecc_) || ready(articulations_) ||
         ready(samebcc_) || ready(bfslevels_) || ready(ccmember_);
}

bool Dispatcher::pending_none() const {
  return same_.total == 0 && paths_.total == 0 && sizes_.total == 0 &&
         lcas_.total == 0 && bridges_.total == 0 && twoecc_.total == 0 &&
         articulations_.total == 0 && samebcc_.total == 0 &&
         bfslevels_.total == 0 && ccmember_.total == 0;
}

template <typename Req, typename Ans>
void Dispatcher::take_round(Lane<Req, Ans>& lane, std::size_t max_take,
                            std::vector<Item<Req, Ans>>& live,
                            std::vector<Item<Req, Ans>>& expired) {
  const auto now = Clock::now();
  while (live.size() < max_take && lane.total > 0) {
    bool took = false;
    auto it = lane.subs.lower_bound(lane.cursor);
    for (std::size_t visited = 0;
         visited < lane.subs.size() && live.size() < max_take; ++visited) {
      if (it == lane.subs.end()) it = lane.subs.begin();
      auto& sub = it->second;
      // One fairness turn: up to `weight` LIVE items from this client.
      // Expired items are routed out for a kTimeout reply and consume
      // neither quota nor round capacity.
      std::uint32_t quota = sub.weight;
      while (!sub.queue.empty() && quota > 0 && live.size() < max_take) {
        Item<Req, Ans> item = std::move(sub.queue.front());
        sub.queue.pop_front();
        --lane.total;
        took = true;
        if (item.deadline <= now) {
          expired.push_back(std::move(item));
        } else {
          live.push_back(std::move(item));
          --quota;
        }
      }
      lane.cursor = it->first + 1;  // the next turn starts past this client
      ++it;
    }
    if (!took) break;
  }
  for (auto it = lane.subs.begin(); it != lane.subs.end();) {
    it = it->second.queue.empty() ? lane.subs.erase(it) : std::next(it);
  }
}

template <typename Req, typename Ans>
void Dispatcher::wait_for_round(std::unique_lock<std::mutex>& lk,
                                Lane<Req, Ans>& lane) {
  if (options_.coalesce_window.count() <= 0 || options_.max_coalesce <= 1 ||
      stop_) {
    return;
  }
  auto window =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.coalesce_window);
  if (options_.adaptive_window) {
    // Deep queue: latency is already queue-dominated, widen (more
    // amortization per kernel). Shallow queue: the window IS the latency,
    // shrink. Clamped so the knob's order of magnitude still governs.
    const double depth_scale =
        std::clamp(2.0 * static_cast<double>(lane.total) /
                       static_cast<double>(options_.max_coalesce),
                   0.25, 4.0);
    window = std::chrono::nanoseconds(
        std::llround(static_cast<double>(window.count()) * depth_scale));
    // Never wait past the earliest queued deadline minus the measured
    // round-service time. Sub fronts approximate "earliest" (oldest
    // submit per client) without an O(queued) scan.
    auto earliest = Clock::time_point::max();
    for (const auto& [client, sub] : lane.subs) {
      if (!sub.queue.empty()) {
        earliest = std::min(earliest, sub.queue.front().deadline);
      }
    }
    if (earliest != Clock::time_point::max()) {
      const auto service =
          std::chrono::nanoseconds(std::llround(round_ewma_ns_));
      const auto slack = std::chrono::duration_cast<std::chrono::nanoseconds>(
          earliest - Clock::now() - service);
      window = std::min(window, std::max(std::chrono::nanoseconds{0}, slack));
    }
  }
  if (window.count() <= 0) return;
  const auto deadline = Clock::now() + window;
  // Let the round fill: a claimed lane is only drained by this worker,
  // other lanes stay fair game for the rest of the pool.
  cv_.wait_until(lk, deadline, [&] {
    return stop_ || lane.total >= options_.max_coalesce;
  });
}

template <typename Req, typename Ans, typename Payload>
void Dispatcher::drain_queries(std::unique_lock<std::mutex>& lk,
                               Lane<Req, Ans>& lane, Payload Req::* payload) {
  lane.claimed = true;
  wait_for_round(lk, lane);
  std::vector<Item<Req, Ans>> items;
  std::vector<Item<Req, Ans>> expired;
  take_round(lane, options_.max_coalesce, items, expired);
  lane.claimed = false;
  const std::size_t take = items.size();
  const Snapshot snap{view_,
                      saturating_sub(latest_known_epoch(), view_.epoch())};
  if (take > 0) ++stats_.rounds;
  stats_.answered += take;
  stats_.expired += expired.size();
  if (take > 1) stats_.coalesced_requests += take;
  stats_.max_round = std::max(stats_.max_round, take);
  if (snap.staleness > 0) stats_.stale_served += take;
  const auto round_start = Clock::now();
  lk.unlock();

  for (Item<Req, Ans>& item : expired) {
    item.promise.set_value(
        empty_reply<Ans>(Status::kTimeout, snap.view.epoch(), snap.staleness));
  }

  // One merged payload -> one View::run -> scatter the slices back. A
  // throwing round (injected fault, bad_alloc on a merged payload) fails
  // exactly its own requests — each resolves kFaulted with a definite
  // Reply; nothing escapes the worker thread, no future is abandoned.
  bool faulted = false;
  std::size_t cache_hits = 0;
  if (take > 0) {
    try {
      Req merged;
      auto& all = merged.*payload;
      std::vector<std::size_t> cuts;
      cuts.reserve(items.size());
      for (Item<Req, Ans>& item : items) {
        const auto& part = item.request.*payload;
        all.insert(all.end(), part.begin(), part.end());
        cuts.push_back(all.size());
      }
      // Per-round answer cache: Zipf-hot payload elements repeat within a
      // coalesced round, so the round computes each DISTINCT element once
      // and scatters the shared answer to every duplicate — the kernel
      // batch shrinks to the distinct count. Everything answered in this
      // round still comes from the same View::run, so an element repeated
      // across requests cannot observe two epochs.
      auto& uniq = merged.*payload;  // compacted in place below
      std::vector<std::size_t> uniq_of(all.size());
      {
        std::unordered_map<std::uint64_t, std::size_t> index;
        index.reserve(all.size());
        std::size_t distinct = 0;
        for (std::size_t i = 0; i < all.size(); ++i) {
          const auto [it, inserted] =
              index.emplace(dedup_key(all[i]), distinct);
          if (inserted) uniq[distinct++] = all[i];
          uniq_of[i] = it->second;
        }
        cache_hits = all.size() - distinct;
        uniq.resize(distinct);
      }
      const Ans uniq_answers = snap.view.run(merged);
      Ans full(uniq_of.size());
      for (std::size_t i = 0; i < uniq_of.size(); ++i) {
        full[i] = uniq_answers[uniq_of[i]];
      }
      std::size_t begin = 0;
      for (std::size_t i = 0; i < items.size(); ++i) {
        Ans slice(full.begin() + static_cast<std::ptrdiff_t>(begin),
                  full.begin() + static_cast<std::ptrdiff_t>(cuts[i]));
        begin = cuts[i];
        items[i].promise.set_value(Reply<Ans>{std::move(slice),
                                              snap.view.epoch(), Status::kOk,
                                              snap.staleness});
      }
    } catch (...) {
      faulted = true;
      for (Item<Req, Ans>& item : items) {
        item.promise.set_value(empty_reply<Ans>(
            Status::kFaulted, snap.view.epoch(), snap.staleness));
      }
    }
  }

  lk.lock();
  if (take > 0) {
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             round_start)
            .count());
    round_ewma_ns_ =
        round_ewma_ns_ <= 0.0 ? ns : 0.8 * round_ewma_ns_ + 0.2 * ns;
    if (faulted) {
      stats_.answered -= take;
      stats_.faulted += take;
    } else {
      stats_.coalesce_cache_hits += cache_hits;
    }
  }
  cv_.notify_all();  // stopping workers wait for pending_none(); blocked
                     // submitters wait for lane space
}

template <typename Req, typename Ans, typename AnswerFn>
void Dispatcher::drain_broadcast(std::unique_lock<std::mutex>& lk,
                                 Lane<Req, Ans>& lane, AnswerFn&& answer) {
  std::vector<Item<Req, Ans>> items;
  std::vector<Item<Req, Ans>> expired;
  take_round(lane, options_.max_coalesce, items, expired);
  const std::size_t take = items.size();
  const Snapshot snap{view_,
                      saturating_sub(latest_known_epoch(), view_.epoch())};
  if (take > 0) ++stats_.rounds;
  stats_.answered += take;
  stats_.expired += expired.size();
  if (take > 1) stats_.coalesced_requests += take;
  stats_.max_round = std::max(stats_.max_round, take);
  if (snap.staleness > 0) stats_.stale_served += take;
  lk.unlock();

  for (Item<Req, Ans>& item : expired) {
    item.promise.set_value(
        empty_reply<Ans>(Status::kTimeout, snap.view.epoch(), snap.staleness));
  }

  bool faulted = false;
  if (take > 0) {
    try {
      const Ans full = answer(snap.view);
      for (Item<Req, Ans>& item : items) {
        item.promise.set_value(
            Reply<Ans>{full, snap.view.epoch(), Status::kOk, snap.staleness});
      }
    } catch (...) {
      faulted = true;
      for (Item<Req, Ans>& item : items) {
        item.promise.set_value(empty_reply<Ans>(
            Status::kFaulted, snap.view.epoch(), snap.staleness));
      }
    }
  }

  lk.lock();
  if (faulted) {
    stats_.answered -= take;
    stats_.faulted += take;
  }
  cv_.notify_all();
}

void Dispatcher::serve_next(std::unique_lock<std::mutex>& lk) {
  // FIFO across lanes: the unclaimed lane holding the oldest request wins
  // (each lane's head is the oldest front across its client sub-queues).
  std::uint64_t best = ~std::uint64_t{0};
  int which = -1;
  const auto consider = [&](const auto& lane, int id) {
    if (lane.claimed || lane.total == 0) return;
    for (const auto& [client, sub] : lane.subs) {
      if (!sub.queue.empty() && sub.queue.front().seq < best) {
        best = sub.queue.front().seq;
        which = id;
      }
    }
  };
  consider(same_, 0);
  consider(paths_, 1);
  consider(sizes_, 2);
  consider(lcas_, 3);
  consider(bridges_, 4);
  consider(twoecc_, 5);
  consider(articulations_, 6);
  consider(samebcc_, 7);
  consider(bfslevels_, 8);
  consider(ccmember_, 9);
  switch (which) {
    case 0:
      drain_queries(lk, same_, &engine::Same2Ecc::pairs);
      break;
    case 1:
      drain_queries(lk, paths_, &engine::BridgesOnPath::pairs);
      break;
    case 2:
      drain_queries(lk, sizes_, &engine::ComponentSize::nodes);
      break;
    case 3:
      drain_queries(lk, lcas_, &engine::LcaBatch::pairs);
      break;
    case 4:
      drain_broadcast(lk, bridges_, [](const engine::View& view) {
        return bridges::BridgeMask(view.run(engine::Bridges{}));
      });
      break;
    case 5:
      drain_broadcast(lk, twoecc_, [](const engine::View& view) {
        const engine::TwoEccView answer = view.run(engine::TwoEcc{});
        return TwoEccSummary{answer.num_blocks, answer.num_bridges};
      });
      break;
    case 6:
      drain_broadcast(lk, articulations_, [](const engine::View& view) {
        return view.run(engine::Articulations{});
      });
      break;
    case 7:
      drain_queries(lk, samebcc_, &engine::SameBcc::pairs);
      break;
    case 8:
      drain_queries(lk, bfslevels_, &engine::BfsLevels::pairs);
      break;
    case 9:
      drain_queries(lk, ccmember_, &engine::CcMembership::nodes);
      break;
    default:
      break;
  }
}

void Dispatcher::worker_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    cv_.wait(lk, [&] {
      return (stop_ && pending_none()) || (!paused_ && pending_unclaimed());
    });
    if (!paused_ && pending_unclaimed()) {
      serve_next(lk);
      continue;
    }
    if (stop_ && pending_none()) return;
  }
}

}  // namespace emc::serve
