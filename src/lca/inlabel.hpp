// The Inlabel LCA algorithm of Schieber & Vishkin [50] (paper §3.1).
//
// Preprocessing assigns each node:
//   inlabel  — maps the node into the smallest full binary tree B with at
//              least |T| nodes (identified by inorder numbers), such that
//              the *path partition* and *inorder* properties hold: nodes
//              sharing an inlabel form a top-down path, and descendants map
//              to descendants in B.
//   ascendant — bitmask recording, for every inlabel path segment on the
//              node's root path, the height (= lowest set bit position) of
//              that segment's inlabel in B.
//   head     — for each inlabel value, the node of that path closest to the
//              root.
// together with levels. Queries then take O(1) bitwise operations.
//
// The preprocessing inputs (preorder, subtree size, level, parent) come from
// the Euler tour technique in the parallel variants, and from an iterative
// DFS in the single-core reference variant; everything after that is O(1)
// work per node ("the remaining part of the preprocessing runs in O(1) time
// and O(n) total work").
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/euler_tour.hpp"
#include "core/tree.hpp"
#include "device/context.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::lca {

class InlabelLca {
 public:
  /// Parallel preprocessing (Euler tour + bulk kernels) over `ctx`.
  /// Context::device() reproduces "GPU Inlabel"; a k-worker context
  /// reproduces "multi-core CPU Inlabel"; Context::sequential() runs the
  /// same kernels inline.
  static InlabelLca build_parallel(const device::Context& ctx,
                                   const core::ParentTree& tree,
                                   util::PhaseTimer* phases = nullptr);

  /// Single-core reference preprocessing (iterative DFS), the paper's
  /// "single-core CPU Inlabel" baseline.
  static InlabelLca build_sequential(const core::ParentTree& tree,
                                     util::PhaseTimer* phases = nullptr);

  /// Parallel preprocessing straight from an UNROOTED tree edge list: one
  /// Euler tour yields preorder/size/level AND the parent array. Callers
  /// that only have edges (the engine's stitched forest, the oracle's block
  /// tree) previously paid root_tree + build_parallel — two full tours over
  /// the same tree; this entry point halves that.
  static InlabelLca build_from_edges(const device::Context& ctx,
                                     const graph::EdgeList& edges, NodeId root,
                                     util::PhaseTimer* phases = nullptr);

  /// Lowest common ancestor of x and y. O(1).
  NodeId query(NodeId x, NodeId y) const;

  /// Answers a batch of queries with one bulk kernel (one virtual thread
  /// per query, as on the GPU).
  void query_batch(const device::Context& ctx,
                   const std::vector<std::pair<NodeId, NodeId>>& queries,
                   std::vector<NodeId>& answers) const;

  NodeId num_nodes() const { return static_cast<NodeId>(level_.size()); }
  const std::vector<NodeId>& levels() const { return level_; }

  /// The rooted tree the index was built over: parent per node (kNoNode for
  /// the root). Lets consumers that keep an InlabelLca walk or enumerate
  /// tree edges without storing the parent array a second time.
  const std::vector<NodeId>& parents() const { return parent_; }
  NodeId root() const { return root_; }

 private:
  InlabelLca() = default;

  /// Shared tail of preprocessing: from (preorder, size, level, parent)
  /// arrays to (inlabel, ascendant, head). Bulk-parallel over ctx.
  void finish_preprocessing(const device::Context& ctx,
                            const std::vector<NodeId>& preorder,
                            const std::vector<NodeId>& subtree_size,
                            util::PhaseTimer* phases);

  NodeId root_ = kNoNode;
  std::vector<NodeId> parent_;
  std::vector<NodeId> level_;
  std::vector<std::uint32_t> inlabel_;
  std::vector<std::uint32_t> ascendant_;
  std::vector<NodeId> head_;  // indexed by inlabel value, size n + 1
};

}  // namespace emc::lca
