#include "lca/naive.hpp"

#include <atomic>
#include <cassert>

#include "device/primitives.hpp"

namespace emc::lca {

NaiveLca NaiveLca::build(const device::Context& ctx,
                         const core::ParentTree& tree, int jumps_per_round,
                         util::PhaseTimer* phases) {
  assert(jumps_per_round >= 2 && "one dereference per round cannot advance");
  if (jumps_per_round < 2) jumps_per_round = 2;  // release-build safety
  NaiveLca lca;
  lca.parent_ = tree.parent;
  const auto n = static_cast<std::size_t>(tree.num_nodes());

  util::ScopedPhase phase(phases, "levels_pointer_jumping");

  // jump[v] points `len` real steps up (saturating at the root, which
  // points to itself with distance 0); dist[v] counts those steps. When all
  // pointers saturate, dist is the level.
  std::vector<NodeId> jump(n), dist(n), jump_next(n), dist_next(n);
  device::launch(ctx, n, [&](std::size_t v) {
    if (tree.parent[v] == kNoNode) {
      jump[v] = static_cast<NodeId>(v);
      dist[v] = 0;
    } else {
      jump[v] = tree.parent[v];
      dist[v] = 1;
    }
  });

  bool live = true;
  while (live) {
    std::atomic<int> any_live{0};
    // One kernel: chain `jumps_per_round` applications of the *old* jump
    // table (double-buffered, so this models the GPU's relaxed reads
    // between global synchronizations without data races).
    device::launch(ctx, n, [&](std::size_t v) {
      NodeId j = static_cast<NodeId>(v);
      NodeId d = 0;
      for (int step = 0; step < jumps_per_round; ++step) {
        d += dist[j];
        j = jump[j];
      }
      jump_next[v] = j;
      dist_next[v] = d;
      if (jump[j] != j) any_live.store(1, std::memory_order_relaxed);
    });
    jump.swap(jump_next);
    dist.swap(dist_next);
    live = any_live.load(std::memory_order_relaxed) != 0;
  }
  lca.level_ = std::move(dist);
  return lca;
}

NodeId NaiveLca::query(NodeId x, NodeId y) const {
  // Equalize levels, then march both pointers until they meet (§3.1).
  while (level_[x] > level_[y]) x = parent_[x];
  while (level_[y] > level_[x]) y = parent_[y];
  while (x != y) {
    x = parent_[x];
    y = parent_[y];
  }
  return x;
}

void NaiveLca::query_batch(
    const device::Context& ctx,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    std::vector<NodeId>& answers) const {
  answers.resize(queries.size());
  device::transform(ctx, queries.size(), answers.data(), [&](std::size_t q) {
    return query(queries[q].first, queries[q].second);
  });
}

}  // namespace emc::lca
