// Tarjan's offline LCA algorithm (union-find over a DFS).
//
// The third classical point in the design space the paper's §3 surveys:
// where Inlabel preprocesses then answers online in O(1), and the naive
// walker skips preprocessing, Tarjan's algorithm needs *all* queries up
// front and answers the whole batch in one DFS with near-O(1) amortized
// union-find operations. It is the strongest sequential baseline for the
// paper's q = n batch setting and appears as an extra row in
// bench_lca_baseline.
//
// Inherently sequential (it is a DFS, §4.1's parallelization obstacle), so
// there is deliberately no device variant.
#pragma once

#include <utility>
#include <vector>

#include "core/tree.hpp"
#include "util/types.hpp"

namespace emc::lca {

/// Answers all queries over the tree in O((n + q) α(n)) total time.
std::vector<NodeId> tarjan_offline_lca(
    const core::ParentTree& tree,
    const std::vector<std::pair<NodeId, NodeId>>& queries);

}  // namespace emc::lca
