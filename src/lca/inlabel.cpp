#include "lca/inlabel.hpp"

#include <atomic>
#include <cassert>

#include "device/primitives.hpp"
#include "util/bits.hpp"

namespace emc::lca {

namespace {

/// inlabel of a node with preorder interval [l, r] (1-based, inclusive):
/// the unique value in [l, r] with the most trailing zeros.
std::uint32_t inlabel_of(NodeId l, NodeId r) {
  if (l == r) return static_cast<std::uint32_t>(l);
  const auto diff = static_cast<std::uint32_t>(l - 1) ^
                    static_cast<std::uint32_t>(r);
  const int h = util::msb_index(diff);
  return static_cast<std::uint32_t>(r) & ~((1u << h) - 1u);
}

}  // namespace

void InlabelLca::finish_preprocessing(const device::Context& ctx,
                                      const std::vector<NodeId>& preorder,
                                      const std::vector<NodeId>& subtree_size,
                                      util::PhaseTimer* phases) {
  const auto n = static_cast<std::size_t>(level_.size());
  util::ScopedPhase phase(phases, "inlabel_numbers");

  inlabel_.resize(n);
  device::transform(ctx, n, inlabel_.data(), [&](std::size_t v) {
    return inlabel_of(preorder[v], preorder[v] + subtree_size[v] - 1);
  });

  // Path heads: the root, and every node whose inlabel differs from its
  // parent's. head_[inlabel] = that node.
  head_.assign(n + 1, kNoNode);
  device::launch(ctx, n, [&](std::size_t v) {
    const NodeId p = parent_[v];
    if (p == kNoNode || inlabel_[v] != inlabel_[p]) {
      head_[inlabel_[v]] = static_cast<NodeId>(v);
    }
  });

  // Ascendant bitmasks. asc(v) accumulates one bit per inlabel path segment
  // on the root path; along any root path there are at most ceil(log2(n+1))
  // segments (the inorder property maps them to a root path in B), so the
  // level-by-level sweep below terminates in O(log n) bulk rounds — this is
  // the PRAM-style O(log n)-time computation.
  ascendant_.assign(n, 0);
  std::vector<std::uint8_t> ready(n, 0);
  device::launch(ctx, n, [&](std::size_t v) {
    if (parent_[static_cast<NodeId>(v)] == kNoNode) {
      ascendant_[v] = 1u << util::lsb_index(inlabel_[v]);
      ready[v] = 1;
    }
  });
  // Only path heads need resolving through their parents; every other node
  // copies its head afterwards.
  std::vector<NodeId> heads_todo;
  heads_todo.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId p = parent_[v];
    if (p != kNoNode && inlabel_[v] != inlabel_[p]) {
      heads_todo.push_back(static_cast<NodeId>(v));
    }
  }
  bool progress = true;
  while (!heads_todo.empty() && progress) {
    std::atomic<std::size_t> resolved{0};
    device::launch(ctx, heads_todo.size(), [&](std::size_t i) {
      const NodeId v = heads_todo[i];
      if (ready[v]) return;
      const NodeId p = parent_[v];
      // The parent either lies on an already-resolved segment (its head is
      // ready) or not; segments resolve top-down, one level per round. A
      // sibling virtual thread may resolve ph within this same launch, so
      // the ready handoff is acquire/release: observing ready[ph] == 1
      // makes the paired ascendant_[ph] write visible (racing threads that
      // miss it just resolve v next round).
      const NodeId ph = head_[inlabel_[p]];
      if (std::atomic_ref(ready[ph]).load(std::memory_order_acquire)) {
        ascendant_[v] = ascendant_[ph] | (1u << util::lsb_index(inlabel_[v]));
        std::atomic_ref(ready[v]).store(1, std::memory_order_release);
        resolved.fetch_add(1, std::memory_order_relaxed);
      }
    });
    progress = resolved.load() > 0;
    std::erase_if(heads_todo, [&](NodeId v) { return ready[v] != 0; });
  }
  assert(heads_todo.empty() && "ascendant sweep failed to converge");
  // Non-head nodes share their segment head's ascendant. Heads skip the
  // self-copy so no thread writes a slot another may be reading.
  device::launch(ctx, n, [&](std::size_t v) {
    const NodeId h = head_[inlabel_[v]];
    if (static_cast<NodeId>(v) != h) ascendant_[v] = ascendant_[h];
  });
}

InlabelLca InlabelLca::build_parallel(const device::Context& ctx,
                                      const core::ParentTree& tree,
                                      util::PhaseTimer* phases) {
  InlabelLca lca;
  lca.root_ = tree.root;
  lca.parent_ = tree.parent;

  // Euler tour preprocessing (§2): preorder numbers, subtree sizes, levels.
  const graph::EdgeList edges = core::tree_edges(tree);
  const core::EulerTour tour =
      core::build_euler_tour(ctx, edges, tree.root, core::RankAlgo::kWeiJaja,
                             phases);
  const core::TreeStats stats = core::compute_tree_stats(ctx, tour, phases);
  lca.level_ = stats.level;
  lca.finish_preprocessing(ctx, stats.preorder, stats.subtree_size, phases);
  return lca;
}

InlabelLca InlabelLca::build_from_edges(const device::Context& ctx,
                                        const graph::EdgeList& edges,
                                        NodeId root,
                                        util::PhaseTimer* phases) {
  InlabelLca lca;
  lca.root_ = root;
  const core::EulerTour tour =
      core::build_euler_tour(ctx, edges, root, core::RankAlgo::kWeiJaja,
                             phases);
  core::TreeStats stats = core::compute_tree_stats(ctx, tour, phases);
  lca.parent_ = std::move(stats.parent);
  lca.level_ = std::move(stats.level);
  lca.finish_preprocessing(ctx, stats.preorder, stats.subtree_size, phases);
  return lca;
}

InlabelLca InlabelLca::build_sequential(const core::ParentTree& tree,
                                        util::PhaseTimer* phases) {
  InlabelLca lca;
  lca.root_ = tree.root;
  lca.parent_ = tree.parent;
  const auto n = static_cast<std::size_t>(tree.num_nodes());

  // Iterative DFS over child lists built by counting sort.
  std::vector<NodeId> preorder(n), subtree_size(n, 1), level(n, 0);
  {
    util::ScopedPhase phase(phases, "dfs");
    std::vector<EdgeId> child_offset(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      if (tree.parent[v] != kNoNode) ++child_offset[tree.parent[v] + 1];
    }
    for (std::size_t v = 0; v < n; ++v) child_offset[v + 1] += child_offset[v];
    std::vector<NodeId> children(n > 0 ? n - 1 : 0);
    {
      std::vector<EdgeId> cursor(child_offset.begin(), child_offset.end() - 1);
      for (std::size_t v = 0; v < n; ++v) {
        if (tree.parent[v] != kNoNode) {
          children[cursor[tree.parent[v]]++] = static_cast<NodeId>(v);
        }
      }
    }
    NodeId next_pre = 1;
    // Two-phase stack: negative marker = "children done, aggregate size".
    std::vector<NodeId> stack{tree.root};
    std::vector<EdgeId> child_cursor(n);
    for (std::size_t v = 0; v < n; ++v) child_cursor[v] = child_offset[v];
    preorder[tree.root] = next_pre++;
    level[tree.root] = 0;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      if (child_cursor[v] < child_offset[v + 1]) {
        const NodeId c = children[child_cursor[v]++];
        preorder[c] = next_pre++;
        level[c] = level[v] + 1;
        stack.push_back(c);
      } else {
        stack.pop_back();
        if (!stack.empty()) subtree_size[stack.back()] += subtree_size[v];
      }
    }
  }
  lca.level_ = std::move(level);
  const device::Context seq = device::Context::sequential();
  lca.finish_preprocessing(seq, preorder, subtree_size, phases);
  return lca;
}

NodeId InlabelLca::query(NodeId x, NodeId y) const {
  const std::uint32_t ix = inlabel_[x];
  const std::uint32_t iy = inlabel_[y];
  if (ix == iy) {
    // Same path segment: the shallower endpoint is the ancestor.
    return level_[x] <= level_[y] ? x : y;
  }
  // inlabel of the LCA's path: the lowest common set bit of the two
  // ascendant masks at or above the highest bit where ix and iy differ.
  const int i = util::msb_index(ix ^ iy);
  const std::uint32_t common =
      ascendant_[x] & ascendant_[y] & ~((1u << i) - 1u);
  const int j = util::lsb_index(common);
  const std::uint32_t inlabel_z = ((ix >> (j + 1)) << (j + 1)) | (1u << j);

  // Climb each argument to its lowest ancestor on the z path: take the
  // highest segment strictly below height j on the argument's root path,
  // and step to that segment head's parent.
  const auto climb = [&](NodeId v) {
    if (inlabel_[v] == inlabel_z) return v;
    const std::uint32_t below = ascendant_[v] & ((1u << j) - 1u);
    const int k = util::msb_index(below);
    const std::uint32_t inlabel_w =
        ((inlabel_[v] >> (k + 1)) << (k + 1)) | (1u << k);
    const NodeId w = head_[inlabel_w];
    return parent_[w];
  };
  const NodeId xz = climb(x);
  const NodeId yz = climb(y);
  return level_[xz] <= level_[yz] ? xz : yz;
}

void InlabelLca::query_batch(
    const device::Context& ctx,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    std::vector<NodeId>& answers) const {
  answers.resize(queries.size());
  device::transform(ctx, queries.size(), answers.data(), [&](std::size_t q) {
    return query(queries[q].first, queries[q].second);
  });
}

}  // namespace emc::lca
