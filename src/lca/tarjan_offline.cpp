#include "lca/tarjan_offline.hpp"

#include <numeric>

namespace emc::lca {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId find(NodeId x) {
    NodeId root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const NodeId next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges child's set into parent's, keeping `anchor` as the answer node.
  void absorb(NodeId child_root, NodeId parent_root) {
    parent_[child_root] = parent_root;
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

std::vector<NodeId> tarjan_offline_lca(
    const core::ParentTree& tree,
    const std::vector<std::pair<NodeId, NodeId>>& queries) {
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  const std::size_t q = queries.size();

  // Children lists and per-node query lists by counting sort.
  std::vector<EdgeId> child_offset(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (tree.parent[v] != kNoNode) ++child_offset[tree.parent[v] + 1];
  }
  for (std::size_t v = 0; v < n; ++v) child_offset[v + 1] += child_offset[v];
  std::vector<NodeId> children(n > 0 ? n - 1 : 0);
  {
    std::vector<EdgeId> cursor(child_offset.begin(), child_offset.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (tree.parent[v] != kNoNode) {
        children[cursor[tree.parent[v]]++] = static_cast<NodeId>(v);
      }
    }
  }
  std::vector<EdgeId> query_offset(n + 1, 0);
  for (const auto& [x, y] : queries) {
    ++query_offset[x + 1];
    ++query_offset[y + 1];
  }
  for (std::size_t v = 0; v < n; ++v) query_offset[v + 1] += query_offset[v];
  std::vector<EdgeId> query_at(2 * q);
  {
    std::vector<EdgeId> cursor(query_offset.begin(), query_offset.end() - 1);
    for (std::size_t i = 0; i < q; ++i) {
      query_at[cursor[queries[i].first]++] = static_cast<EdgeId>(i);
      query_at[cursor[queries[i].second]++] = static_cast<EdgeId>(i);
    }
  }

  // Iterative DFS. ancestor[r] = current answer node for the set rooted r;
  // a query (x, y) resolves when the second endpoint is visited: its LCA is
  // ancestor(find(first endpoint)).
  std::vector<NodeId> answers(q, kNoNode);
  UnionFind sets(n);
  std::vector<NodeId> ancestor(n);
  std::iota(ancestor.begin(), ancestor.end(), NodeId{0});
  std::vector<std::uint8_t> visited(n, 0);

  struct Frame {
    NodeId v;
    EdgeId next_child;
  };
  std::vector<Frame> stack{{tree.root, child_offset[tree.root]}};
  visited[tree.root] = 1;
  auto resolve_queries_at = [&](NodeId v) {
    for (EdgeId i = query_offset[v]; i < query_offset[v + 1]; ++i) {
      const EdgeId qi = query_at[i];
      const NodeId other =
          queries[qi].first == v ? queries[qi].second : queries[qi].first;
      if (visited[other]) answers[qi] = ancestor[sets.find(other)];
    }
  };
  resolve_queries_at(tree.root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const NodeId v = frame.v;
    if (frame.next_child < child_offset[v + 1]) {
      const NodeId c = children[frame.next_child++];
      visited[c] = 1;
      resolve_queries_at(c);
      stack.push_back({c, child_offset[c]});
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        // Child subtree finished: fold it into the parent's set; the
        // parent is the answer node for everything in the merged set.
        const NodeId p = stack.back().v;
        sets.absorb(sets.find(v), sets.find(p));
        ancestor[sets.find(p)] = p;
      }
    }
  }
  return answers;
}

}  // namespace emc::lca
