// RMQ-based LCA — the preliminary-experiment baseline (paper §3.1).
//
// "a variant of [Bender & Farach-Colton], using a segment tree and without
// the preprocessed lookup tables for all short sequences": write down the
// Euler visit sequence of nodes (2n-1 entries), record each node's first
// occurrence, and answer LCA(x, y) as the minimum-depth node on the visit
// interval between the first occurrences — an RMQ answered by the segment
// tree in O(log n).
//
// The paper uses it only to pick the sequential CPU baseline (its
// preprocessing is ~2x faster than Inlabel's, its queries ~3x slower);
// bench_lca_baseline reproduces that comparison.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/tree.hpp"
#include "device/context.hpp"
#include "rmq/segment_tree.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::lca {

class RmqLca {
 public:
  static RmqLca build(const core::ParentTree& tree,
                      util::PhaseTimer* phases = nullptr);

  NodeId query(NodeId x, NodeId y) const;

  void query_batch(const device::Context& ctx,
                   const std::vector<std::pair<NodeId, NodeId>>& queries,
                   std::vector<NodeId>& answers) const;

 private:
  RmqLca() = default;

  // (depth << 32 | node) packed so min-by-depth carries the node along.
  using Packed = std::uint64_t;
  std::vector<EdgeId> first_occurrence_;
  std::unique_ptr<rmq::MinSegmentTree<Packed>> tree_;
};

}  // namespace emc::lca
