// The naïve GPU LCA algorithm of Martins et al. [38] (paper §3.1).
//
// Preprocessing: node levels by pointer jumping — each node's ancestor
// pointer doubles in length per global synchronization, with the paper's
// practical twist of performing several jumps per synchronization ("We
// perform five jumps for each pointer in parallel, before synchronizing the
// threads globally"). O(log n) rounds, O(n log n) work: not theoretically
// optimal, but never the bottleneck.
//
// Query: one virtual thread per query walks the two pointers up, first
// equalizing levels, then stepping both until they meet. O(distance(x, y))
// per query — constant memory, extremely simple, and fast exactly when
// trees are shallow.
#pragma once

#include <utility>
#include <vector>

#include "core/tree.hpp"
#include "device/context.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::lca {

class NaiveLca {
 public:
  /// `jumps_per_round` chains that many ancestor-pointer dereferences inside
  /// one kernel before the global barrier; pointer lengths multiply by that
  /// factor per round. The paper uses 5; 2 recovers textbook pointer
  /// jumping (jump[v] = jump[jump[v]]) — compared in the ablation bench.
  /// Must be >= 2 (a single dereference makes no progress).
  static NaiveLca build(const device::Context& ctx,
                        const core::ParentTree& tree, int jumps_per_round = 5,
                        util::PhaseTimer* phases = nullptr);

  NodeId query(NodeId x, NodeId y) const;

  void query_batch(const device::Context& ctx,
                   const std::vector<std::pair<NodeId, NodeId>>& queries,
                   std::vector<NodeId>& answers) const;

  const std::vector<NodeId>& levels() const { return level_; }

 private:
  NaiveLca() = default;

  std::vector<NodeId> parent_;
  std::vector<NodeId> level_;
};

}  // namespace emc::lca
