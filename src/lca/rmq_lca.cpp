#include "lca/rmq_lca.hpp"

#include <algorithm>
#include <limits>

#include "device/primitives.hpp"

namespace emc::lca {

RmqLca RmqLca::build(const core::ParentTree& tree, util::PhaseTimer* phases) {
  RmqLca lca;
  const auto n = static_cast<std::size_t>(tree.num_nodes());

  util::ScopedPhase phase(phases, "rmq_build");

  // Children lists by counting sort, then an iterative DFS emitting the
  // Euler visit sequence (node repeated on re-entry after each child).
  std::vector<EdgeId> child_offset(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (tree.parent[v] != kNoNode) ++child_offset[tree.parent[v] + 1];
  }
  for (std::size_t v = 0; v < n; ++v) child_offset[v + 1] += child_offset[v];
  std::vector<NodeId> children(n > 0 ? n - 1 : 0);
  {
    std::vector<EdgeId> cursor(child_offset.begin(), child_offset.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (tree.parent[v] != kNoNode) {
        children[cursor[tree.parent[v]]++] = static_cast<NodeId>(v);
      }
    }
  }

  std::vector<Packed> visits;
  visits.reserve(2 * n - 1);
  lca.first_occurrence_.assign(n, kNoEdge);
  std::vector<NodeId> depth(n, 0);
  std::vector<NodeId> stack{tree.root};
  std::vector<EdgeId> cursor(child_offset.begin(), child_offset.end() - 1);
  auto visit = [&](NodeId v) {
    if (lca.first_occurrence_[v] == kNoEdge) {
      lca.first_occurrence_[v] = static_cast<EdgeId>(visits.size());
    }
    visits.push_back((static_cast<Packed>(static_cast<std::uint32_t>(depth[v]))
                      << 32) |
                     static_cast<std::uint32_t>(v));
  };
  visit(tree.root);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    if (cursor[v] < child_offset[v + 1]) {
      const NodeId c = children[cursor[v]++];
      depth[c] = depth[v] + 1;
      stack.push_back(c);
      visit(c);
    } else {
      stack.pop_back();
      if (!stack.empty()) visit(stack.back());
    }
  }

  const device::Context seq = device::Context::sequential();
  lca.tree_ = std::make_unique<rmq::MinSegmentTree<Packed>>(
      seq, visits, std::numeric_limits<Packed>::max());
  return lca;
}

NodeId RmqLca::query(NodeId x, NodeId y) const {
  auto lo = static_cast<std::size_t>(first_occurrence_[x]);
  auto hi = static_cast<std::size_t>(first_occurrence_[y]);
  if (lo > hi) std::swap(lo, hi);
  return static_cast<NodeId>(tree_->query(lo, hi) & 0xffffffffULL);
}

void RmqLca::query_batch(
    const device::Context& ctx,
    const std::vector<std::pair<NodeId, NodeId>>& queries,
    std::vector<NodeId>& answers) const {
  answers.resize(queries.size());
  device::transform(ctx, queries.size(), answers.data(), [&](std::size_t q) {
    return query(queries[q].first, queries[q].second);
  });
}

}  // namespace emc::lca
