#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "device/primitives.hpp"
#include "device/sort.hpp"
#include "util/rng.hpp"

namespace emc::graph {

bool EdgeList::valid() const {
  for (const Edge& e : edges) {
    if (e.u < 0 || e.u >= num_nodes || e.v < 0 || e.v >= num_nodes) return false;
    if (e.u == e.v) return false;
  }
  return true;
}

Csr build_csr(const device::Context& ctx, const EdgeList& graph) {
  const NodeId n = graph.num_nodes;
  const std::size_t m = graph.edges.size();
  Csr csr;
  csr.num_nodes = n;
  csr.row_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  csr.neighbors.resize(2 * m);
  csr.edge_ids.resize(2 * m);

  // Degree counting with device-style atomics, then a scan, then scatter.
  std::vector<EdgeId> degree(static_cast<std::size_t>(n), 0);
  device::launch(ctx, m, [&](std::size_t e) {
    std::atomic_ref<EdgeId>(degree[graph.edges[e].u])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<EdgeId>(degree[graph.edges[e].v])
        .fetch_add(1, std::memory_order_relaxed);
  });
  device::exclusive_scan(ctx, degree.data(), static_cast<std::size_t>(n),
                         csr.row_offsets.data());
  csr.row_offsets[static_cast<std::size_t>(n)] = static_cast<EdgeId>(2 * m);

  std::vector<EdgeId> cursor(csr.row_offsets.begin(),
                             csr.row_offsets.end() - 1);
  device::launch(ctx, m, [&](std::size_t e) {
    const Edge edge = graph.edges[e];
    const EdgeId slot_u = std::atomic_ref<EdgeId>(cursor[edge.u])
                              .fetch_add(1, std::memory_order_relaxed);
    csr.neighbors[slot_u] = edge.v;
    csr.edge_ids[slot_u] = static_cast<EdgeId>(e);
    const EdgeId slot_v = std::atomic_ref<EdgeId>(cursor[edge.v])
                              .fetch_add(1, std::memory_order_relaxed);
    csr.neighbors[slot_v] = edge.u;
    csr.edge_ids[slot_v] = static_cast<EdgeId>(e);
  });
  return csr;
}

namespace {

/// splitmix64 step as a pure finalizer: the cheap mixer both sides of
/// csr_matches() feed their (edge id, canonical endpoints) incidences
/// through before summing.
std::uint64_t mix64(std::uint64_t x) { return util::splitmix64(x); }

}  // namespace

bool csr_matches(const EdgeList& graph, const Csr& csr) {
  const std::size_t m = graph.edges.size();
  if (graph.num_nodes != csr.num_nodes || m != csr.num_edges()) return false;
  if (csr.row_offsets.size() != static_cast<std::size_t>(csr.num_nodes) + 1) {
    return false;
  }
  // Each undirected edge e = {u, v} appears in the CSR as two half-edges
  // carrying the same (edge id, endpoints) triple, so summing the mixed
  // triples over the edge list twice and over every CSR slot once must
  // agree. Summation makes both sides insensitive to adjacency order.
  // The edge id is mixed before combining: a raw (key ^ id) fold would let
  // structured inputs collide deterministically (edge {0,2} at id 0 and
  // edge {0,6} at id 2 fold to the same value), reducing the check to far
  // less than its nominal 64 bits on exactly the regular graphs it guards.
  std::uint64_t list_hash = 0;
  for (std::size_t e = 0; e < m; ++e) {
    const Edge edge = graph.edges[e];
    list_hash += 2 * mix64(edge_key(edge.u, edge.v) ^ mix64(e));
  }
  std::uint64_t csr_hash = 0;
  for (NodeId v = 0; v < csr.num_nodes; ++v) {
    for (EdgeId s = csr.row_offsets[v]; s < csr.row_offsets[v + 1]; ++s) {
      csr_hash += mix64(edge_key(v, csr.neighbors[s]) ^
                        mix64(csr.edge_ids[s]));
    }
  }
  return list_hash == csr_hash;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId find(NodeId x) {
    NodeId root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) x = std::exchange(parent_[x], root);
    return root;
  }

  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (a > b) std::swap(a, b);  // smaller id becomes the root
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

std::vector<NodeId> connected_component_labels(const EdgeList& graph) {
  UnionFind uf(static_cast<std::size_t>(graph.num_nodes));
  for (const Edge& e : graph.edges) uf.unite(e.u, e.v);
  std::vector<NodeId> labels(static_cast<std::size_t>(graph.num_nodes));
  for (NodeId v = 0; v < graph.num_nodes; ++v) labels[v] = uf.find(v);
  return labels;
}

std::size_t count_components(const std::vector<NodeId>& labels) {
  std::size_t count = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == static_cast<NodeId>(v)) ++count;
  }
  return count;
}

EdgeList largest_component(const EdgeList& graph) {
  const auto labels = connected_component_labels(graph);
  std::vector<std::size_t> size(static_cast<std::size_t>(graph.num_nodes), 0);
  for (NodeId v = 0; v < graph.num_nodes; ++v) ++size[labels[v]];
  NodeId best = 0;
  for (NodeId v = 0; v < graph.num_nodes; ++v) {
    if (size[labels[v]] > size[labels[best]]) best = v;
  }
  const NodeId keep = labels[best];

  std::vector<NodeId> remap(static_cast<std::size_t>(graph.num_nodes), kNoNode);
  NodeId next_id = 0;
  for (NodeId v = 0; v < graph.num_nodes; ++v) {
    if (labels[v] == keep) remap[v] = next_id++;
  }
  EdgeList out;
  out.num_nodes = next_id;
  out.edges.reserve(graph.edges.size());
  for (const Edge& e : graph.edges) {
    if (labels[e.u] == keep) out.edges.push_back({remap[e.u], remap[e.v]});
  }
  return out;
}

EdgeList canonicalize(const device::Context& ctx, const EdgeList& graph) {
  const std::size_t m = graph.edges.size();
  EdgeList out;
  out.num_nodes = graph.num_nodes;
  if (m == 0) return out;
  // Self-loops and out-of-range endpoints map to a sentinel that sorts past
  // every real key, so one sort groups rejects at the back and duplicates
  // (in either orientation) adjacently; compaction keeps each run's first.
  constexpr std::uint64_t kDropped = ~std::uint64_t{0};
  std::vector<std::uint64_t> keys(m);
  device::transform(ctx, m, keys.data(), [&](std::size_t e) {
    const Edge edge = graph.edges[e];
    if (!edge_valid(edge.u, edge.v, graph.num_nodes)) return kDropped;
    return edge_key(edge.u, edge.v);
  });
  device::sort_keys(ctx, keys.data(), m);
  std::vector<EdgeId> first(m);
  const std::size_t kept = device::copy_if_index(
      ctx, m,
      [&](std::size_t i) {
        return keys[i] != kDropped && (i == 0 || keys[i] != keys[i - 1]);
      },
      first.data());
  out.edges.resize(kept);
  device::transform(ctx, kept, out.edges.data(), [&](std::size_t i) {
    const std::uint64_t k = keys[first[i]];
    return Edge{static_cast<NodeId>(k >> 32),
                static_cast<NodeId>(k & 0xffffffffULL)};
  });
  return out;
}

EdgeList simplified(const EdgeList& graph) {
  return canonicalize(device::Context::sequential(), graph);
}

namespace {

/// Sequential BFS returning (farthest node, its distance). Used only for
/// diameter estimation during dataset preparation.
std::pair<NodeId, NodeId> bfs_farthest(const Csr& graph, NodeId source,
                                       std::vector<NodeId>& dist) {
  std::fill(dist.begin(), dist.end(), kNoNode);
  std::vector<NodeId> frontier{source};
  dist[source] = 0;
  NodeId far_node = source;
  NodeId far_dist = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (const NodeId u : frontier) {
      for (EdgeId i = graph.row_offsets[u]; i < graph.row_offsets[u + 1]; ++i) {
        const NodeId v = graph.neighbors[i];
        if (dist[v] == kNoNode) {
          dist[v] = dist[u] + 1;
          if (dist[v] > far_dist) {
            far_dist = dist[v];
            far_node = v;
          }
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return {far_node, far_dist};
}

}  // namespace

NodeId estimate_diameter(const Csr& graph, int sweeps, std::uint64_t seed) {
  if (graph.num_nodes == 0) return 0;
  util::Rng rng(seed);
  std::vector<NodeId> dist(static_cast<std::size_t>(graph.num_nodes));
  NodeId best = 0;
  NodeId start = static_cast<NodeId>(
      rng.below(static_cast<std::uint64_t>(graph.num_nodes)));
  for (int s = 0; s < sweeps; ++s) {
    const auto [far_node, far_dist] = bfs_farthest(graph, start, dist);
    best = std::max(best, far_dist);
    start = far_node;  // double-sweep: restart from the farthest node found
  }
  return best;
}

}  // namespace emc::graph
