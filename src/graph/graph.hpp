// Graph representations.
//
// EdgeList — the "very unstructured input" of §2.1: an unordered collection
// of undirected edges as pairs of node identifiers. All paper algorithms
// accept this (or a parent array, for trees).
//
// Csr — compressed sparse row adjacency built from an EdgeList; used by BFS,
// DFS, and the CK marking phase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "device/context.hpp"
#include "util/types.hpp"

namespace emc::graph {

/// Undirected edge {u, v}. Orientation of storage is not meaningful.
struct Edge {
  NodeId u;
  NodeId v;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Canonical 64-bit sort key of an undirected edge: (min << 32 | max).
/// The one packing shared by canonicalize() and the dynamic-graph batch
/// pipeline (both encode the library-wide 32-bit NodeId assumption here).
inline std::uint64_t edge_key(NodeId u, NodeId v) {
  const auto lo = static_cast<std::uint32_t>(u < v ? u : v);
  const auto hi = static_cast<std::uint32_t>(u < v ? v : u);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// The validity rule edge_key's callers filter by: in-range endpoints, no
/// self-loop. Shared so canonicalize() and the dynamic-graph batch paths
/// cannot drift.
inline bool edge_valid(NodeId u, NodeId v, NodeId num_nodes) {
  return u != v && u >= 0 && v >= 0 && u < num_nodes && v < num_nodes;
}

/// Unordered collection of undirected edges over nodes [0, num_nodes).
struct EdgeList {
  NodeId num_nodes = 0;
  std::vector<Edge> edges;

  std::size_t num_edges() const { return edges.size(); }

  /// Checks ids are in range and there are no self-loops. Parallel edges are
  /// allowed (they occur in raw generated graphs and are handled by every
  /// algorithm in this library).
  bool valid() const;
};

/// Compressed sparse row: for node v the incident half-edges are
/// neighbors[row_offsets[v] .. row_offsets[v+1]); edge_ids gives the
/// undirected edge id each half-edge came from, so algorithms can
/// distinguish parallel edges and map results back to EdgeList order.
struct Csr {
  NodeId num_nodes = 0;
  std::vector<EdgeId> row_offsets;  // size num_nodes + 1
  std::vector<NodeId> neighbors;    // size 2 * num_edges
  std::vector<EdgeId> edge_ids;     // size 2 * num_edges

  std::size_t num_edges() const { return neighbors.size() / 2; }
  EdgeId degree(NodeId v) const { return row_offsets[v + 1] - row_offsets[v]; }
};

/// Builds CSR adjacency from an edge list. Counting-sort based: O(n + m),
/// bulk-parallel over the device context.
Csr build_csr(const device::Context& ctx, const EdgeList& graph);

/// True iff `csr` could be the adjacency build_csr() produces for `graph`:
/// same node/edge counts and the same multiset of (edge id, endpoints)
/// incidences, compared through an order-insensitive 64-bit hash that each
/// side computes from its own representation alone (so nothing has to be
/// stored at build time and the Release hot path pays nothing). O(n + m)
/// sequential — this is the debug contract behind the dual-argument
/// algorithms: every function taking an (EdgeList, Csr) pair asserts it,
/// turning a silently wrong answer from mismatched arguments into an
/// immediate failure.
bool csr_matches(const EdgeList& graph, const Csr& csr);

/// Connected component labels via sequential union-find. This is the
/// *preprocessing* tool (e.g. extracting the largest component of a
/// generated graph, mirroring the paper's dataset preparation); the
/// device-parallel CC used inside Tarjan-Vishkin lives in
/// bridges/cc_spanning.hpp.
std::vector<NodeId> connected_component_labels(const EdgeList& graph);

/// Number of distinct values in a label array.
std::size_t count_components(const std::vector<NodeId>& labels);

/// Returns the subgraph induced by the largest connected component, with
/// nodes renumbered to [0, k). Mirrors "we preprocessed each graph to keep
/// only its largest connected component" (§4.2).
EdgeList largest_component(const EdgeList& graph);

/// Canonical simple form via the device sort: drops self-loops,
/// out-of-range endpoints, duplicate and reversed-duplicate edges, and
/// returns the survivors oriented (min, max) in ascending order. This is
/// the one shared normalization the dynamic-graph seeding and the dataset
/// preparation both use; every EdgeList returned by it satisfies valid()
/// and round-trips through canonicalize unchanged.
EdgeList canonicalize(const device::Context& ctx, const EdgeList& graph);

/// Removes self-loops and duplicate (parallel) edges. Sequential
/// convenience wrapper over canonicalize().
EdgeList simplified(const EdgeList& graph);

/// Basic statistics used by the Table 1 benchmark.
struct GraphStats {
  NodeId num_nodes = 0;
  std::size_t num_edges = 0;
  std::size_t num_bridges = 0;  // filled by callers that ran a bridge finder
  NodeId diameter_lower_bound = 0;
};

/// Diameter lower bound by iterated double-BFS sweeps (the standard
/// technique experimental papers use to report "Diameter" for large graphs).
NodeId estimate_diameter(const Csr& graph, int sweeps = 4,
                         std::uint64_t seed = 1);

}  // namespace emc::graph
