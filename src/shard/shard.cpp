#include "shard/shard.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "bcc/bcc.hpp"
#include "device/primitives.hpp"
#include "engine/policy.hpp"
#include "util/env.hpp"

namespace emc::shard {

namespace {

/// Batch routing mirrors engine::Policy::use_device_batch: one bulk launch
/// pays the launch latency but divides the per-query work across device
/// workers, while the host loop pays the undivided work latency-free. The
/// façade reads only machine parameters from the pinned context — on a
/// single-worker device the host loop always wins, exactly like the
/// unsharded engine's answer path, so sharding adds no routing skew.
bool use_device_batch(const device::Context& ctx, std::size_t size) {
  engine::PlanInputs inputs;
  inputs.device_workers = ctx.workers();
  inputs.launch_overhead = ctx.launch_overhead();
  return engine::Policy{}.use_device_batch(size, inputs);
}

}  // namespace

std::size_t resolve_shard_count(std::size_t from_options) {
  if (from_options != 0) return from_options;
  return static_cast<std::size_t>(
      util::env_int_or("EMC_SHARD_COUNT", 4, 1, 1024));
}

// --------------------------------------------------------------- Router

Router::Router(NodeId num_nodes, std::size_t shards)
    : num_nodes_(num_nodes), shards_(shards == 0 ? 1 : shards) {}

bool Router::insert_boundary(NodeId u, NodeId v) {
  const std::uint64_t key = graph::edge_key(u, v);
  std::lock_guard<std::mutex> lock(mu_);
  const bool changed = boundary_.insert(key).second;
  if (changed) ++version_;
  return changed;
}

bool Router::erase_boundary(NodeId u, NodeId v) {
  const std::uint64_t key = graph::edge_key(u, v);
  std::lock_guard<std::mutex> lock(mu_);
  const bool changed = boundary_.erase(key) != 0;
  if (changed) ++version_;
  return changed;
}

std::pair<std::size_t, std::size_t> Router::apply_boundary(
    const std::vector<std::pair<std::uint64_t, bool>>& ops) {
  std::size_t applied = 0;
  std::size_t noops = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, is_insert] : ops) {
    const bool changed =
        is_insert ? boundary_.insert(key).second : boundary_.erase(key) != 0;
    if (changed) {
      ++version_;
      ++applied;
    } else {
      ++noops;
    }
  }
  return {applied, noops};
}

std::pair<std::shared_ptr<const std::vector<graph::Edge>>, std::uint64_t>
Router::boundary_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_version_ != version_ || snapshot_ == nullptr) {
    std::vector<std::uint64_t> keys(boundary_.begin(), boundary_.end());
    std::sort(keys.begin(), keys.end());
    auto edges = std::make_shared<std::vector<graph::Edge>>();
    edges->reserve(keys.size());
    for (const std::uint64_t key : keys) {
      edges->push_back({static_cast<NodeId>(key >> 32),
                        static_cast<NodeId>(key & 0xffffffffu)});
    }
    snapshot_ = std::move(edges);
    snapshot_version_ = version_;
  }
  return {snapshot_, snapshot_version_};
}

std::uint64_t Router::boundary_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

std::size_t Router::boundary_edges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return boundary_.size();
}

// ----------------------------------------------------- ShardedView::State

/// The lazily-built cross-shard vertex-biconnectivity index: per-shard
/// BccIndexes plus the BccIndex of the gadget skeleton (see the stitching
/// note in shard.hpp). Immutable once published under State::bcc.
struct BccStitch {
  /// Pinned per-shard indexes — these keep each shard's epoch artifacts
  /// alive for the skeleton's lifetime.
  std::vector<std::shared_ptr<const bcc::BccIndex>> shard_bcc;
  /// The skeleton's own biconnectivity structure; its blocks restricted
  /// to terminal nodes are exactly the global blocks.
  bcc::BccIndex skeleton;
  /// Per GLOBAL vertex: its skeleton node — the terminal node when the
  /// vertex is preserved (local articulation or boundary endpoint), else
  /// its unique local block's gadget node, else kNoNode (in no block).
  std::vector<NodeId> bcc_node;
  /// Global articulation mask over all n vertices.
  std::vector<std::uint8_t> is_articulation;
};

struct ShardedView::State {
  const device::Context* ctx = nullptr;  // façade device (summary kernels)
  EpochVector epochs;
  std::uint64_t version = 0;
  std::size_t shards = 0;
  NodeId num_nodes = 0;
  std::vector<engine::View> views;  // epoch-pinned, one per shard
  std::shared_ptr<const std::vector<graph::Edge>> boundary;
  /// Summary node id of shard s's block b is offsets[s] + b.
  std::vector<NodeId> offsets;
  /// Per shard: block label per LOCAL node, borrowed from the pinned
  /// view's frozen 2-ecc index (alive as long as views[s] is).
  std::vector<const std::vector<NodeId>*> labels;
  graph::EdgeList summary_graph;  // shard bridges + boundary (multigraph)
  dynamic::ConnectivityOracle summary;
  /// Vertex count per summary 2-ecc block: shard-block weights accumulated
  /// under the summary's labels — the global ComponentSize answer.
  std::vector<NodeId> weight;
  /// Per-vertex composed lookups, built once per stitch: hnode[v] is the
  /// summary node of v's shard-local block, glabel[v] that node's global
  /// 2-ecc label. They collapse every query to the same flat label reads
  /// the unsharded oracle does — no per-query modulo or double hop (the
  /// arithmetic form cost >10x on large Same2Ecc batches).
  std::vector<NodeId> hnode;
  std::vector<NodeId> glabel;
  std::size_t num_edges = 0;
  std::size_t num_components = 0;
  /// Vertex-biconnectivity stitch, built by the FIRST BCC-family query on
  /// this snapshot (snapshots that never see one pay nothing — the 2-ecc
  /// stitch above stays exactly as cheap as before this family existed).
  /// Double-checked under bcc_mu; immutable once set.
  mutable std::mutex bcc_mu;
  mutable std::shared_ptr<const BccStitch> bcc;
  const BccStitch& ensure_bcc() const;
};

const BccStitch& ShardedView::State::ensure_bcc() const {
  std::lock_guard<std::mutex> lock(bcc_mu);
  if (bcc != nullptr) return *bcc;
  auto out = std::make_shared<BccStitch>();
  const std::size_t k = shards;
  const auto n = static_cast<std::size_t>(num_nodes);

  // Per-shard indexes (each builds under its OWN shard engine's lock on
  // first use) and gadget-node numbering: shard s's local block b becomes
  // skeleton node beta[s] + b — all gadget nodes first, terminals after.
  out->shard_bcc.resize(k);
  std::vector<NodeId> beta(k + 1, 0);
  for (std::size_t s = 0; s < k; ++s) {
    out->shard_bcc[s] = views[s].bcc_index();
    beta[s + 1] =
        beta[s] + static_cast<NodeId>(out->shard_bcc[s]->num_blocks);
  }

  // Preserved vertices (terminals): local articulation points plus
  // boundary endpoints. Terminal nodes are numbered in global vertex
  // order so the skeleton is deterministic for a given epoch vector.
  std::vector<std::vector<std::uint8_t>> preserved(k);
  for (std::size_t s = 0; s < k; ++s) {
    const auto& mask = out->shard_bcc[s]->is_articulation;
    preserved[s].assign(mask.begin(), mask.end());
  }
  for (const graph::Edge& e : *boundary) {
    preserved[e.u % k][e.u / k] = 1;
    preserved[e.v % k][e.v / k] = 1;
  }
  out->bcc_node.assign(n, kNoNode);
  NodeId next = beta[k];
  for (std::size_t v = 0; v < n; ++v) {
    if (preserved[v % k][v / k]) out->bcc_node[v] = next++;
  }

  // The skeleton: per local block a 2-connected gadget over its terminals
  // — a cycle gadget-node -> t1 -> ... -> tk -> gadget-node (one edge for
  // a single terminal, an isolated gadget node for none) — plus every
  // boundary edge between terminal nodes. Contracting a block would
  // invent articulations; the gadget keeps any two attachment points on
  // two internally-disjoint paths, exactly like the block it stands for.
  graph::EdgeList skel;
  skel.num_nodes = next;
  for (std::size_t s = 0; s < k; ++s) {
    const bcc::BccIndex& idx = *out->shard_bcc[s];
    const std::size_t ln = preserved[s].size();
    std::vector<std::vector<NodeId>> term(idx.num_blocks);
    for (std::size_t l = 0; l < ln; ++l) {
      const NodeId b = idx.vertex_block[l];
      if (preserved[s][l] && b != kNoNode) {
        term[b].push_back(out->bcc_node[l * k + s]);
      }
    }
    // A block's head has its parent edge OUTSIDE the block, so the pass
    // above never saw it — terminal lists stay duplicate-free.
    for (std::size_t b = 0; b < idx.num_blocks; ++b) {
      const auto h = static_cast<std::size_t>(idx.head[b]);
      if (preserved[s][h]) term[b].push_back(out->bcc_node[h * k + s]);
    }
    for (std::size_t b = 0; b < idx.num_blocks; ++b) {
      const NodeId g = beta[s] + static_cast<NodeId>(b);
      const std::vector<NodeId>& t = term[b];
      if (t.empty()) continue;
      skel.edges.push_back({g, t.front()});
      if (t.size() == 1) continue;
      for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        skel.edges.push_back({t[i], t[i + 1]});
      }
      skel.edges.push_back({t.back(), g});
    }
  }
  for (const graph::Edge& e : *boundary) {
    skel.edges.push_back({out->bcc_node[e.u], out->bcc_node[e.v]});
  }

  {
    const auto device_lock = ctx->exclusive();
    const bridges::SpanningForest forest =
        bridges::cc_spanning_forest(*ctx, skel);
    out->skeleton = bcc::BccIndex::build(*ctx, skel, forest);
  }

  // Non-preserved vertices map to their unique local block (if any) via
  // the head inverse. A head of >= 2 blocks is an articulation and
  // therefore preserved, so the last-write inverse is only ever read
  // where it is unique.
  for (std::size_t s = 0; s < k; ++s) {
    const bcc::BccIndex& idx = *out->shard_bcc[s];
    const std::size_t ln = preserved[s].size();
    std::vector<NodeId> head_block(ln, kNoNode);
    for (std::size_t b = 0; b < idx.num_blocks; ++b) {
      head_block[idx.head[b]] = static_cast<NodeId>(b);
    }
    for (std::size_t l = 0; l < ln; ++l) {
      if (preserved[s][l]) continue;
      const NodeId b = idx.vertex_block[l] != kNoNode ? idx.vertex_block[l]
                                                      : head_block[l];
      if (b != kNoNode) out->bcc_node[l * k + s] = beta[s] + b;
    }
  }

  // A non-preserved vertex sits in <= 1 local and therefore <= 1 global
  // block — never an articulation; a preserved one is one exactly when
  // its terminal node separates the skeleton.
  out->is_articulation.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (preserved[v % k][v / k]) {
      out->is_articulation[v] =
          out->skeleton.is_articulation[out->bcc_node[v]];
    }
  }
  bcc = std::move(out);
  return *bcc;
}

const EpochVector& ShardedView::epochs() const { return state_->epochs; }
std::uint64_t ShardedView::version() const { return state_->version; }
NodeId ShardedView::num_nodes() const { return state_->num_nodes; }
std::size_t ShardedView::num_edges() const { return state_->num_edges; }
std::size_t ShardedView::num_components() const {
  return state_->num_components;
}
std::size_t ShardedView::num_blocks() const {
  return state_->summary.num_blocks();
}
std::size_t ShardedView::num_bridges() const {
  return state_->summary.num_bridges();
}

const engine::View& ShardedView::shard_view(std::size_t shard) const {
  return state_->views[shard];
}
const std::vector<graph::Edge>& ShardedView::boundary() const {
  return *state_->boundary;
}
const graph::EdgeList& ShardedView::summary_graph() const {
  return state_->summary_graph;
}
const dynamic::ConnectivityOracle& ShardedView::summary() const {
  return state_->summary;
}

NodeId ShardedView::summary_node(NodeId v) const {
  assert(v < state_->num_nodes);
  return state_->hnode[v];
}

bool ShardedView::same_2ecc(NodeId u, NodeId v) const {
  return state_->glabel[u] == state_->glabel[v];
}

NodeId ShardedView::bridges_on_path(NodeId u, NodeId v) const {
  return state_->summary.bridges_on_path(summary_node(u), summary_node(v));
}

NodeId ShardedView::component_size(NodeId u) const {
  const State& s = *state_;
  return s.weight[s.glabel[u]];
}

bool ShardedView::same_bcc(NodeId u, NodeId v) const {
  if (u == v) return true;
  const BccStitch& bcc = state_->ensure_bcc();
  const NodeId nu = bcc.bcc_node[u];
  const NodeId nv = bcc.bcc_node[v];
  if (nu == kNoNode || nv == kNoNode) return false;
  // Same gadget node = same local block; otherwise ask the skeleton.
  return nu == nv || bcc.skeleton.same_bcc(nu, nv);
}

bool ShardedView::is_articulation(NodeId v) const {
  return state_->ensure_bcc().is_articulation[v] != 0;
}

std::vector<std::uint8_t> ShardedView::run(
    const engine::Same2Ecc& request) const {
  const State& s = *state_;
  std::vector<std::uint8_t> answers(request.pairs.size());
  const auto answer = [&](std::size_t q) {
    const auto& [u, v] = request.pairs[q];
    return static_cast<std::uint8_t>(s.glabel[u] == s.glabel[v]);
  };
  if (use_device_batch(*s.ctx, request.pairs.size())) {
    const auto lock = s.ctx->exclusive();
    device::transform(*s.ctx, request.pairs.size(), answers.data(), answer);
  } else {
    for (std::size_t q = 0; q < request.pairs.size(); ++q) {
      answers[q] = answer(q);
    }
  }
  return answers;
}

std::vector<NodeId> ShardedView::run(
    const engine::BridgesOnPath& request) const {
  const State& s = *state_;
  std::vector<NodeId> answers(request.pairs.size());
  const auto answer = [&](std::size_t q) {
    const auto& [u, v] = request.pairs[q];
    return s.summary.bridges_on_path(s.hnode[u], s.hnode[v]);
  };
  if (use_device_batch(*s.ctx, request.pairs.size())) {
    const auto lock = s.ctx->exclusive();
    device::transform(*s.ctx, request.pairs.size(), answers.data(), answer);
  } else {
    for (std::size_t q = 0; q < request.pairs.size(); ++q) {
      answers[q] = answer(q);
    }
  }
  return answers;
}

std::vector<NodeId> ShardedView::run(
    const engine::ComponentSize& request) const {
  // Weighted lookups are O(1) host reads — a launch could never win.
  std::vector<NodeId> answers;
  answers.reserve(request.nodes.size());
  for (const NodeId v : request.nodes) answers.push_back(component_size(v));
  return answers;
}

std::vector<std::uint8_t> ShardedView::run(
    const engine::SameBcc& request) const {
  const State& s = *state_;
  const BccStitch& bcc = s.ensure_bcc();  // once, outside the batch
  std::vector<std::uint8_t> answers(request.pairs.size());
  const auto answer = [&](std::size_t q) -> std::uint8_t {
    const auto& [u, v] = request.pairs[q];
    if (u == v) return 1;
    const NodeId nu = bcc.bcc_node[u];
    const NodeId nv = bcc.bcc_node[v];
    if (nu == kNoNode || nv == kNoNode) return 0;
    return nu == nv || bcc.skeleton.same_bcc(nu, nv) ? 1 : 0;
  };
  if (use_device_batch(*s.ctx, request.pairs.size())) {
    const auto lock = s.ctx->exclusive();
    device::transform(*s.ctx, request.pairs.size(), answers.data(), answer);
  } else {
    for (std::size_t q = 0; q < request.pairs.size(); ++q) {
      answers[q] = answer(q);
    }
  }
  return answers;
}

std::vector<std::uint8_t> ShardedView::run(const engine::Articulations&) const {
  return state_->ensure_bcc().is_articulation;
}

std::vector<NodeId> ShardedView::run(
    const engine::CcMembership& request) const {
  const State& s = *state_;
  const std::vector<NodeId>& cc = s.summary.component_labels();
  std::vector<NodeId> answers(request.nodes.size());
  // Shard bridges and boundary edges connect blocks WITHIN a component,
  // so summary components are exactly global components; the label is the
  // summary representative of v's block — a partition id, not a vertex.
  const auto answer = [&](std::size_t q) {
    return cc[s.hnode[request.nodes[q]]];
  };
  if (use_device_batch(*s.ctx, request.nodes.size())) {
    const auto lock = s.ctx->exclusive();
    device::transform(*s.ctx, request.nodes.size(), answers.data(), answer);
  } else {
    for (std::size_t q = 0; q < request.nodes.size(); ++q) {
      answers[q] = answer(q);
    }
  }
  return answers;
}

// ---------------------------------------------------------- ShardedGraph

struct ShardedGraph::Shard {
  // Declaration order IS the teardown contract: the Dispatcher is
  // destroyed first, the (stopped) Ingestor after it, then the Session,
  // the graph it serves, and finally the Engine whose contexts ran it all.
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<dynamic::DynamicGraph> graph;
  std::unique_ptr<engine::Session> session;
  std::unique_ptr<ingest::Ingestor> ingestor;
  std::unique_ptr<serve::Dispatcher> dispatcher;
};

ShardedGraph::ShardedGraph(NodeId num_nodes, const ShardedOptions& options)
    : ShardedGraph(num_nodes, graph::EdgeList{num_nodes, {}}, options) {}

ShardedGraph::ShardedGraph(NodeId num_nodes, const graph::EdgeList& initial,
                           const ShardedOptions& options)
    : options_(options),
      router_(num_nodes, resolve_shard_count(options.shards)) {
  const std::size_t k = router_.shards();
  // Per-shard engines get a bounded worker slice so K shards don't each
  // spawn a machine-wide pool; the façade engine answers cross-shard
  // batches and must route them exactly like an unsharded Engine would,
  // so it takes the machine defaults (worker count drives the cost
  // model's host-loop-vs-bulk-kernel decision).
  const engine::EngineOptions eopt{
      .device_workers = options_.shard_workers,
      .multicore_workers = options_.shard_workers,
      .policy = {},
      .calibrate = false};
  facade_ = std::make_unique<engine::Engine>(engine::EngineOptions{
      .device_workers = 0, .multicore_workers = 0, .policy = {},
      .calibrate = false});

  // Partition the seed: intra-shard slices in LOCAL ids, boundary edges
  // into the router's set.
  std::vector<graph::EdgeList> parts(k);
  for (std::size_t s = 0; s < k; ++s) {
    parts[s].num_nodes = router_.local_nodes(s);
  }
  for (const graph::Edge& e : initial.edges) {
    if (!graph::edge_valid(e.u, e.v, num_nodes)) {
      ++invalid_dropped_;
      continue;
    }
    if (router_.is_boundary(e.u, e.v)) {
      if (router_.insert_boundary(e.u, e.v)) {
        ++boundary_applied_;
      } else {
        ++boundary_noops_;
      }
    } else {
      parts[router_.shard_of(e.u)].edges.push_back(
          {router_.local_of(e.u), router_.local_of(e.v)});
    }
  }

  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<engine::Engine>(eopt);
    shard->graph = std::make_unique<dynamic::DynamicGraph>(
        shard->engine->device(), parts[s]);
    shard->session = std::make_unique<engine::Session>(
        shard->engine->session(*shard->graph));
    // Dispatcher first (it pins epoch 0's view, which drives the session —
    // the writer thread must not exist yet), then the Ingestor, then the
    // attach that reroutes publishes through the dispatcher's
    // retry/backoff/bounded-staleness path. No traffic flows until this
    // constructor returns, so the rewiring is race-free.
    shard->dispatcher = std::make_unique<serve::Dispatcher>(
        shard->session->view(), options_.dispatch);
    shard->ingestor = std::make_unique<ingest::Ingestor>(
        *shard->engine, *shard->graph, *shard->session, options_.ingest);
    shard->dispatcher->attach_ingestor(*shard->ingestor);
    shards_.push_back(std::move(shard));
  }
}

ShardedGraph::~ShardedGraph() { stop(); }

std::size_t ShardedGraph::submit(const std::vector<ingest::Update>& updates) {
  const std::size_t k = router_.shards();
  std::vector<std::vector<ingest::Update>> per_shard(k);
  std::vector<std::pair<std::uint64_t, bool>> boundary_ops;
  boundary_ops.reserve(updates.size());
  std::size_t accepted = 0;
  std::size_t invalid = 0;
  for (const ingest::Update& up : updates) {
    const NodeId u = up.edge.u;
    const NodeId v = up.edge.v;
    if (!graph::edge_valid(u, v, router_.num_nodes())) {
      ++invalid;
      continue;
    }
    if (router_.is_boundary(u, v)) {
      boundary_ops.push_back({graph::edge_key(u, v),
                              up.kind == ingest::UpdateKind::kInsert});
      ++accepted;
    } else {
      ingest::Update local = up;
      local.edge = {router_.local_of(u), router_.local_of(v)};
      per_shard[router_.shard_of(u)].push_back(local);
    }
  }
  std::size_t applied = 0;
  std::size_t noops = 0;
  if (!boundary_ops.empty()) {
    std::tie(applied, noops) = router_.apply_boundary(boundary_ops);
  }
  for (std::size_t s = 0; s < k; ++s) {
    if (!per_shard[s].empty()) {
      accepted += shards_[s]->ingestor->submit(per_shard[s]);
    }
  }
  if (applied + noops + invalid > 0) {
    std::lock_guard<std::mutex> lock(boundary_ledger_mu_);
    boundary_applied_ += applied;
    boundary_noops_ += noops;
    invalid_dropped_ += invalid;
  }
  return accepted;
}

std::size_t ShardedGraph::insert(const std::vector<graph::Edge>& edges,
                                 std::uint32_t producer) {
  std::vector<ingest::Update> ups;
  ups.reserve(edges.size());
  for (const graph::Edge& e : edges) {
    ups.push_back({e, ingest::UpdateKind::kInsert, producer, 0});
  }
  return submit(ups);
}

std::size_t ShardedGraph::erase(const std::vector<graph::Edge>& edges,
                                std::uint32_t producer) {
  std::vector<ingest::Update> ups;
  ups.reserve(edges.size());
  for (const graph::Edge& e : edges) {
    ups.push_back({e, ingest::UpdateKind::kErase, producer, 0});
  }
  return submit(ups);
}

void ShardedGraph::drain() {
  for (auto& shard : shards_) shard->ingestor->drain();
}

void ShardedGraph::flush() {
  for (auto& shard : shards_) shard->ingestor->flush();
}

void ShardedGraph::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Ingestors first: their final publishes land through the attached
  // Dispatchers, which must still be running.
  for (auto& shard : shards_) shard->ingestor->stop();
  for (auto& shard : shards_) shard->dispatcher->stop();
}

EpochVector ShardedGraph::current_epochs() const {
  EpochVector vec;
  vec.shard_epochs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    vec.shard_epochs.push_back(shard->dispatcher->current_view().epoch());
  }
  vec.boundary_version = router_.boundary_version();
  return vec;
}

ShardedView ShardedGraph::view() { return ShardedView(stitch()); }

std::shared_ptr<const ShardedView::State> ShardedGraph::stitch() {
  const std::size_t k = router_.shards();
  // Pin first, compare second: the epoch vector is read off the very views
  // we hold, so it cannot tear against concurrent publishes.
  std::vector<engine::View> views;
  views.reserve(k);
  EpochVector vec;
  vec.shard_epochs.reserve(k);
  for (const auto& shard : shards_) {
    views.push_back(shard->dispatcher->current_view());
    vec.shard_epochs.push_back(views.back().epoch());
  }
  auto [boundary, boundary_version] = router_.boundary_snapshot();
  vec.boundary_version = boundary_version;

  std::lock_guard<std::mutex> lock(stitch_mu_);
  if (stitched_ != nullptr && stitched_->epochs == vec) {
    ++stitch_hits_;
    return stitched_;
  }
  ++stitch_builds_;

  auto state = std::make_shared<ShardedView::State>();
  state->ctx = &facade_->device();
  state->epochs = std::move(vec);
  state->version = ++stitch_version_;
  state->shards = k;
  state->num_nodes = router_.num_nodes();
  state->views = std::move(views);
  state->boundary = std::move(boundary);

  // Contract each shard to its 2-ecc blocks. These run on FROZEN views —
  // inside the engine they are artifact-cache hits, not kernel work.
  std::vector<engine::TwoEccView> blocks(k);
  state->offsets.assign(k + 1, 0);
  state->labels.resize(k);
  for (std::size_t s = 0; s < k; ++s) {
    blocks[s] = state->views[s].run(engine::TwoEcc{});
    state->labels[s] = blocks[s].labels;
    state->offsets[s + 1] =
        state->offsets[s] + static_cast<NodeId>(blocks[s].num_blocks);
  }

  // Summary graph: each shard's bridge edges block-to-block, plus every
  // boundary edge mapped through its endpoints' shard labels. Parallel
  // summary edges are deliberately KEPT (EdgeList is a multigraph): two
  // boundary edges landing on the same block pair demote each other to
  // non-bridges, which is exactly the global answer.
  graph::EdgeList summary;
  summary.num_nodes = state->offsets[k];
  std::size_t intra_edges = 0;
  for (std::size_t s = 0; s < k; ++s) {
    const bridges::BridgeMask& mask =
        state->views[s].run(engine::Bridges{});
    const std::vector<graph::Edge>& edges = state->views[s].edges().edges;
    const std::vector<NodeId>& labels = *state->labels[s];
    const NodeId off = state->offsets[s];
    intra_edges += edges.size();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (mask[e] != 0) {
        summary.edges.push_back(
            {off + labels[edges[e].u], off + labels[edges[e].v]});
      }
    }
  }
  for (const graph::Edge& e : *state->boundary) {
    const std::size_t su = router_.shard_of(e.u);
    const std::size_t sv = router_.shard_of(e.v);
    summary.edges.push_back(
        {state->offsets[su] + (*state->labels[su])[router_.local_of(e.u)],
         state->offsets[sv] + (*state->labels[sv])[router_.local_of(e.v)]});
  }
  state->num_edges = intra_edges + state->boundary->size();
  state->summary_graph = std::move(summary);

  if (state->summary_graph.num_nodes > 0) {
    const auto device_lock = state->ctx->exclusive();
    state->summary.build(*state->ctx, state->summary_graph);
  }

  // Weights: a summary block's vertex count is the sum of its shard
  // blocks' vertex counts (TwoEccView::sizes — the engine plumbing this
  // module added). O(total shard blocks), not O(n).
  const std::vector<NodeId>& slabels = state->summary.block_labels();
  state->weight.assign(state->summary.num_blocks(), 0);
  for (std::size_t s = 0; s < k; ++s) {
    const NodeId off = state->offsets[s];
    for (std::size_t b = 0; b < blocks[s].num_blocks; ++b) {
      state->weight[slabels[off + static_cast<NodeId>(b)]] +=
          (*blocks[s].sizes)[b];
    }
  }
  const std::vector<NodeId>& cc = state->summary.component_labels();
  std::size_t components = 0;
  for (std::size_t h = 0; h < cc.size(); ++h) {
    components += cc[h] == static_cast<NodeId>(h) ? 1 : 0;
  }
  state->num_components = components;

  // Per-vertex composed tables (one O(n) pass; every later query is flat
  // label reads, the same shape as the unsharded oracle's).
  const auto n = static_cast<std::size_t>(state->num_nodes);
  state->hnode.resize(n);
  state->glabel.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId h = state->offsets[v % k] +
                     (*state->labels[v % k])[v / k];
    state->hnode[v] = h;
    state->glabel[v] = slabels[h];
  }

  stitched_ = std::move(state);
  return stitched_;
}

ShardedStats ShardedGraph::stats() const {
  ShardedStats out;
  const std::size_t k = router_.shards();
  out.shards = k;
  out.per_shard_dispatch.reserve(k);
  out.per_shard_ingest.reserve(k);
  for (const auto& shard : shards_) {
    const serve::DispatcherStats d = shard->dispatcher->stats();
    const ingest::IngestorStats i = shard->ingestor->stats();

    // Dispatcher ledger: counters sum; high-water marks and epoch gauges
    // take the worst shard; degraded is sticky across the fleet.
    out.dispatch.submitted += d.submitted;
    out.dispatch.answered += d.answered;
    out.dispatch.rounds += d.rounds;
    out.dispatch.coalesced_requests += d.coalesced_requests;
    out.dispatch.max_round = std::max(out.dispatch.max_round, d.max_round);
    out.dispatch.views_published += d.views_published;
    out.dispatch.shed += d.shed;
    out.dispatch.rejected += d.rejected;
    out.dispatch.expired += d.expired;
    out.dispatch.cancelled += d.cancelled;
    out.dispatch.faulted += d.faulted;
    out.dispatch.unsupported += d.unsupported;
    out.dispatch.coalesce_cache_hits += d.coalesce_cache_hits;
    out.dispatch.stale_served += d.stale_served;
    out.dispatch.publish_retries += d.publish_retries;
    out.dispatch.publish_failures += d.publish_failures;
    out.dispatch.publish_replays += d.publish_replays;
    out.dispatch.publish_rebuilds += d.publish_rebuilds;
    // faults_injected mirrors the PROCESS-WIDE failpoint counter — max,
    // not sum, or K shards would count each fault K times.
    out.dispatch.faults_injected =
        std::max(out.dispatch.faults_injected, d.faults_injected);
    out.dispatch.max_queue_depth =
        std::max(out.dispatch.max_queue_depth, d.max_queue_depth);
    out.dispatch.degraded = out.dispatch.degraded || d.degraded;
    out.dispatch.staleness = std::max(out.dispatch.staleness, d.staleness);
    out.dispatch.ingest_lag += d.ingest_lag;

    out.ingest.submitted += i.submitted;
    out.ingest.accepted += i.accepted;
    out.ingest.rejected += i.rejected;
    out.ingest.shed += i.shed;
    out.ingest.cancelled += i.cancelled;
    out.ingest.queue_depth += i.queue_depth;
    out.ingest.max_queue_depth =
        std::max(out.ingest.max_queue_depth, i.max_queue_depth);
    out.ingest.applied += i.applied;
    out.ingest.applied_effective += i.applied_effective;
    out.ingest.batches += i.batches;
    out.ingest.insert_batches += i.insert_batches;
    out.ingest.erase_batches += i.erase_batches;
    out.ingest.max_batch = std::max(out.ingest.max_batch, i.max_batch);
    out.ingest.publishes += i.publishes;
    out.ingest.publish_failures += i.publish_failures;
    out.ingest.graph_epoch = std::max(out.ingest.graph_epoch, i.graph_epoch);
    out.ingest.published_epoch =
        std::max(out.ingest.published_epoch, i.published_epoch);
    out.ingest.lag += i.lag;
    out.ingest.latency_ewma_us =
        std::max(out.ingest.latency_ewma_us, i.latency_ewma_us);

    const std::uint64_t applied_epoch = shard->ingestor->graph_epoch();
    const std::uint64_t serving_epoch =
        shard->dispatcher->current_view().epoch();
    out.shard_epochs.push_back(serving_epoch);
    out.shard_staleness.push_back(
        saturating_sub(applied_epoch, serving_epoch));
    out.max_staleness =
        std::max(out.max_staleness, out.shard_staleness.back());

    out.per_shard_dispatch.push_back(d);
    out.per_shard_ingest.push_back(i);
  }
  out.boundary_version = router_.boundary_version();
  out.boundary_edges = router_.boundary_edges();
  {
    std::lock_guard<std::mutex> lock(boundary_ledger_mu_);
    out.boundary_applied = boundary_applied_;
    out.boundary_noops = boundary_noops_;
    out.invalid_dropped = invalid_dropped_;
  }
  {
    std::lock_guard<std::mutex> lock(stitch_mu_);
    out.stitch_builds = stitch_builds_;
    out.stitch_hits = stitch_hits_;
  }
  return out;
}

engine::Engine& ShardedGraph::shard_engine(std::size_t shard) {
  return *shards_[shard]->engine;
}
serve::Dispatcher& ShardedGraph::shard_dispatcher(std::size_t shard) {
  return *shards_[shard]->dispatcher;
}
ingest::Ingestor& ShardedGraph::shard_ingestor(std::size_t shard) {
  return *shards_[shard]->ingestor;
}

// ------------------------------------------------------ ShardedDispatcher

ShardedDispatcher::ShardedDispatcher(ShardedGraph& graph,
                                     const ShardedDispatcherOptions& options)
    : graph_(graph), options_(options) {
  const unsigned workers = options_.workers == 0 ? 1 : options_.workers;
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { run(); });
  }
}

ShardedDispatcher::~ShardedDispatcher() { stop(); }

template <typename Value, typename Fn>
std::future<serve::Reply<Value>> ShardedDispatcher::enqueue(Fn&& answer) {
  auto promise = std::make_shared<std::promise<serve::Reply<Value>>>();
  std::future<serve::Reply<Value>> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    if (stopping_) {
      ++cancelled_;
      serve::Reply<Value> reply;
      reply.status = serve::Status::kCancelled;
      promise->set_value(std::move(reply));
      return future;
    }
    jobs_.push_back(
        [this, promise, answer = std::forward<Fn>(answer)]() mutable {
          serve::Reply<Value> reply;
          try {
            // One pinned view per request: the map and the answer read the
            // same epoch vector, no matter how the shards move meanwhile.
            const ShardedView view = graph_.view();
            reply.value = answer(view);
            reply.epoch = view.version();
            reply.status = serve::Status::kOk;
            std::lock_guard<std::mutex> counter_lock(mu_);
            ++answered_;
          } catch (...) {
            reply.status = serve::Status::kFaulted;
            std::lock_guard<std::mutex> counter_lock(mu_);
            ++faulted_;
          }
          promise->set_value(std::move(reply));
        });
  }
  cv_.notify_one();
  return future;
}

std::future<serve::Reply<std::vector<std::uint8_t>>> ShardedDispatcher::submit(
    engine::Same2Ecc request) {
  return enqueue<std::vector<std::uint8_t>>(
      [request = std::move(request)](const ShardedView& view) {
        return view.run(request);
      });
}

std::future<serve::Reply<std::vector<NodeId>>> ShardedDispatcher::submit(
    engine::BridgesOnPath request) {
  return enqueue<std::vector<NodeId>>(
      [request = std::move(request)](const ShardedView& view) {
        return view.run(request);
      });
}

std::future<serve::Reply<std::vector<NodeId>>> ShardedDispatcher::submit(
    engine::ComponentSize request) {
  return enqueue<std::vector<NodeId>>(
      [request = std::move(request)](const ShardedView& view) {
        return view.run(request);
      });
}

std::future<serve::Reply<serve::TwoEccSummary>> ShardedDispatcher::submit(
    engine::TwoEcc) {
  return enqueue<serve::TwoEccSummary>([](const ShardedView& view) {
    return serve::TwoEccSummary{view.num_blocks(), view.num_bridges()};
  });
}

std::future<serve::Reply<std::size_t>> ShardedDispatcher::submit(
    engine::Bridges) {
  return enqueue<std::size_t>(
      [](const ShardedView& view) { return view.num_bridges(); });
}

std::future<serve::Reply<std::vector<std::uint8_t>>> ShardedDispatcher::submit(
    engine::SameBcc request) {
  return enqueue<std::vector<std::uint8_t>>(
      [request = std::move(request)](const ShardedView& view) {
        return view.run(request);
      });
}

std::future<serve::Reply<std::vector<std::uint8_t>>> ShardedDispatcher::submit(
    engine::Articulations request) {
  return enqueue<std::vector<std::uint8_t>>(
      [request = std::move(request)](const ShardedView& view) {
        return view.run(request);
      });
}

std::future<serve::Reply<std::vector<NodeId>>> ShardedDispatcher::submit(
    engine::CcMembership request) {
  return enqueue<std::vector<NodeId>>(
      [request = std::move(request)](const ShardedView& view) {
        return view.run(request);
      });
}

std::future<serve::Reply<std::vector<NodeId>>> ShardedDispatcher::submit(
    engine::BfsLevels) {
  // The honest refusal (see shard.hpp): resolved inline, never queued, so
  // no worker burns a pinned view on a family the façade cannot answer.
  // Ledger-balanced: counts as submitted AND unsupported.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    ++unsupported_;
  }
  std::promise<serve::Reply<std::vector<NodeId>>> promise;
  std::future<serve::Reply<std::vector<NodeId>>> future = promise.get_future();
  serve::Reply<std::vector<NodeId>> reply;
  reply.status = serve::Status::kUnsupported;
  promise.set_value(std::move(reply));
  return future;
}

void ShardedDispatcher::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
    if (jobs_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::function<void()> job = std::move(jobs_.front());
    jobs_.pop_front();
    lock.unlock();
    job();  // answers + counts under its own locking
    lock.lock();
  }
}

void ShardedDispatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  // Workers drain every queued job before exiting: no future is abandoned.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ShardedStats ShardedDispatcher::stats() const {
  ShardedStats out = graph_.stats();
  std::lock_guard<std::mutex> lock(mu_);
  out.dispatch.submitted += submitted_;
  out.dispatch.answered += answered_;
  out.dispatch.cancelled += cancelled_;
  out.dispatch.faulted += faulted_;
  out.dispatch.unsupported += unsupported_;
  return out;
}

}  // namespace emc::shard
