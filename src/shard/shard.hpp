// emc::shard — K-shard partitioned graphs behind one routing façade.
//
// One DynamicGraph is one memory arena driven by one writer thread: that
// caps sustained write throughput at a single Ingestor and caps graph size
// at one arena. This module is the other half of the scaling story:
//
//   ShardedGraph — hash-partitions the vertex set into K shards
//     (shard_of(v) = v % K), each owning a full vertical slice of the
//     serving stack: its own engine::Engine (own execution contexts, so
//     shards never serialize on one driver lock), DynamicGraph (LOCAL
//     vertex ids — shard s holds v/K for every v with v % K == s),
//     engine::Session, ingest::Ingestor (K writer threads applying in
//     parallel) and serve::Dispatcher (per-shard fault-tolerant publish:
//     retry/backoff/bounded staleness stay PER SHARD — one shard's failing
//     publish leaves the others serving fresh epochs).
//
//   Router — classifies every edge by its endpoints' shards. An
//     INTRA-shard edge is remapped to local ids and queued on the owning
//     shard's Ingestor; a CROSS-shard (boundary) edge never enters any
//     DynamicGraph — it lands in the router's dedicated boundary set (a
//     canonical-key hash set under one mutex, versioned per effective
//     change). The modulo rule makes both directions O(1) arithmetic:
//     local(v) = v / K, global(s, l) = l * K + s — no translation tables.
//
//   ShardedView — the cross-shard consistency snapshot: one epoch-pinned
//     engine::View per shard plus one boundary-set snapshot, identified by
//     the EPOCH VECTOR (K per-shard epochs, boundary version). Cross-shard
//     connectivity is answered by STITCHING: contract each shard to its
//     2-ecc block graph (per-shard bulk TwoEcc/Bridges on the pinned
//     Views), then build a small top-level SUMMARY graph whose nodes are
//     shard blocks and whose edges are (a) each shard's bridge edges and
//     (b) the boundary edges mapped through the owning shards' block
//     labels — kept as a MULTIGRAPH: two boundary edges landing on the
//     same block pair demote each other to non-bridges, exactly like
//     parallel edges anywhere else in the library. A
//     dynamic::ConnectivityOracle built over the summary (which reuses
//     bridges/stitch.hpp internally for the naturally-disconnected case)
//     then composes shard-local answers into global ones:
//
//       same_2ecc_G(u, v)       = summary.same_2ecc(h(u), h(v))
//       bridges_on_path_G(u, v) = summary.bridges_on_path(h(u), h(v))
//       component_size_G(v)     = Σ vertex weights of v's summary block
//       bridges(G)              = shard bridges surviving in the summary
//                                 + boundary edges that are summary bridges
//                               = summary.num_bridges()
//
//     where h(v) = block_offset[shard_of(v)] + shard_block_label(v).
//     Contracting a 2-edge-connected subgraph never changes any remaining
//     edge's bridgeness, so the summary's verdicts are exact — pinned by
//     the differential fuzz in tests/test_shard.cpp against an unsharded
//     Session and the sequential ReferenceOracle.
//
//     VERTEX biconnectivity stitches the same way but contraction is not
//     enough — collapsing a local block to one node would invent
//     articulation points. Instead each shard block is replaced by a
//     2-connected GADGET on its terminals (local articulation points and
//     boundary endpoints in the block) plus one fresh interior node: a
//     cycle through all of them (an edge for one terminal, an isolated
//     node for none). Within a block any two terminals are connected by
//     two internally-disjoint paths, and so are any two gadget nodes —
//     and every non-terminal vertex of the block is an interior vertex on
//     no cross-shard separator, so the skeleton (all gadgets + boundary
//     edges on the terminal nodes) has EXACTLY the global block structure
//     restricted to terminals. Global answers compose through bcc_node(v)
//     = v's terminal node when preserved, else its unique block's gadget
//     node; the skeleton's BccIndex answers SameBcc, and a preserved
//     vertex is a global articulation iff its terminal node is one in the
//     skeleton (a non-preserved vertex sits in <= 1 local = <= 1 global
//     block, never an articulation). CcMembership composes the summary's
//     connected-component labels through h(v) — labels are
//     REPRESENTATIVES (summary node ids), equal iff same global
//     component; compare, don't index.
//
//     BfsLevels is NOT served sharded: exact cross-shard BFS needs
//     iterative boundary-edge relaxation between per-shard traversals (a
//     distributed delta-stepping round trip per level), which is a
//     different cost class from every other composed answer here. The
//     façade resolves BfsLevels with an honest Status::kUnsupported
//     instead of a silently-wrong per-shard answer; the relaxation loop
//     is a recorded ROADMAP follow-up.
//
//   ShardedDispatcher — the serving façade: a small worker pool that
//     answers typed requests (Same2Ecc / BridgesOnPath / ComponentSize /
//     TwoEcc / Bridges) against the freshest ShardedView, each request
//     mapped and answered atomically against ONE pinned view (no
//     torn-epoch answers). stats() folds the façade ledger into the
//     per-shard Dispatcher/Ingestor ledgers as one coherent snapshot.
//
// Stitch caching: ShardedGraph::view() memoizes the summary per epoch
// vector — while no shard publishes and the boundary set is unchanged,
// repeated view() calls are one comparison (stitch_hits vs stitch_builds in
// ShardedStats). Any single shard advancing invalidates only the cache, not
// the per-shard artifacts: the rebuild re-runs per-shard TwoEcc/Bridges on
// ALREADY-FROZEN views (cache hits inside the engine) plus the summary
// build, whose size is the number of shard blocks + bridges + boundary
// edges, not n.
//
// Lifetimes/threading: submit()/insert()/erase() are safe from any producer
// thread; view()/stats() from any thread. A ShardedView (and any reply
// computed from it) must not outlive its ShardedGraph — summary bulk
// kernels run on the façade engine's context. stop() quiesces in the
// documented order (ingestors first, then dispatchers); the destructor
// calls it.
//
// Env knobs (strict util/env.hpp grammar — a typo degrades to the default):
//   EMC_SHARD_COUNT   shards K when ShardedOptions.shards == 0
//                     [1, 1024]  (default 4)
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dynamic/oracle.hpp"
#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "ingest/ingest.hpp"
#include "serve/serve.hpp"
#include "util/types.hpp"

namespace emc::shard {

/// The resolved shard count: `from_options` when nonzero, else a strict
/// EMC_SHARD_COUNT parse (complete, in [1, 1024]), else 4. Exposed for the
/// env-hardening tests (test_flags.cpp).
std::size_t resolve_shard_count(std::size_t from_options);

// --------------------------------------------------------------- Router

/// Pure partition arithmetic plus the boundary set. Owned by ShardedGraph;
/// exposed const so tests can pin the routing rule directly.
class Router {
 public:
  Router(NodeId num_nodes, std::size_t shards);

  std::size_t shards() const { return shards_; }
  NodeId num_nodes() const { return num_nodes_; }

  /// The partition rule: shard_of(v) = v % K. Modulo (not range) keeps both
  /// id directions O(1) and spreads any contiguous id range evenly.
  std::size_t shard_of(NodeId v) const {
    return static_cast<std::size_t>(v) % shards_;
  }
  NodeId local_of(NodeId v) const {
    return v / static_cast<NodeId>(shards_);
  }
  NodeId global_of(std::size_t shard, NodeId local) const {
    return local * static_cast<NodeId>(shards_) +
           static_cast<NodeId>(shard);
  }
  /// Vertices owned by `shard` — zero is legal (num_nodes < K leaves the
  /// high shards empty).
  NodeId local_nodes(std::size_t shard) const {
    const auto n = static_cast<std::uint64_t>(num_nodes_);
    if (n <= shard) return 0;
    return static_cast<NodeId>((n - 1 - shard) / shards_ + 1);
  }
  bool is_boundary(NodeId u, NodeId v) const {
    return shard_of(u) != shard_of(v);
  }

  /// Boundary-set mutations (thread-safe; canonical edge_key dedup).
  /// Return true iff the set changed — the boundary VERSION advances iff
  /// that is the case, mirroring DynamicGraph's effective-epoch rule.
  bool insert_boundary(NodeId u, NodeId v);
  bool erase_boundary(NodeId u, NodeId v);
  /// A pre-routed batch of (canonical edge key, is_insert) ops applied in
  /// order under ONE lock acquisition — per-edge locking dominated the
  /// write path at high cross-shard fractions. Returns {applied, noops};
  /// the version advances once per effective change, as above.
  std::pair<std::size_t, std::size_t> apply_boundary(
      const std::vector<std::pair<std::uint64_t, bool>>& ops);

  /// The boundary edges as a canonical (key-sorted) list plus the version
  /// it belongs to. Cached per version: repeated snapshots of an unchanged
  /// set share one immutable vector.
  std::pair<std::shared_ptr<const std::vector<graph::Edge>>, std::uint64_t>
  boundary_snapshot() const;

  std::uint64_t boundary_version() const;
  std::size_t boundary_edges() const;

 private:
  NodeId num_nodes_;
  std::size_t shards_;
  mutable std::mutex mu_;
  std::unordered_set<std::uint64_t> boundary_;  // canonical edge keys
  std::uint64_t version_ = 0;
  mutable std::shared_ptr<const std::vector<graph::Edge>> snapshot_;
  mutable std::uint64_t snapshot_version_ = ~std::uint64_t{0};
};

// -------------------------------------------------------------- options

struct ShardedOptions {
  /// Number of shards. 0 = resolve_shard_count (EMC_SHARD_COUNT, else 4).
  std::size_t shards = 0;
  /// Device workers per shard engine. Shards own separate engines so
  /// their writers never contend on one driver lock. The façade engine
  /// (summary build + cross-shard batch queries) always takes the machine
  /// defaults instead, so batch routing matches an unsharded Engine.
  unsigned shard_workers = 2;
  /// Per-shard ingest pipeline knobs (queue bound, admission, batching,
  /// publish pacing). Applied identically to every shard.
  ingest::IngestorOptions ingest{};
  /// Per-shard dispatcher knobs (publish retry/backoff, degradation).
  serve::DispatcherOptions dispatch{};
};

// --------------------------------------------------------- epoch vector

/// The cross-shard consistency key: one published epoch per shard plus the
/// boundary-set version. Two ShardedViews with equal vectors answer every
/// query identically.
struct EpochVector {
  std::vector<std::uint64_t> shard_epochs;
  std::uint64_t boundary_version = 0;

  friend bool operator==(const EpochVector&, const EpochVector&) = default;
};

// ---------------------------------------------------------------- stats

/// One coherent cross-shard snapshot. The aggregate `dispatch` ledger obeys
/// the same identity each per-shard Dispatcher pins once quiesced:
///   submitted == answered + shed + rejected + expired + cancelled
///                + faulted + unsupported
/// (sums preserve it). Epoch gauges that are not meaningfully summable
/// (graph_epoch, published_epoch, staleness, latency EWMA) aggregate as the
/// MAXIMUM over shards — "how far behind is the worst shard" — and every
/// subtraction routes through util::saturating_sub so a torn read can never
/// wrap a gauge.
struct ShardedStats {
  std::size_t shards = 0;

  /// Per-shard Dispatcher ledgers summed (max for max_round /
  /// max_queue_depth / staleness; OR for degraded; sum for ingest_lag).
  /// Through ShardedDispatcher::stats() the façade's own
  /// submitted/answered/cancelled/faulted are folded in too.
  serve::DispatcherStats dispatch;
  /// Per-shard Ingestor ledgers summed (max for max_batch /
  /// max_queue_depth / epoch gauges / latency EWMA).
  ingest::IngestorStats ingest;

  /// The unaggregated per-shard snapshots (isolation tests read these: a
  /// publish failpoint on one shard must not degrade the others).
  std::vector<serve::DispatcherStats> per_shard_dispatch;
  std::vector<ingest::IngestorStats> per_shard_ingest;

  /// Serving (published) epoch per shard, and how many epochs each shard's
  /// serving view lags its applied graph (saturating).
  std::vector<std::uint64_t> shard_epochs;
  std::vector<std::uint64_t> shard_staleness;
  std::uint64_t max_staleness = 0;

  // Boundary-set ledger (cross-shard edges bypass the ingest pipelines).
  std::uint64_t boundary_version = 0;
  std::size_t boundary_edges = 0;
  std::size_t boundary_applied = 0;  // effective inserts + erases
  std::size_t boundary_noops = 0;    // duplicate insert / absent erase
  /// Updates dropped at the façade for invalid endpoints (self-loop or out
  /// of range) — neither shards nor the boundary set ever see them.
  std::size_t invalid_dropped = 0;

  // Summary-stitch cache outcomes (view() calls).
  std::size_t stitch_builds = 0;
  std::size_t stitch_hits = 0;
};

// ----------------------------------------------------------- ShardedView

/// An immutable cross-shard snapshot: K epoch-pinned engine::Views, the
/// boundary edges, and the stitched summary index, all at one EpochVector.
/// Copyable (copies share the refcounted state); answers every query
/// against the pinned vector no matter how far the shards advance. Safe
/// from any number of threads; must not outlive the ShardedGraph.
class ShardedView {
 public:
  ShardedView() = default;
  explicit operator bool() const { return state_ != nullptr; }

  const EpochVector& epochs() const;
  /// Monotone stitch generation (bumps per summary rebuild) — the scalar
  /// "epoch" stamped into ShardedDispatcher replies.
  std::uint64_t version() const;

  NodeId num_nodes() const;
  std::size_t num_edges() const;      // intra-shard + boundary
  std::size_t num_components() const;
  std::size_t num_blocks() const;     // global 2-ecc blocks
  std::size_t num_bridges() const;    // global bridges

  /// Scalar queries on GLOBAL vertex ids (host, O(1)).
  bool same_2ecc(NodeId u, NodeId v) const;
  NodeId bridges_on_path(NodeId u, NodeId v) const;
  NodeId component_size(NodeId u) const;
  /// Vertex biconnectivity on global ids (see the gadget-skeleton note in
  /// the header comment). First call per snapshot builds the skeleton
  /// lazily — per-shard BCC indexes plus one small skeleton BccIndex —
  /// so views that never see a BCC family pay nothing.
  bool same_bcc(NodeId u, NodeId v) const;
  bool is_articulation(NodeId v) const;

  /// Batch forms, mirroring engine::View::run — pairs/nodes are global
  /// ids, answered from the per-vertex composed tables the stitch
  /// precomputes. Batches route exactly like the unsharded engine:
  /// engine::Policy's cost model picks one bulk device transform or a
  /// plain host loop (ComponentSize is always O(1) weight lookups).
  std::vector<std::uint8_t> run(const engine::Same2Ecc& request) const;
  std::vector<NodeId> run(const engine::BridgesOnPath& request) const;
  std::vector<NodeId> run(const engine::ComponentSize& request) const;
  std::vector<std::uint8_t> run(const engine::SameBcc& request) const;
  /// Global articulation-point mask over all n vertices.
  std::vector<std::uint8_t> run(const engine::Articulations& request) const;
  /// Global connected-component labels for the queried nodes. Labels are
  /// summary-node representatives: equal iff same component (compare,
  /// don't index — they are not vertex ids).
  std::vector<NodeId> run(const engine::CcMembership& request) const;

  /// Plumbing accessors (tests/benches).
  const engine::View& shard_view(std::size_t shard) const;
  const std::vector<graph::Edge>& boundary() const;
  const graph::EdgeList& summary_graph() const;
  const dynamic::ConnectivityOracle& summary() const;

 private:
  friend class ShardedGraph;
  struct State;
  explicit ShardedView(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}
  /// h(v): the summary node of v's shard-local 2-ecc block.
  NodeId summary_node(NodeId v) const;

  std::shared_ptr<const State> state_;
};

// ---------------------------------------------------------- ShardedGraph

class ShardedGraph {
 public:
  explicit ShardedGraph(NodeId num_nodes, const ShardedOptions& options = {});
  /// Seeds each shard's epoch 0 with its slice of `initial`; boundary
  /// edges land in the boundary set before any traffic flows (the version
  /// counts each effective seed insert, like any later change).
  ShardedGraph(NodeId num_nodes, const graph::EdgeList& initial,
               const ShardedOptions& options = {});
  ~ShardedGraph();

  ShardedGraph(const ShardedGraph&) = delete;
  ShardedGraph& operator=(const ShardedGraph&) = delete;

  // --- producers (any thread) -------------------------------------
  /// Routes each update: invalid edges dropped, boundary edges applied to
  /// the router's set inline, intra-shard edges remapped to local ids and
  /// queued on the owning shard's Ingestor. Returns updates accepted
  /// (boundary updates count as accepted whether or not effective,
  /// mirroring ring semantics for duplicate inserts).
  std::size_t submit(const std::vector<ingest::Update>& updates);
  std::size_t insert(const std::vector<graph::Edge>& edges,
                     std::uint32_t producer = 0);
  std::size_t erase(const std::vector<graph::Edge>& edges,
                    std::uint32_t producer = 0);

  // --- lifecycle ---------------------------------------------------
  /// Waits until every accepted update is applied or shed on every shard
  /// (publish pacing still applies — shards may serve older epochs after).
  void drain();
  /// drain(), then forces every shard to publish its final epoch.
  void flush();
  /// Quiesces the whole fleet: stops every Ingestor (final publishes land
  /// through the attached Dispatchers), then every Dispatcher. Idempotent;
  /// the destructor calls it.
  void stop();

  // --- reading -----------------------------------------------------
  /// The freshest consistent snapshot: pins each shard's current serving
  /// View + the boundary set, and builds (or reuses — see stitch_hits) the
  /// summary index for that epoch vector.
  ShardedView view();
  /// The epoch vector view() would pin right now.
  EpochVector current_epochs() const;

  ShardedStats stats() const;

  // --- plumbing ----------------------------------------------------
  std::size_t shards() const { return router_.shards(); }
  NodeId num_nodes() const { return router_.num_nodes(); }
  const Router& router() const { return router_; }
  engine::Engine& shard_engine(std::size_t shard);
  serve::Dispatcher& shard_dispatcher(std::size_t shard);
  ingest::Ingestor& shard_ingestor(std::size_t shard);

 private:
  friend class ShardedDispatcher;
  struct Shard;

  void seed(const graph::EdgeList& initial);
  std::shared_ptr<const ShardedView::State> stitch();

  ShardedOptions options_;
  Router router_;
  /// unique_ptrs: DynamicGraph and the pipeline stages are non-movable,
  /// and per-Shard declaration order encodes the teardown contract
  /// (Ingestor declared before Dispatcher, destroyed after it).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<engine::Engine> facade_;  // summary build + bulk queries

  mutable std::mutex boundary_ledger_mu_;
  std::size_t boundary_applied_ = 0;
  std::size_t boundary_noops_ = 0;
  std::size_t invalid_dropped_ = 0;

  mutable std::mutex stitch_mu_;
  std::shared_ptr<const ShardedView::State> stitched_;
  std::uint64_t stitch_version_ = 0;
  std::size_t stitch_builds_ = 0;
  std::size_t stitch_hits_ = 0;
  bool stopped_ = false;
};

// ------------------------------------------------------ ShardedDispatcher

struct ShardedDispatcherOptions {
  /// Worker threads answering façade requests.
  unsigned workers = 1;
};

/// The cross-shard serving front door: submit() enqueues a typed request
/// and returns a future; a worker maps and answers it against ONE pinned
/// ShardedView (the freshest at answer time), so no reply mixes epochs.
/// Reply.epoch carries the view's stitch generation (ShardedView::version).
/// stop() drains the queue — every future resolves — then joins; submits
/// after stop() resolve kCancelled. The ShardedGraph must outlive it.
class ShardedDispatcher {
 public:
  explicit ShardedDispatcher(ShardedGraph& graph,
                             const ShardedDispatcherOptions& options = {});
  ~ShardedDispatcher();

  ShardedDispatcher(const ShardedDispatcher&) = delete;
  ShardedDispatcher& operator=(const ShardedDispatcher&) = delete;

  std::future<serve::Reply<std::vector<std::uint8_t>>> submit(
      engine::Same2Ecc request);
  std::future<serve::Reply<std::vector<NodeId>>> submit(
      engine::BridgesOnPath request);
  std::future<serve::Reply<std::vector<NodeId>>> submit(
      engine::ComponentSize request);
  /// Global block/bridge counts (serve's value-type TwoEcc answer).
  std::future<serve::Reply<serve::TwoEccSummary>> submit(
      engine::TwoEcc request);
  /// Global bridge COUNT — a cross-shard bridge mask has no single edge
  /// order to index, so the façade serves the scalar the stitch proves.
  std::future<serve::Reply<std::size_t>> submit(engine::Bridges request);
  // Vertex-biconnectivity families, answered through the gadget-skeleton
  // stitch (see the header comment).
  std::future<serve::Reply<std::vector<std::uint8_t>>> submit(
      engine::SameBcc request);
  std::future<serve::Reply<std::vector<std::uint8_t>>> submit(
      engine::Articulations request);
  std::future<serve::Reply<std::vector<NodeId>>> submit(
      engine::CcMembership request);
  /// Resolves IMMEDIATELY with Status::kUnsupported — exact cross-shard
  /// BFS needs boundary relaxation rounds this façade does not implement
  /// (documented choice; see the header comment). The request still
  /// enters the ledger: submitted and unsupported both count.
  std::future<serve::Reply<std::vector<NodeId>>> submit(
      engine::BfsLevels request);

  void stop();

  /// ShardedGraph::stats() with the façade's own ledger folded into
  /// `dispatch` (submitted/answered/cancelled/faulted), so the balance
  /// identity covers every request that entered the system anywhere.
  ShardedStats stats() const;

 private:
  template <typename Value, typename Fn>
  std::future<serve::Reply<Value>> enqueue(Fn&& answer);
  void run();

  ShardedGraph& graph_;
  ShardedDispatcherOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stopping_ = false;
  std::size_t submitted_ = 0;
  std::size_t answered_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t faulted_ = 0;
  std::size_t unsupported_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace emc::shard
