// List ranking — the PRAM building block at the heart of the Euler tour
// technique (§2.2).
//
// Input: a singly-linked list over elements [0, n), given as a successor
// array (`next[i]` is the element after i; next[tail] = kNoEdge), plus the
// head element. Output: rank[i] = distance from the head (head gets 0).
//
// Three implementations, matching the paper's discussion:
//   rank_sequential — single pointer walk, the CPU baseline.
//   rank_wyllie     — classical pointer jumping: O(log n) rounds of
//                     full-width doubling, O(n log n) work. Kept as the
//                     ablation baseline ("performs much better than the
//                     classical pointer jumping technique").
//   rank_wei_jaja   — the GPU-optimized algorithm of Wei & JáJá [64]:
//                     random splitters cut the list into ~s sublists, each
//                     walked sequentially in parallel; a short sequential
//                     pass orders the sublists; a final bulk kernel adds
//                     sublist offsets. O(n) work, two bulk phases.
//
// list_prefix_* computes inclusive prefix sums of arbitrary per-element
// values in list order — the "prefix sum on the tour" operation that the
// §2.2 optimization replaces with array scans.
#pragma once

#include <cstdint>
#include <vector>

#include "device/context.hpp"
#include "util/types.hpp"

namespace emc::listrank {

/// rank[i] = distance of i from head along `next`. Elements not on the list
/// keep an unspecified value. Requires a nil-terminated, acyclic list.
void rank_sequential(const std::vector<EdgeId>& next, EdgeId head,
                     std::vector<EdgeId>& rank);

/// Wyllie pointer jumping. Double-buffered: no data races, log2(n) barriers.
void rank_wyllie(const device::Context& ctx, const std::vector<EdgeId>& next,
                 EdgeId head, std::vector<EdgeId>& rank);

/// Wei-JáJá two-phase ranking. `num_sublists` 0 picks ~n/64 (clamped), the
/// empirically good regime from the original paper.
void rank_wei_jaja(const device::Context& ctx, const std::vector<EdgeId>& next,
                   EdgeId head, std::vector<EdgeId>& rank,
                   std::size_t num_sublists = 0, std::uint64_t seed = 0x5eed);

/// Inclusive prefix sums of `values` in list order, written to out[i] for
/// every list element i: out[i] = sum of values of head..i inclusive.
void prefix_sequential(const std::vector<EdgeId>& next, EdgeId head,
                       const std::vector<std::int64_t>& values,
                       std::vector<std::int64_t>& out);

/// Same, parallel (Wei-JáJá structure with value accumulation).
void prefix_wei_jaja(const device::Context& ctx,
                     const std::vector<EdgeId>& next, EdgeId head,
                     const std::vector<std::int64_t>& values,
                     std::vector<std::int64_t>& out,
                     std::size_t num_sublists = 0, std::uint64_t seed = 0x5eed);

}  // namespace emc::listrank
