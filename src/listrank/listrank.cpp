#include "listrank/listrank.hpp"

#include <algorithm>
#include <cassert>

#include "device/arena.hpp"
#include "device/primitives.hpp"
#include "util/rng.hpp"

namespace emc::listrank {

void rank_sequential(const std::vector<EdgeId>& next, EdgeId head,
                     std::vector<EdgeId>& rank) {
  rank.resize(next.size());
  EdgeId r = 0;
  for (EdgeId i = head; i != kNoEdge; i = next[i]) rank[i] = r++;
}

void rank_wyllie(const device::Context& ctx, const std::vector<EdgeId>& next,
                 EdgeId head, std::vector<EdgeId>& rank) {
  const std::size_t n = next.size();
  rank.resize(n);
  if (n == 0) return;
  // dist[i] = number of hops from i to the tail, computed by doubling;
  // rank-from-head then follows as dist[head] - dist[i]. All four doubling
  // buffers are arena scratch.
  device::Arena::Scope scope(ctx.arena());
  EdgeId* dist = scope.get<EdgeId>(n);
  EdgeId* dist_next = scope.get<EdgeId>(n);
  EdgeId* jump = scope.get<EdgeId>(n);
  EdgeId* jump_next = scope.get<EdgeId>(n);
  device::launch(ctx, n, [&](std::size_t i) {
    jump[i] = next[i];
    dist[i] = next[i] == kNoEdge ? EdgeId{0} : EdgeId{1};
  });
  bool live = true;
  while (live) {
    // One doubling round. Double-buffered so reads see a consistent epoch —
    // this is the global barrier a GPU kernel boundary provides.
    std::atomic<int> any_live{0};
    device::launch(ctx, n, [&](std::size_t i) {
      const EdgeId j = jump[i];
      if (j == kNoEdge) {
        dist_next[i] = dist[i];
        jump_next[i] = kNoEdge;
      } else {
        dist_next[i] = dist[i] + dist[j];
        jump_next[i] = jump[j];
        if (jump[j] != kNoEdge) any_live.store(1, std::memory_order_relaxed);
      }
    });
    std::swap(dist, dist_next);
    std::swap(jump, jump_next);
    live = any_live.load(std::memory_order_relaxed) != 0;
  }
  const EdgeId head_dist = dist[head];
  device::transform(ctx, n, rank.data(),
                    [&](std::size_t i) { return head_dist - dist[i]; });
}

namespace {

/// Shared skeleton of the Wei-JáJá algorithm. `WeightFn(i)` gives the weight
/// contributed by element i; we compute the *inclusive* prefix in `out` when
/// inclusive=true, and the 0-based hop rank when the weight is identically 1
/// and inclusive=false (head rank 0).
template <typename Value, typename WeightFn>
void wei_jaja_generic(const device::Context& ctx,
                      const std::vector<EdgeId>& next, EdgeId head,
                      WeightFn&& weight, bool inclusive,
                      std::vector<Value>& out, std::size_t num_sublists,
                      std::uint64_t seed) {
  const std::size_t n = next.size();
  out.resize(n);
  if (n == 0) return;

  if (num_sublists == 0) num_sublists = std::max<std::size_t>(1, n / 64);
  num_sublists = std::min(num_sublists, n);

  device::Arena::Scope scope(ctx.arena());

  // --- Splitter selection. The head must be a splitter; the rest are random
  // (duplicates collapse, which only reduces the sublist count). The single
  // host pass that compacts the marked elements also records each splitter's
  // sublist index, replacing the scatter kernel the old code launched.
  std::uint8_t* is_splitter = scope.get<std::uint8_t>(n);
  std::fill(is_splitter, is_splitter + n, 0);
  is_splitter[head] = 1;
  util::Rng rng(seed);
  for (std::size_t s = 1; s < num_sublists; ++s) {
    is_splitter[rng.below(n)] = 1;
  }
  EdgeId* splitters = scope.get<EdgeId>(num_sublists);
  EdgeId* sublist_index = scope.get<EdgeId>(n);
  std::size_t s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_splitter[i]) {
      sublist_index[i] = static_cast<EdgeId>(s);
      splitters[s++] = static_cast<EdgeId>(i);
    }
  }

  // --- Phase 1: walk each sublist sequentially, in parallel over sublists.
  // Records each element's inclusive within-sublist prefix, the sublist's
  // total, and which sublist follows it on the global list.
  Value* local = scope.get<Value>(n);
  Value* sublist_total = scope.get<Value>(s);
  EdgeId* next_sublist = scope.get<EdgeId>(s);
  device::launch(ctx, s, [&](std::size_t k) {
    EdgeId i = splitters[k];
    Value acc{0};
    while (true) {
      acc += weight(static_cast<std::size_t>(i));
      local[i] = acc;
      const EdgeId succ = next[i];
      if (succ == kNoEdge) {
        next_sublist[k] = kNoEdge;
        break;
      }
      if (is_splitter[succ]) {
        next_sublist[k] = sublist_index[succ];
        break;
      }
      i = succ;
    }
    sublist_total[k] = acc;
  });

  // --- Phase 2: sequential scan over the (short) chain of sublists, in
  // global list order starting from the head's sublist.
  Value* sublist_offset = scope.get<Value>(s);
  {
    Value acc{0};
    EdgeId k = sublist_index[head];
    std::size_t visited = 0;
    while (k != kNoEdge) {
      sublist_offset[k] = acc;
      acc += sublist_total[k];
      k = next_sublist[k];
      assert(++visited <= s && "cycle in list");
      (void)visited;
    }
  }

  // --- Phase 3: every sublist re-walks adding its offset. (Walking again is
  // cheaper than storing per-element sublist ids in phase 1 on a real GPU;
  // we mirror the original algorithm's structure.) The inclusive-to-0-based
  // conversion folds into the same walk instead of a final n-sized kernel.
  const Value bias = inclusive ? Value{0} : Value{1};
  device::launch(ctx, s, [&](std::size_t k) {
    const Value offset = sublist_offset[k] - bias;
    EdgeId i = splitters[k];
    while (true) {
      out[i] = local[i] + offset;
      const EdgeId succ = next[i];
      if (succ == kNoEdge || is_splitter[succ]) break;
      i = succ;
    }
  });
}

}  // namespace

void rank_wei_jaja(const device::Context& ctx, const std::vector<EdgeId>& next,
                   EdgeId head, std::vector<EdgeId>& rank,
                   std::size_t num_sublists, std::uint64_t seed) {
  wei_jaja_generic<EdgeId>(
      ctx, next, head, [](std::size_t) { return EdgeId{1}; },
      /*inclusive=*/false, rank, num_sublists, seed);
}

void prefix_sequential(const std::vector<EdgeId>& next, EdgeId head,
                       const std::vector<std::int64_t>& values,
                       std::vector<std::int64_t>& out) {
  out.resize(next.size());
  std::int64_t acc = 0;
  for (EdgeId i = head; i != kNoEdge; i = next[i]) {
    acc += values[i];
    out[i] = acc;
  }
}

void prefix_wei_jaja(const device::Context& ctx,
                     const std::vector<EdgeId>& next, EdgeId head,
                     const std::vector<std::int64_t>& values,
                     std::vector<std::int64_t>& out, std::size_t num_sublists,
                     std::uint64_t seed) {
  wei_jaja_generic<std::int64_t>(
      ctx, next, head, [&](std::size_t i) { return values[i]; },
      /*inclusive=*/true, out, num_sublists, seed);
}

}  // namespace emc::listrank
