#include "core/tree.hpp"

#include <vector>

namespace emc::core {

bool valid_parent_tree(const ParentTree& tree) {
  const NodeId n = tree.num_nodes();
  if (n == 0) return false;
  if (tree.root < 0 || tree.root >= n) return false;
  if (tree.parent[tree.root] != kNoNode) return false;
  // depth[v] != 0 marks "resolved"; iterative path-following with marking
  // keeps this O(n) even on path-shaped trees.
  std::vector<std::int8_t> state(static_cast<std::size_t>(n), 0);  // 0=unseen 1=onpath 2=ok
  state[tree.root] = 2;
  std::vector<NodeId> path;
  for (NodeId v = 0; v < n; ++v) {
    if (state[v] != 0) continue;
    path.clear();
    NodeId u = v;
    while (state[u] == 0) {
      state[u] = 1;
      path.push_back(u);
      const NodeId p = tree.parent[u];
      if (p < 0 || p >= n) return false;
      u = p;
    }
    if (state[u] == 1) return false;  // cycle
    for (const NodeId w : path) state[w] = 2;
  }
  return true;
}

graph::EdgeList tree_edges(const ParentTree& tree) {
  graph::EdgeList out;
  out.num_nodes = tree.num_nodes();
  out.edges.reserve(static_cast<std::size_t>(out.num_nodes) - 1);
  for (NodeId v = 0; v < out.num_nodes; ++v) {
    if (v != tree.root) out.edges.push_back({v, tree.parent[v]});
  }
  return out;
}

std::vector<NodeId> depths_reference(const ParentTree& tree) {
  const NodeId n = tree.num_nodes();
  std::vector<NodeId> depth(static_cast<std::size_t>(n), kNoNode);
  depth[tree.root] = 0;
  std::vector<NodeId> path;
  for (NodeId v = 0; v < n; ++v) {
    if (depth[v] != kNoNode) continue;
    path.clear();
    NodeId u = v;
    while (depth[u] == kNoNode) {
      path.push_back(u);
      u = tree.parent[u];
    }
    NodeId d = depth[u];
    for (auto it = path.rbegin(); it != path.rend(); ++it) depth[*it] = ++d;
  }
  return depth;
}

}  // namespace emc::core
