// The Euler tour technique (paper §2) — the primary contribution.
//
// Pipeline, exactly as the paper describes it:
//
//   1. DCEL construction (§2.1): duplicate each undirected tree edge into a
//      pair of directed half-edges stored adjacently (twin(e) = e ^ 1), sort
//      a copy lexicographically by (src, dst), and derive the `next` pointer
//      of every half-edge (its successor among edges leaving the same node,
//      wrapping to `first[src]`).
//   2. Tour as a linked list: succ(e) = next(twin(e)); the cyclic list is
//      split at an arbitrary edge leaving the root.
//   3. The §2.2 optimization: a *single* list ranking converts the list into
//      an array of half-edges in tour order; every subsequent per-tour
//      computation is a fast array scan instead of another list ranking.
//   4. Node statistics from scans over the tour array: preorder numbers
//      (1-based), subtree sizes, levels, and parents.
//
// All steps are bulk kernels over the device context; passing
// Context::sequential() yields the single-core baseline with identical
// results.
#pragma once

#include <cstdint>
#include <vector>

#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::core {

/// Which list-ranking algorithm converts the tour list into an array.
enum class RankAlgo {
  kWeiJaja,      // default: the paper's choice
  kWyllie,       // pointer jumping, for the ablation benchmark
  kSequential,   // single pointer walk (CPU baseline)
};

/// An Euler tour of a tree, in both linked-list and array form, plus the
/// node statistics the applications need.
struct EulerTour {
  NodeId num_nodes = 0;
  NodeId root = kNoNode;

  // Directed half-edges, size 2*(n-1). Half-edges 2k and 2k+1 are the two
  // directions of input tree edge k; twin(e) == e ^ 1.
  std::vector<NodeId> edge_src;
  std::vector<NodeId> edge_dst;

  // Linked-list form: succ[e] is the next half-edge on the tour;
  // succ[tail] == kNoEdge after splitting at `head` (an edge leaving root).
  std::vector<EdgeId> succ;
  EdgeId head = kNoEdge;

  // Array form (§2.2): rank[e] is the tour position of half-edge e and
  // tour[r] is the half-edge at position r.
  std::vector<EdgeId> rank;
  std::vector<EdgeId> tour;

  std::size_t num_half_edges() const { return edge_src.size(); }
  EdgeId twin(EdgeId e) const { return e ^ 1; }
  /// A half-edge goes *down* (parent to child) iff it appears before its
  /// twin on the tour (§2, footnote 4).
  bool goes_down(EdgeId e) const { return rank[e] < rank[twin(e)]; }
};

/// Per-node statistics computed from the tour (§2.2, §3.1, §4.1).
struct TreeStats {
  std::vector<NodeId> preorder;      // 1-based, root gets 1
  std::vector<NodeId> subtree_size;  // root gets n
  std::vector<NodeId> level;         // root gets 0
  std::vector<NodeId> parent;        // parent[root] == kNoNode
};

/// Builds an Euler tour of the tree given as an unordered edge list with
/// `edges.num_nodes - 1` edges. Phase timings (sort, list ranking, ...) are
/// recorded into `phases` when non-null.
EulerTour build_euler_tour(const device::Context& ctx,
                           const graph::EdgeList& edges, NodeId root,
                           RankAlgo rank_algo = RankAlgo::kWeiJaja,
                           util::PhaseTimer* phases = nullptr);

/// Computes preorder, subtree size, level and parent arrays by scans over
/// the tour array.
TreeStats compute_tree_stats(const device::Context& ctx, const EulerTour& tour,
                             util::PhaseTimer* phases = nullptr);

/// Rooting an unrooted spanning tree (§4.3, the hybrid algorithm): given
/// tree edges and a chosen root, returns each node's parent and level using
/// only the Euler tour technique.
void root_tree(const device::Context& ctx, const graph::EdgeList& edges,
               NodeId root, std::vector<NodeId>& parent,
               std::vector<NodeId>& level, util::PhaseTimer* phases = nullptr);

}  // namespace emc::core
