// Further Euler tour applications (paper §2: "many node statistics can be
// easily calculated as prefix sums or range queries").
//
// Everything here is one gather + one scan (or one bulk kernel) over the
// tour array — the §2.2 pattern. These are the operations downstream users
// of the technique actually reach for beyond LCA/bridges: orderings,
// subtree aggregates, ancestry tests.
#pragma once

#include <cstdint>
#include <vector>

#include "core/euler_tour.hpp"
#include "device/context.hpp"
#include "util/types.hpp"

namespace emc::core {

/// Postorder numbers (1-based): the rank of each node among "subtree
/// finished" events. The root gets n. One scan over up edges.
std::vector<NodeId> postorder_numbers(const device::Context& ctx,
                                      const EulerTour& tour);

/// For each node, the sum of `value` over its subtree (inclusive).
/// One weighted scan over the tour + one bulk kernel.
std::vector<std::int64_t> subtree_sums(const device::Context& ctx,
                                       const EulerTour& tour,
                                       const TreeStats& stats,
                                       const std::vector<std::int64_t>& value);

/// For each node, the number of leaves in its subtree.
std::vector<NodeId> subtree_leaf_counts(const device::Context& ctx,
                                        const EulerTour& tour,
                                        const TreeStats& stats);

/// Ancestry test from preorder intervals: ancestor(a, b) iff b's preorder
/// lies in [pre(a), pre(a) + size(a)). O(1) per query; a node is its own
/// ancestor.
class AncestorOracle {
 public:
  AncestorOracle(const TreeStats& stats)
      : preorder_(stats.preorder), subtree_size_(stats.subtree_size) {}

  bool is_ancestor(NodeId a, NodeId b) const {
    return preorder_[a] <= preorder_[b] &&
           preorder_[b] < preorder_[a] + subtree_size_[a];
  }

 private:
  const std::vector<NodeId>& preorder_;
  const std::vector<NodeId>& subtree_size_;
};

/// Heavy child of every node (child with the largest subtree; kNoNode for
/// leaves). The building block for heavy-path decompositions on top of the
/// tour. One bulk kernel over down edges with an atomic max per parent.
std::vector<NodeId> heavy_children(const device::Context& ctx,
                                   const EulerTour& tour,
                                   const TreeStats& stats);

}  // namespace emc::core
