// Rooted-tree input representation and conversions.
//
// The LCA experiments feed trees to the algorithms as a parent array — "node
// P[i] is the parent of node i, for every i except for the root" (§3.2) —
// while the Euler tour construction consumes an unordered undirected edge
// list. This header holds both directions of the conversion plus validation.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace emc::core {

/// Rooted tree given by a parent array. parent[root] == kNoNode.
struct ParentTree {
  NodeId root = kNoNode;
  std::vector<NodeId> parent;

  NodeId num_nodes() const { return static_cast<NodeId>(parent.size()); }
};

/// Checks that `tree` encodes a single rooted tree on all its nodes:
/// exactly one root, every node reaches the root, no cycles.
bool valid_parent_tree(const ParentTree& tree);

/// The n-1 undirected edges {v, parent[v]}.
graph::EdgeList tree_edges(const ParentTree& tree);

/// Depth of every node by sequential traversal (test/reference helper).
std::vector<NodeId> depths_reference(const ParentTree& tree);

}  // namespace emc::core
