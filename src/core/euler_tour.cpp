#include "core/euler_tour.hpp"

#include <cassert>

#include "device/primitives.hpp"
#include "device/sort.hpp"
#include "listrank/listrank.hpp"
#include "util/bits.hpp"

namespace emc::core {

namespace {

/// Packs (src, dst) into a key whose numeric order is the lexicographic
/// order of the pair, using only 2*ceil(log2(n)) bits so the adaptive radix
/// sort runs the minimum number of passes (the sort is the most expensive
/// step of the construction, §2.1).
std::uint64_t lex_key(NodeId src, NodeId dst, int shift) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
          << shift) |
         static_cast<std::uint32_t>(dst);
}

}  // namespace

EulerTour build_euler_tour(const device::Context& ctx,
                           const graph::EdgeList& edges, NodeId root,
                           RankAlgo rank_algo, util::PhaseTimer* phases) {
  const NodeId n = edges.num_nodes;
  assert(n >= 1);
  assert(edges.edges.size() + 1 == static_cast<std::size_t>(n));
  assert(root >= 0 && root < n);

  EulerTour tour;
  tour.num_nodes = n;
  tour.root = root;
  const std::size_t h = 2 * edges.edges.size();  // number of half-edges
  tour.edge_src.resize(h);
  tour.edge_dst.resize(h);
  tour.succ.resize(h);
  tour.rank.resize(h);
  tour.tour.resize(h);
  if (h == 0) return tour;  // single-node tree: empty tour

  // --- DCEL construction (§2.1). Array A: both directions of edge k stored
  // at 2k and 2k+1, so twin is the implicit e ^ 1.
  {
    util::ScopedPhase phase(phases, "dcel_expand");
    device::launch(ctx, edges.edges.size(), [&](std::size_t k) {
      const graph::Edge e = edges.edges[k];
      tour.edge_src[2 * k] = e.u;
      tour.edge_dst[2 * k] = e.v;
      tour.edge_src[2 * k + 1] = e.v;
      tour.edge_dst[2 * k + 1] = e.u;
    });
  }

  // Array B: half-edge ids sorted lexicographically by (src, dst). `order`
  // plays the role of B; the sort is "the costly sorting" the paper notes
  // cannot generally be avoided.
  std::vector<std::uint64_t> keys(h);
  std::vector<EdgeId> order(h);
  {
    util::ScopedPhase phase(phases, "dcel_sort");
    const int shift = util::ceil_log2(static_cast<std::uint64_t>(n));
    device::transform(ctx, h, keys.data(), [&](std::size_t e) {
      return lex_key(tour.edge_src[e], tour.edge_dst[e], shift);
    });
    device::iota(ctx, h, order.data());
    device::sort_pairs(ctx, keys, order);
  }

  // next[e]: successor of e among half-edges leaving src(e), cyclic.
  // first_pos[x]: position in B of the first half-edge leaving x.
  std::vector<EdgeId> next(h);
  {
    util::ScopedPhase phase(phases, "dcel_next");
    std::vector<EdgeId> first_pos(static_cast<std::size_t>(n), kNoEdge);
    device::launch(ctx, h, [&](std::size_t i) {
      const NodeId src = tour.edge_src[order[i]];
      if (i == 0 || tour.edge_src[order[i - 1]] != src) {
        first_pos[src] = static_cast<EdgeId>(i);
      }
    });
    device::launch(ctx, h, [&](std::size_t i) {
      const EdgeId e = order[i];
      const NodeId src = tour.edge_src[e];
      if (i + 1 < h && tour.edge_src[order[i + 1]] == src) {
        next[e] = order[i + 1];
      } else {
        next[e] = order[first_pos[src]];  // wrap to the first edge at src
      }
    });
  }

  // --- Tour as a linked list: succ(e) = next(twin(e)) (§2.1), split at the
  // first edge leaving the root (choosing the list head roots the tree).
  {
    util::ScopedPhase phase(phases, "tour_link");
    device::launch(ctx, h,
                   [&](std::size_t e) { tour.succ[e] = next[e ^ 1]; });
    // head = first half-edge leaving root in B order. Its cyclic
    // predecessor becomes the tail.
    EdgeId head = kNoEdge;
    for (std::size_t i = 0; i < h; ++i) {  // cheap: root's run is contiguous
      if (tour.edge_src[order[i]] == root) {
        head = order[i];
        break;
      }
    }
    assert(head != kNoEdge);
    tour.head = head;
    // tail: unique e with succ[e] == head.
    std::atomic<EdgeId> tail{kNoEdge};
    device::launch(ctx, h, [&](std::size_t e) {
      if (tour.succ[e] == tour.head) {
        tail.store(static_cast<EdgeId>(e), std::memory_order_relaxed);
      }
    });
    assert(tail.load() != kNoEdge);
    tour.succ[tail.load()] = kNoEdge;
  }

  // --- The single list ranking (§2.2), then the array form.
  {
    util::ScopedPhase phase(phases, "list_ranking");
    switch (rank_algo) {
      case RankAlgo::kWeiJaja:
        listrank::rank_wei_jaja(ctx, tour.succ, tour.head, tour.rank);
        break;
      case RankAlgo::kWyllie:
        listrank::rank_wyllie(ctx, tour.succ, tour.head, tour.rank);
        break;
      case RankAlgo::kSequential:
        listrank::rank_sequential(tour.succ, tour.head, tour.rank);
        break;
    }
  }
  {
    util::ScopedPhase phase(phases, "tour_array");
    device::launch(ctx, h, [&](std::size_t e) {
      tour.tour[tour.rank[e]] = static_cast<EdgeId>(e);
    });
  }
  return tour;
}

TreeStats compute_tree_stats(const device::Context& ctx, const EulerTour& tour,
                             util::PhaseTimer* phases) {
  const NodeId n = tour.num_nodes;
  const std::size_t h = tour.num_half_edges();
  TreeStats stats;
  stats.preorder.assign(static_cast<std::size_t>(n), 0);
  stats.subtree_size.assign(static_cast<std::size_t>(n), 0);
  stats.level.assign(static_cast<std::size_t>(n), 0);
  stats.parent.assign(static_cast<std::size_t>(n), kNoNode);
  stats.preorder[tour.root] = 1;
  stats.subtree_size[tour.root] = n;
  stats.level[tour.root] = 0;
  if (h == 0) return stats;

  util::ScopedPhase phase(phases, "tree_stats");

  // Weight +1 for down edges. Preorder = prefix count of down edges;
  // level = prefix sum with up edges weighted -1. Both in one pass each,
  // over the *array* form — this is exactly the §2.2 optimization.
  std::vector<NodeId> down_flag(h), down_prefix(h), level_weight(h),
      level_prefix(h);
  device::transform(ctx, h, down_flag.data(), [&](std::size_t r) {
    return static_cast<NodeId>(tour.goes_down(tour.tour[r]) ? 1 : 0);
  });
  device::transform(ctx, h, level_weight.data(), [&](std::size_t r) {
    return static_cast<NodeId>(tour.goes_down(tour.tour[r]) ? 1 : -1);
  });
  device::inclusive_scan(ctx, down_flag.data(), h, down_prefix.data());
  device::inclusive_scan(ctx, level_weight.data(), h, level_prefix.data());

  device::launch(ctx, h, [&](std::size_t r) {
    const EdgeId e = tour.tour[r];
    if (!tour.goes_down(e)) return;
    const NodeId child = tour.edge_dst[e];
    stats.preorder[child] = down_prefix[r] + 1;  // 1-based; root is 1
    stats.level[child] = level_prefix[r];
    stats.parent[child] = tour.edge_src[e];
    // Subtree spans [rank(e), rank(twin(e))]: that interval holds both
    // directions of every edge internal to the subtree plus this enter/exit
    // pair, so its length is 2*size - 1 + 1, hence size = (len + 1) / 2.
    const EdgeId up_rank = tour.rank[tour.twin(e)];
    stats.subtree_size[child] =
        (up_rank - static_cast<EdgeId>(r) + 1) / 2;
  });
  return stats;
}

void root_tree(const device::Context& ctx, const graph::EdgeList& edges,
               NodeId root, std::vector<NodeId>& parent,
               std::vector<NodeId>& level, util::PhaseTimer* phases) {
  const EulerTour tour = build_euler_tour(ctx, edges, root,
                                          RankAlgo::kWeiJaja, phases);
  TreeStats stats = compute_tree_stats(ctx, tour, phases);
  parent = std::move(stats.parent);
  level = std::move(stats.level);
}

}  // namespace emc::core
