#include "core/euler_tour.hpp"

#include <cassert>

#include "device/primitives.hpp"
#include "device/sort.hpp"
#include "listrank/listrank.hpp"
#include "util/bits.hpp"

namespace emc::core {

namespace {

/// Packs (src, dst) into a key whose numeric order is the lexicographic
/// order of the pair, using only 2*ceil(log2(n)) bits so the adaptive radix
/// sort runs the minimum number of passes (the sort is the most expensive
/// step of the construction, §2.1).
std::uint64_t lex_key(NodeId src, NodeId dst, int shift) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
          << shift) |
         static_cast<std::uint32_t>(dst);
}

}  // namespace

EulerTour build_euler_tour(const device::Context& ctx,
                           const graph::EdgeList& edges, NodeId root,
                           RankAlgo rank_algo, util::PhaseTimer* phases) {
  const NodeId n = edges.num_nodes;
  assert(n >= 1);
  assert(edges.edges.size() + 1 == static_cast<std::size_t>(n));
  assert(root >= 0 && root < n);

  EulerTour tour;
  tour.num_nodes = n;
  tour.root = root;
  const std::size_t h = 2 * edges.edges.size();  // number of half-edges
  tour.edge_src.resize(h);
  tour.edge_dst.resize(h);
  tour.succ.resize(h);
  tour.rank.resize(h);
  tour.tour.resize(h);
  if (h == 0) return tour;  // single-node tree: empty tour

  device::Arena::Scope scope(ctx.arena());

  // --- DCEL construction (§2.1). Array A: both directions of edge k stored
  // at 2k and 2k+1, so twin is the implicit e ^ 1. One fused kernel also
  // emits the lexicographic sort keys and seeds the id payload, so each
  // input edge is read exactly once before the sort.
  std::uint64_t* keys = scope.get<std::uint64_t>(h);
  EdgeId* order = scope.get<EdgeId>(h);
  {
    util::ScopedPhase phase(phases, "dcel_expand");
    const int shift = util::ceil_log2(static_cast<std::uint64_t>(n));
    device::launch(ctx, edges.edges.size(), [&](std::size_t k) {
      const graph::Edge e = edges.edges[k];
      tour.edge_src[2 * k] = e.u;
      tour.edge_dst[2 * k] = e.v;
      tour.edge_src[2 * k + 1] = e.v;
      tour.edge_dst[2 * k + 1] = e.u;
      keys[2 * k] = lex_key(e.u, e.v, shift);
      keys[2 * k + 1] = lex_key(e.v, e.u, shift);
      order[2 * k] = static_cast<EdgeId>(2 * k);
      order[2 * k + 1] = static_cast<EdgeId>(2 * k + 1);
    });
  }

  // Array B: half-edge ids sorted lexicographically by (src, dst). `order`
  // plays the role of B; the sort is "the costly sorting" the paper notes
  // cannot generally be avoided.
  {
    util::ScopedPhase phase(phases, "dcel_sort");
    device::sort_pairs(ctx, keys, order, h);
  }

  // first_pos[x]: position in B of the first half-edge leaving x.
  EdgeId* first_pos = scope.get<EdgeId>(static_cast<std::size_t>(n));
  {
    util::ScopedPhase phase(phases, "dcel_next");
    device::launch(ctx, h, [&](std::size_t i) {
      const NodeId src = tour.edge_src[order[i]];
      if (i == 0 || tour.edge_src[order[i - 1]] != src) {
        first_pos[src] = static_cast<EdgeId>(i);
      }
    });
  }

  // --- Tour linking, one fused kernel. For position i with e = order[i],
  // next(e) = the successor of e among half-edges leaving src(e) (cyclic,
  // wrapping to first_pos[src]), and the tour list is succ(e) = next(twin(e))
  // (§2.1) — so write next(e) directly into succ[twin(e)]. The list head is
  // the first half-edge leaving the root in B order, available as
  // order[first_pos[root]] without any scan; the unique predecessor of the
  // head is the tail, cut in the same kernel instead of a separate pass.
  {
    util::ScopedPhase phase(phases, "tour_link");
    const EdgeId head = order[first_pos[root]];
    tour.head = head;
    device::launch(ctx, h, [&](std::size_t i) {
      const EdgeId e = order[i];
      const NodeId src = tour.edge_src[e];
      EdgeId next_e;
      if (i + 1 < h && tour.edge_src[order[i + 1]] == src) {
        next_e = order[i + 1];
      } else {
        next_e = order[first_pos[src]];  // wrap to the first edge at src
      }
      tour.succ[e ^ 1] = next_e == head ? kNoEdge : next_e;
    });
  }

  // --- The single list ranking (§2.2), then the array form.
  {
    util::ScopedPhase phase(phases, "list_ranking");
    switch (rank_algo) {
      case RankAlgo::kWeiJaja:
        listrank::rank_wei_jaja(ctx, tour.succ, tour.head, tour.rank);
        break;
      case RankAlgo::kWyllie:
        listrank::rank_wyllie(ctx, tour.succ, tour.head, tour.rank);
        break;
      case RankAlgo::kSequential:
        listrank::rank_sequential(tour.succ, tour.head, tour.rank);
        break;
    }
  }
  {
    util::ScopedPhase phase(phases, "tour_array");
    device::launch(ctx, h, [&](std::size_t e) {
      tour.tour[tour.rank[e]] = static_cast<EdgeId>(e);
    });
  }
  return tour;
}

TreeStats compute_tree_stats(const device::Context& ctx, const EulerTour& tour,
                             util::PhaseTimer* phases) {
  const NodeId n = tour.num_nodes;
  const std::size_t h = tour.num_half_edges();
  TreeStats stats;
  stats.preorder.assign(static_cast<std::size_t>(n), 0);
  stats.subtree_size.assign(static_cast<std::size_t>(n), 0);
  stats.level.assign(static_cast<std::size_t>(n), 0);
  stats.parent.assign(static_cast<std::size_t>(n), kNoNode);
  stats.preorder[tour.root] = 1;
  stats.subtree_size[tour.root] = n;
  stats.level[tour.root] = 0;
  if (h == 0) return stats;

  util::ScopedPhase phase(phases, "tree_stats");

  // Weight +1 for down edges. Preorder = prefix count of down edges;
  // level = prefix sum with up edges weighted -1. Both in one pass each,
  // over the *array* form — this is exactly the §2.2 optimization. The two
  // weight arrays come out of one fused kernel (one read of the tour).
  device::Arena::Scope scope(ctx.arena());
  NodeId* down_prefix = scope.get<NodeId>(h);
  NodeId* level_prefix = scope.get<NodeId>(h);
  device::launch(ctx, h, [&](std::size_t r) {
    const bool down = tour.goes_down(tour.tour[r]);
    down_prefix[r] = down ? 1 : 0;
    level_prefix[r] = down ? 1 : -1;
  });
  device::inclusive_scan(ctx, down_prefix, h, down_prefix);
  device::inclusive_scan(ctx, level_prefix, h, level_prefix);

  device::launch(ctx, h, [&](std::size_t r) {
    const EdgeId e = tour.tour[r];
    if (!tour.goes_down(e)) return;
    const NodeId child = tour.edge_dst[e];
    stats.preorder[child] = down_prefix[r] + 1;  // 1-based; root is 1
    stats.level[child] = level_prefix[r];
    stats.parent[child] = tour.edge_src[e];
    // Subtree spans [rank(e), rank(twin(e))]: that interval holds both
    // directions of every edge internal to the subtree plus this enter/exit
    // pair, so its length is 2*size - 1 + 1, hence size = (len + 1) / 2.
    const EdgeId up_rank = tour.rank[tour.twin(e)];
    stats.subtree_size[child] =
        (up_rank - static_cast<EdgeId>(r) + 1) / 2;
  });
  return stats;
}

void root_tree(const device::Context& ctx, const graph::EdgeList& edges,
               NodeId root, std::vector<NodeId>& parent,
               std::vector<NodeId>& level, util::PhaseTimer* phases) {
  const EulerTour tour = build_euler_tour(ctx, edges, root,
                                          RankAlgo::kWeiJaja, phases);
  TreeStats stats = compute_tree_stats(ctx, tour, phases);
  parent = std::move(stats.parent);
  level = std::move(stats.level);
}

}  // namespace emc::core
