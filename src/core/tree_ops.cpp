#include "core/tree_ops.hpp"

#include "device/primitives.hpp"

namespace emc::core {

std::vector<NodeId> postorder_numbers(const device::Context& ctx,
                                      const EulerTour& tour) {
  const auto n = static_cast<std::size_t>(tour.num_nodes);
  const std::size_t h = tour.num_half_edges();
  std::vector<NodeId> post(n, 0);
  post[tour.root] = static_cast<NodeId>(n);
  if (h == 0) {
    post[tour.root] = 1;
    return post;
  }
  // A node's subtree finishes when its up edge is traversed; postorder =
  // prefix count of up edges at that position.
  std::vector<NodeId> up_flag(h), up_prefix(h);
  device::transform(ctx, h, up_flag.data(), [&](std::size_t r) {
    return static_cast<NodeId>(tour.goes_down(tour.tour[r]) ? 0 : 1);
  });
  device::inclusive_scan(ctx, up_flag.data(), h, up_prefix.data());
  device::launch(ctx, h, [&](std::size_t r) {
    const EdgeId e = tour.tour[r];
    if (tour.goes_down(e)) return;
    post[tour.edge_src[e]] = up_prefix[r];  // up edge leaves the finished node
  });
  return post;
}

std::vector<std::int64_t> subtree_sums(const device::Context& ctx,
                                       const EulerTour& tour,
                                       const TreeStats& stats,
                                       const std::vector<std::int64_t>& value) {
  const auto n = static_cast<std::size_t>(tour.num_nodes);
  const std::size_t h = tour.num_half_edges();
  std::vector<std::int64_t> sums(n);
  if (h == 0) {
    sums[tour.root] = value[tour.root];
    return sums;
  }
  (void)stats;
  // Weight each down edge with the entered node's value; the subtree sum of
  // v is the scan over [enter(v), exit(v)] plus v's own value at enter(v).
  std::vector<std::int64_t> weight(h), prefix(h);
  device::transform(ctx, h, weight.data(), [&](std::size_t r) {
    const EdgeId e = tour.tour[r];
    return tour.goes_down(e) ? value[tour.edge_dst[e]] : std::int64_t{0};
  });
  const std::int64_t total =
      device::inclusive_scan(ctx, weight.data(), h, prefix.data());
  sums[tour.root] = total + value[tour.root];
  device::launch(ctx, h, [&](std::size_t r) {
    const EdgeId e = tour.tour[r];
    if (!tour.goes_down(e)) return;
    const NodeId v = tour.edge_dst[e];
    const EdgeId exit = tour.rank[tour.twin(e)];
    sums[v] = prefix[exit] - prefix[r] + value[v];
  });
  return sums;
}

std::vector<NodeId> subtree_leaf_counts(const device::Context& ctx,
                                        const EulerTour& tour,
                                        const TreeStats& stats) {
  const auto n = static_cast<std::size_t>(tour.num_nodes);
  std::vector<std::int64_t> is_leaf(n);
  device::transform(ctx, n, is_leaf.data(), [&](std::size_t v) {
    return static_cast<std::int64_t>(stats.subtree_size[v] == 1 ? 1 : 0);
  });
  const auto sums = subtree_sums(ctx, tour, stats, is_leaf);
  std::vector<NodeId> counts(n);
  device::transform(ctx, n, counts.data(),
                    [&](std::size_t v) { return static_cast<NodeId>(sums[v]); });
  return counts;
}

std::vector<NodeId> heavy_children(const device::Context& ctx,
                                   const EulerTour& tour,
                                   const TreeStats& stats) {
  const auto n = static_cast<std::size_t>(tour.num_nodes);
  const std::size_t h = tour.num_half_edges();
  // Pack (subtree size, child id) so an atomic max picks the largest
  // subtree and breaks ties towards the larger id, deterministically.
  std::vector<std::int64_t> best(n, -1);
  device::launch(ctx, h, [&](std::size_t r) {
    const EdgeId e = tour.tour[r];
    if (!tour.goes_down(e)) return;
    const NodeId child = tour.edge_dst[e];
    const std::int64_t packed =
        (static_cast<std::int64_t>(stats.subtree_size[child]) << 32) |
        static_cast<std::uint32_t>(child);
    device::atomic_max(&best[tour.edge_src[e]], packed);
  });
  std::vector<NodeId> heavy(n);
  device::transform(ctx, n, heavy.data(), [&](std::size_t v) {
    return best[v] < 0 ? kNoNode
                       : static_cast<NodeId>(best[v] & 0xffffffffLL);
  });
  return heavy;
}

}  // namespace emc::core
