// Synthetic graph generators standing in for the §4.2 dataset suite.
//
// The paper's bridge-finding experiments use three graph classes; none of
// the original files can be downloaded here, so each class is replaced by a
// generator matched on the statistics that drive the experiments (density
// m/n, diameter, bridge count). The Table 1 benchmark prints the same
// statistics columns so the match is auditable.
//
//   Kronecker kron_g500-lognN  -> rmat_graph: R-MAT with Graph500 parameters
//       (a,b,c,d) = (0.57, 0.19, 0.19, 0.05), edge factor ~16-128; small
//       diameter, skewed degrees.
//   web/social (wikipedia, cit-Patents, socfb, LiveJournal, hollywood)
//       -> rmat_graph with milder skew and lower edge factors.
//   road networks (USA-road-d.*, great-britain-osm) -> road_graph: W x H
//       grid with every edge kept independently with probability p and a
//       sprinkling of local shortcut edges; extremely sparse (m ~ n),
//       diameter ~ W + H, many bridges (degree-1/2 fringes), like real road
//       graphs.
//
// All generators return the raw multigraph; callers follow the paper's
// pipeline: simplified() + largest_component().
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace emc::gen {

/// R-MAT / Kronecker generator: 2^scale nodes, edge_factor * 2^scale edge
/// samples with recursive quadrant probabilities (a, b, c, d), a+b+c+d = 1.
/// Self-loops are dropped; duplicates kept (callers simplify).
graph::EdgeList rmat_graph(int scale, double edge_factor, double a, double b,
                           double c, std::uint64_t seed);

/// Graph500 Kronecker parameters, the kron_g500 stand-in.
graph::EdgeList kron_graph(int scale, double edge_factor, std::uint64_t seed);

/// Social-network-like R-MAT (milder skew than Graph500).
graph::EdgeList social_graph(int scale, double edge_factor, std::uint64_t seed);

/// Road-network-like graph: width x height grid, each grid edge kept with
/// probability keep_prob, plus shortcut_fraction * n random short "diagonal"
/// edges. Large diameter, m close to n, many bridges.
graph::EdgeList road_graph(NodeId width, NodeId height, double keep_prob,
                           double shortcut_fraction, std::uint64_t seed);

/// Uniform Erdos-Renyi G(n, m) multigraph sample (testing utility).
graph::EdgeList er_graph(NodeId n, std::size_t m, std::uint64_t seed);

/// Cycle graph on n nodes (every edge on a cycle; zero bridges).
graph::EdgeList cycle_graph(NodeId n);

/// Path graph on n nodes (every edge a bridge; diameter n-1).
graph::EdgeList path_graph(NodeId n);

}  // namespace emc::gen
