#include "gen/graphs.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace emc::gen {

graph::EdgeList rmat_graph(int scale, double edge_factor, double a, double b,
                           double c, std::uint64_t seed) {
  assert(scale >= 1 && scale < 31);
  const NodeId n = NodeId{1} << scale;
  const auto target =
      static_cast<std::size_t>(edge_factor * static_cast<double>(n));
  util::Rng rng(seed);
  graph::EdgeList out;
  out.num_nodes = n;
  out.edges.reserve(target);
  // Per-level probability noise (+-10%) as in the Graph500 reference
  // generator, which prevents exact-degree artifacts.
  while (out.edges.size() < target) {
    NodeId u = 0;
    NodeId v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double noise = 0.9 + 0.2 * rng.uniform();
      const double aa = a * noise;
      const double bb = b * noise;
      const double cc = c * noise;
      const double norm = aa + bb + cc + (1.0 - a - b - c) * noise;
      const double r = rng.uniform() * norm;
      if (r < aa) {
        // top-left: no bits set
      } else if (r < aa + bb) {
        v |= NodeId{1} << bit;
      } else if (r < aa + bb + cc) {
        u |= NodeId{1} << bit;
      } else {
        u |= NodeId{1} << bit;
        v |= NodeId{1} << bit;
      }
    }
    if (u == v) continue;  // drop self-loops
    out.edges.push_back({u, v});
  }
  return out;
}

graph::EdgeList kron_graph(int scale, double edge_factor, std::uint64_t seed) {
  return rmat_graph(scale, edge_factor, 0.57, 0.19, 0.19, seed);
}

graph::EdgeList social_graph(int scale, double edge_factor,
                             std::uint64_t seed) {
  return rmat_graph(scale, edge_factor, 0.45, 0.22, 0.22, seed);
}

graph::EdgeList road_graph(NodeId width, NodeId height, double keep_prob,
                           double shortcut_fraction, std::uint64_t seed) {
  assert(width >= 1 && height >= 1);
  util::Rng rng(seed);
  graph::EdgeList out;
  const std::size_t n = static_cast<std::size_t>(width) * height;
  out.num_nodes = static_cast<NodeId>(n);
  out.edges.reserve(static_cast<std::size_t>(2.0 * keep_prob * n) +
                    static_cast<std::size_t>(shortcut_fraction * n));
  auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width && rng.uniform() < keep_prob) {
        out.edges.push_back({id(x, y), id(x + 1, y)});
      }
      if (y + 1 < height && rng.uniform() < keep_prob) {
        out.edges.push_back({id(x, y), id(x, y + 1)});
      }
    }
  }
  // Local shortcuts: connect each sampled node to a node a couple of grid
  // steps away, like a road cutting a corner. Keeps diameter Theta(W + H).
  const auto shortcuts =
      static_cast<std::size_t>(shortcut_fraction * static_cast<double>(n));
  for (std::size_t s = 0; s < shortcuts; ++s) {
    const NodeId x = static_cast<NodeId>(rng.below(width));
    const NodeId y = static_cast<NodeId>(rng.below(height));
    const NodeId dx = static_cast<NodeId>(rng.range(-2, 2));
    const NodeId dy = static_cast<NodeId>(rng.range(-2, 2));
    const NodeId nx = std::min(std::max(NodeId{0}, x + dx), width - 1);
    const NodeId ny = std::min(std::max(NodeId{0}, y + dy), height - 1);
    if (id(x, y) != id(nx, ny)) out.edges.push_back({id(x, y), id(nx, ny)});
  }
  return out;
}

graph::EdgeList er_graph(NodeId n, std::size_t m, std::uint64_t seed) {
  assert(n >= 2);
  util::Rng rng(seed);
  graph::EdgeList out;
  out.num_nodes = n;
  out.edges.reserve(m);
  while (out.edges.size() < m) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u != v) out.edges.push_back({u, v});
  }
  return out;
}

graph::EdgeList cycle_graph(NodeId n) {
  assert(n >= 3);
  graph::EdgeList out;
  out.num_nodes = n;
  out.edges.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) out.edges.push_back({v, (v + 1) % n});
  return out;
}

graph::EdgeList path_graph(NodeId n) {
  assert(n >= 1);
  graph::EdgeList out;
  out.num_nodes = n;
  out.edges.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId v = 0; v + 1 < n; ++v) out.edges.push_back({v, v + 1});
  return out;
}

}  // namespace emc::gen
