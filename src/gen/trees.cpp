#include "gen/trees.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace emc::gen {

core::ParentTree random_tree(NodeId n, NodeId grasp, std::uint64_t seed) {
  assert(n >= 1);
  assert(grasp == kInfiniteGrasp || grasp >= 1);
  util::Rng rng(seed);
  core::ParentTree tree;
  tree.root = 0;
  tree.parent.assign(static_cast<std::size_t>(n), kNoNode);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId lo =
        grasp == kInfiniteGrasp ? NodeId{0} : std::max(NodeId{0}, i - grasp);
    tree.parent[i] = static_cast<NodeId>(rng.range(lo, i - 1));
  }
  return tree;
}

core::ParentTree barabasi_albert_tree(NodeId n, std::uint64_t seed) {
  assert(n >= 1);
  util::Rng rng(seed);
  core::ParentTree tree;
  tree.root = 0;
  tree.parent.assign(static_cast<std::size_t>(n), kNoNode);
  if (n == 1) return tree;
  // Standard endpoint-array trick: each attachment appends both endpoints,
  // so sampling a uniform array element is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n));
  tree.parent[1] = 0;
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (NodeId i = 2; i < n; ++i) {
    const NodeId p = endpoints[rng.below(endpoints.size())];
    tree.parent[i] = p;
    endpoints.push_back(p);
    endpoints.push_back(i);
  }
  return tree;
}

void scramble_ids(core::ParentTree& tree, std::uint64_t seed) {
  const std::size_t n = tree.parent.size();
  util::Rng rng(seed);
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (std::size_t i = n; i > 1; --i) {  // Fisher-Yates
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }
  std::vector<NodeId> new_parent(n);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId p = tree.parent[v];
    new_parent[perm[v]] = p == kNoNode ? kNoNode : perm[p];
  }
  tree.parent = std::move(new_parent);
  tree.root = perm[tree.root];
}

double expected_average_depth(NodeId n, NodeId grasp) {
  if (grasp == kInfiniteGrasp) return std::log(static_cast<double>(n));
  return static_cast<double>(n) / (static_cast<double>(grasp) + 1.0);
}

std::vector<std::pair<NodeId, NodeId>> random_queries(NodeId n, std::size_t q,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> queries(q);
  for (auto& [x, y] : queries) {
    x = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    y = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  }
  return queries;
}

}  // namespace emc::gen
