// Synthetic tree generators — exactly the §3.2 models.
//
//   random_tree(n, grasp γ):   parent(i) ~ Uniform{max(i-γ, 0), ..., i-1};
//                              γ = kInfiniteGrasp recovers the shallow model
//                              (expected average depth ln n); γ = 1 yields a
//                              path; otherwise average depth ≈ n/(γ+1).
//   barabasi_albert_tree(n):   preferential attachment — parent chosen with
//                              probability proportional to current degree;
//                              power-law degrees, very shallow.
//
// After generation, node identifiers are mapped through a random permutation
// ("so that the tree structure is maintained but the identifiers do not leak
// any information"); the root therefore is *not* node 0 in the output.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tree.hpp"
#include "util/types.hpp"

namespace emc::gen {

/// Sentinel grasp value for the unbounded (shallow) model.
inline constexpr NodeId kInfiniteGrasp = -1;

/// Uniform-attachment tree with the given grasp. n >= 1.
core::ParentTree random_tree(NodeId n, NodeId grasp, std::uint64_t seed);

/// Scale-free preferential-attachment tree. n >= 1.
core::ParentTree barabasi_albert_tree(NodeId n, std::uint64_t seed);

/// Applies a random relabeling permutation to the tree in place.
void scramble_ids(core::ParentTree& tree, std::uint64_t seed);

/// Expected average node depth of the grasp model (the formula from §3.2);
/// used by the depth-sweep benchmark to label its x axis.
double expected_average_depth(NodeId n, NodeId grasp);

/// q LCA queries sampled uniformly from [n] x [n].
std::vector<std::pair<NodeId, NodeId>> random_queries(NodeId n, std::size_t q,
                                                      std::uint64_t seed);

}  // namespace emc::gen
