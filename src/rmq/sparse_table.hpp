// Sparse table: O(n log n) preprocessing, O(1) idempotent range queries.
//
// Provided as the constant-query-time alternative to the segment tree; the
// ablation benchmark compares the two as the aggregation structure inside
// Tarjan-Vishkin, and tests use it as an RMQ cross-check.
#pragma once

#include <cstddef>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"
#include "util/bits.hpp"

namespace emc::rmq {

template <typename T, typename Op>
class SparseTable {
 public:
  SparseTable(const device::Context& ctx, const std::vector<T>& values,
              Op op = Op{})
      : SparseTable(ctx, values.data(), values.size(), op) {}

  /// Pointer form, so level 0 can be seeded straight from arena scratch.
  SparseTable(const device::Context& ctx, const T* values, std::size_t n,
              Op op = Op{})
      : op_(op), n_(n) {
    if (n_ == 0) return;
    const int levels = util::floor_log2(n_) + 1;
    table_.resize(levels);
    table_[0].assign(values, values + n_);
    for (int k = 1; k < levels; ++k) {
      const std::size_t span = std::size_t{1} << k;
      const std::size_t count = n_ - span + 1;
      table_[k].resize(count);
      const auto& prev = table_[k - 1];
      auto& cur = table_[k];
      device::launch(ctx, count, [&, span](std::size_t i) {
        cur[i] = op_(prev[i], prev[i + span / 2]);
      });
    }
  }

  std::size_t size() const { return n_; }

  /// Fold over the inclusive range [lo, hi]. Requires lo <= hi < size.
  T query(std::size_t lo, std::size_t hi) const {
    const int k = util::floor_log2(hi - lo + 1);
    const std::size_t span = std::size_t{1} << k;
    return op_(table_[k][lo], table_[k][hi + 1 - span]);
  }

 private:
  Op op_;
  std::size_t n_ = 0;
  std::vector<std::vector<T>> table_;
};

}  // namespace emc::rmq
