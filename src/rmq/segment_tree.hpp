// Iterative segment tree for idempotent range queries (min / max).
//
// Used in two places, matching the paper:
//  - the RMQ-based sequential LCA baseline of §3.1 ("a variant of [9], using
//    a segment tree and without the preprocessed lookup tables"),
//  - aggregating per-node min/max non-tree neighbors over subtree intervals
//    in the Tarjan-Vishkin bridge finder (§4.1).
//
// The build is a sequence of per-level bulk kernels (bottom-up), so the
// device-parallel TV pipeline can construct it with the same barrier
// structure a GPU implementation would use.
#pragma once

#include <cstddef>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"
#include "util/bits.hpp"

namespace emc::rmq {

template <typename T, typename Op>
class SegmentTree {
 public:
  /// Builds over `values` (possibly empty). `identity` must satisfy
  /// op(identity, x) == x.
  SegmentTree(const device::Context& ctx, const std::vector<T>& values,
              T identity, Op op = Op{})
      : identity_(identity), op_(op), n_(values.size()) {
    leaves_ = n_ == 0 ? 1 : util::ceil_pow2(n_);
    tree_.assign(2 * leaves_, identity_);
    device::launch(ctx, n_,
                   [&](std::size_t i) { tree_[leaves_ + i] = values[i]; });
    // Bottom-up level-parallel combine.
    for (std::size_t width = leaves_ / 2; width >= 1; width /= 2) {
      device::launch(ctx, width, [&](std::size_t k) {
        const std::size_t node = width + k;
        tree_[node] = op_(tree_[2 * node], tree_[2 * node + 1]);
      });
      if (width == 1) break;
    }
  }

  std::size_t size() const { return n_; }

  /// Fold over the inclusive index range [lo, hi]. Requires lo <= hi < size.
  T query(std::size_t lo, std::size_t hi) const {
    T left = identity_;
    T right = identity_;
    std::size_t l = lo + leaves_;
    std::size_t r = hi + leaves_ + 1;
    while (l < r) {
      if (l & 1) left = op_(left, tree_[l++]);
      if (r & 1) right = op_(tree_[--r], right);
      l /= 2;
      r /= 2;
    }
    return op_(left, right);
  }

  /// Point read of the original value.
  T value_at(std::size_t i) const { return tree_[leaves_ + i]; }

 private:
  T identity_;
  Op op_;
  std::size_t n_;
  std::size_t leaves_;
  std::vector<T> tree_;
};

struct MinOp {
  template <typename T>
  T operator()(T a, T b) const {
    return b < a ? b : a;
  }
};

struct MaxOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? b : a;
  }
};

template <typename T>
using MinSegmentTree = SegmentTree<T, MinOp>;
template <typename T>
using MaxSegmentTree = SegmentTree<T, MaxOp>;

}  // namespace emc::rmq
