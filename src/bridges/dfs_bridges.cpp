#include "bridges/dfs_bridges.hpp"

#include <algorithm>
#include <vector>

namespace emc::bridges {

BridgeMask find_bridges_dfs(const graph::Csr& graph) {
  const NodeId n = graph.num_nodes;
  BridgeMask is_bridge(graph.num_edges(), 0);
  std::vector<NodeId> disc(static_cast<std::size_t>(n), kNoNode);
  std::vector<NodeId> low(static_cast<std::size_t>(n));
  NodeId timer = 0;

  struct Frame {
    NodeId v;
    EdgeId via_edge;  // undirected edge id used to enter v (kNoEdge at root)
    EdgeId cursor;    // next half-edge position to inspect
  };
  std::vector<Frame> stack;

  for (NodeId start = 0; start < n; ++start) {
    if (disc[start] != kNoNode) continue;
    disc[start] = low[start] = timer++;
    stack.push_back({start, kNoEdge, graph.row_offsets[start]});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId v = frame.v;
      if (frame.cursor < graph.row_offsets[v + 1]) {
        const EdgeId i = frame.cursor++;
        const NodeId w = graph.neighbors[i];
        const EdgeId e = graph.edge_ids[i];
        if (e == frame.via_edge) continue;  // skip only the entering copy
        if (disc[w] == kNoNode) {
          disc[w] = low[w] = timer++;
          stack.push_back({w, e, graph.row_offsets[w]});
        } else {
          low[v] = std::min(low[v], disc[w]);  // back edge (or parallel edge)
        }
      } else {
        const EdgeId via = frame.via_edge;  // copy before pop invalidates frame
        stack.pop_back();
        if (!stack.empty()) {
          const NodeId p = stack.back().v;
          low[p] = std::min(low[p], low[v]);
          if (low[v] > disc[p]) is_bridge[via] = 1;
        }
      }
    }
  }
  return is_bridge;
}

}  // namespace emc::bridges
