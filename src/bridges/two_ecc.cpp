#include "bridges/two_ecc.hpp"

#include "bridges/cc_spanning.hpp"

namespace emc::bridges {

std::vector<NodeId> two_edge_components(const device::Context& ctx,
                                        const graph::EdgeList& graph,
                                        const BridgeMask& is_bridge) {
  graph::EdgeList residual;
  residual.num_nodes = graph.num_nodes;
  residual.edges.reserve(graph.edges.size());
  for (std::size_t e = 0; e < graph.edges.size(); ++e) {
    if (!is_bridge[e]) residual.edges.push_back(graph.edges[e]);
  }
  return cc_spanning_forest(ctx, residual).component;
}

}  // namespace emc::bridges
