// Device-parallel connected components with a spanning forest byproduct.
//
// Stands in for the Jaiganesh-Burtscher ECL-CC implementation the paper uses
// ("a GPU-optimized connected components algorithm ... which constructs a
// spanning tree as a byproduct", §4.1). We implement the same algorithm
// family — label hooking plus pointer-jumping shortcuts (Shiloach-Vishkin /
// ECL-CC lineage) — as rounds of bulk kernels:
//
//   repeat until no hook fires:
//     flatten labels (pointer jumping)
//     every cross-component edge proposes hooking the larger root onto the
//       smaller (atomic min keyed by (target label, edge id), so the result
//       is deterministic regardless of thread interleaving)
//     winning proposals hook, and the winning edge joins the forest
//
// Hooking strictly label-decreasing keeps the union acyclic, so the
// recorded edges form a spanning forest: exactly n - #components edges.
#pragma once

#include <vector>

#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::bridges {

struct SpanningForest {
  std::vector<NodeId> component;  // flat component label per node
  std::vector<EdgeId> tree_edges;  // ids into EdgeList::edges
  std::size_t num_components = 0;
};

SpanningForest cc_spanning_forest(const device::Context& ctx,
                                  const graph::EdgeList& graph,
                                  util::PhaseTimer* phases = nullptr);

// component_representatives / stitch_components — the virtual-edge
// stitch-and-slice machinery built on this forest — live in
// bridges/stitch.hpp (standalone so the shard summary can reuse them
// without pulling in the CC kernels' callers).

}  // namespace emc::bridges
