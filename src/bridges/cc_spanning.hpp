// Device-parallel connected components with a spanning forest byproduct.
//
// Stands in for the Jaiganesh-Burtscher ECL-CC implementation the paper uses
// ("a GPU-optimized connected components algorithm ... which constructs a
// spanning tree as a byproduct", §4.1). We implement the same algorithm
// family — label hooking plus pointer-jumping shortcuts (Shiloach-Vishkin /
// ECL-CC lineage) — as rounds of bulk kernels:
//
//   repeat until no hook fires:
//     flatten labels (pointer jumping)
//     every cross-component edge proposes hooking the larger root onto the
//       smaller (atomic min keyed by (target label, edge id), so the result
//       is deterministic regardless of thread interleaving)
//     winning proposals hook, and the winning edge joins the forest
//
// Hooking strictly label-decreasing keeps the union acyclic, so the
// recorded edges form a spanning forest: exactly n - #components edges.
#pragma once

#include <vector>

#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::bridges {

struct SpanningForest {
  std::vector<NodeId> component;  // flat component label per node
  std::vector<EdgeId> tree_edges;  // ids into EdgeList::edges
  std::size_t num_components = 0;
};

SpanningForest cc_spanning_forest(const device::Context& ctx,
                                  const graph::EdgeList& graph,
                                  util::PhaseTimer* phases = nullptr);

/// The component representatives (nodes v with component[v] == v),
/// compacted in node order — exactly forest.num_components entries.
std::vector<NodeId> component_representatives(const device::Context& ctx,
                                              const SpanningForest& forest);

/// The connected augmentation every stitch-and-slice caller shares: `graph`
/// plus one virtual edge from the first representative to each other one.
/// A virtual edge can never change a real edge's bridgeness (it is the only
/// connection between its components, so no cycle through a real edge runs
/// over it and back), so a mask computed on the augmentation and truncated
/// to graph.num_edges() is exact. `reps` comes from
/// component_representatives(); a connected graph is returned unchanged.
graph::EdgeList stitch_components(const graph::EdgeList& graph,
                                  const std::vector<NodeId>& reps);

}  // namespace emc::bridges
