// Common types for the bridge-finding algorithms (paper §4).
//
// Problem: given a connected undirected graph, decide for every edge
// whether it is a bridge. All four algorithms (sequential DFS, multi-core
// CK, device CK, device TV, plus the §4.3 hybrid) produce the same
// per-edge boolean vector, indexed by EdgeList order.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace emc::bridges {

/// Per-undirected-edge verdict, aligned with EdgeList::edges.
using BridgeMask = std::vector<std::uint8_t>;

/// Number of bridges in a mask.
inline std::size_t count_bridges(const BridgeMask& mask) {
  std::size_t count = 0;
  for (const auto b : mask) count += b;
  return count;
}

}  // namespace emc::bridges
