// The Tarjan-Vishkin bridge finder (paper §4.1, "TV").
//
// The theoretically optimal algorithm: O(log n) time, O(n + m) work. Three
// phases, matching the paper's Figure 11 breakdown:
//
//   spanning_tree   — device connected components (ECL-CC stand-in), which
//                     yields an unrooted spanning tree as a byproduct;
//   euler_tour      — root the tree and compute preorder numbers and
//                     subtree sizes with the Euler tour technique, plus each
//                     node's min/max non-tree neighbor (segreduce);
//   detect_bridges  — aggregate low/high over subtrees (an RMQ over the
//                     preorder intervals, via segment trees) and apply
//                     Tarjan's criterion: with the nodes identified by
//                     preorder numbers, tree edge (v, parent(v)) is a bridge
//                     iff both low(v) and high(v) stay inside
//                     [pre(v), pre(v) + size(v)), i.e. no non-tree edge
//                     escapes the subtree. (Works for *any* spanning tree —
//                     that is Tarjan's escape from the DFS obstacle.)
#pragma once

#include "bridges/bridges.hpp"
#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

namespace emc::bridges {

/// Requires a connected graph with at least one node.
BridgeMask find_bridges_tarjan_vishkin(const device::Context& ctx,
                                       const graph::EdgeList& graph,
                                       util::PhaseTimer* phases = nullptr);

}  // namespace emc::bridges
