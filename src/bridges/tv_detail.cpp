#include "bridges/tv_detail.hpp"

#include "device/arena.hpp"
#include "device/primitives.hpp"
#include "device/sort.hpp"

namespace emc::bridges::tv_detail {

void aggregate_non_tree_min_max(const device::Context& ctx,
                                const graph::EdgeList& graph,
                                const std::vector<std::uint8_t>& is_tree_edge,
                                const std::vector<NodeId>& pre,
                                std::vector<NodeId>& node_min,
                                std::vector<NodeId>& node_max) {
  const std::size_t m = graph.edges.size();
  device::Arena::Scope scope(ctx.arena());

  // Compact the non-tree edges (their count is m - n + 1 but we compute it
  // with a scan to stay a bulk pipeline), then emit both directions.
  EdgeId* non_tree = scope.get<EdgeId>(m);
  const std::size_t k = device::copy_if_index(
      ctx, m, [&](std::size_t e) { return !is_tree_edge[e]; },
      non_tree);
  if (k == 0) return;

  std::uint32_t* keys = scope.get<std::uint32_t>(2 * k);
  NodeId* values = scope.get<NodeId>(2 * k);
  device::launch(ctx, k, [&](std::size_t i) {
    const graph::Edge edge = graph.edges[non_tree[i]];
    keys[2 * i] = static_cast<std::uint32_t>(edge.u);
    values[2 * i] = pre[edge.v];
    keys[2 * i + 1] = static_cast<std::uint32_t>(edge.v);
    values[2 * i + 1] = pre[edge.u];
  });
  device::sort_pairs(ctx, keys, values, 2 * k);

  // One virtual thread per run of equal keys (runs are contiguous after the
  // sort; this is what mgpu::segreduce does with its sorted-segment input).
  device::launch(ctx, 2 * k, [&](std::size_t i) {
    if (i != 0 && keys[i] == keys[i - 1]) return;  // not a run head
    const std::uint32_t node = keys[i];
    NodeId lo = values[i];
    NodeId hi = values[i];
    for (std::size_t j = i + 1; j < 2 * k && keys[j] == node; ++j) {
      lo = std::min(lo, values[j]);
      hi = std::max(hi, values[j]);
    }
    if (lo < node_min[node]) node_min[node] = lo;
    if (hi > node_max[node]) node_max[node] = hi;
  });
}

}  // namespace emc::bridges::tv_detail
