// Virtual-edge stitching: turn a disconnected graph into a connected one
// without changing any real edge's bridgeness.
//
// The connected-only bridge backends (Tarjan-Vishkin, Chaitanya-Kothapalli,
// the hybrid) and the block-tree builder all assume one component. Rather
// than teach each of them about forests, every caller shares one trick:
// pick a representative per component and add a VIRTUAL edge from the first
// representative to each other one. A virtual edge is the only connection
// between its two components, so no cycle through a real edge can run over
// it and back — a mask computed on the augmentation and truncated to
// graph.num_edges() is exact for the real edges.
//
// Users of this machinery:
//   - engine::Session's stitched() artifact (disconnected static/dynamic
//     snapshots through the connected-only backends),
//   - dynamic::ConnectivityOracle's full rebuild (same stitch before its
//     Tarjan-Vishkin phase),
//   - shard::ShardedGraph's cross-shard summary (per-shard block trees plus
//     boundary edges form a small top-level graph that is naturally
//     disconnected; the summary oracle stitches it the same way).
#pragma once

#include <vector>

#include "bridges/cc_spanning.hpp"
#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace emc::bridges {

/// The component representatives (nodes v with component[v] == v),
/// compacted in node order — exactly forest.num_components entries.
std::vector<NodeId> component_representatives(const device::Context& ctx,
                                              const SpanningForest& forest);

/// The connected augmentation every stitch-and-slice caller shares: `graph`
/// plus one virtual edge from the first representative to each other one.
/// A virtual edge can never change a real edge's bridgeness (it is the only
/// connection between its components, so no cycle through a real edge runs
/// over it and back), so a mask computed on the augmentation and truncated
/// to graph.num_edges() is exact. `reps` comes from
/// component_representatives(); a connected graph is returned unchanged.
graph::EdgeList stitch_components(const graph::EdgeList& graph,
                                  const std::vector<NodeId>& reps);

}  // namespace emc::bridges
