#include "bridges/cc_spanning.hpp"

#include <atomic>
#include <cassert>
#include <limits>

#include "device/arena.hpp"
#include "device/primitives.hpp"

namespace emc::bridges {

SpanningForest cc_spanning_forest(const device::Context& ctx,
                                  const graph::EdgeList& graph,
                                  util::PhaseTimer* phases) {
  util::ScopedPhase phase(phases, "spanning_tree");
  const auto n = static_cast<std::size_t>(graph.num_nodes);
  const std::size_t m = graph.edges.size();

  SpanningForest forest;
  forest.component.resize(n);
  device::iota(ctx, n, forest.component.data());
  std::vector<NodeId>& label = forest.component;

  // Proposal slot per node; only roots receive proposals. Packed as
  // (target label << 32 | edge id) so atomic min prefers the smallest
  // target and then the smallest edge — fully deterministic output. Both
  // rounds-scoped arrays are arena scratch.
  constexpr std::uint64_t kNoProposal = std::numeric_limits<std::uint64_t>::max();
  device::Arena::Scope scope(ctx.arena());
  std::uint64_t* proposal = scope.get<std::uint64_t>(n);
  std::uint8_t* edge_used = scope.get<std::uint8_t>(m);
  device::fill(ctx, m, edge_used, std::uint8_t{0});

  const auto flatten = [&] {
    bool changed = true;
    while (changed) {
      std::atomic<int> any{0};
      // Pointer jumping: label[l] may be rewritten by a sibling thread in
      // the same launch. Relaxed atomics make the race defined; a stale
      // read only delays that node to the next round (the loop runs until
      // a full pass — barrier-separated from the previous one — changes
      // nothing).
      device::launch(ctx, n, [&](std::size_t v) {
        const NodeId l = std::atomic_ref(label[v]).load(std::memory_order_relaxed);
        const NodeId ll = std::atomic_ref(label[l]).load(std::memory_order_relaxed);
        if (ll != l) {
          std::atomic_ref(label[v]).store(ll, std::memory_order_relaxed);
          any.store(1, std::memory_order_relaxed);
        }
      });
      changed = any.load(std::memory_order_relaxed) != 0;
    }
  };

  bool hooked = true;
  while (hooked) {
    flatten();
    device::fill(ctx, n, proposal, kNoProposal);
    std::atomic<int> any_proposal{0};
    device::launch(ctx, m, [&](std::size_t e) {
      const NodeId lu = label[graph.edges[e].u];
      const NodeId lv = label[graph.edges[e].v];
      if (lu == lv) return;
      const NodeId target = lu < lv ? lu : lv;   // hook towards smaller label
      const NodeId hooker = lu < lv ? lv : lu;
      const std::uint64_t packed =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(target))
           << 32) |
          static_cast<std::uint32_t>(e);
      device::atomic_min(&proposal[hooker], packed);
      any_proposal.store(1, std::memory_order_relaxed);
    });
    hooked = any_proposal.load(std::memory_order_relaxed) != 0;
    if (!hooked) break;
    device::launch(ctx, n, [&](std::size_t r) {
      const std::uint64_t p = proposal[r];
      if (p == kNoProposal) return;
      label[r] = static_cast<NodeId>(p >> 32);
      edge_used[static_cast<std::uint32_t>(p)] = 1;
    });
  }
  flatten();

  forest.tree_edges.resize(m);
  const std::size_t k = device::copy_if_index(
      ctx, m, [&](std::size_t e) { return edge_used[e] != 0; },
      forest.tree_edges.data());
  forest.tree_edges.resize(k);

  forest.num_components = static_cast<std::size_t>(device::reduce(
      ctx, n, NodeId{0},
      [&](std::size_t v) {
        return static_cast<NodeId>(label[v] == static_cast<NodeId>(v) ? 1 : 0);
      },
      [](NodeId a, NodeId b) { return a + b; }));
  return forest;
}

}  // namespace emc::bridges
