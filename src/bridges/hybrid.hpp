// The hybrid bridge finder proposed at the end of paper §4.3.
//
// CK's bottleneck on large-diameter graphs is BFS, but the marking phase
// does not actually need a BFS tree — any rooted spanning tree works. The
// hybrid therefore:
//
//   spanning_tree      — same device CC spanning tree as TV (unrooted);
//   euler_tour         — Euler tour construction on that tree;
//   levels_and_parents — parents and levels from the tour (rooting the
//                        unrooted tree, §2.2: "we can, e.g., easily
//                        determine parents of all nodes, which we do in the
//                        hybrid algorithm");
//   mark_non_bridges   — CK's marking phase on the rooted tree.
//
// The paper's finding, which our benches reproduce: hybrid is often faster
// than CK (no diameter-bound BFS), but never beats TV, because both start
// with spanning tree + Euler tour and TV's remaining detect phase is
// cheaper than a marking phase.
#pragma once

#include "bridges/bridges.hpp"
#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

namespace emc::bridges {

/// Requires a connected graph.
BridgeMask find_bridges_hybrid(const device::Context& ctx,
                               const graph::EdgeList& graph,
                               util::PhaseTimer* phases = nullptr);

}  // namespace emc::bridges
