// Full Tarjan-Vishkin biconnectivity (extension beyond the paper's §4 scope).
//
// The paper evaluates the bridge slice of the Tarjan-Vishkin framework
// ("This basic problem already captures most of the combinatorial structure
// related to biconnectivity"); this module completes the framework as TV [58]
// published it: 2-*vertex*-connected components (blocks) and articulation
// points, on any spanning tree.
//
// Construction (Tarjan & Vishkin 1985): identify nodes with preorder numbers
// and build an auxiliary graph G'' whose vertices are the tree edges of a
// spanning tree T (each non-root node w stands for its parent edge). Add to
// G'':
//   (a) for every non-tree edge {v, w} with the endpoints unrelated in T
//       (pre(v) + size(v) <= pre(w) for pre(v) < pre(w)): the aux edge
//       {edge(v), edge(w)};
//   (b) for every tree edge (v, w), v = parent(w), v not the root: the aux
//       edge {edge(v), edge(w)} iff low(w) < pre(v) or
//       high(w) >= pre(v) + size(v) (a non-tree edge escapes w's subtree
//       past v).
// Connected components of G'' are exactly the blocks of G. A non-tree edge
// belongs to the block of its deeper endpoint's parent edge, and a vertex is
// an articulation point iff its incident edges span >= 2 distinct blocks.
//
// Everything reuses the paper's pipeline: CC spanning tree, Euler tour
// statistics, segment-tree low/high, then one more device CC run on G''.
#pragma once

#include <cstdint>
#include <vector>

#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::bridges {

struct BiconnectivityResult {
  /// Per undirected edge: a label; two edges share a label iff they lie in
  /// the same biconnected component (block). Labels are representatives,
  /// not compacted to 0..k-1.
  std::vector<NodeId> edge_block;
  /// Per node: 1 iff removing the node disconnects the graph.
  std::vector<std::uint8_t> is_articulation;
  std::size_t num_blocks = 0;
};

/// Device-parallel Tarjan-Vishkin biconnectivity. Requires a connected
/// graph with at least one edge.
BiconnectivityResult biconnectivity_tv(const device::Context& ctx,
                                       const graph::EdgeList& graph,
                                       util::PhaseTimer* phases = nullptr);

/// Sequential Hopcroft-Tarjan baseline (DFS with an edge stack).
BiconnectivityResult biconnectivity_dfs(const graph::EdgeList& graph,
                                        const graph::Csr& csr);

/// True iff two labelings induce the same partition of the edge set.
bool same_block_partition(const std::vector<NodeId>& a,
                          const std::vector<NodeId>& b);

}  // namespace emc::bridges
