// Level-synchronous parallel BFS (paper §4.1).
//
// The CK bridge-finding algorithm uses BFS to build its rooted spanning tree
// ("a parallel BFS is used in most implementations"; the paper's GPU variant
// is "based on [Merrill-Garland-Grimshaw] and using moderngpu primitives").
// We implement the standard frontier-expansion structure: one bulk kernel
// per BFS level expands the current frontier, claims unvisited neighbors
// with an atomic CAS, and compacts them into the next frontier. The number
// of global barriers equals the graph's eccentricity from the source —
// exactly the diameter sensitivity that drives Figures 9-11.
#pragma once

#include <vector>

#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace emc::bridges {

struct BfsTree {
  NodeId source = kNoNode;
  std::vector<NodeId> parent;       // kNoNode at source / unreached
  std::vector<EdgeId> parent_edge;  // undirected edge id used to reach node
  std::vector<NodeId> level;        // kNoNode if unreached
  NodeId num_levels = 0;
};

BfsTree bfs(const device::Context& ctx, const graph::Csr& graph,
            NodeId source, util::PhaseTimer* phases = nullptr);

}  // namespace emc::bridges
